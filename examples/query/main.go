// Query: the declarative front door to Hurricane's adaptive engine.
//
// This example answers "which regions produce the most clicks, by name?"
// as a single dataflow expression:
//
//	clicks -> count per region -> top 5 -> join region names -> sink
//
// and lets the planner pick the physical execution: the aggregation gets
// a partitioned shuffle edge (split and heavy-hitter-isolated at runtime
// from the live sketch), the top-5 compiles to a serial finalize stage,
// and the name join — whose build side is a 64-row dimension table —
// compiles to a broadcast join with no shuffle at all. Compare with
// examples/clicklog, which wires the same kind of analysis by hand; new
// scenarios should start from this API, not from raw stages.
//
// Run with: go run ./examples/query [-records N] [-skew S]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/workload"
)

type regionCount = hurricane.Pair[uint64, int64]
type namedCount = hurricane.Pair[string, int64]

func main() {
	records := flag.Int("records", 200000, "click records to generate")
	skew := flag.Float64("skew", 1.0, "zipf skew of region popularity")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		Master: hurricane.MasterConfig{
			CloneInterval:   20 * time.Millisecond,
			SplitInterval:   10 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 8192,
			SplitFan:        4,
		},
		Node: hurricane.NodeConfig{
			MonitorInterval:   10 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	// ---- the query ----
	dimCodec := hurricane.PairOf(hurricane.Uint64Of, hurricane.StringOf)
	outCodec := hurricane.PairOf(hurricane.StringOf, hurricane.Int64Of)

	p := q.New("topregions")
	clicks := q.Scan(p, "clicks", hurricane.Uint64Of)
	perRegion := q.CountByKey(clicks, func(ip uint64) uint64 {
		return uint64(workload.Geolocate(uint32(ip)))
	})
	top5 := q.TopK(perRegion, 5, func(a, b regionCount) bool {
		if a.Second != b.Second {
			return a.Second < b.Second
		}
		return a.First > b.First
	})
	regions := q.Scan(p, "regions", dimCodec)
	q.Join(regions, top5,
		func(d hurricane.Pair[uint64, string]) uint64 { return d.First },
		func(c regionCount) uint64 { return c.First },
		outCodec,
		func(d hurricane.Pair[uint64, string], c regionCount, emit func(namedCount) error) error {
			return emit(namedCount{First: d.Second, Second: c.Second})
		},
	).Sink("top")

	// The planner knows the dimension table is tiny -> broadcast join.
	stats := q.NewStats()
	stats.Records["regions"] = workload.DefaultRegions
	c, err := p.Compile(q.Options{Parts: 4, Stats: stats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Explain())

	// ---- input data ----
	fmt.Printf("generating %d clicks (s=%.1f)...\n", *records, *skew)
	gen := workload.ClickLogGen{S: *skew, UniquePerRegion: 1 << 12, Seed: 42}
	ips := gen.Generate(*records)
	store := cluster.Store()
	vals := make([]uint64, len(ips))
	truth := make(map[uint64]int64)
	for i, ip := range ips {
		vals[i] = uint64(ip)
		truth[uint64(workload.Geolocate(ip))]++
	}
	if err := hurricane.Load(ctx, store, "clicks", hurricane.Uint64Of, vals); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "clicks"); err != nil {
		log.Fatal(err)
	}
	dim := make([]hurricane.Pair[uint64, string], workload.DefaultRegions)
	for i := range dim {
		dim[i] = hurricane.Pair[uint64, string]{First: uint64(i), Second: workload.RegionName(i)}
	}
	if err := hurricane.Load(ctx, store, "regions", dimCodec, dim); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "regions"); err != nil {
		log.Fatal(err)
	}

	// ---- run + verify ----
	start := time.Now()
	if err := c.Run(ctx, cluster); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := hurricane.Collect(ctx, store, c.SinkBag("top"), outCodec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d regions of %d clicks in %v:\n", len(got), *records, elapsed)
	for i, nc := range got {
		fmt.Printf("  %d. %-10s %8d clicks\n", i+1, nc.First, nc.Second)
	}
	// The run's mitigation story, from the job's metrics snapshot (the
	// same per-job series /metrics serves, with the job label stripped).
	m := cluster.Primary().Metrics()
	fmt.Printf("mitigation: %.0f splits, %.0f isolations, %.0f clones; %.0f tasks finished, %.0f control snapshots\n",
		m["hurricane_core_splits_total"], m["hurricane_core_isolations_total"],
		m["hurricane_core_clones_total"], m["hurricane_core_tasks_finished_total"],
		m["hurricane_ctrl_snapshots_total"])

	// Oracle check: the ranking must match ground truth exactly.
	for i, nc := range got {
		bestRegion, best := uint64(0), int64(-1)
		for r, n := range truth {
			if n > best || (n == best && r < bestRegion) {
				bestRegion, best = r, n
			}
		}
		delete(truth, bestRegion)
		if nc.First != workload.RegionName(int(bestRegion)) || nc.Second != best {
			log.Fatalf("rank %d: got (%s, %d), want (%s, %d)",
				i+1, nc.First, nc.Second, workload.RegionName(int(bestRegion)), best)
		}
	}
	fmt.Println("verified against ground truth")
}
