// Fault tolerance: the paper's §4.4 mechanisms under live fire — a
// compute-node crash mid-job (task restart via the running work bag), a
// master crash (state replay from the done work bag), and a storage-node
// crash under 2× replication (client failover with replicated read
// pointers) — all in one run that still produces the exact answer.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/hurricane"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 6,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		Replication:  2, // tolerate one storage-node failure
		Master: hurricane.MasterConfig{
			CloneInterval: 10 * time.Millisecond,
		},
		Node: hurricane.NodeConfig{
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	var processed atomic.Int64
	app := hurricane.NewApp("ft")
	app.SourceBag("in").Bag("mid").Bag("out")
	app.AddTask(hurricane.TaskSpec{
		Name:    "work",
		Inputs:  []string{"in"},
		Outputs: []string{"mid"},
		Run: func(tc *hurricane.TaskCtx) error {
			w := hurricane.NewWriter(tc, 0, hurricane.Int64Of)
			return hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				// A little CPU per record keeps the job alive long
				// enough for the crash schedule below.
				x := v
				for i := 0; i < 300; i++ {
					x = x*31 + 1
				}
				if x == 42 {
					return fmt.Errorf("impossible")
				}
				processed.Add(1)
				return w.Write(v)
			})
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"mid"},
		Outputs: []string{"out"},
		Merge:   hurricane.MergeSum(),
		Run: func(tc *hurricane.TaskCtx) error {
			var total int64
			if err := hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(total)
		},
	})

	const n = 300000
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i)
		want += int64(i)
	}
	store := cluster.Store()
	if err := hurricane.Load(ctx, store, "in", hurricane.Int64Of, vals); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "in"); err != nil {
		log.Fatal(err)
	}

	if err := cluster.Start(ctx, app); err != nil {
		log.Fatal(err)
	}

	waitProgress := func(target int64) {
		for processed.Load() < target && ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
	}

	waitProgress(n / 20)
	fmt.Printf("t+%-4d crash storage node storage-5 (replication handles it)\n", processed.Load())
	if err := cluster.CrashStorageNode("storage-5"); err != nil {
		log.Fatal(err)
	}

	waitProgress(n / 10)
	fmt.Printf("t+%-4d crash compute node compute-0 (its tasks restart)\n", processed.Load())
	if err := cluster.CrashComputeNode("compute-0", true); err != nil {
		log.Fatal(err)
	}

	waitProgress(n / 5)
	fmt.Printf("t+%-4d crash the application master (replay from done bag)\n", processed.Load())
	if err := cluster.CrashMaster(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cluster.RecoverMaster(ctx)
	fmt.Println("       master recovered")

	if err := cluster.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	out, err := hurricane.Collect(ctx, store, "out", hurricane.Int64Of)
	if err != nil {
		log.Fatal(err)
	}
	var got int64
	for _, v := range out {
		got += v
	}
	fmt.Printf("\nfinal sum %d (expected %d) — processed %d records for %d inputs\n",
		got, want, processed.Load(), n)
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if got != want {
		log.Fatal("WRONG RESULT")
	}
	fmt.Println("survived storage, compute, and master failures with the exact answer")
}
