// ClickLog: the paper's running example (§2.1) end-to-end on the real
// engine — count distinct IP addresses per geographic region in a skewed
// click log.
//
// Phase 1 geolocates clicks into 16 region bags, Phase 2 computes each
// region's distinct-IP bitset (merge: bitwise OR), Phase 3 counts bits
// (merge: sum). The input is zipf-skewed, so the hot region's Phase 2
// task gets cloned; watch the Clones counter.
//
// Run with: go run ./examples/clicklog [-records N] [-skew S]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

func main() {
	records := flag.Int("records", 500000, "number of click records")
	skew := flag.Float64("skew", 1.0, "zipf skew parameter s in [0,1]")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	const regions, hostBits = 16, 12
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 4,
		Master: hurricane.MasterConfig{
			CloneInterval: 20 * time.Millisecond, // scaled-down 2s cadence
		},
		Node: hurricane.NodeConfig{
			MonitorInterval:   10 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Printf("generating %d clicks with skew s=%.1f over %d regions...\n",
		*records, *skew, regions)
	gen := workload.ClickLogGen{S: *skew, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(*records)
	want := workload.DistinctPerRegion(ips, regions)

	if err := apps.LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := apps.ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10s %10s %8s\n", "region", "distinct", "expected", "ok")
	bad := 0
	for r := 0; r < regions; r++ {
		ok := "yes"
		if got[r] != want[r] {
			ok = "NO"
			bad++
		}
		fmt.Printf("%-12s %10d %10d %8s\n", workload.RegionName(r), got[r], want[r], ok)
	}
	fmt.Printf("\ncompleted in %v, master stats: %+v\n", elapsed, cluster.Master().Stats())
	if bad > 0 {
		log.Fatalf("%d regions wrong", bad)
	}
}
