// Quickstart: the smallest complete Hurricane application.
//
// It builds a two-stage dataflow — square a stream of integers, then sum
// the squares — on an embedded cluster of 4 storage and 4 compute nodes.
// The sum stage declares a merge procedure, so Hurricane is free to clone
// it under load and reconcile the clones' partial sums.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	// The application graph: nums -> square -> squares -> sum -> total.
	app := hurricane.NewApp("quickstart")
	app.SourceBag("nums").Bag("squares").Bag("total")
	app.AddTask(hurricane.TaskSpec{
		Name:    "square",
		Inputs:  []string{"nums"},
		Outputs: []string{"squares"},
		Run: func(tc *hurricane.TaskCtx) error {
			w := hurricane.NewWriter(tc, 0, hurricane.Int64Of)
			return hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				return w.Write(v * v)
			})
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"squares"},
		Outputs: []string{"total"},
		Merge:   hurricane.MergeSum(), // clones' partial sums are added
		Run: func(tc *hurricane.TaskCtx) error {
			var total int64
			if err := hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(total)
		},
	})

	// Load and seal the input.
	const n = 100000
	nums := make([]int64, n)
	for i := range nums {
		nums[i] = int64(i)
	}
	store := cluster.Store()
	if err := hurricane.Load(ctx, store, "nums", hurricane.Int64Of, nums); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "nums"); err != nil {
		log.Fatal(err)
	}

	// Run and collect.
	start := time.Now()
	if err := cluster.Run(ctx, app); err != nil {
		log.Fatal(err)
	}
	totals, err := hurricane.Collect(ctx, store, "total", hurricane.Int64Of)
	if err != nil {
		log.Fatal(err)
	}
	var got int64
	for _, v := range totals {
		got += v
	}
	var want int64
	for _, v := range nums {
		want += v * v
	}
	fmt.Printf("sum of squares 0..%d = %d (expected %d) in %v\n", n-1, got, want, time.Since(start))
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if got != want {
		log.Fatal("WRONG RESULT")
	}
}
