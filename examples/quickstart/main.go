// Quickstart: the smallest complete Hurricane application — and the
// multi-job scheduler in one screen.
//
// It builds a two-stage dataflow — square a stream of integers, then sum
// the squares — and submits TWO instances of it concurrently to one
// embedded cluster of 4 storage and 4 compute nodes. Each job gets its
// own bag namespace (handle.Bag maps declared names to physical ones)
// and its own application master; worker slots are shared under
// fair-share leasing. The sum stage declares a merge procedure, so
// Hurricane is free to clone it under load and reconcile the clones'
// partial sums.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
)

// squareSumApp declares the graph: nums -> square -> squares -> sum -> total.
func squareSumApp() *hurricane.App {
	app := hurricane.NewApp("quickstart")
	app.SourceBag("nums").Bag("squares").Bag("total")
	app.AddTask(hurricane.TaskSpec{
		Name:    "square",
		Inputs:  []string{"nums"},
		Outputs: []string{"squares"},
		Run: func(tc *hurricane.TaskCtx) error {
			w := hurricane.NewWriter(tc, 0, hurricane.Int64Of)
			return hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				return w.Write(v * v)
			})
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"squares"},
		Outputs: []string{"total"},
		Merge:   hurricane.MergeSum(), // clones' partial sums are added
		Run: func(tc *hurricane.TaskCtx) error {
			var total int64
			if err := hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(total)
		},
	})
	return app
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	store := cluster.Store()

	// Submit two jobs of the same graph; namespacing keeps their bags
	// apart, the scheduler shares the compute pool between them.
	sizes := map[string]int{"evens": 100000, "odds": 80000}
	jobs := map[string]*hurricane.JobHandle{}
	start := time.Now()
	for _, name := range []string{"evens", "odds"} {
		h, err := cluster.SubmitJob(ctx, squareSumApp(), hurricane.JobConfig{Name: name})
		if err != nil {
			log.Fatal(err)
		}
		jobs[name] = h
		// Load and seal this job's input under its namespaced name.
		n := sizes[name]
		nums := make([]int64, n)
		for i := range nums {
			nums[i] = int64(i)
		}
		if err := hurricane.Load(ctx, store, h.Bag("nums"), hurricane.Int64Of, nums); err != nil {
			log.Fatal(err)
		}
		if err := hurricane.Seal(ctx, store, h.Bag("nums")); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for both and verify.
	for name, h := range jobs {
		if err := h.Wait(ctx); err != nil {
			log.Fatalf("job %s: %v", name, err)
		}
		totals, err := hurricane.Collect(ctx, store, h.Bag("total"), hurricane.Int64Of)
		if err != nil {
			log.Fatal(err)
		}
		var got, want int64
		for _, v := range totals {
			got += v
		}
		for i := 0; i < sizes[name]; i++ {
			want += int64(i) * int64(i)
		}
		fmt.Printf("job %s: sum of squares 0..%d = %d (expected %d)\n",
			name, sizes[name]-1, got, want)
		fmt.Printf("job %s stats: %+v\n", name, h.Stats())
		if got != want {
			log.Fatal("WRONG RESULT")
		}
	}
	fmt.Printf("two concurrent jobs on one cluster in %v\n", time.Since(start))
}
