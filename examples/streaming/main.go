// Streaming: Hurricane's two answers to the dataflow model the paper
// leaves as future work for streaming workloads (§3.1).
//
//	go run ./examples/streaming                  # windowed (default)
//	go run ./examples/streaming -mode pipelined  # chunk-chasing pipeline
//
// Windowed mode demos the real continuous-ingestion subsystem
// (internal/stream): an unbounded click source is cut into event-time
// tumbling windows, each executed as a complete DAG job with a
// region-partitioned shuffle edge — and cross-window skew memory
// warm-starts every window's partition map from its predecessor's final
// map and merged edge sketch, so the hot region is pre-isolated instead
// of rediscovered each window.
//
// Pipelined mode keeps the original demo: a Pipelined consumer chases the
// producer's output bag chunk-by-chunk, starting before the producer
// finishes. Pipelined tasks cannot consume partitioned edges (the
// documented pipelined ≠ partitioned limitation); the windowed path is
// how streaming workloads get the skew-aware shuffle.
package main

import (
	"flag"
	"log"
)

func main() {
	mode := flag.String("mode", "windowed", "windowed | pipelined")
	flag.Parse()
	switch *mode {
	case "windowed":
		runWindowed()
	case "pipelined":
		runPipelined()
	default:
		log.Fatalf("unknown -mode %q (want windowed or pipelined)", *mode)
	}
}
