package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/hurricane"
	"repro/internal/workload"
)

// runPipelined is the original pipelined-execution demo: a producer
// parses a click log while a Pipelined aggregator consumes its output
// concurrently, maintaining running per-region counts with a count-min
// sketch. The consumer starts as soon as the producer is scheduled and
// chases its output bag chunk-by-chunk; phase barriers are gone. Note the
// consumed edge here is a plain bag — pipelined consumption of
// partitioned edges is unsupported by design (see the windowed mode for
// streaming over the skew-aware shuffle).
func runPipelined() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	var producerDone, consumerStart atomic.Int64

	const regions = 16
	app := hurricane.NewApp("streaming")
	app.SourceBag("clicks").Bag("regions").Bag("sketch")

	// Stage 1: geolocate clicks into (region, ip) records.
	app.AddTask(hurricane.TaskSpec{
		Name:    "geolocate",
		Inputs:  []string{"clicks"},
		Outputs: []string{"regions"},
		Run: func(tc *hurricane.TaskCtx) error {
			codec := hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of)
			w := hurricane.NewWriter(tc, 0, codec)
			i := 0
			err := hurricane.ForEach(tc, 0, hurricane.Uint64Of, func(ip uint64) error {
				r := workload.Geolocate(uint32(ip)) % regions
				// A dash of work keeps the producer running long enough
				// for the overlap to be visible.
				if i++; i%512 == 0 {
					time.Sleep(2 * time.Millisecond)
				}
				return w.Write(hurricane.Pair[uint64, uint64]{First: uint64(r), Second: ip})
			})
			producerDone.Store(time.Now().UnixNano())
			return err
		},
	})

	// Stage 2 (PIPELINED): stream the region records as they appear,
	// folding them into a count-min sketch of per-region click volumes.
	app.AddTask(hurricane.TaskSpec{
		Name:      "aggregate",
		Inputs:    []string{"regions"},
		Outputs:   []string{"sketch"},
		Pipelined: true,
		Merge:     hurricane.MergeCountMin(),
		Run: func(tc *hurricane.TaskCtx) error {
			codec := hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of)
			cm := hurricane.NewCountMin(1<<12, 4)
			first := true
			if err := hurricane.ForEach(tc, 0, codec, func(p hurricane.Pair[uint64, uint64]) error {
				if first {
					consumerStart.Store(time.Now().UnixNano())
					first = false
				}
				var key [8]byte
				binary.LittleEndian.PutUint64(key[:], p.First)
				cm.Add(key[:], 1)
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.BytesOf).Write(cm.Encode())
		},
	})

	const records = 60000
	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 4096, Seed: 12}
	ips := gen.Generate(records)
	vals := make([]uint64, len(ips))
	truth := make([]uint64, regions)
	for i, ip := range ips {
		vals[i] = uint64(ip)
		truth[workload.Geolocate(ip)%regions]++
	}
	store := cluster.Store()
	if err := hurricane.Load(ctx, store, "clicks", hurricane.Uint64Of, vals); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "clicks"); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := cluster.Run(ctx, app); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	recs, err := hurricane.Collect(ctx, store, "sketch", hurricane.BytesOf)
	if err != nil || len(recs) != 1 {
		log.Fatalf("collect sketch: %v (%d records)", err, len(recs))
	}
	cm, err := hurricane.DecodeCountMin(recs[0])
	if err != nil {
		log.Fatal(err)
	}

	overlap := producerDone.Load() - consumerStart.Load()
	fmt.Printf("pipelined run finished in %v\n", elapsed)
	if consumerStart.Load() > 0 && overlap > 0 {
		fmt.Printf("consumer started %.1fms BEFORE the producer finished (streaming!)\n",
			float64(overlap)/1e6)
	}
	fmt.Printf("\n%-10s %12s %12s\n", "region", "sketch", "truth")
	bad := 0
	for r := 0; r < regions; r++ {
		var key [8]byte
		binary.LittleEndian.PutUint64(key[:], uint64(r))
		est := cm.Estimate(key[:])
		ok := est >= truth[r] // count-min never undercounts
		if !ok {
			bad++
		}
		fmt.Printf("%-10s %12d %12d\n", workload.RegionName(r), est, truth[r])
	}
	if bad > 0 {
		log.Fatalf("%d regions undercounted — count-min invariant broken", bad)
	}
	fmt.Println("\nall regions within count-min bounds")
}
