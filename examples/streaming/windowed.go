package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

func runWindowed() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    16 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	const (
		windows   = 6
		perWindow = 15000
		parts     = 4
	)
	// Zipf(1.3) clicks whose hot region migrates every two windows.
	gen := workload.ClickLogGen{
		S: 1.3, Regions: 64, UniquePerRegion: 4096,
		Seed: 7, DriftEvery: 2 * perWindow,
	}
	origin := int64(1_000_000_000_000)
	feed := &apps.ClickStreamSource{
		Gen: gen, Origin: origin,
		PerWindow: perWindow, Total: windows * perWindow,
	}

	// The per-window DAG: geolocate → region-partitioned shuffle →
	// per-region count + distinct-IP HLL.
	app := apps.ClickStreamApp(parts, true, 0)
	spec := app.BagSpecFor(apps.ClickStreamShuf)
	spec.SketchEvery, spec.PollEvery = 512, 256

	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:        "clicks",
		App:         app,
		Sources:     map[string]hurricane.StreamSource{apps.ClickStreamIn: feed},
		Window:      time.Second,
		Origin:      origin,
		MaxInFlight: 1, // sequential windows so every successor is warm-started
		Master: &hurricane.MasterConfig{
			SplitInterval:   10 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 4096,
			SplitFan:        4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	store := cluster.Store()
	fmt.Printf("%-8s %8s %10s %7s %7s  %s\n",
		"window", "records", "latency", "seeded", "splits", "hottest regions")
	for {
		res, err := h.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatalf("window %d: %v", res.Index, res.Err)
		}
		got, err := apps.CollectClickStream(ctx, store, res.Bag(apps.ClickStreamOut))
		if err != nil {
			log.Fatal(err)
		}
		// Top-2 regions by click count: watch the hot region drift.
		top := [2]int{-1, -1}
		for region, r := range got {
			switch {
			case top[0] < 0 || r.Count > got[uint64(top[0])].Count:
				top[1], top[0] = top[0], int(region)
			case top[1] < 0 || r.Count > got[uint64(top[1])].Count:
				top[1] = int(region)
			}
		}
		fmt.Printf("w%-7d %8d %9.1fms %7v %7d  %s(%d) %s(%d)\n",
			res.Index, res.Records,
			float64(res.DoneAt.Sub(res.SubmittedAt).Microseconds())/1000,
			res.Seeded, res.Splits,
			workload.RegionName(top[0]), got[uint64(top[0])].Count,
			workload.RegionName(top[1]), got[uint64(top[1])].Count)
	}
	if err := h.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	st := h.Stats()
	fmt.Printf("\n%d windows completed, %d failed; skew memory from window %d\n",
		st.Completed, st.Failed, st.MemoryWindow)
	fmt.Println("later windows start with the hot region already isolated (seeded=true)")
}
