// PageRank: the paper's multi-stage workload (§5.3) on the real engine —
// iterations of scatter/gather over an R-MAT power-law graph, verified
// against a serial oracle.
//
// The scatter stage consumes the edge list (clones split it) while
// scanning the compact rank vector; the gather stage aggregates
// contributions with a per-vertex-sum merge.
//
// Run with: go run ./examples/pagerank [-scale N] [-iters N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 10, "R-MAT scale (2^scale vertices)")
	iters := flag.Int("iters", 3, "PageRank iterations")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 4,
		Master:       hurricane.MasterConfig{CloneInterval: 20 * time.Millisecond},
		Node: hurricane.NodeConfig{
			MonitorInterval:   10 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	gen := workload.RMATGen{Scale: *scale, EdgeFactor: 16, Seed: 7}
	n := gen.NumVertices()
	fmt.Printf("generating R-MAT graph: %d vertices, %d edges...\n", n, gen.NumEdges())
	edges := gen.Generate()
	deg := workload.OutDegrees(edges, n)
	fmt.Printf("max out-degree %d (mean %.1f) — that skew is what cloning absorbs\n",
		workload.MaxDegree(deg), float64(len(edges))/float64(n))

	if err := apps.LoadEdges(ctx, cluster.Store(), edges); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := cluster.Run(ctx, apps.PageRankApp(n, *iters, false)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := apps.PageRanks(ctx, cluster.Store(), n, *iters)
	if err != nil {
		log.Fatal(err)
	}
	want := apps.SerialPageRank(edges, n, *iters)
	diff := apps.MaxAbsDiff(got, want)

	// Top-5 vertices by rank.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return got[idx[a]] > got[idx[b]] })
	fmt.Printf("\ntop vertices after %d iterations:\n", *iters)
	for _, v := range idx[:5] {
		fmt.Printf("  vertex %6d  rank %.8f\n", v, got[v])
	}
	fmt.Printf("\nmax deviation from serial oracle: %.2e\n", diff)
	fmt.Printf("completed in %v, master stats: %+v\n", elapsed, cluster.Master().Stats())
	if diff > 1e-9 {
		log.Fatal("RESULT DIVERGES FROM ORACLE")
	}
}
