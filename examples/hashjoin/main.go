// HashJoin: the paper's second workload (§5.3), expressed through the
// query planner instead of hand-wired stages — roughly a third of the
// user-facing code the stage-level version needed (that wiring survives
// as the oracle in internal/apps.HashJoinApp / HashJoinShuffleApp).
//
// The program declares WHAT to compute — join R and S on the tuple key —
// and the planner decides HOW: it consults warm statistics (here, a
// sketch of the probe relation's keys) and picks broadcast when R is
// small, a skewed join with pre-isolated heavy hitters when the probe
// keys are skewed, or plain repartition otherwise; runtime sketch-driven
// splitting still adapts the edge either way.
//
// Run with: go run ./examples/hashjoin [-build N] [-probe N] [-skew S]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/apps"
	"repro/internal/workload"
)

type tuple = hurricane.Pair[uint64, uint64]
type match = hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]

func main() {
	buildN := flag.Int("build", 20000, "build-relation tuples")
	probeN := flag.Int("probe", 200000, "probe-relation tuples")
	skew := flag.Float64("skew", 1.0, "zipf skew of probe keys")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 4,
		Master: hurricane.MasterConfig{
			CloneInterval:   20 * time.Millisecond,
			SplitInterval:   10 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 8192,
			SplitFan:        4,
		},
		Node: hurricane.NodeConfig{
			MonitorInterval:   10 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Printf("generating relations: R=%d tuples, S=%d tuples, skew s=%.1f\n",
		*buildN, *probeN, *skew)
	rg := workload.RelationGen{Keys: 1000, S: 0, Seed: 1}
	sg := workload.RelationGen{Keys: 1000, S: *skew, Seed: 2}
	r := rg.Generate(*buildN)
	s := sg.Generate(*probeN)
	want := workload.JoinCount(r, s)

	// The whole dataflow: two scans, one join, one sink.
	p := q.New("hashjoin")
	build := q.Scan(p, apps.JoinBagR, apps.TupleCodec)
	probe := q.Scan(p, apps.JoinBagS, apps.TupleCodec)
	q.Join(build, probe,
		func(t tuple) uint64 { return t.First },
		func(t tuple) uint64 { return t.First },
		apps.MatchCodec,
		func(b, pr tuple, emit func(match) error) error {
			return emit(match{First: pr.First,
				Second: hurricane.Pair[uint64, uint64]{First: b.Second, Second: pr.Second}})
		},
	).Sink("matches")

	// Warm statistics: build-side size plus the probe key distribution
	// (what a previous run's edge sketch would have recorded).
	c, err := p.Compile(q.Options{Parts: 8, Stats: apps.JoinWarmStats(r, s)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Explain())

	store := cluster.Store()
	if err := apps.LoadRelations(ctx, store, r, s); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := c.Run(ctx, cluster); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := hurricane.Collect(ctx, store, c.SinkBag("matches"), apps.MatchCodec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join (%s) produced %d matches (expected %d) in %v\n",
		c.Joins[0].Strategy, len(got), want, elapsed)
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if int64(len(got)) != want {
		log.Fatal("WRONG RESULT")
	}
}
