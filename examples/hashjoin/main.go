// HashJoin: the paper's second workload (§5.3) on the real engine — a
// partitioned hash join where skewed key popularity inflates some
// partitions' hit rates.
//
// The build side of each join task is a scan input (every clone reads it
// in full); the probe side is consumed chunk-by-chunk, so clones split
// the hot partition's probe work.
//
// Run with: go run ./examples/hashjoin [-build N] [-probe N] [-skew S]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

func main() {
	buildN := flag.Int("build", 20000, "build-relation tuples")
	probeN := flag.Int("probe", 200000, "probe-relation tuples")
	skew := flag.Float64("skew", 1.0, "zipf skew of probe keys")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	const parts = 8
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 4,
		Master:       hurricane.MasterConfig{CloneInterval: 20 * time.Millisecond},
		Node: hurricane.NodeConfig{
			MonitorInterval:   10 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Printf("generating relations: R=%d tuples, S=%d tuples, skew s=%.1f\n",
		*buildN, *probeN, *skew)
	rg := workload.RelationGen{Keys: 1000, S: 0, Seed: 1}
	sg := workload.RelationGen{Keys: 1000, S: *skew, Seed: 2}
	r := rg.Generate(*buildN)
	s := sg.Generate(*probeN)
	want := workload.JoinCount(r, s)

	if err := apps.LoadRelations(ctx, cluster.Store(), r, s); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := cluster.Run(ctx, apps.HashJoinApp(parts, false)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := apps.JoinResultCount(ctx, cluster.Store(), parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join produced %d matches (expected %d) in %v\n", got, want, elapsed)
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if got != want {
		log.Fatal("WRONG RESULT")
	}
}
