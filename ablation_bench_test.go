package repro

import (
	"context"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// Ablation benchmarks: the design choices DESIGN.md calls out, measured
// on the real engine (not the simulator). Compare the paired variants'
// ns/op:
//
//	go test -bench=Ablation -benchtime 3x .

// ablationCluster builds a cluster tuned so that cloning can engage
// within a short benchmark run.
func ablationCluster(b *testing.B, mutate func(*hurricane.ClusterConfig)) *hurricane.Cluster {
	b.Helper()
	cfg := hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    32 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   2 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
		Master: hurricane.MasterConfig{
			PollInterval:     time.Millisecond,
			CloneInterval:    2 * time.Millisecond,
			DisableHeuristic: true,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cluster, err := hurricane.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return cluster
}

// skewedClickLog runs a skewed ClickLog job once and returns the clone
// count.
func skewedClickLog(b *testing.B, cluster *hurricane.Cluster, ips []uint32) int {
	b.Helper()
	const regions, hostBits = 8, 10
	ctx := context.Background()
	if err := apps.LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		b.Fatal(err)
	}
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		b.Fatal(err)
	}
	return cluster.Master().Stats().Clones
}

var ablationIPs = func() []uint32 {
	gen := workload.ClickLogGen{S: 1.0, Regions: 8, UniquePerRegion: 1 << 10, Seed: 99}
	return gen.Generate(200000)
}()

// BenchmarkAblationCloningOn measures the skewed ClickLog with cloning
// enabled (compare against BenchmarkAblationCloningOff — Fig. 6's ablation
// on the real engine).
func BenchmarkAblationCloningOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster := ablationCluster(b, nil)
		clones := skewedClickLog(b, cluster, ablationIPs)
		b.ReportMetric(float64(clones), "clones")
		cluster.Shutdown()
	}
}

// BenchmarkAblationCloningOff is HurricaneNC on the real engine.
func BenchmarkAblationCloningOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster := ablationCluster(b, func(cfg *hurricane.ClusterConfig) {
			cfg.Master.DisableCloning = true
		})
		clones := skewedClickLog(b, cluster, ablationIPs)
		b.ReportMetric(float64(clones), "clones")
		cluster.Shutdown()
	}
}

// BenchmarkAblationBatchFactor1 vs 10: the remove-side prefetch pipeline
// (Fig. 10's ablation on the real engine, with transport latency injected
// so prefetching matters).
func benchBatchFactor(b *testing.B, factor int) {
	for i := 0; i < b.N; i++ {
		cluster := ablationCluster(b, func(cfg *hurricane.ClusterConfig) {
			cfg.BatchFactor = factor
			cfg.TransportLatency = 50 * time.Microsecond
		})
		skewedClickLog(b, cluster, ablationIPs[:50000])
		cluster.Shutdown()
	}
}

func BenchmarkAblationBatchFactor1(b *testing.B)  { benchBatchFactor(b, 1) }
func BenchmarkAblationBatchFactor10(b *testing.B) { benchBatchFactor(b, 10) }

// BenchmarkAblationReplication measures the cost of 2× storage
// replication (synchronous backup writes + pointer sync) against the
// unreplicated baseline.
func benchReplication(b *testing.B, factor int) {
	for i := 0; i < b.N; i++ {
		cluster := ablationCluster(b, func(cfg *hurricane.ClusterConfig) {
			cfg.Replication = factor
		})
		skewedClickLog(b, cluster, ablationIPs[:50000])
		cluster.Shutdown()
	}
}

func BenchmarkAblationReplicationOff(b *testing.B) { benchReplication(b, 1) }
func BenchmarkAblationReplication2x(b *testing.B)  { benchReplication(b, 2) }

// BenchmarkAblationSpeculative measures speculative cloning's effect when
// reactive overload detection is blind (threshold unreachable).
func benchSpeculative(b *testing.B, on bool) {
	for i := 0; i < b.N; i++ {
		cluster := ablationCluster(b, func(cfg *hurricane.ClusterConfig) {
			cfg.Node.OverloadThreshold = 1.5
			cfg.Master.SpeculativeCloning = on
			cfg.Master.SpeculativeAfter = 5 * time.Millisecond
		})
		clones := skewedClickLog(b, cluster, ablationIPs)
		b.ReportMetric(float64(clones), "clones")
		cluster.Shutdown()
	}
}

func BenchmarkAblationSpeculativeOff(b *testing.B) { benchSpeculative(b, false) }
func BenchmarkAblationSpeculativeOn(b *testing.B)  { benchSpeculative(b, true) }
