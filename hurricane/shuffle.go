package hurricane

import (
	"fmt"

	"repro/internal/shuffle"
)

// The skew-aware shuffle (internal/shuffle) partitions a logical bag by
// key onto P physical partition bags. Declare a partitioned bag with
// App.PartitionedBag (or AddBag with BagSpec.Partitions, plus
// BagSpec.Spread to permit record-level spreading of isolated heavy
// hitters), write it from producer tasks with a PartitionedWriter, and
// consume it like any bag: the engine runs one consumer worker per
// physical partition. While producers run, they feed key counts into a
// per-edge count-min sketch; the application master watches the merged
// sketch and splits hot partitions at runtime, so skewed keyed workloads
// spread across consumers instead of serializing on one bag.

// Partitioner maps a record key to one of n base partitions. Implementations
// must be deterministic and shared by all producers of an edge.
type Partitioner = shuffle.Partitioner

// HashPartitioner is the default partitioner (FNV-1a modulo n).
type HashPartitioner = shuffle.HashPartitioner

// PartitionedWriter routes typed records by key into the physical
// partition bags of a partitioned output, adopting partition-map updates
// published by the master mid-stream. Create one per producer worker with
// NewPartitionedWriter; the engine flushes it automatically when the task
// completes.
type PartitionedWriter[T any] struct {
	w     *shuffle.Writer
	codec Codec[T]
	key   func(T) []byte
	buf   []byte
	kbuf  []byte
}

// NewPartitionedWriter returns a partitioned writer for output out, which
// must be declared with BagSpec.Partitions > 0 (it panics otherwise, like
// a type error). key extracts the routing key from a record; records with
// equal keys land in the same partition unless the master isolates the key
// with record-level spreading (BagSpec.Spread).
func NewPartitionedWriter[T any](tc *TaskCtx, out int, codec Codec[T], key func(T) []byte) *PartitionedWriter[T] {
	return NewPartitionedWriterWith(tc, out, codec, key, nil)
}

// NewPartitionedWriterWith is NewPartitionedWriter with a custom base
// partitioner (nil means the default HashPartitioner). All producers of an
// edge must use the same partitioner.
func NewPartitionedWriterWith[T any](tc *TaskCtx, out int, codec Codec[T], key func(T) []byte, part Partitioner) *PartitionedWriter[T] {
	spec := tc.OutputBagSpec(out)
	if spec == nil || spec.Partitions <= 0 {
		panic(fmt.Sprintf("hurricane: output bag %q is not partitioned", tc.OutputName(out)))
	}
	w := shuffle.NewWriter(tc.Context(), shuffle.WriterConfig{
		Store:       tc.Store(),
		Edge:        tc.OutputName(out),
		Parts:       spec.Partitions,
		WriterID:    tc.Blueprint().ID,
		Partitioner: part,
		PollEvery:   spec.PollEvery,
		SketchEvery: spec.SketchEvery,
		Obs:         tc.Obs(),
		Job:         tc.Job(),
	})
	tc.OnFinish(w.Close)
	return &PartitionedWriter[T]{w: w, codec: codec, key: key}
}

// Write routes one record to its partition.
func (pw *PartitionedWriter[T]) Write(v T) error {
	pw.kbuf = append(pw.kbuf[:0], pw.key(v)...)
	pw.buf = pw.codec.Encode(pw.buf[:0], v)
	return pw.w.Write(pw.kbuf, pw.buf)
}

// Uint64Key adapts a uint64-keyed extractor into the []byte key form
// PartitionedWriter expects (little-endian, allocation-free at the call
// site via the writer's internal buffer).
func Uint64Key[T any](f func(T) uint64) func(T) []byte {
	var buf [8]byte
	return func(v T) []byte {
		k := f(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(k >> (8 * i))
		}
		return buf[:]
	}
}
