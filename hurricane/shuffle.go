package hurricane

import (
	"encoding/binary"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/shuffle"
)

// The skew-aware shuffle (internal/shuffle) partitions a logical bag by
// key onto P physical partition bags. Declare a partitioned bag with
// App.PartitionedBag (or AddBag with BagSpec.Partitions, plus
// BagSpec.Spread to permit record-level spreading of isolated heavy
// hitters), write it from producer tasks with a PartitionedWriter, and
// consume it like any bag: the engine runs one consumer worker per
// physical partition. While producers run, they feed key counts into a
// per-edge count-min sketch; the application master watches the merged
// sketch and splits hot partitions at runtime, so skewed keyed workloads
// spread across consumers instead of serializing on one bag.

// Partitioner maps a record key to one of n base partitions. Implementations
// must be deterministic and shared by all producers of an edge.
type Partitioner = shuffle.Partitioner

// HashPartitioner is the default partitioner (FNV-1a modulo n).
type HashPartitioner = shuffle.HashPartitioner

// PartitionedWriter routes typed records by key into the physical
// partition bags of a partitioned output, adopting partition-map updates
// published by the master mid-stream. Create one per producer worker with
// NewPartitionedWriter; the engine flushes it automatically when the task
// completes.
type PartitionedWriter[T any] struct {
	w     *shuffle.Writer
	codec Codec[T]
	key   func(T) []byte
	buf   []byte
	kbuf  []byte

	// Batch scatter state (see batch.go): the codec's columnar view,
	// resolved lazily on the first WriteBatch, and one pooled batch
	// builder per routing decision. Base partitions — the overwhelmingly
	// common routing outcome — index a dense slice; isolation and
	// sub-partition refs take the map (a struct-keyed map lookup per
	// record is measurable at batch rates).
	cc         chunk.ColumnCodec[T]
	kinds      []chunk.ColKind
	baseLeaves []*chunk.BatchBuilder
	leaves     map[shuffle.RouteRef]*chunk.BatchBuilder
	chunkSize  int
	rowOnly    bool

	// keyU64, when set (NewPartitionedWriterUint64), unlocks the
	// uint64-native batch routing path: WriteBatch hashes and counts keys
	// as words instead of materializing an 8-byte encoding per record.
	// Placement is identical to the generic path by construction.
	keyU64  func(T) uint64
	u64keys []uint64

	// Bulk-encode scatter state: the codec's bulk view (nil when any
	// component codec lacks one) and reusable per-leaf row-index lists,
	// dense for base partitions, mapped for isolation/sub-partition refs.
	bulk    chunk.BulkColumnCodec[T]
	baseIdx [][]int32
	mapIdx  map[shuffle.RouteRef][]int32
}

// NewPartitionedWriter returns a partitioned writer for output out, which
// must be declared with BagSpec.Partitions > 0 (it panics otherwise, like
// a type error). key extracts the routing key from a record; records with
// equal keys land in the same partition unless the master isolates the key
// with record-level spreading (BagSpec.Spread).
func NewPartitionedWriter[T any](tc *TaskCtx, out int, codec Codec[T], key func(T) []byte) *PartitionedWriter[T] {
	return NewPartitionedWriterWith(tc, out, codec, key, nil)
}

// NewPartitionedWriterWith is NewPartitionedWriter with a custom base
// partitioner (nil means the default HashPartitioner). All producers of an
// edge must use the same partitioner.
func NewPartitionedWriterWith[T any](tc *TaskCtx, out int, codec Codec[T], key func(T) []byte, part Partitioner) *PartitionedWriter[T] {
	spec := tc.OutputBagSpec(out)
	if spec == nil || spec.Partitions <= 0 {
		panic(fmt.Sprintf("hurricane: output bag %q is not partitioned", tc.OutputName(out)))
	}
	w := shuffle.NewWriter(tc.Context(), shuffle.WriterConfig{
		Store:       tc.Store(),
		Edge:        tc.OutputName(out),
		Parts:       spec.Partitions,
		WriterID:    tc.Blueprint().ID,
		Partitioner: part,
		PollEvery:   spec.PollEvery,
		SketchEvery: spec.SketchEvery,
		Obs:         tc.Obs(),
		Job:         tc.Job(),
		OnSpans:     tc.ShuffleSpanHook(),
	})
	pw := &PartitionedWriter[T]{w: w, codec: codec, key: key, chunkSize: tc.Store().ChunkSize()}
	// pw.close (not w.Close) so pending batch builders flush before the
	// shuffle writer's inserters shut down.
	tc.OnFinish(pw.close)
	return pw
}

// Write routes one record to its partition.
func (pw *PartitionedWriter[T]) Write(v T) error {
	pw.kbuf = append(pw.kbuf[:0], pw.key(v)...)
	pw.buf = pw.codec.Encode(pw.buf[:0], v)
	return pw.w.Write(pw.kbuf, pw.buf)
}

// NewPartitionedWriterUint64 is NewPartitionedWriter for uint64-keyed
// records (keys identified by their 8-byte little-endian encoding, the
// Uint64Key convention). Row-path Write behaves exactly like
// NewPartitionedWriter with Uint64Key(key); WriteBatch additionally
// routes on the key words directly, skipping the per-record byte
// round-trip.
func NewPartitionedWriterUint64[T any](tc *TaskCtx, out int, codec Codec[T], key func(T) uint64) *PartitionedWriter[T] {
	pw := NewPartitionedWriterWith(tc, out, codec, Uint64Key(key), nil)
	pw.keyU64 = key
	return pw
}

// Uint64Key adapts a uint64-keyed extractor into the []byte key form
// PartitionedWriter expects (little-endian, allocation-free at the call
// site via the writer's internal buffer).
func Uint64Key[T any](f func(T) uint64) func(T) []byte {
	var buf [8]byte
	return func(v T) []byte {
		binary.LittleEndian.PutUint64(buf[:], f(v))
		return buf[:]
	}
}
