package hurricane_test

import (
	"context"
	"fmt"
	"log"

	"repro/hurricane"
)

// Example demonstrates the smallest complete Hurricane application: sum a
// bag of integers with a merge procedure so the task can be cloned safely.
func Example() {
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	app := hurricane.NewApp("example")
	app.SourceBag("nums").Bag("total")
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"nums"},
		Outputs: []string{"total"},
		Merge:   hurricane.MergeSum(),
		Run: func(tc *hurricane.TaskCtx) error {
			var total int64
			if err := hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(total)
		},
	})

	ctx := context.Background()
	store := cluster.Store()
	if err := hurricane.Load(ctx, store, "nums", hurricane.Int64Of, []int64{1, 2, 3, 4, 5}); err != nil {
		log.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "nums"); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		log.Fatal(err)
	}
	totals, err := hurricane.Collect(ctx, store, "total", hurricane.Int64Of)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(totals[0])
	// Output: 15
}

// ExamplePairOf shows composing codecs for tuple records.
func ExamplePairOf() {
	codec := hurricane.PairOf(hurricane.StringOf, hurricane.Int64Of)
	rec := codec.Encode(nil, hurricane.Pair[string, int64]{First: "clicks", Second: 42})
	v, _, err := codec.Decode(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v.First, v.Second)
	// Output: clicks 42
}

// ExampleHLL shows the mergeable distinct-count sketch.
func ExampleHLL() {
	a := hurricane.NewHLL(12)
	b := hurricane.NewHLL(12)
	for i := 0; i < 500; i++ {
		a.Add([]byte(fmt.Sprintf("user-%d", i)))
		b.Add([]byte(fmt.Sprintf("user-%d", i+250))) // 250 overlap
	}
	if err := a.Merge(b); err != nil {
		log.Fatal(err)
	}
	est := a.Estimate()
	fmt.Println(est > 700 && est < 800) // ~750 distinct
	// Output: true
}

// ExampleCountMin shows the mergeable frequency sketch.
func ExampleCountMin() {
	cm := hurricane.NewCountMin(1<<12, 4)
	for i := 0; i < 1000; i++ {
		cm.Add([]byte("popular"), 1)
	}
	cm.Add([]byte("rare"), 2)
	fmt.Println(cm.Estimate([]byte("popular")) >= 1000, cm.Estimate([]byte("rare")) >= 2)
	// Output: true true
}
