package hurricane

import (
	"encoding/binary"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/shuffle"
)

// Vectorized task bodies. ForEachBatch and PartitionedWriter.WriteBatch
// are the batch counterparts of ForEach and PartitionedWriter.Write: a
// task that consumes and produces whole column batches pays the codec,
// routing, and sketch costs once per batch instead of once per record.
// Both fall back to the row path transparently — row chunks in the input
// decode through the same loop, and non-columnar codecs write rows — so
// batch tasks and row tasks interoperate on the same bags.

// ForEachBatch drains input i of the task, invoking fn with successive
// value batches. Batch chunks decode through the codec's columnar path
// (one allocation per column per batch); row chunks arrive as one batch
// per chunk. The slice is reused between calls — fn must not retain it.
func ForEachBatch[T any](tc *TaskCtx, input int, codec Codec[T], fn func([]T) error) error {
	var (
		vec []T
		bt  chunk.Batch
	)
	cc, columnar := chunk.ColumnarOf(codec)
	var scratch chunk.ScratchColumnCodec[T]
	if columnar {
		// This resolved view is exclusive to the loop, so the
		// scratch-backed decode is safe and skips two column allocations
		// per batch.
		scratch, _ = any(cc).(chunk.ScratchColumnCodec[T])
	}
	for {
		c, err := tc.Remove(input)
		if err == bag.ErrEmpty {
			return nil
		}
		if err != nil {
			return err
		}
		vec = vec[:0]
		if columnar && chunk.IsBatch(c) {
			p, err := chunk.DecodeBatch(c, &bt)
			if err != nil {
				return err
			}
			if scratch != nil {
				vec, _, err = scratch.DecodeColumnScratch(p, 0, vec)
			} else {
				vec, _, err = cc.DecodeColumn(p, 0, vec)
			}
			if err != nil {
				return err
			}
		} else {
			// Row chunks (and batch chunks under non-columnar codecs)
			// re-frame record-at-a-time; the whole chunk still reaches fn
			// as one batch.
			recs, err := chunk.Records(c)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				v, _, err := codec.Decode(rec)
				if err != nil {
					return err
				}
				vec = append(vec, v)
			}
		}
		if len(vec) == 0 {
			continue
		}
		if err := fn(vec); err != nil {
			return err
		}
	}
}

// WriteBatch routes a batch of records in one pass: the partition map is
// consulted once, the routing vector is computed for the whole batch,
// rows are scattered into per-partition column builders, and the edge's
// sketch receives exact per-key counts in bulk. Requires a columnar
// codec; otherwise it degrades to per-record Write calls.
func (pw *PartitionedWriter[T]) WriteBatch(vs []T) error {
	if len(vs) == 0 {
		return nil
	}
	if pw.cc == nil && !pw.rowOnly {
		if cc, ok := chunk.ColumnarOf(pw.codec); ok {
			pw.cc = cc
			pw.kinds = chunk.KindsOf(cc)
			pw.leaves = make(map[shuffle.RouteRef]*chunk.BatchBuilder)
			if bc, ok := chunk.BulkOf(cc); ok {
				pw.bulk = bc
			}
		} else {
			pw.rowOnly = true
		}
	}
	if pw.rowOnly {
		for i := range vs {
			if err := pw.Write(vs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	var refs []shuffle.RouteRef
	if pw.keyU64 != nil {
		if cap(pw.u64keys) < len(vs) {
			pw.u64keys = make([]uint64, len(vs))
		}
		pw.u64keys = pw.u64keys[:len(vs)]
		for i := range vs {
			pw.u64keys[i] = pw.keyU64(vs[i])
		}
		refs = pw.w.PartitionBatchUint64(pw.u64keys)
	} else {
		refs = pw.w.PartitionBatch(len(vs), func(i int) []byte { return pw.key(vs[i]) })
	}
	if pw.bulk != nil {
		return pw.scatterBulk(vs, refs)
	}
	for i, ref := range refs {
		var b *chunk.BatchBuilder
		if ref.Iso < 0 && ref.Sub < 0 {
			// Base partition: dense-slice lookup, no map hashing.
			for ref.Part >= len(pw.baseLeaves) {
				pw.baseLeaves = append(pw.baseLeaves, nil)
			}
			if b = pw.baseLeaves[ref.Part]; b == nil {
				b = chunk.GetBatchBuilder(0, pw.kinds)
				pw.baseLeaves[ref.Part] = b
			}
		} else if b = pw.leaves[ref]; b == nil {
			b = chunk.GetBatchBuilder(0, pw.kinds)
			pw.leaves[ref] = b
		}
		pw.cc.EncodeColumn(b, 0, vs[i])
		b.EndRow()
		if b.Size() >= pw.chunkSize {
			if err := pw.flushLeaf(ref, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// scatterBulk is WriteBatch's fast scatter for bulk-encodable codecs: it
// groups the batch's row indices by routing decision, then encodes each
// group column-major with one EncodeRows call — so the virtual dispatch,
// row accounting, and chunk-size check run once per leaf per batch
// instead of once per record. Row order within a leaf is stream order,
// exactly as the per-record path produces.
func (pw *PartitionedWriter[T]) scatterBulk(vs []T, refs []shuffle.RouteRef) error {
	for i := range pw.baseIdx {
		pw.baseIdx[i] = pw.baseIdx[i][:0]
	}
	mapped := false
	for i, ref := range refs {
		if ref.Iso < 0 && ref.Sub < 0 {
			for ref.Part >= len(pw.baseIdx) {
				pw.baseIdx = append(pw.baseIdx, nil)
			}
			pw.baseIdx[ref.Part] = append(pw.baseIdx[ref.Part], int32(i))
		} else {
			if pw.mapIdx == nil {
				pw.mapIdx = make(map[shuffle.RouteRef][]int32)
			}
			pw.mapIdx[ref] = append(pw.mapIdx[ref], int32(i))
			mapped = true
		}
	}
	for p, idx := range pw.baseIdx {
		if len(idx) == 0 {
			continue
		}
		ref := shuffle.RouteRef{Iso: -1, Part: p, Sub: -1}
		for ref.Part >= len(pw.baseLeaves) {
			pw.baseLeaves = append(pw.baseLeaves, nil)
		}
		b := pw.baseLeaves[p]
		if b == nil {
			b = chunk.GetBatchBuilder(0, pw.kinds)
			pw.baseLeaves[p] = b
		}
		pw.bulk.EncodeRows(b, 0, vs, idx)
		b.EndRows(len(idx))
		if b.Size() >= pw.chunkSize {
			if err := pw.flushLeaf(ref, b); err != nil {
				return err
			}
		}
	}
	if !mapped {
		return nil
	}
	for ref, idx := range pw.mapIdx {
		if len(idx) == 0 {
			continue
		}
		b := pw.leaves[ref]
		if b == nil {
			b = chunk.GetBatchBuilder(0, pw.kinds)
			pw.leaves[ref] = b
		}
		pw.bulk.EncodeRows(b, 0, vs, idx)
		b.EndRows(len(idx))
		pw.mapIdx[ref] = idx[:0]
		if b.Size() >= pw.chunkSize {
			if err := pw.flushLeaf(ref, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushLeaf encodes and inserts one partition's pending batch.
func (pw *PartitionedWriter[T]) flushLeaf(ref shuffle.RouteRef, b *chunk.BatchBuilder) error {
	rows := b.Rows()
	if rows == 0 {
		return nil
	}
	c := b.Encode()
	b.Clear()
	return pw.w.InsertBatchChunk(ref, c, rows)
}

// close flushes pending batches, returns their builders to the pool, and
// closes the underlying shuffle writer. Registered as the task-finish
// hook by NewPartitionedWriterWith.
func (pw *PartitionedWriter[T]) close() error {
	var firstErr error
	for p, b := range pw.baseLeaves {
		if b == nil {
			continue
		}
		ref := shuffle.RouteRef{Iso: -1, Part: p, Sub: -1}
		if err := pw.flushLeaf(ref, b); err != nil && firstErr == nil {
			firstErr = err
		}
		chunk.PutBatchBuilder(b)
		pw.baseLeaves[p] = nil
	}
	for ref, b := range pw.leaves {
		if err := pw.flushLeaf(ref, b); err != nil && firstErr == nil {
			firstErr = err
		}
		chunk.PutBatchBuilder(b)
		delete(pw.leaves, ref)
	}
	if err := pw.w.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ---- skew-exploiting aggregation (Zhang & Ross style) ----

// heavyLinearMax is the slot count up to which a linear scan beats the
// open-addressed table (the keys fit in one or two cache lines).
const heavyLinearMax = 8

// HeavySlots gives an aggregation's heavy-hitter keys dense pre-allocated
// accumulator slots, resolved without touching the tail hash map: a
// linear scan when the key set fits in a cache line, a small
// open-addressed table otherwise. Seed it from the edge's warm sketch
// (WarmTopKeys64) at task start; keys outside the set fall through to the
// caller's map path. On a Zipf-skewed edge the handful of heavy keys
// covers most records, so most lookups never hash.
type HeavySlots[A any] struct {
	keys []uint64
	accs []A
	// Open-addressed index (used when len(keys) > heavyLinearMax):
	// table[h] holds slot+1, 0 marks an empty cell.
	table []int32
	mask  uint64

	hits    uint64
	lookups uint64
}

// NewHeavySlots builds dense accumulator slots for the given keys
// (duplicates are dropped). A nil or empty key set returns nil, which
// every method treats as "no fast path".
func NewHeavySlots[A any](keys []uint64) *HeavySlots[A] {
	if len(keys) == 0 {
		return nil
	}
	h := &HeavySlots[A]{}
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			h.keys = append(h.keys, k)
		}
	}
	h.accs = make([]A, len(h.keys))
	if len(h.keys) > heavyLinearMax {
		size := 4
		for size < 4*len(h.keys) {
			size <<= 1
		}
		h.table = make([]int32, size)
		h.mask = uint64(size - 1)
		for i, k := range h.keys {
			p := mix64(k) & h.mask
			for h.table[p] != 0 {
				p = (p + 1) & h.mask
			}
			h.table[p] = int32(i) + 1
		}
	}
	return h
}

// Slot returns the dense accumulator for key, or ok=false when key is not
// heavy — the caller then takes its hash-map path.
func (h *HeavySlots[A]) Slot(key uint64) (*A, bool) {
	if h == nil {
		return nil, false
	}
	h.lookups++
	if h.table == nil {
		for i, k := range h.keys {
			if k == key {
				h.hits++
				return &h.accs[i], true
			}
		}
		return nil, false
	}
	p := mix64(key) & h.mask
	for {
		s := h.table[p]
		if s == 0 {
			return nil, false
		}
		if h.keys[s-1] == key {
			h.hits++
			return &h.accs[s-1], true
		}
		p = (p + 1) & h.mask
	}
}

// Len reports the number of slots.
func (h *HeavySlots[A]) Len() int {
	if h == nil {
		return 0
	}
	return len(h.keys)
}

// Each visits every slot, in seeding order. Accumulators that were never
// hit hold the zero value; callers typically skip them.
func (h *HeavySlots[A]) Each(fn func(key uint64, acc *A)) {
	if h == nil {
		return
	}
	for i, k := range h.keys {
		fn(k, &h.accs[i])
	}
}

// Hits reports how many lookups resolved in a dense slot.
func (h *HeavySlots[A]) Hits() uint64 {
	if h == nil {
		return 0
	}
	return h.hits
}

// Lookups reports the total number of Slot calls.
func (h *HeavySlots[A]) Lookups() uint64 {
	if h == nil {
		return 0
	}
	return h.lookups
}

// FlushMetrics accumulates the fast path's hit counters into the job's
// registry under the consuming edge's label, so benchmark documents can
// report the hit rate next to the timing. Call once at task end.
func (h *HeavySlots[A]) FlushMetrics(tc *TaskCtx, edge string) {
	if h == nil || tc.Obs() == nil {
		return
	}
	labels := []string{"job", tc.Job(), "edge", edge}
	tc.Obs().Counter("hurricane_agg_heavy_slot_hits_total", labels...).Add(h.hits)
	tc.Obs().Counter("hurricane_agg_heavy_slot_lookups_total", labels...).Add(h.lookups)
}

// EdgeOf returns the logical shuffle-edge name a physical partition bag
// belongs to ("gb.shuf.p1.s3" → "gb.shuf"); non-partition names are
// returned unchanged. Consumers use it to label metrics for the edge they
// drain when all they are handed is one leaf bag name.
func EdgeOf(leaf string) string { return shuffle.EdgeOf(leaf) }

// WarmTopKeyBytes returns up to k heavy keys of the shuffle edge feeding
// input i, heaviest first: the merged producer sketch's keys whose
// estimated share exceeds minFraction, supplemented by the keys isolated
// in the edge's published partition map. The two sources cover different
// lifetimes — the sketch slot is live while producers run but is wiped by
// the master when the edge seals, while the partition-map control bag
// (including a streaming window's warm-start seed, which pre-isolates the
// previous window's heavy hitters) survives until the job is reclaimed —
// so a consumer sees the heavy keys whether it starts before or after the
// producers finish. Best-effort: a cold edge returns nil.
func WarmTopKeyBytes(tc *TaskCtx, input int, k int, minFraction float64) [][]byte {
	edge := shuffle.EdgeOf(tc.InputName(input))
	var keys [][]byte
	seen := make(map[string]bool, k)
	if st, err := tc.Store().FetchSketch(tc.Context(), edge); err == nil {
		for _, h := range st.TopKeys(k, minFraction) {
			if !seen[string(h.Key)] {
				seen[string(h.Key)] = true
				keys = append(keys, h.Key)
			}
		}
	}
	if len(keys) < k {
		if pm := latestMap(tc, edge); pm != nil {
			for _, iso := range pm.Isolated {
				if len(iso.Key) == 0 || seen[string(iso.Key)] {
					continue
				}
				seen[string(iso.Key)] = true
				keys = append(keys, iso.Key)
				if len(keys) >= k {
					break
				}
			}
		}
	}
	return keys
}

// latestMap reads the newest partition map published for the edge, nil
// when none was (the base map is derived locally and never published).
func latestMap(tc *TaskCtx, edge string) *shuffle.PartitionMap {
	var latest *shuffle.PartitionMap
	sc := tc.Store().Scanner(shuffle.PMapBag(edge))
	_, _ = sc.Drain(tc.Context(), func(c chunk.Chunk) error {
		pm, err := shuffle.DecodePartitionMap(c)
		if err != nil || pm.Bag != edge {
			return nil // ignore foreign/corrupt records
		}
		if latest == nil || pm.Version > latest.Version {
			latest = pm
		}
		return nil
	})
	return latest
}

// WarmTopKeys64 is WarmTopKeyBytes for the engine's canonical 8-byte
// little-endian uint64 keys (Uint64Key producers); keys of other widths
// are skipped.
func WarmTopKeys64(tc *TaskCtx, input int, k int, minFraction float64) []uint64 {
	var out []uint64
	for _, kb := range WarmTopKeyBytes(tc, input, k, minFraction) {
		if len(kb) == 8 {
			out = append(out, binary.LittleEndian.Uint64(kb))
		}
	}
	return out
}
