package hurricane

import (
	"context"
	"testing"
	"time"
)

// TestPartitionedShuffleSmoke drives the public shuffle surface end to
// end: declare a partitioned bag, route records by key through a
// PartitionedWriter, and verify per-partition consumers between them see
// every record exactly once.
func TestPartitionedShuffleSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const parts = 3
	app := NewApp("shufsmoke").
		SourceBag("in").
		PartitionedBag("shuf", parts).
		Bag("out")
	app.AddTask(TaskSpec{
		Name:    "route",
		Inputs:  []string{"in"},
		Outputs: []string{"shuf"},
		Run: func(tc *TaskCtx) error {
			pw := NewPartitionedWriter(tc, 0, StringOf, func(s string) []byte { return []byte(s) })
			return ForEach(tc, 0, StringOf, pw.Write)
		},
	})
	app.AddTask(TaskSpec{
		Name:    "count",
		Inputs:  []string{"shuf"},
		Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			var n int64
			if err := ForEach(tc, 0, StringOf, func(string) error {
				n++
				return nil
			}); err != nil {
				return err
			}
			return NewWriter(tc, 0, Int64Of).Write(n)
		},
	})

	const records = 5000
	vals := make([]string, records)
	for i := range vals {
		vals[i] = string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", StringOf, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	counts, err := Collect(ctx, store, "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	// One count per consumer worker (≥ parts of them if cloning kicked
	// in); the sum must be exactly the record count.
	if len(counts) < parts {
		t.Fatalf("got %d partial counts, want ≥ %d", len(counts), parts)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != records {
		t.Fatalf("consumers saw %d records, want %d", total, records)
	}
}
