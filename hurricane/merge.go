package hurricane

import (
	"container/heap"
	"sort"

	"repro/internal/bag"
)

// This file is the merge library (§2.3: "Hurricane provides a library of
// typical merge operations"). A merge procedure is an ordinary TaskFunc
// whose inputs are the clones' partial-output bags and whose single output
// is the task's declared output. Unlike shuffle-and-sort, merges can
// implement non commutative-associative reconciliation (unique counts,
// medians, sorted output) because each partial is a separately readable
// bag.

// MergeConcat concatenates all partial outputs chunk-by-chunk. It is the
// explicit form of the default merge ("if no such procedure is specified,
// Hurricane simply concatenates the outputs of all clones").
func MergeConcat(tc *TaskCtx) error {
	for i := 0; i < tc.NumInputs(); i++ {
		for {
			c, err := tc.Remove(i)
			if err == bag.ErrEmpty {
				break
			}
			if err != nil {
				return err
			}
			if err := tc.Insert(0, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeSum returns a merge that sums one int64 record per partial into a
// single int64 record (the ClickLog Phase 3 merge: output.insert(partial1
// + partial2)).
func MergeSum() TaskFunc {
	return func(tc *TaskCtx) error {
		var total int64
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
		}
		return NewWriter(tc, 0, Int64Of).Write(total)
	}
}

// MergeBitsetOr returns a merge that ORs bitset records together (the
// ClickLog Phase 2 merge: output.insert(partial1 | partial2)). Each
// partial may contain any number of bitset records; the result is a single
// record of the maximum length.
func MergeBitsetOr() TaskFunc {
	return func(tc *TaskCtx) error {
		var acc []byte
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, BytesOf, func(b []byte) error {
				if len(b) > len(acc) {
					grown := make([]byte, len(b))
					copy(grown, acc)
					acc = grown
				}
				for j := range b {
					acc[j] |= b[j]
				}
				return nil
			}); err != nil {
				return err
			}
		}
		return NewWriter(tc, 0, BytesOf).Write(acc)
	}
}

// MergeSorted returns a merge that k-way merges partials that are each
// sorted according to less, producing globally sorted output — a merge for
// non-aggregation outputs ("non aggregation outputs can be merged, for
// instance through a merge sort").
func MergeSorted[T any](codec Codec[T], less func(a, b T) bool) TaskFunc {
	return func(tc *TaskCtx) error {
		// Read each partial fully (each is one clone's sorted run).
		runs := make([][]T, 0, tc.NumInputs())
		for i := 0; i < tc.NumInputs(); i++ {
			var run []T
			if err := ForEach(tc, i, codec, func(v T) error {
				run = append(run, v)
				return nil
			}); err != nil {
				return err
			}
			if len(run) > 0 {
				runs = append(runs, run)
			}
		}
		w := NewWriter(tc, 0, codec)
		h := &runHeap[T]{less: less}
		for ri, run := range runs {
			heap.Push(h, runCursor[T]{run: ri, v: run[0]})
			_ = ri
		}
		idx := make([]int, len(runs))
		for h.Len() > 0 {
			cur := heap.Pop(h).(runCursor[T])
			if err := w.Write(cur.v); err != nil {
				return err
			}
			idx[cur.run]++
			if idx[cur.run] < len(runs[cur.run]) {
				heap.Push(h, runCursor[T]{run: cur.run, v: runs[cur.run][idx[cur.run]]})
			}
		}
		return nil
	}
}

type runCursor[T any] struct {
	run int
	v   T
}

type runHeap[T any] struct {
	items []runCursor[T]
	less  func(a, b T) bool
}

func (h *runHeap[T]) Len() int           { return len(h.items) }
func (h *runHeap[T]) Less(i, j int) bool { return h.less(h.items[i].v, h.items[j].v) }
func (h *runHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *runHeap[T]) Push(x any)         { h.items = append(h.items, x.(runCursor[T])) }
func (h *runHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// MergeDistinctStrings returns a merge that unions partial sets of strings
// (duplicates removal — an operation shuffle-based systems cannot split
// across reducers for one key).
func MergeDistinctStrings() TaskFunc {
	return func(tc *TaskCtx) error {
		seen := make(map[string]struct{})
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, StringOf, func(s string) error {
				seen[s] = struct{}{}
				return nil
			}); err != nil {
				return err
			}
		}
		out := make([]string, 0, len(seen))
		for s := range seen {
			out = append(out, s)
		}
		sort.Strings(out)
		w := NewWriter(tc, 0, StringOf)
		for _, s := range out {
			if err := w.Write(s); err != nil {
				return err
			}
		}
		return nil
	}
}

// MergeTopK returns a merge that keeps the k largest int64 records across
// all partials (descending output) — a non commutative-associative
// example from the sketch family.
func MergeTopK(k int) TaskFunc {
	return func(tc *TaskCtx) error {
		var all []int64
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, Int64Of, func(v int64) error {
				all = append(all, v)
				return nil
			}); err != nil {
				return err
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
		if len(all) > k {
			all = all[:k]
		}
		w := NewWriter(tc, 0, Int64Of)
		for _, v := range all {
			if err := w.Write(v); err != nil {
				return err
			}
		}
		return nil
	}
}

// MergeKVSum returns a merge that sums int64 values per string key across
// partials, emitting sorted KV records (the groupby-aggregate merge).
func MergeKVSum() TaskFunc {
	return func(tc *TaskCtx) error {
		acc := make(map[string]int64)
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, KVOf, func(kv KV) error {
				v, _, err := Int64Of.Decode(kv.Value)
				if err != nil {
					return err
				}
				acc[kv.Key] += v
				return nil
			}); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(acc))
		for k := range acc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w := NewWriter(tc, 0, KVOf)
		var buf []byte
		for _, k := range keys {
			buf = Int64Of.Encode(buf[:0], acc[k])
			if err := w.Write(KV{Key: k, Value: append([]byte(nil), buf...)}); err != nil {
				return err
			}
		}
		return nil
	}
}

// MergeMedianInt64 returns a merge computing the exact median of all
// int64 records across partials — the canonical non
// commutative-associative operator the paper cites.
func MergeMedianInt64() TaskFunc {
	return func(tc *TaskCtx) error {
		var all []int64
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, Int64Of, func(v int64) error {
				all = append(all, v)
				return nil
			}); err != nil {
				return err
			}
		}
		if len(all) == 0 {
			return nil
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return NewWriter(tc, 0, Int64Of).Write(all[len(all)/2])
	}
}
