package hurricane_test

import (
	"context"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
)

// squareSumApp is the shared quickstart graph: square a stream of
// integers, then sum the squares (merge reconciles clone partials).
func squareSumApp() *hurricane.App { return apps.SquareSumApp() }

// TestSubmitJobConcurrent runs two namespaced jobs of the same graph
// concurrently on one cluster through the public API and verifies both
// results, the name mapping, and the job stats surface.
func TestSubmitJobConcurrent(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	store := cluster.Store()

	jobs := make([]*hurricane.JobHandle, 2)
	sizes := []int{30000, 20000}
	for i, name := range []string{"alpha", "beta"} {
		h, err := cluster.SubmitJob(ctx, squareSumApp(), hurricane.JobConfig{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = h
		nums := make([]int64, sizes[i])
		for j := range nums {
			nums[j] = int64(j)
		}
		if err := hurricane.Load(ctx, store, h.Bag("nums"), hurricane.Int64Of, nums); err != nil {
			t.Fatal(err)
		}
		if err := hurricane.Seal(ctx, store, h.Bag("nums")); err != nil {
			t.Fatal(err)
		}
	}
	if got := jobs[0].Bag("total"); got != "alpha/total" {
		t.Fatalf("Bag mapping = %q, want alpha/total", got)
	}
	for i, h := range jobs {
		if err := h.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", h.ID(), err)
		}
		totals, err := hurricane.Collect(ctx, store, h.Bag("total"), hurricane.Int64Of)
		if err != nil {
			t.Fatal(err)
		}
		var got, want int64
		for _, v := range totals {
			got += v
		}
		for j := 0; j < sizes[i]; j++ {
			want += int64(j) * int64(j)
		}
		if got != want {
			t.Fatalf("job %s: sum of squares = %d, want %d", h.ID(), got, want)
		}
		if h.State() != hurricane.JobDone {
			t.Fatalf("job %s state = %v, want JobDone", h.ID(), h.State())
		}
		st := h.Stats()
		if st.State != "done" || st.Master.TasksFinished != 2 {
			t.Fatalf("job %s stats = %+v", h.ID(), st)
		}
	}

	// Discard wipes the first job's namespace and frees its name claims.
	if err := jobs[0].Discard(ctx); err != nil {
		t.Fatal(err)
	}
	leftover, err := hurricane.Collect(ctx, store, "alpha/total", hurricane.Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("discarded job left %d records behind", len(leftover))
	}
	if _, err := cluster.SubmitJob(ctx, squareSumApp(), hurricane.JobConfig{Name: "alpha"}); err != nil {
		t.Fatalf("resubmission after discard: %v", err)
	}
}
