package hurricane_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// clickSource feeds pre-generated click IPs as a scripted stream source:
// one window's worth of records per poll batch.
type clickSource struct {
	mu      sync.Mutex
	batches [][]hurricane.StreamRecord
}

func (s *clickSource) Poll(ctx context.Context) ([]hurricane.StreamRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return nil, io.EOF
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, nil
}

// TestStreamWarmStartSkewMemory runs ≥5 consecutive click-log windows
// with a partitioned shuffle edge through the scheduler and checks that
// (a) every window's per-region counts are exactly once, and (b)
// cross-window skew memory warm-starts the later windows' partition maps
// (the first window runs cold; every successor is seeded from its
// predecessor's final map and merged edge sketch).
func TestStreamWarmStartSkewMemory(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 2,
		ComputeNodes: 2,
		SlotsPerNode: 2,
		ChunkSize:    8 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const (
		windows   = 5
		perWindow = 4000
		regions   = 16
		parts     = 4
	)
	gen := workload.ClickLogGen{S: 1.3, Regions: regions, UniquePerRegion: 1 << 10, Seed: 21}
	ips := gen.Generate(windows * perWindow)

	origin := int64(1_000_000_000_000)
	src := &clickSource{}
	want := make([]map[uint64]int64, windows)
	for w := 0; w < windows; w++ {
		seg := ips[w*perWindow : (w+1)*perWindow]
		want[w] = make(map[uint64]int64)
		batch := make([]hurricane.StreamRecord, len(seg))
		for i, ip := range seg {
			want[w][uint64(workload.Geolocate(ip))]++
			batch[i] = hurricane.StreamRecord{
				Time: origin + int64(w)*int64(time.Second) + int64(i)*int64(time.Second)/int64(perWindow+1),
				Data: hurricane.Uint64Of.Encode(nil, uint64(ip)),
			}
		}
		src.batches = append(src.batches, batch)
	}

	app := apps.ClickStreamApp(parts, true, 0)
	spec := app.BagSpecFor(apps.ClickStreamShuf)
	spec.SketchEvery, spec.PollEvery = 256, 128

	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "clicks",
		App:     app,
		Sources: map[string]hurricane.StreamSource{apps.ClickStreamIn: src},
		Window:  time.Second,
		Origin:  origin,
		// Seeding uses the latest *finished* window's memory; serialize
		// windows so every successor deterministically has one.
		MaxInFlight: 1,
		Master: &hurricane.MasterConfig{
			CloneInterval:   10 * time.Millisecond,
			SplitInterval:   5 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 1024,
			SplitFan:        4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	store := cluster.Store()
	seeded := 0
	for w := 0; w < windows; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Err != nil {
			t.Fatalf("window %d failed: %v", w, res.Err)
		}
		if res.Records != perWindow {
			t.Fatalf("window %d sealed %d records, want %d", w, res.Records, perWindow)
		}
		got, err := apps.CollectClickStream(ctx, store, res.Bag(apps.ClickStreamOut))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[w]) {
			t.Fatalf("window %d: %d regions, want %d", w, len(got), len(want[w]))
		}
		for region, n := range want[w] {
			if got[region].Count != n {
				t.Fatalf("window %d region %d: count %d, want %d (exactly-once violated)",
					w, region, got[region].Count, n)
			}
		}
		if w == 0 && res.Seeded {
			t.Fatal("window 0 cannot be seeded; there is no predecessor memory")
		}
		if res.Seeded {
			seeded++
		}
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The click distribution is zipf(1.3): the dominant regions are heavy
	// enough that window 0's final sketch must seed every successor.
	if seeded != windows-1 {
		t.Fatalf("%d/%d successor windows warm-started, want all %d", seeded, windows-1, windows-1)
	}
	if st := h.Stats(); st.MemoryWindow < 0 {
		t.Fatalf("no skew memory captured: %+v", st)
	}
}

// TestStreamWarmSketchReseedsFastPath: warm start must re-seed the
// consumer-side heavy-key fast path, not just the partition map. Window 0
// streams Zipf(1.3) keys; window 1 streams only uniform tail keys, none
// of which clears the heavy-hitter threshold on its own — so the only way
// window 1's aggregate workers can observe heavy keys at task start
// (hurricane.WarmTopKeys64 seeding dense accumulator slots) is the
// previous window's sketch being pushed into the new edge's sketch slot
// before the job starts. Each worker reports the warm key count it saw
// alongside its record count, so the assertion is exact, not racy.
func TestStreamWarmSketchReseedsFastPath(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 2,
		ComputeNodes: 2,
		SlotsPerNode: 2,
		ChunkSize:    8 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	type marker = hurricane.Pair[uint64, int64]
	markerCodec := hurricane.PairOf(hurricane.Uint64Of, hurricane.Int64Of)

	app := hurricane.NewApp("warmslots")
	app.SourceBag("win")
	app.AddBag(hurricane.BagSpec{Name: "wshuf", Partitions: 2, SketchEvery: 256, PollEvery: 128})
	app.Bag("wout")
	app.AddTask(hurricane.TaskSpec{
		Name:    "shuffle",
		Inputs:  []string{"win"},
		Outputs: []string{"wshuf"},
		Run: func(tc *hurricane.TaskCtx) error {
			pw := hurricane.NewPartitionedWriter(tc, 0, hurricane.Uint64Of,
				hurricane.Uint64Key(func(k uint64) uint64 { return k }))
			return hurricane.ForEachBatch(tc, 0, hurricane.Uint64Of, pw.WriteBatch)
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "aggregate",
		Inputs:  []string{"wshuf"},
		Outputs: []string{"wout"},
		Run: func(tc *hurricane.TaskCtx) error {
			warm := hurricane.WarmTopKeys64(tc, 0, 8, 0.05)
			hs := hurricane.NewHeavySlots[int64](warm)
			var n int64
			if err := hurricane.ForEachBatch(tc, 0, hurricane.Uint64Of, func(ks []uint64) error {
				for _, k := range ks {
					if a, ok := hs.Slot(k); ok {
						*a++
					}
					n++
				}
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, markerCodec).Write(marker{First: uint64(len(warm)), Second: n})
		},
	})

	const origin = int64(1_000_000_000_000)
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 31}
	hot := gen.Generate(4000)
	src := &clickSource{}
	mkBatch := func(w int, keys []uint64) []hurricane.StreamRecord {
		batch := make([]hurricane.StreamRecord, len(keys))
		for i, k := range keys {
			batch[i] = hurricane.StreamRecord{
				Time: origin + int64(w)*int64(time.Second) + int64(i)*int64(time.Second)/int64(len(keys)+1),
				Data: hurricane.Uint64Of.Encode(nil, k),
			}
		}
		return batch
	}
	w0 := make([]uint64, len(hot))
	for i, tu := range hot {
		w0[i] = tu.Key
	}
	// Window 1: 200 records over 50 uniform keys — 2% each, under the 5%
	// warm threshold, and disjoint from window 0's key range.
	w1 := make([]uint64, 200)
	for i := range w1 {
		w1[i] = 1_000 + uint64(i%50)
	}
	src.batches = append(src.batches, mkBatch(0, w0), mkBatch(1, w1))

	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:        "warmslots",
		App:         app,
		Sources:     map[string]hurricane.StreamSource{"win": src},
		Window:      time.Second,
		Origin:      origin,
		MaxInFlight: 1,
		Master: &hurricane.MasterConfig{
			CloneInterval:   10 * time.Millisecond,
			SplitInterval:   5 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 1024,
			SplitFan:        4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.Store()
	for w, wantRecords := range []int64{int64(len(w0)), int64(len(w1))} {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Err != nil {
			t.Fatalf("window %d failed: %v", w, res.Err)
		}
		marks, err := hurricane.Collect(ctx, store, res.Bag("wout"), markerCodec)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		warmSeen := false
		for _, m := range marks {
			total += m.Second
			if m.First > 0 {
				warmSeen = true
			}
		}
		if total != wantRecords {
			t.Fatalf("window %d consumed %d records, want %d", w, total, wantRecords)
		}
		if w == 1 && !warmSeen {
			t.Fatal("window 1 workers saw no warm heavy keys — cross-window skew memory did not reach the consumer fast path")
		}
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
