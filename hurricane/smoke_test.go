package hurricane

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// testClusterConfig returns a small, fast cluster configuration for tests.
func testClusterConfig() ClusterConfig {
	return ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    1 << 10,
		Node: NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Master: MasterConfig{
			PollInterval:  time.Millisecond,
			CloneInterval: 5 * time.Millisecond,
		},
	}
}

// TestSmokePipeline runs a two-stage pipeline: square each int, then sum.
func TestSmokePipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("smoke")
	app.SourceBag("nums").Bag("squares").Bag("total")
	app.AddTask(TaskSpec{
		Name:    "square",
		Inputs:  []string{"nums"},
		Outputs: []string{"squares"},
		Run: func(tc *TaskCtx) error {
			w := NewWriter(tc, 0, Int64Of)
			return ForEach(tc, 0, Int64Of, func(v int64) error {
				return w.Write(v * v)
			})
		},
	})
	app.AddTask(TaskSpec{
		Name:    "sum",
		Inputs:  []string{"squares"},
		Outputs: []string{"total"},
		Run: func(tc *TaskCtx) error {
			var total int64
			if err := ForEach(tc, 0, Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return NewWriter(tc, 0, Int64Of).Write(total)
		},
		Merge: MergeSum(),
	})

	n := int64(1000)
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i)
		want += int64(i) * int64(i)
	}
	store := cluster.Store()
	if err := Load(ctx, store, "nums", Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "nums"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ctx, store, "total", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("got %v, want [%d]", got, want)
	}
}

// TestSmokeFanout runs a fan-out: partition ints by parity into two bags,
// then count each independently.
func TestSmokeFanout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("fanout")
	app.SourceBag("nums")
	parities := []string{"even", "odd"}
	for _, p := range parities {
		app.Bag("part." + p).Bag("count." + p)
	}
	app.AddTask(TaskSpec{
		Name:    "partition",
		Inputs:  []string{"nums"},
		Outputs: []string{"part.even", "part.odd"},
		Run: func(tc *TaskCtx) error {
			ws := []*Writer[int64]{NewWriter(tc, 0, Int64Of), NewWriter(tc, 1, Int64Of)}
			return ForEach(tc, 0, Int64Of, func(v int64) error {
				return ws[v%2].Write(v)
			})
		},
	})
	for i, p := range parities {
		i, p := i, p
		app.AddTask(TaskSpec{
			Name:    "count." + p,
			Inputs:  []string{"part." + p},
			Outputs: []string{"count." + p},
			Run: func(tc *TaskCtx) error {
				var n int64
				if err := ForEach(tc, 0, Int64Of, func(v int64) error {
					if int(v%2) != i {
						return fmt.Errorf("value %d in wrong partition %s", v, p)
					}
					n++
					return nil
				}); err != nil {
					return err
				}
				return NewWriter(tc, 0, Int64Of).Write(n)
			},
			Merge: MergeSum(),
		})
	}

	vals := make([]int64, 501)
	for i := range vals {
		vals[i] = int64(i)
	}
	store := cluster.Store()
	if err := Load(ctx, store, "nums", Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "nums"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int64{"even": 251, "odd": 250}
	for _, p := range parities {
		got, err := Collect(ctx, store, "count."+p, Int64Of)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != wantCounts[p] {
			t.Fatalf("count.%s = %v, want [%d]", p, got, wantCounts[p])
		}
	}
}

// TestSmokeConcatClones verifies a no-merge task's output is a permutation
// of the expected multiset even when clones write concurrently.
func TestSmokeConcatClones(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Master.DisableHeuristic = true // accept every clone request
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("concat")
	app.SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "copy",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			w := NewWriter(tc, 0, Int64Of)
			return ForEach(tc, 0, Int64Of, func(v int64) error {
				// Busy-ish loop so the worker looks CPU-bound and
				// triggers overload signals.
				s := v
				for i := 0; i < 2000; i++ {
					s = s*31 + 7
				}
				if s == 42 {
					return fmt.Errorf("impossible")
				}
				return w.Write(v)
			})
		},
	})
	n := 5000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ctx, store, "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d records, want %d", len(got), n)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("after sort, got[%d] = %d", i, v)
		}
	}
}
