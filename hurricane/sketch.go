package hurricane

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/sketch"
)

// Sketches are the paper's canonical mergeable aggregates (§2.3 cites the
// count-min sketch [16] and HyperLogLog [22] as tasks that "require
// support for merging the partial results of the concurrent workers").
// Each clone builds a sketch over its share of the input; the merge
// combines the sketches cell-wise. Both types serialize to single records
// so they flow through bags like any other data.

// ---- count-min sketch ----

// CountMin is a count-min sketch: a width×depth counter matrix estimating
// per-key frequencies with one-sided error (estimates never undercount).
// The implementation lives in internal/sketch so the storage tier can
// merge producer sketches for the skew-aware shuffle without importing the
// public API.
type CountMin = sketch.CountMin

// NewCountMin creates a sketch with the given width (columns per row) and
// depth (independent hash rows). Estimation error is ≈ 2N/width with
// probability 1 − (1/2)^depth over N insertions.
func NewCountMin(width, depth int) *CountMin { return sketch.NewCountMin(width, depth) }

// DecodeCountMin parses an encoded sketch.
func DecodeCountMin(data []byte) (*CountMin, error) { return sketch.DecodeCountMin(data) }

// ---- edge statistics (the shuffle's and the planner's skew signal) ----

// EdgeStats aggregates what producers know about one shuffle edge:
// per-partition record counts, a count-min sketch of the routed keys, and
// a capped heavy-hitter candidate list. Extract heavy hitters with
// EdgeStats.TopKeys(k, minFraction) — the first-class helper shared by
// the query planner's skewed-join decision, warm-start seeding, and the
// runtime isolation policy — instead of re-deriving them from raw
// CountMin estimates.
type EdgeStats = sketch.EdgeStats

// HeavyKey is one heavy-hitter candidate with its observed count.
type HeavyKey = sketch.HeavyKey

// StatsBuilder accumulates exact per-key counts into an EdgeStats — the
// offline way to build warm statistics for the query planner from a
// sample or a generator's known distribution.
type StatsBuilder = sketch.StatsBuilder

// NewEdgeStats returns empty edge statistics with a default-dimension
// sketch.
func NewEdgeStats() *EdgeStats { return sketch.NewEdgeStats() }

// NewStatsBuilder returns an empty offline statistics builder.
func NewStatsBuilder() *StatsBuilder { return sketch.NewStatsBuilder() }

// DecodeEdgeStats parses an encoded edge-statistics record.
func DecodeEdgeStats(data []byte) (*EdgeStats, error) { return sketch.DecodeEdgeStats(data) }

// EdgeMemory is what a finished job remembers about one partitioned
// shuffle edge (final partition map + last merged sketch). Read it from
// Master.EdgeMemory and feed it to the streaming subsystem's warm start
// or the query planner's StatsFromMemory.
type EdgeMemory = core.EdgeMemory

// MergeCountMin returns a merge procedure combining clone count-min
// partials cell-wise into a single sketch record.
func MergeCountMin() TaskFunc {
	return func(tc *TaskCtx) error {
		var acc *CountMin
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, BytesOf, func(rec []byte) error {
				s, err := DecodeCountMin(rec)
				if err != nil {
					return err
				}
				if acc == nil {
					acc = s
					return nil
				}
				return acc.Merge(s)
			}); err != nil {
				return err
			}
		}
		if acc == nil {
			return nil
		}
		return NewWriter(tc, 0, BytesOf).Write(acc.Encode())
	}
}

// ---- HyperLogLog ----

// HLL is a HyperLogLog cardinality estimator with 2^p registers.
type HLL struct {
	p         uint8
	registers []uint8
}

// NewHLL creates an estimator with precision p (4 ≤ p ≤ 16); the standard
// error is ≈ 1.04/sqrt(2^p).
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 16 {
		panic("hurricane: HLL precision must be in [4,16]")
	}
	return &HLL{p: p, registers: make([]uint8, 1<<p)}
}

// mix64 is a murmur3-style finalizer: FNV's high bits are weakly
// distributed for short keys, and HLL derives both its register index and
// its rank from the high bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hllHash digests a key for register selection: FNV-1a folded a word at
// a time (one multiply per 8 bytes instead of one per byte — stdlib
// fnv.New64a also allocates a hash.Hash64 per call, which dominated
// per-record aggregation profiles), then mix64, because word-folded FNV
// has weak high bits and HLL derives both the register index and the
// rank from them. Only intra-run agreement matters: sketches are merged
// across workers of one job, never persisted across processes.
func hllHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	d := uint64(offset64)
	for len(key) >= 8 {
		d = (d ^ binary.LittleEndian.Uint64(key)) * prime64
		key = key[8:]
	}
	for _, b := range key {
		d = (d ^ uint64(b)) * prime64
	}
	return mix64(d)
}

// Add observes one element.
func (h *HLL) Add(key []byte) {
	h.observe(hllHash(key))
}

// AddUint64 observes one uint64 element, identified by its 8-byte
// little-endian encoding. It computes the same digest as Add over that
// encoding — registers end up bit-identical — but folds the word
// directly, keeping byte marshalling and interface indirection off
// vectorized aggregation loops.
func (h *HLL) AddUint64(v uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	// observe's body, open-coded: the extra call frame is measurable in
	// per-record aggregation loops and the compiler stops inlining once
	// mix64 is folded in.
	x := mix64((offset64 ^ v) * prime64)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

func (h *HLL) observe(x uint64) {
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // avoid zero tail
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the cardinality estimate.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Small-range correction (linear counting).
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge takes the register-wise maximum with another estimator.
func (h *HLL) Merge(other *HLL) error {
	if other.p != h.p {
		return fmt.Errorf("hurricane: HLL precisions differ: %d vs %d", other.p, h.p)
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Encode serializes the estimator as one record.
func (h *HLL) Encode() []byte {
	buf := make([]byte, 1+len(h.registers))
	buf[0] = h.p
	copy(buf[1:], h.registers)
	return buf
}

// DecodeHLL parses an encoded estimator.
func DecodeHLL(data []byte) (*HLL, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("hurricane: empty HLL record")
	}
	p := data[0]
	if p < 4 || p > 16 || len(data)-1 != 1<<p {
		return nil, fmt.Errorf("hurricane: bad HLL record (p=%d, %d registers)", p, len(data)-1)
	}
	h := NewHLL(p)
	copy(h.registers, data[1:])
	return h, nil
}

// MergeHLL returns a merge procedure taking the register-wise maximum of
// clone HLL partials — an approximate, constant-space alternative to the
// ClickLog bitset for distinct counting.
func MergeHLL() TaskFunc {
	return func(tc *TaskCtx) error {
		var acc *HLL
		for i := 0; i < tc.NumInputs(); i++ {
			if err := ForEach(tc, i, BytesOf, func(rec []byte) error {
				h, err := DecodeHLL(rec)
				if err != nil {
					return err
				}
				if acc == nil {
					acc = h
					return nil
				}
				return acc.Merge(h)
			}); err != nil {
				return err
			}
		}
		if acc == nil {
			return nil
		}
		return NewWriter(tc, 0, BytesOf).Write(acc.Encode())
	}
}
