package hurricane

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCountMinBasics(t *testing.T) {
	cm := NewCountMin(1024, 4)
	for i := 0; i < 100; i++ {
		cm.Add([]byte("hot"), 1)
	}
	cm.Add([]byte("cold"), 3)
	if got := cm.Estimate([]byte("hot")); got < 100 {
		t.Fatalf("count-min undercounted hot: %d", got)
	}
	if got := cm.Estimate([]byte("cold")); got < 3 || got > 103 {
		t.Fatalf("cold estimate %d implausible", got)
	}
	if got := cm.Estimate([]byte("absent")); got > 103 {
		t.Fatalf("absent estimate %d too large", got)
	}
}

// TestCountMinNeverUndercounts is the sketch's defining invariant.
func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(keys []uint16) bool {
		cm := NewCountMin(256, 4)
		truth := map[uint16]uint64{}
		for _, k := range keys {
			var b [2]byte
			b[0], b[1] = byte(k), byte(k>>8)
			cm.Add(b[:], 1)
			truth[k]++
		}
		for k, want := range truth {
			var b [2]byte
			b[0], b[1] = byte(k), byte(k>>8)
			if cm.Estimate(b[:]) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCountMinMergeEqualsUnion: merging per-shard sketches equals
// sketching the union — the property that makes clone partials sound.
func TestCountMinMergeEqualsUnion(t *testing.T) {
	whole := NewCountMin(512, 4)
	a := NewCountMin(512, 4)
	b := NewCountMin(512, 4)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("k%d", i%37))
		whole.Add(key, 1)
		if i%2 == 0 {
			a.Add(key, 1)
		} else {
			b.Add(key, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if a.Estimate(key) != whole.Estimate(key) {
			t.Fatalf("merge != union for %s: %d vs %d",
				key, a.Estimate(key), whole.Estimate(key))
		}
	}
	if err := a.Merge(NewCountMin(16, 2)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestCountMinEncodeDecode(t *testing.T) {
	cm := NewCountMin(64, 3)
	for i := 0; i < 500; i++ {
		cm.Add([]byte{byte(i)}, uint64(i))
	}
	got, err := DecodeCountMin(cm.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if got.Estimate([]byte{byte(i)}) != cm.Estimate([]byte{byte(i)}) {
			t.Fatal("round trip changed estimates")
		}
	}
	if _, err := DecodeCountMin([]byte{1}); err == nil {
		t.Fatal("truncated record must error")
	}
}

func TestHLLAccuracy(t *testing.T) {
	h := NewHLL(12) // ~1.6% standard error
	const n = 50000
	for i := 0; i < n; i++ {
		h.Add([]byte(fmt.Sprintf("element-%d", i)))
	}
	est := h.Estimate()
	if math.Abs(est-n)/n > 0.05 {
		t.Fatalf("HLL estimate %.0f for %d distinct (%.1f%% error)",
			est, n, 100*math.Abs(est-n)/n)
	}
	// Duplicates must not change the estimate.
	before := h.Estimate()
	for i := 0; i < n; i++ {
		h.Add([]byte(fmt.Sprintf("element-%d", i%100)))
	}
	if h.Estimate() != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestHLLSmallRange(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 10; i++ {
		h.Add([]byte{byte(i)})
	}
	est := h.Estimate()
	if est < 5 || est > 20 {
		t.Fatalf("small-range estimate %.1f for 10 distinct", est)
	}
}

// TestHLLMergeEqualsUnion: register-wise max of shard sketches equals the
// sketch of the union.
func TestHLLMergeEqualsUnion(t *testing.T) {
	whole, a, b := NewHLL(10), NewHLL(10), NewHLL(10)
	for i := 0; i < 20000; i++ {
		key := []byte(fmt.Sprintf("e%d", i))
		whole.Add(key)
		if i%3 == 0 {
			a.Add(key)
		} else {
			b.Add(key)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("merge %.1f != union %.1f", a.Estimate(), whole.Estimate())
	}
	if err := a.Merge(NewHLL(8)); err == nil {
		t.Fatal("precision mismatch must error")
	}
}

func TestHLLEncodeDecode(t *testing.T) {
	h := NewHLL(8)
	for i := 0; i < 1000; i++ {
		h.Add([]byte{byte(i), byte(i >> 8)})
	}
	got, err := DecodeHLL(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != h.Estimate() {
		t.Fatal("round trip changed the estimate")
	}
	if _, err := DecodeHLL(nil); err == nil {
		t.Fatal("empty record must error")
	}
	if _, err := DecodeHLL([]byte{12, 1, 2}); err == nil {
		t.Fatal("truncated registers must error")
	}
}

// TestSketchDistinctCountPipeline runs an approximate distinct count with
// HLL partials through the engine under forced cloning: every clone
// sketches its share, MergeHLL combines registers, and the estimate is
// identical to a serial sketch of the whole input.
func TestSketchDistinctCountPipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.ChunkSize = 16 << 10 // HLL records at p=11 are ~2 KiB
	cfg.Master.DisableHeuristic = true
	cfg.Master.CloneInterval = time.Millisecond
	cfg.Node.MonitorInterval = time.Millisecond
	cfg.Node.OverloadThreshold = 0.01
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const p = 11
	app := NewApp("hllcount")
	app.SourceBag("in").Bag("sketch")
	app.AddTask(TaskSpec{
		Name:    "sketch",
		Inputs:  []string{"in"},
		Outputs: []string{"sketch"},
		Merge:   MergeHLL(),
		Run: func(tc *TaskCtx) error {
			h := NewHLL(p)
			if err := ForEach(tc, 0, StringOf, func(s string) error {
				h.Add([]byte(s))
				return nil
			}); err != nil {
				return err
			}
			return NewWriter(tc, 0, BytesOf).Write(h.Encode())
		},
	})

	const n = 40000
	vals := make([]string, n)
	serial := NewHLL(p)
	for i := range vals {
		vals[i] = fmt.Sprintf("user-%d", i%7777)
		serial.Add([]byte(vals[i]))
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", StringOf, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	recs, err := Collect(ctx, store, "sketch", BytesOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d sketch records", len(recs))
	}
	got, err := DecodeHLL(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Clone partials merged register-wise must equal the serial sketch
	// exactly (same hash function, same elements).
	if got.Estimate() != serial.Estimate() {
		t.Fatalf("distributed estimate %.1f != serial %.1f (stats %+v)",
			got.Estimate(), serial.Estimate(), cluster.Master().Stats())
	}
	if math.Abs(got.Estimate()-7777)/7777 > 0.1 {
		t.Fatalf("estimate %.1f too far from 7777", got.Estimate())
	}
	t.Logf("estimate %.1f for 7777 distinct, stats %+v",
		got.Estimate(), cluster.Master().Stats())
}
