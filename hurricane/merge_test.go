package hurricane

import (
	"context"
	"testing"
	"time"
)

// runMerge executes a merge function as an ordinary task over explicit
// "partial" bags, which is exactly how the master invokes it after clones
// finish: inputs = partial bags, single output. Loading the partials
// directly makes merge behaviour deterministic regardless of cloning.
func runMerge(t *testing.T, merge TaskFunc, load func(ctx context.Context, store *Store, partials []string)) *Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Shutdown)

	partials := []string{"p0", "p1", "p2"}
	app := NewApp("mergetest")
	for _, p := range partials {
		app.SourceBag(p)
	}
	app.Bag("out")
	app.AddTask(TaskSpec{
		Name:    "merge",
		Inputs:  partials,
		Outputs: []string{"out"},
		Run:     merge,
		NoClone: true,
	})
	store := cluster.Store()
	load(ctx, store, partials)
	for _, p := range partials {
		if err := Seal(ctx, store, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	return cluster
}

func TestMergeSum(t *testing.T) {
	cluster := runMerge(t, MergeSum(), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], Int64Of, []int64{10})
		Load(ctx, store, ps[1], Int64Of, []int64{32})
		Load(ctx, store, ps[2], Int64Of, []int64{100})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 142 {
		t.Fatalf("got %v, want [142]", got)
	}
}

func TestMergeBitsetOr(t *testing.T) {
	cluster := runMerge(t, MergeBitsetOr(), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], BytesOf, [][]byte{{0b0001}})
		Load(ctx, store, ps[1], BytesOf, [][]byte{{0b1000, 0b0100}}) // longer partial
		Load(ctx, store, ps[2], BytesOf, [][]byte{{0b0010}})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", BytesOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 2 || got[0][0] != 0b1011 || got[0][1] != 0b0100 {
		t.Fatalf("got %v", got)
	}
}

func TestMergeSorted(t *testing.T) {
	merge := MergeSorted[int64](Int64Of, func(a, b int64) bool { return a < b })
	cluster := runMerge(t, merge, func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], Int64Of, []int64{1, 5, 9})
		Load(ctx, store, ps[1], Int64Of, []int64{2, 2, 8})
		Load(ctx, store, ps[2], Int64Of, []int64{0, 7})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 2, 5, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergeDistinctStrings(t *testing.T) {
	cluster := runMerge(t, MergeDistinctStrings(), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], StringOf, []string{"a", "b"})
		Load(ctx, store, ps[1], StringOf, []string{"b", "c"})
		Load(ctx, store, ps[2], StringOf, []string{"a", "d"})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", StringOf)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	cluster := runMerge(t, MergeTopK(3), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], Int64Of, []int64{5, 1})
		Load(ctx, store, ps[1], Int64Of, []int64{9, 3})
		Load(ctx, store, ps[2], Int64Of, []int64{7})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9, 7, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeKVSum(t *testing.T) {
	enc := func(v int64) []byte { return Int64Of.Encode(nil, v) }
	cluster := runMerge(t, MergeKVSum(), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], KVOf, []KV{{Key: "x", Value: enc(1)}, {Key: "y", Value: enc(2)}})
		Load(ctx, store, ps[1], KVOf, []KV{{Key: "x", Value: enc(10)}})
		Load(ctx, store, ps[2], KVOf, []KV{{Key: "z", Value: enc(5)}, {Key: "y", Value: enc(1)}})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", KVOf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"x": 11, "y": 3, "z": 5}
	if len(got) != len(want) {
		t.Fatalf("got %d keys", len(got))
	}
	for _, kv := range got {
		v, _, err := Int64Of.Decode(kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		if v != want[kv.Key] {
			t.Fatalf("%s = %d, want %d", kv.Key, v, want[kv.Key])
		}
	}
}

func TestMergeMedian(t *testing.T) {
	cluster := runMerge(t, MergeMedianInt64(), func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], Int64Of, []int64{1, 100})
		Load(ctx, store, ps[1], Int64Of, []int64{50})
		Load(ctx, store, ps[2], Int64Of, []int64{2, 99})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 50 {
		t.Fatalf("median = %v, want [50]", got)
	}
}

func TestMergeConcat(t *testing.T) {
	cluster := runMerge(t, MergeConcat, func(ctx context.Context, store *Store, ps []string) {
		Load(ctx, store, ps[0], Int64Of, []int64{1, 2})
		Load(ctx, store, ps[1], Int64Of, []int64{3})
		Load(ctx, store, ps[2], Int64Of, []int64{4, 5})
	})
	got, err := Collect(context.Background(), cluster.Store(), "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("concat produced %d records", len(got))
	}
	var sum int64
	for _, v := range got {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("sum %d", sum)
	}
}

// TestMergeEndToEndWithClones runs a task under forced cloning and checks
// that whichever path executed (rename adoption for one worker, a real
// merge for several), the result is identical to the serial answer.
func TestMergeEndToEndWithClones(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Master.DisableHeuristic = true
	cfg.Master.CloneInterval = time.Millisecond
	cfg.Node.MonitorInterval = time.Millisecond
	cfg.Node.OverloadThreshold = 0.01
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("clonemerge")
	app.SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "distinct",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Merge:   MergeDistinctStrings(),
		Run: func(tc *TaskCtx) error {
			seen := map[string]struct{}{}
			if err := ForEach(tc, 0, StringOf, func(s string) error {
				// busy work to look CPU-bound
				h := 0
				for i := 0; i < 500; i++ {
					h = h*31 + int(s[0])
				}
				_ = h
				seen[s] = struct{}{}
				return nil
			}); err != nil {
				return err
			}
			w := NewWriter(tc, 0, StringOf)
			for s := range seen {
				if err := w.Write(s); err != nil {
					return err
				}
			}
			return nil
		},
	})
	const n = 30000
	vals := make([]string, n)
	distinct := map[string]struct{}{}
	for i := range vals {
		vals[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		distinct[vals[i]] = struct{}{}
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", StringOf, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ctx, store, "out", StringOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(distinct) {
		t.Fatalf("distinct = %d, want %d (stats %+v)",
			len(got), len(distinct), cluster.Master().Stats())
	}
	t.Logf("stats: %+v", cluster.Master().Stats())
}
