// Package hurricane is the public API of the Hurricane analytics engine, a
// reproduction of "Rock You like a Hurricane: Taming Skew in Large Scale
// Analytics" (Bindschaedler et al., EuroSys 2018).
//
// Hurricane executes dataflow applications — directed graphs of tasks and
// data bags — with adaptive work partitioning: when a node running a task
// becomes overloaded, the application master clones the task onto idle
// nodes, and the clones share the task's input bag, each removing disjoint
// chunks. Application-supplied merge procedures reconcile the clones'
// partial outputs. Data is spread uniformly across all storage nodes and
// retrieved with batch sampling, so cloning never concentrates storage
// load.
//
// A minimal application:
//
//	cluster, _ := hurricane.NewCluster(hurricane.ClusterConfig{})
//	app := hurricane.NewApp("wordlen").
//		SourceBag("words").
//		Bag("lengths")
//	app.AddTask(hurricane.TaskSpec{
//		Name:    "measure",
//		Inputs:  []string{"words"},
//		Outputs: []string{"lengths"},
//		Run: func(tc *hurricane.TaskCtx) error {
//			return hurricane.ForEach(tc, 0, hurricane.StringOf, func(w string) error {
//				return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(int64(len(w)))
//			})
//		},
//	})
//
// Load and seal the source bag with Load + Seal, run with cluster.Run, and
// read results with Collect.
package hurricane

import (
	"context"
	"io"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/sched"
)

// Re-exported engine types. The core engine lives in internal/core; these
// aliases are the supported public surface.
type (
	// Cluster is an embedded Hurricane cluster (storage nodes, compute
	// nodes, application master).
	Cluster = core.Cluster
	// ClusterConfig sizes and tunes a cluster.
	ClusterConfig = core.ClusterConfig
	// NodeConfig tunes compute-node scheduling and overload detection.
	NodeConfig = core.NodeConfig
	// MasterConfig tunes the application master and cloning heuristic.
	MasterConfig = core.MasterConfig
	// MasterStats reports cloning/merge/recovery activity counters.
	MasterStats = core.MasterStats
	// App is a dataflow application graph of tasks and bags.
	App = core.App
	// TaskSpec declares one task.
	TaskSpec = core.TaskSpec
	// BagSpec declares one bag.
	BagSpec = core.BagSpec
	// TaskCtx is the execution context passed to task functions.
	TaskCtx = core.TaskCtx
	// TaskFunc is a task (or merge) body.
	TaskFunc = core.TaskFunc
	// Store is the bag store through which applications load inputs and
	// read outputs.
	Store = bag.Store
	// Bag is a client handle to a named bag.
	Bag = bag.Bag
	// Stats describes a bag's contents (sampled).
	Stats = bag.Stats
	// Chunk is a block of framed records.
	Chunk = chunk.Chunk
	// KV is a key/value record.
	KV = chunk.KV
)

// NewCluster provisions an embedded cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// NewApp returns an empty application graph.
func NewApp(name string) *App { return core.NewApp(name) }

// ---- multi-job scheduling (internal/sched) ----
//
// One cluster executes any number of concurrent jobs. Each submission
// gets its own application master and — unless JobConfig.Raw — a bag
// namespace, so jobs built from the same graph cannot collide; the
// registry validates at submit time that no two live jobs can touch the
// same physical bag (including names derived at runtime). Worker slots
// are arbitrated by weighted fair-share leasing: a job may use the whole
// cluster while alone, but when a neighbor starves, over-share jobs stop
// claiming and their clone workers are preempted cooperatively (they
// yield at the next chunk boundary; late binding hands their remaining
// chunks to the task's surviving workers, so no work is lost or redone).
//
//	jobA, _ := cluster.SubmitJob(ctx, app, hurricane.JobConfig{Name: "a"})
//	jobB, _ := cluster.SubmitJob(ctx, app, hurricane.JobConfig{Name: "b", Weight: 2})
//	hurricane.Load(ctx, store, jobA.Bag("in"), codec, dataA) // namespaced names
//	...
//	_ = jobA.Wait(ctx)
//
// Cluster.Run remains the single-job path: a Submit-and-Wait with
// namespacing disabled.
type (
	// JobConfig tunes one job submission (name, namespace, fair-share
	// weight, per-job master overrides).
	JobConfig = core.JobConfig
	// JobHandle is the caller's grip on a submitted job: Bag (name
	// mapping), Wait, Err, Stats, Discard.
	JobHandle = core.JobHandle
	// JobStats reports a job's scheduling state and master counters.
	JobStats = core.JobStats
	// JobState is a job's lifecycle state (queued, running, done, failed).
	JobState = sched.State
	// SchedConfig tunes the multi-job scheduler (ClusterConfig.Sched):
	// admission limits, fair-share leasing, preemption cadence.
	SchedConfig = sched.Config
)

// JobState values, comparable against JobHandle.State().
const (
	JobQueued  = sched.StateQueued
	JobRunning = sched.StateRunning
	JobDone    = sched.StateDone
	JobFailed  = sched.StateFailed
)

// ---- adaptive control plane (internal/ctrl) ----
//
// Skew mitigation runs as pluggable policies over an event-driven
// telemetry hub. The master builds versioned Snapshots from worker
// heartbeats, overload signals, bag depths, and merged shuffle-edge
// sketches; each configured Policy proposes declarative Actions; the
// arbiter resolves conflicts (clone-vs-split on one edge, slot budgets)
// and the master applies the survivors transactionally.
//
// Select policies per job through MasterConfig.Policies: nil installs the
// default set derived from the flags (DisableCloning, SpeculativeCloning,
// DisableSplitting); an explicit empty slice disables all mitigation. A
// custom policy implements Policy — and EdgeStatsConsumer if it reads
// shuffle-edge sketches — and composes freely with the built-ins:
//
//	cfg.Master.Policies = append(
//		hurricane.DefaultPolicies(cfg.Master),
//		&myDeadlinePolicy{},
//	)
type (
	// Policy is one interchangeable skew-mitigation strategy: it reads a
	// telemetry Snapshot and proposes Actions.
	Policy = ctrl.Policy
	// Snapshot is a versioned, read-only view of cluster telemetry.
	Snapshot = ctrl.Snapshot
	// Action is a declarative mitigation decision. The vocabulary is
	// closed — CloneTask, SplitPartition, IsolateKey (and the internal
	// bookkeeping actions) are everything the master can apply; custom
	// policies compose these rather than defining new action types.
	Action = ctrl.Action
	// CloneTask schedules one additional worker for a running task.
	CloneTask = ctrl.CloneTask
	// SplitPartition re-hashes a hot base partition of a shuffle edge.
	SplitPartition = ctrl.SplitPartition
	// IsolateKey diverts a heavy-hitter key into a dedicated bag.
	IsolateKey = ctrl.IsolateKey
	// TaskTel is per-task telemetry within a Snapshot.
	TaskTel = ctrl.TaskTel
	// EdgeTel is per-shuffle-edge telemetry within a Snapshot.
	EdgeTel = ctrl.EdgeTel
	// PolicyConfig carries the tuning knobs shared by built-in policies.
	PolicyConfig = ctrl.Config
	// EdgeStatsConsumer marks policies that need shuffle-edge sketches
	// fetched into their snapshots.
	EdgeStatsConsumer = ctrl.EdgeStatsConsumer
	// ClonePolicy is the paper's reactive cloning mitigation (§4.2).
	ClonePolicy = ctrl.ClonePolicy
	// SpeculativePolicy proactively clones stragglers (§3.5).
	SpeculativePolicy = ctrl.SpeculativePolicy
	// SplitPartitionPolicy re-hashes hot partitions (Reshape-style).
	SplitPartitionPolicy = ctrl.SplitPartitionPolicy
	// IsolateKeyPolicy isolates dominant heavy-hitter keys.
	IsolateKeyPolicy = ctrl.IsolateKeyPolicy
)

// DefaultPolicies builds the mitigation set described by cfg's flags:
// reactive cloning, speculative cloning, partition splitting, and key
// isolation, each included unless the corresponding flag disables it.
func DefaultPolicies(cfg MasterConfig) []Policy { return core.DefaultPolicies(cfg) }

// ErrEmpty is the end-of-bag signal returned by Bag.Remove and TaskCtx
// input reads.
var ErrEmpty = bag.ErrEmpty

// Codec serializes records of type T.
type Codec[T any] = chunk.Codec[T]

// Ready-made codecs for common record types.
var (
	// Int64Of encodes int64 records.
	Int64Of = chunk.Int64Codec{}
	// Uint64Of encodes uint64 records as varints — compact for small
	// values (counters, enum-like keys).
	Uint64Of = chunk.Uint64Codec{}
	// Uint64FixedOf encodes uint64 records as fixed 8-byte words — the
	// right choice for high-entropy fields (hashes, random payloads),
	// where varints average over nine bytes and a per-value decode loop.
	Uint64FixedOf = chunk.Uint64FixedCodec{}
	// Float64Of encodes float64 records.
	Float64Of = chunk.Float64Codec{}
	// StringOf encodes string records.
	StringOf = chunk.StringCodec{}
	// BytesOf encodes raw byte-slice records.
	BytesOf = chunk.BytesCodec{}
	// KVOf encodes key/value records.
	KVOf = chunk.KVCodec{}
)

// Pair is a two-field tuple record.
type Pair[A, B any] = chunk.Pair[A, B]

// PairOf builds a codec for Pair records from two component codecs.
func PairOf[A, B any](a Codec[A], b Codec[B]) Codec[Pair[A, B]] {
	return chunk.PairCodec[A, B]{A: a, B: b}
}

// ForEach drains input i of the task, decoding each record with codec and
// invoking fn. It returns nil once the input is exhausted. This is the
// idiomatic body of a streaming task: because chunks are pulled one at a
// time from the shared input bag, any number of clones can run the same
// loop concurrently.
func ForEach[T any](tc *TaskCtx, input int, codec Codec[T], fn func(T) error) error {
	it := chunk.NewIterator(codec, func() (chunk.Chunk, error) {
		c, err := tc.Remove(input)
		if err == bag.ErrEmpty {
			return nil, io.EOF
		}
		return c, err
	})
	for {
		v, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
}

// ForEachScan reads scan input i in full (without consuming it), decoding
// each record with codec and invoking fn. Every worker of the task —
// original and clones alike — sees the complete bag, which is how shared
// lookup state (a hash join's build side, PageRank's rank vector) is
// distributed to clones.
func ForEachScan[T any](tc *TaskCtx, scanInput int, codec Codec[T], fn func(T) error) error {
	it := chunk.NewIterator(codec, func() (chunk.Chunk, error) {
		c, err := tc.Scan(scanInput)
		if err == bag.ErrEmpty {
			return nil, io.EOF
		}
		return c, err
	})
	for {
		v, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
}

// Writer writes typed records to one of a task's outputs.
type Writer[T any] struct {
	tc    *TaskCtx
	out   int
	codec Codec[T]
	buf   []byte
}

// NewWriter returns a typed record writer for output out. The engine
// flushes partially filled chunks automatically when the task completes.
func NewWriter[T any](tc *TaskCtx, out int, codec Codec[T]) *Writer[T] {
	return &Writer[T]{tc: tc, out: out, codec: codec}
}

// Write appends one record to the output.
func (w *Writer[T]) Write(v T) error {
	w.buf = w.codec.Encode(w.buf[:0], v)
	return w.tc.Writer(w.out).Append(w.buf)
}

// Load inserts values into the named bag as framed records, one bag handle
// streaming chunks across all storage nodes. Call Seal when the bag's
// contents are complete.
func Load[T any](ctx context.Context, store *Store, bagName string, codec Codec[T], values []T) error {
	h := store.Bag(bagName)
	ins := h.Inserter(ctx)
	w := chunk.NewTypedWriter(codec, store.ChunkSize(), func(c chunk.Chunk) error {
		return ins.Insert(c)
	})
	for _, v := range values {
		if err := w.Write(v); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return ins.Close()
}

// LoadBatch is Load on the vectorized data plane: values pack into
// batch-encoded columnar chunks, so batch-capable readers (ForEachBatch,
// the planner's batch loops) decode whole column vectors instead of
// re-framing record-at-a-time. Requires a columnar codec; a row-only
// codec falls back to Load. Results are interchangeable with Load's —
// every reader accepts both layouts on the same bag.
func LoadBatch[T any](ctx context.Context, store *Store, bagName string, codec Codec[T], values []T) error {
	cc, ok := chunk.ColumnarOf(codec)
	if !ok {
		return Load(ctx, store, bagName, codec, values)
	}
	h := store.Bag(bagName)
	ins := h.Inserter(ctx)
	b := chunk.GetBatchBuilder(0, chunk.KindsOf(cc))
	defer chunk.PutBatchBuilder(b)
	size := store.ChunkSize()
	for _, v := range values {
		cc.EncodeColumn(b, 0, v)
		b.EndRow()
		if b.Size() >= size {
			if err := ins.Insert(b.Encode()); err != nil {
				return err
			}
			b.Clear()
		}
	}
	if b.Rows() > 0 {
		if err := ins.Insert(b.Encode()); err != nil {
			return err
		}
	}
	return ins.Close()
}

// Seal marks the named bag complete. Source bags must be sealed before the
// application starts.
func Seal(ctx context.Context, store *Store, bagName string) error {
	return store.Seal(ctx, bagName)
}

// Collect reads every record of the named bag without consuming it,
// decoding with codec. Use it to fetch job results after Run returns.
func Collect[T any](ctx context.Context, store *Store, bagName string, codec Codec[T]) ([]T, error) {
	sc := store.Scanner(bagName)
	var out []T
	for {
		c, err := sc.Next(ctx)
		if err == bag.ErrEmpty || err == bag.ErrAgain {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		vals, err := decodeAll(codec, c)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
}

func decodeAll[T any](codec Codec[T], c chunk.Chunk) ([]T, error) {
	// The iterator dispatches per chunk, so collected bags may hold row
	// and batch chunks in any mix.
	return chunk.NewSliceIterator(codec, []chunk.Chunk{c}).Collect()
}
