package hurricane

import "testing"

func TestHeavySlots(t *testing.T) {
	for _, n := range []int{1, heavyLinearMax, heavyLinearMax + 1, 32} {
		keys := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			keys = append(keys, uint64(i)*0x1000+7)
		}
		keys = append(keys, keys[0]) // duplicate must be dropped
		hs := NewHeavySlots[int64](keys)
		if hs.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, hs.Len())
		}
		for _, k := range keys {
			a, ok := hs.Slot(k)
			if !ok {
				t.Fatalf("n=%d: heavy key %d missed", n, k)
			}
			*a++
		}
		if _, ok := hs.Slot(0xdeadbeef); ok {
			t.Fatalf("n=%d: tail key resolved to a slot", n)
		}
		var sum int64
		hs.Each(func(k uint64, a *int64) { sum += *a })
		// n+1 lookups hit (the duplicate key hits its slot twice).
		if sum != int64(n)+1 {
			t.Fatalf("n=%d: accumulated %d, want %d", n, sum, n+1)
		}
		if hs.Hits() != uint64(n)+1 || hs.Lookups() != uint64(n)+2 {
			t.Fatalf("n=%d: hits=%d lookups=%d", n, hs.Hits(), hs.Lookups())
		}
	}
	// The nil fast path is inert.
	var nilSlots *HeavySlots[int]
	if _, ok := nilSlots.Slot(1); ok || nilSlots.Len() != 0 {
		t.Fatal("nil HeavySlots must miss everything")
	}
	if NewHeavySlots[int](nil) != nil {
		t.Fatal("empty key set must return nil")
	}
}
