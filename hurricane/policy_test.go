package hurricane

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// eagerClonePolicy is a minimal custom policy registered through the
// public surface: it clones the "work" task on every snapshot where the
// task is running with a single worker, ignoring overload signals
// entirely. It exists to prove the Policy extension point works end to
// end on a real cluster.
type eagerClonePolicy struct {
	evaluations atomic.Int64
}

func (*eagerClonePolicy) Name() string { return "eager-clone" }

func (p *eagerClonePolicy) Evaluate(snap *Snapshot) []Action {
	p.evaluations.Add(1)
	t := snap.Tasks["work"]
	if t == nil || !t.Scheduled || t.Finished || t.Workers != 1 || t.DoneWorkers > 0 {
		return nil
	}
	return []Action{CloneTask{Task: "work", Epoch: t.Epoch}}
}

// TestCustomPolicyRegistration runs a job with MasterConfig.Policies set
// to a single custom policy: the engine must consult it (and only it) and
// apply its clone action.
func TestCustomPolicyRegistration(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	custom := &eagerClonePolicy{}
	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 1.5 // reactive signals off: only the custom policy can clone
	cfg.Master.Policies = []Policy{custom}
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("custom").SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "work",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			w := NewWriter(tc, 0, Int64Of)
			return ForEach(tc, 0, Int64Of, func(v int64) error {
				for i := 0; i < 200; i++ { // simulated work so the job outlives a snapshot
					if tc.Context().Err() != nil {
						return tc.Context().Err()
					}
				}
				return w.Write(v)
			})
		},
	})

	const n = 50000
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i)
		want += int64(i)
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}

	out, err := Collect(ctx, store, "out", Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, v := range out {
		got += v
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if custom.evaluations.Load() == 0 {
		t.Fatal("custom policy was never evaluated")
	}
	if clones := cluster.Master().Stats().Clones; clones == 0 {
		t.Fatal("custom policy's clone action was never applied")
	}
}

// TestEmptyPolicySetDisablesMitigation: an explicit empty policy slice is
// "no mitigation at all", distinct from nil (the default set).
func TestEmptyPolicySetDisablesMitigation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 0.01 // every heartbeat screams overload
	cfg.Node.MonitorInterval = time.Millisecond
	cfg.Master.CloneInterval = time.Millisecond
	cfg.Master.DisableHeuristic = true
	cfg.Master.Policies = []Policy{}
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("nopol").SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "work",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			w := NewWriter(tc, 0, Int64Of)
			return ForEach(tc, 0, Int64Of, func(v int64) error {
				for i := 0; i < 100; i++ {
					if tc.Context().Err() != nil {
						return tc.Context().Err()
					}
				}
				return w.Write(v)
			})
		},
	})
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(i)
	}
	store := cluster.Store()
	if err := Load(ctx, store, "in", Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	if st := cluster.Master().Stats(); st.Clones != 0 || st.Speculative != 0 {
		t.Fatalf("mitigation ran with an empty policy set: %+v", st)
	}
}
