package hurricane

import (
	"context"

	"repro/internal/stream"
)

// ---- continuous ingestion (internal/stream) ----
//
// RunStream turns unbounded sources into event-time tumbling windows and
// executes every window as a full DAG job on the multi-job scheduler —
// the micro-batch answer to the streaming dataflow model the paper leaves
// as future work (§3.1). Each window job gets partitioned shuffle edges,
// sketch-driven splitting, cloning, and fair-share leasing like any batch
// job, and consecutive windows share skew memory: a finished window's
// final partition maps and merged edge sketches warm-start the next
// window's partitioner, so known-hot keys are pre-split and pre-isolated
// instead of rediscovered inside every window.
//
//	app := hurricane.NewApp("w").SourceBag("clicks") ... // window DAG
//	h, _ := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
//		Name:    "clicks",
//		App:     app,
//		Sources: map[string]hurricane.StreamSource{"clicks": src},
//		Window:  time.Second,
//	})
//	for {
//		w, err := h.Next(ctx)
//		if err != nil { break } // io.EOF after Drain
//		counts, _ := hurricane.Collect(ctx, store, w.Bag("out"), codec)
//		...
//	}
//	_ = h.Drain(ctx) // seal the partial window, wait for in-flight jobs
//	cluster.Shutdown()
//
// Records arriving after their window sealed go to a late side channel:
// folded into the next open window by default, or surfaced per window
// (StreamSpec.SurfaceLate) through WindowResult.LateBag. A failed window
// job is reset (sources rewound, derived bags wiped) and retried without
// blocking successor windows, preserving exactly-once per window.
type (
	// StreamSpec describes a continuous-ingestion stream: the window DAG
	// template, its sources, the window width, and the late/retry/memory
	// knobs.
	StreamSpec = stream.Spec
	// StreamHandle is the caller's grip on a running stream: Next
	// (per-window results in order), Stats (watermark/lag/window
	// counters), Drain (graceful wind-down before Shutdown).
	StreamHandle = stream.Handle
	// StreamSource delivers an unbounded record stream into one source
	// bag of the window application.
	StreamSource = stream.Source
	// StreamRecord is one source record: event time plus encoded payload.
	StreamRecord = stream.Record
	// WindowResult is the outcome of one window: bag name mapping for its
	// outputs, record/late counts, attempts, and timing.
	WindowResult = stream.WindowResult
	// StreamStats snapshots a stream's watermark, lag, and window
	// counters.
	StreamStats = stream.Stats
)

// RunStream starts a continuous-ingestion stream on the cluster. It is
// the streaming analogue of Cluster.Run: where Run executes one sealed
// DAG job, RunStream executes an unbounded sequence of them, one per
// event-time window. Call StreamHandle.Drain before Cluster.Shutdown —
// draining seals the current partial window and waits for in-flight
// window jobs, so no ingested record is stranded unsealed.
func RunStream(ctx context.Context, c *Cluster, spec StreamSpec) (*StreamHandle, error) {
	return stream.Run(ctx, c, spec)
}
