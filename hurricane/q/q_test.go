package q_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/workload"
)

type tuple = hurricane.Pair[uint64, uint64]

var tupleCodec = hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of)

func testClusterConfig() hurricane.ClusterConfig {
	return hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    4 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Master: hurricane.MasterConfig{
			PollInterval:    time.Millisecond,
			CloneInterval:   5 * time.Millisecond,
			SplitInterval:   5 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 2048,
			SplitFan:        4,
		},
		Sched: hurricane.SchedConfig{Interval: 5 * time.Millisecond},
	}
}

func loadTuples(ctx context.Context, t *testing.T, store *hurricane.Store, bagName string, ts []workload.Tuple) {
	t.Helper()
	pairs := make([]tuple, len(ts))
	for i, w := range ts {
		pairs[i] = tuple{First: w.Key, Second: w.Payload}
	}
	if err := hurricane.Load(ctx, store, bagName, tupleCodec, pairs); err != nil {
		t.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, bagName); err != nil {
		t.Fatal(err)
	}
}

// countPlan builds scan -> filter(even keys) -> countByKey -> sink "out",
// exercising narrow fusion ahead of the shuffle edge.
func countPlan(name string) *q.Plan {
	p := q.New(name)
	src := q.Scan(p, "in", tupleCodec)
	even := q.Filter(src, func(t tuple) bool { return t.First%2 == 0 })
	q.CountByKey(even, func(t tuple) uint64 { return t.First }).Sink("out")
	return p
}

func countOracle(ts []workload.Tuple) map[uint64]int64 {
	want := make(map[uint64]int64)
	for _, t := range ts {
		if t.Key%2 == 0 {
			want[t.Key]++
		}
	}
	return want
}

func verifyCounts(t *testing.T, got map[uint64]int64, want map[uint64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d: got %d, want %d", k, got[k], n)
		}
	}
}

// TestQueryGroupByOracle runs a filtered count-by-key plan end to end on
// Zipf(1.3) input and verifies every key against ground truth; then it
// reruns the *same logical plan* warmed by the first run's skew memory
// (StatsFromMemory) and verifies the seeded run stays correct.
func TestQueryGroupByOracle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 7}
	tuples := gen.Generate(20000)
	want := countOracle(tuples)

	run := func(opts q.Options) map[string]hurricane.EdgeMemory {
		cluster, err := hurricane.NewCluster(testClusterConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Shutdown()
		c, err := countPlan("cnt").Compile(opts)
		if err != nil {
			t.Fatal(err)
		}
		store := cluster.Store()
		loadTuples(ctx, t, store, "in", tuples)
		if err := c.Run(ctx, cluster); err != nil {
			t.Fatal(err)
		}
		got, err := q.CollectGrouped(ctx, store, c.SinkBag("out"), hurricane.Int64Of,
			func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		verifyCounts(t, got, want)
		return cluster.Master().EdgeMemory()
	}

	mem := run(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128})
	if len(mem) == 0 {
		t.Fatal("first run left no edge memory")
	}

	// Repeated query: recompile with the finished run's memory and check
	// the planner pre-seeds the edge before verifying correctness again.
	warm := q.StatsFromMemory(mem, "")
	c2, err := countPlan("cnt").Compile(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128, Stats: warm})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Seeds) == 0 {
		t.Fatalf("warm recompilation produced no seed maps; explain:\n%s", c2.Explain())
	}
	run(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128, Stats: warm})
}

// TestJoinStrategiesIdenticalResults runs the same logical join under
// all three physical strategies on Zipf(1.3) probe keys and asserts each
// matches the ground-truth join size — the planner may only change *how*
// the join runs, never its result. All three submissions share one
// cluster through the multi-job scheduler (the Submit surface).
func TestJoinStrategiesIdenticalResults(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	rGen := workload.RelationGen{Keys: 64, S: 0, Seed: 3}
	sGen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 5}
	r := rGen.Generate(200)
	s := sGen.Generate(20000)
	want := workload.JoinCount(r, s)

	// Warm probe-side statistics from the generator's output — exactly
	// what a previous run's sketch would have recorded.
	sb := hurricane.NewStatsBuilder()
	for _, tup := range s {
		sb.Add(q.KeyBytes(tup.Key), 1)
	}

	cluster, err := hurricane.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	store := cluster.Store()

	outCodec := hurricane.PairOf(hurricane.Uint64Of, hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of))
	joinPlan := func(name string, strat q.JoinStrategy) *q.Plan {
		p := q.New(name)
		build := q.Scan(p, "relR", tupleCodec)
		probe := q.Scan(p, "relS", tupleCodec)
		q.Join(build, probe,
			func(t tuple) uint64 { return t.First },
			func(t tuple) uint64 { return t.First },
			outCodec,
			func(b, pr tuple, emit func(hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]) error) error {
				return emit(hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]{
					First:  pr.First,
					Second: hurricane.Pair[uint64, uint64]{First: b.Second, Second: pr.Second},
				})
			},
			q.WithStrategy(strat),
		).Sink("out")
		return p
	}

	for _, tc := range []struct {
		name   string
		strat  q.JoinStrategy
		stats  *q.Stats
		seeded bool
	}{
		{name: "broadcast", strat: q.JoinBroadcast},
		{name: "repart", strat: q.JoinRepartition},
		{name: "skewed", strat: q.JoinSkewed, stats: func() *q.Stats {
			st := q.NewStats()
			st.Edges["relS"] = sb.Stats()
			return st
		}(), seeded: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := joinPlan("j"+tc.name, tc.strat).Compile(q.Options{
				Parts: 4, SketchEvery: 256, PollEvery: 128, Stats: tc.stats,
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.Joins[0].Strategy != tc.strat {
				t.Fatalf("strategy %v, want %v", c.Joins[0].Strategy, tc.strat)
			}
			if tc.seeded && len(c.Seeds) == 0 {
				t.Fatalf("skewed join compiled without seeds:\n%s", c.Explain())
			}
			h, err := c.Submit(ctx, cluster, hurricane.JobConfig{Name: tc.name})
			if err != nil {
				t.Fatal(err)
			}
			loadTuples(ctx, t, store, h.Bag("relR"), r)
			loadTuples(ctx, t, store, h.Bag("relS"), s)
			if err := h.Wait(ctx); err != nil {
				t.Fatalf("job failed: %v", err)
			}
			got, err := hurricane.Collect(ctx, store, h.Bag(c.SinkBag("out")), outCodec)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(got)) != want {
				t.Fatalf("%s join produced %d matches, want %d", tc.name, len(got), want)
			}
			if tc.seeded {
				// The scheduler must have published the seed map before the
				// master started: the job's final edge memory carries the
				// pre-isolated heavy keys.
				mem := h.Master().EdgeMemory()
				found := false
				for _, em := range mem {
					if em.PMap != nil && len(em.PMap.Isolated) > 0 {
						found = true
					}
				}
				if !found {
					t.Fatalf("seeded submission left no isolations in edge memory: %+v", mem)
				}
			}
		})
	}
}

// TestTopKPipeline runs scan -> countByKey -> top3 -> sink and checks
// the exact ranking against ground truth (ties broken by key so the
// oracle is deterministic).
func TestTopKPipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	gen := workload.RelationGen{Keys: 32, S: 1.0, Seed: 11}
	tuples := gen.Generate(10000)
	counts := make(map[uint64]int64)
	for _, tu := range tuples {
		counts[tu.Key]++
	}
	type kc = hurricane.Pair[uint64, int64]
	less := func(a, b kc) bool {
		if a.Second != b.Second {
			return a.Second < b.Second
		}
		return a.First > b.First // lower key ranks higher on ties
	}
	var wantTop []kc
	for k, n := range counts {
		wantTop = append(wantTop, kc{First: k, Second: n})
	}
	for i := 0; i < len(wantTop); i++ {
		for j := i + 1; j < len(wantTop); j++ {
			if less(wantTop[i], wantTop[j]) {
				wantTop[i], wantTop[j] = wantTop[j], wantTop[i]
			}
		}
	}
	wantTop = wantTop[:3]

	p := q.New("topk")
	src := q.Scan(p, "in", tupleCodec)
	cnt := q.CountByKey(src, func(t tuple) uint64 { return t.First })
	q.TopK(cnt, 3, less).Sink("out")
	c, err := p.Compile(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.Store()
	loadTuples(ctx, t, store, "in", tuples)
	if err := c.Run(ctx, cluster); err != nil {
		t.Fatal(err)
	}
	got, err := hurricane.Collect(ctx, store, c.SinkBag("out"), hurricane.PairOf(hurricane.Uint64Of, hurricane.Int64Of))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("top-3 returned %d records: %v", len(got), got)
	}
	for i, w := range wantTop {
		if got[i] != w {
			t.Fatalf("rank %d: got %+v, want %+v (full: %v)", i, got[i], w, got)
		}
	}
}

// TestTopKDirectlyOnScan runs TopK straight over a source bag (no
// aggregation in between) — the single-stage compile shape — and checks
// the exact ranking.
func TestTopKDirectlyOnScan(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	p := q.New("rawtop")
	src := q.Scan(p, "in", hurricane.Int64Of)
	q.TopK(src, 4, func(a, b int64) bool { return a < b }).Sink("out")
	c, err := p.Compile(q.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64((i * 7919) % 5000)
	}
	store := cluster.Store()
	if err := hurricane.Load(ctx, store, "in", hurricane.Int64Of, vals); err != nil {
		t.Fatal(err)
	}
	if err := hurricane.Seal(ctx, store, "in"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(ctx, cluster); err != nil {
		t.Fatal(err)
	}
	got, err := hurricane.Collect(ctx, store, c.SinkBag("out"), hurricane.Int64Of)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4999, 4998, 4997, 4996}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

// scriptedSource feeds pre-encoded batches as a stream source.
type scriptedSource struct {
	mu      sync.Mutex
	batches [][]hurricane.StreamRecord
}

func (s *scriptedSource) Poll(ctx context.Context) ([]hurricane.StreamRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return nil, io.EOF
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, nil
}

// TestPlanAsStreamWindowDAG runs the compiled plan's App unmodified as a
// RunStream window DAG: three event-time windows of Zipf tuples, each
// window's counts verified against its own ground truth — the third
// execution surface (after Run and Submit) one plan object serves.
func TestPlanAsStreamWindowDAG(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const windows, perWindow = 3, 4000
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 13}
	all := gen.Generate(windows * perWindow)

	c, err := countPlan("winq").Compile(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128})
	if err != nil {
		t.Fatal(err)
	}

	origin := int64(1_000_000_000_000)
	src := &scriptedSource{}
	want := make([]map[uint64]int64, windows)
	for w := 0; w < windows; w++ {
		seg := all[w*perWindow : (w+1)*perWindow]
		want[w] = countOracle(seg)
		batch := make([]hurricane.StreamRecord, len(seg))
		for i, tu := range seg {
			batch[i] = hurricane.StreamRecord{
				Time: origin + int64(w)*int64(time.Second) + int64(i)*int64(time.Second)/int64(perWindow+1),
				Data: tupleCodec.Encode(nil, tuple{First: tu.Key, Second: tu.Payload}),
			}
		}
		src.batches = append(src.batches, batch)
	}

	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:        "winq",
		App:         c.App,
		Sources:     map[string]hurricane.StreamSource{"in": src},
		Window:      time.Second,
		Origin:      origin,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.Store()
	for w := 0; w < windows; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Err != nil {
			t.Fatalf("window %d failed: %v", w, res.Err)
		}
		got, err := q.CollectGrouped(ctx, store, res.Bag(c.SinkBag("out")), hurricane.Int64Of,
			func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		verifyCounts(t, got, want[w])
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
