package q_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/workload"
)

// TestVectorizedPlanOracle runs scan -> filter -> map -> countByKey on
// Zipf(1.3) input — a fused narrow prefix the compiler lowers to batch
// kernels (filter as a compacting selection pass, map over the vector)
// ahead of a batch-routed shuffle edge — and checks every key against
// ground truth. It then asserts the job really moved batch chunks: with
// a columnar record codec the planner's batch plane is on by default,
// and the shuffle writers count every batch they insert.
func TestVectorizedPlanOracle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 17}
	tuples := gen.Generate(30000)
	want := make(map[uint64]int64)
	for _, tu := range tuples {
		if tu.Key%3 != 0 {
			want[tu.Key*2]++
		}
	}

	p := q.New("vec")
	src := q.Scan(p, "in", tupleCodec)
	kept := q.Filter(src, func(t tuple) bool { return t.First%3 != 0 })
	doubled := q.Map(kept, tupleCodec, func(t tuple) tuple {
		return tuple{First: t.First * 2, Second: t.Second}
	})
	q.CountByKey(doubled, func(t tuple) uint64 { return t.First }).Sink("out")
	c, err := p.Compile(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128})
	if err != nil {
		t.Fatal(err)
	}

	store := cluster.Store()
	loadTuples(ctx, t, store, "in", tuples)
	if err := c.Run(ctx, cluster); err != nil {
		t.Fatal(err)
	}
	got, err := q.CollectGrouped(ctx, store, c.SinkBag("out"), hurricane.Int64Of,
		func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	verifyCounts(t, got, want)

	var batches float64
	for series, v := range cluster.Observer().Registry().Snapshot() {
		if strings.HasPrefix(series, "hurricane_chunk_batches_total") {
			batches += v
		}
	}
	if batches == 0 {
		t.Fatal("no batch chunks recorded — the compiled plan fell back to rows")
	}
}
