// Package q is the typed, declarative query API over Hurricane's planner
// (internal/plan): build a logical dataflow — Scan / Filter / Map /
// FlatMap / AggregateByKey / Join / TopK / Sink — and compile it into an
// adaptive DAG job. The compiler fuses adjacent narrow operators into
// single streaming tasks, inserts partitioned shuffle edges only at wide
// boundaries, and picks each join's physical strategy (repartition,
// broadcast, or heavy-hitter-isolating skewed join) from compile-time
// statistics, falling back to the runtime control plane's sketch-driven
// splitting and isolation when statistics are missing or wrong.
//
//	p := q.New("wordcount")
//	words := q.Scan(p, "in", hurricane.StringOf)
//	counts := q.CountByKey(words, func(w string) uint64 { return hash(w) })
//	counts.Sink("out")
//	c, _ := p.Compile(q.Options{Parts: 4})
//	// same compiled object runs on every surface:
//	_ = c.Run(ctx, cluster)                     // single job
//	h, _ := c.Submit(ctx, cluster, jobCfg)      // multi-job scheduler
//	// or c.App as a RunStream window DAG, or over TCP via hurricane-run
//	got, _ := q.CollectGrouped(ctx, store, c.SinkBag("out"),
//		hurricane.Int64Of, func(a, b int64) int64 { return a + b })
package q

import (
	"context"

	"repro/hurricane"
	"repro/internal/chunk"
	"repro/internal/plan"
)

// Re-exported planner types; the q functions below are the typed surface
// over them.
type (
	// Options tunes logical→physical compilation (partitions, broadcast
	// threshold, isolation threshold, static/naive mode, statistics).
	Options = plan.Options
	// Stats carries compile-time statistics: source-bag sizes and warm
	// key-frequency sketches (from a sample, a previous run's
	// StatsFromMemory, or a generator's known distribution).
	Stats = plan.Stats
	// Compiled is an executable physical plan: inspect it with Explain,
	// run it with Run/Submit (which publish the seed partition maps as
	// soon as the job is admitted), or hand Compiled.App to any other
	// execution surface.
	Compiled = plan.Physical
	// JoinStrategy is a physical join implementation.
	JoinStrategy = plan.JoinStrategy
	// StageInfo / JoinInfo describe the compiled plan for inspection.
	StageInfo = plan.StageInfo
	JoinInfo  = plan.JoinInfo
)

// Join strategies, comparable against JoinInfo.Strategy and usable with
// WithStrategy.
const (
	JoinAuto        = plan.JoinAuto
	JoinRepartition = plan.JoinRepartition
	JoinBroadcast   = plan.JoinBroadcast
	JoinSkewed      = plan.JoinSkewed
)

// NewStats returns empty compile-time statistics ready to be filled.
func NewStats() *Stats { return plan.NewStats() }

// StatsFromMemory converts a finished job's skew memory
// (cluster.Master().EdgeMemory() or JobHandle.Master().EdgeMemory())
// into compile statistics for a repeated run of the same plan. prefix is
// the finished job's namespace ("" for raw/Cluster.Run jobs).
func StatsFromMemory(mem map[string]hurricane.EdgeMemory, prefix string) *Stats {
	return plan.StatsFromMemory(mem, prefix)
}

// KeyBytes is the canonical byte encoding of a uint64 key — use it when
// feeding warm per-key statistics (sketch builders) to the planner so
// they match what the compiled shuffle writers route on.
func KeyBytes(k uint64) []byte { return plan.KeyBytes(k) }

// Plan is a logical query plan under construction.
type Plan struct{ p *plan.Plan }

// New returns an empty plan. The name becomes the compiled application's
// name and prefixes its generated bags.
func New(name string) *Plan { return &Plan{p: plan.New(name)} }

// Compile lowers the plan to an executable physical form.
func (p *Plan) Compile(opts Options) (*Compiled, error) { return plan.Compile(p.p, opts) }

// Validate checks the logical plan without compiling.
func (p *Plan) Validate() error { return p.p.Validate() }

// Dataset is a typed handle on one logical operator's output.
type Dataset[T any] struct {
	p *Plan
	n *plan.Node
}

// Sink materializes the dataset into a named output bag. Sinking an
// AggregateByKey stores mergeable partials — read them back with
// CollectGrouped, which reconciles spread or split keys.
func (d *Dataset[T]) Sink(bag string) *Dataset[T] {
	d.p.p.Sink(d.n, bag)
	return d
}

// anyCodec adapts a typed codec to the planner's untyped record plane.
// When the wrapped codec supports the columnar batch layout it also
// satisfies plan.ColumnarAnyCodec, which makes the compiled stages run
// vectorized batch loops; row-only codecs leave cc nil (ColKinds returns
// nil) and the stages keep the record-at-a-time path.
type anyCodec[T any] struct {
	c     hurricane.Codec[T]
	cc    chunk.ColumnCodec[T]
	kinds []chunk.ColKind
}

func codecOf[T any](c hurricane.Codec[T]) anyCodec[T] {
	a := anyCodec[T]{c: c}
	if cc, ok := chunk.ColumnarOf(c); ok {
		a.cc = cc
		a.kinds = chunk.KindsOf(cc)
	}
	return a
}

func (a anyCodec[T]) EncodeAny(dst []byte, v any) []byte { return a.c.Encode(dst, v.(T)) }
func (a anyCodec[T]) DecodeAny(rec []byte) (any, error) {
	v, _, err := a.c.Decode(rec)
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (a anyCodec[T]) ColKinds() []chunk.ColKind { return a.kinds }

func (a anyCodec[T]) EncodeColumnAny(b *chunk.BatchBuilder, v any) {
	a.cc.EncodeColumn(b, 0, v.(T))
}

func (a anyCodec[T]) DecodeBatchAny(bt *chunk.Batch, out []any) ([]any, error) {
	vals, _, err := a.cc.DecodeColumn(bt, 0, nil)
	if err != nil {
		return out, err
	}
	for _, v := range vals {
		out = append(out, v)
	}
	return out, nil
}

// Scan reads a source bag. Load and seal it (hurricane.Load /
// hurricane.Seal) before the compiled job runs — under the JobHandle.Bag
// name for namespaced submissions.
func Scan[T any](p *Plan, bag string, codec hurricane.Codec[T]) *Dataset[T] {
	return &Dataset[T]{p: p, n: p.p.Scan(bag, codecOf(codec))}
}

// Filter keeps the records pred accepts. pred is shared by every worker
// of the compiled stage (originals and clones alike) and must be
// stateless; see MapPerWorker for stateful per-record operators.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	return &Dataset[T]{p: d.p, n: d.p.p.Filter(d.n, func(v any) bool { return pred(v.(T)) })}
}

// Map transforms each record. fn is shared by every worker of the
// compiled stage and must be stateless; use MapPerWorker for stateful
// transforms.
func Map[T, U any](d *Dataset[T], codec hurricane.Codec[U], fn func(T) U) *Dataset[U] {
	n := d.p.p.Map(d.n, codecOf(codec), func(v any) (any, error) { return fn(v.(T)), nil })
	return &Dataset[U]{p: d.p, n: n}
}

// MapPerWorker is Map with worker-local state: factory runs once per
// worker (original or clone), and the returned function transforms that
// worker's records. Use it for stateful per-record operators — batched
// cost accounting, caches, counters — which would race if one closure
// were shared across concurrent clones.
func MapPerWorker[T, U any](d *Dataset[T], codec hurricane.Codec[U], factory func() func(T) U) *Dataset[U] {
	n := d.p.p.MapPerWorker(d.n, codecOf(codec), func() func(any) (any, error) {
		fn := factory()
		return func(v any) (any, error) { return fn(v.(T)), nil }
	})
	return &Dataset[U]{p: d.p, n: n}
}

// FlatMap emits zero or more records per input record. fn is shared by
// every worker of the compiled stage and must be stateless; see
// MapPerWorker for stateful per-record operators.
func FlatMap[T, U any](d *Dataset[T], codec hurricane.Codec[U], fn func(T, func(U) error) error) *Dataset[U] {
	n := d.p.p.FlatMap(d.n, codecOf(codec), func(v any, emit func(any) error) error {
		return fn(v.(T), func(u U) error { return emit(u) })
	})
	return &Dataset[U]{p: d.p, n: n}
}

// AggregateByKey groups records by key behind a partitioned shuffle edge
// and folds them into per-key accumulators. The aggregation must be
// mergeable (§2.3): add folds one record in, merge reconciles two
// accumulators of the same key — which is what lets the engine split hot
// partitions and spread heavy-hitter keys across consumers mid-run. The
// output records are (key, accumulator) partials; a key may appear in
// several partials until a downstream finalize (TopK, Map, ...) or
// CollectGrouped merges them.
func AggregateByKey[T, A any](
	d *Dataset[T],
	key func(T) uint64,
	accCodec hurricane.Codec[A],
	init func() A,
	add func(A, T) A,
	merge func(A, A) A,
) *Dataset[hurricane.Pair[uint64, A]] {
	partialCodec := hurricane.PairOf(hurricane.Uint64Of, accCodec)
	spec := plan.GroupBySpec{
		Key:          func(v any) uint64 { return key(v.(T)) },
		Init:         func() any { return init() },
		Add:          func(acc, rec any) any { return add(acc.(A), rec.(T)) },
		Merge:        func(a, b any) any { return merge(a.(A), b.(A)) },
		PartialCodec: codecOf(partialCodec),
		MakePartial: func(k uint64, acc any) any {
			return hurricane.Pair[uint64, A]{First: k, Second: acc.(A)}
		},
		SplitPartial: func(p any) (uint64, any) {
			pp := p.(hurricane.Pair[uint64, A])
			return pp.First, pp.Second
		},
	}
	return &Dataset[hurricane.Pair[uint64, A]]{p: d.p, n: d.p.p.GroupBy(d.n, spec)}
}

// CountByKey counts records per key — AggregateByKey with an int64
// counter.
func CountByKey[T any](d *Dataset[T], key func(T) uint64) *Dataset[hurricane.Pair[uint64, int64]] {
	return AggregateByKey(d, key, hurricane.Int64Of,
		func() int64 { return 0 },
		func(acc int64, _ T) int64 { return acc + 1 },
		func(a, b int64) int64 { return a + b },
	)
}

// JoinOption tweaks one join.
type JoinOption func(*plan.JoinSpec)

// WithStrategy pins the physical join strategy instead of letting
// statistics decide.
func WithStrategy(s JoinStrategy) JoinOption {
	return func(spec *plan.JoinSpec) { spec.Strategy = s }
}

// Join equi-joins two datasets: build (hash-loaded in memory by every
// join worker) and probe (streamed). The physical strategy — shuffled
// repartition, broadcast, or a skewed join that pre-isolates
// heavy-hitter probe keys onto spread fragment consumers — is chosen per
// edge from compile-time statistics unless pinned with WithStrategy.
// join must be record-parallel: each (build, probe) pair's emissions
// must not depend on other probe records.
func Join[L, R, O any](
	build *Dataset[L],
	probe *Dataset[R],
	buildKey func(L) uint64,
	probeKey func(R) uint64,
	codec hurricane.Codec[O],
	join func(L, R, func(O) error) error,
	opts ...JoinOption,
) *Dataset[O] {
	spec := plan.JoinSpec{
		BuildKey: func(v any) uint64 { return buildKey(v.(L)) },
		ProbeKey: func(v any) uint64 { return probeKey(v.(R)) },
		Codec:    codecOf(codec),
		Join: func(b, p any, emit func(any) error) error {
			return join(b.(L), p.(R), func(o O) error { return emit(o) })
		},
	}
	for _, o := range opts {
		o(&spec)
	}
	return &Dataset[O]{p: build.p, n: build.p.p.Join(build.n, probe.n, spec)}
}

// TopK keeps the k greatest records under less (less(a, b) reports a
// ranking below b). It compiles to a single-worker finalize stage — and
// merges upstream AggregateByKey partials first, so ranking happens over
// finalized per-key values.
func TopK[T any](d *Dataset[T], k int, less func(a, b T) bool) *Dataset[T] {
	n := d.p.p.TopK(d.n, k, func(a, b any) bool { return less(a.(T), b.(T)) })
	return &Dataset[T]{p: d.p, n: n}
}

// CollectGrouped reads a sunk AggregateByKey bag and merges its partials
// into final per-key accumulators — the read-side reconciliation for
// keys that were spread across consumers or split mid-run.
func CollectGrouped[A any](
	ctx context.Context,
	store *hurricane.Store,
	bagName string,
	accCodec hurricane.Codec[A],
	merge func(A, A) A,
) (map[uint64]A, error) {
	partials, err := hurricane.Collect(ctx, store, bagName, hurricane.PairOf(hurricane.Uint64Of, accCodec))
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]A)
	for _, p := range partials {
		if prev, ok := out[p.First]; ok {
			out[p.First] = merge(prev, p.Second)
		} else {
			out[p.First] = p.Second
		}
	}
	return out, nil
}
