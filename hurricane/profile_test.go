package hurricane_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// TestProfileZipfGroupBy is the profiler's end-to-end acceptance test: a
// Zipf(s=1.3) groupby runs to completion and JobHandle.Profile must
// return a critical path whose per-phase spans account for the measured
// job wall time within 10% — the gap is scheduler latency between
// stages, which the 1ms poll intervals keep small. It also checks the
// per-edge skew attribution and the exact shuffle record accounting.
func TestProfileZipfGroupBy(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    4 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   2 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
			// Reactive cloning off: a late-started clone can become a
			// stage's latest finisher, and its span — which starts
			// mid-stage — would legitimately undercount the stage's
			// elapsed time. The wall-accounting acceptance bound below
			// needs stage-covering spans, not mitigation behavior (that
			// is covered elsewhere).
			OverloadThreshold: 1.5,
		},
		Master: hurricane.MasterConfig{
			PollInterval:  time.Millisecond,
			CloneInterval: 5 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	// 20k Zipf(1.3) tuples with 12µs of simulated per-record aggregation
	// cost: consumer compute dominates the run, so the profile has real
	// phase structure to account for — and the source load (which the
	// master waits out unprofiled before scheduling) stays a sliver of
	// the wall clock.
	tuples := workload.ZipfTuples(20000, 64, 1.3, 7)
	want := workload.KeyCounts(tuples)
	app := apps.GroupByApp(4, true, false, 12000)

	// Load and seal the source before submitting: the master defers
	// scheduling until its source bags seal, and that wait is (by
	// design) not a task phase — pre-loading keeps the measured wall
	// clock purely about execution. The bag name is the job's namespace
	// mapping, checked against the handle below.
	const jobName = "zipf"
	srcBag := jobName + "/" + apps.GroupByIn
	store := cluster.Store()
	if err := apps.LoadGroupByInto(ctx, store, srcBag, tuples); err != nil {
		t.Fatal(err)
	}
	h, err := cluster.SubmitJob(ctx, app, hurricane.JobConfig{Name: jobName})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Bag(apps.GroupByIn); got != srcBag {
		t.Fatalf("namespace mapping %q, want %q", got, srcBag)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := apps.CollectGroupByFrom(ctx, store, h.Bag(apps.GroupByOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d keys, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k].Count != n {
			t.Fatalf("key %d: count %d, want %d", k, got[k].Count, n)
		}
	}

	p := h.Profile()
	if p == nil || p.Job != "zipf" {
		t.Fatalf("profile: %+v", p)
	}
	shuf, agg := p.Stage("shuffle"), p.Stage("aggregate")
	if shuf == nil || agg == nil {
		t.Fatalf("missing stages in profile:\n%s", p)
	}
	// The partitioned writer counts routed records exactly; clones
	// consume disjoint chunks, so the stage total is the input size.
	if shuf.Records != int64(len(tuples)) {
		t.Fatalf("shuffle stage routed %d records, want %d", shuf.Records, len(tuples))
	}
	if len(p.Critical) == 0 || p.Critical[len(p.Critical)-1].Task != "aggregate" {
		t.Fatalf("critical path %v must end at the aggregate stage", p.Critical)
	}

	// Acceptance: the critical path's phase spans account for the job
	// wall clock within 10%.
	diff := p.WallNS - p.CriticalNS
	if diff < 0 {
		diff = -diff
	}
	if diff > p.WallNS/10 {
		t.Fatalf("critical path %.1fms vs wall %.1fms (gap > 10%%):\n%s",
			float64(p.CriticalNS)/1e6, float64(p.WallNS)/1e6, p)
	}

	// Edge skew attribution for the namespaced shuffle edge.
	var found bool
	for _, e := range p.Edges {
		if strings.HasSuffix(e.Edge, "/"+apps.GroupByShuf) || e.Edge == apps.GroupByShuf {
			found = true
			if e.Consumer != "aggregate" {
				t.Fatalf("edge consumer %q", e.Consumer)
			}
			if e.MaxTaskNS <= 0 || e.P50TaskNS <= 0 || e.MaxTaskNS < e.P50TaskNS {
				t.Fatalf("edge task times: %+v", e)
			}
			if e.SlowestShare <= 0 || e.SlowestShare > 1 {
				t.Fatalf("slowest share %f", e.SlowestShare)
			}
		}
	}
	if !found {
		t.Fatalf("no skew attribution for edge %s: %+v", apps.GroupByShuf, p.Edges)
	}
}
