package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/workload"
)

// runQuery executes a planner-compiled join against the remote storage
// tier: the probe-side shuffle edge, its seed partition map, producer
// sketches, and runtime split/isolation control traffic all travel over
// TCP. The planner consults warm statistics (the probe relation's key
// sketch) and picks the physical strategy; with skewed keys (-skew ≳ 1)
// that is the SharesSkew-style skewed join with pre-isolated heavy
// hitters.
func runQuery(ctx context.Context, store *bag.Store, names []string, records int, skew float64, computes, slots, parts int) {
	keys := records / 12
	if keys < 1024 {
		keys = 1024
	}
	fmt.Printf("generating R (%d keys) and S (%d tuples, s=%.1f), loading onto %d storage nodes...\n",
		keys, records, skew, len(names))
	r := workload.SeqRelation(keys, 41)
	s := workload.ZipfTuples(records, keys, skew, 43)
	want := workload.JoinCount(r, s)
	wantPerKey := workload.KeyCounts(s)

	c, err := apps.HashJoinPlan().Compile(q.Options{
		Parts: parts, SketchEvery: 512, PollEvery: 256,
		Stats: apps.JoinWarmStats(r, s),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Explain())

	if err := apps.LoadRelations(ctx, store, r, s); err != nil {
		log.Fatal(err)
	}
	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: computes,
		SlotsPerNode: slots,
		Master: core.MasterConfig{
			CloneInterval:   50 * time.Millisecond,
			SplitInterval:   20 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 4096,
			SplitFan:        4,
		},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	defer cluster.Shutdown()

	start := time.Now()
	if err := c.Run(ctx, cluster); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got, err := hurricane.Collect(ctx, store, c.SinkBag(apps.JoinShufOut), apps.MatchCodec)
	if err != nil {
		log.Fatal(err)
	}
	perKey := make(map[uint64]int64)
	for _, m := range got {
		perKey[m.First]++
	}
	buildPerKey := workload.KeyCounts(r)
	bad := 0
	for k, n := range wantPerKey {
		if perKey[k] != n*buildPerKey[k] {
			bad++
		}
	}
	st := cluster.Master().Stats()
	fmt.Printf("query (%s join) on %d remote storage nodes: %d matches (want %d), %d/%d probe keys correct in %v\n",
		c.Joins[0].Strategy, len(names), len(got), want, len(wantPerKey)-bad, len(wantPerKey), elapsed)
	fmt.Printf("master stats: %+v\n", st)
	if int64(len(got)) != want || bad > 0 {
		log.Fatal("verification failed")
	}
}
