// Command hurricane-run executes a Hurricane job against standalone
// hurricane-storage servers over TCP: compute nodes and the application
// master run in this process, all bags live on the remote storage tier.
//
// Usage:
//
//	hurricane-storage -addr 127.0.0.1:7070 &
//	hurricane-storage -addr 127.0.0.1:7071 &
//	hurricane-run -storage storage-0=127.0.0.1:7070,storage-1=127.0.0.1:7071 \
//	    -records 200000 -skew 1.0
//
// The job (-job) is the paper's ClickLog application, the skew-aware
// shuffle groupby (whose partitioned bags, producer sketches, and
// hot-partition splits then run against the remote storage tier over
// TCP), or a planner-compiled query (-job query): a declarative join
// whose physical strategy — broadcast, repartition, or skewed with
// pre-isolated heavy hitters — is chosen from warm statistics, with the
// seed partition map published through the same remote control bags.
// Results are verified against an in-process oracle.
//
// Streaming mode: with -stream the process runs the continuous-ingestion
// subsystem against the remote storage tier — a drifting Zipf click-log
// source cut into event-time windows (-windows), each executed as a DAG
// job whose partitioned edges are warm-started from the previous window's
// skew memory. Every window is verified against ground truth:
//
//	hurricane-run -storage ... -stream -records 160000 -windows 8 -skew 1.3
//
// Scheduler service mode: with -serve the process runs the multi-job
// scheduler against the remote storage tier and executes every job
// submitted through the "sched!submit" control bag — concurrently, with
// per-job bag namespaces and fair-share slot leasing. Submissions travel
// over the same TCP storage transport as all other data; any process
// that can reach the storage nodes can submit:
//
//	hurricane-run -storage ... -serve &
//	hurricane-run -storage ... -submit -name j1 -job groupby -records 200000 -skew 1.3
//	hurricane-run -storage ... -submit -name j2 -job sqsum -records 100000 -weight 2
//	hurricane-run -storage ... -submit -name j3 -job query -records 200000 -skew 1.3
//
// Every -submit mints a causal trace ID that travels with the
// submission record over the storage wire; the serving cluster stamps
// it into the remote job's trace events and execution profile. After
// completion the client fetches the job's EXPLAIN ANALYZE, profile,
// and decision timeline from the server's debug endpoint by that ID
// (same-host or reachable -debug address required; degrades to the
// result line otherwise). -job query runs the planner-compiled groupby,
// whose EXPLAIN ANALYZE renders the compiled physical plan annotated
// with the measured execution.
//
// A -serve process also exposes the cluster's live observability over
// HTTP (default 127.0.0.1:6066; move it with -debug addr, disable with
// -debug off): /metrics in Prometheus text format (including the
// hurricane_storage_op_* wire telemetry of its TCP storage client),
// /debug/trace for the typed skew-event log (?job=, ?type=, ?trace=
// filters), /debug/skew for per-edge heavy hitters and partition heat,
// /debug/timeseries for the continuously sampled metric history,
// /debug/alerts for the watchdog rules and raised alerts, /debug/dash
// for the live sparkline dashboard, /debug/profile/<job> for a job's
// measured execution profile (phase spans, critical path, per-edge skew
// attribution), /debug/explain/<job> for its EXPLAIN ANALYZE, and the
// standard /debug/pprof/ profiles:
//
//	curl -s localhost:6066/metrics | grep hurricane_storage_op_total
//	curl -s 'localhost:6066/debug/trace?job=j1&type=PartitionSplit'
//	curl -s localhost:6066/debug/skew
//	curl -s 'localhost:6066/debug/timeseries?series=hurricane_core'
//	curl -s 'localhost:6066/debug/alerts?firing=1'
//	curl -s localhost:6066/debug/profile/j1
//	curl -s 'localhost:6066/debug/explain/?trace=t-<id>'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	storageFlag := flag.String("storage", "", "comma-separated name=addr storage nodes")
	job := flag.String("job", "clicklog", "job to run: clicklog | groupby | query (with -submit: sqsum | groupby)")
	records := flag.Int("records", 200000, "records to generate")
	skew := flag.Float64("skew", 1.0, "zipf skew s")
	computes := flag.Int("computes", 4, "compute nodes in this process")
	slots := flag.Int("slots", 2, "worker slots per compute node")
	parts := flag.Int("parts", 4, "groupby/stream: base shuffle partitions")
	streamMode := flag.Bool("stream", false, "continuous ingestion: run a drifting Zipf click-log stream as event-time windows against the remote storage tier")
	windows := flag.Int("windows", 8, "-stream: number of event-time windows")
	serveMode := flag.Bool("serve", false, "run the multi-job scheduler service: execute jobs submitted via the sched!submit bag")
	debugAddr := flag.String("debug", "", "-serve: address for the /metrics and /debug HTTP surface (default 127.0.0.1:6066; \"off\" disables)")
	submitMode := flag.Bool("submit", false, "submit a job to a -serve process and wait for its result")
	name := flag.String("name", "", "-submit: unique job name (also its bag namespace)")
	weight := flag.Int("weight", 0, "-submit: fair-share weight (0 = default)")
	flag.Parse()

	addrs := map[string]string{}
	for _, kv := range strings.Split(*storageFlag, ",") {
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -storage entry %q (want name=addr)", kv)
		}
		addrs[parts[0]] = parts[1]
	}
	if len(addrs) == 0 {
		log.Fatal("no storage nodes; pass -storage name=addr,...")
	}
	names := make([]string, 0, len(addrs))
	for n := range addrs {
		names = append(names, n)
	}
	sort.Strings(names)

	client := transport.NewTCPClient(addrs)
	defer client.Close()
	store, err := bag.NewStore(bag.Config{
		Nodes:     names,
		Client:    client,
		ChunkSize: 256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if *serveMode {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := serve(ctx, store, client, *computes, *slots, *debugAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *submitMode {
		if *name == "" {
			log.Fatal("-submit requires -name")
		}
		req := jobRequest{Name: *name, Job: *job, Records: *records,
			Skew: *skew, Parts: *parts, Weight: *weight}
		if req.Job == "clicklog" {
			req.Job = "sqsum" // served kinds are sqsum, groupby, and query
		}
		if err := submitAndWait(ctx, store, req); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *streamMode {
		runStream(ctx, store, names, *records, *windows, *skew, *computes, *slots, *parts)
		return
	}

	switch *job {
	case "groupby":
		runGroupBy(ctx, store, names, *records, *skew, *computes, *slots, *parts)
		return
	case "query":
		runQuery(ctx, store, names, *records, *skew, *computes, *slots, *parts)
		return
	case "clicklog":
	default:
		log.Fatalf("unknown -job %q (valid: clicklog groupby query; with -submit: sqsum groupby)", *job)
	}

	const regions, hostBits = 16, 12
	fmt.Printf("generating %d clicks (s=%.1f), loading onto %d storage nodes...\n",
		*records, *skew, len(names))
	gen := workload.ClickLogGen{S: *skew, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(*records)
	want := workload.DistinctPerRegion(ips, regions)
	if err := apps.LoadClickLog(ctx, store, ips); err != nil {
		log.Fatal(err)
	}

	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: *computes,
		SlotsPerNode: *slots,
		Master:       core.MasterConfig{CloneInterval: 50 * time.Millisecond},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	start := time.Now()
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	defer cluster.Shutdown()

	got, err := apps.ClickLogCounts(ctx, store, regions)
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for r := range want {
		if got[r] != want[r] {
			fmt.Printf("region %s: got %d want %d\n", workload.RegionName(r), got[r], want[r])
			bad++
		}
	}
	fmt.Printf("clicklog on %d remote storage nodes: %d/%d regions correct in %v\n",
		len(names), regions-bad, regions, elapsed)
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if bad > 0 {
		log.Fatal("verification failed")
	}
}

// runGroupBy executes the skew-aware shuffle groupby against the remote
// storage tier: partition bags, the pmap control bag, and OpSketch pushes
// all travel over TCP.
func runGroupBy(ctx context.Context, store *bag.Store, names []string, records int, skew float64, computes, slots, parts int) {
	fmt.Printf("generating %d tuples (s=%.1f), loading onto %d storage nodes...\n",
		records, skew, len(names))
	tuples := workload.ZipfTuples(records, 64, skew, 9)
	want := workload.KeyCounts(tuples)
	if err := apps.LoadGroupBy(ctx, store, tuples); err != nil {
		log.Fatal(err)
	}

	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: computes,
		SlotsPerNode: slots,
		Master: core.MasterConfig{
			CloneInterval:   50 * time.Millisecond,
			SplitInterval:   20 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 4096,
			SplitFan:        4,
		},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	app := apps.GroupByApp(parts, true, false, 0)
	spec := app.BagSpecFor(apps.GroupByShuf)
	spec.SketchEvery, spec.PollEvery = 512, 256
	start := time.Now()
	if err := cluster.Run(ctx, app); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	defer cluster.Shutdown()

	got, err := apps.CollectGroupBy(ctx, store)
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for k, n := range want {
		if got[k].Count != n {
			fmt.Printf("key %d: got %d want %d\n", k, got[k].Count, n)
			bad++
		}
	}
	st := cluster.Master().Stats()
	fmt.Printf("groupby on %d remote storage nodes: %d/%d keys correct in %v\n",
		len(names), len(want)-bad, len(want), elapsed)
	fmt.Printf("master stats: %+v\n", st)
	if bad > 0 || len(got) != len(want) {
		log.Fatal("verification failed")
	}
}
