// Command hurricane-run executes a Hurricane job against standalone
// hurricane-storage servers over TCP: compute nodes and the application
// master run in this process, all bags live on the remote storage tier.
//
// Usage:
//
//	hurricane-storage -addr 127.0.0.1:7070 &
//	hurricane-storage -addr 127.0.0.1:7071 &
//	hurricane-run -storage storage-0=127.0.0.1:7070,storage-1=127.0.0.1:7071 \
//	    -records 200000 -skew 1.0
//
// The job is the paper's ClickLog application; results are verified
// against an in-process oracle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	storageFlag := flag.String("storage", "", "comma-separated name=addr storage nodes")
	records := flag.Int("records", 200000, "click records to generate")
	skew := flag.Float64("skew", 1.0, "zipf skew s")
	computes := flag.Int("computes", 4, "compute nodes in this process")
	slots := flag.Int("slots", 2, "worker slots per compute node")
	flag.Parse()

	addrs := map[string]string{}
	for _, kv := range strings.Split(*storageFlag, ",") {
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -storage entry %q (want name=addr)", kv)
		}
		addrs[parts[0]] = parts[1]
	}
	if len(addrs) == 0 {
		log.Fatal("no storage nodes; pass -storage name=addr,...")
	}
	names := make([]string, 0, len(addrs))
	for n := range addrs {
		names = append(names, n)
	}
	sort.Strings(names)

	client := transport.NewTCPClient(addrs)
	defer client.Close()
	store, err := bag.NewStore(bag.Config{
		Nodes:     names,
		Client:    client,
		ChunkSize: 256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	const regions, hostBits = 16, 12
	fmt.Printf("generating %d clicks (s=%.1f), loading onto %d storage nodes...\n",
		*records, *skew, len(names))
	gen := workload.ClickLogGen{S: *skew, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(*records)
	want := workload.DistinctPerRegion(ips, regions)
	if err := apps.LoadClickLog(ctx, store, ips); err != nil {
		log.Fatal(err)
	}

	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: *computes,
		SlotsPerNode: *slots,
		Master:       core.MasterConfig{CloneInterval: 50 * time.Millisecond},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	start := time.Now()
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	defer cluster.Shutdown()

	got, err := apps.ClickLogCounts(ctx, store, regions)
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for r := range want {
		if got[r] != want[r] {
			fmt.Printf("region %s: got %d want %d\n", workload.RegionName(r), got[r], want[r])
			bad++
		}
	}
	fmt.Printf("clicklog on %d remote storage nodes: %d/%d regions correct in %v\n",
		len(names), regions-bad, regions, elapsed)
	fmt.Printf("master stats: %+v\n", cluster.Master().Stats())
	if bad > 0 {
		log.Fatal("verification failed")
	}
}
