package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/workload"
)

// runStream drives the continuous-ingestion subsystem against the remote
// TCP storage tier: per-window source bags, partitioned shuffle edges,
// sketch pushes, and warm-start seed maps all travel over the storage
// transport. Every window's per-region counts are verified against an
// in-process oracle.
func runStream(ctx context.Context, store *bag.Store, names []string, records, windows int, skew float64, computes, slots, parts int) {
	perWindow := records / windows
	if perWindow <= 0 {
		log.Fatalf("-records %d too small for %d windows", records, windows)
	}
	fmt.Printf("streaming %d windows x %d clicks (s=%.1f, drifting hot region) onto %d storage nodes...\n",
		windows, perWindow, skew, len(names))
	gen := workload.ClickLogGen{
		S: skew, Regions: 64, UniquePerRegion: 1 << 12,
		Seed: 33, DriftEvery: 2 * perWindow,
	}
	truth := apps.ClickStreamTruth(gen, windows, perWindow)

	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: computes,
		SlotsPerNode: slots,
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	defer cluster.Shutdown()

	app := apps.ClickStreamApp(parts, true, 0)
	bspec := app.BagSpecFor(apps.ClickStreamShuf)
	bspec.SketchEvery, bspec.PollEvery = 512, 256

	origin := int64(1_000_000_000_000)
	src := &apps.ClickStreamSource{
		Gen: gen, Origin: origin,
		PerWindow: perWindow, Total: windows * perWindow, Batch: 2048,
	}
	start := time.Now()
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "clicks",
		App:     app,
		Sources: map[string]hurricane.StreamSource{apps.ClickStreamIn: src},
		Window:  time.Second,
		Origin:  origin,
		Master: &core.MasterConfig{
			CloneInterval:   50 * time.Millisecond,
			SplitInterval:   20 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 4096,
			SplitFan:        4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	bad, seeded := 0, 0
	for w := 0; w < windows; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			log.Fatalf("window %d: %v", w, err)
		}
		if res.Err != nil {
			log.Fatalf("window %d failed: %v", w, res.Err)
		}
		got, err := apps.CollectClickStream(ctx, store, res.Bag(apps.ClickStreamOut))
		if err != nil {
			log.Fatal(err)
		}
		wbad := 0
		for region, n := range truth[w] {
			if got[region].Count != n {
				wbad++
			}
		}
		if wbad > 0 || len(got) != len(truth[w]) {
			fmt.Printf("window %d: %d/%d regions WRONG\n", w, wbad, len(truth[w]))
			bad++
		}
		if res.Seeded {
			seeded++
		}
		fmt.Printf("window %2d: %6d records  %6.1fms  attempts %d  seeded %-5v  splits %d  isolations %d\n",
			res.Index, res.Records,
			float64(res.DoneAt.Sub(res.SubmittedAt).Microseconds())/1000,
			res.Attempts, res.Seeded, res.Splits, res.Isolations)
	}
	if err := h.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	st := h.Stats()
	fmt.Printf("stream on %d remote storage nodes: %d windows in %v (%d warm-started), stats %+v\n",
		len(names), windows, time.Since(start).Round(time.Millisecond), seeded, st)
	if bad > 0 {
		log.Fatal("verification failed")
	}
	fmt.Println("all windows verified against ground truth")
}
