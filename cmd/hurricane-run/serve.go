package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Job submissions travel over the same storage transport as everything
// else in Hurricane: a submission is a record inserted into the submit
// control bag, a completion is a record in the done control bag. Any
// client that can reach the storage tier can therefore submit jobs —
// no extra RPC protocol, and a restarted server skips submissions whose
// names already have a completion record in the done bag (both bags
// replay from the start on a fresh scanner).
const (
	submitBag = "sched!submit"
	doneBag   = "sched!done"
)

// jobRequest is a job submission record. Code travels by name, exactly
// like task blueprints: the server instantiates a registered application
// graph (sqsum or groupby) with the requested parameters and generates
// the input data from the given seed workload.
type jobRequest struct {
	Name    string  `json:"name"`             // unique job name (also the bag namespace)
	ID      string  `json:"id"`               // unique per submission; echoed in the result
	Job     string  `json:"job"`              // sqsum | groupby | query
	Records int     `json:"records"`          // input size
	Skew    float64 `json:"skew,omitempty"`   // groupby/query: zipf s
	Parts   int     `json:"parts,omitempty"`  // groupby/query: base shuffle partitions
	Weight  int     `json:"weight,omitempty"` // fair-share weight
	// Trace is the causal trace ID the client minted at submission. The
	// server threads it through JobConfig into the job's trace events and
	// profile, so the client can fetch the remote timeline and EXPLAIN
	// ANALYZE by this ID after completion.
	Trace string `json:"trace,omitempty"`
}

// jobResult is the completion record the server writes to the done bag.
// ID ties it to one submission: clients match on it, so a rejected
// duplicate submission gets its own failure record instead of adopting
// the result of the job that owns the name.
type jobResult struct {
	Name      string `json:"name"`
	ID        string `json:"id,omitempty"`
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	ElapsedMS int64  `json:"elapsedMs"`
	Stats     string `json:"stats,omitempty"`
	// Trace echoes the submission's causal trace ID; Debug advertises
	// the server's bound debug listener ("" when -debug off), which is
	// where the client fetches the job's profile, EXPLAIN ANALYZE, and
	// event timeline by that ID.
	Trace string `json:"trace,omitempty"`
	Debug string `json:"debug,omitempty"`
}

// newSubmissionID returns a random identifier for one submission record.
func newSubmissionID() (string, error) {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		return "", err
	}
	return hex.EncodeToString(b), nil
}

// serve runs the multi-job scheduler against the remote storage tier and
// executes every job submitted through the submit bag, concurrently.
// client, when non-nil, is the TCP storage client carrying the cluster's
// wire traffic; it is bound to the observer so /metrics reports the
// client side of every storage op. debugAddr is the listen address for
// the observability surface (cluster.DebugHandler); "" picks the
// default, "off" disables it.
func serve(ctx context.Context, store *bag.Store, client *transport.TCPClient, computes, slots int, debugAddr string) error {
	o := obs.New(0)
	if client != nil {
		client.Bind(transport.NewMeter(o, "client", "", 0))
	}
	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: computes,
		SlotsPerNode: slots,
		Master: core.MasterConfig{
			CloneInterval: 50 * time.Millisecond,
			SplitInterval: 20 * time.Millisecond,
		},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
		Sched: sched.Config{Interval: 10 * time.Millisecond},
		Obs:   o,
	})
	defer cluster.Shutdown()

	boundDebug := ""
	if debugAddr != "off" {
		if debugAddr == "" {
			debugAddr = "127.0.0.1:6066"
		}
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("serve: debug listener on %s: %w (use -debug off to disable)", debugAddr, err)
		}
		dbg := &http.Server{Handler: cluster.DebugHandler()}
		go func() {
			if err := dbg.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Printf("serve: debug server: %v\n", err)
			}
		}()
		defer func() {
			shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = dbg.Shutdown(shctx)
		}()
		boundDebug = ln.Addr().String()
		fmt.Printf("hurricane-run: debug surface on http://%s (/metrics /debug/trace /debug/skew /debug/timeseries /debug/alerts /debug/dash /debug/profile/<job> /debug/explain/<job> /debug/pprof/)\n",
			ln.Addr())
	}

	fmt.Printf("hurricane-run: serving job submissions via bag %q (%d compute nodes x %d slots)\n",
		submitBag, computes, slots)
	// Names already completed by a previous server incarnation, or taken
	// by an in-flight job of this one; their submissions are not re-run.
	// answered holds submission IDs that already have a result record
	// (success or rejection), so a restart replays neither.
	taken := map[string]bool{}
	answered := map[string]bool{}
	if _, err := store.Scanner(doneBag).Drain(ctx, func(c chunk.Chunk) error {
		var r jobResult
		if json.Unmarshal(c, &r) == nil {
			taken[r.Name] = true
			if r.ID != "" {
				answered[r.ID] = true
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// reject publishes a failure record for one submission without
	// running it, so the waiting client fails fast instead of tailing
	// the done bag forever (or adopting another job's result by name).
	reject := func(req jobRequest, msg string) {
		fmt.Printf("serve: rejecting submission %q: %s\n", req.Name, msg)
		if req.ID == "" {
			return // pre-ID client; nothing to address the record to
		}
		answered[req.ID] = true
		data, _ := json.Marshal(&jobResult{Name: req.Name, ID: req.ID, Err: msg})
		if err := store.Bag(doneBag).Insert(ctx, data); err != nil {
			fmt.Printf("serve: publishing rejection for %q: %v\n", req.Name, err)
		}
	}
	sc := store.Scanner(submitBag)
	for {
		if _, err := sc.Drain(ctx, func(c chunk.Chunk) error {
			var req jobRequest
			if err := json.Unmarshal(c, &req); err != nil {
				fmt.Printf("serve: ignoring malformed submission: %v\n", err)
				return nil
			}
			if req.ID != "" && answered[req.ID] {
				return nil // replayed submission; its result record stands
			}
			if req.Name == "" {
				fmt.Println("serve: ignoring submission without a name")
				return nil
			}
			// The job's bags live under the "<name>/" namespace and
			// acceptance sweeps that prefix; a slash in the name could
			// nest it inside (or around) a live job's namespace.
			if strings.Contains(req.Name, "/") {
				reject(req, fmt.Sprintf("job name %q must not contain '/'", req.Name))
				return nil
			}
			if taken[req.Name] {
				if req.ID == "" {
					fmt.Printf("serve: skipping job %q (already completed or in flight)\n", req.Name)
					return nil
				}
				reject(req, fmt.Sprintf("job name %q is already taken on this storage tier; pick a fresh -name", req.Name))
				return nil
			}
			taken[req.Name] = true
			fmt.Printf("serve: accepted job %q (%s, %d records)\n", req.Name, req.Job, req.Records)
			go runServedJob(ctx, cluster, store, req, boundDebug)
			return nil
		}); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// runServedJob executes one submitted job end-to-end: submit (which
// reserves the namespace), generate and load the input, wait, verify,
// and publish the result record.
func runServedJob(ctx context.Context, cluster *core.Cluster, store *bag.Store, req jobRequest, debugAddr string) {
	start := time.Now()
	res := jobResult{Name: req.Name, ID: req.ID, Trace: req.Trace, Debug: debugAddr}
	err := func() error {
		// A submission replayed after a server crash may have left a
		// partial namespace behind (sealed inputs, half-written
		// intermediates); sweep it so the re-run starts clean. For a
		// fresh submission this is a cheap no-op.
		if err := store.DeletePrefix(ctx, req.Name+"/"); err != nil {
			return err
		}
		switch req.Job {
		case "sqsum":
			return runServedSqsum(ctx, cluster, store, req, &res)
		case "groupby":
			return runServedGroupBy(ctx, cluster, store, req, &res)
		case "query":
			return runServedQuery(ctx, cluster, store, req, &res)
		default:
			return fmt.Errorf("unknown job kind %q (want sqsum, groupby, or query)", req.Job)
		}
	}()
	res.ElapsedMS = time.Since(start).Milliseconds()
	if err != nil {
		res.Err = err.Error()
	} else {
		res.OK = true
	}
	data, _ := json.Marshal(&res)
	if err := store.Bag(doneBag).Insert(ctx, data); err != nil {
		fmt.Printf("serve: publishing result for %q: %v\n", req.Name, err)
	}
	fmt.Printf("serve: job %q finished ok=%v in %dms\n", req.Name, res.OK, res.ElapsedMS)
}

func runServedSqsum(ctx context.Context, cluster *core.Cluster, store *bag.Store, req jobRequest, res *jobResult) error {
	n := req.Records
	if n <= 0 {
		n = 100000
	}
	h, err := cluster.SubmitJob(ctx, apps.SquareSumApp(), core.JobConfig{Name: req.Name, Weight: req.Weight, TraceID: req.Trace})
	if err != nil {
		return err
	}
	nums := make([]int64, n)
	var want int64
	for i := range nums {
		nums[i] = int64(i)
		want += int64(i) * int64(i)
	}
	if err := hurricane.Load(ctx, store, h.Bag(apps.SquareSumIn), hurricane.Int64Of, nums); err != nil {
		return err
	}
	if err := hurricane.Seal(ctx, store, h.Bag(apps.SquareSumIn)); err != nil {
		return err
	}
	if err := h.Wait(ctx); err != nil {
		return err
	}
	totals, err := hurricane.Collect(ctx, store, h.Bag(apps.SquareSumOut), hurricane.Int64Of)
	if err != nil {
		return err
	}
	var got int64
	for _, v := range totals {
		got += v
	}
	if got != want {
		return fmt.Errorf("verification failed: sum %d, want %d", got, want)
	}
	res.Stats = fmt.Sprintf("%+v", h.Stats())
	return nil
}

func runServedGroupBy(ctx context.Context, cluster *core.Cluster, store *bag.Store, req jobRequest, res *jobResult) error {
	n, parts := req.Records, req.Parts
	if n <= 0 {
		n = 100000
	}
	if parts <= 0 {
		parts = 4
	}
	tuples := workload.ZipfTuples(n, 64, req.Skew, 9)
	want := workload.KeyCounts(tuples)
	app := apps.GroupByApp(parts, true, false, 0)
	spec := app.BagSpecFor(apps.GroupByShuf)
	spec.SketchEvery, spec.PollEvery = 512, 256
	h, err := cluster.SubmitJob(ctx, app, core.JobConfig{Name: req.Name, Weight: req.Weight, TraceID: req.Trace})
	if err != nil {
		return err
	}
	if err := apps.LoadGroupByInto(ctx, store, h.Bag(apps.GroupByIn), tuples); err != nil {
		return err
	}
	if err := h.Wait(ctx); err != nil {
		return err
	}
	got, err := apps.CollectGroupByFrom(ctx, store, h.Bag(apps.GroupByOut))
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("verification failed: %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k].Count != c {
			return fmt.Errorf("verification failed: key %d count %d, want %d", k, got[k].Count, c)
		}
	}
	res.Stats = fmt.Sprintf("%+v", h.Stats())
	return nil
}

// runServedQuery executes the planner-compiled groupby (apps.GroupByPlan)
// as a served job. Unlike the hand-wired kinds it carries a physical
// plan, so it registers the plan's EXPLAIN ANALYZE renderer on the job
// handle — which is what /debug/explain serves, and what a remote
// submitter fetches by trace ID. Results are verified against the same
// oracle collector as the hand-wired groupby (the sink bag is
// byte-compatible by construction).
func runServedQuery(ctx context.Context, cluster *core.Cluster, store *bag.Store, req jobRequest, res *jobResult) error {
	n, parts := req.Records, req.Parts
	if n <= 0 {
		n = 100000
	}
	if parts <= 0 {
		parts = 4
	}
	tuples := workload.ZipfTuples(n, 64, req.Skew, 9)
	want := workload.KeyCounts(tuples)
	compiled, err := apps.GroupByPlan().Compile(q.Options{
		Parts: parts, SketchEvery: 512, PollEvery: 256,
	})
	if err != nil {
		return err
	}
	h, err := compiled.Submit(ctx, cluster, core.JobConfig{Name: req.Name, Weight: req.Weight, TraceID: req.Trace})
	if err != nil {
		return err
	}
	h.SetExplain(compiled.ExplainAnalyze)
	if err := apps.LoadGroupByInto(ctx, store, h.Bag(apps.GroupByIn), tuples); err != nil {
		return err
	}
	if err := h.Wait(ctx); err != nil {
		return err
	}
	got, err := apps.CollectGroupByFrom(ctx, store, h.Bag(compiled.SinkBag(apps.GroupByOut)))
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("verification failed: %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k].Count != c {
			return fmt.Errorf("verification failed: key %d count %d, want %d", k, got[k].Count, c)
		}
	}
	res.Stats = fmt.Sprintf("%+v", h.Stats())
	return nil
}

// submitAndWait is the client side of -serve: stamp the request with a
// unique submission ID, insert it, then tail the done bag until the
// server answers this submission (matched by ID, so a duplicate name
// yields an explicit rejection record rather than silently adopting the
// earlier job's result). Job names are single-use per storage tier; a
// name that already has a completion record is rejected locally before
// the insert.
func submitAndWait(ctx context.Context, store *bag.Store, req jobRequest) error {
	if strings.Contains(req.Name, "/") {
		return fmt.Errorf("job name %q must not contain '/'", req.Name)
	}
	duplicate := false
	if _, err := store.Scanner(doneBag).Drain(ctx, func(c chunk.Chunk) error {
		var r jobResult
		if json.Unmarshal(c, &r) == nil && r.Name == req.Name {
			duplicate = true
		}
		return nil
	}); err != nil {
		return err
	}
	if duplicate {
		return fmt.Errorf("job name %q was already used on this storage tier; pick a fresh -name", req.Name)
	}
	id, err := newSubmissionID()
	if err != nil {
		return err
	}
	req.ID = id
	// The causal trace ID: minted here, carried in the submission record
	// over the storage wire, threaded by the server through JobConfig into
	// every trace event and the execution profile of the remote job. After
	// completion it keys the fetch of the remote timeline and EXPLAIN
	// ANALYZE from the server's debug endpoint.
	trace, err := newSubmissionID()
	if err != nil {
		return err
	}
	req.Trace = "t-" + trace
	data, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	if err := store.Bag(submitBag).Insert(ctx, data); err != nil {
		return err
	}
	fmt.Printf("submitted job %q (%s) trace=%s; waiting for completion...\n", req.Name, req.Job, req.Trace)
	sc := store.Scanner(doneBag)
	for {
		var found *jobResult
		if _, err := sc.Drain(ctx, func(c chunk.Chunk) error {
			var r jobResult
			if json.Unmarshal(c, &r) == nil && r.ID == req.ID {
				found = &r
			}
			return nil
		}); err != nil {
			return err
		}
		if found != nil {
			fmt.Printf("job %q: ok=%v elapsed=%dms stats=%s err=%s\n",
				found.Name, found.OK, found.ElapsedMS, found.Stats, found.Err)
			if !found.OK {
				return fmt.Errorf("job %q failed: %s", found.Name, found.Err)
			}
			fetchRemoteDebug(ctx, found.Debug, req.Trace)
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// fetchRemoteDebug pulls the completed job's observability across the
// process boundary: the EXPLAIN ANALYZE text, the execution profile
// summary, and the decision-event timeline, all resolved by the causal
// trace ID on the serving process's debug endpoint. Best-effort — the
// job already succeeded; an unreachable debug surface (server on
// another host, or -debug off) costs the report, not the run.
func fetchRemoteDebug(ctx context.Context, debugAddr, trace string) {
	if debugAddr == "" || trace == "" {
		return
	}
	get := func(path string) ([]byte, bool) {
		url := "http://" + debugAddr + path
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		hreq, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, false
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			fmt.Printf("remote debug %s unreachable: %v\n", url, err)
			return nil, false
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Printf("remote debug %s: status %s\n", url, resp.Status)
			return nil, false
		}
		return body, true
	}
	if body, ok := get("/debug/explain/?trace=" + trace); ok {
		fmt.Printf("\nremote EXPLAIN ANALYZE (trace=%s via %s):\n%s", trace, debugAddr, body)
	}
	if body, ok := get("/debug/profile/?trace=" + trace); ok {
		var p obs.Profile
		if json.Unmarshal(body, &p) == nil {
			fmt.Printf("\nremote profile:\n%s", p.String())
		}
	}
	if body, ok := get("/debug/trace?trace=" + trace); ok {
		var tl struct {
			Events []obs.Event `json:"events"`
		}
		if json.Unmarshal(body, &tl) == nil {
			fmt.Printf("remote timeline: %d events stamped trace=%s\n", len(tl.Events), trace)
			for _, e := range tl.Events {
				fmt.Printf("  %8dus %-18s %-24s %s\n", e.TMicros, e.Type, e.Subject, e.Detail)
			}
		}
	}
}
