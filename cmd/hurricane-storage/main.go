// Command hurricane-storage runs a standalone Hurricane storage node
// serving the bag protocol over TCP.
//
// Usage:
//
//	hurricane-storage -addr 0.0.0.0:7070 [-dir /data/bags] [-name storage-0]
//
// With -dir, bags persist as files and survive restarts (the chunk index
// is rebuilt from the files on startup, as in the paper's ext4-backed
// implementation); otherwise bags live in memory.
//
// The node exposes its wire-path telemetry over HTTP (default
// 127.0.0.1:7071; move it with -debug addr, disable with -debug off):
// /metrics serves the hurricane_storage_op_* per-op latency/byte/error
// series from both the TCP server and the node itself in Prometheus
// text format, and /debug/storage serves a JSON summary of every bag's
// chunk/byte/read-pointer state:
//
//	curl -s localhost:7071/metrics | grep hurricane_storage_op_total
//	curl -s localhost:7071/debug/storage
//
// The node also samples its own registry into a bounded time-series
// recorder (250ms cadence) with the built-in watchdog rules evaluated on
// every sample, serving /debug/timeseries, /debug/alerts, and the
// /debug/dash live dashboard from the same listener.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	name := flag.String("name", "storage-0", "storage node name")
	dir := flag.String("dir", "", "directory for disk-backed bags (empty = in-memory)")
	debugAddr := flag.String("debug", "127.0.0.1:7071", "address for the /metrics and /debug/storage HTTP surface (\"off\" disables)")
	flag.Parse()

	var opts []storage.Option
	if *dir != "" {
		opts = append(opts, storage.WithDir(*dir))
	}
	node := storage.NewNode(*name, opts...)
	o := obs.New(0)
	node.Bind(o, 0)
	// Continuous telemetry: sample the node's registry into a bounded
	// time-series recorder and run the watchdogs over every sample, so
	// the debug surface can serve history and alerts, not just the
	// current snapshot.
	rec := obs.NewRecorder(0)
	rec.AddSource(obs.RegistrySource(o.Registry()))
	watch := obs.NewWatch(o, nil)
	node.BindTelemetry(rec, watch)
	go func() {
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			watch.Eval(rec.Sample())
		}
	}()
	srv := transport.NewTCPServer(node)
	srv.Bind(transport.NewMeter(o, "server", *name, 0))
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("hurricane-storage: %v", err)
	}
	fmt.Printf("hurricane-storage %s listening on %s (backend: %s)\n",
		*name, bound, backendName(*dir))

	if *debugAddr != "off" {
		// The debug surface is auxiliary: a bind failure (several nodes on
		// one host all trying the default port) must not take down the
		// data plane. Nodes that need the surface pass distinct -debug
		// addresses (or :0).
		if ln, err := net.Listen("tcp", *debugAddr); err != nil {
			log.Printf("hurricane-storage: debug listener disabled: %v", err)
		} else {
			fmt.Printf("debug surface on http://%s (/metrics, /debug/storage, /debug/timeseries, /debug/alerts, /debug/dash)\n", ln.Addr())
			go func() {
				if err := http.Serve(ln, node.DebugHandler()); err != nil {
					log.Printf("hurricane-storage: debug server: %v", err)
				}
			}()
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

func backendName(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "disk:" + dir
}
