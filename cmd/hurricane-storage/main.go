// Command hurricane-storage runs a standalone Hurricane storage node
// serving the bag protocol over TCP.
//
// Usage:
//
//	hurricane-storage -addr 0.0.0.0:7070 [-dir /data/bags] [-name storage-0]
//
// With -dir, bags persist as files and survive restarts (the chunk index
// is rebuilt from the files on startup, as in the paper's ext4-backed
// implementation); otherwise bags live in memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	name := flag.String("name", "storage-0", "storage node name")
	dir := flag.String("dir", "", "directory for disk-backed bags (empty = in-memory)")
	flag.Parse()

	var opts []storage.Option
	if *dir != "" {
		opts = append(opts, storage.WithDir(*dir))
	}
	node := storage.NewNode(*name, opts...)
	srv := transport.NewTCPServer(node)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("hurricane-storage: %v", err)
	}
	fmt.Printf("hurricane-storage %s listening on %s (backend: %s)\n",
		*name, bound, backendName(*dir))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

func backendName(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "disk:" + dir
}
