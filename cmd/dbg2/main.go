package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	// External storage processes.
	addrs := map[string]string{
		"storage-0": "127.0.0.1:7371",
		"storage-1": "127.0.0.1:7372",
	}
	names := []string{"storage-0", "storage-1"}
	_ = storage.NewNode
	client := transport.NewTCPClient(addrs)
	store, err := bag.NewStore(bag.Config{Nodes: names, Client: client, ChunkSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const regions, hostBits = 16, 12
	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(50000)
	want := workload.DistinctPerRegion(ips, regions)
	if err := apps.LoadClickLog(ctx, store, ips); err != nil {
		log.Fatal(err)
	}
	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: 4, SlotsPerNode: 2,
		Master: core.MasterConfig{CloneInterval: 50 * time.Millisecond},
		Node:   core.NodeConfig{MonitorInterval: 25 * time.Millisecond, OverloadThreshold: 0.5},
	})
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		log.Fatal(err)
	}
	got, err := apps.ClickLogCounts(ctx, store, regions)
	if err != nil {
		log.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			// Inspect the intermediate bags for this region.
			reg, _ := store.Sample(ctx, apps.RegionBag(r))
			dis, _ := store.Sample(ctx, apps.DistinctBag(r))
			cnt, _ := store.Sample(ctx, apps.CountBag(r))
			fmt.Printf("region %d: got %d want %d | region bag %+v | distinct %+v | count %+v\n",
				r, got[r], want[r], reg, dis, cnt)
		}
	}
	fmt.Printf("stats: %+v\n", cluster.Master().Stats())
}
