// Command hurricane-bench regenerates the paper's evaluation tables and
// figures from the cluster simulator and baseline models, and can drive
// the real embedded engine for a verified end-to-end run.
//
// Usage:
//
//	hurricane-bench [experiment ...]
//
// With no arguments it runs every simulator experiment. Experiments:
// table1 table2 table3 table4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// storage-scaling utilization.
//
// "engine-clicklog" additionally runs the skewed ClickLog application on
// the real embedded engine (not the simulator), verifies every region
// count against ground truth, and prints the master's mitigation stats —
// the quick live-cluster sanity check that used to live in a separate
// debug harness.
//
// "sched" runs the multi-job scheduler co-run benchmark on the real
// engine — a skewed and a uniform groupby sharing one cluster, with and
// without fair-share slot leasing — and writes BENCH_sched.json.
//
// "stream" runs the continuous-ingestion benchmark on the real engine — a
// drifting Zipf click-log source cut into event-time windows, with
// warm-started versus cold-started partition maps — and writes
// BENCH_stream.json.
//
// "plan" runs the query-planner benchmark on the real engine — one
// logical join compiled naively (static hash repartition) versus with
// statistics-driven physical planning (skewed join with pre-isolated
// heavy-hitter keys) on Zipf(1.3) probe keys — and writes
// BENCH_plan.json.
//
// "vector" runs the data-plane benchmark on the real engine — the
// Zipf(1.3) groupby with row-at-a-time versus vectorized batch versus
// batch + heavy-key dense slots — and writes BENCH_vector.json.
// "vector-check" re-runs the row and batch variants once and fails when
// the batch/row speedup regresses >15% against the committed baseline.
//
// "wire" runs the wire-path benchmark against REAL TCP storage nodes on
// loopback — the Zipf(1.3) groupby with every bag op crossing the wire —
// reporting per-op client latency p50/p99, op throughput, wire bytes,
// and an interleaved telemetry-on/off A/B pricing the storage-tier
// meters — and writes BENCH_wire_baseline.json, the baseline for the
// ROADMAP wire-path optimisation target.
//
// "trend" aggregates the headline ratio of every committed BENCH_*.json
// into BENCH_TREND.json plus a markdown table (BENCH_TREND.md) — the
// machine-checkable perf history. "trend-check" recomputes the headlines
// from the documents in the tree and fails when one regressed past its
// committed trend value minus tolerance; CI runs it on every push.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

var all = []string{
	"table1", "table2", "table3", "table4",
	"fig5", "fig6", "fig78", "fig9", "fig10", "fig11", "fig12",
	"storage-scaling", "utilization",
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = all
	}
	for _, a := range args {
		if err := run(a); err != nil {
			fmt.Fprintf(os.Stderr, "hurricane-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(name string) error {
	switch name {
	case "table1":
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
	case "table2":
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
	case "table3":
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
	case "table4":
		fmt.Print(experiments.FormatTable4(experiments.Table4()))
	case "fig5":
		fmt.Print(experiments.FormatFigure5(experiments.Figure5()))
	case "fig6":
		fmt.Print(experiments.FormatFigure6(experiments.Figure6()))
	case "fig7", "fig8", "fig78":
		fmt.Print(experiments.FormatFigures78(experiments.Figures78()))
	case "fig9":
		fmt.Print(experiments.FormatTimeline(
			"Figure 9: ClickLog throughput over time (320GB, s=1, 32 machines)",
			experiments.Figure9()))
	case "fig10":
		fmt.Print(experiments.FormatFigure10(experiments.Figure10()))
	case "fig11":
		fmt.Print(experiments.FormatTimeline(
			"Figure 11: throughput with compute-node and master crashes (320GB, 32 machines)",
			experiments.Figure11()))
	case "fig12":
		fmt.Print(experiments.FormatFigure12(experiments.Figure12()))
	case "storage-scaling":
		fmt.Print(experiments.FormatScaling(experiments.StorageScaling()))
	case "utilization":
		fmt.Print(experiments.FormatUtilization(experiments.BatchUtilization(32), 32))
	default:
		if bench := engineBenches[name]; bench != nil {
			return bench()
		}
		return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(validExperiments(), " "))
	}
	return nil
}

// engineBenches dispatches the real-engine benchmarks (everything that is
// not a simulator experiment). One map feeds both dispatch and the
// valid-name listing, so the two cannot drift.
var engineBenches = map[string]func() error{
	"engine-clicklog": engineClickLog,
	"sched":           schedBench,
	"stream":          streamBench,
	"plan":            planBench,
	"vector":          vectorBench,
	"vector-check":    vectorCheck,
	"wire":            wireBench,
	"trend":           trendCmd,
	"trend-check":     trendCheckCmd,
}

// validExperiments lists every runnable experiment name for error
// messages and usage output (fig7/fig8 are accepted aliases of fig78).
func validExperiments() []string {
	out := append(append([]string{}, all...), "fig7", "fig8")
	for name := range engineBenches {
		out = append(out, name)
	}
	sort.Strings(out[len(all)+2:])
	return out
}

// engineClickLog runs the skewed ClickLog job on the real embedded engine
// and verifies the distinct-per-region counts against ground truth.
func engineClickLog() error {
	const regions, hostBits, records = 16, 12, 50000
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cluster, err := core.NewCluster(core.ClusterConfig{
		StorageNodes: 4, ComputeNodes: 4, SlotsPerNode: 2,
		ChunkSize: 32 << 10,
		Master:    core.MasterConfig{CloneInterval: 50 * time.Millisecond},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(records)
	want := workload.DistinctPerRegion(ips, regions)
	if err := apps.LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		return err
	}
	start := time.Now()
	if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
		return err
	}
	elapsed := time.Since(start)
	got, err := apps.ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		return err
	}
	bad := 0
	for r := range want {
		if got[r] != want[r] {
			bad++
			fmt.Printf("engine-clicklog: region %d: got %d want %d\n", r, got[r], want[r])
		}
	}
	fmt.Printf("engine-clicklog: %d records, %d regions, %v, stats %+v\n",
		records, regions, elapsed.Round(time.Millisecond), cluster.Master().Stats())
	if bad > 0 {
		return fmt.Errorf("engine-clicklog: %d/%d regions wrong", bad, regions)
	}
	fmt.Println("engine-clicklog: all region counts verified")
	return nil
}
