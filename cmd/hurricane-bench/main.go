// Command hurricane-bench regenerates the paper's evaluation tables and
// figures from the cluster simulator and baseline models.
//
// Usage:
//
//	hurricane-bench [experiment ...]
//
// With no arguments it runs everything. Experiments: table1 table2 table3
// table4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 storage-scaling
// utilization.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

var all = []string{
	"table1", "table2", "table3", "table4",
	"fig5", "fig6", "fig78", "fig9", "fig10", "fig11", "fig12",
	"storage-scaling", "utilization",
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = all
	}
	for _, a := range args {
		if err := run(a); err != nil {
			fmt.Fprintf(os.Stderr, "hurricane-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(name string) error {
	switch name {
	case "table1":
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
	case "table2":
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
	case "table3":
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
	case "table4":
		fmt.Print(experiments.FormatTable4(experiments.Table4()))
	case "fig5":
		fmt.Print(experiments.FormatFigure5(experiments.Figure5()))
	case "fig6":
		fmt.Print(experiments.FormatFigure6(experiments.Figure6()))
	case "fig7", "fig8", "fig78":
		fmt.Print(experiments.FormatFigures78(experiments.Figures78()))
	case "fig9":
		fmt.Print(experiments.FormatTimeline(
			"Figure 9: ClickLog throughput over time (320GB, s=1, 32 machines)",
			experiments.Figure9()))
	case "fig10":
		fmt.Print(experiments.FormatFigure10(experiments.Figure10()))
	case "fig11":
		fmt.Print(experiments.FormatTimeline(
			"Figure 11: throughput with compute-node and master crashes (320GB, 32 machines)",
			experiments.Figure11()))
	case "fig12":
		fmt.Print(experiments.FormatFigure12(experiments.Figure12()))
	case "storage-scaling":
		fmt.Print(experiments.FormatScaling(experiments.StorageScaling()))
	case "utilization":
		fmt.Print(experiments.FormatUtilization(experiments.BatchUtilization(32), 32))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
