package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/apps"
	"repro/internal/workload"
)

// planBench measures what statistics-driven physical planning buys a
// skewed join. One logical query — R ⋈ S on the tuple key, with a
// simulated per-match consumer cost — runs twice on identical data:
//
//   - naive: the static physical plan (Options.Static) — plain hash
//     repartition of the probe side, one reducer per partition, no
//     Spread, no seeds, and splitting/isolation disabled (producers may
//     still clone, in both variants). This is the classic
//     static-partitioning join.
//   - planner: auto compilation with warm statistics (the probe
//     relation's key sketch, as a previous run would have recorded).
//     The planner picks the SharesSkew-style skewed join: heavy probe
//     keys are pre-isolated onto spread fragment consumers before the
//     first record is routed, the long tail takes the partitioned path,
//     and the runtime control plane keeps refining from the live
//     count-min sketch.
//
// The probe relation is Zipf(s=1.3) — its top key alone carries ≈ 26%
// of the records, which under static hash partitioning serializes on a
// single reducer. Reported: median of 3 end-to-end runs per variant;
// every run verifies the match count and per-key match counts against
// ground truth, so the comparison never trades correctness for speed.
func planBench() error {
	const (
		keys       = 16384  // join-key domain; R holds each key exactly once
		probeN     = 200000 // probe records, Zipf(1.3)
		parts      = 4
		fan        = 4
		recordCost = 5000 // ns per match on the join consumer side
		iters      = 3
	)

	// R: a dimension relation with every key exactly once, so each probe
	// record produces exactly one match and consumer cost is exactly
	// per-probe-record. Warm statistics: the probe key distribution as a
	// finished run's merged edge sketch would have recorded it.
	r := workload.SeqRelation(keys, 41)
	s := workload.ZipfTuples(probeN, keys, 1.3, 43)
	wantMatches := workload.JoinCount(r, s)
	wantPerKey := workload.KeyCounts(s)
	warm := apps.JoinWarmStats(r, s)

	type match = hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]

	// One logical query; the per-match cost rides a per-worker map fused
	// into the join consumer stage, so wall clock tracks how evenly
	// matches spread across consumer slots.
	buildPlan := func() *q.Plan {
		p := q.New("planbench")
		build := q.Scan(p, apps.JoinBagR, apps.TupleCodec)
		probe := q.Scan(p, apps.JoinBagS, apps.TupleCodec)
		joined := q.Join(build, probe,
			func(t benchTuple) uint64 { return t.First },
			func(t benchTuple) uint64 { return t.First },
			apps.MatchCodec,
			func(b, pr benchTuple, emit func(match) error) error {
				return emit(match{First: pr.First,
					Second: hurricane.Pair[uint64, uint64]{First: b.Second, Second: pr.Second}})
			},
		)
		q.MapPerWorker(joined, apps.MatchCodec, func() func(match) match {
			var owedNS int64
			return func(m match) match {
				owedNS += recordCost
				if owedNS >= 500_000 {
					time.Sleep(time.Duration(owedNS))
					owedNS = 0
				}
				return m
			}
		}).Sink("matches")
		return p
	}

	type variant struct {
		ElapsedMS  int64 `json:"elapsed_ms"`
		Splits     int   `json:"runtime_splits"`
		Isolations int   `json:"runtime_isolations"`
		Clones     int   `json:"clones"`
		SeededIso  int   `json:"seeded_isolations"`
		benchObs
	}

	runOnce := func(naive bool) (variant, error) {
		var out variant
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()

		// Producers clone freely in BOTH variants (the convention of
		// BenchmarkEngineSkewedShuffle): the comparison isolates the
		// consumer-side join strategy, not generic cloning. The naive
		// variant additionally disables splitting/isolation — its static
		// hash layout is pinned, like a planner with no skew awareness.
		mcfg := hurricane.MasterConfig{
			CloneInterval:    2 * time.Millisecond,
			DisableHeuristic: true,
			DisableSplitting: naive,
			SplitInterval:    2 * time.Millisecond,
			SplitImbalance:   1.5,
			SplitMinRecords:  8192,
			SplitFan:         fan,
		}
		cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
			StorageNodes: 4,
			ComputeNodes: 4,
			SlotsPerNode: 2,
			ChunkSize:    8 << 10,
			Master:       mcfg,
			Node: hurricane.NodeConfig{
				PollInterval:      time.Millisecond,
				MonitorInterval:   2 * time.Millisecond,
				HeartbeatInterval: 2 * time.Millisecond,
				OverloadThreshold: 0.1,
			},
		})
		if err != nil {
			return out, err
		}
		defer cluster.Shutdown()

		opts := q.Options{
			Parts: parts, Fan: fan,
			// Isolate keys carrying ≥ 30% of a mean partition's load: on
			// this Zipf(1.3) domain that pre-isolates the top two keys
			// (~26% and ~10% of the stream) instead of only the first.
			IsolateFraction: 0.3,
			SketchEvery:     512, PollEvery: 256,
		}
		if naive {
			opts.Static = true
		} else {
			opts.Stats = warm
		}
		c, err := buildPlan().Compile(opts)
		if err != nil {
			return out, err
		}
		wantStrategy := q.JoinSkewed
		if naive {
			wantStrategy = q.JoinRepartition
		}
		if got := c.Joins[0].Strategy; got != wantStrategy {
			return out, fmt.Errorf("planner chose %v, want %v:\n%s", got, wantStrategy, c.Explain())
		}
		for _, seed := range c.Seeds {
			out.SeededIso += len(seed.Isolated)
		}

		store := cluster.Store()
		if err := apps.LoadRelations(ctx, store, r, s); err != nil {
			return out, err
		}
		start := time.Now()
		if err := c.Run(ctx, cluster); err != nil {
			return out, err
		}
		out.ElapsedMS = time.Since(start).Milliseconds()

		got, err := hurricane.Collect(ctx, store, c.SinkBag("matches"), apps.MatchCodec)
		if err != nil {
			return out, err
		}
		if int64(len(got)) != wantMatches {
			return out, fmt.Errorf("produced %d matches, want %d", len(got), wantMatches)
		}
		perKey := make(map[uint64]int64)
		for _, m := range got {
			perKey[m.First]++
		}
		for k, n := range wantPerKey {
			if perKey[k] != n {
				return out, fmt.Errorf("key %d: %d matches, want %d", k, perKey[k], n)
			}
		}
		st := cluster.Master().Stats()
		out.Splits, out.Isolations, out.Clones = st.Splits, st.Isolations, st.Clones
		out.benchObs = captureObs(cluster, cluster.Primary(), false)
		return out, nil
	}

	median := func(naive bool) (variant, error) {
		return runTimed(iters,
			func() (variant, error) { return runOnce(naive) },
			func(v variant) float64 { return float64(v.ElapsedMS) })
	}

	fmt.Printf("plan: R(%d keys) join S(%d Zipf(1.3) records), naive repartition vs planner-chosen skewed join\n",
		keys, probeN)
	planner, err := median(false)
	if err != nil {
		return fmt.Errorf("planner run: %w", err)
	}
	fmt.Printf("  planner (skewed): %5dms  (seeded isolations %d, runtime splits %d, isolations %d, clones %d)\n",
		planner.ElapsedMS, planner.SeededIso, planner.Splits, planner.Isolations, planner.Clones)
	naive, err := median(true)
	if err != nil {
		return fmt.Errorf("naive run: %w", err)
	}
	fmt.Printf("  naive (repartition): %2dms  (static: no spread, no seeds, splitting/isolation off)\n", naive.ElapsedMS)
	speedup := float64(naive.ElapsedMS) / float64(planner.ElapsedMS)
	fmt.Printf("  planner-chosen skewed join: %.2fx faster end-to-end\n", speedup)

	doc := map[string]any{
		"benchmark": "plan",
		"description": fmt.Sprintf(
			"Statistics-driven physical join planning on one embedded cluster (4 compute nodes x 2 slots): R (dimension, %d keys, one tuple each) joins S (%d probe records, Zipf s=1.3 — the top key alone is ~26%% of the stream), with %dns of simulated consumer cost per match. The naive variant compiles the same logical query with Options.Static (plain hash repartition, one reducer per partition, splitting/isolation disabled; producers clone freely in BOTH variants, so the comparison isolates the consumer-side join strategy). The planner variant compiles with warm statistics (the probe key sketch a previous run would have recorded): it picks the SharesSkew-style skewed join, pre-isolating heavy keys onto %d spread fragment consumers each, with runtime split/isolate policies still active. Median of %d runs; every run verifies total and per-key match counts against ground truth.",
			keys, probeN, recordCost, fan, iters),
		"environment": map[string]string{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"command":                    "hurricane-bench plan",
		"results":                    map[string]any{"planner_skewed": planner, "naive_repartition": naive},
		"speedup_planner_over_naive": speedup,
		"notes":                      "Under static hash partitioning the dominant Zipf key pins ~26% of all matches (plus its partition's share of the tail) on one reducer, so the join runs at that reducer's speed. The planner's seed map isolates the heavy keys into record-level-spread fragment bags before the first record is routed — legal because join emissions are record-parallel — and the long tail keeps the ordinary partitioned path; residual imbalance is handled by the runtime SplitPartition/IsolateKey policies reading the live count-min sketch. The same plan object with the same statistics runs unmodified under Cluster.Run, SubmitJob, RunStream, and hurricane-run.",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_plan.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_plan.json")
	return nil
}

// benchTuple mirrors workload.Tuple on the wire.
type benchTuple = hurricane.Pair[uint64, uint64]
