package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// streamBench measures what cross-window skew memory buys a sustained
// streaming workload. A drifting Zipf(s=1.3) click-log source is cut into
// event-time windows, each executed as a full DAG job (geolocate → region-
// keyed partitioned shuffle → per-region aggregate with simulated
// per-record cost). The stream runs twice:
//
//   - warm (default): every window's partition map is seeded from the
//     previous window's final map and merged edge sketch, so the dominant
//     regions are pre-isolated before the first record is routed;
//   - cold (ColdStart): every window starts from the plain hash map and
//     must rediscover the same hot partitions from scratch — often too
//     late, since a window job is short.
//
// Reported per mode (median of 3 runs): median and p99 window execution
// latency (job completion minus submission) and end-to-end windows/sec.
// Every run verifies every window's per-region counts against ground
// truth, so the comparison never trades correctness for speed.
func streamBench() error {
	const (
		windows    = 16
		perWindow  = 20000
		regions    = 64
		parts      = 4
		recordCost = 4000 // ns per record in the aggregate stage
		iters      = 3
	)

	type modeResult struct {
		MedianMS     float64 `json:"median_window_ms"`
		P99MS        float64 `json:"p99_window_ms"`
		WindowsPerS  float64 `json:"windows_per_sec"`
		Seeded       int     `json:"seeded_windows"`
		Splits       int     `json:"runtime_splits"`
		Isolations   int     `json:"runtime_isolations"`
		TotalRuntime int64   `json:"total_ms"`
		benchObs
	}

	// Drifting skew: the hot region rotates by one every two windows, so
	// yesterday's map is mostly — not entirely — right for today.
	gen := workload.ClickLogGen{
		S: 1.3, Regions: regions, UniquePerRegion: 1 << 12,
		Seed: 33, DriftEvery: 2 * perWindow,
	}
	truth := apps.ClickStreamTruth(gen, windows, perWindow)

	runOnce := func(cold bool) (modeResult, error) {
		var out modeResult
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
			StorageNodes: 4,
			ComputeNodes: 4,
			SlotsPerNode: 2,
			ChunkSize:    8 << 10,
			Node: hurricane.NodeConfig{
				PollInterval:      time.Millisecond,
				HeartbeatInterval: 2 * time.Millisecond,
				MonitorInterval:   2 * time.Millisecond,
			},
			Sched: hurricane.SchedConfig{Interval: 5 * time.Millisecond},
		})
		if err != nil {
			return out, err
		}
		defer cluster.Shutdown()

		app := apps.ClickStreamApp(parts, true, recordCost)
		spec := app.BagSpecFor(apps.ClickStreamShuf)
		spec.SketchEvery, spec.PollEvery = 512, 256

		origin := int64(1_000_000_000_000)
		src := &apps.ClickStreamSource{
			Gen: gen, Origin: origin,
			PerWindow: perWindow, Total: windows * perWindow, Batch: perWindow,
		}

		h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
			Name:        "bench",
			App:         app,
			Sources:     map[string]hurricane.StreamSource{apps.ClickStreamIn: src},
			Window:      time.Second,
			Origin:      origin,
			MaxInFlight: 1, // sequential windows: clean latency attribution
			ColdStart:   cold,
			Master: &hurricane.MasterConfig{
				CloneInterval:   10 * time.Millisecond,
				SplitInterval:   5 * time.Millisecond,
				SplitImbalance:  1.5,
				SplitMinRecords: 4096,
				SplitFan:        4,
			},
		})
		if err != nil {
			return out, err
		}

		store := cluster.Store()
		var latencies []float64
		var firstSubmit, lastDone time.Time
		var lastJob *hurricane.JobHandle
		for w := 0; w < windows; w++ {
			res, err := h.Next(ctx)
			if err != nil {
				return out, fmt.Errorf("window %d: %w", w, err)
			}
			if res.Err != nil {
				return out, fmt.Errorf("window %d failed: %w", w, res.Err)
			}
			got, err := apps.CollectClickStream(ctx, store, res.Bag(apps.ClickStreamOut))
			if err != nil {
				return out, err
			}
			if len(got) != len(truth[w]) {
				return out, fmt.Errorf("window %d: %d regions, want %d", w, len(got), len(truth[w]))
			}
			for region, n := range truth[w] {
				if got[region].Count != n {
					return out, fmt.Errorf("window %d region %d: count %d, want %d",
						w, region, got[region].Count, n)
				}
			}
			latencies = append(latencies, float64(res.DoneAt.Sub(res.SubmittedAt).Microseconds())/1000)
			if firstSubmit.IsZero() {
				firstSubmit = res.SubmittedAt
			}
			lastDone = res.DoneAt
			if res.Seeded {
				out.Seeded++
			}
			out.Splits += res.Splits
			out.Isolations += res.Isolations
			if j := res.Job(); j != nil {
				lastJob = j
			}
		}
		if err := h.Drain(ctx); err != nil {
			return out, err
		}
		if _, err := h.Next(ctx); err != io.EOF {
			return out, fmt.Errorf("stream did not end cleanly: %v", err)
		}
		sort.Float64s(latencies)
		out.MedianMS = latencies[len(latencies)/2]
		// With 16 windows per run the 99th percentile is the slowest
		// window — i.e. this is an honest tail bound, not a smoothed
		// quantile (see notes in the JSON).
		out.P99MS = latencies[int(float64(len(latencies))*0.99)]
		total := lastDone.Sub(firstSubmit)
		out.WindowsPerS = float64(windows) / total.Seconds()
		out.TotalRuntime = total.Milliseconds()
		// Profile the last window's job: with warm starts its first-task
		// queue+read wait is the visible gain over a cold window.
		out.benchObs = captureObs(cluster, lastJob, true)
		return out, nil
	}

	median := func(cold bool) (modeResult, error) {
		return runTimed(iters,
			func() (modeResult, error) { return runOnce(cold) },
			func(r modeResult) float64 { return r.MedianMS })
	}

	fmt.Printf("stream: %d windows x %d drifting Zipf(1.3) clicks, warm-start vs cold-start partition maps\n",
		windows, perWindow)
	warm, err := median(false)
	if err != nil {
		return fmt.Errorf("warm-start run: %w", err)
	}
	fmt.Printf("  warm-start: median %6.1fms  p99 %6.1fms  %5.2f windows/s  (seeded %d, runtime splits %d, isolations %d)\n",
		warm.MedianMS, warm.P99MS, warm.WindowsPerS, warm.Seeded, warm.Splits, warm.Isolations)
	cold, err := median(true)
	if err != nil {
		return fmt.Errorf("cold-start run: %w", err)
	}
	fmt.Printf("  cold-start: median %6.1fms  p99 %6.1fms  %5.2f windows/s  (seeded %d, runtime splits %d, isolations %d)\n",
		cold.MedianMS, cold.P99MS, cold.WindowsPerS, cold.Seeded, cold.Splits, cold.Isolations)
	speedup := cold.MedianMS / warm.MedianMS
	fmt.Printf("  median window latency: %.2fx lower with cross-window skew memory\n", speedup)

	doc := map[string]any{
		"benchmark": "stream",
		"description": fmt.Sprintf(
			"Continuous ingestion on one embedded cluster (4 compute nodes x 2 slots): a drifting Zipf(s=1.3) click-log source (%d regions, hot region rotates every 2 windows) is cut into %d event-time windows of %d records, each executed as a DAG job (geolocate -> region-partitioned shuffle (%d base partitions, Spread) -> per-region aggregate at %dns/record). Warm-start seeds every window's partition map from the previous window's final map and merged edge sketch; cold-start rediscovers skew per window. Median of %d runs; every run verifies every window's per-region counts against ground truth.",
			regions, windows, perWindow, parts, recordCost, iters),
		"environment": map[string]string{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"command":                       "hurricane-bench stream",
		"results":                       map[string]any{"warm_start": warm, "cold_start": cold},
		"median_speedup_warm_over_cold": speedup,
		"notes":                         "Window jobs are short, so a cold partitioner pays the full skew penalty: the dominant regions pile onto one partition and the job's own sketch-driven refinement fires late in the window or not at all (each window starts with empty sketches). Warm-started windows route the known-heavy regions into dedicated spread bags from the first record; the drift keeps the memory honest — a rotated hot region is re-learned within one window and the seed map adapts. With 16 windows per run, p99_window_ms equals the run's slowest window (a tail bound, not a smoothed quantile).",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_stream.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_stream.json")
	return nil
}
