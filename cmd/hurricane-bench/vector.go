package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// vectorBench measures what the vectorized data plane buys the skewed
// groupby. The same logical job — Zipf(1.3) keyed aggregation with zero
// simulated per-record cost, so codec/routing/sketch work IS the
// workload — runs in three configurations on identical data and an
// identical static cluster layout (splitting, isolation, and the
// overload heuristic disabled; aggregate NoClone), so the only variable
// is the data plane:
//
//   - row: GroupByApp — record-at-a-time ForEach + PartitionedWriter.Write
//     (per-record routing, per-record sketch sampling, row chunks).
//   - batch: GroupByBatchApp with heavy slots off — whole column batches
//     through ForEachBatch + WriteBatch (one routing pass and one bulk
//     sketch feed per batch, columnar chunks), every key on the hash-map
//     path.
//   - batch_heavy: the same plus the Zhang & Ross-style skew exploit —
//     the edge's final merged producer sketch (republished by the master
//     at seal, before consumers are scheduled) promotes the heavy-hitter
//     keys to dense pre-allocated accumulator slots, so the dominant
//     share of records never hashes.
//
// Reported: median of 3 end-to-end runs per variant; every run verifies
// every per-key count against ground truth, so the comparison never
// trades correctness for speed. Throughput is mb_per_s over the 16-byte
// logical tuples, matching the policy-ablation benchmark's convention.
// Absolute throughput varies with the container; the batch/row and
// heavy/batch ratios are the stable quantities (vector-check enforces
// the first).
//
// Setting HURRICANE_BENCH_CPUPROFILE=<path> writes a CPU profile of one
// batch_heavy run (the first iteration) for the checked-in pprof
// summary.
func vectorBench() error {
	fmt.Printf("vector: %d Zipf(1.3) tuples over %d keys, row vs batch vs batch+heavy-slot groupby\n",
		vecRecords, vecKeys)
	row, batch, heavy, err := vectorVariants(vecIters)
	if err != nil {
		return err
	}
	speedup := batch.MBPerS / row.MBPerS
	heavySpeedup := heavy.MBPerS / batch.MBPerS
	fmt.Printf("  row:         %5dms  %6.2f MB/s\n", row.ElapsedMS, row.MBPerS)
	fmt.Printf("  batch:       %5dms  %6.2f MB/s  (%.2fx row)\n", batch.ElapsedMS, batch.MBPerS, speedup)
	fmt.Printf("  batch+heavy: %5dms  %6.2f MB/s  (%.2fx batch, heavy-slot hit rate %.1f%%)\n",
		heavy.ElapsedMS, heavy.MBPerS, heavySpeedup, 100*heavy.HeavyHitRate)

	doc := map[string]any{
		"benchmark": "vector",
		"description": fmt.Sprintf(
			"Vectorized data plane on the Zipf(s=1.3) keyed groupby (%d records, %d keys, top key ~34%%, %d base partitions, one compute node with one slot pinned to GOMAXPROCS(1), 256KB chunks, zero simulated record cost — codec/routing/sketch work is the workload). Static layout in all variants (splitting/isolation/heuristic disabled, aggregate NoClone), so the only variable is the data plane: 'row' is record-at-a-time ForEach + PartitionedWriter.Write on row chunks; 'batch' moves whole column batches (ForEachBatch with scratch-backed column decode + WriteBatch on the uint64-native routing path: one routing pass, bulk column-major scatter, and one bulk sketch feed per batch) with every key on the aggregate's hash-map path; 'batch_heavy' additionally seeds dense heavy-key accumulator slots (Zhang & Ross style) from the edge's final merged producer sketch, which the master republishes at seal before consumers are scheduled. Median of %d runs per variant; every run verifies every per-key count against ground truth. mb_per_s is over the 16-byte logical tuples.",
			vecRecords, vecKeys, vecParts, vecIters),
		"environment": map[string]string{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"command": "hurricane-bench vector",
		"results": map[string]any{
			"row": row, "batch": batch, "batch_heavy": heavy,
		},
		"speedup_batch_over_row":   speedup,
		"speedup_heavy_over_batch": heavySpeedup,
		"notes":                    "Absolute MB/s depends on the container; the ratios are the stable quantities and 'hurricane-bench vector-check' guards the batch/row one in CI (fresh ratio >= 0.6x the committed ratio; observed cross-run spread on a busy shared host is roughly 2.7x-3.5x, so the guard trips on real regressions, not scheduler noise). The row path pays codec framing, partition-map consultation, count-min sampling, and chunk-writer append per record; the batch path pays them per batch and ships columns, so the speedup is the per-record overhead's share of the row path's runtime. The heavy-slot variant resolves the keys that dominate a Zipf stream in dense pre-seeded accumulator slots instead of the hash map; the metrics record its hit rate (55% of records here). At this 64-key cardinality the consumer's last-key memo already absorbs most consecutive repeats, so heavy slots roughly tie the batch baseline on wall time (0.9x-1.2x across runs) — their headroom grows with group cardinality, when the tail map stops fitting in cache.",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_vector.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_vector.json")
	return nil
}

// vectorCheck is the CI regression guard: it re-runs the row and batch
// variants once each and fails when the fresh batch/row throughput ratio
// drops below 0.6x the committed BENCH_vector.json ratio — loose enough
// for the ~25% cross-run spread a busy shared host shows, tight enough
// that losing any one batch-path optimization layer trips it. Ratios, not
// absolute MB/s, are compared — both variants run in the same container
// seconds apart, so host speed cancels out.
func vectorCheck() error {
	raw, err := os.ReadFile("BENCH_vector.json")
	if err != nil {
		return fmt.Errorf("vector-check: no committed baseline: %w", err)
	}
	var doc struct {
		Speedup float64 `json:"speedup_batch_over_row"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("vector-check: bad BENCH_vector.json: %w", err)
	}
	if doc.Speedup <= 0 {
		return fmt.Errorf("vector-check: committed speedup_batch_over_row missing")
	}
	row, err := runVectorVariant("row", nil)
	if err != nil {
		return err
	}
	batch, err := runVectorVariant("batch", nil)
	if err != nil {
		return err
	}
	fresh := batch.MBPerS / row.MBPerS
	fmt.Printf("vector-check: fresh batch/row speedup %.2fx, committed %.2fx\n", fresh, doc.Speedup)
	if fresh < 0.6*doc.Speedup {
		return fmt.Errorf("vector-check: batch/row speedup regressed: fresh %.2fx < 0.6 x committed %.2fx",
			fresh, doc.Speedup)
	}
	fmt.Println("vector-check: ok")
	return nil
}

const (
	vecKeys    = 64
	vecRecords = 3200000
	vecParts   = 2
	vecIters   = 5
	// vecBytesPerRecord is the logical tuple width (two uint64s), the
	// same accounting BENCH_policy.json uses for mb_per_s.
	vecBytesPerRecord = 16
)

// vectorVariant is one data-plane configuration's median run.
type vectorVariant struct {
	ElapsedMS int64   `json:"elapsed_ms"`
	MBPerS    float64 `json:"mb_per_s"`
	// BatchChunks counts batch-encoded chunks the shuffle writers
	// inserted (0 in the row variant, by construction).
	BatchChunks float64 `json:"batch_chunks"`
	// HeavyHitRate is dense-slot hits over lookups in the aggregate
	// stage (0 outside batch_heavy).
	HeavyHitRate float64 `json:"heavy_hit_rate"`
	benchObs
}

// vectorVariants runs the three variants in interleaved rounds
// (row, batch, batch_heavy, row, batch, ...) and reports each variant's
// median over iters rounds. Interleaving matters on shared hosts: a
// noisy stretch degrades all three variants evenly instead of poisoning
// one variant's entire median window. The oracle verifies every run; the
// CPU-profile hook (if armed) captures the first batch_heavy iteration.
func vectorVariants(iters int) (row, batch, heavy vectorVariant, err error) {
	// This is a single-core throughput benchmark: one compute slot already
	// serializes every task, so running the support goroutines (master,
	// storage, pollers) on a second P only adds cross-thread futex wakeups
	// — they were ~40% of profile samples on a two-CPU host. One P
	// schedules everything cooperatively and measures the data plane.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var hook *profileHook
	if path := os.Getenv("HURRICANE_BENCH_CPUPROFILE"); path != "" {
		hook = &profileHook{path: path}
	}
	profileMode := os.Getenv("HURRICANE_BENCH_PROFILE_MODE")
	if profileMode == "" {
		profileMode = "batch_heavy"
	}
	samples := map[string][]vectorVariant{}
	for i := 0; i < iters; i++ {
		for _, mode := range []string{"row", "batch", "batch_heavy"} {
			var p *profileHook
			if mode == profileMode {
				p = hook
			}
			v, err := runVectorVariant(mode, p)
			if err != nil {
				return row, batch, heavy, fmt.Errorf("%s run %d: %w", mode, i, err)
			}
			samples[mode] = append(samples[mode], v)
		}
	}
	median := func(vs []vectorVariant) vectorVariant {
		sort.Slice(vs, func(a, b int) bool { return vs[a].MBPerS > vs[b].MBPerS })
		return vs[len(vs)/2]
	}
	return median(samples["row"]), median(samples["batch"]), median(samples["batch_heavy"]), nil
}

// profileHook captures one CPU profile across the first run it sees.
type profileHook struct {
	path string
	done bool
}

func (p *profileHook) start() func() {
	if p == nil || p.done {
		return func() {}
	}
	f, err := os.Create(p.path)
	if err != nil {
		return func() {}
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}
	}
	p.done = true
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// runVectorVariant runs one variant end-to-end on a fresh cluster and
// verifies every per-key count against ground truth.
func runVectorVariant(mode string, profile *profileHook) (vectorVariant, error) {
	var out vectorVariant
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Single-core on purpose: one compute slot serializes every task, so
	// mb_per_s is single-core data-plane throughput (the quantity the
	// row/batch comparison is about) rather than a measure of how well a
	// 7-goroutine cluster timeslices the container's two CPUs — parallel
	// layouts on an oversubscribed host measure the scheduler, and the
	// run-to-run variance swamps the ratio.
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 1,
		ComputeNodes: 1,
		SlotsPerNode: 1,
		// 256KB chunks: the in-process transport pays a goroutine handoff
		// per chunk, and on a two-CPU host those context switches compete
		// with the one worker doing the actual work. Bigger chunks cut
		// the handoff count identically for row and batch layouts.
		ChunkSize: 256 << 10,
		Master: hurricane.MasterConfig{
			DisableSplitting: true,
			DisableHeuristic: true,
		},
		// Tight control-loop intervals: the bench measures data-plane
		// throughput, so scheduling latency (heartbeats, poll gaps,
		// seal detection) should be as small a constant as possible —
		// it is identical across variants and only dilutes the ratio.
		Node: hurricane.NodeConfig{
			PollInterval:      2 * time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 2 * time.Millisecond},
	})
	if err != nil {
		return out, err
	}
	defer cluster.Shutdown()

	var app *hurricane.App
	switch mode {
	case "row":
		app = apps.GroupByApp(vecParts, false, true, 0)
	case "batch":
		app = apps.GroupByBatchApp(vecParts, false, true, 0, false)
	case "batch_heavy":
		app = apps.GroupByBatchApp(vecParts, false, true, 0, true)
	default:
		return out, fmt.Errorf("unknown vector variant %q", mode)
	}
	// Sketch pushes serialize the count-min sketch; at 1.6M records a
	// per-512 cadence would spend more time marshalling stats than
	// moving data. Both variants pay the same cadence, so this only
	// removes shared constant overhead from the comparison.
	spec := app.BagSpecFor(apps.GroupByShuf)
	spec.SketchEvery, spec.PollEvery = 65536, 16384

	gen := workload.RelationGen{Keys: vecKeys, S: 1.3, Seed: 47}
	tuples := gen.Generate(vecRecords)
	want := workload.KeyCounts(tuples)

	// The source layout is part of the data plane under test: the row
	// variant reads the classic row-framed source, the batch variants a
	// batch-encoded columnar one (identical logical content).
	store := cluster.Store()
	load := apps.LoadGroupBy
	if mode != "row" {
		load = apps.LoadGroupByBatch
	}
	if err := load(ctx, store, tuples); err != nil {
		return out, err
	}
	stop := profile.start()
	start := time.Now()
	runErr := cluster.Run(ctx, app)
	elapsed := time.Since(start)
	stop()
	if runErr != nil {
		return out, runErr
	}
	out.ElapsedMS = elapsed.Milliseconds()
	out.MBPerS = float64(vecRecords) * vecBytesPerRecord / elapsed.Seconds() / 1e6

	got, err := apps.CollectGroupBy(ctx, store)
	if err != nil {
		return out, err
	}
	if len(got) != len(want) {
		return out, fmt.Errorf("%s: %d keys, want %d", mode, len(got), len(want))
	}
	for k, n := range want {
		if got[k].Count != n {
			return out, fmt.Errorf("%s: key %d count %d, want %d", mode, k, got[k].Count, n)
		}
	}

	out.benchObs = captureObs(cluster, cluster.Primary(), false)
	var hits, lookups float64
	for series, v := range out.Metrics {
		switch {
		case hasMetricName(series, "hurricane_chunk_batches_total"):
			out.BatchChunks += v
		case hasMetricName(series, "hurricane_agg_heavy_slot_hits_total"):
			hits += v
		case hasMetricName(series, "hurricane_agg_heavy_slot_lookups_total"):
			lookups += v
		}
	}
	if lookups > 0 {
		out.HeavyHitRate = hits / lookups
	}
	switch mode {
	case "row":
		if out.BatchChunks != 0 {
			return out, fmt.Errorf("row variant moved %v batch chunks", out.BatchChunks)
		}
	default:
		if out.BatchChunks == 0 {
			return out, fmt.Errorf("%s variant moved no batch chunks — fell back to rows", mode)
		}
	}
	if mode == "batch_heavy" && out.HeavyHitRate == 0 {
		return out, fmt.Errorf("batch_heavy variant recorded no dense-slot hits — warm sketch not seen")
	}
	return out, nil
}

// hasMetricName reports whether a labeled series is the given metric.
func hasMetricName(series, name string) bool {
	return series == name || (len(series) > len(name) && series[:len(name)] == name && series[len(name)] == '{')
}
