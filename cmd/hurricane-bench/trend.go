package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The perf-trajectory closer (ROADMAP item 5: "the perf trajectory stops
// being hand-curated"). Every real-engine benchmark writes a BENCH_*.json
// document with one headline ratio — the number its PR was accepted on.
// "trend" folds those headlines into one machine-checkable document,
// BENCH_TREND.json, plus a markdown table (BENCH_TREND.md); "trend-check"
// recomputes the headlines from the BENCH documents in the tree and fails
// when one has regressed past its committed trend value minus tolerance.
// The check is deterministic — it re-reads documents rather than
// re-running benches — so it catches the real CI failure mode: a PR that
// regenerates a BENCH_*.json with a worse headline (or deletes one)
// without owning up to it in the trend.

// trendMetric describes one benchmark's headline ratio: where it lives,
// which direction is good, and how much drift trend-check tolerates.
type trendMetric struct {
	Bench  string // benchmark name (the hurricane-bench subcommand)
	File   string // committed document holding the headline
	Key    string // top-level key of the headline ratio
	Better string // "up" (speedups) or "down" (overheads)
	// TolRel is the allowed relative regression for "up" metrics (0.10 =
	// a 10% drop fails). TolAbs is the allowed absolute worsening for
	// "down" metrics (percent-point overheads, where relative tolerance
	// is meaningless around zero).
	TolRel float64
	TolAbs float64
}

// trendMetrics is the registry of headline ratios. Adding a benchmark =
// adding a row; trend-check fails when a registered file disappears, so
// removing one is an explicit edit here, not a silent drop.
var trendMetrics = []trendMetric{
	{Bench: "shuffle", File: "BENCH_shuffle.json", Key: "speedup_static_over_skew_aware", Better: "up", TolRel: 0.15},
	{Bench: "policy", File: "BENCH_policy.json", Key: "speedup_all_over_none", Better: "up", TolRel: 0.15},
	{Bench: "sched", File: "BENCH_sched.json", Key: "uni_speedup_fair_over_none", Better: "up", TolRel: 0.15},
	{Bench: "stream", File: "BENCH_stream.json", Key: "median_speedup_warm_over_cold", Better: "up", TolRel: 0.10},
	{Bench: "plan", File: "BENCH_plan.json", Key: "speedup_planner_over_naive", Better: "up", TolRel: 0.15},
	{Bench: "vector", File: "BENCH_vector.json", Key: "speedup_batch_over_row", Better: "up", TolRel: 0.15},
	{Bench: "vector", File: "BENCH_vector.json", Key: "speedup_heavy_over_batch", Better: "up", TolRel: 0.10},
	{Bench: "wire", File: "BENCH_wire_baseline.json", Key: "telemetry_overhead_pct", Better: "down", TolAbs: 5},
}

// trendEntry is one headline in BENCH_TREND.json.
type trendEntry struct {
	Bench  string  `json:"bench"`
	File   string  `json:"file"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Better string  `json:"better"`
}

// trendDoc is the BENCH_TREND.json shape.
type trendDoc struct {
	Note    string       `json:"note"`
	Entries []trendEntry `json:"entries"`
}

// readHeadline extracts one headline ratio from a BENCH document.
func readHeadline(m trendMetric) (float64, error) {
	data, err := os.ReadFile(m.File)
	if err != nil {
		return 0, fmt.Errorf("trend: %s (%s): %w", m.Bench, m.Key, err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trend: %s: %w", m.File, err)
	}
	raw, ok := doc[m.Key]
	if !ok {
		return 0, fmt.Errorf("trend: %s has no top-level key %q", m.File, m.Key)
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, fmt.Errorf("trend: %s %s: %w", m.File, m.Key, err)
	}
	return v, nil
}

// collectTrend reads every registered headline from the tree.
func collectTrend() ([]trendEntry, error) {
	entries := make([]trendEntry, 0, len(trendMetrics))
	for _, m := range trendMetrics {
		v, err := readHeadline(m)
		if err != nil {
			return nil, err
		}
		entries = append(entries, trendEntry{
			Bench: m.Bench, File: m.File, Metric: m.Key, Value: v, Better: m.Better,
		})
	}
	return entries, nil
}

// trendMarkdown renders the trend as a markdown table.
func trendMarkdown(entries []trendEntry) string {
	var b strings.Builder
	b.WriteString("# Benchmark trend\n\n")
	b.WriteString("Headline ratios of every committed real-engine benchmark, aggregated by\n")
	b.WriteString("`hurricane-bench trend` and gated in CI by `hurricane-bench trend-check`.\n\n")
	b.WriteString("| bench | metric | value | better |\n")
	b.WriteString("|---|---|---:|---|\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "| %s | %s | %.4g | %s |\n", e.Bench, e.Metric, e.Value, e.Better)
	}
	return b.String()
}

// trendCmd regenerates BENCH_TREND.json and BENCH_TREND.md from the
// BENCH documents in the tree.
func trendCmd() error {
	entries, err := collectTrend()
	if err != nil {
		return err
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Bench != entries[b].Bench {
			return entries[a].Bench < entries[b].Bench
		}
		return entries[a].Metric < entries[b].Metric
	})
	doc := trendDoc{
		Note:    "headline ratios aggregated from the committed BENCH_*.json documents by `hurricane-bench trend`; gated by `hurricane-bench trend-check`",
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_TREND.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	md := trendMarkdown(entries)
	if err := os.WriteFile("BENCH_TREND.md", []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Print(md)
	fmt.Printf("trend: wrote BENCH_TREND.json and BENCH_TREND.md (%d headlines)\n", len(entries))
	return nil
}

// trendCheckCmd verifies the tree's BENCH documents against the
// committed BENCH_TREND.json: every committed headline must still be
// readable and must not have worsened past its tolerance. New headlines
// not yet in the committed trend are reported but pass (commit them by
// re-running `hurricane-bench trend`).
func trendCheckCmd() error {
	data, err := os.ReadFile("BENCH_TREND.json")
	if err != nil {
		return fmt.Errorf("trend-check: no committed trend (run `hurricane-bench trend` and commit BENCH_TREND.json): %w", err)
	}
	var committed trendDoc
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("trend-check: BENCH_TREND.json: %w", err)
	}
	byKey := make(map[string]trendEntry, len(committed.Entries))
	for _, e := range committed.Entries {
		byKey[e.File+"#"+e.Metric] = e
	}
	failures := 0
	for _, m := range trendMetrics {
		fresh, err := readHeadline(m)
		if err != nil {
			fmt.Printf("trend-check: FAIL %s: %v\n", m.Bench, err)
			failures++
			continue
		}
		base, ok := byKey[m.File+"#"+m.Key]
		if !ok {
			fmt.Printf("trend-check: note: %s %s=%.4g not in committed trend yet (run `hurricane-bench trend`)\n",
				m.Bench, m.Key, fresh)
			continue
		}
		delete(byKey, m.File+"#"+m.Key)
		switch m.Better {
		case "up":
			floor := base.Value * (1 - m.TolRel)
			if fresh < floor {
				fmt.Printf("trend-check: FAIL %s %s: %.4g < floor %.4g (committed %.4g, tolerance %.0f%%)\n",
					m.Bench, m.Key, fresh, floor, base.Value, m.TolRel*100)
				failures++
				continue
			}
			fmt.Printf("trend-check: ok   %s %s: %.4g >= floor %.4g\n", m.Bench, m.Key, fresh, floor)
		case "down":
			ceil := base.Value + m.TolAbs
			if fresh > ceil {
				fmt.Printf("trend-check: FAIL %s %s: %.4g > ceiling %.4g (committed %.4g, tolerance +%.4g)\n",
					m.Bench, m.Key, fresh, ceil, base.Value, m.TolAbs)
				failures++
				continue
			}
			fmt.Printf("trend-check: ok   %s %s: %.4g <= ceiling %.4g\n", m.Bench, m.Key, fresh, ceil)
		}
	}
	// Committed entries whose metric vanished from the registry: the
	// trend and the registry must be edited together.
	for _, e := range byKey {
		fmt.Printf("trend-check: FAIL %s %s: committed in BENCH_TREND.json but no longer registered in trendMetrics\n",
			e.Bench, e.Metric)
		failures++
	}
	if failures > 0 {
		return fmt.Errorf("trend-check: %d headline(s) regressed or unreadable", failures)
	}
	fmt.Println("trend-check: all headlines within tolerance")
	return nil
}
