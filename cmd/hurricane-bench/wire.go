package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/workload"
)

// wireBench measures the TCP storage wire path under the paper's skewed
// groupby and prices the wire-path telemetry itself. It is the committed
// baseline for the ROADMAP wire-path optimisation target (≥5× fewer
// round trips per consumed chunk): every future transport change gets
// compared against BENCH_wire_baseline.json.
//
// The workload is the Zipf(1.3) shuffle groupby — the same job
// hurricane-run executes — but against REAL TCP storage nodes: each
// storage.Node sits behind its own transport.TCPServer on a loopback
// port, and every bag op (insert, read, advance, seal, sketch push, pmap
// poll) crosses the wire. Every run verifies per-key counts against
// ground truth.
//
// Two variants run interleaved (alternating order, so clock drift and
// cache warmth cancel):
//
//   - telemetry-on: client, servers, and nodes all carry bound Meters —
//     the full hurricane_storage_op_* surface. The median run reports
//     per-op client latency p50/p99, op throughput, and wire bytes.
//   - telemetry-off: no meters bound anywhere; the identical job priced
//     without the storage-tier telemetry.
//
// The headline overhead number is the median-over-median elapsed ratio;
// the acceptance bar is ≤3%.
func wireBench() error {
	const (
		records   = 200000
		keyDomain = 64
		zipfS     = 1.3
		parts     = 4
		storageN  = 2
		computes  = 4
		slots     = 2
		chunkSize = 32 << 10
		pairs     = 5
	)

	fmt.Printf("wire: Zipf(%.1f) groupby, %d records over %d TCP storage nodes, %d interleaved A/B pairs\n",
		zipfS, records, storageN, pairs)

	// One discarded warm-up run: the first run of the process pays page
	// cache and scheduler warm-up that would otherwise land on whichever
	// variant happens to go first.
	if _, err := wireRunOnce(false, records, keyDomain, zipfS, parts, storageN, computes, slots, chunkSize); err != nil {
		return fmt.Errorf("wire warm-up: %w", err)
	}

	var onRuns, offRuns []wireVariant
	for i := 0; i < pairs; i++ {
		order := []bool{true, false}
		if i%2 == 1 {
			order[0], order[1] = false, true
		}
		for _, telemetry := range order {
			v, err := wireRunOnce(telemetry, records, keyDomain, zipfS, parts, storageN, computes, slots, chunkSize)
			if err != nil {
				return fmt.Errorf("wire (telemetry=%v): %w", telemetry, err)
			}
			if telemetry {
				onRuns = append(onRuns, v)
			} else {
				offRuns = append(offRuns, v)
			}
			fmt.Printf("  pair %d telemetry=%-5v %5dms", i+1, telemetry, v.ElapsedMS)
			if telemetry {
				fmt.Printf("  (%d client ops, %.0f op/s, %s out / %s in)",
					v.ClientOps, v.OpsPerSec, wireMB(v.WireBytesOut), wireMB(v.WireBytesIn))
			}
			fmt.Println()
		}
	}

	on := wireMedian(onRuns)
	off := wireMedian(offRuns)
	overheadPct := (float64(on.ElapsedMS)/float64(off.ElapsedMS) - 1) * 100

	fmt.Printf("  telemetry-on  median: %5dms\n", on.ElapsedMS)
	fmt.Printf("  telemetry-off median: %5dms\n", off.ElapsedMS)
	fmt.Printf("  storage-telemetry overhead: %+.1f%% (bar: ≤3%%)\n", overheadPct)
	ops := make([]string, 0, len(on.PerOp))
	for op := range on.PerOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(a, b int) bool { return on.PerOp[ops[a]].Ops > on.PerOp[ops[b]].Ops })
	fmt.Printf("  %-12s %10s %10s %10s\n", "client op", "count", "p50", "p99")
	for _, op := range ops {
		s := on.PerOp[op]
		fmt.Printf("  %-12s %10d %9.0fus %9.0fus\n", op, s.Ops, s.P50Us, s.P99Us)
	}

	doc := map[string]any{
		"benchmark": "wire",
		"description": fmt.Sprintf(
			"Wire-path baseline for the TCP storage tier: the Zipf(s=%.1f) shuffle groupby (%d records, %d-key domain, %d base partitions, producer sketches and hot-partition splits active) runs with compute nodes and master in-process but every bag on %d real storage.Node processes-worth of state behind transport.TCPServer loopback listeners — every insert/read/advance/seal/sketch/pmap op crosses TCP (%dKiB chunks). Interleaved A/B, %d pairs in alternating order: telemetry-on binds the full Meter surface (client+server+node roles), telemetry-off binds none. Per-run verification of every per-key count against ground truth. Reported: median elapsed per variant; the on-median's client-side per-op latency p50/p99 (full session: load+run+collect share the wire path), op throughput and wire bytes over the groupby run itself, and the on/off median overhead ratio.",
			zipfS, records, keyDomain, parts, storageN, chunkSize>>10, pairs),
		"environment": map[string]string{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"command": "hurricane-bench wire",
		"results": map[string]any{
			"telemetry_on":  on,
			"telemetry_off": off,
		},
		"telemetry_overhead_pct": overheadPct,
		"notes": "This file is the committed baseline for the ROADMAP wire-path target (≥5x fewer round trips per consumed chunk): compare future transport work against ops_per_run and wire bytes here, not wall clock alone. The per-op table localizes where the wire budget goes today — read/advance round trips per consumed chunk dominate op count; sketch pushes and pmap polls ride the same connections. Telemetry overhead is the median-over-median elapsed ratio of interleaved runs; the meters themselves are a few atomic adds per op, so the bar is ≤3%.",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_wire_baseline.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_wire_baseline.json")
	if overheadPct > 3 {
		fmt.Printf("  WARNING: telemetry overhead %.1f%% exceeds the 3%% bar\n", overheadPct)
	}
	return nil
}

// wireOpStat is one client-side op row of the per-op table.
type wireOpStat struct {
	// Ops counts completions of this op over the groupby run.
	Ops int64 `json:"ops"`
	// P50Us / P99Us are the op's latency quantiles in microseconds over
	// the whole session (power-of-two-bucket estimate).
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// wireVariant is one measured run of the wire benchmark. The telemetry
// fields stay zero on telemetry-off runs (there is no meter to read).
type wireVariant struct {
	ElapsedMS int64 `json:"elapsed_ms"`
	// ClientOps / OpsPerSec / WireBytes* cover the groupby run itself
	// (snapshot delta around cluster.Run), from the client's perspective.
	ClientOps    int64   `json:"client_ops,omitempty"`
	OpsPerSec    float64 `json:"ops_per_sec,omitempty"`
	WireBytesOut int64   `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64   `json:"wire_bytes_in,omitempty"`
	// PerOp is the client-side per-op table, keyed by op name.
	PerOp map[string]wireOpStat `json:"per_op_client,omitempty"`
	// SlowOps counts EvStorageSlowOp trace events across all roles.
	SlowOps int `json:"slow_ops,omitempty"`
}

// wireRunOnce builds a fresh TCP storage tier, runs the verified Zipf
// groupby against it, and (when telemetry is on) reads the run's wire
// metrics back out of the observer.
func wireRunOnce(telemetry bool, records, keyDomain int, zipfS float64, parts, storageN, computes, slots, chunkSize int) (wireVariant, error) {
	var out wireVariant
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	o := obs.New(0)
	names := make([]string, storageN)
	addrs := make(map[string]string, storageN)
	var servers []*transport.TCPServer
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := range names {
		name := fmt.Sprintf("wire-%d", i)
		names[i] = name
		node := storage.NewNode(name)
		srv := transport.NewTCPServer(node)
		if telemetry {
			node.Bind(o, 0)
			srv.Bind(transport.NewMeter(o, "server", name, 0))
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return out, err
		}
		servers = append(servers, srv)
		addrs[name] = addr
	}
	client := transport.NewTCPClient(addrs)
	defer client.Close()
	if telemetry {
		client.Bind(transport.NewMeter(o, "client", "", 0))
	}
	store, err := bag.NewStore(bag.Config{Nodes: names, Client: client, ChunkSize: chunkSize})
	if err != nil {
		return out, err
	}

	tuples := workload.ZipfTuples(records, keyDomain, zipfS, 9)
	want := workload.KeyCounts(tuples)
	if err := apps.LoadGroupBy(ctx, store, tuples); err != nil {
		return out, err
	}

	cluster := core.NewClusterOverStore(store, core.ClusterConfig{
		ComputeNodes: computes,
		SlotsPerNode: slots,
		Obs:          o,
		Master: core.MasterConfig{
			CloneInterval:   50 * time.Millisecond,
			SplitInterval:   20 * time.Millisecond,
			SplitImbalance:  1.5,
			SplitMinRecords: 4096,
			SplitFan:        4,
		},
		Node: core.NodeConfig{
			MonitorInterval:   25 * time.Millisecond,
			OverloadThreshold: 0.5,
		},
	})
	defer cluster.Shutdown()

	app := apps.GroupByApp(parts, true, false, 0)
	spec := app.BagSpecFor(apps.GroupByShuf)
	spec.SketchEvery, spec.PollEvery = 512, 256

	before := o.Registry().Snapshot()
	start := time.Now()
	if err := cluster.Run(ctx, app); err != nil {
		return out, err
	}
	elapsed := time.Since(start)
	out.ElapsedMS = elapsed.Milliseconds()

	got, err := apps.CollectGroupBy(ctx, store)
	if err != nil {
		return out, err
	}
	for k, n := range want {
		if got[k].Count != n {
			return out, fmt.Errorf("key %d: got %d want %d", k, got[k].Count, n)
		}
	}
	if len(got) != len(want) {
		return out, fmt.Errorf("got %d keys, want %d", len(got), len(want))
	}

	if telemetry {
		snap := o.Registry().Snapshot()
		out.PerOp = make(map[string]wireOpStat)
		for op := transport.OpInsert; op <= transport.OpDeletePrefix; op++ {
			key := fmt.Sprintf(`hurricane_storage_op_total{role="client",op=%q}`, op.String())
			n := int64(snap[key] - before[key])
			if n <= 0 {
				continue
			}
			out.ClientOps += n
			out.PerOp[op.String()] = wireOpStat{
				Ops:   n,
				P50Us: snap[fmt.Sprintf(`hurricane_storage_op_ns_p50{role="client",op=%q}`, op.String())] / 1e3,
				P99Us: snap[fmt.Sprintf(`hurricane_storage_op_ns_p99{role="client",op=%q}`, op.String())] / 1e3,
			}
		}
		out.OpsPerSec = float64(out.ClientOps) / elapsed.Seconds()
		const bytesOut = `hurricane_storage_bytes_out_total{role="client"}`
		const bytesIn = `hurricane_storage_bytes_in_total{role="client"}`
		out.WireBytesOut = int64(snap[bytesOut] - before[bytesOut])
		out.WireBytesIn = int64(snap[bytesIn] - before[bytesIn])
		out.SlowOps = len(o.Tracer().Events("", obs.EvStorageSlowOp))
	}
	return out, nil
}

// wireMedian returns the median-elapsed run.
func wireMedian(runs []wireVariant) wireVariant {
	sort.Slice(runs, func(a, b int) bool { return runs[a].ElapsedMS < runs[b].ElapsedMS })
	return runs[len(runs)/2]
}

// wireMB formats a byte count as MiB with one decimal.
func wireMB(n int64) string {
	return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
}
