package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// schedBench measures what the multi-job scheduler buys a well-behaved
// job that co-runs with a skewed neighbor. Two groupby jobs share one
// embedded cluster (4 compute nodes × 2 slots):
//
//   - "skew": Zipf(s=1.3) keys, aggressive cloning and splitting — left
//     alone it clones itself across every worker slot;
//   - "uni": near-uniform keys, submitted once the skewed job has
//     saturated the cluster.
//
// The scenario runs twice — fair-share slot leasing on (default) and
// off (unarbitrated: nodes hand slots to whichever job's blueprint they
// find) — and reports the uniform job's completion time under each,
// writing BENCH_sched.json. Both runs verify every key count against an
// in-process oracle.
func schedBench() error {
	type coRun struct {
		UniMS      int64 `json:"uni_ms"`
		SkewMS     int64 `json:"skew_ms"`
		Yields     int   `json:"yields"`
		Clones     int   `json:"clones"`
		Splits     int   `json:"splits"`
		Isolations int   `json:"isolations"`
		benchObs
	}
	const (
		skewRecords = 200000
		uniRecords  = 60000
		parts       = 4
		recordCost  = 5000  // ns per record in the aggregate stage
		skewProduce = 15000 // ns per record in the skewed job's shuffle stage
	)
	skewTuples := workload.ZipfTuples(skewRecords, 64, 1.3, 9)
	uniTuples := workload.ZipfTuples(uniRecords, 64, 0.01, 11)
	wantSkew, wantUni := workload.KeyCounts(skewTuples), workload.KeyCounts(uniTuples)

	runOnce := func(fair bool) (coRun, error) {
		var out coRun
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		cluster, err := core.NewCluster(core.ClusterConfig{
			StorageNodes: 4,
			ComputeNodes: 4,
			SlotsPerNode: 2,
			ChunkSize:    4 << 10,
			Node: core.NodeConfig{
				PollInterval:      time.Millisecond,
				MonitorInterval:   2 * time.Millisecond,
				HeartbeatInterval: 2 * time.Millisecond,
				OverloadThreshold: 0.1,
			},
			Master: core.MasterConfig{
				CloneInterval:    2 * time.Millisecond,
				DisableHeuristic: true,
				SplitInterval:    2 * time.Millisecond,
				SplitFan:         4,
				SplitImbalance:   1.5,
				SplitMinRecords:  8192,
			},
			Sched: sched.Config{
				Interval:         5 * time.Millisecond,
				DisableFairShare: !fair,
			},
		})
		if err != nil {
			return out, err
		}
		defer cluster.Shutdown()
		store := cluster.Store()

		// The skewed neighbor's shuffle stage is CPU-bound, so it clones
		// itself across every idle slot — precisely the behavior the
		// fair-share lease must contain once the uniform job arrives.
		newApp := func(shuffleCost int) *core.App {
			app := apps.GroupByAppCosts(parts, true, false, shuffleCost, recordCost)
			spec := app.BagSpecFor(apps.GroupByShuf)
			spec.SketchEvery, spec.PollEvery = 512, 256
			return app
		}
		hSkew, err := cluster.SubmitJob(ctx, newApp(skewProduce), core.JobConfig{Name: "skew"})
		if err != nil {
			return out, err
		}
		if err := apps.LoadGroupByInto(ctx, store, hSkew.Bag(apps.GroupByIn), skewTuples); err != nil {
			return out, err
		}
		// Let the skewed job clone itself across the whole pool.
		deadline := time.Now().Add(time.Second)
		for cluster.FreeSlots() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}

		hUni, err := cluster.SubmitJob(ctx, newApp(0), core.JobConfig{Name: "uni"})
		if err != nil {
			return out, err
		}
		uniStart := time.Now()
		if err := apps.LoadGroupByInto(ctx, store, hUni.Bag(apps.GroupByIn), uniTuples); err != nil {
			return out, err
		}
		if err := hUni.Wait(ctx); err != nil {
			return out, fmt.Errorf("uni job: %w", err)
		}
		out.UniMS = time.Since(uniStart).Milliseconds()
		if err := hSkew.Wait(ctx); err != nil {
			return out, fmt.Errorf("skew job: %w", err)
		}
		out.SkewMS = time.Since(uniStart).Milliseconds()

		verify := func(h *core.JobHandle, want map[uint64]int64) error {
			got, err := apps.CollectGroupByFrom(ctx, store, h.Bag(apps.GroupByOut))
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("job %s: %d keys, want %d", h.ID(), len(got), len(want))
			}
			for k, n := range want {
				if got[k].Count != n {
					return fmt.Errorf("job %s: key %d count %d, want %d", h.ID(), k, got[k].Count, n)
				}
			}
			return nil
		}
		if err := verify(hSkew, wantSkew); err != nil {
			return out, err
		}
		if err := verify(hUni, wantUni); err != nil {
			return out, err
		}
		st := hSkew.Stats().Master
		out.Yields = st.Yields
		out.Clones = st.Clones
		out.Splits = st.Splits
		out.Isolations = st.Isolations
		// Profile the skewed job: its critical path is where mitigation
		// (and fair-share preemption) shows up.
		out.benchObs = captureObs(cluster, hSkew, false)
		return out, nil
	}

	// Median of 3 iterations per variant (by the uniform job's time, the
	// measured quantity) — single co-runs are noisy at this scale.
	const iters = 3
	median := func(fairShare bool) (coRun, error) {
		return runTimed(iters,
			func() (coRun, error) { return runOnce(fairShare) },
			func(r coRun) float64 { return float64(r.UniMS) })
	}
	fmt.Println("sched: 2-job co-run (skewed groupby vs uniform groupby), fair-share leasing on/off")
	fair, err := median(true)
	if err != nil {
		return fmt.Errorf("fair-share run: %w", err)
	}
	fmt.Printf("  fair-share:   uni %4dms  skew %4dms  (yields %d, clones %d, splits %d)\n",
		fair.UniMS, fair.SkewMS, fair.Yields, fair.Clones, fair.Splits)
	unarb, err := median(false)
	if err != nil {
		return fmt.Errorf("unarbitrated run: %w", err)
	}
	fmt.Printf("  unarbitrated: uni %4dms  skew %4dms  (yields %d, clones %d, splits %d)\n",
		unarb.UniMS, unarb.SkewMS, unarb.Yields, unarb.Clones, unarb.Splits)
	improvement := float64(unarb.UniMS) / float64(fair.UniMS)
	fmt.Printf("  uniform co-runner completion: %.2fx faster under fair-share leasing\n", improvement)

	doc := map[string]any{
		"benchmark": "sched",
		"description": fmt.Sprintf(
			"Two-job co-run on one embedded cluster (4 compute nodes x 2 slots): a Zipf(s=1.3) groupby (%d records, aggressive cloning+splitting) saturates the cluster, then a near-uniform groupby (%d records) is submitted. Reported: median of 3 iterations of the uniform job's completion time with fair-share slot leasing (claim gating + cooperative clone preemption) versus unarbitrated sharing. Every run verifies all key counts of both jobs.",
			skewRecords, uniRecords),
		"environment": map[string]string{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"command":                    "hurricane-bench sched",
		"results":                    map[string]any{"fair_share": fair, "unarbitrated": unarb},
		"uni_speedup_fair_over_none": improvement,
		"notes":                      "The skewed job's CPU-bound shuffle stage clones itself across all 8 slots before the uniform job arrives. Under fair-share leasing the scheduler gates the skewed job's further claims and preempts its clones cooperatively (yields > 0; each yielded clone finishes its current chunk, flushes, and hands the rest of the bag to the surviving workers), so the uniform job reaches its fair share within a few scheduler ticks. Unarbitrated, the uniform job waits for the neighbor's long-lived clone workers to drain naturally. The skewed job finishes later under leasing — that is the intended trade: it is the job causing the contention.",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_sched.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_sched.json")
	return nil
}
