package main

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// runTimed runs one benchmark variant iters times and returns the median
// run, ordered by key — the variant's measured quantity. Single runs at
// this scale are noisy; the median keeps the reported numbers honest
// without averaging away tail behavior.
func runTimed[T any](iters int, run func() (T, error), key func(T) float64) (T, error) {
	runs := make([]T, 0, iters)
	for i := 0; i < iters; i++ {
		r, err := run()
		if err != nil {
			var zero T
			return zero, err
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(a, b int) bool { return key(runs[a]) < key(runs[b]) })
	return runs[iters/2], nil
}

// captureMetrics snapshots the cluster's metrics registry for embedding
// in a BENCH_*.json document: only hurricane_* series (the engine's own
// meters), and only non-zero values, so the document records what the
// run actually exercised. Called before Shutdown, while the observer
// still holds the run's counters.
func captureMetrics(c *core.Cluster) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range c.Observer().Registry().Snapshot() {
		if strings.HasPrefix(series, "hurricane_") && v != 0 {
			out[series] = v
		}
	}
	return out
}

// captureMetricsCollapsed is captureMetrics with every label stripped:
// series differing only in labels merge under the bare metric name —
// summed, except streaming-quantile series (_p50/_p95/_p99), which take
// the maximum (quantiles do not sum). The stream benchmark runs one
// short-lived job per window, so the raw snapshot would carry hundreds
// of near-identical per-window series where the merged totals are what
// the document needs.
func captureMetricsCollapsed(c *core.Cluster) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range c.Observer().Registry().Snapshot() {
		if !strings.HasPrefix(series, "hurricane_") || v == 0 {
			continue
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		switch {
		case strings.HasSuffix(name, "_p50"), strings.HasSuffix(name, "_p95"), strings.HasSuffix(name, "_p99"):
			out[name] = max(out[name], v)
		default:
			out[name] += v
		}
	}
	return out
}
