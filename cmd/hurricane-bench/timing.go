package main

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// benchObs is the observability block every BENCH_*.json variant embeds:
// the run's engine metrics snapshot plus, when a job handle is supplied,
// that job's measured profile summary (wall time, critical path, and its
// per-phase breakdown in milliseconds). One shared helper replaces the
// hand-rolled capture blocks each subcommand used to carry.
type benchObs struct {
	// Metrics is the run's engine metrics snapshot: hurricane_* series
	// from the cluster observer, non-zero values only (labels collapsed
	// when the run spans many short-lived jobs), captured before
	// shutdown.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Profile is the profiled job's execution summary (absent when the
	// run kept no handle or span profiling was off).
	Profile *obs.Summary `json:"profile,omitempty"`
	// Timeline is the run's sampled history from the cluster's
	// time-series recorder, filtered to the decision-relevant series
	// (task counts, skew shares, watchdog alerts, stream windows) so the
	// document shows *when* the run's mitigation story happened, not
	// just its totals. Absent when the sampler was off or the run was
	// too short for a sample tick.
	Timeline []obs.SeriesDump `json:"timeline,omitempty"`
}

// timelineFilters selects which sampled series a BENCH document embeds.
// The full recorder dump carries every registry series — hundreds at
// label granularity — where the document wants the arc of the run.
var timelineFilters = []string{
	"hurricane_core_tasks_",
	"hurricane_core_clones_total",
	"hurricane_core_splits_total",
	"hurricane_core_isolations_total",
	"hurricane_skew_",
	"hurricane_watch_alerts_total",
	"hurricane_stream_window_",
	"hurricane_trace_dropped_total",
}

// captureObs fills the shared block from a still-running cluster.
// collapse selects the label-collapsed metrics snapshot (for runs that
// span many short-lived jobs); h may be nil.
func captureObs(c *core.Cluster, h *core.JobHandle, collapse bool) benchObs {
	var b benchObs
	if collapse {
		b.Metrics = captureMetricsCollapsed(c)
	} else {
		b.Metrics = captureMetrics(c)
	}
	if h != nil {
		if p := h.Profile(); p != nil && len(p.Stages) > 0 {
			s := p.Summarize()
			b.Profile = &s
		}
	}
	// One explicit sample first: a run shorter than the sampler cadence
	// would otherwise embed an empty timeline.
	c.Watch().Eval(c.Recorder().Sample())
	b.Timeline = c.Recorder().Dump(timelineFilters, -1)
	return b
}

// runTimed runs one benchmark variant iters times and returns the median
// run, ordered by key — the variant's measured quantity. Single runs at
// this scale are noisy; the median keeps the reported numbers honest
// without averaging away tail behavior.
func runTimed[T any](iters int, run func() (T, error), key func(T) float64) (T, error) {
	runs := make([]T, 0, iters)
	for i := 0; i < iters; i++ {
		r, err := run()
		if err != nil {
			var zero T
			return zero, err
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(a, b int) bool { return key(runs[a]) < key(runs[b]) })
	return runs[iters/2], nil
}

// captureMetrics snapshots the cluster's metrics registry for embedding
// in a BENCH_*.json document: only hurricane_* series (the engine's own
// meters), and only non-zero values, so the document records what the
// run actually exercised. Called before Shutdown, while the observer
// still holds the run's counters.
func captureMetrics(c *core.Cluster) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range c.Observer().Registry().Snapshot() {
		if strings.HasPrefix(series, "hurricane_") && v != 0 {
			out[series] = v
		}
	}
	return out
}

// captureMetricsCollapsed is captureMetrics with every label stripped:
// series differing only in labels merge under the bare metric name —
// summed, except streaming-quantile series (_p50/_p95/_p99), which take
// the maximum (quantiles do not sum). The stream benchmark runs one
// short-lived job per window, so the raw snapshot would carry hundreds
// of near-identical per-window series where the merged totals are what
// the document needs.
func captureMetricsCollapsed(c *core.Cluster) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range c.Observer().Registry().Snapshot() {
		if !strings.HasPrefix(series, "hurricane_") || v == 0 {
			continue
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		switch {
		case strings.HasSuffix(name, "_p50"), strings.HasSuffix(name, "_p95"), strings.HasSuffix(name, "_p99"):
			out[name] = max(out[name], v)
		default:
			out[name] += v
		}
	}
	return out
}
