package repro

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/workload"
)

// BenchmarkPolicyAblation measures the control plane's mitigation
// policies in isolation on the acceptance workload of the shuffle
// subsystem: a Zipf(s=1.3) keyed groupby (one key ≈ a third of the
// records) with a simulated 5µs/record aggregation cost, 4 base
// partitions, 8 consumer slots. Variants select policy sets through
// MasterConfig.Policies:
//
//	all        — clone + speculative + split + isolate (the default set)
//	clone-only — reactive cloning, static hash partitioning
//	split-only — partition splitting + key isolation, no cloning
//	none       — empty policy set (no mitigation at all)
//
// Baseline numbers live in BENCH_policy.json. Compare ns/op:
//
//	go test -run xxx -bench BenchmarkPolicyAblation -benchtime 3x .
func BenchmarkPolicyAblation(b *testing.B) {
	const parts = 4
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 9}
	tuples := gen.Generate(200000)

	masterCfg := func() hurricane.MasterConfig {
		return hurricane.MasterConfig{
			CloneInterval:    2 * time.Millisecond,
			DisableHeuristic: true,
			SplitInterval:    2 * time.Millisecond,
			SplitFan:         4,
			SplitImbalance:   1.5,
			SplitMinRecords:  8192,
		}
	}
	variants := []struct {
		name     string
		policies func(cfg hurricane.MasterConfig) []hurricane.Policy
	}{
		{"all", func(cfg hurricane.MasterConfig) []hurricane.Policy {
			cfg.SpeculativeCloning = true
			cfg.SpeculativeAfter = 50 * time.Millisecond
			return hurricane.DefaultPolicies(cfg)
		}},
		{"clone-only", func(cfg hurricane.MasterConfig) []hurricane.Policy {
			cfg.DisableSplitting = true
			return hurricane.DefaultPolicies(cfg)
		}},
		{"split-only", func(cfg hurricane.MasterConfig) []hurricane.Policy {
			cfg.DisableCloning = true
			return hurricane.DefaultPolicies(cfg)
		}},
		{"none", func(hurricane.MasterConfig) []hurricane.Policy {
			return []hurricane.Policy{}
		}},
	}

	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(tuples)) * 16)
			for i := 0; i < b.N; i++ {
				cfg := masterCfg()
				cfg.Policies = v.policies(cfg)
				cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
					// Observability stays on (the shipping default) so the
					// recorded numbers include its cost; HURRICANE_NOOBS=1
					// re-runs the ablation with the observer disabled to
					// re-measure that overhead (within run noise, per the
					// A/B recorded in BENCH_policy.json).
					// HURRICANE_NOSPANS=1 disables only the task
					// profiler's span accounting, for the
					// profiler_overhead A/B recorded alongside it.
					// HURRICANE_NOSAMPLER=1 disables only the time-series
					// sampler + watchdogs, for the sampler_overhead A/B.
					DisableObs:     os.Getenv("HURRICANE_NOOBS") != "",
					DisableSpans:   os.Getenv("HURRICANE_NOSPANS") != "",
					DisableSampler: os.Getenv("HURRICANE_NOSAMPLER") != "",
					StorageNodes: 4,
					ComputeNodes: 4,
					SlotsPerNode: 2,
					ChunkSize:    4 << 10,
					Node: hurricane.NodeConfig{
						PollInterval:      time.Millisecond,
						MonitorInterval:   2 * time.Millisecond,
						HeartbeatInterval: 2 * time.Millisecond,
						OverloadThreshold: 0.1,
					},
					Master: cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				if err := apps.LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
					b.Fatal(err)
				}
				app := apps.GroupByApp(parts, true, true, 5000)
				spec := app.BagSpecFor(apps.GroupByShuf)
				spec.SketchEvery, spec.PollEvery = 512, 256
				if err := cluster.Run(ctx, app); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := cluster.Master().Stats()
					b.ReportMetric(float64(st.Clones), "clones")
					b.ReportMetric(float64(st.Splits), "splits")
					b.ReportMetric(float64(st.Isolations), "isolations")
					dumpBenchMetrics(v.name, cluster)
				}
				cluster.Shutdown()
			}
		})
	}
}
