// Package repro's top-level benchmark suite regenerates every table and
// figure of the paper's evaluation (§5). Each benchmark runs the
// corresponding experiment from internal/experiments and reports the
// headline quantity as a custom metric, printing the full table the first
// time it runs. The same rows are available from cmd/hurricane-bench.
//
// Run all of them with:
//
//	go test -bench=. -benchmem ./...
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

var printOnce sync.Map

func printFirst(b *testing.B, key, out string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", out)
	}
}

// BenchmarkTable1 regenerates Table 1: ClickLog runtime over uniform
// inputs from 320 MB to 3.2 TB on the simulated 32-machine cluster.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		printFirst(b, "table1", experiments.FormatTable1(rows))
		b.ReportMetric(rows[len(rows)-1].Runtime, "3.2TB-runtime-s")
	}
}

// BenchmarkTable2 regenerates Table 2: Hurricane vs Spark vs Hadoop on
// uniform ClickLog inputs.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		printFirst(b, "table2", experiments.FormatTable2(rows))
	}
}

// BenchmarkTable3 regenerates Table 3: HashJoin, Hurricane vs Spark, two
// relation-size pairs at s=0 and s=1.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		printFirst(b, "table3", experiments.FormatTable3(rows))
		for _, r := range rows {
			if r.System == "Hurricane" && r.Join == "32GB x 320GB" && r.Skew == 1 {
				b.ReportMetric(r.Runtime, "join-skewed-s")
			}
		}
	}
}

// BenchmarkTable4 regenerates Table 4: PageRank, Hurricane vs GraphX on
// R-MAT graphs of scale 24/27/30.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4()
		printFirst(b, "table4", experiments.FormatTable4(rows))
	}
}

// BenchmarkFigure5 regenerates Figure 5: ClickLog slowdown vs skew across
// input sizes; the reported metric is the worst-case slowdown (paper:
// ≤2.4×).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Figure5()
		printFirst(b, "fig5", experiments.FormatFigure5(cells))
		worst := 0.0
		for _, c := range cells {
			if c.Slowdown > worst {
				worst = c.Slowdown
			}
		}
		b.ReportMetric(worst, "worst-slowdown-x")
	}
}

// BenchmarkFigure6 regenerates Figure 6: the static-partitioning sweep,
// Hurricane vs HurricaneNC against the Amdahl bound.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure6()
		printFirst(b, "fig6", experiments.FormatFigure6(rows))
	}
}

// BenchmarkFigures78 regenerates Figures 7 and 8: the cloning × spreading
// ablation on 8 machines.
func BenchmarkFigures78(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figures78()
		printFirst(b, "fig78", experiments.FormatFigures78(rows))
	}
}

// BenchmarkFigure9 regenerates Figure 9: the throughput-over-time trace
// with the cloning ramp and merge tail (320 GB, s=1).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9()
		printFirst(b, "fig9", experiments.FormatTimeline(
			"Figure 9: ClickLog throughput over time (320GB, s=1, 32 machines)", res))
		b.ReportMetric(float64(res.Clones), "clones")
		b.ReportMetric(res.Runtime, "runtime-s")
	}
}

// BenchmarkFigure10 regenerates Figure 10: the batch sampling factor
// sweep; the metric is the normalized runtime at b=10 (paper: ≈0.67×).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure10()
		printFirst(b, "fig10", experiments.FormatFigure10(rows))
		for _, r := range rows {
			if r.B == 10 {
				b.ReportMetric(r.Normalized, "b10-normalized-x")
			}
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: throughput under compute-node
// and master crashes.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure11()
		printFirst(b, "fig11", experiments.FormatTimeline(
			"Figure 11: throughput with compute-node and master crashes (320GB)", res))
		b.ReportMetric(res.Runtime, "runtime-s")
	}
}

// BenchmarkFigure12 regenerates Figure 12: the three-system skew
// comparison with Spark's OOM crash at 32 GB, s=1.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Figure12()
		printFirst(b, "fig12", experiments.FormatFigure12(cells))
	}
}

// BenchmarkStorageScaling regenerates §5.2's storage scaling experiment
// (330 MB/s → 10.53 GB/s read bandwidth, 31.9× at 32 machines).
func BenchmarkStorageScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.StorageScaling()
		printFirst(b, "scaling", experiments.FormatScaling(rows))
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-32x")
	}
}

// BenchmarkBatchSamplingUtilization evaluates Eq. 1 (ρ(b,m)) at the
// paper's quoted points.
func BenchmarkBatchSamplingUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BatchUtilization(32)
		printFirst(b, "util", experiments.FormatUtilization(rows, 32))
		b.ReportMetric(sim.Utilization(10, 32)*100, "rho-b10-pct")
	}
}

// ---- real-engine benchmarks (laptop scale, actual execution) ----

func engineCluster(b *testing.B) *hurricane.Cluster {
	b.Helper()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    64 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Master: hurricane.MasterConfig{
			PollInterval:  time.Millisecond,
			CloneInterval: 5 * time.Millisecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return cluster
}

// BenchmarkEngineClickLog runs the real ClickLog application end-to-end
// on the embedded engine (not the simulator).
func BenchmarkEngineClickLog(b *testing.B) {
	const regions, hostBits, records = 8, 10, 100000
	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
	ips := gen.Generate(records)
	b.SetBytes(int64(records) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := engineCluster(b)
		ctx := context.Background()
		if err := apps.LoadClickLog(ctx, cluster.Store(), ips); err != nil {
			b.Fatal(err)
		}
		if err := cluster.Run(ctx, apps.ClickLogApp(regions, hostBits, false)); err != nil {
			b.Fatal(err)
		}
		cluster.Shutdown()
	}
}

// BenchmarkEngineHashJoin runs the real hash join end-to-end.
func BenchmarkEngineHashJoin(b *testing.B) {
	const parts = 4
	rg := workload.RelationGen{Keys: 500, S: 0, Seed: 1}
	sg := workload.RelationGen{Keys: 500, S: 1.0, Seed: 2}
	r := rg.Generate(5000)
	s := sg.Generate(50000)
	b.SetBytes(int64(len(r)+len(s)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := engineCluster(b)
		ctx := context.Background()
		if err := apps.LoadRelations(ctx, cluster.Store(), r, s); err != nil {
			b.Fatal(err)
		}
		if err := cluster.Run(ctx, apps.HashJoinApp(parts, false)); err != nil {
			b.Fatal(err)
		}
		cluster.Shutdown()
	}
}

// BenchmarkEnginePageRank runs the real PageRank end-to-end.
func BenchmarkEnginePageRank(b *testing.B) {
	gen := workload.RMATGen{Scale: 9, EdgeFactor: 8, Seed: 7}
	edges := gen.Generate()
	n := gen.NumVertices()
	b.SetBytes(int64(len(edges)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := engineCluster(b)
		ctx := context.Background()
		if err := apps.LoadEdges(ctx, cluster.Store(), edges); err != nil {
			b.Fatal(err)
		}
		if err := cluster.Run(ctx, apps.PageRankApp(n, 2, false)); err != nil {
			b.Fatal(err)
		}
		cluster.Shutdown()
	}
}

// BenchmarkEngineSkewedShuffle compares static hash partitioning against
// skew-aware hot-partition splitting on a Zipf(s=1.3) keyed groupby (the
// acceptance workload for the shuffle subsystem: 4 base partitions, 8
// consumer slots, one key holding ≈a third of the records). Both variants
// run one reducer per physical partition (classic static partitioning:
// the aggregate stage is NoClone, isolating the partitioning axis from
// Hurricane's cloning axis), and the aggregation pays a simulated 5µs
// per-record cost so consumer load dominates end-to-end time. The
// "static" variant pins the 4-partition hash layout, serializing the hot
// partition on one consumer; "skew-aware" lets the master re-hash hot
// partitions and spread heavy-hitter keys at runtime. Baseline numbers
// live in BENCH_shuffle.json.
func BenchmarkEngineSkewedShuffle(b *testing.B) {
	const parts = 4
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 9}
	tuples := gen.Generate(200000)

	run := func(b *testing.B, disableSplitting bool) {
		b.SetBytes(int64(len(tuples)) * 16)
		for i := 0; i < b.N; i++ {
			cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
				StorageNodes: 4,
				ComputeNodes: 4,
				SlotsPerNode: 2,
				ChunkSize:    4 << 10,
				Node: hurricane.NodeConfig{
					PollInterval:      time.Millisecond,
					MonitorInterval:   2 * time.Millisecond,
					HeartbeatInterval: 2 * time.Millisecond,
					OverloadThreshold: 0.1,
				},
				Master: hurricane.MasterConfig{
					PollInterval:     time.Millisecond,
					CloneInterval:    2 * time.Millisecond,
					DisableHeuristic: true, // let the shuffle producers clone freely (both variants)
					DisableSplitting: disableSplitting,
					SplitInterval:    2 * time.Millisecond,
					SplitFan:         4,
					SplitImbalance:   1.5, // the hot partition holds ~42%, 1.7× the 4-partition mean
					SplitMinRecords:  8192,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if err := apps.LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
				b.Fatal(err)
			}
			app := apps.GroupByApp(parts, true, true, 5000)
			spec := app.BagSpecFor(apps.GroupByShuf)
			spec.SketchEvery, spec.PollEvery = 512, 256
			if err := cluster.Run(ctx, app); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				if !disableSplitting {
					st := cluster.Master().Stats()
					b.ReportMetric(float64(st.Splits), "splits")
					b.ReportMetric(float64(st.Isolations), "isolations")
					dumpBenchMetrics("skew_aware", cluster)
				} else {
					dumpBenchMetrics("static", cluster)
				}
			}
			cluster.Shutdown()
		}
	}
	b.Run("static", func(b *testing.B) { run(b, true) })
	b.Run("skew-aware", func(b *testing.B) { run(b, false) })
}

// BenchmarkEngineBagThroughput measures raw bag insert+remove throughput
// through the in-process transport.
func BenchmarkEngineBagThroughput(b *testing.B) {
	cluster := engineCluster(b)
	defer cluster.Shutdown()
	ctx := context.Background()
	store := cluster.Store()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	w := store.Bag(fmt.Sprintf("bench-%d", time.Now().UnixNano()))
	for i := 0; i < b.N; i++ {
		if err := w.Insert(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
}
