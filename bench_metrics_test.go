package repro

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/hurricane"
)

// dumpBenchMetrics prints one variant's engine metrics snapshot — the
// non-zero hurricane_* series from the cluster observer — as a single
// JSON line. When the recorded numbers in BENCH_policy.json and
// BENCH_shuffle.json are regenerated, this line is what gets embedded
// next to each variant, so the documents carry the mitigation activity
// (splits, isolations, clones, bytes shuffled) that produced the times.
func dumpBenchMetrics(variant string, cluster *hurricane.Cluster) {
	snap := map[string]float64{}
	for series, v := range cluster.Observer().Registry().Snapshot() {
		if strings.HasPrefix(series, "hurricane_") && v != 0 {
			snap[series] = v
		}
	}
	data, _ := json.Marshal(snap)
	fmt.Printf("BENCH_METRICS %s %s\n", variant, data)
}
