package sim

import (
	"fmt"

	"repro/internal/workload"
)

// Calibrated per-worker processing rates (bytes of input per second) for
// the simulated applications. Derived from the paper's Figure 9 (a single
// Phase 1 worker sustains ≈300 MB/s of aggregate I/O ≈ 200 MB/s of input)
// and Table 1's memory-mode rows.
const (
	// ClickLogPhase1Rate: text parsing + geolocation per worker.
	ClickLogPhase1Rate = 250e6
	// ClickLogPhase2Rate: binary IP scan + bitset set per worker.
	ClickLogPhase2Rate = 50e6
	// ClickLogPhase1OutRatio: binary IPs are smaller than text lines.
	ClickLogPhase1OutRatio = 0.5
	// ClickLogPhase2OutRatio: each worker's distinct-set partial output
	// relative to its input share (calibrated against the merge overhead
	// the paper reports for the 10 GB/machine skewed run).
	ClickLogPhase2OutRatio = 0.075
	// ClickLogBitsetBytes: the compact per-region distinct structure that
	// Phase 3 reads.
	ClickLogBitsetBytes = 8e6
	// JoinRate: hash build/probe per worker (calibrated so the uniform
	// 32GB⋈320GB join lands at the paper's 519 s).
	JoinRate = 30e6
	// PageRankRate: edge scatter/gather per worker (calibrated against
	// Table 4's RMAT-27 row; JVM graph processing moves a few MB/s of
	// edge data per core).
	PageRankRate = 30e6
)

// ClickLogParams parameterizes a simulated ClickLog job (§5.1).
type ClickLogParams struct {
	// TotalInput is the click log size in bytes.
	TotalInput float64
	// Skew is the zipf parameter s ∈ [0, 1].
	Skew float64
	// Regions is the number of geographic regions (paper model: 64).
	Regions int
	// Partitions statically splits the Phase 2 key range into this many
	// tasks (Fig. 6); 0 means one task per region.
	Partitions int
	// Phase1Partitions statically splits the Phase 1 scan into this many
	// tasks. Hurricane leaves it at 0 (a single task that clones on
	// demand); HurricaneNC and the baselines split it so every node gets
	// work (the paper splits "the Phase 1 input into equal-sized
	// partitions such that each compute node is assigned at least one
	// partition").
	Phase1Partitions int
}

func (p *ClickLogParams) regions() int {
	if p.Regions <= 0 {
		return workload.DefaultRegions
	}
	return p.Regions
}

// ClickLogJob builds the simulated three-phase ClickLog job: Phase 1 maps
// the log into region bags (cloneable, concat outputs), Phase 2 computes
// per-region distinct bitsets (cloneable with an O(k·bitset) merge),
// Phase 3 counts bits (tiny).
func ClickLogJob(p ClickLogParams) Job {
	weights := partitionWeights(p.regions(), p.Skew, p.Partitions)
	var job Job
	p1 := p.Phase1Partitions
	if p1 <= 0 {
		p1 = 1
	}
	for i := 0; i < p1; i++ {
		job.Tasks = append(job.Tasks, Task{
			Name:        fmt.Sprintf("phase1.%d", i),
			Phase:       1,
			InputBytes:  p.TotalInput / float64(p1),
			OutputRatio: ClickLogPhase1OutRatio,
			CPURate:     ClickLogPhase1Rate,
			Cloneable:   true,
		})
	}
	phase2Input := p.TotalInput * ClickLogPhase1OutRatio
	for i, w := range weights {
		job.Tasks = append(job.Tasks, Task{
			Name:        fmt.Sprintf("phase2.%d", i),
			Phase:       2,
			InputBytes:  phase2Input * w,
			OutputRatio: ClickLogPhase2OutRatio,
			CPURate:     ClickLogPhase2Rate,
			Mergeable:   true,
			Cloneable:   true,
			Home:        i, // remapped modulo machine count by local-mode experiments
		})
	}
	for i := range weights {
		job.Tasks = append(job.Tasks, Task{
			Name:       fmt.Sprintf("phase3.%d", i),
			Phase:      3,
			InputBytes: ClickLogBitsetBytes,
			CPURate:    2 * ClickLogPhase2Rate,
			Cloneable:  false,
		})
	}
	return job
}

// partitionWeights computes per-task input fractions: region weights are
// zipf(s); with P > regions the key range is subdivided (each region's
// keys split uniformly across P/regions sub-partitions); with P < regions
// adjacent regions merge. P = 0 returns per-region weights.
func partitionWeights(regions int, s float64, partitions int) []float64 {
	rw := workload.RegionWeights(regions, s)
	if partitions <= 0 || partitions == regions {
		return rw
	}
	if partitions > regions {
		sub := partitions / regions
		if sub < 1 {
			sub = 1
		}
		out := make([]float64, 0, regions*sub)
		for _, w := range rw {
			for j := 0; j < sub; j++ {
				out = append(out, w/float64(sub))
			}
		}
		return out
	}
	// Fewer partitions than regions: group adjacent regions.
	group := (regions + partitions - 1) / partitions
	out := make([]float64, 0, partitions)
	for i := 0; i < regions; i += group {
		end := i + group
		if end > regions {
			end = regions
		}
		var sum float64
		for _, w := range rw[i:end] {
			sum += w
		}
		out = append(out, sum)
	}
	return out
}

// LargestPartitionFraction exposes the biggest partition's share, the
// serial fraction in the paper's Amdahl bound for Fig. 6.
func LargestPartitionFraction(regions int, s float64, partitions int) float64 {
	w := partitionWeights(regions, s, partitions)
	max := 0.0
	for _, x := range w {
		if x > max {
			max = x
		}
	}
	return max
}

// HashJoinParams parameterizes a simulated hash join (Table 3).
type HashJoinParams struct {
	// BuildBytes is the smaller relation's size.
	BuildBytes float64
	// ProbeBytes is the larger relation's size.
	ProbeBytes float64
	// Skew is the zipf parameter of the build-side key popularity, which
	// inflates some partitions' probe hit rates.
	Skew float64
	// Partitions is the static partition count (paper: 32).
	Partitions int
	// Phase1Partitions statically splits the two partitioning scans
	// (baselines; Hurricane relies on cloning instead).
	Phase1Partitions int
}

// HashJoinJob builds the simulated join: Phase 1 partitions both
// relations, Phase 2 runs one build+probe task per partition. Skew makes
// some partitions' probe work much larger (higher hit rate ⇒ more output).
func HashJoinJob(p HashJoinParams) Job {
	parts := p.Partitions
	if parts <= 0 {
		parts = 32
	}
	weights := workload.RegionWeights(parts, p.Skew)
	var job Job
	p1 := p.Phase1Partitions
	if p1 <= 0 {
		p1 = 1
	}
	for i := 0; i < p1; i++ {
		job.Tasks = append(job.Tasks,
			Task{
				Name: fmt.Sprintf("partitionR.%d", i), Phase: 1,
				InputBytes: p.BuildBytes / float64(p1), OutputRatio: 1,
				CPURate: JoinRate, Cloneable: true,
			},
			Task{
				Name: fmt.Sprintf("partitionS.%d", i), Phase: 1,
				InputBytes: p.ProbeBytes / float64(p1), OutputRatio: 1,
				CPURate: JoinRate, Cloneable: true,
			})
	}
	for i, w := range weights {
		// Join work concentrates on hot keys: tuples matching a popular
		// build key all land in one partition, so that partition's probe
		// volume and output volume scale with the key's weight ("skew in
		// the first (smaller) relation, causing a much larger hit rate
		// for some keys", §5.3).
		probeIn := p.ProbeBytes * w
		hitAmplify := w * float64(parts) // 1.0 at uniform
		job.Tasks = append(job.Tasks, Task{
			Name:        fmt.Sprintf("join.%d", i),
			Phase:       2,
			InputBytes:  probeIn,
			OutputRatio: hitAmplify,
			CPURate:     JoinRate / (0.5 + 0.5*hitAmplify),
			Cloneable:   true,
		})
	}
	return job
}

// PageRankParams parameterizes a simulated PageRank run (Table 4).
type PageRankParams struct {
	// EdgeBytes is the edge list size (16 bytes per edge).
	EdgeBytes float64
	// VertexBytes is the rank vector size.
	VertexBytes float64
	// Iterations is the number of PageRank iterations (paper: 5).
	Iterations int
	// DegreeSkew is the effective skew of per-partition edge counts
	// induced by the power-law degree distribution.
	DegreeSkew float64
	// InitPartitions statically splits the init scan (baselines).
	InitPartitions int
}

// PageRankJob builds the simulated multi-stage PageRank: per iteration, a
// cloneable scatter over the edge list (skewed by high-degree vertices)
// and a cloneable gather with merge over contributions.
func PageRankJob(p PageRankParams) Job {
	var job Job
	phase := 1
	initParts := p.InitPartitions
	if initParts <= 0 {
		initParts = 1
	}
	for i := 0; i < initParts; i++ {
		job.Tasks = append(job.Tasks, Task{
			Name: fmt.Sprintf("init.%d", i), Phase: phase,
			InputBytes: p.EdgeBytes / float64(initParts), OutputRatio: 1 + p.VertexBytes/p.EdgeBytes,
			CPURate: PageRankRate, Cloneable: true,
		})
	}
	parts := 64
	weights := workload.RegionWeights(parts, p.DegreeSkew)
	for it := 1; it <= p.Iterations; it++ {
		phase++
		for i, w := range weights {
			job.Tasks = append(job.Tasks, Task{
				Name:       fmt.Sprintf("scatter.%d.%d", it, i),
				Phase:      phase,
				InputBytes: p.EdgeBytes * w,
				// contributions + edge copy for the next iteration
				OutputRatio: 1.5,
				CPURate:     PageRankRate,
				Cloneable:   true,
			})
		}
		phase++
		// Gather: contributions bucketed by destination vertex range,
		// one bag/task per bucket; high in-degree vertices make some
		// buckets much heavier (the paper: "significant task cloning
		// ... particularly for partitions with high-degree vertices").
		for i, w := range weights {
			job.Tasks = append(job.Tasks, Task{
				Name:        fmt.Sprintf("gather.%d.%d", it, i),
				Phase:       phase,
				InputBytes:  p.EdgeBytes * 0.5 * w, // contribution records
				OutputRatio: p.VertexBytes / (p.EdgeBytes*0.5 + 1),
				CPURate:     PageRankRate,
				Mergeable:   true,
				Cloneable:   true,
			})
		}
	}
	return job
}
