package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// TestUtilizationMatchesPaper: Eq. 1 at the b values the paper quotes:
// ≥63% at b=1, 86% at b=2, 95% at b=3, >99% at b=10.
func TestUtilizationMatchesPaper(t *testing.T) {
	cases := []struct {
		b    int
		want float64
	}{{1, 0.63}, {2, 0.86}, {3, 0.95}, {10, 0.99}}
	for _, c := range cases {
		got := Utilization(c.b, 32)
		if got < c.want {
			t.Errorf("rho(%d,32) = %.3f, want >= %.2f", c.b, got, c.want)
		}
	}
	// The paper: "over 99% utilization even for thousands of storage
	// nodes" at b=10.
	if Utilization(10, 4096) < 0.99 {
		t.Errorf("rho(10,4096) = %.4f", Utilization(10, 4096))
	}
	if Utilization(0, 32) != 0 || Utilization(1, 0) != 0 {
		t.Error("degenerate utilization must be 0")
	}
}

func TestUtilizationMonotonicQuick(t *testing.T) {
	f := func(bRaw, mRaw uint8) bool {
		b := int(bRaw%16) + 1
		m := int(mRaw%64) + 1
		u1 := Utilization(b, m)
		u2 := Utilization(b+1, m)
		return u1 > 0 && u1 <= 1 && u2 >= u1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaterFillConservesAndCaps(t *testing.T) {
	entries := []demandEntry{
		{ioDem: 100}, {ioDem: 50}, {ioDem: 10},
	}
	waterFill(entries, 100)
	var sum float64
	for _, e := range entries {
		if e.ioGot > e.ioDem+1e-9 {
			t.Fatalf("entry granted %f > demand %f", e.ioGot, e.ioDem)
		}
		sum += e.ioGot
	}
	if sum > 100+1e-6 {
		t.Fatalf("granted %f > pool 100", sum)
	}
	// Proportional sharing: grants are proportional to demand when the
	// pool is oversubscribed (100:50:10 demand on a pool of 100).
	if math.Abs(entries[0].ioGot-62.5) > 0.1 || math.Abs(entries[2].ioGot-6.25) > 0.1 {
		t.Fatalf("grants not proportional: %+v", entries)
	}
}

func TestWaterFillSurplus(t *testing.T) {
	entries := []demandEntry{{ioDem: 10}, {ioDem: 20}}
	waterFill(entries, 1000)
	if entries[0].ioGot != 10 || entries[1].ioGot != 20 {
		t.Fatalf("surplus pool must satisfy all: %+v", entries)
	}
}

func TestWaterFillQuick(t *testing.T) {
	f := func(demRaw []uint16, poolRaw uint16) bool {
		if len(demRaw) == 0 {
			return true
		}
		if len(demRaw) > 32 {
			demRaw = demRaw[:32]
		}
		entries := make([]demandEntry, len(demRaw))
		var total float64
		for i, d := range demRaw {
			entries[i].ioDem = float64(d)
			total += float64(d)
		}
		pool := float64(poolRaw)
		waterFill(entries, pool)
		var granted float64
		for _, e := range entries {
			if e.ioGot < -1e-9 || e.ioGot > e.ioDem+1e-6 {
				return false
			}
			granted += e.ioGot
		}
		// Work-conserving: grant min(pool, total demand) up to epsilon.
		want := math.Min(pool, total)
		return granted <= want+1e-3 && granted >= want*0.999-1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTaskRuntime(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	cfg.Cloning = false
	cfg.PerTaskOverhead = 0
	// One CPU-bound task: runtime = input / rate.
	job := Job{Tasks: []Task{{
		Name: "t", Phase: 1, InputBytes: 1e9, CPURate: 100e6, Cloneable: false,
	}}}
	res := Run(cfg, job)
	if math.Abs(res.Runtime-10) > 0.5 {
		t.Fatalf("runtime %.2f, want ~10s", res.Runtime)
	}
}

func TestCloningSpeedsUpSkewedJob(t *testing.T) {
	mk := func(cloning bool) Result {
		cfg := Default()
		cfg.Cloning = cloning
		cfg.Startup = 0
		// One huge task plus many small tasks (skew).
		job := Job{}
		job.Tasks = append(job.Tasks, Task{
			Name: "big", Phase: 1, InputBytes: 64e9, CPURate: 100e6, Cloneable: true,
		})
		for i := 0; i < 16; i++ {
			job.Tasks = append(job.Tasks, Task{
				Name: "small", Phase: 1, InputBytes: 1e9, CPURate: 100e6, Cloneable: true,
			})
		}
		return Run(cfg, job)
	}
	with := mk(true)
	without := mk(false)
	if with.Clones == 0 {
		t.Fatal("expected clones")
	}
	if with.Runtime >= without.Runtime {
		t.Fatalf("cloning did not help: %.1fs vs %.1fs", with.Runtime, without.Runtime)
	}
	if without.Runtime/with.Runtime < 2 {
		t.Errorf("cloning speedup only %.2fx on 64x skew", without.Runtime/with.Runtime)
	}
}

func TestCloningStopsAtStorageBound(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	// A task whose per-worker CPU rate is high: a few workers saturate
	// the disk pool, so cloning must stop well short of all slots.
	job := Job{Tasks: []Task{{
		Name: "io", Phase: 1, InputBytes: 500e9, OutputRatio: 1,
		CPURate: 1e9, Cloneable: true,
	}}}
	res := Run(cfg, job)
	pool := cfg.DiskBW * cfg.DiskEfficiency * float64(cfg.Machines)
	maxUseful := int(pool/(1e9*2)) + 2
	if res.MaxWorkers["io"] > maxUseful+2 {
		t.Errorf("cloned to %d workers; storage supports ~%d", res.MaxWorkers["io"], maxUseful)
	}
}

func TestMergeOnlyWhenCloned(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	cfg.Cloning = false
	job := Job{Tasks: []Task{{
		Name: "m", Phase: 1, InputBytes: 1e9, CPURate: 100e6,
		Mergeable: true, Cloneable: true,
	}}}
	res := Run(cfg, job)
	if res.MergeTime > 0 {
		t.Fatalf("uncloned mergeable task must not merge (%.1fs)", res.MergeTime)
	}
}

func TestPhaseBarriers(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	cfg.Cloning = false
	job := Job{Tasks: []Task{
		{Name: "p1", Phase: 1, InputBytes: 1e9, CPURate: 100e6},
		{Name: "p2", Phase: 2, InputBytes: 2e9, CPURate: 100e6},
	}}
	res := Run(cfg, job)
	if res.PhaseRuntime[1] < 9 || res.PhaseRuntime[2] < 18 {
		t.Fatalf("phase runtimes %.1f/%.1f, want ~10/~20",
			res.PhaseRuntime[1], res.PhaseRuntime[2])
	}
	if math.Abs(res.Runtime-(res.PhaseRuntime[1]+res.PhaseRuntime[2])) > 1 {
		t.Fatalf("phases must run sequentially: %.1f vs %.1f+%.1f",
			res.Runtime, res.PhaseRuntime[1], res.PhaseRuntime[2])
	}
}

func TestComputeCrashRestartsTask(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	cfg.Cloning = false
	job := Job{Tasks: []Task{{
		Name: "t", Phase: 1, InputBytes: 10e9, CPURate: 100e6,
	}}}
	clean := Run(cfg, job)
	crashed := Run(cfg, job, CrashEvent{Time: clean.Runtime / 2, Machine: 0})
	// The restarted task loses its progress, so the crashed run is
	// roughly half a task longer... unless the task was placed on a
	// different machine. Either way it must not be faster.
	if crashed.Runtime < clean.Runtime-1 {
		t.Fatalf("crash made the job faster: %.1f vs %.1f", crashed.Runtime, clean.Runtime)
	}
}

func TestMasterCrashPausesCloning(t *testing.T) {
	cfg := Default()
	cfg.Startup = 0
	job := Job{Tasks: []Task{{
		Name: "big", Phase: 1, InputBytes: 100e9, CPURate: 100e6, Cloneable: true,
	}}}
	clean := Run(cfg, job)
	paused := Run(cfg, job, CrashEvent{Time: 2, Machine: -1, MasterOutage: 10})
	if paused.Runtime < clean.Runtime-1 {
		t.Fatalf("master outage sped up the job: %.1f vs %.1f", paused.Runtime, clean.Runtime)
	}
}

func TestLocalVsSpreadPlacement(t *testing.T) {
	// With data local to one machine, that machine's disk bounds the
	// whole job; spreading lifts the bound.
	mk := func(spread bool) Result {
		cfg := Default()
		cfg.Machines = 8
		cfg.Startup = 0
		cfg.Cloning = false
		cfg.MemoryPerMachine = 1 // force disk mode
		job := Job{Tasks: []Task{{
			Name: "t", Phase: 1, InputBytes: 80e9, CPURate: 1e9, Home: 0,
		}}}
		cfg.SpreadData = spread
		return Run(cfg, job)
	}
	local := mk(false)
	spread := mk(true)
	if spread.Runtime >= local.Runtime {
		t.Fatalf("spreading not faster: %.1f vs %.1f", spread.Runtime, local.Runtime)
	}
}

func TestClickLogJobShape(t *testing.T) {
	job := ClickLogJob(ClickLogParams{TotalInput: 32e9, Skew: 1})
	var p1, p2, p3 int
	var p2Bytes float64
	for _, task := range job.Tasks {
		switch task.Phase {
		case 1:
			p1++
		case 2:
			p2++
			p2Bytes += task.InputBytes
		case 3:
			p3++
		}
	}
	if p1 != 1 || p2 != 64 || p3 != 64 {
		t.Fatalf("task counts %d/%d/%d", p1, p2, p3)
	}
	if math.Abs(p2Bytes-32e9*ClickLogPhase1OutRatio) > 1e6 {
		t.Fatalf("phase 2 input %.0f", p2Bytes)
	}
}

func TestPartitionWeights(t *testing.T) {
	// Subdividing regions preserves total mass and reduces the largest
	// partition proportionally.
	base := LargestPartitionFraction(64, 1.0, 64)
	fine := LargestPartitionFraction(64, 1.0, 4096)
	if math.Abs(fine-base/64) > 1e-9 {
		t.Fatalf("4096 partitions: largest %.5f, want %.5f", fine, base/64)
	}
	coarse := partitionWeights(64, 1.0, 32)
	if len(coarse) != 32 {
		t.Fatalf("32 partitions produced %d", len(coarse))
	}
	var sum float64
	for _, w := range coarse {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("coarse weights sum %.5f", sum)
	}
}

func TestHashJoinJobSkewConcentrates(t *testing.T) {
	uniform := HashJoinJob(HashJoinParams{BuildBytes: 1e9, ProbeBytes: 10e9, Skew: 0, Partitions: 32})
	skewed := HashJoinJob(HashJoinParams{BuildBytes: 1e9, ProbeBytes: 10e9, Skew: 1, Partitions: 32})
	maxIn := func(j Job) float64 {
		max := 0.0
		for _, t := range j.Tasks {
			if t.Phase == 2 && t.InputBytes > max {
				max = t.InputBytes
			}
		}
		return max
	}
	if maxIn(skewed) < 5*maxIn(uniform) {
		t.Fatalf("skewed hot partition %.2e vs uniform %.2e", maxIn(skewed), maxIn(uniform))
	}
}

func TestMemoryVsDiskMode(t *testing.T) {
	small := Run(Default(), ClickLogJob(ClickLogParams{TotalInput: 1e9}))
	big := Run(Default(), ClickLogJob(ClickLogParams{TotalInput: 320e9}))
	// The disk-mode run must be far slower than memory-mode per byte.
	perByteSmall := small.Runtime / 1e9
	perByteBig := big.Runtime / 320e9
	if perByteBig < perByteSmall {
		t.Skipf("startup dominates; small %.2e big %.2e", perByteSmall, perByteBig)
	}
}

func TestTimelineSampled(t *testing.T) {
	res := Run(Default(), ClickLogJob(ClickLogParams{TotalInput: 320e9}))
	if len(res.Timeline) < 10 {
		t.Fatalf("timeline has %d samples", len(res.Timeline))
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Time <= res.Timeline[i-1].Time {
			t.Fatal("timeline not monotonic")
		}
	}
}
