package sim

import "testing"

// TestGCDesyncAmplifiesMergeAtScale: the 100 GB/machine desynchronized-GC
// derating (§5.1) applies to merge work only above the threshold.
func TestGCDesyncAmplifiesMergeAtScale(t *testing.T) {
	mk := func(total float64) Result {
		cfg := Default()
		cfg.Startup = 0
		job := Job{Tasks: []Task{{
			Name: "m", Phase: 1, InputBytes: total,
			OutputRatio: 0.1, CPURate: 200e6,
			Mergeable: true, Cloneable: true,
		}}}
		return Run(cfg, job)
	}
	small := mk(32e9)   // 1 GB/machine: below the GC threshold
	large := mk(3.2e12) // 100 GB/machine: above it
	if small.Clones == 0 || large.Clones == 0 {
		t.Skip("no clones, merge never exercised")
	}
	// Merge work per byte must be larger at scale (the ×(1+factor)).
	smallPerByte := small.MergeTime / 32e9
	largePerByte := large.MergeTime / 3.2e12
	if largePerByte <= smallPerByte {
		t.Errorf("GC desync missing: merge %.3g s/B at 100GB vs %.3g s/B at 1GB",
			largePerByte, smallPerByte)
	}
}

// TestMemoryModeBoundary: the memory/disk mode switch tracks the
// per-machine input share.
func TestMemoryModeBoundary(t *testing.T) {
	cfg := Default()
	inMem := newSim(cfg, Job{Tasks: []Task{{Name: "t", Phase: 1, InputBytes: 32e9, CPURate: 1e9}}}, nil)
	if !inMem.memMode {
		t.Error("1 GB/machine must run from memory")
	}
	onDisk := newSim(cfg, Job{Tasks: []Task{{Name: "t", Phase: 1, InputBytes: 320e9, CPURate: 1e9}}}, nil)
	if onDisk.memMode {
		t.Error("10 GB/machine must run from disk")
	}
	// The disk pool is far smaller than the memory pool.
	if onDisk.pool() >= inMem.pool() {
		t.Errorf("disk pool %.2e >= memory pool %.2e", onDisk.pool(), inMem.pool())
	}
}

// TestOvercommitPenaltyShape: no penalty through b=16, mild beyond.
func TestOvercommitPenaltyShape(t *testing.T) {
	if overcommitPenalty(10) != 1 || overcommitPenalty(16) != 1 {
		t.Error("penalty must be 1 through b=16")
	}
	p32 := overcommitPenalty(32)
	if p32 >= 1 || p32 < 0.5 {
		t.Errorf("b=32 penalty %.2f out of the mild range", p32)
	}
}
