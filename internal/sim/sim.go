// Package sim is a discrete-time cluster simulator used to regenerate the
// paper's evaluation (§5) at its original scale — 32 machines, terabyte
// inputs — which no laptop can run for real. The real Hurricane engine in
// internal/core executes the same mechanisms at laptop scale; the
// simulator reproduces the published numbers' *shape* by modelling the
// resources those mechanisms contend for:
//
//   - per-machine disk bandwidth (330 MB/s RAID, as measured by the paper
//     with fio), shared by reads and writes;
//   - memory-mode bandwidth for inputs that fit in page cache;
//   - per-machine worker slots and per-worker CPU processing rates;
//   - batch-sampling storage utilization ρ(b,m) = 1 − (1 − 1/m)^{bm};
//   - data placement: spread (all disks serve all tasks) or local (a
//     task's input lives on one machine's disk);
//   - Hurricane's cloning policy: overload detection on CPU-bound
//     workers, 2-second clone cadence, and the Eq. 2 heuristic
//     T > (k+1)·T_IO;
//   - merge work proportional to clone count;
//   - compute-node and master crash events (Fig. 11).
//
// Time advances in fixed steps (default 50 ms of virtual time); each step
// water-fills storage bandwidth across tasks and advances progress at
// min(CPU demand, granted I/O).
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Config describes the simulated cluster. All rates are bytes/second, all
// times seconds.
type Config struct {
	// Machines is the cluster size (paper: 32).
	Machines int
	// SlotsPerMachine is the number of concurrent workers per machine.
	SlotsPerMachine int
	// DiskBW is per-machine disk bandwidth (paper: 330 MB/s).
	DiskBW float64
	// DiskEfficiency derates the aggregate disk pool for seeks, GC
	// pauses, and framework overhead (calibrated to 0.80 against the
	// paper's Table 1 320 GB row).
	DiskEfficiency float64
	// MemBW is per-machine effective bandwidth when the input fits in
	// memory (page cache).
	MemBW float64
	// NetBW is per-machine NIC bandwidth (40 GigE = 5 GB/s); with
	// spreading, all I/O crosses the network, so each machine's traffic
	// is capped by min(disk pool share, NetBW).
	NetBW float64
	// MemoryPerMachine is the page-cache capacity that decides memory
	// mode (paper machines: 128 GB).
	MemoryPerMachine float64
	// Startup is the fixed job startup overhead (master + task manager
	// launch; calibrated ≈ 5 s against Table 1's 320 MB row).
	Startup float64
	// CloneInterval is the clone-message cadence (paper: 2 s).
	CloneInterval float64
	// BatchFactor is the batch-sampling factor b (paper default 10).
	BatchFactor int
	// Cloning enables task cloning (false = HurricaneNC).
	Cloning bool
	// SpreadData spreads every bag across all machines' disks; false
	// places each task's data on a single home machine (Fig. 7/8
	// ablation configurations).
	SpreadData bool
	// PerTaskOverhead is fixed scheduling cost per task (drives the
	// small-partition overhead visible in Fig. 6 at 4096 partitions).
	PerTaskOverhead float64
	// GCDesyncMergeFactor multiplies merge work when the per-machine
	// input reaches GCDesyncThreshold: the paper attributes half of the
	// 100 GB/machine skew overhead to desynchronized JVM garbage
	// collection pauses at storage nodes during the clone/merge-heavy
	// endgame (§5.1). Default 1 (merge effectively 2× slower).
	GCDesyncMergeFactor float64
	// GCDesyncThreshold is the per-machine input size (bytes) above
	// which GC desync bites. Default 80 GB.
	GCDesyncThreshold float64
	// Dt is the simulation time step.
	Dt float64
	// MaxTime aborts runaway simulations.
	MaxTime float64
}

// Default returns the paper's cluster configuration.
func Default() Config {
	return Config{
		Machines:         32,
		SlotsPerMachine:  2,
		DiskBW:           330e6,
		DiskEfficiency:   0.80,
		MemBW:            3e9,
		NetBW:            5e9,
		MemoryPerMachine: 100e9, // leave headroom below 128 GB for the heap
		Startup:          5.0,
		CloneInterval:    2.0,
		BatchFactor:      10,
		Cloning:          true,
		SpreadData:       true,
		PerTaskOverhead:  0.03,
		Dt:               0.05,
		MaxTime:          48 * 3600,

		GCDesyncMergeFactor: 1,
		GCDesyncThreshold:   80e9,
	}
}

// Utilization is Eq. 1: the expected storage-node utilization under batch
// sampling with b outstanding requests per compute node and m storage
// nodes: ρ(b,m) = 1 − (1 − 1/m)^{bm}.
func Utilization(b, m int) float64 {
	if b <= 0 || m <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1.0/float64(m), float64(b*m))
}

// overcommitPenalty models the fairness loss the paper observes at very
// large batch factors ("prefetching too many chunks (b=32) is undesirable
// since it risks overwhelming storage nodes and could lead to
// unfairness", Fig. 10): beyond b=16 the effective pool degrades mildly.
func overcommitPenalty(b int) float64 {
	if b <= 16 {
		return 1
	}
	return 1 / (1 + 0.001*float64(b-16)*float64(b-16))
}

// Task describes one simulated task.
type Task struct {
	// Name identifies the task in results.
	Name string
	// Phase groups tasks into sequential phases (barriers between
	// phases, matching the master's schedule-on-seal execution model).
	Phase int
	// InputBytes is the data the task must consume.
	InputBytes float64
	// OutputRatio is output bytes produced per input byte.
	OutputRatio float64
	// CPURate is one worker's processing rate when CPU-bound.
	CPURate float64
	// Mergeable tasks need a merge pass over clone partials when cloned.
	Mergeable bool
	// MergePartialBytes is the size of ONE clone's partial output for
	// merge-cost purposes (e.g. a dense bitset: every clone emits a
	// full-size bitset, so merge I/O grows linearly with clone count).
	// Zero means partials sum to the task's output (concat-like).
	MergePartialBytes float64
	// Cloneable tasks may be cloned (subject to Config.Cloning).
	Cloneable bool
	// Home is the machine index holding the task's data when
	// SpreadData is false.
	Home int
}

// Job is a set of tasks grouped into phases.
type Job struct {
	Tasks []Task
}

// CrashEvent injects a failure at a point in virtual time (Fig. 11).
type CrashEvent struct {
	// Time is when the crash occurs (seconds after job start).
	Time float64
	// Machine is the compute node to crash (-1 = crash the master).
	Machine int
	// MasterOutage is how long a master crash pauses scheduling and
	// cloning (paper: recovery < 1 s).
	MasterOutage float64
}

// Sample is one point of the aggregate-throughput timeline.
type Sample struct {
	Time       float64
	Throughput float64 // total I/O bytes/s across the cluster
	Workers    int     // active workers
}

// Result summarizes a simulation run.
type Result struct {
	// Runtime is the total job wall time (including startup).
	Runtime float64
	// PhaseRuntime maps phase index to its duration.
	PhaseRuntime map[int]float64
	// Timeline samples aggregate throughput once per virtual second.
	Timeline []Sample
	// Clones is the total number of clones created.
	Clones int
	// MaxWorkers records the peak concurrent workers per task.
	MaxWorkers map[string]int
	// MergeTime is total time spent in merge work.
	MergeTime float64
	// Crashed is set if the job could not finish (baseline models use
	// this for OOM kills; Hurricane itself always finishes).
	Crashed bool
	// CrashReason explains a crash.
	CrashReason string
}

// taskRun is the mutable state of one task during simulation.
type taskRun struct {
	t         *Task
	remaining float64
	workers   []int // machine index per worker
	done      bool
	merging   bool
	mergeLeft float64
	started   bool
	lastClone float64
	peak      int
	cpuBound  bool // last step: got all the I/O it wanted
}

// Run simulates the job and returns its result.
func Run(cfg Config, job Job, crashes ...CrashEvent) Result {
	s := newSim(cfg, job, crashes)
	return s.run()
}

type sim struct {
	cfg     Config
	runs    []*taskRun
	phases  []int
	crashes []CrashEvent

	slotsUsed []int // per machine
	dead      []bool
	now       float64
	memMode   bool
	gcDesync  bool // per-machine input large enough for GC desync

	masterDownUntil float64

	res Result
}

func newSim(cfg Config, job Job, crashes []CrashEvent) *sim {
	s := &sim{cfg: cfg, crashes: append([]CrashEvent(nil), crashes...)}
	sort.Slice(s.crashes, func(i, j int) bool { return s.crashes[i].Time < s.crashes[j].Time })
	phaseSet := map[int]bool{}
	var totalInput float64
	for i := range job.Tasks {
		t := &job.Tasks[i]
		s.runs = append(s.runs, &taskRun{t: t, remaining: t.InputBytes})
		phaseSet[t.Phase] = true
		if t.Phase == minPhase(job.Tasks) {
			totalInput += t.InputBytes
		}
	}
	for p := range phaseSet {
		s.phases = append(s.phases, p)
	}
	sort.Ints(s.phases)
	s.slotsUsed = make([]int, cfg.Machines)
	s.dead = make([]bool, cfg.Machines)
	perMachine := totalInput / float64(cfg.Machines)
	s.memMode = perMachine <= cfg.MemoryPerMachine*0.02
	s.gcDesync = cfg.GCDesyncThreshold > 0 && perMachine >= cfg.GCDesyncThreshold
	// Memory mode applies when the per-machine share of the input is
	// small enough to live in page cache alongside intermediates: the
	// paper's 10 MB–1 GB/machine runs execute "from memory"; the
	// 10 GB/machine runs execute "from disk". 2% of 100 GB = 2 GB.
	s.res.PhaseRuntime = make(map[int]float64)
	s.res.MaxWorkers = make(map[string]int)
	return s
}

func minPhase(tasks []Task) int {
	m := math.MaxInt
	for i := range tasks {
		if tasks[i].Phase < m {
			m = tasks[i].Phase
		}
	}
	return m
}

// pool returns the aggregate storage bandwidth available this step in
// spread mode.
func (s *sim) pool() float64 {
	per := s.cfg.DiskBW * s.cfg.DiskEfficiency
	if s.memMode {
		per = s.cfg.MemBW
	}
	rho := Utilization(s.cfg.BatchFactor, s.cfg.Machines) * overcommitPenalty(s.cfg.BatchFactor)
	agg := per * float64(s.cfg.Machines) * rho
	// NIC ceiling: with spreading, effectively all I/O is remote.
	nicCap := s.cfg.NetBW * float64(s.cfg.Machines)
	return math.Min(agg, nicCap)
}

// perMachinePool returns one machine's storage bandwidth in local mode.
func (s *sim) perMachinePool() float64 {
	per := s.cfg.DiskBW * s.cfg.DiskEfficiency
	if s.memMode {
		per = s.cfg.MemBW
	}
	return per
}

func (s *sim) freeSlots() int {
	free := 0
	for m, used := range s.slotsUsed {
		free += s.slotAt(m) - used
	}
	return free
}

func (s *sim) slotAt(machine int) int {
	if machine < 0 || s.dead[machine] {
		return 0
	}
	return s.cfg.SlotsPerMachine
}

// placeWorker finds a machine with a free slot (most-free first) and
// assigns one worker there.
func (s *sim) placeWorker(r *taskRun) bool {
	best, bestFree := -1, 0
	for m := 0; m < s.cfg.Machines; m++ {
		if s.dead[m] {
			continue
		}
		free := s.slotAt(m) - s.slotsUsed[m]
		if free > bestFree {
			best, bestFree = m, free
		}
	}
	if best < 0 {
		return false
	}
	s.slotsUsed[best]++
	r.workers = append(r.workers, best)
	if len(r.workers) > r.peak {
		r.peak = len(r.workers)
	}
	return true
}

func (s *sim) releaseWorkers(r *taskRun) {
	for _, m := range r.workers {
		s.slotsUsed[m]--
	}
	r.workers = nil
}

// ioPerByte is the storage traffic (read + write) per input byte consumed.
func ioPerByte(t *Task) float64 { return 1 + t.OutputRatio }

func (s *sim) run() Result {
	s.now = s.cfg.Startup
	crashIdx := 0
	lastSample := -1.0

	for _, phase := range s.phases {
		phaseStart := s.now
		active := s.phaseTasks(phase)
		// Schedule initial workers: one per task, in descending input
		// order, as slots allow; leftover tasks queue.
		sort.Slice(active, func(i, j int) bool {
			return active[i].remaining > active[j].remaining
		})
		queue := []*taskRun{}
		for _, r := range active {
			r.started = true
			r.lastClone = s.now
			if !s.placeWorker(r) {
				queue = append(queue, r)
				r.started = false
			}
			s.now += 0 // scheduling cost applied once below
		}
		s.now += s.cfg.PerTaskOverhead * float64(len(active)) / float64(s.cfg.Machines)

		lastCloneSweep := s.now
		for {
			if s.now > s.cfg.MaxTime {
				s.res.Crashed = true
				s.res.CrashReason = fmt.Sprintf("exceeded max simulation time at phase %d", phase)
				s.res.Runtime = s.now
				return s.res
			}
			// Inject crashes due now.
			for crashIdx < len(s.crashes) && s.crashes[crashIdx].Time <= s.now {
				s.applyCrash(s.crashes[crashIdx], active)
				crashIdx++
			}

			// Start queued tasks as slots free up.
			remainingQueue := queue[:0]
			for _, r := range queue {
				if s.placeWorker(r) {
					r.started = true
					r.lastClone = s.now
				} else {
					remainingQueue = append(remainingQueue, r)
				}
			}
			queue = remainingQueue

			// Compute rates and advance.
			totalIO, workers := s.step(active)

			// Sample the timeline once per virtual second.
			if s.now-lastSample >= 1.0 {
				s.res.Timeline = append(s.res.Timeline, Sample{
					Time: s.now, Throughput: totalIO, Workers: workers,
				})
				lastSample = s.now
			}

			// Cloning sweep.
			if s.cfg.Cloning && s.now-lastCloneSweep >= s.cfg.CloneInterval && s.now >= s.masterDownUntil {
				s.cloneSweep(active)
				lastCloneSweep = s.now
			}

			s.now += s.cfg.Dt
			if s.phaseDone(active) && len(queue) == 0 {
				break
			}
		}
		s.res.PhaseRuntime[phase] = s.now - phaseStart
	}
	s.res.Runtime = s.now
	for _, r := range s.runs {
		s.res.MaxWorkers[r.t.Name] = r.peak
	}
	return s.res
}

func (s *sim) phaseTasks(phase int) []*taskRun {
	var out []*taskRun
	for _, r := range s.runs {
		if r.t.Phase == phase {
			out = append(out, r)
		}
	}
	return out
}

func (s *sim) phaseDone(active []*taskRun) bool {
	for _, r := range active {
		if !r.done {
			return false
		}
	}
	return true
}

// demandEntry tracks one task's storage demand during a step.
type demandEntry struct {
	r     *taskRun
	cpu   float64 // CPU-limited input consumption rate
	ioDem float64 // I/O bytes/s wanted at CPU speed
	ioGot float64
	perB  float64
}

// step advances every running task by Dt and returns (total I/O rate,
// active worker count).
func (s *sim) step(active []*taskRun) (float64, int) {
	var entries []demandEntry
	workers := 0
	for _, r := range active {
		if r.done || len(r.workers) == 0 {
			continue
		}
		workers += len(r.workers)
		if r.merging {
			// Merge: single-worker pass over clone partials.
			cpu := r.t.CPURate
			entries = append(entries, demandEntry{r: r, cpu: cpu, ioDem: cpu * 2, perB: 2})
			continue
		}
		cpu := float64(len(r.workers)) * r.t.CPURate
		perB := ioPerByte(r.t)
		if !s.cfg.SpreadData && len(r.workers) > 1 {
			// Local placement with clones: the home machine still
			// supplies the entire input, but each clone writes its
			// output to its own machine's disk ("even though the output
			// of clones is placed on local storage, one machine must
			// still supply the entire input", §5.2) — so only reads
			// contend on the home disk.
			perB = 1
		}
		entries = append(entries, demandEntry{r: r, cpu: cpu, ioDem: cpu * perB, perB: perB})
	}
	if len(entries) == 0 {
		return 0, workers
	}

	if s.cfg.SpreadData {
		// Water-fill the global pool proportionally to demand.
		pool := s.pool()
		waterFill(entries, pool)
	} else {
		// Local mode: group demand by home machine and water-fill each
		// machine's disk separately.
		byHome := map[int][]int{}
		for i, e := range entries {
			byHome[e.r.t.Home] = append(byHome[e.r.t.Home], i)
		}
		per := s.perMachinePool()
		for _, idxs := range byHome {
			sub := make([]demandEntry, len(idxs))
			for j, i := range idxs {
				sub[j] = entries[i]
			}
			waterFill(sub, per)
			for j, i := range idxs {
				entries[i].ioGot = sub[j].ioGot
			}
		}
	}

	var totalIO float64
	for _, e := range entries {
		e.r.cpuBound = e.ioGot >= e.ioDem*0.999
		rate := math.Min(e.cpu, e.ioGot/e.perB)
		totalIO += rate * e.perB
		adv := rate * s.cfg.Dt
		if e.r.merging {
			e.r.mergeLeft -= adv
			s.res.MergeTime += s.cfg.Dt
			if e.r.mergeLeft <= 0 {
				e.r.merging = false
				e.r.done = true
				s.releaseWorkers(e.r)
			}
			continue
		}
		e.r.remaining -= adv
		if e.r.remaining <= 0 {
			s.finishTask(e.r)
		}
	}
	return totalIO, workers
}

// waterFill distributes pool bandwidth across entries proportionally to
// their outstanding demand (a task with more workers keeps more requests
// outstanding and receives a proportionally larger share, which is how
// batch-sampled storage behaves), redistributing slack from entries whose
// full demand fits inside their proportional share.
func waterFill(entries []demandEntry, pool float64) {
	unsat := make([]*demandEntry, 0, len(entries))
	for i := range entries {
		entries[i].ioGot = 0
		unsat = append(unsat, &entries[i])
	}
	remaining := pool
	for len(unsat) > 0 && remaining > 1e-6 {
		var totalDem float64
		for _, e := range unsat {
			totalDem += e.ioDem - e.ioGot
		}
		if totalDem <= 1e-9 {
			break
		}
		next := unsat[:0]
		share := remaining
		for _, e := range unsat {
			want := e.ioDem - e.ioGot
			grant := share * want / totalDem
			if grant >= want {
				e.ioGot = e.ioDem
				remaining -= want
			} else {
				e.ioGot += grant
				remaining -= grant
				next = append(next, e)
			}
		}
		if len(next) == len(unsat) {
			break // all proportional shares granted; no slack to move
		}
		unsat = next
	}
}

// finishTask completes a task's main work, transitioning to merge if the
// task was cloned and is mergeable.
func (s *sim) finishTask(r *taskRun) {
	k := len(r.workers)
	if r.t.Mergeable && k > 1 {
		partial := r.t.MergePartialBytes
		if partial <= 0 {
			partial = r.t.InputBytes * r.t.OutputRatio / float64(k)
		}
		// The merge reads every partial and writes the reconciled output.
		r.mergeLeft = partial * float64(k)
		if s.gcDesync {
			r.mergeLeft *= 1 + s.cfg.GCDesyncMergeFactor
		}
		r.merging = true
		// Merge runs on a single worker.
		s.releaseWorkers(r)
		s.slotsUsed[0]++ // merge placement: any machine; approximate with 0
		r.workers = []int{0}
		return
	}
	r.done = true
	s.releaseWorkers(r)
}

// cloneSweep implements the paper's cloning policy: every CloneInterval,
// each CPU-bound (overloaded) task asks for clones; the master grants up
// to a doubling per sweep, subject to free slots and Eq. 2.
func (s *sim) cloneSweep(active []*taskRun) {
	pool := s.pool()
	if !s.cfg.SpreadData {
		pool = s.perMachinePool()
	}
	for _, r := range active {
		if r.done || r.merging || len(r.workers) == 0 || !r.t.Cloneable {
			continue
		}
		k := len(r.workers)
		// Overload check: a task whose workers received all the I/O they
		// asked for is CPU-bound — its workers are saturated and cloning
		// adds parallelism. A storage-bound task gains nothing from more
		// workers ("cloning stops beyond 26 workers because storage, and
		// not the CPU, becomes the bottleneck", Fig. 9). Exception: with
		// local placement a task bound on its *home* disk still clones
		// (the clones' output writes move off that disk — the paper's
		// configuration 3 gains ~25% in Phase 1 this way).
		if !r.cpuBound && s.cfg.SpreadData {
			continue
		}
		if !r.cpuBound && !s.cfg.SpreadData && k >= 2 {
			continue // already split reads/writes; home disk is the floor
		}
		// Grant up to a doubling (each overloaded worker sends one clone
		// message per interval).
		grants := k
		for g := 0; g < grants; g++ {
			if s.freeSlots() <= 0 {
				break
			}
			kNow := len(r.workers)
			// Eq. 2: clone iff T > (k+1)·T_IO. T is the remaining task
			// time at the current worker count; T_IO is the extra I/O a
			// clone introduces — reading its share of the remaining
			// input, rem/(k+1), from the storage pool (its partial
			// output write overlaps with processing). This keeps cloning
			// going while the task is long-running and cuts it off near
			// completion and once worker I/O demand approaches the pool.
			rate := float64(kNow) * r.t.CPURate
			t := r.remaining / rate
			tio := (r.remaining / float64(kNow+1)) / pool
			if t <= float64(kNow+1)*tio {
				break
			}
			if !s.placeWorker(r) {
				break
			}
			s.res.Clones++
		}
	}
}

// applyCrash handles a crash event.
func (s *sim) applyCrash(ev CrashEvent, active []*taskRun) {
	if ev.Machine < 0 {
		// Master crash: scheduling and cloning pause for the outage;
		// running workers continue (§4.4).
		outage := ev.MasterOutage
		if outage <= 0 {
			outage = 1.0
		}
		s.masterDownUntil = s.now + outage
		return
	}
	s.dead[ev.Machine] = true
	// Compute-node crash: every task with a worker on that machine is
	// restarted from scratch (rewind inputs, discard outputs); its
	// clones are killed.
	for _, r := range active {
		if r.done {
			continue
		}
		hit := false
		for _, m := range r.workers {
			if m == ev.Machine {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		s.releaseWorkers(r)
		r.remaining = r.t.InputBytes
		r.merging = false
		r.mergeLeft = 0
		// Reschedule one worker immediately (the ready bag is polled
		// continuously).
		s.placeWorker(r)
		r.lastClone = s.now
	}
}
