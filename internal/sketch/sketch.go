// Package sketch implements the mergeable frequency sketches that drive
// Hurricane's skew detection. The count-min sketch is the paper's canonical
// mergeable aggregate (§2.3); the shuffle subsystem additionally uses it on
// the producer side: every partitioned writer folds its routed keys into a
// sketch, storage nodes merge the per-producer sketches, and the
// application master reads the merged sketch to find heavy-hitter
// partitions worth splitting (in the spirit of Reshape's hot-partition
// detection and SharesSkew's dedicated heavy-hitter handling).
//
// The package sits below both the public hurricane package (which
// re-exports CountMin) and internal/storage (which merges pushed sketches),
// so it must not import any other engine package.
package sketch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Default count-min dimensions used by the shuffle subsystem: ε ≈ 2/width
// ≈ 0.2% of insertions, δ = (1/2)^depth ≈ 6%.
const (
	DefaultWidth = 1024
	DefaultDepth = 4
)

// MaxHeavyKeys caps the heavy-hitter candidate list carried by EdgeStats.
const MaxHeavyKeys = 32

// CountMin is a count-min sketch: a width×depth counter matrix estimating
// per-key frequencies with one-sided error (estimates never undercount).
type CountMin struct {
	width, depth int
	counts       []uint64 // depth rows of width counters
}

// NewCountMin creates a sketch with the given width (columns per row) and
// depth (independent hash rows). Estimation error is ≈ 2N/width with
// probability 1 − (1/2)^depth over N insertions.
func NewCountMin(width, depth int) *CountMin {
	if width < 1 || depth < 1 {
		panic("sketch: count-min dimensions must be positive")
	}
	return &CountMin{width: width, depth: depth, counts: make([]uint64, width*depth)}
}

// mix64 is a murmur3-style finalizer used to derive the second hash for
// Kirsch–Mitzenmacher double hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// cmHashes derives the per-row hashes from a single FNV pass over the key
// (Kirsch–Mitzenmacher: h_r = h1 + r·h2). The sketch sits on the shuffle
// writer's per-record hot path, so one key scan instead of depth scans
// matters.
func cmHashes(key []byte) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 = h.Sum64()
	h2 = mix64(h1) | 1 // odd, so rows stay distinct mod any width
	return
}

// Add increments key's count by n.
func (c *CountMin) Add(key []byte, n uint64) {
	h1, h2 := cmHashes(key)
	for r := 0; r < c.depth; r++ {
		idx := r*c.width + int((h1+uint64(r)*h2)%uint64(c.width))
		c.counts[idx] += n
	}
}

// Estimate returns the (over-)estimate of key's count.
func (c *CountMin) Estimate(key []byte) uint64 {
	h1, h2 := cmHashes(key)
	est := uint64(math.MaxUint64)
	for r := 0; r < c.depth; r++ {
		idx := r*c.width + int((h1+uint64(r)*h2)%uint64(c.width))
		if c.counts[idx] < est {
			est = c.counts[idx]
		}
	}
	return est
}

// Merge adds another sketch of identical dimensions cell-wise.
func (c *CountMin) Merge(other *CountMin) error {
	if other.width != c.width || other.depth != c.depth {
		return fmt.Errorf("sketch: count-min dimensions %dx%d != %dx%d",
			other.width, other.depth, c.width, c.depth)
	}
	for i, v := range other.counts {
		c.counts[i] += v
	}
	return nil
}

// Encode serializes the sketch as one record.
func (c *CountMin) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(c.width))
	buf = binary.AppendUvarint(buf, uint64(c.depth))
	for _, v := range c.counts {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// DecodeCountMin parses an encoded sketch.
func DecodeCountMin(data []byte) (*CountMin, error) {
	w, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("sketch: bad count-min record")
	}
	data = data[n:]
	d, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("sketch: bad count-min record")
	}
	data = data[n:]
	// Bound each dimension before multiplying: a crafted blob with
	// w ≈ 2^63 would overflow w*d past the guard and panic NewCountMin.
	if w == 0 || d == 0 || w > 1<<28 || d > 64 || w*d > 1<<28 {
		return nil, fmt.Errorf("sketch: implausible count-min dimensions %dx%d", w, d)
	}
	c := NewCountMin(int(w), int(d))
	for i := range c.counts {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("sketch: truncated count-min record")
		}
		c.counts[i] = v
		data = data[n:]
	}
	return c, nil
}

// ---- per-edge shuffle statistics ----

// HeavyKey is one heavy-hitter candidate observed by a partitioned writer.
type HeavyKey struct {
	Key   []byte `json:"key"`
	Count uint64 `json:"count"`
}

// EdgeStats aggregates what producers know about one shuffle edge: how many
// records landed in each physical partition bag, a count-min sketch of the
// routed keys, and a capped list of heavy-hitter candidates (the count-min
// sketch alone cannot enumerate heavy keys; candidates supply the key bytes
// the master needs to isolate them).
type EdgeStats struct {
	// Counts maps physical partition bag name -> records routed there.
	Counts map[string]uint64 `json:"counts,omitempty"`
	// CM sketches per-key frequencies across the whole edge.
	CM *CountMin `json:"-"`
	// Heavy lists heavy-hitter candidate keys with their counts.
	Heavy []HeavyKey `json:"heavy,omitempty"`
}

// NewEdgeStats returns empty stats with a default-dimension sketch.
func NewEdgeStats() *EdgeStats {
	return &EdgeStats{
		Counts: make(map[string]uint64),
		CM:     NewCountMin(DefaultWidth, DefaultDepth),
	}
}

// Total returns the total number of records recorded across partitions.
func (e *EdgeStats) Total() uint64 {
	var t uint64
	for _, c := range e.Counts {
		t += c
	}
	return t
}

// Merge folds another stats blob into e: partition counts add, sketches
// merge cell-wise, and heavy lists combine key-wise (keeping the top
// MaxHeavyKeys by count). Merging per-producer stats this way yields the
// same result as a single producer having observed the union.
func (e *EdgeStats) Merge(other *EdgeStats) error {
	if e.Counts == nil {
		e.Counts = make(map[string]uint64)
	}
	for k, v := range other.Counts {
		e.Counts[k] += v
	}
	if other.CM != nil {
		if e.CM == nil {
			e.CM = NewCountMin(other.CM.width, other.CM.depth)
		}
		if err := e.CM.Merge(other.CM); err != nil {
			return err
		}
	}
	if len(other.Heavy) > 0 {
		byKey := make(map[string]uint64, len(e.Heavy)+len(other.Heavy))
		for _, h := range e.Heavy {
			byKey[string(h.Key)] += h.Count
		}
		for _, h := range other.Heavy {
			byKey[string(h.Key)] += h.Count
		}
		merged := make([]HeavyKey, 0, len(byKey))
		for k, c := range byKey {
			merged = append(merged, HeavyKey{Key: []byte(k), Count: c})
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].Count != merged[j].Count {
				return merged[i].Count > merged[j].Count
			}
			return string(merged[i].Key) < string(merged[j].Key)
		})
		if len(merged) > MaxHeavyKeys {
			merged = merged[:MaxHeavyKeys]
		}
		e.Heavy = merged
	}
	return nil
}

// TopKeys returns the heavy-hitter candidates whose observed share of the
// edge's records is at least minFraction of the total, capped at k and
// sorted by descending count (ties by key bytes). This is the first-class
// heavy-hitter extraction shared by the query planner's skewed-join
// decision, the warm-start seeding, and the runtime isolation policy —
// the one place the "how heavy is heavy" arithmetic lives.
func (e *EdgeStats) TopKeys(k int, minFraction float64) []HeavyKey {
	total := e.Total()
	if total == 0 || k <= 0 {
		return nil
	}
	sorted := make([]HeavyKey, len(e.Heavy))
	copy(sorted, e.Heavy)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return string(sorted[i].Key) < string(sorted[j].Key)
	})
	threshold := minFraction * float64(total)
	out := make([]HeavyKey, 0, k)
	for _, hk := range sorted {
		if len(out) == k {
			break
		}
		if float64(hk.Count) < threshold {
			break // sorted descending: nothing later qualifies
		}
		out = append(out, hk)
	}
	return out
}

// ---- offline stats construction ----

// StatsBuilder accumulates exact per-key counts into an EdgeStats — the
// offline (warm-start) counterpart of the shuffle writer's streaming
// sketch. Use it to build compile-time statistics for the query planner
// from a sample, a generator's known output, or a test's synthetic
// distribution: the count-min sketch is fed every observation and the
// heavy-candidate list is exact (top MaxHeavyKeys by count).
type StatsBuilder struct {
	counts map[string]uint64
	total  uint64
}

// NewStatsBuilder returns an empty builder.
func NewStatsBuilder() *StatsBuilder {
	return &StatsBuilder{counts: make(map[string]uint64)}
}

// Add observes n records of key.
func (b *StatsBuilder) Add(key []byte, n uint64) {
	b.counts[string(key)] += n
	b.total += n
}

// Stats freezes the observations into an EdgeStats. The partition-count
// map carries the total under a synthetic leaf name ("~sample") so
// Total() — which thresholds every heavy-hitter decision — reflects the
// observed volume without claiming knowledge of any physical layout.
func (b *StatsBuilder) Stats() *EdgeStats {
	e := NewEdgeStats()
	e.Counts["~sample"] = b.total
	for k, n := range b.counts {
		key := []byte(k)
		e.CM.Add(key, n)
		e.Heavy = append(e.Heavy, HeavyKey{Key: key, Count: n})
	}
	sort.Slice(e.Heavy, func(i, j int) bool {
		if e.Heavy[i].Count != e.Heavy[j].Count {
			return e.Heavy[i].Count > e.Heavy[j].Count
		}
		return string(e.Heavy[i].Key) < string(e.Heavy[j].Key)
	})
	if len(e.Heavy) > MaxHeavyKeys {
		e.Heavy = e.Heavy[:MaxHeavyKeys]
	}
	return e
}

// edgeStatsWire is the serialized form; the count-min sketch travels as its
// own binary encoding inside the JSON envelope.
type edgeStatsWire struct {
	Counts map[string]uint64 `json:"counts,omitempty"`
	CM     []byte            `json:"cm,omitempty"`
	Heavy  []HeavyKey        `json:"heavy,omitempty"`
}

// Encode serializes the stats as one record.
func (e *EdgeStats) Encode() ([]byte, error) {
	w := edgeStatsWire{Counts: e.Counts, Heavy: e.Heavy}
	if e.CM != nil {
		w.CM = e.CM.Encode()
	}
	return json.Marshal(&w)
}

// DecodeEdgeStats parses an encoded stats record.
func DecodeEdgeStats(data []byte) (*EdgeStats, error) {
	var w edgeStatsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("sketch: bad edge-stats record: %v", err)
	}
	e := &EdgeStats{Counts: w.Counts, Heavy: w.Heavy}
	if e.Counts == nil {
		e.Counts = make(map[string]uint64)
	}
	if len(w.CM) > 0 {
		cm, err := DecodeCountMin(w.CM)
		if err != nil {
			return nil, err
		}
		e.CM = cm
	}
	return e, nil
}
