package sketch

import (
	"encoding/binary"
	"testing"

	"repro/internal/workload"
)

func k64(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

// TestCountMinZipfGuarantee checks the count-min error bound under the
// skewed key distributions the shuffle subsystem detects: for every key of
// a Zipf(s=1.2) stream, truth ≤ estimate ≤ truth + ε·N with ε = 2/width.
// (The ε·N bound holds per key with probability 1 − 2^−depth; with a
// heavy-tailed stream the excess in each cell is far below the Markov
// bound, so the fixed-seed stream satisfies it for every key.)
func TestCountMinZipfGuarantee(t *testing.T) {
	const (
		keys  = 1000
		n     = 200000
		width = 1024
		depth = 4
	)
	sampler := workload.NewSampler(workload.RegionWeights(keys, 1.2), 7)
	cm := NewCountMin(width, depth)
	truth := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		key := uint64(sampler.Next())
		cm.Add(k64(key), 1)
		truth[key]++
	}
	slack := uint64(2 * n / width) // ε·N
	for key, want := range truth {
		est := cm.Estimate(k64(key))
		if est < want {
			t.Fatalf("key %d undercounted: est %d < truth %d", key, est, want)
		}
		if est > want+slack {
			t.Errorf("key %d: est %d exceeds truth %d + ε·N %d", key, est, want, slack)
		}
	}
	// The heavy hitters the master isolates must be near-exact: the top
	// key holds ~30%% of the stream, so its CM estimate is dominated by
	// truth, not collision noise.
	top := cm.Estimate(k64(0))
	if float64(top) > float64(truth[0])*1.01 {
		t.Errorf("top key estimate %d drifted from truth %d", top, truth[0])
	}
}

// TestEdgeStatsMergeMatchesGlobal: merging per-producer stats must equal a
// single producer having observed the whole stream — counts exactly,
// count-min cell-wise, heavy-hitter counts key-wise. This is what makes
// storage-side merging of concurrent producers' pushes sound.
func TestEdgeStatsMergeMatchesGlobal(t *testing.T) {
	const producers = 4
	sampler := workload.NewSampler(workload.RegionWeights(64, 1.3), 11)
	global := NewEdgeStats()
	parts := make([]*EdgeStats, producers)
	for i := range parts {
		parts[i] = NewEdgeStats()
	}
	leafFor := func(key uint64) string {
		if key%3 == 0 {
			return "shuf.p0"
		}
		return "shuf.p1"
	}
	for i := 0; i < 40000; i++ {
		key := uint64(sampler.Next())
		leaf := leafFor(key)
		global.Counts[leaf]++
		global.CM.Add(k64(key), 1)
		p := parts[i%producers]
		p.Counts[leaf]++
		p.CM.Add(k64(key), 1)
	}
	for i := range parts {
		parts[i].Heavy = []HeavyKey{{Key: k64(0), Count: parts[i].CM.Estimate(k64(0))}}
	}

	merged := NewEdgeStats()
	for _, p := range parts {
		// Round-trip through the wire encoding, as storage nodes do.
		data, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeEdgeStats(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(decoded); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Total() != global.Total() {
		t.Fatalf("merged total %d != global %d", merged.Total(), global.Total())
	}
	for leaf, want := range global.Counts {
		if merged.Counts[leaf] != want {
			t.Fatalf("leaf %s: merged %d != global %d", leaf, merged.Counts[leaf], want)
		}
	}
	for i := uint64(0); i < 64; i++ {
		if merged.CM.Estimate(k64(i)) != global.CM.Estimate(k64(i)) {
			t.Fatalf("key %d: merged CM estimate %d != global %d",
				i, merged.CM.Estimate(k64(i)), global.CM.Estimate(k64(i)))
		}
	}
	if len(merged.Heavy) != 1 || string(merged.Heavy[0].Key) != string(k64(0)) {
		t.Fatalf("heavy list %v, want single entry for key 0", merged.Heavy)
	}
	var sum uint64
	for _, p := range parts {
		sum += p.Heavy[0].Count
	}
	if merged.Heavy[0].Count != sum {
		t.Fatalf("heavy count %d != sum of partials %d", merged.Heavy[0].Count, sum)
	}
}

// TestEdgeStatsHeavyCap: the merged heavy list keeps the top keys only.
func TestEdgeStatsHeavyCap(t *testing.T) {
	a, b := NewEdgeStats(), NewEdgeStats()
	for i := uint64(0); i < MaxHeavyKeys; i++ {
		a.Heavy = append(a.Heavy, HeavyKey{Key: k64(i), Count: 10 + i})
		b.Heavy = append(b.Heavy, HeavyKey{Key: k64(1000 + i), Count: 1})
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Heavy) != MaxHeavyKeys {
		t.Fatalf("heavy list grew to %d, cap is %d", len(a.Heavy), MaxHeavyKeys)
	}
	for _, h := range a.Heavy {
		if h.Count == 1 {
			t.Fatalf("low-count key %v survived the cap over heavier keys", h.Key)
		}
	}
}

func TestEdgeStatsDecodeErrors(t *testing.T) {
	if _, err := DecodeEdgeStats([]byte("{")); err == nil {
		t.Fatal("truncated stats must error")
	}
	if _, err := DecodeEdgeStats([]byte(`{"cm":"AQ=="}`)); err == nil {
		t.Fatal("corrupt embedded sketch must error")
	}
}

// TestTopKeysExtraction: the first-class heavy-hitter helper honors the
// fraction threshold, the cap, and descending order.
func TestTopKeysExtraction(t *testing.T) {
	b := NewStatsBuilder()
	b.Add(k64(1), 500) // 50%
	b.Add(k64(2), 300) // 30%
	b.Add(k64(3), 150) // 15%
	b.Add(k64(4), 50)  // 5%
	st := b.Stats()
	if st.Total() != 1000 {
		t.Fatalf("builder total %d, want 1000", st.Total())
	}

	top := st.TopKeys(10, 0.10)
	if len(top) != 3 {
		t.Fatalf("TopKeys(10, 0.10) returned %d keys, want 3 (≥10%% each)", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("TopKeys not sorted descending: %v", top)
		}
	}
	if string(top[0].Key) != string(k64(1)) || top[0].Count != 500 {
		t.Fatalf("top key wrong: %+v", top[0])
	}

	if got := st.TopKeys(2, 0.10); len(got) != 2 {
		t.Fatalf("cap ignored: %d keys, want 2", len(got))
	}
	if got := st.TopKeys(10, 0.60); len(got) != 0 {
		t.Fatalf("threshold ignored: %d keys, want 0", len(got))
	}
	empty := NewEdgeStats()
	if got := empty.TopKeys(10, 0); got != nil {
		t.Fatalf("empty stats returned %v", got)
	}
}

// TestStatsBuilderSketchAgrees: the builder's count-min sketch estimates
// match the exact counts it was fed (one-sided error: never under).
func TestStatsBuilderSketchAgrees(t *testing.T) {
	b := NewStatsBuilder()
	for i := uint64(0); i < 100; i++ {
		b.Add(k64(i), i+1)
	}
	st := b.Stats()
	for i := uint64(0); i < 100; i++ {
		est := st.CM.Estimate(k64(i))
		if est < i+1 {
			t.Fatalf("key %d: estimate %d under true count %d", i, est, i+1)
		}
	}
	if len(st.Heavy) != MaxHeavyKeys {
		t.Fatalf("heavy candidates %d, want cap %d", len(st.Heavy), MaxHeavyKeys)
	}
	if st.Heavy[0].Count != 100 {
		t.Fatalf("heaviest candidate count %d, want 100", st.Heavy[0].Count)
	}
}
