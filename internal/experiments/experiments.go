// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the cluster simulator and the baseline models. Each
// function returns structured rows; Format* helpers render them in the
// same layout the paper reports. cmd/hurricane-bench and the top-level
// benchmark suite both call into this package, so the printed output is
// identical either way.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// GB and friends convert the paper's size labels.
const (
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// Skews are the paper's skew parameters.
var Skews = workload.PaperSkews

// SkewLabel formats a skew value the way the paper labels it.
func SkewLabel(s float64) string {
	if s == 0 {
		return "uniform"
	}
	return fmt.Sprintf("s=%.1f", s)
}

// ---- Table 1: ClickLog runtime over uniform input ----

// Table1Row is one cell of Table 1.
type Table1Row struct {
	Label   string
	Input   float64 // bytes
	Runtime float64 // seconds (simulated)
	Paper   float64 // seconds (paper-reported)
}

// Table1 reproduces "ClickLog runtime over a uniform input (baseline)":
// total input scaled from 320 MB to 3.2 TB on 32 machines.
func Table1() []Table1Row {
	sizes := []struct {
		label string
		bytes float64
		paper float64
	}{
		{"320MB", 320 * MB, 5.7},
		{"3.2GB", 3.2 * GB, 8.9},
		{"32GB", 32 * GB, 22.8},
		{"320GB", 320 * GB, 90},
		{"3.2TB", 3.2 * TB, 959},
	}
	rows := make([]Table1Row, 0, len(sizes))
	for _, sz := range sizes {
		cfg := sim.Default()
		res := sim.Run(cfg, sim.ClickLogJob(sim.ClickLogParams{TotalInput: sz.bytes}))
		rows = append(rows, Table1Row{Label: sz.label, Input: sz.bytes, Runtime: res.Runtime, Paper: sz.paper})
	}
	return rows
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: ClickLog runtime over a uniform input (32 machines)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "Input", "Simulated", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %11.1fs %11.1fs\n", r.Label, r.Runtime, r.Paper)
	}
	return b.String()
}

// ---- Figure 5: ClickLog slowdown with increasing skew ----

// Fig5Cell is one bar of Figure 5.
type Fig5Cell struct {
	PerMachine string  // input per machine label
	Skew       float64 // zipf s
	Slowdown   float64 // runtime normalized to the uniform run of same size
}

// Figure5 reproduces "ClickLog runtime with increasing skew": slowdown
// relative to uniform for input/machine ∈ {10MB..100GB} and
// s ∈ {0, 0.2, 0.5, 0.8, 1.0}. The paper's headline: at most 2.4×
// slowdown everywhere, versus the 7.1× Amdahl bound for unsplittable
// partitions.
func Figure5() []Fig5Cell {
	sizes := []struct {
		label string
		per   float64
	}{
		{"10MB", 10 * MB}, {"100MB", 100 * MB}, {"1GB", 1 * GB},
		{"10GB", 10 * GB}, {"100GB", 100 * GB},
	}
	var cells []Fig5Cell
	for _, sz := range sizes {
		total := sz.per * 32
		base := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: total}))
		for _, s := range Skews {
			res := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: total, Skew: s}))
			cells = append(cells, Fig5Cell{
				PerMachine: sz.label,
				Skew:       s,
				Slowdown:   res.Runtime / base.Runtime,
			})
		}
	}
	return cells
}

// FormatFigure5 renders Figure 5 as a size × skew matrix.
func FormatFigure5(cells []Fig5Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: ClickLog slowdown vs skew (normalized to uniform, 32 machines)\n")
	fmt.Fprintf(&b, "%-10s", "Input/mach")
	for _, s := range Skews {
		fmt.Fprintf(&b, " %9s", SkewLabel(s))
	}
	fmt.Fprintln(&b)
	var cur string
	for _, c := range cells {
		if c.PerMachine != cur {
			if cur != "" {
				fmt.Fprintln(&b)
			}
			cur = c.PerMachine
			fmt.Fprintf(&b, "%-10s", cur)
		}
		fmt.Fprintf(&b, " %8.2fx", c.Slowdown)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// ---- Figure 6: partitions sweep, Hurricane vs HurricaneNC ----

// Fig6Row is one bar group of Figure 6.
type Fig6Row struct {
	System     string // "Hurricane" or "HurricaneNC"
	Partitions int
	Phase      [3]float64 // per-phase runtime, seconds
	Total      float64
	Normalized float64 // to the uniform Hurricane baseline
	Amdahl     float64 // best-case slowdown bound for this partition count
}

// Figure6 reproduces the static-partitioning ablation: 32 GB input at
// s = 1, partitions from 32 to 4096, with and without cloning. Dashed
// Amdahl bounds use the largest partition as the serial fraction.
func Figure6() []Fig6Row {
	const total = 32 * GB
	base := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: total}))
	partitionCounts := []int{32, 64, 128, 256, 512, 1024, 2048, 4096}
	var rows []Fig6Row
	for _, system := range []string{"HurricaneNC", "Hurricane"} {
		for _, parts := range partitionCounts {
			cfg := sim.Default()
			cfg.Cloning = system == "Hurricane"
			params := sim.ClickLogParams{TotalInput: total, Skew: 1.0, Partitions: parts}
			if system == "HurricaneNC" {
				// The paper splits HurricaneNC's Phase 1 statically so
				// every node gets at least one partition.
				params.Phase1Partitions = parts
			}
			res := sim.Run(cfg, sim.ClickLogJob(params))
			f := sim.LargestPartitionFraction(workload.DefaultRegions, 1.0, parts)
			row := Fig6Row{
				System:     system,
				Partitions: parts,
				Total:      res.Runtime,
				Normalized: res.Runtime / base.Runtime,
				Amdahl:     workload.AmdahlBestSlowdown(f, cfg.Machines),
			}
			for p := 1; p <= 3; p++ {
				row.Phase[p-1] = res.PhaseRuntime[p]
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatFigure6 renders Figure 6.
func FormatFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Hurricane vs HurricaneNC, 32GB input, s=1 (normalized to uniform)\n")
	fmt.Fprintf(&b, "%-12s %10s %8s %8s %8s %9s %9s\n",
		"System", "Partitions", "Phase1", "Phase2", "Phase3", "Norm", "Amdahl")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %7.1fs %7.1fs %7.1fs %8.2fx %8.2fx\n",
			r.System, r.Partitions, r.Phase[0], r.Phase[1], r.Phase[2], r.Normalized, r.Amdahl)
	}
	return b.String()
}

// ---- Figures 7 and 8: cloning/spreading ablation ----

// Fig78Row is one bar of Figure 7 (phase 1) / Figure 8 (phase 2).
type Fig78Row struct {
	Config string
	Skew   float64
	Phase1 float64 // seconds
	Phase2 float64 // seconds
}

// Fig78Configs are the four ablation configurations of §5.2.
var Fig78Configs = []struct {
	Name    string
	Cloning bool
	Spread  bool
}{
	{"c=off,local", false, false},
	{"c=off,spread", false, true},
	{"c=on,local", true, false},
	{"c=on,spread", true, true},
}

// Figures78 reproduces the cloning × spreading ablation: 8 machines,
// 80 GB total input (10 GB per machine), per-phase runtimes.
func Figures78() []Fig78Row {
	const total = 80 * GB
	var rows []Fig78Row
	for _, c := range Fig78Configs {
		for _, s := range Skews {
			cfg := sim.Default()
			cfg.Machines = 8
			cfg.Cloning = c.Cloning
			cfg.SpreadData = c.Spread
			job := sim.ClickLogJob(sim.ClickLogParams{TotalInput: total, Skew: s})
			if !c.Spread {
				// Local placement: phase 1 input on machine 0; each
				// region bag on its consumer task's home machine.
				for i := range job.Tasks {
					job.Tasks[i].Home = i % cfg.Machines
				}
			}
			res := sim.Run(cfg, job)
			rows = append(rows, Fig78Row{
				Config: c.Name,
				Skew:   s,
				Phase1: res.PhaseRuntime[1],
				Phase2: res.PhaseRuntime[2],
			})
		}
	}
	return rows
}

// FormatFigures78 renders figures 7 and 8 as two tables.
func FormatFigures78(rows []Fig78Row) string {
	var b strings.Builder
	figs := []struct {
		title string
		sel   func(Fig78Row) float64
	}{
		{"Figure 7 (Phase 1 runtime, 8 machines, 80GB)", func(r Fig78Row) float64 { return r.Phase1 }},
		{"Figure 8 (Phase 2 runtime, 8 machines, 80GB)", func(r Fig78Row) float64 { return r.Phase2 }},
	}
	for _, f := range figs {
		fig, sel := f.title, f.sel
		fmt.Fprintln(&b, fig)
		fmt.Fprintf(&b, "%-14s", "Config")
		for _, s := range Skews {
			fmt.Fprintf(&b, " %9s", SkewLabel(s))
		}
		fmt.Fprintln(&b)
		var cur string
		for _, r := range rows {
			if r.Config != cur {
				if cur != "" {
					fmt.Fprintln(&b)
				}
				cur = r.Config
				fmt.Fprintf(&b, "%-14s", cur)
			}
			fmt.Fprintf(&b, " %8.0fs", sel(r))
		}
		fmt.Fprintln(&b)
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---- Figure 9: throughput over time ----

// Figure9 reproduces the throughput trace: ClickLog, 320 GB, s = 1 on 32
// machines — cloning ramp in phase 1, per-region tasks then clones up to
// the storage bound in phase 2, merge at the end.
func Figure9() sim.Result {
	cfg := sim.Default()
	return sim.Run(cfg, sim.ClickLogJob(sim.ClickLogParams{TotalInput: 320 * GB, Skew: 1.0}))
}

// FormatTimeline renders a throughput-over-time trace as an ASCII series.
func FormatTimeline(title string, res sim.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%8s %15s %8s\n", "t(s)", "throughput", "workers")
	maxTp := 0.0
	for _, s := range res.Timeline {
		if s.Throughput > maxTp {
			maxTp = s.Throughput
		}
	}
	step := len(res.Timeline)/60 + 1
	for i := 0; i < len(res.Timeline); i += step {
		s := res.Timeline[i]
		bar := ""
		if maxTp > 0 {
			bar = strings.Repeat("#", int(40*s.Throughput/maxTp))
		}
		fmt.Fprintf(&b, "%7.0fs %12.2fGB/s %8d |%s\n", s.Time, s.Throughput/GB, s.Workers, bar)
	}
	fmt.Fprintf(&b, "runtime %.1fs, clones %d, merge time %.1fs\n",
		res.Runtime, res.Clones, res.MergeTime)
	return b.String()
}

// ---- Figure 10: batch sampling factor sweep ----

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	B          int
	Runtime    float64
	Normalized float64 // to b=1
	Rho        float64 // analytic utilization Eq. 1
}

// Figure10 reproduces the batching-factor sweep on ClickLog Phase 1
// (320 GB, 32 machines): prefetching overlaps compute with storage I/O;
// b=10 is the sweet spot, b=32 overcommits.
func Figure10() []Fig10Row {
	bs := []int{1, 2, 3, 5, 10, 16, 32}
	var rows []Fig10Row
	var baseP1 float64
	for i, b := range bs {
		cfg := sim.Default()
		cfg.BatchFactor = b
		res := sim.Run(cfg, sim.ClickLogJob(sim.ClickLogParams{TotalInput: 320 * GB}))
		p1 := res.PhaseRuntime[1]
		if i == 0 {
			baseP1 = p1
		}
		rows = append(rows, Fig10Row{
			B: b, Runtime: p1, Normalized: p1 / baseP1,
			Rho: sim.Utilization(b, cfg.Machines),
		})
	}
	return rows
}

// FormatFigure10 renders Figure 10.
func FormatFigure10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 10: ClickLog Phase 1 runtime vs batching factor (norm. to b=1)")
	fmt.Fprintf(&b, "%-6s %10s %10s %12s\n", "b", "Phase1", "Norm", "rho(b,32)")
	for _, r := range rows {
		fmt.Fprintf(&b, "b=%-4d %9.1fs %9.2fx %11.1f%%\n", r.B, r.Runtime, r.Normalized, 100*r.Rho)
	}
	return b.String()
}

// ---- Figure 11: fault tolerance trace ----

// Figure11 reproduces the crash-injection trace: ClickLog on 320 GB with
// a compute-node crash in each phase, each followed 20 s later by a
// master crash.
func Figure11() sim.Result {
	cfg := sim.Default()
	job := sim.ClickLogJob(sim.ClickLogParams{TotalInput: 320 * GB})
	crashes := []sim.CrashEvent{
		{Time: 20, Machine: 5},
		{Time: 40, Machine: -1, MasterOutage: 1},
		{Time: 70, Machine: 11},
		{Time: 90, Machine: -1, MasterOutage: 1},
	}
	return sim.Run(cfg, job, crashes...)
}

// ---- Table 2: ClickLog vs Spark vs Hadoop (uniform) ----

// Table2Row is one cell of Table 2.
type Table2Row struct {
	System  string
	Label   string
	Runtime float64
	Paper   float64
}

// Table2 reproduces the uniform-input system comparison at 320 MB and
// 32 GB.
func Table2() []Table2Row {
	paper := map[string]map[string]float64{
		"Spark":     {"320MB": 8.2, "32GB": 32.4},
		"Hadoop":    {"320MB": 37.1, "32GB": 50.3},
		"Hurricane": {"320MB": 5.7, "32GB": 22.8},
	}
	sizes := []struct {
		label string
		bytes float64
	}{{"320MB", 320 * MB}, {"32GB", 32 * GB}}
	var rows []Table2Row
	for _, sz := range sizes {
		hur := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: sz.bytes}))
		rows = append(rows, Table2Row{"Hurricane", sz.label, hur.Runtime, paper["Hurricane"][sz.label]})
		for _, m := range []baseline.Model{baseline.Spark(), baseline.Hadoop()} {
			r := m.RunClickLog(sim.Default(), sz.bytes, 0)
			rows = append(rows, Table2Row{m.Name, sz.label, r.Runtime, paper[m.Name][sz.label]})
		}
	}
	return rows
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: ClickLog runtime over uniform input")
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s\n", "System", "Input", "Simulated", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %11.1fs %11.1fs\n", r.System, r.Label, r.Runtime, r.Paper)
	}
	return b.String()
}

// ---- Figure 12: system comparison under skew ----

// Fig12Cell is one bar of Figure 12.
type Fig12Cell struct {
	System   string
	Label    string
	Skew     float64
	Slowdown float64 // normalized to the system's own uniform runtime
	Crashed  bool    // Spark OOM (negative bars in the paper)
	TimedOut bool    // exceeded one hour (full bars in the paper)
}

// Figure12 reproduces the skew comparison at 320 MB and 32 GB, each
// system normalized to its own uniform runtime.
func Figure12() []Fig12Cell {
	sizes := []struct {
		label string
		bytes float64
	}{{"320MB", 320 * MB}, {"32GB", 32 * GB}}
	var cells []Fig12Cell
	for _, sz := range sizes {
		hurBase := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: sz.bytes}))
		for _, s := range Skews {
			res := sim.Run(sim.Default(), sim.ClickLogJob(sim.ClickLogParams{TotalInput: sz.bytes, Skew: s}))
			cells = append(cells, Fig12Cell{
				System: "Hurricane", Label: sz.label, Skew: s,
				Slowdown: res.Runtime / hurBase.Runtime,
			})
		}
		for _, m := range []baseline.Model{baseline.Spark(), baseline.Hadoop()} {
			base := m.RunClickLog(sim.Default(), sz.bytes, 0)
			for _, s := range Skews {
				r := m.RunClickLog(sim.Default(), sz.bytes, s)
				cell := Fig12Cell{System: m.Name, Label: sz.label, Skew: s}
				switch {
				case r.OOM:
					cell.Crashed = true
				case r.Runtime > 3600:
					cell.TimedOut = true
				default:
					cell.Slowdown = r.Runtime / base.Runtime
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// FormatFigure12 renders Figure 12.
func FormatFigure12(cells []Fig12Cell) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 12: slowdown vs skew, each system normalized to its own uniform run")
	fmt.Fprintln(&b, "(CRASH = out-of-memory kill; >1h = forcibly terminated, as in the paper)")
	var cur string
	for _, c := range cells {
		key := c.Label + "/" + c.System
		if key != cur {
			if cur != "" {
				fmt.Fprintln(&b)
			}
			cur = key
			fmt.Fprintf(&b, "%-8s %-10s", c.Label, c.System)
		}
		switch {
		case c.Crashed:
			fmt.Fprintf(&b, " %9s", "CRASH")
		case c.TimedOut:
			fmt.Fprintf(&b, " %9s", ">1h")
		default:
			fmt.Fprintf(&b, " %8.2fx", c.Slowdown)
		}
	}
	fmt.Fprintln(&b)
	return b.String()
}

// ---- Table 3: HashJoin vs Spark ----

// Table3Row is one cell of Table 3.
type Table3Row struct {
	System  string
	Join    string
	Skew    float64
	Runtime float64
	Paper   string
	Timeout bool
}

// Table3 reproduces the join comparison: 3.2GB⋈32GB and 32GB⋈320GB at
// s ∈ {0, 1}.
func Table3() []Table3Row {
	joins := []struct {
		label        string
		build, probe float64
	}{
		{"3.2GB x 32GB", 3.2 * GB, 32 * GB},
		{"32GB x 320GB", 32 * GB, 320 * GB},
	}
	paper := map[string]map[string][2]string{
		"Hurricane": {"3.2GB x 32GB": {"56s", "89s"}, "32GB x 320GB": {"519s", "1216s"}},
		"Spark":     {"3.2GB x 32GB": {"81s", "1615s"}, "32GB x 320GB": {"920s", ">12h"}},
	}
	var rows []Table3Row
	for _, j := range joins {
		for si, s := range []float64{0, 1} {
			cfg := sim.Default()
			res := sim.Run(cfg, sim.HashJoinJob(sim.HashJoinParams{
				BuildBytes: j.build, ProbeBytes: j.probe, Skew: s, Partitions: 32,
			}))
			rows = append(rows, Table3Row{
				System: "Hurricane", Join: j.label, Skew: s,
				Runtime: res.Runtime, Paper: paper["Hurricane"][j.label][si],
			})
			sp := baseline.Spark().RunHashJoin(sim.Default(), j.build, j.probe, s)
			row := Table3Row{
				System: "Spark", Join: j.label, Skew: s,
				Runtime: sp.Runtime, Paper: paper["Spark"][j.label][si],
			}
			if sp.OOM || sp.Runtime > 12*3600 {
				row.Timeout = true
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: HashJoin runtime (32 machines)")
	fmt.Fprintf(&b, "%-10s %-14s %-8s %12s %10s\n", "System", "Join", "Skew", "Simulated", "Paper")
	for _, r := range rows {
		rt := fmt.Sprintf("%.0fs", r.Runtime)
		if r.Timeout {
			rt = ">12h"
		}
		fmt.Fprintf(&b, "%-10s %-14s %-8s %12s %10s\n",
			r.System, r.Join, SkewLabel(r.Skew), rt, r.Paper)
	}
	return b.String()
}

// ---- Table 4: PageRank vs GraphX ----

// Table4Row is one cell of Table 4.
type Table4Row struct {
	System  string
	Graph   string
	Runtime float64
	Paper   string
	Timeout bool
}

// Table4 reproduces the PageRank comparison on R-MAT graphs of scale 24,
// 27, and 30 (5 iterations, 32 machines). Edge lists are 16 bytes/edge.
func Table4() []Table4Row {
	graphs := []struct {
		label    string
		scale    int
		paperHur string
		paperGX  string
	}{
		{"RMAT-24", 24, "38s", "189s"},
		{"RMAT-27", 27, "225s", "3007s"},
		{"RMAT-30", 30, "688s", ">12h"},
	}
	var rows []Table4Row
	for _, g := range graphs {
		vertices := float64(int64(1) << g.scale)
		edges := vertices * 16 * 16  // 16 edges/vertex × 16 B/edge
		vertexBytes := vertices * 16 // rank records
		cfg := sim.Default()
		res := sim.Run(cfg, sim.PageRankJob(sim.PageRankParams{
			EdgeBytes: edges, VertexBytes: vertexBytes, Iterations: 5, DegreeSkew: 1.0,
		}))
		rows = append(rows, Table4Row{
			System: "Hurricane", Graph: g.label, Runtime: res.Runtime, Paper: g.paperHur,
		})
		gx := baseline.GraphX().RunPageRank(sim.Default(), edges, vertexBytes, 5, 1.0)
		row := Table4Row{System: "GraphX", Graph: g.label, Runtime: gx.Runtime, Paper: g.paperGX}
		if gx.Crashed {
			row.Timeout = true
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 4: PageRank, 5 iterations (32 machines)")
	fmt.Fprintf(&b, "%-10s %-10s %12s %10s\n", "System", "Graph", "Simulated", "Paper")
	for _, r := range rows {
		rt := fmt.Sprintf("%.0fs", r.Runtime)
		if r.Timeout {
			rt = ">12h"
		}
		fmt.Fprintf(&b, "%-10s %-10s %12s %10s\n", r.System, r.Graph, rt, r.Paper)
	}
	return b.String()
}

// ---- §5.2 storage scaling and Eq. 1 utilization ----

// ScalingRow is one row of the storage-scaling experiment.
type ScalingRow struct {
	Machines int
	ReadBW   float64 // bytes/s
	WriteBW  float64
	Speedup  float64 // vs 1 machine
}

// StorageScaling reproduces §5.2's throughput experiment: aggregate
// read/write bandwidth doubling machines 1→32 (paper: 330 MB/s → 10.53
// GB/s read, a 31.9× speedup).
func StorageScaling() []ScalingRow {
	var rows []ScalingRow
	var base float64
	for m := 1; m <= 32; m *= 2 {
		rho := sim.Utilization(10, m)
		read := 330e6 * float64(m) * rho
		write := 327e6 * float64(m) * rho
		if m == 1 {
			base = read
		}
		rows = append(rows, ScalingRow{Machines: m, ReadBW: read, WriteBW: write, Speedup: read / base})
	}
	return rows
}

// FormatScaling renders the storage-scaling rows.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Storage scaling (§5.2): aggregate bag throughput vs machines")
	fmt.Fprintf(&b, "%-9s %12s %12s %9s\n", "Machines", "Read", "Write", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %9.2fGB/s %9.2fGB/s %8.1fx\n",
			r.Machines, r.ReadBW/GB, r.WriteBW/GB, r.Speedup)
	}
	return b.String()
}

// UtilizationRow is one row of the Eq. 1 table.
type UtilizationRow struct {
	B   int
	Rho float64
}

// BatchUtilization tabulates Eq. 1 for the b values the paper quotes
// (63% at b=1, 86% at b=2, 95% at b=3, >99% at b=10).
func BatchUtilization(machines int) []UtilizationRow {
	var rows []UtilizationRow
	for _, b := range []int{1, 2, 3, 5, 10, 16, 32} {
		rows = append(rows, UtilizationRow{B: b, Rho: sim.Utilization(b, machines)})
	}
	return rows
}

// FormatUtilization renders the Eq. 1 table.
func FormatUtilization(rows []UtilizationRow, machines int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Eq. 1: storage utilization rho(b, m=%d)\n", machines)
	for _, r := range rows {
		fmt.Fprintf(&b, "b=%-4d %6.1f%%\n", r.B, 100*r.Rho)
	}
	return b.String()
}
