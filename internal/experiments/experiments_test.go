package experiments

import (
	"strings"
	"testing"
)

// These tests assert the *shape* of each reproduced experiment — who wins,
// monotonicity, crossovers — which is the reproduction contract for a
// simulated substrate (absolute numbers are recorded in EXPERIMENTS.md).

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Runtime <= rows[i-1].Runtime {
			t.Errorf("runtime must grow with input: %s %.1f <= %s %.1f",
				rows[i].Label, rows[i].Runtime, rows[i-1].Label, rows[i-1].Runtime)
		}
	}
	// Every row within 2x of the paper's number.
	for _, r := range rows {
		ratio := r.Runtime / r.Paper
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: simulated %.1fs vs paper %.1fs (off by %.2fx)",
				r.Label, r.Runtime, r.Paper, ratio)
		}
	}
	// Large inputs scale nearly linearly at disk bandwidth (320GB→3.2TB
	// is 10x data for ~10x time).
	last, prev := rows[4].Runtime, rows[3].Runtime
	if last/prev < 7 || last/prev > 13 {
		t.Errorf("disk-bound scaling %.1fx, want ~10x", last/prev)
	}
}

func TestFigure5Shape(t *testing.T) {
	cells := Figure5()
	bySize := map[string][]Fig5Cell{}
	for _, c := range cells {
		bySize[c.PerMachine] = append(bySize[c.PerMachine], c)
	}
	worst := 0.0
	for size, cs := range bySize {
		for i := 1; i < len(cs); i++ {
			if cs[i].Slowdown < cs[i-1].Slowdown-0.05 {
				t.Errorf("%s: slowdown not monotone in skew: %.2f then %.2f",
					size, cs[i-1].Slowdown, cs[i].Slowdown)
			}
			if cs[i].Slowdown > worst {
				worst = cs[i].Slowdown
			}
		}
	}
	// Paper's headline: at most 2.4x slowdown, far below the 7.1x Amdahl
	// bound for unsplittable partitions.
	if worst > 3.0 {
		t.Errorf("worst slowdown %.2fx exceeds the paper's 2.4x ballpark", worst)
	}
	if worst < 1.1 {
		t.Errorf("worst slowdown %.2fx: skew has no effect at all", worst)
	}
}

func TestFigure6Shape(t *testing.T) {
	rows := Figure6()
	byKey := map[string]map[int]Fig6Row{}
	for _, r := range rows {
		if byKey[r.System] == nil {
			byKey[r.System] = map[int]Fig6Row{}
		}
		byKey[r.System][r.Partitions] = r
	}
	nc32 := byKey["HurricaneNC"][32]
	h32 := byKey["Hurricane"][32]
	// At coarse partitions, cloning beats static partitioning decisively.
	if h32.Normalized >= nc32.Normalized {
		t.Errorf("Hurricane (%.2fx) not below HurricaneNC (%.2fx) at 32 partitions",
			h32.Normalized, nc32.Normalized)
	}
	// HurricaneNC must respect the Amdahl bound (cannot beat it by much
	// and tracks its decline).
	for parts, r := range byKey["HurricaneNC"] {
		if parts <= 256 && r.Normalized > r.Amdahl {
			continue // above the bound is expected (bound is best-case)
		}
		_ = r
	}
	// Over-partitioning hurts both systems (scheduling overhead at 4096).
	nc4096 := byKey["HurricaneNC"][4096]
	nc512 := byKey["HurricaneNC"][512]
	if nc4096.Total <= nc512.Total {
		t.Errorf("4096 partitions (%.1fs) should be slower than 512 (%.1fs)",
			nc4096.Total, nc512.Total)
	}
	// Hurricane's runtime varies much less across partition counts than
	// HurricaneNC's (cloning adapts; static partitioning cannot).
	span := func(m map[int]Fig6Row) float64 {
		min, max := 1e18, 0.0
		for _, r := range m {
			if r.Total < min {
				min = r.Total
			}
			if r.Total > max {
				max = r.Total
			}
		}
		return max / min
	}
	if span(byKey["Hurricane"]) >= span(byKey["HurricaneNC"]) {
		t.Errorf("Hurricane span %.2fx not tighter than HurricaneNC %.2fx",
			span(byKey["Hurricane"]), span(byKey["HurricaneNC"]))
	}
}

func TestFigures78Shape(t *testing.T) {
	rows := Figures78()
	get := func(cfg string, s float64) Fig78Row {
		for _, r := range rows {
			if r.Config == cfg && r.Skew == s {
				return r
			}
		}
		t.Fatalf("missing row %s %.1f", cfg, s)
		return Fig78Row{}
	}
	// Phase 1: spreading data is essential; local placement bottlenecks
	// on the one disk serving the input (Fig. 7).
	if get("c=on,spread", 0).Phase1 >= get("c=on,local", 0).Phase1 {
		t.Error("spread phase 1 not faster than local")
	}
	// Phase 2 under high skew: cloning + spreading wins overall (Fig. 8).
	best := get("c=on,spread", 1.0).Phase2
	for _, cfg := range []string{"c=off,local", "c=off,spread", "c=on,local"} {
		if best > get(cfg, 1.0).Phase2 {
			t.Errorf("c=on,spread (%.0fs) not best at s=1: %s is %.0fs",
				best, cfg, get(cfg, 1.0).Phase2)
		}
	}
	// Without cloning, high skew hurts phase 2 badly.
	if get("c=off,spread", 1.0).Phase2 < 2*get("c=off,spread", 0).Phase2 {
		t.Error("skew does not hurt the no-cloning configuration enough")
	}
}

func TestFigure9Shape(t *testing.T) {
	res := Figure9()
	if res.Clones == 0 {
		t.Fatal("no clones in the Fig. 9 run")
	}
	if res.Crashed {
		t.Fatalf("run crashed: %s", res.CrashReason)
	}
	// The throughput ramps: peak is much higher than the first sample.
	first := res.Timeline[0].Throughput
	peak := 0.0
	for _, s := range res.Timeline {
		if s.Throughput > peak {
			peak = s.Throughput
		}
	}
	if peak < 4*first {
		t.Errorf("no cloning ramp visible: first %.2e peak %.2e", first, peak)
	}
	if res.MergeTime == 0 {
		t.Error("expected merge work at the end of the skewed run")
	}
}

func TestFigure10Shape(t *testing.T) {
	rows := Figure10()
	byB := map[int]Fig10Row{}
	for _, r := range rows {
		byB[r.B] = r
	}
	// b=10 is the sweet spot: better than b=1 by roughly the paper's 33%,
	// and b=32 regresses.
	if byB[10].Normalized > 0.85 {
		t.Errorf("b=10 improvement only to %.2fx of b=1", byB[10].Normalized)
	}
	if byB[10].Normalized < 0.5 {
		t.Errorf("b=10 improvement to %.2fx is implausibly large", byB[10].Normalized)
	}
	if byB[32].Normalized <= byB[10].Normalized {
		t.Errorf("b=32 (%.2fx) must regress vs b=10 (%.2fx)",
			byB[32].Normalized, byB[10].Normalized)
	}
	// Monotone improvement from b=1 to b=5.
	for _, pair := range [][2]int{{1, 2}, {2, 3}, {3, 5}} {
		if byB[pair[1]].Runtime > byB[pair[0]].Runtime+0.5 {
			t.Errorf("b=%d slower than b=%d", pair[1], pair[0])
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	res := Figure11()
	clean := Figure9() // same workload but uniform… use a fresh uniform run instead
	_ = clean
	if res.Crashed {
		t.Fatalf("crashed: %s", res.CrashReason)
	}
	// Crashes delay completion but the job still finishes.
	if res.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	// The throughput trace must show a dip after the first crash at t=20.
	var before, after float64
	for _, s := range res.Timeline {
		if s.Time > 15 && s.Time <= 20 {
			before = s.Throughput
		}
		if s.Time > 20 && s.Time <= 23 && after == 0 {
			after = s.Throughput
		}
	}
	if before == 0 || after == 0 {
		t.Skip("trace too coarse to find the crash dip")
	}
	if after > before {
		t.Errorf("no throughput dip after compute crash: %.2e -> %.2e", before, after)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	get := func(sys, label string) float64 {
		for _, r := range rows {
			if r.System == sys && r.Label == label {
				return r.Runtime
			}
		}
		t.Fatalf("missing %s %s", sys, label)
		return 0
	}
	for _, label := range []string{"320MB", "32GB"} {
		hur, spark, hadoop := get("Hurricane", label), get("Spark", label), get("Hadoop", label)
		if !(hur < spark && spark < hadoop) {
			t.Errorf("%s ordering: hurricane %.1f, spark %.1f, hadoop %.1f",
				label, hur, spark, hadoop)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	cells := Figure12()
	var sparkCrash, hurricaneWorst float64
	var sawCrash bool
	for _, c := range cells {
		if c.System == "Hurricane" && c.Slowdown > hurricaneWorst {
			hurricaneWorst = c.Slowdown
		}
		if c.System == "Spark" && c.Label == "32GB" && c.Skew == 1.0 {
			sawCrash = c.Crashed
			sparkCrash = c.Slowdown
		}
	}
	if !sawCrash {
		t.Errorf("Spark must crash (OOM) at 32GB s=1 (got slowdown %.2f)", sparkCrash)
	}
	if hurricaneWorst > 2.0 {
		t.Errorf("Hurricane worst slowdown %.2fx too high", hurricaneWorst)
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3()
	get := func(sys, join string, s float64) Table3Row {
		for _, r := range rows {
			if r.System == sys && r.Join == join && r.Skew == s {
				return r
			}
		}
		t.Fatalf("missing %s %s %.1f", sys, join, s)
		return Table3Row{}
	}
	for _, join := range []string{"3.2GB x 32GB", "32GB x 320GB"} {
		// Hurricane beats Spark everywhere.
		for _, s := range []float64{0, 1} {
			h, sp := get("Hurricane", join, s), get("Spark", join, s)
			if !sp.Timeout && h.Runtime >= sp.Runtime {
				t.Errorf("%s s=%.0f: hurricane %.0f >= spark %.0f", join, s, h.Runtime, sp.Runtime)
			}
		}
		// Hurricane degrades gracefully: paper keeps it below ~2.4x.
		h0, h1 := get("Hurricane", join, 0), get("Hurricane", join, 1)
		if h1.Runtime/h0.Runtime > 3 {
			t.Errorf("%s: hurricane skew degradation %.2fx", join, h1.Runtime/h0.Runtime)
		}
	}
	// The big skewed Spark join must blow past 12h, as in the paper.
	if !get("Spark", "32GB x 320GB", 1).Timeout {
		t.Error("Spark 32GBx320GB s=1 must time out")
	}
	// The small skewed Spark join finishes but is order-of-magnitude
	// slower than Hurricane (paper: 1615s vs 89s).
	sp := get("Spark", "3.2GB x 32GB", 1)
	h := get("Hurricane", "3.2GB x 32GB", 1)
	if !sp.Timeout && sp.Runtime/h.Runtime < 5 {
		t.Errorf("skewed small join: spark/hurricane = %.1fx, paper ~18x", sp.Runtime/h.Runtime)
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	get := func(sys, graph string) Table4Row {
		for _, r := range rows {
			if r.System == sys && r.Graph == graph {
				return r
			}
		}
		t.Fatalf("missing %s %s", sys, graph)
		return Table4Row{}
	}
	for _, g := range []string{"RMAT-24", "RMAT-27"} {
		h, gx := get("Hurricane", g), get("GraphX", g)
		if gx.Timeout {
			continue
		}
		ratio := gx.Runtime / h.Runtime
		// Paper: Hurricane is 5-10x faster (13x at RMAT-27).
		if ratio < 3 {
			t.Errorf("%s: GraphX/Hurricane ratio %.1fx, paper 5-13x", g, ratio)
		}
	}
	if !get("GraphX", "RMAT-30").Timeout {
		t.Error("GraphX RMAT-30 must exceed 12h, as in the paper")
	}
	if get("Hurricane", "RMAT-30").Timeout {
		t.Error("Hurricane RMAT-30 must finish")
	}
}

func TestStorageScalingShape(t *testing.T) {
	rows := StorageScaling()
	last := rows[len(rows)-1]
	if last.Machines != 32 {
		t.Fatalf("last row machines = %d", last.Machines)
	}
	// Paper: 10.53 GB/s read at 32 machines, 31.9x speedup.
	if last.ReadBW < 10e9 || last.ReadBW > 11e9 {
		t.Errorf("32-machine read bandwidth %.2f GB/s, paper 10.53", last.ReadBW/1e9)
	}
	if last.Speedup < 31 || last.Speedup > 32.01 {
		t.Errorf("speedup %.1fx, paper 31.9x", last.Speedup)
	}
}

func TestFormatters(t *testing.T) {
	// Formatting must include headline strings and not panic.
	checks := []struct {
		out  string
		want string
	}{
		{FormatTable1(Table1()), "Table 1"},
		{FormatTable2(Table2()), "Hadoop"},
		{FormatUtilization(BatchUtilization(32), 32), "rho"},
		{FormatScaling(StorageScaling()), "Speedup"},
		{FormatFigure10(Figure10()), "b=10"},
	}
	for _, c := range checks {
		if !strings.Contains(c.out, c.want) {
			t.Errorf("formatted output missing %q:\n%s", c.want, c.out)
		}
	}
}
