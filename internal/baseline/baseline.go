// Package baseline models the comparison systems of the paper's
// evaluation — Spark, Hadoop, and GraphX — on top of the same cluster
// simulator that models Hurricane. The baselines differ from Hurricane in
// exactly the ways the paper attributes their performance to:
//
//   - static partitioning: partition counts are fixed up front and no
//     mechanism can split a large partition at runtime (Cloning=false);
//     like the paper, we sweep several partition counts and report the
//     best result;
//   - sort-based shuffle: intermediate data is sorted and spilled, adding
//     CPU and I/O work between stages;
//   - per-task and per-job overheads (JVM startup, YARN scheduling) —
//     large for Hadoop, modest for Spark;
//   - task memory ceilings: Spark crashes when a skewed task's working
//     set exceeds its 16 GB task memory limit (the paper's Fig. 12
//     "negative bars"); Hadoop spills instead, at a steep I/O penalty.
package baseline

import (
	"math"

	"repro/internal/sim"
)

// Model captures one baseline system's cost structure.
type Model struct {
	// Name labels result rows ("Spark", "Hadoop").
	Name string
	// JobStartup is fixed job submission + scheduling overhead (s).
	JobStartup float64
	// PerTaskOverhead is scheduling/JVM cost per task (s).
	PerTaskOverhead float64
	// SortFactor divides stage CPU rates to account for sorting
	// intermediate data (Hurricane needs no sort, §5.3: "Hurricane
	// achieves lower overall runtimes because it does not need to sort
	// intermediate data").
	SortFactor float64
	// ShuffleIO multiplies intermediate output I/O (spill write + read).
	ShuffleIO float64
	// TaskMemLimit is the per-task memory ceiling in bytes (0 = no
	// crash, spill instead).
	TaskMemLimit float64
	// MemAmplification is the in-memory working set per input byte
	// (JVM object headers, boxing, hash tables).
	MemAmplification float64
	// SpillAmplification is the per-task working set per input byte used
	// for spill decisions (0 = use MemAmplification). GraphX keeps
	// partitioned edge data compact per task but amplifies cluster-wide.
	SpillAmplification float64
	// SpillPenalty divides effective I/O bandwidth for tasks whose
	// working set exceeds memory and must spill (random I/O).
	SpillPenalty float64
	// PartitionSweep is the set of static partition counts to try; the
	// best runtime is reported (the paper: "we try multiple values for
	// the number of partitions (ranging from 100 to 10000) and report
	// the best runtime").
	PartitionSweep []int
}

// Spark returns the Spark 2.2 cost model.
func Spark() Model {
	return Model{
		Name:             "Spark",
		JobStartup:       7.0,
		PerTaskOverhead:  0.01,
		SortFactor:       3.0,
		ShuffleIO:        1.0,
		TaskMemLimit:     16e9,
		MemAmplification: 6.0,
		SpillPenalty:     1.0,
		PartitionSweep:   []int{64, 128, 256, 1024, 4096},
	}
}

// Hadoop returns the Hadoop 2.7 cost model.
func Hadoop() Model {
	return Model{
		Name:             "Hadoop",
		JobStartup:       30.0,
		PerTaskOverhead:  0.15,
		SortFactor:       3.5,
		ShuffleIO:        2.0,
		TaskMemLimit:     0, // spills rather than crashing
		MemAmplification: 6.0,
		SpillPenalty:     3.0,
		PartitionSweep:   []int{64, 128, 256, 1024, 4096},
	}
}

// GraphX returns the GraphX cost model used for Table 4: Spark's engine
// with heavier per-iteration shuffles and graph-sized working sets.
func GraphX() Model {
	m := Spark()
	m.Name = "GraphX"
	m.SortFactor = 1.6
	m.ShuffleIO = 2.0
	m.MemAmplification = 16.0 // vertex/edge triplet views cluster-wide
	m.SpillAmplification = 2.0
	m.SpillPenalty = 6.0
	m.TaskMemLimit = 16e9
	return m
}

// Result wraps a simulation result with crash information surfaced the
// way the paper reports it.
type Result struct {
	sim.Result
	// OOM marks a Spark-style task-memory crash (Fig. 12 negative bars).
	OOM bool
	// Partitions is the static partition count that produced this
	// (best) result.
	Partitions int
}

// RunClickLog runs the baseline's ClickLog with a partition sweep,
// returning the best non-crashed result (or the crash, if every
// configuration crashes).
func (m Model) RunClickLog(cfg sim.Config, totalInput, skew float64) Result {
	best := Result{}
	first := true
	for _, parts := range m.PartitionSweep {
		r := m.runClickLogOnce(cfg, totalInput, skew, parts)
		if first || better(r, best) {
			best = r
			first = false
		}
	}
	return best
}

func better(a, b Result) bool {
	if a.OOM != b.OOM {
		return !a.OOM
	}
	return a.Runtime < b.Runtime
}

func (m Model) runClickLogOnce(cfg sim.Config, totalInput, skew float64, partitions int) Result {
	// The reduce key is the region: a shuffle-based system cannot split
	// one region's distinct-count across reducers, so its effective
	// reduce-side partition count is capped at the region count however
	// many partitions are configured. (Hurricane is not subject to this
	// cap: its merge procedure lets clones share a region, §6.)
	reduceParts := partitions
	if reduceParts > 64 {
		reduceParts = 64
	}
	job := sim.ClickLogJob(sim.ClickLogParams{
		TotalInput:       totalInput,
		Skew:             skew,
		Partitions:       reduceParts,
		Phase1Partitions: partitions,
	})
	m.applyCosts(&job)
	// Task-memory crash check: the distinct-count working set of the
	// largest Phase 2 partition.
	if m.TaskMemLimit > 0 {
		largest := 0.0
		for _, t := range job.Tasks {
			if t.Phase == 2 && t.InputBytes > largest {
				largest = t.InputBytes
			}
		}
		if largest*m.MemAmplification > m.TaskMemLimit {
			return Result{
				Result: sim.Result{
					Crashed:     true,
					CrashReason: "task exceeded 16 GB task memory limit",
				},
				OOM:        true,
				Partitions: partitions,
			}
		}
	}
	c := m.applyConfig(cfg, len(job.Tasks))
	res := sim.Run(c, job)
	return Result{Result: res, Partitions: partitions}
}

// applyCosts rewrites a Hurricane job into the baseline's cost structure:
// no cloning, sort overhead on CPU rates, shuffle I/O on outputs, and
// spill penalties on oversized working sets.
func (m Model) applyCosts(job *sim.Job) {
	for i := range job.Tasks {
		t := &job.Tasks[i]
		t.Cloneable = false
		t.Mergeable = false
		t.CPURate /= m.SortFactor
		t.OutputRatio *= m.ShuffleIO
		spillAmp := m.SpillAmplification
		if spillAmp <= 0 {
			spillAmp = m.MemAmplification
		}
		working := t.InputBytes * spillAmp
		if m.TaskMemLimit > 0 && working > m.TaskMemLimit && m.SpillPenalty > 1 {
			t.CPURate /= m.SpillPenalty
		}
		if m.TaskMemLimit == 0 { // Hadoop: always possible to spill
			if working > 8e9 {
				t.CPURate /= m.SpillPenalty
			}
		}
	}
}

func (m Model) applyConfig(cfg sim.Config, numTasks int) sim.Config {
	cfg.Cloning = false
	cfg.Startup = m.JobStartup
	cfg.PerTaskOverhead = m.PerTaskOverhead
	// HDFS-style local reads rather than spread bags: the paper ensures
	// "both Hadoop and Spark read their input data from the local disk";
	// their shuffles do traverse the network. Keeping the global-pool
	// abstraction with full disk efficiency approximates data-local map
	// scheduling.
	cfg.SpreadData = true
	return cfg
}

// RunHashJoin runs the baseline join with a partition sweep (Table 3).
// Joins shuffle raw tuples rather than sorting aggregates, so the sort
// overhead relative to Hurricane is smaller than ClickLog's (the paper's
// uniform join gap is ≈1.5–1.8×, not 6×).
func (m Model) RunHashJoin(cfg sim.Config, buildBytes, probeBytes, skew float64) Result {
	m.SortFactor = 1.6
	best := Result{}
	first := true
	for _, parts := range m.PartitionSweep {
		job := sim.HashJoinJob(sim.HashJoinParams{
			BuildBytes:       buildBytes,
			ProbeBytes:       probeBytes,
			Skew:             skew,
			Partitions:       parts,
			Phase1Partitions: parts,
		})
		m.applyCosts(&job)
		if m.TaskMemLimit > 0 {
			// The hot build partition's in-memory hash table (the join
			// output is streamed, not held).
			hot := sim.LargestPartitionFraction(parts, skew, parts)
			largest := buildBytes * hot * m.MemAmplification
			if largest > m.TaskMemLimit {
				r := Result{
					Result:     sim.Result{Crashed: true, CrashReason: "join partition exceeded task memory"},
					OOM:        true,
					Partitions: parts,
				}
				if first {
					best, first = r, false
				}
				continue
			}
		}
		c := m.applyConfig(cfg, len(job.Tasks))
		res := Result{Result: sim.Run(c, job), Partitions: parts}
		if first || better(res, best) {
			best, first = res, false
		}
	}
	return best
}

// RunPageRank runs the baseline PageRank (Table 4's GraphX column).
func (m Model) RunPageRank(cfg sim.Config, edgeBytes, vertexBytes float64, iterations int, degreeSkew float64) Result {
	job := sim.PageRankJob(sim.PageRankParams{
		EdgeBytes:      edgeBytes,
		VertexBytes:    vertexBytes,
		Iterations:     iterations,
		DegreeSkew:     degreeSkew,
		InitPartitions: 64,
	})
	m.applyCosts(&job)
	// Graph working set vs cluster memory: when the amplified edge +
	// vertex data cannot fit, GraphX grinds into spill-land.
	clusterMem := cfg.MemoryPerMachine * float64(cfg.Machines)
	working := (edgeBytes + vertexBytes) * m.MemAmplification
	if working > clusterMem {
		// Severe thrash: every stage spills at the penalty rate.
		for i := range job.Tasks {
			job.Tasks[i].CPURate /= m.SpillPenalty
			job.Tasks[i].OutputRatio *= 2
		}
	}
	c := m.applyConfig(cfg, len(job.Tasks))
	res := sim.Run(c, job)
	// The paper reports ">12h" for runs that did not finish.
	if res.Runtime > 12*3600 {
		res.Crashed = true
		res.CrashReason = "did not finish within 12 hours"
	}
	return Result{Result: res, Partitions: 0}
}

// TimeoutHours converts the paper's ">12h" convention.
func TimeoutHours(r Result) float64 {
	if r.Crashed {
		return math.Inf(1)
	}
	return r.Runtime / 3600
}
