package baseline

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSparkCrashesOnSkewedClickLog(t *testing.T) {
	// 32 GB at s=1: the hot region's reducer working set exceeds the
	// 16 GB task memory limit regardless of partition count (a region key
	// cannot be split across reducers).
	r := Spark().RunClickLog(sim.Default(), 32e9, 1.0)
	if !r.OOM {
		t.Fatalf("expected OOM, got runtime %.1fs", r.Runtime)
	}
	// The uniform run finishes.
	u := Spark().RunClickLog(sim.Default(), 32e9, 0)
	if u.OOM || u.Crashed {
		t.Fatalf("uniform run crashed: %+v", u)
	}
}

func TestHadoopSpillsInsteadOfCrashing(t *testing.T) {
	r := Hadoop().RunClickLog(sim.Default(), 32e9, 1.0)
	if r.OOM || r.Crashed {
		t.Fatalf("Hadoop must spill, not crash: %+v", r)
	}
	u := Hadoop().RunClickLog(sim.Default(), 32e9, 0)
	if r.Runtime < 2*u.Runtime {
		t.Errorf("skew degradation only %.2fx (paper: large)", r.Runtime/u.Runtime)
	}
}

func TestBaselineOrderingUniform(t *testing.T) {
	spark := Spark().RunClickLog(sim.Default(), 32e9, 0)
	hadoop := Hadoop().RunClickLog(sim.Default(), 32e9, 0)
	if spark.Runtime >= hadoop.Runtime {
		t.Fatalf("Spark (%.1fs) must beat Hadoop (%.1fs)", spark.Runtime, hadoop.Runtime)
	}
}

func TestPartitionSweepPicksBest(t *testing.T) {
	m := Spark()
	best := m.RunClickLog(sim.Default(), 32e9, 1.0)
	// The reported result must be at least as good as any single
	// configuration (or a crash only if everything crashes).
	for _, parts := range m.PartitionSweep {
		r := m.runClickLogOnce(sim.Default(), 32e9, 1.0, parts)
		if !r.OOM && best.OOM {
			t.Fatalf("sweep returned a crash although %d partitions finished", parts)
		}
		if !r.OOM && !best.OOM && r.Runtime < best.Runtime-1e-9 {
			t.Fatalf("sweep missed better config: %d partitions at %.1fs < %.1fs",
				parts, r.Runtime, best.Runtime)
		}
	}
}

func TestJoinBaselineTimesOutOnBigSkew(t *testing.T) {
	r := Spark().RunHashJoin(sim.Default(), 32e9, 320e9, 1.0)
	if !r.OOM && r.Runtime <= 12*3600 {
		t.Fatalf("big skewed Spark join finished in %.0fs; paper: >12h", r.Runtime)
	}
	u := Spark().RunHashJoin(sim.Default(), 32e9, 320e9, 0)
	if u.OOM || u.Runtime > 3600 {
		t.Fatalf("uniform Spark join: %+v", u)
	}
}

func TestGraphXThrashesAtRMAT30(t *testing.T) {
	vertices := float64(int64(1) << 30)
	edges := vertices * 16 * 16
	r := GraphX().RunPageRank(sim.Default(), edges, vertices*16, 5, 1.0)
	if !r.Crashed {
		t.Fatalf("GraphX RMAT-30 finished in %.0fs; paper: >12h", r.Runtime)
	}
	// RMAT-24 fits and finishes.
	v24 := float64(int64(1) << 24)
	small := GraphX().RunPageRank(sim.Default(), v24*16*16, v24*16, 5, 1.0)
	if small.Crashed {
		t.Fatalf("GraphX RMAT-24 crashed: %s", small.CrashReason)
	}
}

func TestTimeoutHours(t *testing.T) {
	if !math.IsInf(TimeoutHours(Result{Result: sim.Result{Crashed: true}}), 1) {
		t.Fatal("crashed result must map to +Inf hours")
	}
	if got := TimeoutHours(Result{Result: sim.Result{Runtime: 7200}}); got != 2 {
		t.Fatalf("got %.1f hours", got)
	}
}

func TestSpillAmplificationDefaultsToMemAmplification(t *testing.T) {
	m := Model{SortFactor: 1, ShuffleIO: 1, MemAmplification: 10, SpillPenalty: 5, TaskMemLimit: 1e9}
	job := sim.Job{Tasks: []sim.Task{{Name: "t", Phase: 1, InputBytes: 5e8, CPURate: 100e6}}}
	m.applyCosts(&job)
	// 5e8 × 10 = 5e9 > 1e9 → spill penalty applies.
	if job.Tasks[0].CPURate != 100e6/5 {
		t.Fatalf("spill penalty not applied: %.0f", job.Tasks[0].CPURate)
	}
}
