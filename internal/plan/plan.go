// Package plan is Hurricane's query planner: a declarative logical plan —
// Scan / Filter / Map / FlatMap / GroupBy / Join / TopK / Sink — compiled
// into an adaptive DAG job for the core engine.
//
// The planner is the adaptivity layer the paper's machinery was missing a
// front door for: instead of hand-wiring stages and bags per workload,
// applications state *what* they compute and the compiler chooses *how* —
// fusing adjacent narrow operators into single streaming tasks, inserting
// partitioned shuffle edges only at wide boundaries (GroupBy, shuffled
// Join), and picking a physical join strategy per edge from observed
// statistics (in the spirit of SharesSkew's per-key strategy choice and
// Reshape's adaptive layer above the operators):
//
//   - broadcast join when the build side is known-small: the probe side is
//     consumed directly (clones split it chunk-by-chunk) and every worker
//     scans the build side in full — no shuffle at all;
//   - skewed join when compile-time statistics (a warm count-min sketch /
//     EdgeStats from a previous run or window) show heavy-hitter keys: the
//     probe side is shuffled through a partitioned edge whose seed
//     partition map pre-isolates the heavy keys onto replicated fragment
//     consumers (record-level Spread), while the long tail takes the
//     ordinary partitioned path;
//   - plain repartition join otherwise — which still upgrades itself at
//     runtime: the edge's count-min sketch feeds the control plane's
//     SplitPartition/IsolateKey policies, so a skewed join emerges
//     mid-run even when compile-time statistics were absent.
//
// The package is untyped (records travel as `any` plus an AnyCodec); the
// typed, generic public surface is package repro/hurricane/q.
package plan

import "fmt"

// AnyCodec is the untyped record codec the planner threads between
// operators. The typed q package adapts chunk.Codec[T] implementations.
type AnyCodec interface {
	// EncodeAny appends the encoded record to dst.
	EncodeAny(dst []byte, v any) []byte
	// DecodeAny parses one whole record.
	DecodeAny(record []byte) (any, error)
}

// opKind enumerates the logical operators.
type opKind int

const (
	opScan opKind = iota
	opFilter
	opMap
	opFlatMap
	opGroupBy
	opJoin
	opTopK
)

func (k opKind) String() string {
	switch k {
	case opScan:
		return "scan"
	case opFilter:
		return "filter"
	case opMap:
		return "map"
	case opFlatMap:
		return "flatmap"
	case opGroupBy:
		return "groupby"
	case opJoin:
		return "join"
	case opTopK:
		return "topk"
	}
	return "?"
}

// GroupBySpec is the untyped description of a keyed aggregation. The
// aggregate must be mergeable (§2.3): Add folds one record into an
// accumulator, Merge reconciles two accumulators of the same key — which
// is what lets the engine spread a heavy key's records across several
// consumers and reconcile downstream.
type GroupBySpec struct {
	// Key extracts the routing key of an input record.
	Key func(any) uint64
	// Init returns a fresh accumulator.
	Init func() any
	// Add folds one record into an accumulator, returning it.
	Add func(acc, rec any) any
	// Merge reconciles two accumulators for the same key.
	Merge func(a, b any) any
	// PartialCodec encodes one (key, accumulator) partial record — the
	// GroupBy node's output record type.
	PartialCodec AnyCodec
	// MakePartial boxes a (key, accumulator) into a partial record.
	MakePartial func(key uint64, acc any) any
	// SplitPartial unboxes a partial record.
	SplitPartial func(partial any) (uint64, any)
}

// JoinStrategy is a physical join implementation.
type JoinStrategy int

const (
	// JoinAuto lets compile-time statistics decide (the default).
	JoinAuto JoinStrategy = iota
	// JoinRepartition shuffles the probe side through a partitioned edge;
	// runtime splitting/isolation still applies.
	JoinRepartition
	// JoinBroadcast consumes the probe side directly (no shuffle); every
	// worker scans the full build side.
	JoinBroadcast
	// JoinSkewed is repartition plus compile-time pre-isolation of
	// heavy-hitter keys onto spread fragment consumers.
	JoinSkewed
)

func (s JoinStrategy) String() string {
	switch s {
	case JoinAuto:
		return "auto"
	case JoinRepartition:
		return "repartition"
	case JoinBroadcast:
		return "broadcast"
	case JoinSkewed:
		return "skewed"
	}
	return "?"
}

// JoinSpec is the untyped description of an equi-join. The build side is
// hash-loaded in memory by every join worker (a scan input); the probe
// side streams. Join emissions must be record-parallel — each probe
// record's matches are independent — which is what makes record-level
// spreading of a heavy probe key safe.
type JoinSpec struct {
	// BuildKey / ProbeKey extract the join key from each side's records.
	BuildKey func(any) uint64
	ProbeKey func(any) uint64
	// Codec encodes the join's output records.
	Codec AnyCodec
	// Join emits the matches of one (build, probe) record pair.
	Join func(build, probe any, emit func(any) error) error
	// Strategy overrides the planner's choice for this join (JoinAuto
	// lets statistics decide).
	Strategy JoinStrategy
}

// Node is one operator of the logical plan tree.
type Node struct {
	id    int
	owner *Plan
	kind  opKind
	in    []*Node // operand nodes: 1 for narrow ops, [build, probe] for join
	codec AnyCodec

	// scan
	bag string

	// Narrow ops are stored as per-worker factories: the compiler calls
	// the factory once per worker run. Only MapPerWorker exposes the
	// factory form — Filter/Map/FlatMap wrap a single shared closure, so
	// their user functions must be stateless (safe for concurrent use by
	// clones); a stateful per-record operator goes through MapPerWorker,
	// whose factory gives each worker its own state.
	filterF func() func(any) bool
	mapF    func() func(any) (any, error)
	flatF   func() func(any, func(any) error) error

	// wide ops
	gb   *GroupBySpec
	join *JoinSpec

	// topk
	k    int
	less func(a, b any) bool
}

// ID returns the node's plan-unique id (creation order, so ids are
// topologically sorted).
func (n *Node) ID() int { return n.id }

// Kind returns the operator name ("scan", "filter", ...).
func (n *Node) Kind() string { return n.kind.String() }

// sink is one requested materialized output.
type sink struct {
	bag  string
	node *Node
}

// Plan is a logical dataflow plan under construction.
type Plan struct {
	name  string
	nodes []*Node
	sinks []sink
}

// New returns an empty logical plan.
func New(name string) *Plan { return &Plan{name: name} }

// Name returns the plan (and compiled application) name.
func (p *Plan) Name() string { return p.name }

func (p *Plan) add(n *Node) *Node {
	n.id = len(p.nodes)
	n.owner = p
	p.nodes = append(p.nodes, n)
	return n
}

// Scan reads a source bag of records decoded by codec. The bag must be
// loaded and sealed by the caller before the compiled job runs.
func (p *Plan) Scan(bag string, codec AnyCodec) *Node {
	return p.add(&Node{kind: opScan, bag: bag, codec: codec})
}

// Filter keeps the records pred accepts. pred is shared by all workers
// of the stage and must be stateless.
func (p *Plan) Filter(in *Node, pred func(any) bool) *Node {
	return p.add(&Node{kind: opFilter, in: []*Node{in}, codec: in.codec,
		filterF: func() func(any) bool { return pred }})
}

// Map transforms each record; codec encodes the transformed records.
func (p *Plan) Map(in *Node, codec AnyCodec, fn func(any) (any, error)) *Node {
	return p.MapPerWorker(in, codec, func() func(any) (any, error) { return fn })
}

// MapPerWorker is Map with worker-local state: factory runs once per
// worker (original or clone), and the returned function transforms that
// worker's records. Use it for operators that batch or count across
// records — shared closures would race across concurrent clones.
func (p *Plan) MapPerWorker(in *Node, codec AnyCodec, factory func() func(any) (any, error)) *Node {
	return p.add(&Node{kind: opMap, in: []*Node{in}, codec: codec, mapF: factory})
}

// FlatMap emits zero or more records per input record. fn is shared by
// all workers of the stage and must be stateless.
func (p *Plan) FlatMap(in *Node, codec AnyCodec, fn func(any, func(any) error) error) *Node {
	return p.add(&Node{kind: opFlatMap, in: []*Node{in}, codec: codec,
		flatF: func() func(any, func(any) error) error { return fn }})
}

// GroupBy aggregates records by key behind a partitioned shuffle edge.
// The node's output records are *mergeable partials* (spec.PartialCodec):
// a key spread across several consumers, or refined mid-stream, appears
// as several partials that merge downstream (in a finalize stage, or at
// collect time for a directly sunk GroupBy).
func (p *Plan) GroupBy(in *Node, spec GroupBySpec) *Node {
	s := spec
	return p.add(&Node{kind: opGroupBy, in: []*Node{in}, codec: spec.PartialCodec, gb: &s})
}

// Join equi-joins two inputs: build (hash-loaded by every worker) and
// probe (streamed). The physical strategy — repartition, broadcast, or
// skewed — is chosen at compile time per edge from statistics unless
// spec.Strategy pins it.
func (p *Plan) Join(build, probe *Node, spec JoinSpec) *Node {
	s := spec
	return p.add(&Node{kind: opJoin, in: []*Node{build, probe}, codec: spec.Codec, join: &s})
}

// TopK keeps the k greatest records under less (less(a, b) reports a
// ranking below b). It compiles to a single-worker finalize stage: top-k
// needs a total view, and its input is already aggregated, so a serial
// tail is the honest physical form.
func (p *Plan) TopK(in *Node, k int, less func(a, b any) bool) *Node {
	return p.add(&Node{kind: opTopK, in: []*Node{in}, codec: in.codec, k: k, less: less})
}

// Sink materializes a node's records into a named output bag. A plan
// needs at least one sink; the compiled job's results are collected from
// the sink bags.
func (p *Plan) Sink(in *Node, bag string) *Plan {
	p.sinks = append(p.sinks, sink{bag: bag, node: in})
	return p
}

// ---- validation ----

// use records how a node's records are referenced downstream.
type use struct {
	consumer *Node // nil for sink uses
	sinkBag  string
	scan     bool // build side of a join (read in full, not consumed)
}

// analysis is the validated use graph Compile works from.
type analysis struct {
	uses map[*Node][]use
}

// Validate checks the logical plan for structural errors. Compile calls
// it; standalone callers may use it for early feedback.
func (p *Plan) Validate() error {
	_, err := p.analyze()
	return err
}

func (p *Plan) analyze() (*analysis, error) {
	if p.name == "" {
		return nil, fmt.Errorf("plan: plan has no name")
	}
	if len(p.sinks) == 0 {
		return nil, fmt.Errorf("plan %q: no sinks (nothing to compute)", p.name)
	}
	a := &analysis{uses: make(map[*Node][]use)}
	for _, n := range p.nodes {
		switch n.kind {
		case opScan:
			if n.bag == "" {
				return nil, fmt.Errorf("plan %q: scan with empty bag name", p.name)
			}
		case opGroupBy:
			g := n.gb
			if g.Key == nil || g.Init == nil || g.Add == nil || g.Merge == nil ||
				g.PartialCodec == nil || g.MakePartial == nil || g.SplitPartial == nil {
				return nil, fmt.Errorf("plan %q: node %d: incomplete GroupBySpec", p.name, n.id)
			}
		case opJoin:
			j := n.join
			if j.BuildKey == nil || j.ProbeKey == nil || j.Codec == nil || j.Join == nil {
				return nil, fmt.Errorf("plan %q: node %d: incomplete JoinSpec", p.name, n.id)
			}
			if n.in[0] == n.in[1] {
				return nil, fmt.Errorf("plan %q: node %d: self-join of one node (scan the bag twice instead)", p.name, n.id)
			}
		case opTopK:
			if n.k <= 0 || n.less == nil {
				return nil, fmt.Errorf("plan %q: node %d: TopK needs k > 0 and a less function", p.name, n.id)
			}
		}
		if n.codec == nil {
			return nil, fmt.Errorf("plan %q: node %d (%s) has no codec", p.name, n.id, n.kind)
		}
		for i, in := range n.in {
			if in == nil {
				return nil, fmt.Errorf("plan %q: node %d (%s) has a nil input", p.name, n.id, n.kind)
			}
			if in.owner != p {
				return nil, fmt.Errorf("plan %q: node %d (%s) uses a dataset from plan %q; datasets cannot cross plans",
					p.name, n.id, n.kind, in.owner.name)
			}
			a.uses[in] = append(a.uses[in], use{consumer: n, scan: n.kind == opJoin && i == 0})
		}
	}
	seen := make(map[string]bool, len(p.sinks))
	for _, s := range p.sinks {
		if s.bag == "" {
			return nil, fmt.Errorf("plan %q: sink with empty bag name", p.name)
		}
		if seen[s.bag] {
			return nil, fmt.Errorf("plan %q: duplicate sink bag %q", p.name, s.bag)
		}
		seen[s.bag] = true
		if s.node == nil {
			return nil, fmt.Errorf("plan %q: sink %q of a nil node", p.name, s.bag)
		}
		if s.node.owner != p {
			return nil, fmt.Errorf("plan %q: sink %q of a dataset from plan %q; datasets cannot cross plans",
				p.name, s.bag, s.node.owner.name)
		}
		a.uses[s.node] = append(a.uses[s.node], use{sinkBag: s.bag})
	}
	// Each node may have at most one consuming use (a bag is consumed by
	// exactly one task); scan (join build) uses are unbounded but cannot
	// mix with a consuming use of the same node — consumption would steal
	// chunks out from under the scanners.
	for _, n := range p.nodes {
		consuming, scanning := 0, 0
		for _, u := range a.uses[n] {
			if u.scan {
				scanning++
			} else {
				consuming++
			}
		}
		if consuming > 1 {
			return nil, fmt.Errorf("plan %q: node %d (%s) is consumed %d times; each dataset may feed one downstream path (sink or operator)",
				p.name, n.id, n.kind, consuming)
		}
		if consuming > 0 && scanning > 0 && n.kind != opScan {
			return nil, fmt.Errorf("plan %q: node %d (%s) is both consumed and used as a join build side; materialize it with two separate branches",
				p.name, n.id, n.kind)
		}
		if len(a.uses[n]) == 0 && !p.isSinkless(n) {
			return nil, fmt.Errorf("plan %q: node %d (%s) has no downstream use", p.name, n.id, n.kind)
		}
	}
	return a, nil
}

// isSinkless reports whether the node legitimately has no uses. (No node
// does — dead operators are an error — but keeping the hook explicit
// makes the rule visible.)
func (p *Plan) isSinkless(*Node) bool { return false }
