package plan

import (
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// tCodec adapts a typed chunk codec for tests.
type tCodec[T any] struct{ c chunk.Codec[T] }

func (a tCodec[T]) EncodeAny(dst []byte, v any) []byte { return a.c.Encode(dst, v.(T)) }
func (a tCodec[T]) DecodeAny(rec []byte) (any, error) {
	v, _, err := a.c.Decode(rec)
	return v, err
}

var (
	pairCodec = tCodec[chunk.Pair[uint64, uint64]]{chunk.PairCodec[uint64, uint64]{A: chunk.Uint64Codec{}, B: chunk.Uint64Codec{}}}
	cntCodec  = tCodec[chunk.Pair[uint64, int64]]{chunk.PairCodec[uint64, int64]{A: chunk.Uint64Codec{}, B: chunk.Int64Codec{}}}
)

type tuple = chunk.Pair[uint64, uint64]
type keyCount = chunk.Pair[uint64, int64]

// countSpec is a count-by-key GroupBySpec for tests.
func countSpec() GroupBySpec {
	return GroupBySpec{
		Key:          func(v any) uint64 { return v.(tuple).First },
		Init:         func() any { return int64(0) },
		Add:          func(acc, _ any) any { return acc.(int64) + 1 },
		Merge:        func(a, b any) any { return a.(int64) + b.(int64) },
		PartialCodec: cntCodec,
		MakePartial:  func(k uint64, acc any) any { return keyCount{First: k, Second: acc.(int64)} },
		SplitPartial: func(p any) (uint64, any) { pp := p.(keyCount); return pp.First, pp.Second },
	}
}

func joinSpec(strategy JoinStrategy) JoinSpec {
	return JoinSpec{
		BuildKey: func(v any) uint64 { return v.(tuple).First },
		ProbeKey: func(v any) uint64 { return v.(tuple).First },
		Codec:    pairCodec,
		Join: func(b, p any, emit func(any) error) error {
			return emit(tuple{First: p.(tuple).First, Second: b.(tuple).Second + p.(tuple).Second})
		},
		Strategy: strategy,
	}
}

// zipfStats builds warm statistics where one key dominates.
func zipfStats(probeBag string, total int) *Stats {
	b := sketch.NewStatsBuilder()
	b.Add(KeyBytes(7), uint64(total/2)) // 50% on one key
	for k := uint64(0); k < 50; k++ {
		b.Add(KeyBytes(100+k), uint64(total/100))
	}
	st := NewStats()
	st.Edges[probeBag] = b.Stats()
	return st
}

func stageByTask(ph *Physical, task string) *StageInfo {
	for i := range ph.Stages {
		if ph.Stages[i].Task == task {
			return &ph.Stages[i]
		}
	}
	return nil
}

// findStage returns the stage whose output is the given bag.
func findStage(ph *Physical, out string) *StageInfo {
	for i := range ph.Stages {
		if ph.Stages[i].Output == out {
			return &ph.Stages[i]
		}
	}
	return nil
}

func TestCompileFusesNarrowChain(t *testing.T) {
	p := New("fuse")
	src := p.Scan("in", pairCodec)
	f := p.Filter(src, func(v any) bool { return v.(tuple).First%2 == 0 })
	m := p.Map(f, pairCodec, func(v any) (any, error) { return v, nil })
	p.Sink(m, "out")
	ph, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Stages) != 1 {
		t.Fatalf("narrow chain compiled to %d stages, want 1:\n%s", len(ph.Stages), ph.Explain())
	}
	s := ph.Stages[0]
	if s.Consumes != "in" || s.Output != "out" {
		t.Fatalf("stage wiring %q -> %q, want in -> out", s.Consumes, s.Output)
	}
	if len(s.Ops) != 2 || s.Ops[0] != "filter" || s.Ops[1] != "map" {
		t.Fatalf("fused ops %v, want [filter map]", s.Ops)
	}
	if s.NoClone {
		t.Fatal("narrow streaming stage must be clonable")
	}
}

func TestCompileInsertsShuffleAtGroupBy(t *testing.T) {
	p := New("gb")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	p.Sink(g, "out")
	ph, err := Compile(p, Options{Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Stages) != 2 {
		t.Fatalf("groupby compiled to %d stages, want 2 (producer+aggregate):\n%s", len(ph.Stages), ph.Explain())
	}
	edge := "gb.e1"
	spec := ph.App.BagSpecFor(edge)
	if spec == nil || spec.Partitions != 8 {
		t.Fatalf("edge %s not declared with 8 partitions: %+v", edge, spec)
	}
	if !spec.Spread {
		t.Fatal("adaptive groupby edge must declare Spread (mergeable partials)")
	}
	prod := findStage(ph, edge)
	if prod == nil || !prod.WritesEdge || prod.Consumes != "in" {
		t.Fatalf("producer stage wrong: %+v", prod)
	}
	agg := findStage(ph, "out")
	if agg == nil || !agg.ConsumesEdge || agg.Consumes != edge || agg.NoClone {
		t.Fatalf("aggregate stage wrong: %+v", agg)
	}
}

func TestCompileFinalizeAfterGroupBy(t *testing.T) {
	p := New("fin")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	m := p.Map(g, cntCodec, func(v any) (any, error) { return v, nil })
	p.Sink(m, "out")
	ph, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Stages) != 3 {
		t.Fatalf("got %d stages, want 3 (producer, aggregate, finalize):\n%s", len(ph.Stages), ph.Explain())
	}
	fin := findStage(ph, "out")
	if fin == nil || fin.Head != "finalize" || !fin.NoClone {
		t.Fatalf("finalize stage wrong: %+v", fin)
	}
	if fin.Consumes != "fin.b1" {
		t.Fatalf("finalize consumes %q, want materialized partial bag fin.b1", fin.Consumes)
	}
}

func TestCompileTopKIsSerialFinalize(t *testing.T) {
	p := New("tk")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	tk := p.TopK(g, 3, func(a, b any) bool { return a.(keyCount).Second < b.(keyCount).Second })
	p.Sink(tk, "out")
	ph, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := findStage(ph, "out")
	if s == nil || s.Head != "topk" || !s.NoClone {
		t.Fatalf("topk stage wrong: %+v", s)
	}
}

// TestCompileTopKDirectlyOnScan: TopK over a bare Scan must compile to a
// single finalize stage reading the source bag — a separate pass-through
// stage would be left with nothing to write (regression: this used to
// fail App.Validate with "writes source bag").
func TestCompileTopKDirectlyOnScan(t *testing.T) {
	p := New("tks")
	src := p.Scan("in", pairCodec)
	tk := p.TopK(src, 2, func(a, b any) bool { return a.(tuple).Second < b.(tuple).Second })
	p.Sink(tk, "out")
	ph, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Stages) != 1 {
		t.Fatalf("got %d stages, want 1:\n%s", len(ph.Stages), ph.Explain())
	}
	s := ph.Stages[0]
	if s.Consumes != "in" || s.Output != "out" || !s.NoClone {
		t.Fatalf("topk-on-scan stage wrong: %+v", s)
	}
}

// TestExplicitFanOneHonored: Options.Fan = 1 must not be coerced to the
// default — it requests isolation without record-level spreading.
func TestExplicitFanOneHonored(t *testing.T) {
	p := New("fan1")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	p.Sink(g, "out")
	ph, err := Compile(p, Options{Parts: 4, Fan: 1, Stats: zipfStats("in", 100000)})
	if err != nil {
		t.Fatal(err)
	}
	seed := ph.Seeds["fan1.e1"]
	if seed == nil || len(seed.Isolated) == 0 {
		t.Fatalf("expected seeded isolations: %+v", seed)
	}
	for _, iso := range seed.Isolated {
		if iso.Fan != 1 {
			t.Fatalf("explicit Fan 1 coerced to %d", iso.Fan)
		}
	}
}

func TestCompileStaticMode(t *testing.T) {
	p := New("st")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	p.Sink(g, "out")
	ph, err := Compile(p, Options{Static: true, Stats: zipfStats("in", 100000)})
	if err != nil {
		t.Fatal(err)
	}
	spec := ph.App.BagSpecFor("st.e1")
	if spec.Spread {
		t.Fatal("static mode must not declare Spread")
	}
	if len(ph.Seeds) != 0 {
		t.Fatalf("static mode produced %d seed maps, want 0", len(ph.Seeds))
	}
	agg := findStage(ph, "out")
	if !agg.NoClone {
		t.Fatal("static edge consumer must be NoClone (one reducer per partition)")
	}
}

func TestCompileGroupBySeedsFromWarmStats(t *testing.T) {
	p := New("warm")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	p.Sink(g, "out")
	ph, err := Compile(p, Options{Parts: 4, Stats: zipfStats("in", 100000)})
	if err != nil {
		t.Fatal(err)
	}
	seed := ph.Seeds["warm.e1"]
	if seed == nil {
		t.Fatalf("no seed map for warm.e1; seeds=%v", ph.Seeds)
	}
	if len(seed.Isolated) == 0 {
		t.Fatal("seed map has no isolated keys despite a dominant key holding half the records")
	}
	if !seed.IsIsolated(shuffle.KeyHash(KeyBytes(7))) {
		t.Fatal("dominant key 7 not isolated in seed map")
	}
	if seed.Version < 2 {
		t.Fatalf("seed version %d must be ≥ 2 to win over the locally derived base map", seed.Version)
	}
}

func TestJoinStrategySelection(t *testing.T) {
	build := func() (*Plan, *Node) {
		p := New("j")
		r := p.Scan("relR", pairCodec)
		s := p.Scan("relS", pairCodec)
		j := p.Join(r, s, joinSpec(JoinAuto))
		p.Sink(j, "out")
		return p, j
	}
	cases := []struct {
		name    string
		opts    Options
		want    JoinStrategy
		seeded  bool
		noClone bool
	}{
		{
			name: "broadcast when build side known small",
			opts: Options{Stats: &Stats{Records: map[string]int64{"relR": 1000}}},
			want: JoinBroadcast,
		},
		{
			name: "repartition without statistics",
			opts: Options{},
			want: JoinRepartition,
		},
		{
			name: "repartition when build side known large and no skew",
			opts: Options{Stats: &Stats{Records: map[string]int64{"relR": 1 << 20}}},
			want: JoinRepartition,
		},
		{
			name:   "skewed when warm sketch shows heavy probe keys",
			opts:   Options{Parts: 4, Stats: withRecords(zipfStats("relS", 200000), "relR", 1<<20)},
			want:   JoinSkewed,
			seeded: true,
		},
		{
			name:    "static pins repartition",
			opts:    Options{Static: true, Stats: withRecords(zipfStats("relS", 200000), "relR", 100)},
			want:    JoinRepartition,
			noClone: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, _ := build()
			ph, err := Compile(p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(ph.Joins) != 1 {
				t.Fatalf("got %d join decisions", len(ph.Joins))
			}
			j := ph.Joins[0]
			if j.Strategy != tc.want {
				t.Fatalf("strategy %v (%s), want %v\n%s", j.Strategy, j.Reason, tc.want, ph.Explain())
			}
			if tc.seeded != (len(ph.Seeds) > 0) {
				t.Fatalf("seeded=%v, want %v (seeds=%v)", len(ph.Seeds) > 0, tc.seeded, ph.Seeds)
			}
			switch j.Strategy {
			case JoinBroadcast:
				if j.Edge != "" {
					t.Fatalf("broadcast join has edge %q", j.Edge)
				}
				s := findStage(ph, "out")
				if len(s.Scans) != 1 || s.Scans[0] != "relR" {
					t.Fatalf("broadcast join stage must scan relR: %+v", s)
				}
				if s.ConsumesEdge {
					t.Fatal("broadcast join must not consume an edge")
				}
			default:
				if j.Edge == "" {
					t.Fatal("shuffled join without an edge name")
				}
				if ph.App.BagSpecFor(j.Edge) == nil {
					t.Fatalf("edge %s not declared", j.Edge)
				}
				s := findStage(ph, "out")
				if !s.ConsumesEdge || s.NoClone != tc.noClone {
					t.Fatalf("join consumer stage wrong: %+v (want noClone=%v)", s, tc.noClone)
				}
			}
		})
	}
}

// withRecords adds a bag record count to stats (fixture helper).
func withRecords(s *Stats, bag string, n int64) *Stats {
	if s.Records == nil {
		s.Records = make(map[string]int64)
	}
	s.Records[bag] = n
	return s
}

func TestPinnedStrategyOverridesStats(t *testing.T) {
	p := New("pin")
	r := p.Scan("relR", pairCodec)
	s := p.Scan("relS", pairCodec)
	j := p.Join(r, s, joinSpec(JoinBroadcast))
	p.Sink(j, "out")
	// Stats say "huge build side" — the pin must win anyway.
	ph, err := Compile(p, Options{Stats: &Stats{Records: map[string]int64{"relR": 1 << 30}}})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Joins[0].Strategy != JoinBroadcast {
		t.Fatalf("pinned strategy ignored: %+v", ph.Joins[0])
	}
}

func TestStatsFromMemoryRekeysAndSeeds(t *testing.T) {
	// Simulate a finished namespaced job's memory for edge warm.e1.
	prev := shuffle.BaseMap("job1/warm.e1", 4)
	prev.Splits = map[int]int{2: 4}
	prev.Version = 3
	b := sketch.NewStatsBuilder()
	b.Add(KeyBytes(7), 60000)
	b.Add(KeyBytes(9), 1000)
	mem := map[string]core.EdgeMemory{"job1/warm.e1": {PMap: prev, Stats: b.Stats()}}
	st := StatsFromMemory(mem, "job1")
	if st.PMaps["warm.e1"] == nil || st.Edges["warm.e1"] == nil {
		t.Fatalf("memory not re-keyed: pmaps=%v", st.PMaps)
	}

	p := New("warm")
	src := p.Scan("in", pairCodec)
	g := p.GroupBy(src, countSpec())
	p.Sink(g, "out")
	ph, err := Compile(p, Options{Parts: 4, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	seed := ph.Seeds["warm.e1"]
	if seed == nil {
		t.Fatal("no seed from memory stats")
	}
	if seed.Splits[2] != 4 {
		t.Fatalf("previous split not transplanted: %v", seed.Splits)
	}
	if !seed.IsIsolated(shuffle.KeyHash(KeyBytes(7))) {
		t.Fatal("heavy key 7 not pre-isolated from memory sketch")
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("no sink", func(t *testing.T) {
		p := New("v")
		p.Scan("in", pairCodec)
		if _, err := Compile(p, Options{}); err == nil {
			t.Fatal("want error for plan without sinks")
		}
	})
	t.Run("double consume", func(t *testing.T) {
		p := New("v")
		src := p.Scan("in", pairCodec)
		a := p.Filter(src, func(any) bool { return true })
		b := p.Filter(src, func(any) bool { return true })
		p.Sink(a, "outA")
		p.Sink(b, "outB")
		if _, err := Compile(p, Options{}); err == nil || !strings.Contains(err.Error(), "consumed") {
			t.Fatalf("want double-consume error, got %v", err)
		}
	})
	t.Run("cross-plan dataset", func(t *testing.T) {
		p1 := New("v1")
		p2 := New("v2")
		foreign := p2.Scan("other", pairCodec)
		mine := p1.Scan("in", pairCodec)
		j := p1.Join(foreign, mine, joinSpec(JoinAuto))
		p1.Sink(j, "out")
		if _, err := Compile(p1, Options{}); err == nil || !strings.Contains(err.Error(), "cross") {
			t.Fatalf("want cross-plan error, got %v", err)
		}
	})
	t.Run("self join", func(t *testing.T) {
		p := New("v")
		src := p.Scan("in", pairCodec)
		j := p.Join(src, src, joinSpec(JoinAuto))
		p.Sink(j, "out")
		if _, err := Compile(p, Options{}); err == nil {
			t.Fatal("want self-join error")
		}
	})
}

func TestExplainMentionsDecisions(t *testing.T) {
	p := New("ex")
	r := p.Scan("relR", pairCodec)
	s := p.Scan("relS", pairCodec)
	j := p.Join(r, s, joinSpec(JoinAuto))
	p.Sink(j, "out")
	ph, err := Compile(p, Options{Parts: 4, Stats: withRecords(zipfStats("relS", 200000), "relR", 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	out := ph.Explain()
	for _, want := range []string{"skewed", "seed", "edge-consumer", "shuffle-write"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}
