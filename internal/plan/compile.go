package plan

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/shuffle"
)

// Options tunes logical→physical compilation.
type Options struct {
	// Parts is the base partition count of inserted shuffle edges
	// (default 4).
	Parts int
	// BroadcastMaxRecords: a join whose build side is known to hold at
	// most this many records compiles to a broadcast join (default 8192).
	// Unknown build sizes never broadcast — memory-loading a relation of
	// unknown size in every worker is the one irreversible mistake here.
	BroadcastMaxRecords int64
	// IsolateFraction: a key whose observed share of an edge's records is
	// at least IsolateFraction of a mean partition's load is pre-isolated
	// by the skewed join / warm-started groupby (default 0.5 — the same
	// threshold shape the runtime IsolateKeyPolicy applies).
	IsolateFraction float64
	// Fan is the record-level spread fan for pre-isolated heavy keys
	// (default 4).
	Fan int
	// Static compiles the naive physical plan: no record-level Spread and
	// no seed maps, with NoClone edge consumers — classic static hash
	// partitioning with one reducer per partition. This is the baseline
	// the adaptive plans are benchmarked against.
	Static bool
	// SketchEvery / PollEvery tune the producer-side control cadences of
	// inserted shuffle edges (0 = shuffle package defaults).
	SketchEvery int
	PollEvery   int
	// Stats supplies compile-time statistics (nil = none: joins
	// repartition unless pinned or known-small, and no edges are
	// pre-seeded).
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.Parts <= 0 {
		o.Parts = 4
	}
	if o.BroadcastMaxRecords <= 0 {
		o.BroadcastMaxRecords = 8192
	}
	if o.IsolateFraction <= 0 {
		o.IsolateFraction = 0.5
	}
	if o.Fan <= 0 {
		// 0 means default; an explicit Fan of 1 is honored — it isolates
		// heavy keys onto one dedicated partition without record-level
		// spreading (shuffle.WarmStart supports fan=1 directly).
		o.Fan = 4
	}
	return o
}

// StageInfo describes one compiled task for explain output and tests.
type StageInfo struct {
	Task         string   // task name in the compiled application
	Head         string   // how records enter: scan | edge | finalize | topk
	Ops          []string // fused operator chain, in order
	Consumes     string   // consumed input bag (logical edge name for edges)
	Scans        []string // scanned bags (join build sides)
	Output       string   // output bag
	ConsumesEdge bool     // Consumes is a partitioned shuffle edge
	WritesEdge   bool     // Output is a partitioned shuffle edge
	NoClone      bool
}

// JoinInfo records the planner's physical choice for one join node.
type JoinInfo struct {
	Node     int
	Strategy JoinStrategy
	Edge     string // probe shuffle edge ("" for broadcast)
	Reason   string
}

// Physical is a compiled plan: the executable application graph plus the
// planner's decisions and seed partition maps. The same Physical runs on
// every execution surface — Cluster.Run / Cluster.SubmitJob (directly or
// via the Run/Submit helpers, which also publish the seeds), RunStream
// (App as the per-window DAG), and hurricane-run over TCP storage.
type Physical struct {
	Plan   *Plan
	App    *core.App
	Opts   Options
	Stages []StageInfo
	Joins  []JoinInfo
	// Seeds are warm-start partition maps derived from compile-time
	// statistics, keyed by (unprefixed) edge bag name. Publish them with
	// Seed before the job's producers start.
	Seeds map[string]*shuffle.PartitionMap

	sinks map[string]string // sink name -> physical bag name
}

// SinkBag returns the physical bag name of a sink (apply JobHandle.Bag on
// top for namespaced jobs).
func (ph *Physical) SinkBag(sink string) string { return ph.sinks[sink] }

// edgeName names the shuffle edge feeding wide node n — stable across
// recompilations of the same plan shape, which is what lets
// StatsFromMemory warm a repeated query.
func (p *Plan) edgeName(n *Node) string { return fmt.Sprintf("%s.e%d", p.name, n.id) }

// interName names the materialization bag of node n.
func (p *Plan) interName(n *Node) string { return fmt.Sprintf("%s.b%d", p.name, n.id) }

// ---- compilation ----

type compiler struct {
	p    *Plan
	a    *analysis
	opts Options

	app     *core.App
	ph      *Physical
	bags    map[string]bool
	outOf   map[*Node]string
	stages  []*stage
	stageOf map[*Node]*stage
}

// stage is one task under construction.
type stage struct {
	name      string
	head      string // scan | edge | finalize | topk
	consume   string // consumed bag
	inCodec   AnyCodec
	inNode    *Node // node whose records enter the stage
	finalize  bool  // drain + merge groupby partials before streaming
	scans     []scanSide
	ops       []*Node // operator chain applied to entering records
	out       string  // output bag
	outCodec  AnyCodec
	edgeKeyFn func(any) uint64 // non-nil when the tail writes a shuffle edge
	inEdge    bool             // consume is a partitioned edge
	noClone   bool
}

type scanSide struct {
	bagName string
	node    *Node            // build-side node (codec + finalize info)
	joinKey func(any) uint64 // the consuming join's BuildKey
}

// Compile lowers the logical plan into an executable Physical.
func Compile(p *Plan, opts Options) (*Physical, error) {
	a, err := p.analyze()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	c := &compiler{
		p: p, a: a, opts: opts,
		app:     core.NewApp(p.name),
		bags:    make(map[string]bool),
		outOf:   make(map[*Node]string),
		stageOf: make(map[*Node]*stage),
	}
	c.ph = &Physical{
		Plan: p, App: c.app, Opts: opts,
		Seeds: make(map[string]*shuffle.PartitionMap),
		sinks: make(map[string]string),
	}
	if err := c.build(); err != nil {
		return nil, err
	}
	if err := c.app.Validate(); err != nil {
		return nil, fmt.Errorf("plan %q: compiled graph invalid: %w", p.name, err)
	}
	return c.ph, nil
}

// sinkFor returns the sink bag a node's records go to, if its consuming
// use is a sink.
func (c *compiler) sinkFor(n *Node) (string, bool) {
	for _, u := range c.a.uses[n] {
		if u.consumer == nil && !u.scan {
			return u.sinkBag, true
		}
	}
	return "", false
}

// consumerOf returns the operator node consuming n's records, if any.
func (c *compiler) consumerOf(n *Node) *Node {
	for _, u := range c.a.uses[n] {
		if u.consumer != nil && !u.scan {
			return u.consumer
		}
	}
	return nil
}

// newStage opens a stage whose in-flight records are node n's.
func (c *compiler) newStage(n *Node) *stage {
	s := &stage{}
	c.stages = append(c.stages, s)
	c.stageOf[n] = s
	return s
}

// readerStage opens a stage that reads node n's materialized records back
// from their bag — the entry point for consumers of multi-use or GroupBy
// (partial) outputs. GroupBy partials are finalized on the way in, which
// forces NoClone (one worker must see every partial of a key).
func (c *compiler) readerStage(n *Node) *stage {
	s := c.newStage(n)
	s.consume, s.inCodec, s.inNode = c.materialized(n), n.codec, n
	if n.kind == opGroupBy {
		s.head, s.finalize, s.noClone = "finalize", true, true
	} else {
		s.head = "scan"
	}
	return s
}

// producerStage returns a stage whose in-flight record stream is node
// n's records, opening a reader stage when they are only available
// materialized (GroupBy partials).
func (c *compiler) producerStage(n *Node) *stage {
	if n.kind != opGroupBy {
		if s := c.stageOf[n]; s != nil && s.out == "" && s.edgeKeyFn == nil {
			return s
		}
	}
	return c.readerStage(n)
}

// build drives compilation: stage formation, bag declaration, strategy
// decisions, task synthesis.
func (c *compiler) build() error {
	for _, n := range c.p.nodes {
		if n.kind == opScan && !c.bags[n.bag] {
			c.app.SourceBag(n.bag)
			c.bags[n.bag] = true
		}
	}
	// Decide join strategies up front; they shape the stages.
	strategies := make(map[*Node]JoinInfo)
	for _, n := range c.p.nodes {
		if n.kind == opJoin {
			info := c.decideJoin(n)
			strategies[n] = info
			c.ph.Joins = append(c.ph.Joins, info)
		}
	}

	// Walk nodes in topological (creation) order, opening a stage at each
	// head and extending it through fused narrow chains.
	for _, n := range c.p.nodes {
		switch n.kind {
		case opScan:
			// A scan opens a stage only when something streams from it: a
			// build-side-only scan needs no task of its own, and a TopK
			// consumer reads the source bag itself (its single-worker
			// finalize stage IS the reader — a pass-through stage here
			// would have nothing left to write).
			if cons := c.consumerOf(n); cons == nil {
				if _, sunk := c.sinkFor(n); !sunk {
					continue
				}
			} else if cons.kind == opTopK {
				continue
			}
			s := c.newStage(n)
			s.head, s.consume, s.inCodec, s.inNode = "scan", n.bag, n.codec, n

		case opFilter, opMap, opFlatMap:
			// Narrow operators fuse into the stage producing their input.
			s := c.producerStage(n.in[0])
			s.ops = append(s.ops, n)
			c.stageOf[n] = s

		case opGroupBy:
			// Producer side: the upstream stage's tail becomes a
			// partitioned write into the edge, keyed by the group key.
			edge := c.p.edgeName(n)
			up := c.producerStage(n.in[0])
			spread := !c.opts.Static
			c.declareEdge(edge, spread)
			up.out, up.outCodec = edge, n.in[0].codec
			up.edgeKeyFn = n.gb.Key
			c.seedEdge(edge, n.in[0], spread)
			// Consumer side: the aggregate stage (one worker per physical
			// partition; clones allowed — partials merge downstream).
			s := c.newStage(n)
			s.head, s.consume, s.inCodec, s.inNode = "edge", edge, n.in[0].codec, n.in[0]
			s.inEdge = true
			s.noClone = c.opts.Static
			s.ops = append(s.ops, n)

		case opJoin:
			info := strategies[n]
			build, probe := n.in[0], n.in[1]
			bs := scanSide{bagName: c.materialized(build), node: build, joinKey: n.join.BuildKey}
			if info.Strategy == JoinBroadcast {
				// No shuffle: the join fuses into the probe-side stage;
				// clones split the probe chunk-by-chunk and each scans the
				// (small) build side in full.
				s := c.producerStage(probe)
				s.scans = append(s.scans, bs)
				s.ops = append(s.ops, n)
				c.stageOf[n] = s
				continue
			}
			// Shuffled probe: upstream tail writes the edge keyed by the
			// probe key; the join stage consumes it, one worker per
			// physical partition.
			up := c.producerStage(probe)
			spread := !c.opts.Static
			c.declareEdge(info.Edge, spread)
			up.out, up.outCodec = info.Edge, probe.codec
			up.edgeKeyFn = n.join.ProbeKey
			if info.Strategy == JoinSkewed {
				c.seedEdge(info.Edge, probe, spread)
			}
			s := c.newStage(n)
			s.head, s.consume, s.inCodec, s.inNode = "edge", info.Edge, probe.codec, probe
			s.inEdge = true
			s.noClone = c.opts.Static
			s.scans = append(s.scans, bs)
			s.ops = append(s.ops, n)

		case opTopK:
			// Top-k needs a total view: a single-worker stage over the
			// materialized input (finalizing partials when the input is a
			// GroupBy).
			s := c.readerStage(n.in[0])
			s.head, s.noClone = "topk", true
			s.ops = append(s.ops, n)
			c.stageOf[n] = s
		}
	}

	// Assign outputs: every stage without an edge tail either feeds a
	// sink or materializes its terminal node for downstream stages.
	for _, s := range c.stages {
		if s.out != "" {
			continue
		}
		last := s.inNode
		if len(s.ops) > 0 {
			last = s.ops[len(s.ops)-1]
		}
		if name, ok := c.sinkFor(last); ok {
			c.ph.sinks[name] = name
			s.out, s.outCodec = name, last.codec
		} else {
			s.out, s.outCodec = c.materialized(last), last.codec
		}
		c.declareBag(s.out)
	}

	// Synthesize tasks.
	for i, s := range c.stages {
		desc := s.head
		if len(s.ops) > 0 {
			desc = s.ops[len(s.ops)-1].Kind()
		}
		s.name = fmt.Sprintf("s%d.%s", i, desc)
		c.emitTask(s)
		info := StageInfo{
			Task: s.name, Head: s.head, Consumes: s.consume, Output: s.out,
			ConsumesEdge: s.inEdge, WritesEdge: s.edgeKeyFn != nil, NoClone: s.noClone,
		}
		for _, b := range s.scans {
			info.Scans = append(info.Scans, b.bagName)
		}
		for _, op := range s.ops {
			info.Ops = append(info.Ops, op.Kind())
		}
		c.ph.Stages = append(c.ph.Stages, info)
	}
	return nil
}

// materialized returns (caching) the bag name holding node n's records
// between stages.
func (c *compiler) materialized(n *Node) string {
	if n.kind == opScan {
		return n.bag
	}
	if name, ok := c.outOf[n]; ok {
		return name
	}
	name, sunk := c.sinkFor(n)
	if !sunk {
		name = c.p.interName(n)
	}
	c.outOf[n] = name
	return name
}

// declareBag declares a plain bag once.
func (c *compiler) declareBag(name string) {
	if !c.bags[name] {
		c.app.Bag(name)
		c.bags[name] = true
	}
}

// declareEdge declares a partitioned shuffle edge.
func (c *compiler) declareEdge(name string, spread bool) {
	if c.bags[name] {
		return
	}
	c.app.AddBag(core.BagSpec{
		Name:        name,
		Partitions:  c.opts.Parts,
		Spread:      spread,
		SketchEvery: c.opts.SketchEvery,
		PollEvery:   c.opts.PollEvery,
	})
	c.bags[name] = true
}

// ---- task synthesis ----

// opExec is one operator lowered to executable form: a per-record hook
// plus an optional finish hook flushing operator state (aggregates, top-k
// heaps) into the rest of the pipeline.
type opExec struct {
	fn     func(v any, emit func(any) error) error
	finish func(emit func(any) error) error
}

// lowerOps compiles a stage's operator chain. Join ops resolve their
// build map through builds (hash-loaded at task start).
func lowerOps(ops []*Node, builds map[*Node]map[uint64][]any) []opExec {
	out := make([]opExec, 0, len(ops))
	for _, n := range ops {
		switch n.kind {
		case opFilter:
			pred := n.filterF()
			out = append(out, opExec{fn: func(v any, emit func(any) error) error {
				if !pred(v) {
					return nil
				}
				return emit(v)
			}})
		case opMap:
			fn := n.mapF()
			out = append(out, opExec{fn: func(v any, emit func(any) error) error {
				m, err := fn(v)
				if err != nil {
					return err
				}
				return emit(m)
			}})
		case opFlatMap:
			fn := n.flatF()
			out = append(out, opExec{fn: func(v any, emit func(any) error) error {
				return fn(v, emit)
			}})
		case opGroupBy:
			g := n.gb
			groups := make(map[uint64]any)
			out = append(out, opExec{
				fn: func(v any, emit func(any) error) error {
					k := g.Key(v)
					acc, ok := groups[k]
					if !ok {
						acc = g.Init()
					}
					groups[k] = g.Add(acc, v)
					return nil
				},
				finish: func(emit func(any) error) error {
					for _, k := range sortedKeys(groups) {
						if err := emit(g.MakePartial(k, groups[k])); err != nil {
							return err
						}
					}
					return nil
				},
			})
		case opJoin:
			j := n.join
			node := n
			out = append(out, opExec{fn: func(v any, emit func(any) error) error {
				for _, b := range builds[node][j.ProbeKey(v)] {
					if err := j.Join(b, v, emit); err != nil {
						return err
					}
				}
				return nil
			}})
		case opTopK:
			k, less := n.k, n.less
			var top []any
			out = append(out, opExec{
				fn: func(v any, emit func(any) error) error {
					// Insertion into a k-bounded, descending-sorted slice:
					// k is small, the input is already aggregated.
					i := sort.Search(len(top), func(i int) bool { return less(top[i], v) })
					if i >= k {
						return nil
					}
					top = append(top, nil)
					copy(top[i+1:], top[i:])
					top[i] = v
					if len(top) > k {
						top = top[:k]
					}
					return nil
				},
				finish: func(emit func(any) error) error {
					for _, v := range top {
						if err := emit(v); err != nil {
							return err
						}
					}
					return nil
				},
			})
		}
	}
	return out
}

func sortedKeys(m map[uint64]any) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pipeline composes lowered ops into a feed function and a finish
// cascade: finishing op i flushes its state through ops i+1.. into the
// sink.
func pipeline(ops []opExec, sink func(any) error) (feed func(any) error, finishAll func() error) {
	into := make([]func(any) error, len(ops)+1)
	into[len(ops)] = sink
	for i := len(ops) - 1; i >= 0; i-- {
		op, next := ops[i], into[i+1]
		into[i] = func(v any) error { return op.fn(v, next) }
	}
	feed = into[0]
	finishAll = func() error {
		for i, op := range ops {
			if op.finish == nil {
				continue
			}
			if err := op.finish(into[i+1]); err != nil {
				return err
			}
		}
		return nil
	}
	return feed, finishAll
}

// emitTask lowers one stage into a core TaskSpec.
func (c *compiler) emitTask(s *stage) {
	spec := core.TaskSpec{
		Name:    s.name,
		Inputs:  []string{s.consume},
		Outputs: []string{s.out},
		NoClone: s.noClone,
	}
	for _, b := range s.scans {
		spec.ScanInputs = append(spec.ScanInputs, b.bagName)
	}
	spec.Run = func(tc *core.TaskCtx) error { return runStage(tc, s) }
	c.app.AddTask(spec)
}

// runStage executes one compiled stage inside a worker. All per-run
// state (aggregation maps, top-k buffers, build tables) is created here,
// so any number of workers run the same stage concurrently. Stages whose
// input codec supports the columnar batch layout run the vectorized loop
// (vector.go); everything else streams record-at-a-time. Both paths
// produce identical records — the choice is purely physical.
func runStage(tc *core.TaskCtx, s *stage) error {
	builds := make(map[*Node]map[uint64][]any, len(s.scans))
	for i, b := range s.scans {
		m, err := loadBuild(tc, i, b)
		if err != nil {
			return err
		}
		for _, op := range s.ops {
			if op.kind == opJoin && op.in[0] == b.node {
				builds[op] = m
			}
		}
	}
	sinkFn, err := stageVecSink(tc, s)
	if err != nil {
		return err
	}
	if in := columnarOf(s.inCodec); in != nil && !s.finalize {
		// Batch loop: the vectorizable prefix runs over whole vectors;
		// the remaining ops and the sink form the per-record tail.
		feed, finishAll := pipeline(lowerOps(s.ops[vecPrefixLen(s.ops):], builds), sinkFn)
		return runStageVec(tc, s, in, feed, finishAll)
	}
	feed, finishAll := pipeline(lowerOps(s.ops, builds), sinkFn)
	if s.finalize {
		if err := drainFinalized(tc, s, feed); err != nil {
			return err
		}
	} else {
		if err := forEachConsume(tc, 0, s.inCodec, feed); err != nil {
			return err
		}
	}
	return finishAll()
}

// stageSink builds the tail write function: a partitioned shuffle writer
// when the stage feeds an edge, a plain record writer otherwise.
func stageSink(tc *core.TaskCtx, s *stage) (func(any) error, error) {
	codec := s.outCodec
	if s.edgeKeyFn == nil {
		w := tc.Writer(0)
		var buf []byte
		return func(v any) error {
			buf = codec.EncodeAny(buf[:0], v)
			return w.Append(buf)
		}, nil
	}
	spec := tc.OutputBagSpec(0)
	if spec == nil || spec.Partitions <= 0 {
		return nil, fmt.Errorf("plan: stage %s output %q is not partitioned", s.name, tc.OutputName(0))
	}
	key := s.edgeKeyFn
	w := shuffle.NewWriter(tc.Context(), shuffle.WriterConfig{
		Store:       tc.Store(),
		Edge:        tc.OutputName(0),
		Parts:       spec.Partitions,
		WriterID:    tc.Blueprint().ID,
		PollEvery:   spec.PollEvery,
		SketchEvery: spec.SketchEvery,
		Obs:         tc.Obs(),
		Job:         tc.Job(),
		OnSpans:     tc.ShuffleSpanHook(),
	})
	tc.OnFinish(w.Close)
	var rbuf []byte
	var kb [8]byte
	return func(v any) error {
		binary.LittleEndian.PutUint64(kb[:], key(v))
		rbuf = codec.EncodeAny(rbuf[:0], v)
		return w.Write(kb[:], rbuf)
	}, nil
}

// KeyBytes returns the canonical routing-key byte encoding of a uint64
// plan key (little-endian, matching the compiled shuffle writers). Warm
// statistics fed to the planner must use the same encoding.
func KeyBytes(k uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k)
	return b[:]
}

// forEachConsume streams the consumed input through fn.
func forEachConsume(tc *core.TaskCtx, input int, codec AnyCodec, fn func(any) error) error {
	for {
		ch, err := tc.Remove(input)
		if err == bag.ErrEmpty {
			return nil
		}
		if err != nil {
			return err
		}
		if err := feedChunk(ch, codec, fn); err != nil {
			return err
		}
	}
}

// forEachScan streams scan input i through fn (reading, not consuming).
func forEachScan(tc *core.TaskCtx, scanInput int, codec AnyCodec, fn func(any) error) error {
	for {
		ch, err := tc.Scan(scanInput)
		if err == bag.ErrEmpty {
			return nil
		}
		if err != nil {
			return err
		}
		if err := feedChunk(ch, codec, fn); err != nil {
			return err
		}
	}
}

// feedChunk streams one chunk's records through fn. Batch chunks decode
// through the codec's columnar path when it has one, and re-frame
// record-at-a-time otherwise — the row↔batch adapter that lets finalize
// stages, join build loads, and row-only codecs read batch-encoded bags.
func feedChunk(ch chunk.Chunk, codec AnyCodec, fn func(any) error) error {
	if chunk.IsBatch(ch) {
		if cc := columnarOf(codec); cc != nil {
			var bt chunk.Batch
			p, err := chunk.DecodeBatch(ch, &bt)
			if err != nil {
				return err
			}
			vec, err := cc.DecodeBatchAny(p, nil)
			if err != nil {
				return err
			}
			for _, v := range vec {
				if err := fn(v); err != nil {
					return err
				}
			}
			return nil
		}
		recs, err := chunk.Records(ch)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			v, err := codec.DecodeAny(rec)
			if err != nil {
				return err
			}
			if err := fn(v); err != nil {
				return err
			}
		}
		return nil
	}
	r := chunk.NewReader(ch)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		v, err := codec.DecodeAny(rec)
		if err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
}

// loadBuild hash-loads a join build side: join key -> build records. A
// GroupBy build side is finalized while loading (partials of one key
// merge into a single accumulator before keying).
func loadBuild(tc *core.TaskCtx, scanInput int, b scanSide) (map[uint64][]any, error) {
	if b.node.kind == opGroupBy {
		g := b.node.gb
		merged := make(map[uint64]any)
		if err := forEachScan(tc, scanInput, b.node.codec, func(v any) error {
			k, acc := g.SplitPartial(v)
			if prev, ok := merged[k]; ok {
				merged[k] = g.Merge(prev, acc)
			} else {
				merged[k] = acc
			}
			return nil
		}); err != nil {
			return nil, err
		}
		out := make(map[uint64][]any, len(merged))
		for k, acc := range merged {
			rec := g.MakePartial(k, acc)
			out[b.joinKey(rec)] = append(out[b.joinKey(rec)], rec)
		}
		return out, nil
	}
	out := make(map[uint64][]any)
	if err := forEachScan(tc, scanInput, b.node.codec, func(v any) error {
		k := b.joinKey(v)
		out[k] = append(out[k], v)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// drainFinalized drains a GroupBy partial bag completely, merges
// partials by key, and feeds the finalized records through the pipeline
// in key order. The stage is NoClone, so one worker sees every partial.
func drainFinalized(tc *core.TaskCtx, s *stage, feed func(any) error) error {
	g := s.inNode.gb
	merged := make(map[uint64]any)
	if err := forEachConsume(tc, 0, s.inCodec, func(v any) error {
		k, acc := g.SplitPartial(v)
		if prev, ok := merged[k]; ok {
			merged[k] = g.Merge(prev, acc)
		} else {
			merged[k] = acc
		}
		return nil
	}); err != nil {
		return err
	}
	for _, k := range sortedKeys(merged) {
		if err := feed(g.MakePartial(k, merged[k])); err != nil {
			return err
		}
	}
	return nil
}

// ---- explain ----

// Explain renders the physical plan: stages with their fused chains,
// shuffle edges, join strategies, and seeds.
func (ph *Physical) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (parts=%d", ph.Plan.name, ph.Opts.Parts)
	if ph.Opts.Static {
		b.WriteString(", static")
	}
	b.WriteString(")\n")
	for _, s := range ph.Stages {
		fmt.Fprintf(&b, "  %-14s %s(%s)", s.Task, s.Head, s.Consumes)
		for _, op := range s.Ops {
			fmt.Fprintf(&b, " -> %s", op)
		}
		fmt.Fprintf(&b, " => %s", s.Output)
		var marks []string
		if s.ConsumesEdge {
			marks = append(marks, "edge-consumer")
		}
		if s.WritesEdge {
			marks = append(marks, "shuffle-write")
		}
		if len(s.Scans) > 0 {
			marks = append(marks, "scans "+strings.Join(s.Scans, ","))
		}
		if s.NoClone {
			marks = append(marks, "noclone")
		}
		if len(marks) > 0 {
			fmt.Fprintf(&b, "  [%s]", strings.Join(marks, "; "))
		}
		b.WriteByte('\n')
	}
	for _, j := range ph.Joins {
		fmt.Fprintf(&b, "  join@%d: %s — %s\n", j.Node, j.Strategy, j.Reason)
	}
	for _, edge := range sortedSeedNames(ph.Seeds) {
		seed := ph.Seeds[edge]
		fmt.Fprintf(&b, "  seed %s: %d splits, %d isolated keys\n",
			edge, len(seed.Splits), len(seed.Isolated))
	}
	return b.String()
}

func sortedSeedNames(m map[string]*shuffle.PartitionMap) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
