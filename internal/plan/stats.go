package plan

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// Stats carries compile-time statistics the planner consults for
// physical decisions. All fields are optional; missing information
// degrades the plan gracefully (no broadcast, no pre-seeding) and the
// runtime control plane still adapts from live sketches.
type Stats struct {
	// Records maps bag name -> record count. Source-bag sizes drive the
	// broadcast-join decision.
	Records map[string]int64
	// Edges maps an edge name (a previous run of the same plan — see
	// StatsFromMemory) or a probe/groupby chain's head source-bag name to
	// the key-frequency statistics of the records that will cross that
	// edge. Heavy-hitter candidates here are what turns a repartition
	// join into a skewed join at compile time.
	Edges map[string]*sketch.EdgeStats
	// PMaps maps edge name -> a previous run's final partition map; its
	// splits and isolations are transplanted into the seed map.
	PMaps map[string]*shuffle.PartitionMap
}

// NewStats returns empty statistics ready to be filled.
func NewStats() *Stats {
	return &Stats{
		Records: make(map[string]int64),
		Edges:   make(map[string]*sketch.EdgeStats),
		PMaps:   make(map[string]*shuffle.PartitionMap),
	}
}

// StatsFromMemory converts a finished job's skew memory
// (Master.EdgeMemory) into compile statistics for a repeated run of the
// same plan: edge names are stable across recompilations, so the
// previous run's final partition maps and merged sketches key directly.
// prefix is the finished job's bag namespace ("" for raw jobs).
func StatsFromMemory(mem map[string]core.EdgeMemory, prefix string) *Stats {
	s := NewStats()
	for name, em := range mem {
		n := name
		if prefix != "" {
			n = strings.TrimPrefix(name, prefix+"/")
		}
		if em.Stats != nil {
			s.Edges[n] = em.Stats
		}
		if em.PMap != nil {
			pm := em.PMap.Clone()
			pm.Bag = n
			s.PMaps[n] = pm
		}
	}
	return s
}

// knownRecords reports the record count of a node's materialized bag,
// when the caller supplied it.
func (c *compiler) knownRecords(n *Node) (int64, bool) {
	if c.opts.Stats == nil || c.opts.Stats.Records == nil {
		return 0, false
	}
	sz, ok := c.opts.Stats.Records[c.materialized(n)]
	return sz, ok
}

// headBag walks a narrow chain up to its head and returns the bag its
// records originate from — the secondary lookup key for warm edge
// statistics (the primary is the generated edge name itself).
func (c *compiler) headBag(n *Node) string {
	for n.kind == opFilter || n.kind == opMap || n.kind == opFlatMap {
		n = n.in[0]
	}
	return c.materialized(n)
}

// warmEdgeStats finds compile-time key statistics for an edge fed by
// node in: first under the edge's own (recompilation-stable) name, then
// under the feeding chain's head bag name.
func (c *compiler) warmEdgeStats(edge string, in *Node) *sketch.EdgeStats {
	if c.opts.Stats == nil || c.opts.Stats.Edges == nil {
		return nil
	}
	if st := c.opts.Stats.Edges[edge]; st != nil {
		return st
	}
	return c.opts.Stats.Edges[c.headBag(in)]
}

// decideJoin picks the physical strategy for one join node. The decision
// table (documented in the README):
//
//	build side known ≤ BroadcastMaxRecords        -> broadcast
//	warm statistics show heavy probe keys         -> skewed (pre-isolated)
//	otherwise                                     -> repartition
//
// Static mode always repartitions (the naive baseline), and
// JoinSpec.Strategy pins the choice outright. A repartition join is not
// final: its edge feeds the runtime control plane, whose
// SplitPartition/IsolateKey policies upgrade it mid-run when the live
// count-min sketch reveals skew the compile-time statistics missed.
func (c *compiler) decideJoin(n *Node) JoinInfo {
	info := JoinInfo{Node: n.id, Strategy: n.join.Strategy, Edge: c.p.edgeName(n)}
	if info.Strategy != JoinAuto {
		info.Reason = "pinned by JoinSpec.Strategy"
		if info.Strategy == JoinBroadcast {
			info.Edge = ""
		}
		return info
	}
	if c.opts.Static {
		info.Strategy = JoinRepartition
		info.Reason = "static compilation (naive baseline)"
		return info
	}
	build, probe := n.in[0], n.in[1]
	if sz, ok := c.knownRecords(build); ok && sz <= c.opts.BroadcastMaxRecords {
		info.Strategy, info.Edge = JoinBroadcast, ""
		info.Reason = fmt.Sprintf("build side %q holds %d records (≤ broadcast threshold %d)",
			c.materialized(build), sz, c.opts.BroadcastMaxRecords)
		return info
	}
	if st := c.warmEdgeStats(info.Edge, probe); st != nil && st.Total() > 0 {
		heavy := st.TopKeys(sketch.MaxHeavyKeys, c.opts.IsolateFraction/float64(c.opts.Parts))
		if len(heavy) > 0 {
			info.Strategy = JoinSkewed
			info.Reason = fmt.Sprintf(
				"warm sketch shows %d heavy keys (top key ≈ %d%% of %d observed records); pre-isolating with fan %d",
				len(heavy), int(100*float64(heavy[0].Count)/float64(st.Total())), st.Total(), c.opts.Fan)
			return info
		}
	}
	info.Strategy = JoinRepartition
	info.Reason = "build size unknown or large, no heavy keys in warm statistics (runtime policies still adapt the edge)"
	return info
}

// seedEdge derives a warm-start seed partition map for an edge from the
// compile-time statistics, pre-splitting and pre-isolating what a
// previous run (or a supplied sketch) already learned.
func (c *compiler) seedEdge(edge string, in *Node, spread bool) {
	if c.opts.Static || c.opts.Stats == nil {
		return
	}
	st := c.warmEdgeStats(edge, in)
	var prev *shuffle.PartitionMap
	if c.opts.Stats.PMaps != nil {
		prev = c.opts.Stats.PMaps[edge]
	}
	seed := shuffle.WarmStart(prev, st, edge, c.opts.Parts, c.opts.IsolateFraction, c.opts.Fan, spread)
	if seed != nil {
		c.ph.Seeds[edge] = seed
	}
}

// ---- execution helpers ----

// Seed publishes the compiled seed partition maps into the edges'
// control bags, with bagName mapping each declared edge name to its
// physical (e.g. job-namespaced) name. Run and Submit do NOT use this —
// they hand the seeds to the scheduler (JobConfig.Seeds), which
// publishes them after admission and before the master starts; Seed is
// for custom execution surfaces that manage their own namespace. Never
// publish into a namespace the scheduler has not granted you — that
// could write into a live name-owner's control bags. Producers and the
// master adopt any published map version over the locally derived base
// map whenever it arrives; a late seed costs only the placement of the
// records routed before it (refinement only redirects records not yet
// written), never correctness.
func (ph *Physical) Seed(ctx context.Context, store *bag.Store, bagName func(string) string) error {
	for _, name := range sortedSeedNames(ph.Seeds) {
		seed := ph.Seeds[name]
		phys := bagName(name)
		sm := seed.Clone()
		sm.Bag = phys
		if err := store.Bag(shuffle.PMapBag(phys)).Insert(ctx, sm.Encode()); err != nil {
			return fmt.Errorf("plan: seeding edge %q: %w", phys, err)
		}
	}
	return nil
}

// Run executes the compiled plan as the cluster's single (primary) job:
// the Cluster.Run shape with the seed maps carried in the submission,
// so the scheduler publishes them after admission and before the job's
// master starts. Source bags must be loaded and sealed.
func (ph *Physical) Run(ctx context.Context, c *core.Cluster) error {
	ph.traceDecisions(c.Observer(), ph.App.Name())
	if err := c.StartWith(ctx, ph.App, core.JobConfig{Seeds: ph.Seeds}); err != nil {
		return err
	}
	return c.Wait(ctx)
}

// traceDecisions records the compiled join strategies (with the stats
// that justified each) in the cluster's observer, so a live /debug/trace
// shows why the planner chose broadcast/skewed/repartition alongside the
// runtime refinements that followed. Compile itself has no cluster;
// Run/Submit are where a plan meets one.
func (ph *Physical) traceDecisions(o *obs.Observer, job string) {
	for _, j := range ph.Joins {
		subject := j.Edge
		if subject == "" {
			subject = fmt.Sprintf("node-%d", j.Node)
		}
		o.Emit(obs.EvJoinStrategyChosen, job, subject,
			fmt.Sprintf("node=%d strategy=%s reason: %s", j.Node, j.Strategy, j.Reason))
		o.Counter("hurricane_plan_join_strategy_total", "strategy", j.Strategy.String()).Inc()
	}
	if len(ph.Seeds) > 0 {
		o.Counter("hurricane_plan_seeded_edges_total").Add(uint64(len(ph.Seeds)))
	}
}

// Submit submits the compiled plan to the multi-job scheduler with its
// seed maps in the submission: the scheduler publishes them under the
// namespace it actually granted, after admission and before the job's
// master starts, so producers can never observe an unseeded edge and a
// rejected submission never writes into a foreign namespace. Load
// source bags under the names the returned handle's Bag method reports.
func (ph *Physical) Submit(ctx context.Context, c *core.Cluster, cfg core.JobConfig) (*core.JobHandle, error) {
	if cfg.Seeds == nil && len(ph.Seeds) > 0 {
		cfg.Seeds = ph.Seeds
	}
	name := cfg.Name
	if name == "" {
		name = ph.App.Name()
	}
	ph.traceDecisions(c.Observer(), name)
	return c.SubmitJob(ctx, ph.App, cfg)
}
