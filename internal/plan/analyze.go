package plan

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// ExplainAnalyze renders the physical plan annotated with a measured
// execution profile (EXPLAIN ANALYZE): each stage line from Explain is
// followed by its observed worker count, elapsed time, rows, bytes, and
// phase breakdown; each join line gains the observed behaviour of its
// probe edge so the planner's compile-time choice can be checked against
// what actually happened. p is the profile of a run of this plan
// (JobHandle.Profile, or WindowResult.Profile for streams); the JSON
// sibling of this text is the Profile itself, which marshals directly.
//
// Stage spans are joined by task name, so the annotation works for raw
// and namespaced jobs alike. A stage with no recorded spans (profiling
// disabled, or the stage never ran) is annotated "(no spans)".
func (ph *Physical) ExplainAnalyze(p *obs.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (parts=%d", ph.Plan.name, ph.Opts.Parts)
	if ph.Opts.Static {
		b.WriteString(", static")
	}
	b.WriteString(") — analyzed")
	if p != nil {
		fmt.Fprintf(&b, ": wall %.1fms, critical path %.1fms",
			float64(p.WallNS)/1e6, float64(p.CriticalNS)/1e6)
	}
	b.WriteByte('\n')
	for _, s := range ph.Stages {
		fmt.Fprintf(&b, "  %-14s %s(%s)", s.Task, s.Head, s.Consumes)
		for _, op := range s.Ops {
			fmt.Fprintf(&b, " -> %s", op)
		}
		fmt.Fprintf(&b, " => %s\n", s.Output)
		st := p.Stage(s.Task)
		if st == nil {
			b.WriteString("      measured: (no spans)\n")
			continue
		}
		fmt.Fprintf(&b, "      measured: workers=%d", st.Workers)
		if st.Merges > 0 {
			fmt.Fprintf(&b, "+%dm", st.Merges)
		}
		fmt.Fprintf(&b, " time=%.1fms p50=%.1fms max=%.1fms in=%dB out=%dB",
			float64(st.WallNS)/1e6, float64(st.P50TaskNS)/1e6,
			float64(st.MaxTaskNS)/1e6, st.BytesIn, st.BytesOut)
		if st.Records > 0 {
			fmt.Fprintf(&b, " rows=%d", st.Records)
		}
		fmt.Fprintf(&b, "\n      phases:   %s\n", st.Phases.String())
	}
	for _, j := range ph.Joins {
		fmt.Fprintf(&b, "  join@%d: %s — %s", j.Node, j.Strategy, j.Reason)
		if es := profileEdge(p, j.Edge); es != nil {
			fmt.Fprintf(&b, "\n      observed: p50=%.1fms max=%.1fms slowest=%.0f%% splits=%d isolations=%d clones=%d",
				float64(es.P50TaskNS)/1e6, float64(es.MaxTaskNS)/1e6,
				es.SlowestShare*100, es.Splits, es.Isolations, es.Clones)
		}
		b.WriteByte('\n')
	}
	if p != nil && len(p.Critical) > 0 {
		names := make([]string, len(p.Critical))
		for i, st := range p.Critical {
			names[i] = st.Task
		}
		fmt.Fprintf(&b, "  critical path: %s (%.1fms: %s)\n",
			strings.Join(names, " -> "), float64(p.CriticalNS)/1e6, p.CriticalBy.String())
	}
	return b.String()
}

// profileEdge finds the profile's skew attribution for a plan edge.
// Namespaced jobs store the edge as "<prefix>/<edge>", so the lookup
// matches the exact name or a "/"-separated suffix.
func profileEdge(p *obs.Profile, edge string) *obs.EdgeSkew {
	if p == nil || edge == "" {
		return nil
	}
	for i := range p.Edges {
		e := &p.Edges[i]
		if e.Edge == edge || strings.HasSuffix(e.Edge, "/"+edge) {
			return e
		}
	}
	return nil
}
