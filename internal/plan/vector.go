package plan

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/shuffle"
)

// Vectorized stage execution. When a stage's record codec supports the
// columnar batch chunk layout (ColumnarAnyCodec), the compiled stage runs
// a batch loop instead of the record-at-a-time pipeline: input chunks
// decode one column vector at a time, the fused prefix of narrow
// operators applies over whole vectors (Filter as a selection pass that
// compacts the vector in place, Map as an in-place column transform), and
// the stage tail — per-record operators like FlatMap/Join/GroupBy/TopK,
// then the sink — consumes the surviving vector. Output batches the same
// way: a plain sink packs records into per-chunk column builders, an edge
// sink buffers records and routes them through the shuffle writer's
// one-pass batch partitioner. Every boundary falls back to rows — row
// chunks decode inside the batch loop, batch chunks decode inside the row
// loop (feedChunk), and row-only codecs keep the original pipeline — so
// batch and row stages interoperate on the same bags and the results are
// bit-identical either way.

// ColumnarAnyCodec is the optional columnar extension of AnyCodec. The
// typed adapter in hurricane/q implements it whenever the wrapped
// chunk.Codec supports the batch layout; ColKinds returning nil means
// "row only", and the compiled stages keep the record-at-a-time path.
type ColumnarAnyCodec interface {
	AnyCodec
	// ColKinds returns the batch column layout, or nil when the wrapped
	// codec is row-only.
	ColKinds() []chunk.ColKind
	// EncodeColumnAny appends one record's fields to the builder's
	// columns; the caller ends the row.
	EncodeColumnAny(b *chunk.BatchBuilder, v any)
	// DecodeBatchAny appends a decoded batch's records to out.
	DecodeBatchAny(bt *chunk.Batch, out []any) ([]any, error)
}

// columnarOf resolves the batch-capable view of a codec, nil when the
// codec is row-only.
func columnarOf(c AnyCodec) ColumnarAnyCodec {
	if cc, ok := c.(ColumnarAnyCodec); ok && cc.ColKinds() != nil {
		return cc
	}
	return nil
}

// vecRouteBatch is how many emitted records an edge sink buffers before
// routing them as one batch (one map poll, one routing pass, one bulk
// sketch feed).
const vecRouteBatch = 1024

// vecKernel transforms one record vector in place (the returned slice
// shares the input's backing array).
type vecKernel func(vec []any) ([]any, error)

// vecPrefixLen returns how many leading ops of the fused chain are
// vectorizable. Filter and Map keep the vector a vector; the first
// FlatMap/Join/GroupBy/TopK starts the per-record tail.
func vecPrefixLen(ops []*Node) int {
	n := 0
	for n < len(ops) && (ops[n].kind == opFilter || ops[n].kind == opMap) {
		n++
	}
	return n
}

// lowerVecOps compiles the vectorizable prefix into batch kernels. Like
// lowerOps, the per-worker factories run once per call, so clones get
// their own operator state.
func lowerVecOps(ops []*Node) []vecKernel {
	out := make([]vecKernel, 0, len(ops))
	for _, n := range ops {
		switch n.kind {
		case opFilter:
			pred := n.filterF()
			out = append(out, func(vec []any) ([]any, error) {
				kept := vec[:0]
				for _, v := range vec {
					if pred(v) {
						kept = append(kept, v)
					}
				}
				return kept, nil
			})
		case opMap:
			fn := n.mapF()
			out = append(out, func(vec []any) ([]any, error) {
				for i, v := range vec {
					m, err := fn(v)
					if err != nil {
						return nil, err
					}
					vec[i] = m
				}
				return vec, nil
			})
		}
	}
	return out
}

// runStageVec is the batch-loop body of runStage: decode a vector per
// chunk, run the vectorized prefix, feed survivors to the per-record
// tail. The vector is reused across chunks.
func runStageVec(tc *core.TaskCtx, s *stage, in ColumnarAnyCodec,
	feed func(any) error, finishAll func() error) error {
	kernels := lowerVecOps(s.ops[:vecPrefixLen(s.ops)])
	var (
		vec []any
		bt  chunk.Batch
	)
	for {
		c, err := tc.Remove(0)
		if err == bag.ErrEmpty {
			break
		}
		if err != nil {
			return err
		}
		vec, err = decodeVec(c, in, &bt, vec[:0])
		if err != nil {
			return err
		}
		for _, k := range kernels {
			if len(vec) == 0 {
				break
			}
			if vec, err = k(vec); err != nil {
				return err
			}
		}
		for _, v := range vec {
			if err := feed(v); err != nil {
				return err
			}
		}
	}
	return finishAll()
}

// decodeVec decodes one chunk — batch or row — into a record vector.
func decodeVec(c chunk.Chunk, in ColumnarAnyCodec, bt *chunk.Batch, vec []any) ([]any, error) {
	if chunk.IsBatch(c) {
		p, err := chunk.DecodeBatch(c, bt)
		if err != nil {
			return vec, err
		}
		return in.DecodeBatchAny(p, vec)
	}
	r := chunk.NewReader(c)
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				return vec, nil
			}
			return vec, err
		}
		v, err := in.DecodeAny(rec)
		if err != nil {
			return vec, err
		}
		vec = append(vec, v)
	}
}

// stageVecSink is stageSink with batch output: when the stage's output
// codec is columnar, records pack into column builders (a plain bag gets
// one builder, an edge sink scatters routed batches into per-partition
// builders). Row-only output codecs keep the original sink.
func stageVecSink(tc *core.TaskCtx, s *stage) (func(any) error, error) {
	oc := columnarOf(s.outCodec)
	if oc == nil {
		return stageSink(tc, s)
	}
	if s.edgeKeyFn == nil {
		sink := &plainVecSink{
			tc: tc, oc: oc,
			b:         chunk.GetBatchBuilder(0, oc.ColKinds()),
			chunkSize: tc.Store().ChunkSize(),
		}
		tc.OnFinish(sink.close)
		return sink.append, nil
	}
	spec := tc.OutputBagSpec(0)
	if spec == nil || spec.Partitions <= 0 {
		return nil, fmt.Errorf("plan: stage %s output %q is not partitioned", s.name, tc.OutputName(0))
	}
	sink := &edgeVecSink{
		oc: oc, key: s.edgeKeyFn,
		w: shuffle.NewWriter(tc.Context(), shuffle.WriterConfig{
			Store:       tc.Store(),
			Edge:        tc.OutputName(0),
			Parts:       spec.Partitions,
			WriterID:    tc.Blueprint().ID,
			PollEvery:   spec.PollEvery,
			SketchEvery: spec.SketchEvery,
			Obs:         tc.Obs(),
			Job:         tc.Job(),
			OnSpans:     tc.ShuffleSpanHook(),
		}),
		kinds:     oc.ColKinds(),
		leaves:    make(map[shuffle.RouteRef]*chunk.BatchBuilder),
		chunkSize: tc.Store().ChunkSize(),
	}
	tc.OnFinish(sink.close)
	return sink.append, nil
}

// plainVecSink batch-encodes a stage's records into its plain output bag.
type plainVecSink struct {
	tc        *core.TaskCtx
	oc        ColumnarAnyCodec
	b         *chunk.BatchBuilder
	chunkSize int
}

func (s *plainVecSink) append(v any) error {
	s.oc.EncodeColumnAny(s.b, v)
	s.b.EndRow()
	if s.b.Size() >= s.chunkSize {
		c := s.b.Encode()
		s.b.Clear()
		return s.tc.Insert(0, c)
	}
	return nil
}

func (s *plainVecSink) close() error {
	defer chunk.PutBatchBuilder(s.b)
	if s.b.Rows() == 0 {
		return nil
	}
	return s.tc.Insert(0, s.b.Encode())
}

// edgeVecSink batch-routes a stage's records into its shuffle edge:
// emitted records buffer up to vecRouteBatch, then one PartitionBatch
// call routes them all and each row lands in its partition's column
// builder. Chunks flush at the configured chunk size; close (the task's
// finish hook) drains the buffer and pending builders before closing the
// writer, so nothing is lost on completion.
type edgeVecSink struct {
	w         *shuffle.Writer
	oc        ColumnarAnyCodec
	key       func(any) uint64
	kinds     []chunk.ColKind
	pend      []any
	leaves    map[shuffle.RouteRef]*chunk.BatchBuilder
	chunkSize int
	kb        [8]byte
}

func (s *edgeVecSink) append(v any) error {
	s.pend = append(s.pend, v)
	if len(s.pend) >= vecRouteBatch {
		return s.route()
	}
	return nil
}

func (s *edgeVecSink) route() error {
	if len(s.pend) == 0 {
		return nil
	}
	// PartitionBatch consumes each key before the next index is asked
	// for, so one scratch buffer serves the whole batch.
	refs := s.w.PartitionBatch(len(s.pend), func(i int) []byte {
		binary.LittleEndian.PutUint64(s.kb[:], s.key(s.pend[i]))
		return s.kb[:]
	})
	for i, ref := range refs {
		b := s.leaves[ref]
		if b == nil {
			b = chunk.GetBatchBuilder(0, s.kinds)
			s.leaves[ref] = b
		}
		s.oc.EncodeColumnAny(b, s.pend[i])
		b.EndRow()
		if b.Size() >= s.chunkSize {
			if err := s.flushLeaf(ref, b); err != nil {
				return err
			}
		}
	}
	s.pend = s.pend[:0]
	return nil
}

func (s *edgeVecSink) flushLeaf(ref shuffle.RouteRef, b *chunk.BatchBuilder) error {
	rows := b.Rows()
	if rows == 0 {
		return nil
	}
	c := b.Encode()
	b.Clear()
	return s.w.InsertBatchChunk(ref, c, rows)
}

func (s *edgeVecSink) close() error {
	firstErr := s.route()
	for ref, b := range s.leaves {
		if err := s.flushLeaf(ref, b); err != nil && firstErr == nil {
			firstErr = err
		}
		chunk.PutBatchBuilder(b)
		delete(s.leaves, ref)
	}
	if err := s.w.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
