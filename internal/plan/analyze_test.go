package plan

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestExplainAnalyzePinned compiles the skewed-join plan and renders
// EXPLAIN ANALYZE against a synthesized profile, pinning the measured
// annotations: per-stage workers/time/rows/bytes lines, per-phase
// breakdowns, the observed-edge line under the join decision, and the
// critical-path footer.
func TestExplainAnalyzePinned(t *testing.T) {
	p := New("j")
	r := p.Scan("relR", pairCodec)
	s := p.Scan("relS", pairCodec)
	j := p.Join(r, s, joinSpec(JoinAuto))
	p.Sink(j, "out")
	ph, err := Compile(p, Options{Parts: 4, Stats: withRecords(zipfStats("relS", 200000), "relR", 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Joins) != 1 || ph.Joins[0].Strategy != JoinSkewed {
		t.Fatalf("fixture compiled unexpectedly:\n%s", ph.Explain())
	}

	// Synthesize one worker span per physical stage, chained linearly so
	// the critical path covers every stage. 8ms wall each: 1ms queue,
	// 2ms read, 4.5ms compute, 1ms shuffle, 0.5ms finalize.
	var spans []obs.TaskSpans
	deps := map[string][]string{}
	for i, st := range ph.Stages {
		start := int64(1_000_000 + i*10_000_000)
		spans = append(spans, obs.TaskSpans{
			TaskID:     st.Task + "/w0@e0",
			Spec:       st.Task,
			StartedNS:  start,
			EndedNS:    start + 8_000_000,
			QueueNS:    1_000_000,
			ReadNS:     2_000_000,
			ComputeNS:  4_500_000,
			ShuffleNS:  1_000_000,
			FinalizeNS: 500_000,
			BytesIn:    1 << 20,
			BytesOut:   1 << 19,
			Records:    1000,
		})
		if i > 0 {
			deps[st.Task] = []string{ph.Stages[i-1].Task}
		}
	}
	wall := int64(len(ph.Stages)-1)*10_000_000 + 8_000_000
	prof := obs.BuildProfile("j", wall, spans, deps)
	prof.Edges = []obs.EdgeSkew{{
		Edge: ph.Joins[0].Edge, Consumer: ph.Stages[len(ph.Stages)-1].Task,
		P50TaskNS: 8_000_000, MaxTaskNS: 8_000_000, SlowestShare: 0.5,
		Splits: 2, Isolations: 1, Clones: 3,
	}}

	out := ph.ExplainAnalyze(prof)
	for _, want := range []string{
		"plan j (parts=4) — analyzed: wall",
		"measured: workers=1 time=8.0ms p50=8.0ms max=8.0ms in=1048576B out=524288B rows=1000",
		"phases:   queue=1.0ms read=2.0ms compute=4.5ms shuffle=1.0ms finalize=0.5ms",
		"observed: p50=8.0ms max=8.0ms slowest=50% splits=2 isolations=1 clones=3",
		"critical path: ",
		" -> ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	// Every compiled stage line appears with its measured annotation.
	if got, want := strings.Count(out, "measured: workers=1"), len(ph.Stages); got != want {
		t.Fatalf("%d measured stage lines, want %d:\n%s", got, want, out)
	}

	// Without spans (profiling off or no run yet) the annotation degrades
	// per stage rather than erroring.
	empty := ph.ExplainAnalyze(obs.BuildProfile("j", 0, nil, nil))
	if got, want := strings.Count(empty, "measured: (no spans)"), len(ph.Stages); got != want {
		t.Fatalf("%d no-span lines, want %d:\n%s", got, want, empty)
	}
	if strings.Contains(empty, "critical path:") {
		t.Fatalf("empty profile produced a critical path:\n%s", empty)
	}
	// A nil profile (job never ran) must render too.
	if !strings.Contains(ph.ExplainAnalyze(nil), "measured: (no spans)") {
		t.Fatal("nil-profile render")
	}
}
