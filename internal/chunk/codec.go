// Typed serializers and iterators for common record formats.
//
// The paper: "Hurricane provides a number of typed iterators for serializing
// and deserializing common formats (integers, floats, strings, tuples, etc.),
// which can be combined to represent more complex data types."
package chunk

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// ErrShortRecord is returned when decoding a record that is too short for
// the expected format.
var ErrShortRecord = errors.New("chunk: short record")

// A Codec serializes values of type T to and from record byte slices.
type Codec[T any] interface {
	// Encode appends the encoding of v to buf and returns the result.
	Encode(buf []byte, v T) []byte
	// Decode parses a value from record, returning the value and the
	// number of bytes consumed.
	Decode(record []byte) (T, int, error)
}

// ---- scalar codecs ----

// Int64Codec encodes int64 values as zig-zag varints.
type Int64Codec struct{}

func (Int64Codec) Encode(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func (Int64Codec) Decode(record []byte) (int64, int, error) {
	v, n := binary.Varint(record)
	if n <= 0 {
		return 0, 0, ErrShortRecord
	}
	return v, n, nil
}

// Uint64Codec encodes uint64 values as varints.
type Uint64Codec struct{}

func (Uint64Codec) Encode(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func (Uint64Codec) Decode(record []byte) (uint64, int, error) {
	v, n := binary.Uvarint(record)
	if n <= 0 {
		return 0, 0, ErrShortRecord
	}
	return v, n, nil
}

// Uint64FixedCodec encodes uint64 values as fixed 8-byte little-endian
// words. It is the right choice for high-entropy fields (hashes, random
// identifiers, opaque payloads): a uniformly random uint64 averages more
// than nine bytes as a varint and costs a ten-iteration decode loop per
// value, where the fixed layout is one load.
type Uint64FixedCodec struct{}

func (Uint64FixedCodec) Encode(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func (Uint64FixedCodec) Decode(record []byte) (uint64, int, error) {
	if len(record) < 8 {
		return 0, 0, ErrShortRecord
	}
	return binary.LittleEndian.Uint64(record), 8, nil
}

// Float64Codec encodes float64 values as fixed 8-byte little-endian IEEE 754.
type Float64Codec struct{}

func (Float64Codec) Encode(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func (Float64Codec) Decode(record []byte) (float64, int, error) {
	if len(record) < 8 {
		return 0, 0, ErrShortRecord
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(record)), 8, nil
}

// StringCodec encodes strings with a uvarint length prefix.
type StringCodec struct{}

func (StringCodec) Encode(buf []byte, v string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

func (StringCodec) Decode(record []byte) (string, int, error) {
	size, n := binary.Uvarint(record)
	if n <= 0 {
		return "", 0, ErrShortRecord
	}
	end := n + int(size)
	if end > len(record) {
		return "", 0, ErrShortRecord
	}
	return string(record[n:end]), end, nil
}

// BytesCodec encodes byte slices with a uvarint length prefix.
type BytesCodec struct{}

func (BytesCodec) Encode(buf []byte, v []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

func (BytesCodec) Decode(record []byte) ([]byte, int, error) {
	size, n := binary.Uvarint(record)
	if n <= 0 {
		return nil, 0, ErrShortRecord
	}
	end := n + int(size)
	if end > len(record) {
		return nil, 0, ErrShortRecord
	}
	return record[n:end], end, nil
}

// ---- composite codecs ----

// Pair is a two-field tuple.
type Pair[A, B any] struct {
	First  A
	Second B
}

// PairCodec combines two codecs into a codec for Pair values. Nested
// PairCodecs represent arbitrary nested tuples.
type PairCodec[A, B any] struct {
	A Codec[A]
	B Codec[B]
}

func (c PairCodec[A, B]) Encode(buf []byte, v Pair[A, B]) []byte {
	buf = c.A.Encode(buf, v.First)
	return c.B.Encode(buf, v.Second)
}

func (c PairCodec[A, B]) Decode(record []byte) (Pair[A, B], int, error) {
	var p Pair[A, B]
	a, n, err := c.A.Decode(record)
	if err != nil {
		return p, 0, err
	}
	b, m, err := c.B.Decode(record[n:])
	if err != nil {
		return p, 0, err
	}
	p.First, p.Second = a, b
	return p, n + m, nil
}

// KV is a key-value record with string key and opaque value, the workhorse
// record type of the map-reduce style applications in the paper.
type KV struct {
	Key   string
	Value []byte
}

// KVCodec serializes KV records.
type KVCodec struct{}

func (KVCodec) Encode(buf []byte, v KV) []byte {
	buf = (StringCodec{}).Encode(buf, v.Key)
	return (BytesCodec{}).Encode(buf, v.Value)
}

func (KVCodec) Decode(record []byte) (KV, int, error) {
	k, n, err := (StringCodec{}).Decode(record)
	if err != nil {
		return KV{}, 0, err
	}
	v, m, err := (BytesCodec{}).Decode(record[n:])
	if err != nil {
		return KV{}, 0, err
	}
	return KV{Key: k, Value: v}, n + m, nil
}

// ---- typed writer / iterator ----

// TypedWriter serializes values of type T into chunks via an underlying
// chunk Writer, one value per record.
type TypedWriter[T any] struct {
	W     *Writer
	Codec Codec[T]
	buf   []byte
}

// NewTypedWriter returns a TypedWriter emitting chunks of at most size
// bytes through emit.
func NewTypedWriter[T any](codec Codec[T], size int, emit func(Chunk) error) *TypedWriter[T] {
	return &TypedWriter[T]{W: NewWriter(size, emit), Codec: codec}
}

// Write appends one value as a record.
func (t *TypedWriter[T]) Write(v T) error {
	t.buf = t.Codec.Encode(t.buf[:0], v)
	return t.W.Append(t.buf)
}

// Flush emits any buffered partial chunk.
func (t *TypedWriter[T]) Flush() error { return t.W.Flush() }

// Iterator deserializes values of type T from a stream of chunks. Row and
// batch chunks may be freely mixed in one stream: batch chunks decode
// through the codec's columnar path when it has one, and through the
// generic batch→row adapter otherwise.
type Iterator[T any] struct {
	Codec Codec[T]
	// Next fetches the next chunk, returning io.EOF at end of stream.
	Source func() (Chunk, error)

	r   *Reader
	vec []T
	vi  int
	bt  Batch
	br  *BatchReader
}

// NewIterator returns an Iterator decoding values from chunks supplied by
// source.
func NewIterator[T any](codec Codec[T], source func() (Chunk, error)) *Iterator[T] {
	return &Iterator[T]{Codec: codec, Source: source}
}

// NewSliceIterator returns an Iterator over a fixed set of chunks.
func NewSliceIterator[T any](codec Codec[T], chunks []Chunk) *Iterator[T] {
	i := 0
	return NewIterator(codec, func() (Chunk, error) {
		if i >= len(chunks) {
			return nil, io.EOF
		}
		c := chunks[i]
		i++
		return c, nil
	})
}

// Next returns the next decoded value, or io.EOF at end of stream.
func (it *Iterator[T]) Next() (T, error) {
	var zero T
	for {
		if it.vi < len(it.vec) {
			v := it.vec[it.vi]
			it.vi++
			return v, nil
		}
		if it.r != nil {
			rec, err := it.r.Next()
			if err == nil {
				v, _, derr := it.Codec.Decode(rec)
				return v, derr
			}
			if err != io.EOF {
				return zero, err
			}
			it.r = nil
		}
		c, err := it.Source()
		if err != nil {
			return zero, err
		}
		if IsBatch(c) {
			if err := it.loadBatch(c); err != nil {
				return zero, err
			}
			continue
		}
		if it.r == nil {
			it.r = NewReader(c)
		} else {
			it.r.Reset(c)
		}
	}
}

// loadBatch decodes one batch chunk into the iterator's value vector.
func (it *Iterator[T]) loadBatch(c Chunk) error {
	bt, err := DecodeBatch(c, &it.bt)
	if err != nil {
		return err
	}
	it.vec, it.vi = it.vec[:0], 0
	if cc, ok := ColumnarOf(it.Codec); ok {
		it.vec, _, err = cc.DecodeColumn(bt, 0, it.vec)
		return err
	}
	// Row↔batch adapter: re-frame rows and decode each through the row
	// codec. Records are copied because Decode may alias them (the
	// adapter reuses its buffer across rows).
	if it.br == nil {
		it.br = NewBatchReader(bt)
	} else {
		it.br.Reset(bt)
	}
	for {
		rec, err := it.br.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		v, _, err := it.Codec.Decode(append([]byte(nil), rec...))
		if err != nil {
			return err
		}
		it.vec = append(it.vec, v)
	}
}

// Collect drains the iterator into a slice.
func (it *Iterator[T]) Collect() ([]T, error) {
	var out []T
	for {
		v, err := it.Next()
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, v)
	}
}
