package chunk

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var chunks []Chunk
	w := NewWriter(64, func(c Chunk) error {
		chunks = append(chunks, c)
		return nil
	})
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, i%20+1)
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	var got [][]byte
	for _, c := range chunks {
		recs, err := Records(c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriterRecordNeverCrossesChunks(t *testing.T) {
	// Property: every emitted chunk decodes standalone — records never
	// straddle chunk boundaries.
	f := func(recs [][]byte) bool {
		var chunks []Chunk
		w := NewWriter(128, func(c Chunk) error {
			chunks = append(chunks, c)
			return nil
		})
		kept := 0
		for _, r := range recs {
			if len(r) > 100 {
				r = r[:100]
			}
			if err := w.Append(r); err != nil {
				return false
			}
			kept++
		}
		if err := w.Flush(); err != nil {
			return false
		}
		total := 0
		for _, c := range chunks {
			n, err := Count(c)
			if err != nil {
				return false // would mean a record crossed a boundary
			}
			total += n
		}
		return total == kept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRecordTooLarge(t *testing.T) {
	w := NewWriter(16, func(Chunk) error { return nil })
	if err := w.Append(make([]byte, 32)); err == nil {
		t.Fatal("expected ErrRecordTooLarge")
	}
}

func TestReaderCorrupt(t *testing.T) {
	// A length prefix pointing past the end of the chunk.
	c := Chunk{0x20, 0x01}
	r := NewReader(c)
	if _, err := r.Next(); err != ErrCorrupt {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestEmptyChunk(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
	n, err := Count(nil)
	if err != nil || n != 0 {
		t.Fatalf("Count(nil) = %d, %v", n, err)
	}
}

func TestInt64CodecQuick(t *testing.T) {
	f := func(v int64) bool {
		buf := (Int64Codec{}).Encode(nil, v)
		got, n, err := (Int64Codec{}).Decode(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64CodecQuick(t *testing.T) {
	f := func(v uint64) bool {
		buf := (Uint64Codec{}).Encode(nil, v)
		got, n, err := (Uint64Codec{}).Decode(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64CodecQuick(t *testing.T) {
	f := func(v float64) bool {
		buf := (Float64Codec{}).Encode(nil, v)
		got, n, err := (Float64Codec{}).Decode(buf)
		if err != nil || n != 8 {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringCodecQuick(t *testing.T) {
	f := func(v string) bool {
		buf := (StringCodec{}).Encode(nil, v)
		got, n, err := (StringCodec{}).Decode(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairCodecNestedQuick(t *testing.T) {
	codec := PairCodec[string, Pair[int64, float64]]{
		A: StringCodec{},
		B: PairCodec[int64, float64]{A: Int64Codec{}, B: Float64Codec{}},
	}
	f := func(s string, i int64, fl float64) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		v := Pair[string, Pair[int64, float64]]{First: s}
		v.Second.First = i
		v.Second.Second = fl
		buf := codec.Encode(nil, v)
		got, n, err := codec.Decode(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKVCodecQuick(t *testing.T) {
	f := func(k string, v []byte) bool {
		buf := (KVCodec{}).Encode(nil, KV{Key: k, Value: v})
		got, n, err := (KVCodec{}).Decode(buf)
		return err == nil && got.Key == k && bytes.Equal(got.Value, v) && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecShortRecord(t *testing.T) {
	if _, _, err := (Float64Codec{}).Decode([]byte{1, 2, 3}); err != ErrShortRecord {
		t.Fatalf("float: got %v", err)
	}
	if _, _, err := (StringCodec{}).Decode([]byte{0x05, 'a'}); err != ErrShortRecord {
		t.Fatalf("string: got %v", err)
	}
	if _, _, err := (Int64Codec{}).Decode(nil); err != ErrShortRecord {
		t.Fatalf("int: got %v", err)
	}
}

func TestTypedWriterIterator(t *testing.T) {
	var chunks []Chunk
	tw := NewTypedWriter[int64](Int64Codec{}, 64, func(c Chunk) error {
		chunks = append(chunks, c)
		return nil
	})
	const n = 1000
	for i := int64(0); i < n; i++ {
		if err := tw.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	it := NewSliceIterator[int64](Int64Codec{}, chunks)
	vals, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n {
		t.Fatalf("got %d values, want %d", len(vals), n)
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

func TestIteratorEmptySource(t *testing.T) {
	it := NewSliceIterator[int64](Int64Codec{}, nil)
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}

func BenchmarkWriterAppend(b *testing.B) {
	rec := make([]byte, 100)
	w := NewWriter(DefaultSize, func(Chunk) error { return nil })
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderNext(b *testing.B) {
	var chunks []Chunk
	w := NewWriter(1<<20, func(c Chunk) error { chunks = append(chunks, c); return nil })
	rec := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		w.Append(rec)
	}
	w.Flush()
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	i := 0
	r := NewReader(chunks[0])
	for n := 0; n < b.N; n++ {
		if _, err := r.Next(); err == io.EOF {
			i = (i + 1) % len(chunks)
			r = NewReader(chunks[i])
		}
	}
}
