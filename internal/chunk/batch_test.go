package chunk

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

var kvTestCodec = PairCodec[uint64, Pair[int64, []byte]]{
	A: Uint64Codec{},
	B: PairCodec[int64, []byte]{A: Int64Codec{}, B: BytesCodec{}},
}

type kvTestRow = Pair[uint64, Pair[int64, []byte]]

func testRows(n int) []kvTestRow {
	rows := make([]kvTestRow, 0, n)
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i%7)
		rows = append(rows, kvTestRow{
			First:  uint64(i) * 7919,
			Second: Pair[int64, []byte]{First: int64(i - n/2), Second: payload},
		})
	}
	return rows
}

func encodeBatch(t testing.TB, rows []kvTestRow, size int) []Chunk {
	t.Helper()
	var chunks []Chunk
	w, ok := NewBatchWriter[kvTestRow](kvTestCodec, 42, size, func(c Chunk) error {
		chunks = append(chunks, c)
		return nil
	})
	if !ok {
		t.Fatal("kvTestCodec should be columnar")
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return chunks
}

func TestBatchRoundTripColumnar(t *testing.T) {
	rows := testRows(500)
	chunks := encodeBatch(t, rows, 1<<10)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple batches, got %d", len(chunks))
	}
	for _, c := range chunks {
		if !IsBatch(c) {
			t.Fatal("batch writer emitted a non-batch chunk")
		}
	}
	got, err := NewSliceIterator[kvTestRow](kvTestCodec, chunks).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].First != rows[i].First || got[i].Second.First != rows[i].Second.First ||
			!bytes.Equal(got[i].Second.Second, rows[i].Second.Second) {
			t.Fatalf("row %d mismatch: got %+v want %+v", i, got[i], rows[i])
		}
	}
}

// TestBatchRowAdapter checks the generic batch→row re-framing: records
// produced by BatchReader must be byte-identical to the codec's row
// encoding, so any row-format consumer can read batch chunks unchanged.
func TestBatchRowAdapter(t *testing.T) {
	rows := testRows(200)
	chunks := encodeBatch(t, rows, DefaultSize)
	var i int
	for _, c := range chunks {
		recs, err := Records(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			want := kvTestCodec.Encode(nil, rows[i])
			if !bytes.Equal(rec, want) {
				t.Fatalf("row %d re-framed as %x, want %x", i, rec, want)
			}
			i++
		}
	}
	if i != len(rows) {
		t.Fatalf("adapter yielded %d rows, want %d", i, len(rows))
	}
}

func TestBatchCountByHeader(t *testing.T) {
	rows := testRows(300)
	chunks := encodeBatch(t, rows, DefaultSize)
	total := 0
	for _, c := range chunks {
		n, err := Count(c)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != len(rows) {
		t.Fatalf("Count total %d, want %d", total, len(rows))
	}
}

// TestRowReaderRejectsBatch asserts a row Reader pointed at a batch chunk
// fails with ErrCorrupt rather than misparsing column payloads as rows.
func TestRowReaderRejectsBatch(t *testing.T) {
	chunks := encodeBatch(t, testRows(100), DefaultSize)
	r := NewReader(chunks[0])
	if _, err := r.Next(); err == nil || !isCorrupt(err) {
		t.Fatalf("row reader on batch chunk: got %v, want ErrCorrupt", err)
	}
}

// TestCorruptBatchHeader asserts every malformed-header shape surfaces as
// ErrCorrupt through DecodeBatch, Count, and the Iterator — never a panic.
func TestCorruptBatchHeader(t *testing.T) {
	base := encodeBatch(t, testRows(64), DefaultSize)[0]
	mutate := func(fn func(c []byte)) Chunk {
		c := append([]byte(nil), base...)
		fn(c)
		return c
	}
	cases := map[string]Chunk{
		"bad version":  mutate(func(c []byte) { c[len(batchMagic)] = 0x7f }),
		"bad kind":     mutate(func(c []byte) { c[len(batchMagic)+4] = 0x9f }),
		"truncated":    base[:len(base)-3],
		"trailing":     append(append([]byte(nil), base...), 0xaa, 0xbb),
		"column bound": mutate(func(c []byte) { c[len(batchMagic)+5] = 0xff }),
	}
	for name, c := range cases {
		if _, err := DecodeBatch(c, nil); err == nil || !isCorrupt(err) {
			t.Errorf("%s: DecodeBatch err = %v, want ErrCorrupt", name, err)
		}
	}
	// Count answers from the header alone (O(1)), so only header
	// corruption is visible to it.
	if _, err := Count(cases["bad version"]); err == nil || !isCorrupt(err) {
		t.Errorf("Count on bad version: got %v, want ErrCorrupt", err)
	}
	// Iterator over a corrupt batch must surface the error, not panic.
	it := NewSliceIterator[kvTestRow](kvTestCodec, []Chunk{cases["bad kind"]})
	if _, err := it.Next(); err == nil || !isCorrupt(err) {
		t.Fatalf("iterator over corrupt batch: got %v, want ErrCorrupt", err)
	}
}

func isCorrupt(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrCorrupt {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// FuzzBatchRoundTrip drives arbitrary row content through the batch
// writer and back through both decode paths (columnar and the batch→row
// adapter), and feeds arbitrary bytes to DecodeBatch: round-trips must be
// exact and corruption must error, never panic.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(-5), []byte("payload"), false)
	f.Add(uint64(0), int64(0), []byte{}, true)
	f.Add(^uint64(0), int64(math.MinInt64), bytes.Repeat([]byte{0x80}, 32), false)
	f.Fuzz(func(t *testing.T, k uint64, v int64, payload []byte, corrupt bool) {
		rows := []kvTestRow{
			{First: k, Second: Pair[int64, []byte]{First: v, Second: payload}},
			{First: k ^ 0xdead, Second: Pair[int64, []byte]{First: -v, Second: nil}},
		}
		chunks := encodeBatch(t, rows, DefaultSize)
		if len(chunks) != 1 {
			t.Fatalf("expected one batch, got %d", len(chunks))
		}
		c := chunks[0]
		if corrupt && len(payload) > 0 {
			// Arbitrary single-byte corruption anywhere in the chunk:
			// decoding may still succeed (payload bytes are opaque) but
			// must never panic, and row re-framing must stay in bounds.
			pos := int(k % uint64(len(c)))
			c = append([]byte(nil), c...)
			c[pos] ^= payload[0]
			bt, err := DecodeBatch(c, nil)
			if err != nil {
				return
			}
			br := NewBatchReader(bt)
			for {
				if _, err := br.Next(); err != nil {
					break
				}
			}
			return
		}
		got, err := NewSliceIterator[kvTestRow](kvTestCodec, []Chunk{c}).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rows) {
			t.Fatalf("got %d rows, want %d", len(got), len(rows))
		}
		for i := range rows {
			if got[i].First != rows[i].First || got[i].Second.First != rows[i].Second.First ||
				!bytes.Equal(got[i].Second.Second, rows[i].Second.Second) {
				t.Fatalf("row %d mismatch", i)
			}
		}
		// Adapter path: re-framed records must equal the row encodings.
		recs, err := Records(c)
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range recs {
			if want := kvTestCodec.Encode(nil, rows[i]); !bytes.Equal(rec, want) {
				t.Fatalf("row %d adapter mismatch", i)
			}
		}
	})
}

// TestBatchBuilderPooled pins the pooled-builder contract: steady-state
// encode cycles reuse column buffers, so per-batch allocations stay at
// the one Encode output allocation (plus the iterator's column vectors on
// decode).
func TestBatchBuilderPooled(t *testing.T) {
	kinds := KindsOf[kvTestRow](kvTestCodec)
	b := GetBatchBuilder(7, kinds)
	defer PutBatchBuilder(b)
	rows := testRows(128)
	// Warm the column buffers once.
	for _, r := range rows {
		kvTestCodec.EncodeColumn(b, 0, r)
		b.EndRow()
	}
	b.Encode()
	b.Clear()
	allocs := testing.AllocsPerRun(20, func() {
		for _, r := range rows {
			kvTestCodec.EncodeColumn(b, 0, r)
			b.EndRow()
		}
		b.Encode()
		b.Clear()
	})
	// One allocation for the encoded chunk; a small slack for size-class
	// growth under varying row content.
	if allocs > 2 {
		t.Fatalf("pooled builder allocates %.1f per batch, want <= 2", allocs)
	}
}

// BenchmarkBatchEncode is the allocs/op guard for the batch encode path:
// the regression it pins is "one allocation per batch", the property the
// shuffle scatter path depends on.
func BenchmarkBatchEncode(b *testing.B) {
	rows := testRows(1024)
	bb := GetBatchBuilder(1, KindsOf[kvTestRow](kvTestCodec))
	defer PutBatchBuilder(bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			kvTestCodec.EncodeColumn(bb, 0, r)
			bb.EndRow()
		}
		bb.Encode()
		bb.Clear()
	}
}

// BenchmarkBatchDecodeColumnar measures the vectorized decode path
// against BenchmarkReaderNext-style row decoding.
func BenchmarkBatchDecodeColumnar(b *testing.B) {
	rows := testRows(1024)
	c := encodeBatch(b, rows, DefaultSize)[0]
	var bt Batch
	var out []kvTestRow
	b.ReportAllocs()
	b.SetBytes(int64(len(c)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := DecodeBatch(c, &bt)
		if err != nil {
			b.Fatal(err)
		}
		out = out[:0]
		out, _, err = kvTestCodec.DecodeColumn(p, 0, out)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = out
}

// BenchmarkReaderReset is the allocs/op guard for Reader reuse: resetting
// a Reader across chunks must not allocate.
func BenchmarkReaderReset(b *testing.B) {
	var chunks []Chunk
	w := NewWriter(4<<10, func(c Chunk) error { chunks = append(chunks, c); return nil })
	enc := Uint64Codec{}
	var buf []byte
	for i := 0; i < 4096; i++ {
		buf = enc.Encode(buf[:0], uint64(i)*2654435761)
		if err := w.Append(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	r := new(Reader)
	for i := 0; i < b.N; i++ {
		total := 0
		for _, c := range chunks {
			r.Reset(c)
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				total += len(rec)
			}
		}
		if total == 0 {
			b.Fatal("empty scan")
		}
	}
}

func TestCountOffsetArithmetic(t *testing.T) {
	var chunks []Chunk
	w := NewWriter(1<<10, func(c Chunk) error { chunks = append(chunks, c); return nil })
	for i := 0; i < 300; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, i%40)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range chunks {
		n, err := Count(c)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 300 {
		t.Fatalf("Count total %d, want 300", total)
	}
	// A length prefix pointing past the chunk is corrupt, not a crash.
	bad := Chunk(binary.AppendUvarint(nil, 1<<30))
	if _, err := Count(bad); !isCorrupt(err) {
		t.Fatalf("Count on truncated frame: got %v, want ErrCorrupt", err)
	}
}
