// Package chunk implements Hurricane's fixed-size data chunks and the
// record framing used inside them.
//
// A chunk is the basic indivisible unit of data exchanged between workers
// and storage nodes (the paper uses 4 MB chunks). Workers serialize their
// application records into a chunk before inserting it into a bag, and
// deserialize records after removing a chunk. All serializers guarantee
// that records never cross chunk boundaries, so any chunk can be processed
// independently of all others — the property that makes fine-grained task
// cloning possible.
//
// Wire format inside a chunk: a sequence of records, each encoded as a
// uvarint length prefix followed by that many payload bytes.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultSize is the chunk size used by the paper's implementation (4 MB).
const DefaultSize = 4 << 20

// ErrRecordTooLarge is returned when a single record cannot fit into an
// empty chunk of the configured size.
var ErrRecordTooLarge = errors.New("chunk: record larger than chunk size")

// ErrCorrupt is returned when a chunk's record framing is malformed.
var ErrCorrupt = errors.New("chunk: corrupt record framing")

// A Chunk is an immutable block of framed records.
type Chunk []byte

// Writer accumulates records into chunks of at most Size bytes and emits
// each chunk through the Emit callback once it is full. Records never
// straddle two chunks.
type Writer struct {
	// Size is the maximum chunk size in bytes.
	Size int
	// Emit is invoked with each completed chunk. The callback owns the
	// slice; the writer never reuses emitted memory.
	Emit func(Chunk) error

	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer producing chunks of at most size bytes.
// If size <= 0, DefaultSize is used.
func NewWriter(size int, emit func(Chunk) error) *Writer {
	if size <= 0 {
		size = DefaultSize
	}
	return &Writer{Size: size, Emit: emit}
}

// Append adds one record to the current chunk, flushing first if the record
// would not fit. It returns ErrRecordTooLarge if the framed record exceeds
// the chunk size outright.
func (w *Writer) Append(record []byte) error {
	n := binary.PutUvarint(w.tmp[:], uint64(len(record)))
	framed := n + len(record)
	if framed > w.Size {
		return fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, framed, w.Size)
	}
	if len(w.buf)+framed > w.Size {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if w.buf == nil {
		w.buf = make([]byte, 0, w.Size)
	}
	w.buf = append(w.buf, w.tmp[:n]...)
	w.buf = append(w.buf, record...)
	return nil
}

// Flush emits the current partial chunk, if any.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	c := Chunk(w.buf)
	w.buf = nil
	if w.Emit == nil {
		return nil
	}
	return w.Emit(c)
}

// Len reports the number of buffered (not yet emitted) bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reader iterates over the records framed inside a chunk.
type Reader struct {
	data Chunk
	off  int
}

// NewReader returns a Reader over c.
func NewReader(c Chunk) *Reader { return &Reader{data: c} }

// Reset re-points the reader at c, retaining the allocation so one Reader
// can serve a whole scan instead of being re-allocated per chunk.
func (r *Reader) Reset(c Chunk) { r.data, r.off = c, 0 }

// Next returns the next record, or io.EOF when the chunk is exhausted.
// The returned slice aliases the chunk; callers must not modify it.
// Pointing a row Reader at a columnar batch chunk returns ErrCorrupt —
// batch-capable consumers must dispatch on IsBatch first.
func (r *Reader) Next() ([]byte, error) {
	if r.off == 0 && IsBatch(r.data) {
		return nil, fmt.Errorf("%w: batch chunk read through row reader", ErrCorrupt)
	}
	if r.off >= len(r.data) {
		return nil, io.EOF
	}
	size, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return nil, ErrCorrupt
	}
	start := r.off + n
	end := start + int(size)
	if end > len(r.data) || end < start {
		return nil, ErrCorrupt
	}
	r.off = end
	return r.data[start:end], nil
}

// Remaining reports whether at least one more record is available.
func (r *Reader) Remaining() bool { return r.off < len(r.data) }

// Count returns the number of records framed in c, or an error if the
// framing is corrupt. Batch chunks answer from the header in O(1); row
// chunks are counted by skipping payloads with offset arithmetic, never
// materializing a record.
func Count(c Chunk) (int, error) {
	if IsBatch(c) {
		return batchRows(c)
	}
	n, off := 0, 0
	for off < len(c) {
		size, k := binary.Uvarint(c[off:])
		if k <= 0 {
			return n, ErrCorrupt
		}
		end := off + k + int(size)
		if int(size) < 0 || end < off || end > len(c) {
			return n, ErrCorrupt
		}
		off = end
		n++
	}
	return n, nil
}

// Records returns all records framed in c. Batch chunks are re-framed
// through the generic batch→row adapter; those records are copies (the
// adapter reuses its buffer), while row-chunk records alias c.
func Records(c Chunk) ([][]byte, error) {
	if IsBatch(c) {
		bt, err := DecodeBatch(c, nil)
		if err != nil {
			return nil, err
		}
		br := NewBatchReader(bt)
		out := make([][]byte, 0, bt.Rows)
		for {
			rec, err := br.Next()
			if err != nil {
				if err == io.EOF {
					return out, nil
				}
				return nil, err
			}
			out = append(out, append([]byte(nil), rec...))
		}
	}
	r := NewReader(c)
	var out [][]byte
	for {
		rec, err := r.Next()
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, rec)
	}
}
