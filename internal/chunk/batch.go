// Columnar batch layout: the vectorized alternative to row framing.
//
// A batch chunk stores one section per column instead of one frame per
// record. The header carries a schema tag and the row count, then each
// column is a length-prefixed vector: varint columns hold back-to-back
// uvarints, fixed columns hold 8-byte little-endian values, and blob
// columns come in (lengths, bytes) pairs. Because every row codec in this
// package encodes a value as the concatenation of its fields' encodings,
// a batch is generically convertible back to row records (BatchReader)
// without knowing the schema — that conversion is the universal row↔batch
// adapter at boundaries that are not batch-capable yet.
//
// Batch chunks are self-identifying: they open with a magic prefix that
// no valid row chunk can produce (an empty record followed by an
// overlong uvarint), so a row Reader pointed at a batch fails with
// ErrCorrupt instead of silently misparsing, and batch-aware consumers
// dispatch per chunk — mixing row and batch chunks in one bag is legal.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// batchMagic opens every batch chunk. The leading 0x00 reads as an empty
// record and the ten 0x80 continuation bytes overflow a uvarint, so a row
// Reader deterministically returns ErrCorrupt — no valid row chunk can
// begin with this sequence.
var batchMagic = [11]byte{0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}

// batchVersion is the current batch header version.
const batchVersion = 1

const (
	maxBatchCols = 256
	maxBatchRows = 1 << 28
)

// ErrNotColumnar is returned when a batch operation is attempted through
// a codec whose components do not all support the column layout.
var ErrNotColumnar = errors.New("chunk: codec is not columnar")

// ColKind identifies the physical layout of one batch column.
type ColKind byte

const (
	// ColVarint holds back-to-back uvarints (zig-zag encoded for signed
	// values), one per row.
	ColVarint ColKind = 1
	// ColFixed8 holds 8-byte little-endian values, one per row.
	ColFixed8 ColKind = 2
	// ColLen holds back-to-back uvarint lengths for the ColBytes column
	// that must immediately follow it.
	ColLen ColKind = 3
	// ColBytes holds the concatenated payloads sliced by the preceding
	// ColLen column.
	ColBytes ColKind = 4
)

func (k ColKind) valid() bool { return k >= ColVarint && k <= ColBytes }

// IsBatch reports whether c is a batch chunk. Row and batch chunks are
// mutually exclusive, so this is the dispatch point for every consumer
// that understands both formats.
func IsBatch(c Chunk) bool {
	return len(c) > len(batchMagic) && string(c[:len(batchMagic)]) == string(batchMagic[:])
}

// A Col is one decoded column of a batch. Data aliases the chunk.
type Col struct {
	Kind ColKind
	Data []byte
}

// A Batch is the decoded view of a batch chunk. Column data aliases the
// chunk, so a Batch is only valid while the chunk is.
type Batch struct {
	Tag  uint64
	Rows int
	Cols []Col
}

// DecodeBatch parses the batch chunk c. If into is non-nil its storage is
// reused. Malformed headers and out-of-bounds column extents return
// ErrCorrupt, never panic.
func DecodeBatch(c Chunk, into *Batch) (*Batch, error) {
	if !IsBatch(c) {
		return nil, fmt.Errorf("%w: missing batch magic", ErrCorrupt)
	}
	off := len(batchMagic)
	if c[off] != batchVersion {
		return nil, fmt.Errorf("%w: unknown batch version %d", ErrCorrupt, c[off])
	}
	off++
	tag, n := binary.Uvarint(c[off:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad batch tag", ErrCorrupt)
	}
	off += n
	rows, n := binary.Uvarint(c[off:])
	if n <= 0 || rows > maxBatchRows {
		return nil, fmt.Errorf("%w: bad batch row count", ErrCorrupt)
	}
	off += n
	ncols, n := binary.Uvarint(c[off:])
	if n <= 0 || ncols > maxBatchCols {
		return nil, fmt.Errorf("%w: bad batch column count", ErrCorrupt)
	}
	off += n
	if ncols == 0 && rows != 0 {
		return nil, fmt.Errorf("%w: rows without columns", ErrCorrupt)
	}
	if into == nil {
		into = new(Batch)
	}
	into.Tag, into.Rows, into.Cols = tag, int(rows), into.Cols[:0]
	pendLen := false
	for i := uint64(0); i < ncols; i++ {
		if off >= len(c) {
			return nil, fmt.Errorf("%w: truncated column descriptor", ErrCorrupt)
		}
		kind := ColKind(c[off])
		off++
		if !kind.valid() {
			return nil, fmt.Errorf("%w: unknown column kind %d", ErrCorrupt, kind)
		}
		size, n := binary.Uvarint(c[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad column length", ErrCorrupt)
		}
		off += n
		end := off + int(size)
		if int(size) < 0 || end < off || end > len(c) {
			return nil, fmt.Errorf("%w: column extends past chunk", ErrCorrupt)
		}
		switch {
		case pendLen && kind != ColBytes:
			return nil, fmt.Errorf("%w: length column without bytes column", ErrCorrupt)
		case !pendLen && kind == ColBytes:
			return nil, fmt.Errorf("%w: bytes column without length column", ErrCorrupt)
		case kind == ColFixed8 && size != rows*8:
			return nil, fmt.Errorf("%w: fixed column size %d for %d rows", ErrCorrupt, size, rows)
		}
		pendLen = kind == ColLen
		into.Cols = append(into.Cols, Col{Kind: kind, Data: c[off:end]})
		off = end
	}
	if pendLen {
		return nil, fmt.Errorf("%w: trailing length column", ErrCorrupt)
	}
	if off != len(c) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last column", ErrCorrupt, len(c)-off)
	}
	return into, nil
}

// batchRows reads only the row count from a batch chunk's header, without
// touching column payloads — O(header) regardless of batch size.
func batchRows(c Chunk) (int, error) {
	off := len(batchMagic)
	if c[off] != batchVersion {
		return 0, fmt.Errorf("%w: unknown batch version %d", ErrCorrupt, c[off])
	}
	off++
	_, n := binary.Uvarint(c[off:]) // tag
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad batch tag", ErrCorrupt)
	}
	off += n
	rows, n := binary.Uvarint(c[off:])
	if n <= 0 || rows > maxBatchRows {
		return 0, fmt.Errorf("%w: bad batch row count", ErrCorrupt)
	}
	return int(rows), nil
}

// ---- batch building ----

// BatchBuilder accumulates column vectors for one batch. Values are
// appended field-by-field through a ColumnCodec's EncodeColumn, rows are
// delimited with EndRow, and Encode serializes the whole batch in a
// single allocation. Builders are reusable (Clear) and poolable
// (GetBatchBuilder/PutBatchBuilder).
type BatchBuilder struct {
	tag   uint64
	kinds []ColKind
	cols  [][]byte
	rows  int
	bytes int
}

// NewBatchBuilder returns a builder for batches with the given schema tag
// and column kinds.
func NewBatchBuilder(tag uint64, kinds []ColKind) *BatchBuilder {
	b := new(BatchBuilder)
	b.Reset(tag, kinds)
	return b
}

// Reset re-targets the builder at a new schema, keeping column capacity.
func (b *BatchBuilder) Reset(tag uint64, kinds []ColKind) {
	b.tag = tag
	b.kinds = append(b.kinds[:0], kinds...)
	for len(b.cols) < len(b.kinds) {
		b.cols = append(b.cols, nil)
	}
	b.cols = b.cols[:len(b.kinds)]
	b.Clear()
}

// Clear drops buffered rows, keeping the schema and column capacity.
func (b *BatchBuilder) Clear() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.rows, b.bytes = 0, 0
}

// Rows reports the number of completed rows.
func (b *BatchBuilder) Rows() int { return b.rows }

// Size reports the encoded size estimate: column payload bytes plus the
// per-batch header overhead. Writers flush when it reaches the chunk size.
func (b *BatchBuilder) Size() int {
	return b.bytes + len(batchMagic) + 1 + 3*binary.MaxVarintLen64 + len(b.kinds)*(1+binary.MaxVarintLen64)
}

// EndRow marks the current row complete. Every column must have received
// exactly one value since the previous EndRow.
func (b *BatchBuilder) EndRow() { b.rows++ }

// EndRows delimits n rows at once — the bulk-encode counterpart of
// EndRow for column-major fills (see BulkColumnCodec).
func (b *BatchBuilder) EndRows(n int) { b.rows += n }

// AppendUvarint appends one uvarint value to a ColVarint column.
func (b *BatchBuilder) AppendUvarint(col int, v uint64) {
	n := len(b.cols[col])
	b.cols[col] = binary.AppendUvarint(b.cols[col], v)
	b.bytes += len(b.cols[col]) - n
}

// AppendVarint appends one zig-zag varint value to a ColVarint column.
func (b *BatchBuilder) AppendVarint(col int, v int64) {
	n := len(b.cols[col])
	b.cols[col] = binary.AppendVarint(b.cols[col], v)
	b.bytes += len(b.cols[col]) - n
}

// AppendFixed8 appends one 8-byte little-endian value to a ColFixed8 column.
func (b *BatchBuilder) AppendFixed8(col int, v uint64) {
	b.cols[col] = binary.LittleEndian.AppendUint64(b.cols[col], v)
	b.bytes += 8
}

// AppendBlob appends one variable-length value to a (ColLen, ColBytes)
// column pair rooted at col.
func (b *BatchBuilder) AppendBlob(col int, p []byte) {
	n := len(b.cols[col])
	b.cols[col] = binary.AppendUvarint(b.cols[col], uint64(len(p)))
	b.bytes += len(b.cols[col]) - n
	b.cols[col+1] = append(b.cols[col+1], p...)
	b.bytes += len(p)
}

// AppendBlobString is AppendBlob for strings, avoiding a []byte conversion.
func (b *BatchBuilder) AppendBlobString(col int, s string) {
	n := len(b.cols[col])
	b.cols[col] = binary.AppendUvarint(b.cols[col], uint64(len(s)))
	b.bytes += len(b.cols[col]) - n
	b.cols[col+1] = append(b.cols[col+1], s...)
	b.bytes += len(s)
}

// Encode serializes the buffered rows as a batch chunk. The returned
// chunk is freshly allocated; the builder can be cleared and reused.
func (b *BatchBuilder) Encode() Chunk {
	out := make([]byte, 0, b.Size())
	out = append(out, batchMagic[:]...)
	out = append(out, batchVersion)
	out = binary.AppendUvarint(out, b.tag)
	out = binary.AppendUvarint(out, uint64(b.rows))
	out = binary.AppendUvarint(out, uint64(len(b.kinds)))
	for i, k := range b.kinds {
		out = append(out, byte(k))
		out = binary.AppendUvarint(out, uint64(len(b.cols[i])))
		out = append(out, b.cols[i]...)
	}
	return Chunk(out)
}

var batchBuilderPool = sync.Pool{New: func() any { return new(BatchBuilder) }}

// GetBatchBuilder returns a pooled builder reset to the given schema, so
// per-partition scatter paths do not allocate a fresh builder per chunk.
func GetBatchBuilder(tag uint64, kinds []ColKind) *BatchBuilder {
	b := batchBuilderPool.Get().(*BatchBuilder)
	b.Reset(tag, kinds)
	return b
}

// PutBatchBuilder returns a builder to the pool.
func PutBatchBuilder(b *BatchBuilder) { batchBuilderPool.Put(b) }

// ---- columnar codecs ----

// A ColumnCodec lays values out as column vectors inside batch chunks, in
// addition to the row format. Composite codecs are columnar only when all
// their components are, so Columnar must be consulted before using the
// batch paths — ColumnarOf does both checks.
type ColumnCodec[T any] interface {
	Codec[T]
	// Columnar reports whether this codec instance truly supports the
	// column layout.
	Columnar() bool
	// AppendColKinds appends the kinds of the codec's columns to dst.
	AppendColKinds(dst []ColKind) []ColKind
	// EncodeColumn appends one value's fields to the builder's columns
	// starting at column col and returns the next free column index. The
	// caller delimits rows with EndRow.
	EncodeColumn(b *BatchBuilder, col int, v T) int
	// DecodeColumn decodes every row of the batch starting at column col,
	// appending to out. It returns the grown slice and the next column
	// index. Decoding does one allocation per column per batch, not per
	// record.
	DecodeColumn(bt *Batch, col int, out []T) ([]T, int, error)
}

// columnarResolver lets a composite codec hand ColumnarOf a view with its
// sub-codecs already resolved, so the per-record EncodeColumn/DecodeColumn
// calls skip dynamic interface conversion (assertE2I2/getitab show up in
// profiles when resolution happens per call).
type columnarResolver[T any] interface {
	resolveColumnar() (ColumnCodec[T], bool)
}

// ColumnarOf returns the columnar view of codec if it has one. The view may
// be a resolved wrapper rather than the codec itself: callers should resolve
// once per stream, not per record.
func ColumnarOf[T any](c Codec[T]) (ColumnCodec[T], bool) {
	if r, ok := c.(columnarResolver[T]); ok {
		return r.resolveColumnar()
	}
	return columnarView(c)
}

// columnarView is the plain (non-resolving) columnar check. Composite
// codecs use it internally so their direct per-record methods stay
// allocation-free; resolveColumnar allocates a wrapper, which is only
// acceptable once per stream.
func columnarView[T any](c Codec[T]) (ColumnCodec[T], bool) {
	cc, ok := c.(ColumnCodec[T])
	if ok && cc.Columnar() {
		return cc, true
	}
	return nil, false
}

// BulkColumnCodec is an optional ColumnCodec extension for scatter
// loops. EncodeRows appends the rows vs[idx[0]], vs[idx[1]], ... (all of
// vs in order when idx is nil) starting at column col and returns the
// next free column. Implementations fill column-major — a builder's
// columns are independent buffers and only the final row count matters —
// so a scatter pays one virtual call per leaf per batch instead of one
// per record, and the caller accounts rows once with EndRows. BulkOK
// reports whether this instance really supports the path (composite
// codecs lose it when a component lacks it); check it before use. Bulk
// views carry per-stream scratch: resolve one per producer (ColumnarOf +
// BulkOf) and never share it across concurrent workers — unlike
// EncodeColumn/DecodeColumn, EncodeRows is not stateless.
type BulkColumnCodec[T any] interface {
	BulkOK() bool
	EncodeRows(b *BatchBuilder, col int, vs []T, idx []int32) int
}

// BulkOf returns codec's bulk-encode view, if it has one. Resolve once
// per stream, like ColumnarOf.
func BulkOf[T any](c ColumnCodec[T]) (BulkColumnCodec[T], bool) {
	if bc, ok := c.(BulkColumnCodec[T]); ok && bc.BulkOK() {
		return bc, true
	}
	return nil, false
}

// ScratchColumnCodec is an optional ColumnCodec extension for callers
// that own their resolved view exclusively (one decode stream, one
// goroutine): DecodeColumnScratch is DecodeColumn with the intermediate
// column vectors drawn from per-stream scratch instead of allocated per
// batch. Shared wrappers — e.g. the query planner's compiled codecs,
// which fan one resolved view out to concurrent workers — must keep
// calling the stateless DecodeColumn.
type ScratchColumnCodec[T any] interface {
	DecodeColumnScratch(bt *Batch, col int, out []T) ([]T, int, error)
}

// KindsOf returns codec's column kinds.
func KindsOf[T any](c ColumnCodec[T]) []ColKind { return c.AppendColKinds(nil) }

func (Uint64Codec) Columnar() bool { return true }

func (Uint64Codec) AppendColKinds(dst []ColKind) []ColKind { return append(dst, ColVarint) }

func (Uint64Codec) EncodeColumn(b *BatchBuilder, col int, v uint64) int {
	b.AppendUvarint(col, v)
	return col + 1
}

func (Uint64Codec) DecodeColumn(bt *Batch, col int, out []uint64) ([]uint64, int, error) {
	data := bt.Cols[col].Data
	out = growCap(out, bt.Rows)
	for i, off := 0, 0; i < bt.Rows; i++ {
		// Single-byte values dominate varint columns in practice (group
		// IDs, counts, enum-ish keys). Scan them eight at a time: one
		// 64-bit load whose high bits are all clear means eight complete
		// varints, decoded with shifts instead of eight bounds-checked
		// byte loads.
		for off+8 <= len(data) && i+8 <= bt.Rows {
			w := binary.LittleEndian.Uint64(data[off:])
			if w&0x8080808080808080 != 0 {
				break
			}
			out = append(out,
				w&0xff, w>>8&0xff, w>>16&0xff, w>>24&0xff,
				w>>32&0xff, w>>40&0xff, w>>48&0xff, w>>56)
			off += 8
			i += 8
		}
		if i >= bt.Rows {
			break
		}
		if off < len(data) && data[off] < 0x80 {
			out = append(out, uint64(data[off]))
			off++
			continue
		}
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return out, col, fmt.Errorf("%w: varint column underflow at row %d", ErrCorrupt, i)
		}
		off += n
		out = append(out, v)
	}
	return out, col + 1, nil
}

func (Int64Codec) Columnar() bool { return true }

func (Int64Codec) AppendColKinds(dst []ColKind) []ColKind { return append(dst, ColVarint) }

func (Int64Codec) EncodeColumn(b *BatchBuilder, col int, v int64) int {
	b.AppendVarint(col, v)
	return col + 1
}

func (Int64Codec) DecodeColumn(bt *Batch, col int, out []int64) ([]int64, int, error) {
	data := bt.Cols[col].Data
	out = growCap(out, bt.Rows)
	for i, off := 0, 0; i < bt.Rows; i++ {
		v, n := binary.Varint(data[off:])
		if n <= 0 {
			return out, col, fmt.Errorf("%w: varint column underflow at row %d", ErrCorrupt, i)
		}
		off += n
		out = append(out, v)
	}
	return out, col + 1, nil
}

func (Uint64FixedCodec) Columnar() bool { return true }

func (Uint64FixedCodec) AppendColKinds(dst []ColKind) []ColKind { return append(dst, ColFixed8) }

func (Uint64FixedCodec) EncodeColumn(b *BatchBuilder, col int, v uint64) int {
	b.AppendFixed8(col, v)
	return col + 1
}

func (Uint64FixedCodec) DecodeColumn(bt *Batch, col int, out []uint64) ([]uint64, int, error) {
	data := bt.Cols[col].Data
	if len(data) != bt.Rows*8 {
		return out, col, fmt.Errorf("%w: fixed column size mismatch", ErrCorrupt)
	}
	out = growCap(out, bt.Rows)
	for i := 0; i < bt.Rows; i++ {
		out = append(out, binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, col + 1, nil
}

func (Float64Codec) Columnar() bool { return true }

func (Float64Codec) AppendColKinds(dst []ColKind) []ColKind { return append(dst, ColFixed8) }

func (Float64Codec) EncodeColumn(b *BatchBuilder, col int, v float64) int {
	b.AppendFixed8(col, math.Float64bits(v))
	return col + 1
}

func (Float64Codec) DecodeColumn(bt *Batch, col int, out []float64) ([]float64, int, error) {
	data := bt.Cols[col].Data
	if len(data) != bt.Rows*8 {
		return out, col, fmt.Errorf("%w: fixed column size mismatch", ErrCorrupt)
	}
	out = growCap(out, bt.Rows)
	for i := 0; i < bt.Rows; i++ {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:])))
	}
	return out, col + 1, nil
}

// blobSpans parses a (ColLen, ColBytes) pair into [start,end) offsets of
// each row's payload inside the bytes column.
func blobSpans(bt *Batch, col int, spans []int) ([]int, error) {
	lens, bytes := bt.Cols[col].Data, bt.Cols[col+1].Data
	spans = spans[:0]
	off, pos := 0, 0
	for i := 0; i < bt.Rows; i++ {
		size, n := binary.Uvarint(lens[off:])
		if n <= 0 {
			return spans, fmt.Errorf("%w: length column underflow at row %d", ErrCorrupt, i)
		}
		off += n
		end := pos + int(size)
		if int(size) < 0 || end < pos || end > len(bytes) {
			return spans, fmt.Errorf("%w: blob extends past bytes column at row %d", ErrCorrupt, i)
		}
		spans = append(spans, pos, end)
		pos = end
	}
	return spans, nil
}

func (StringCodec) Columnar() bool { return true }

func (StringCodec) AppendColKinds(dst []ColKind) []ColKind {
	return append(dst, ColLen, ColBytes)
}

func (StringCodec) EncodeColumn(b *BatchBuilder, col int, v string) int {
	b.AppendBlobString(col, v)
	return col + 2
}

func (StringCodec) DecodeColumn(bt *Batch, col int, out []string) ([]string, int, error) {
	spans, err := blobSpans(bt, col, nil)
	if err != nil {
		return out, col, err
	}
	// One string conversion for the whole column; rows are substring
	// slices of it.
	all := string(bt.Cols[col+1].Data)
	out = growCap(out, bt.Rows)
	for i := 0; i < len(spans); i += 2 {
		out = append(out, all[spans[i]:spans[i+1]])
	}
	return out, col + 2, nil
}

func (BytesCodec) Columnar() bool { return true }

func (BytesCodec) AppendColKinds(dst []ColKind) []ColKind {
	return append(dst, ColLen, ColBytes)
}

func (BytesCodec) EncodeColumn(b *BatchBuilder, col int, v []byte) int {
	b.AppendBlob(col, v)
	return col + 2
}

// DecodeColumn's byte slices alias the batch's chunk, mirroring the row
// Decode contract.
func (BytesCodec) DecodeColumn(bt *Batch, col int, out [][]byte) ([][]byte, int, error) {
	spans, err := blobSpans(bt, col, nil)
	if err != nil {
		return out, col, err
	}
	data := bt.Cols[col+1].Data
	out = growCap(out, bt.Rows)
	for i := 0; i < len(spans); i += 2 {
		out = append(out, data[spans[i]:spans[i+1]:spans[i+1]])
	}
	return out, col + 2, nil
}

func (Uint64Codec) BulkOK() bool { return true }

func (Uint64Codec) EncodeRows(b *BatchBuilder, col int, vs []uint64, idx []int32) int {
	if idx == nil {
		for _, v := range vs {
			b.AppendUvarint(col, v)
		}
	} else {
		for _, i := range idx {
			b.AppendUvarint(col, vs[i])
		}
	}
	return col + 1
}

func (Int64Codec) BulkOK() bool { return true }

func (Int64Codec) EncodeRows(b *BatchBuilder, col int, vs []int64, idx []int32) int {
	if idx == nil {
		for _, v := range vs {
			b.AppendVarint(col, v)
		}
	} else {
		for _, i := range idx {
			b.AppendVarint(col, vs[i])
		}
	}
	return col + 1
}

func (Uint64FixedCodec) BulkOK() bool { return true }

func (Uint64FixedCodec) EncodeRows(b *BatchBuilder, col int, vs []uint64, idx []int32) int {
	if idx == nil {
		for _, v := range vs {
			b.AppendFixed8(col, v)
		}
	} else {
		for _, i := range idx {
			b.AppendFixed8(col, vs[i])
		}
	}
	return col + 1
}

func (Float64Codec) BulkOK() bool { return true }

func (Float64Codec) EncodeRows(b *BatchBuilder, col int, vs []float64, idx []int32) int {
	if idx == nil {
		for _, v := range vs {
			b.AppendFixed8(col, math.Float64bits(v))
		}
	} else {
		for _, i := range idx {
			b.AppendFixed8(col, math.Float64bits(vs[i]))
		}
	}
	return col + 1
}

func (c PairCodec[A, B]) Columnar() bool {
	_, okA := columnarView(c.A)
	_, okB := columnarView(c.B)
	return okA && okB
}

func (c PairCodec[A, B]) AppendColKinds(dst []ColKind) []ColKind {
	ca, okA := columnarView(c.A)
	cb, okB := columnarView(c.B)
	if !okA || !okB {
		return dst
	}
	return cb.AppendColKinds(ca.AppendColKinds(dst))
}

// resolveColumnar returns a view with both sub-codecs resolved up front;
// nested PairCodecs resolve recursively, so an arbitrarily deep tuple pays
// for interface resolution once per stream instead of once per record.
func (c PairCodec[A, B]) resolveColumnar() (ColumnCodec[Pair[A, B]], bool) {
	ca, okA := ColumnarOf(c.A)
	cb, okB := ColumnarOf(c.B)
	if !okA || !okB {
		return nil, false
	}
	r := resolvedPairCodec[A, B]{PairCodec: c, ca: ca, cb: cb}
	// Pre-resolve the bulk-encode views too: the pair is bulk-encodable
	// exactly when both halves are, and the scratch columns live on a
	// pointer so the by-value interface copies share them.
	if ba, ok := BulkOf(ca); ok {
		if bb, ok := BulkOf(cb); ok {
			r.ba, r.bb = ba, bb
		}
	}
	// The scratch backs the stream-owned entry points (EncodeRows,
	// DecodeColumnScratch); the plain ColumnCodec methods never touch it,
	// so a shared wrapper stays safe as long as sharers stick to those.
	r.sc = &pairScratch[A, B]{}
	return r, true
}

// resolvedPairCodec is PairCodec with the columnar sub-codec lookups hoisted
// out of the per-record path. It is what ColumnarOf hands back for pairs.
type resolvedPairCodec[A, B any] struct {
	PairCodec[A, B]
	ca ColumnCodec[A]
	cb ColumnCodec[B]
	ba BulkColumnCodec[A]
	bb BulkColumnCodec[B]
	sc *pairScratch[A, B]
}

// pairScratch is the reusable column-gather buffer behind a resolved
// pair's EncodeRows.
type pairScratch[A, B any] struct {
	as []A
	bs []B
}

func (c resolvedPairCodec[A, B]) BulkOK() bool { return c.ba != nil && c.bb != nil }

// EncodeRows splits the selected pairs into per-half column vectors once,
// then hands each half to its sub-codec's bulk loop — two virtual calls
// per leaf per batch, with the inner appends fully concrete.
func (c resolvedPairCodec[A, B]) EncodeRows(b *BatchBuilder, col int, vs []Pair[A, B], idx []int32) int {
	sc := c.sc
	sc.as = sc.as[:0]
	sc.bs = sc.bs[:0]
	if idx == nil {
		for i := range vs {
			v := &vs[i]
			sc.as = append(sc.as, v.First)
			sc.bs = append(sc.bs, v.Second)
		}
	} else {
		for _, i := range idx {
			v := &vs[i]
			sc.as = append(sc.as, v.First)
			sc.bs = append(sc.bs, v.Second)
		}
	}
	col = c.ba.EncodeRows(b, col, sc.as, nil)
	col = c.bb.EncodeRows(b, col, sc.bs, nil)
	return col
}

func (c resolvedPairCodec[A, B]) EncodeColumn(b *BatchBuilder, col int, v Pair[A, B]) int {
	return c.cb.EncodeColumn(b, c.ca.EncodeColumn(b, col, v.First), v.Second)
}

func (c resolvedPairCodec[A, B]) DecodeColumn(bt *Batch, col int, out []Pair[A, B]) ([]Pair[A, B], int, error) {
	return pairDecodeColumn(c.ca, c.cb, bt, col, out)
}

func (c resolvedPairCodec[A, B]) DecodeColumnScratch(bt *Batch, col int, out []Pair[A, B]) ([]Pair[A, B], int, error) {
	sc := c.sc
	as, col, err := c.ca.DecodeColumn(bt, col, sc.as[:0])
	if err != nil {
		sc.as = as[:0]
		return out, col, err
	}
	bs, col, err := c.cb.DecodeColumn(bt, col, sc.bs[:0])
	sc.as, sc.bs = as[:0], bs[:0]
	if err != nil {
		return out, col, err
	}
	if len(as) != len(bs) {
		return out, col, fmt.Errorf("%w: pair column row mismatch", ErrCorrupt)
	}
	out = growCap(out, len(as))
	for i := range as {
		out = append(out, Pair[A, B]{First: as[i], Second: bs[i]})
	}
	return out, col, nil
}

func (c PairCodec[A, B]) EncodeColumn(b *BatchBuilder, col int, v Pair[A, B]) int {
	ca, _ := columnarView(c.A)
	cb, _ := columnarView(c.B)
	return cb.EncodeColumn(b, ca.EncodeColumn(b, col, v.First), v.Second)
}

func (c PairCodec[A, B]) DecodeColumn(bt *Batch, col int, out []Pair[A, B]) ([]Pair[A, B], int, error) {
	ca, okA := columnarView(c.A)
	cb, okB := columnarView(c.B)
	if !okA || !okB {
		return out, col, ErrNotColumnar
	}
	return pairDecodeColumn(ca, cb, bt, col, out)
}

func pairDecodeColumn[A, B any](ca ColumnCodec[A], cb ColumnCodec[B], bt *Batch, col int, out []Pair[A, B]) ([]Pair[A, B], int, error) {
	// The half-column temporaries are allocated per call on purpose:
	// resolved wrappers are shared across concurrent workers by the query
	// planner's compiled codecs, so DecodeColumn must stay stateless.
	as, col, err := ca.DecodeColumn(bt, col, make([]A, 0, bt.Rows))
	if err != nil {
		return out, col, err
	}
	bs, col, err := cb.DecodeColumn(bt, col, make([]B, 0, bt.Rows))
	if err != nil {
		return out, col, err
	}
	if len(as) != len(bs) {
		return out, col, fmt.Errorf("%w: pair column row mismatch", ErrCorrupt)
	}
	out = growCap(out, len(as))
	for i := range as {
		out = append(out, Pair[A, B]{First: as[i], Second: bs[i]})
	}
	return out, col, nil
}

func (KVCodec) Columnar() bool { return true }

func (KVCodec) AppendColKinds(dst []ColKind) []ColKind {
	return append(dst, ColLen, ColBytes, ColLen, ColBytes)
}

func (KVCodec) EncodeColumn(b *BatchBuilder, col int, v KV) int {
	b.AppendBlobString(col, v.Key)
	b.AppendBlob(col+2, v.Value)
	return col + 4
}

func (KVCodec) DecodeColumn(bt *Batch, col int, out []KV) ([]KV, int, error) {
	keys, col, err := (StringCodec{}).DecodeColumn(bt, col, make([]string, 0, bt.Rows))
	if err != nil {
		return out, col, err
	}
	vals, col, err := (BytesCodec{}).DecodeColumn(bt, col, make([][]byte, 0, bt.Rows))
	if err != nil {
		return out, col, err
	}
	out = growCap(out, len(keys))
	for i := range keys {
		out = append(out, KV{Key: keys[i], Value: vals[i]})
	}
	return out, col, nil
}

func growCap[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	grown := make([]T, len(s), len(s)+n)
	copy(grown, s)
	return grown
}

// ---- batch writer ----

// BatchWriter serializes values of type T into batch chunks through a
// columnar codec, one column section per field, flushing when the
// builder's size estimate reaches Size.
type BatchWriter[T any] struct {
	Size  int
	Emit  func(Chunk) error
	codec ColumnCodec[T]
	b     *BatchBuilder
	tag   uint64
}

// NewBatchWriter returns a BatchWriter emitting batch chunks of roughly
// size bytes through emit, or ok=false when codec is not columnar — the
// caller falls back to the row TypedWriter.
func NewBatchWriter[T any](codec Codec[T], tag uint64, size int, emit func(Chunk) error) (*BatchWriter[T], bool) {
	cc, ok := ColumnarOf(codec)
	if !ok {
		return nil, false
	}
	if size <= 0 {
		size = DefaultSize
	}
	return &BatchWriter[T]{
		Size:  size,
		Emit:  emit,
		codec: cc,
		b:     GetBatchBuilder(tag, KindsOf(cc)),
		tag:   tag,
	}, true
}

// Write appends one value as a row of the current batch.
func (w *BatchWriter[T]) Write(v T) error {
	w.codec.EncodeColumn(w.b, 0, v)
	w.b.EndRow()
	if w.b.Size() >= w.Size {
		return w.Flush()
	}
	return nil
}

// Flush emits the buffered batch, if any.
func (w *BatchWriter[T]) Flush() error {
	if w.b.Rows() == 0 {
		return nil
	}
	c := w.b.Encode()
	w.b.Clear()
	if w.Emit == nil {
		return nil
	}
	return w.Emit(c)
}

// Close flushes and returns the builder to the pool. The writer must not
// be used afterwards.
func (w *BatchWriter[T]) Close() error {
	err := w.Flush()
	PutBatchBuilder(w.b)
	w.b = nil
	return err
}

// ---- generic batch → row adapter ----

// BatchReader re-frames a decoded batch as row-encoded records without
// knowing the schema: each record is the concatenation of the row's
// per-column encodings, which is exactly the row format every codec in
// this package produces. The returned record is valid until the next call
// to Next or Reset.
type BatchReader struct {
	bt      *Batch
	row     int
	offs    []int
	pendLen uint64
	buf     []byte
}

// NewBatchReader returns a BatchReader over bt.
func NewBatchReader(bt *Batch) *BatchReader {
	r := new(BatchReader)
	r.Reset(bt)
	return r
}

// Reset re-points the reader at bt, retaining allocations.
func (r *BatchReader) Reset(bt *Batch) {
	r.bt, r.row, r.pendLen = bt, 0, 0
	r.offs = r.offs[:0]
	for range bt.Cols {
		r.offs = append(r.offs, 0)
	}
}

// Next returns the next row as a row-encoded record, or io.EOF after the
// last row. The record aliases an internal buffer reused across calls.
func (r *BatchReader) Next() ([]byte, error) {
	if r.row >= r.bt.Rows {
		return nil, io.EOF
	}
	r.buf = r.buf[:0]
	for i, col := range r.bt.Cols {
		data, off := col.Data, r.offs[i]
		switch col.Kind {
		case ColVarint, ColLen:
			v, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: varint column underflow at row %d", ErrCorrupt, r.row)
			}
			r.buf = append(r.buf, data[off:off+n]...)
			r.offs[i] = off + n
			if col.Kind == ColLen {
				r.pendLen = v
			}
		case ColFixed8:
			if off+8 > len(data) {
				return nil, fmt.Errorf("%w: fixed column underflow at row %d", ErrCorrupt, r.row)
			}
			r.buf = append(r.buf, data[off:off+8]...)
			r.offs[i] = off + 8
		case ColBytes:
			end := off + int(r.pendLen)
			if int(r.pendLen) < 0 || end < off || end > len(data) {
				return nil, fmt.Errorf("%w: blob extends past bytes column at row %d", ErrCorrupt, r.row)
			}
			r.buf = append(r.buf, data[off:end]...)
			r.offs[i] = end
		}
	}
	r.row++
	return r.buf, nil
}
