package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format: each message is a uvarint total-length prefix followed by the
// message body. Bodies use uvarint/varint fields in a fixed order; chunk
// payloads are length-prefixed byte strings.

const maxMessageSize = 64 << 20 // 64 MB, generous for 4 MB chunks

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("transport: truncated uvarint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("transport: truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	size, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < size {
		return nil, fmt.Errorf("transport: truncated bytes field")
	}
	out := d.b[:size]
	d.b = d.b[size:]
	return out, nil
}

func (d *decoder) string() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// EncodeRequest serializes req, appending to buf.
func EncodeRequest(buf []byte, req *Request) []byte {
	buf = append(buf, byte(req.Op))
	buf = appendString(buf, req.Bag)
	buf = appendString(buf, req.Dst)
	buf = binary.AppendVarint(buf, req.Arg)
	buf = appendBytes(buf, req.Data)
	return buf
}

// DecodeRequest parses a request body.
func DecodeRequest(body []byte) (*Request, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("transport: empty request")
	}
	d := &decoder{b: body[1:]}
	req := &Request{Op: Op(body[0])}
	var err error
	if req.Bag, err = d.string(); err != nil {
		return nil, err
	}
	if req.Dst, err = d.string(); err != nil {
		return nil, err
	}
	if req.Arg, err = d.varint(); err != nil {
		return nil, err
	}
	data, err := d.bytes()
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		req.Data = append([]byte(nil), data...)
	}
	return req, nil
}

// EncodeResponse serializes resp, appending to buf.
func EncodeResponse(buf []byte, resp *Response) []byte {
	buf = binary.AppendUvarint(buf, uint64(resp.Status))
	buf = appendString(buf, resp.Err)
	buf = binary.AppendVarint(buf, resp.TotalChunks)
	buf = binary.AppendVarint(buf, resp.ReadChunks)
	buf = binary.AppendVarint(buf, resp.TotalBytes)
	buf = binary.AppendVarint(buf, resp.ReadBytes)
	if resp.Sealed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendBytes(buf, resp.Data)
	return buf
}

// DecodeResponse parses a response body.
func DecodeResponse(body []byte) (*Response, error) {
	d := &decoder{b: body}
	resp := &Response{}
	status, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	resp.Status = int(status)
	if resp.Err, err = d.string(); err != nil {
		return nil, err
	}
	if resp.TotalChunks, err = d.varint(); err != nil {
		return nil, err
	}
	if resp.ReadChunks, err = d.varint(); err != nil {
		return nil, err
	}
	if resp.TotalBytes, err = d.varint(); err != nil {
		return nil, err
	}
	if resp.ReadBytes, err = d.varint(); err != nil {
		return nil, err
	}
	if len(d.b) < 1 {
		return nil, fmt.Errorf("transport: truncated response")
	}
	resp.Sealed = d.b[0] == 1
	d.b = d.b[1:]
	data, err := d.bytes()
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		resp.Data = append([]byte(nil), data...)
	}
	return resp, nil
}

// writeMessage writes a length-prefixed message.
func writeMessage(w *bufio.Writer, body []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(body)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// readMessage reads a length-prefixed message.
func readMessage(r *bufio.Reader) ([]byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > maxMessageSize {
		return nil, fmt.Errorf("transport: message too large (%d bytes)", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
