package transport

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// opCount sizes the per-op metric handle arrays. Ops start at 1, so
// index 0 stays nil and acts as the "unknown op" no-op slot.
const opCount = int(OpDeletePrefix) + 1

// DefaultSlowOp is the slow-op threshold a Meter uses when constructed
// with slow == 0. Operations at or above it emit an EvStorageSlowOp
// trace event.
const DefaultSlowOp = 25 * time.Millisecond

// Meter records wire-path telemetry for one storage-protocol endpoint:
// per-op-type latency histograms and counters, bytes in/out, in-flight
// and connection gauges, and typed slow-op trace events. One meter is
// bound per endpoint role — "inproc" and "client" on the caller side,
// "server" on the TCP accept side, "node" inside storage.Node — so the
// same op shows up once per hop it crosses and asymmetries between hops
// localize the cost.
//
// Metric names share the hurricane_storage_op_* / hurricane_storage_*
// prefix with role (and, for storage nodes, node) labels:
//
//	hurricane_storage_op_total{role,op}         ops completed
//	hurricane_storage_op_errors_total{role,op}  ops failed (not empty/again)
//	hurricane_storage_op_ns{role,op}            latency histogram (ns)
//	hurricane_storage_bytes_in_total{role}      bytes received
//	hurricane_storage_bytes_out_total{role}     bytes sent
//	hurricane_storage_retries_total{role}       ErrAgain responses (caller will retry)
//	hurricane_storage_inflight{role}            ops currently executing
//	hurricane_storage_conns{role}               open TCP connections
//	hurricane_storage_dials_total{role}         TCP dials attempted
//	hurricane_storage_slow_ops_total{role}      ops at/above the slow-op threshold
//
// All handles are registered once at construction; the per-op record
// path is a few atomic adds. A nil *Meter is a no-op, so endpoints can
// be instrumented unconditionally and pay one nil check when telemetry
// is off.
type Meter struct {
	o       *obs.Observer
	subject string // node name when set, else role; slow-op event subject
	slow    time.Duration

	ops  [opCount]*obs.Counter
	errs [opCount]*obs.Counter
	lat  [opCount]*obs.Histogram

	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	retries  *obs.Counter
	inflight *obs.Gauge
	conns    *obs.Gauge
	dials    *obs.Counter
	slowOps  *obs.Counter
}

// NewMeter registers a meter's metric series on o under the given role
// (and node, when non-empty) labels. slow == 0 selects DefaultSlowOp;
// slow < 0 disables slow-op trace events. Returns nil (a no-op meter)
// when o is nil.
func NewMeter(o *obs.Observer, role, node string, slow time.Duration) *Meter {
	if o == nil {
		return nil
	}
	if slow == 0 {
		slow = DefaultSlowOp
	}
	base := []string{"role", role}
	subject := role
	if node != "" {
		base = append(base, "node", node)
		subject = node
	}
	m := &Meter{o: o, subject: subject, slow: slow}
	for op := Op(1); int(op) < opCount; op++ {
		lbl := make([]string, 0, len(base)+2)
		lbl = append(append(lbl, base...), "op", op.String())
		m.ops[op] = o.Counter("hurricane_storage_op_total", lbl...)
		m.errs[op] = o.Counter("hurricane_storage_op_errors_total", lbl...)
		m.lat[op] = o.Histogram("hurricane_storage_op_ns", lbl...)
	}
	m.bytesIn = o.Counter("hurricane_storage_bytes_in_total", base...)
	m.bytesOut = o.Counter("hurricane_storage_bytes_out_total", base...)
	m.retries = o.Counter("hurricane_storage_retries_total", base...)
	m.inflight = o.Gauge("hurricane_storage_inflight", base...)
	m.conns = o.Gauge("hurricane_storage_conns", base...)
	m.dials = o.Counter("hurricane_storage_dials_total", base...)
	m.slowOps = o.Counter("hurricane_storage_slow_ops_total", base...)
	return m
}

// Begin marks an op as in flight and returns its start time.
func (m *Meter) Begin() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.inflight.Add(1)
	return time.Now()
}

// End completes the op started at start: op/latency/bytes accounting,
// error vs retry classification, and the slow-op trace event. bytesIn
// and bytesOut are from this endpoint's perspective (a client sends the
// request out and reads the response in; a server the reverse). err is
// the op's semantic outcome — pass resp.Error() for a decoded response,
// or the transport error; ErrEmpty/ErrAgain count as success (ErrAgain
// additionally as a retry), everything else as an error.
func (m *Meter) End(op Op, bag string, start time.Time, bytesIn, bytesOut int, err error) {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
	m.bytesIn.Add(uint64(bytesIn))
	m.bytesOut.Add(uint64(bytesOut))
	if int(op) <= 0 || int(op) >= opCount {
		return
	}
	m.ops[op].Inc()
	elapsed := time.Since(start)
	m.lat[op].Observe(elapsed.Nanoseconds())
	switch {
	case err == nil || errors.Is(err, ErrEmpty):
	case errors.Is(err, ErrAgain):
		m.retries.Inc()
	default:
		m.errs[op].Inc()
	}
	if m.slow > 0 && elapsed >= m.slow {
		m.slowOps.Inc()
		m.o.Emit(obs.EvStorageSlowOp, "", m.subject,
			fmt.Sprintf("op=%s bag=%s took=%s", op, bag, elapsed.Round(time.Microsecond)))
	}
}

// Dial counts one TCP dial attempt.
func (m *Meter) Dial() {
	if m == nil {
		return
	}
	m.dials.Inc()
}

// ConnOpened / ConnClosed adjust the open-connection gauge.
func (m *Meter) ConnOpened() {
	if m == nil {
		return
	}
	m.conns.Add(1)
}

// ConnClosed is the counterpart of ConnOpened.
func (m *Meter) ConnClosed() {
	if m == nil {
		return
	}
	m.conns.Add(-1)
}

// respError extracts the semantic outcome of a call for End: the
// transport error when the call failed outright, else the response's
// status mapped to its sentinel error.
func respError(resp *Response, err error) error {
	if err != nil {
		return err
	}
	return resp.Error()
}

// frameBytes returns the on-wire size of a message body of n bytes:
// the body plus its uvarint length prefix.
func frameBytes(n int) int {
	size := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		size++
	}
	return n + size
}
