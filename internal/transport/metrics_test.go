package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestFrameBytes(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1},        // empty body, 1-byte length prefix
		{1, 2},
		{127, 128},    // largest 1-byte uvarint
		{128, 130},    // first 2-byte uvarint
		{16383, 16385},
		{16384, 16387},
	}
	for _, c := range cases {
		if got := frameBytes(c.n); got != c.want {
			t.Errorf("frameBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestMeterAccounting drives Begin/End directly with known outcomes and
// checks every series the meter owns: per-op counters, error vs retry
// classification, byte totals, histogram count, and that the in-flight
// gauge returns to zero.
func TestMeterAccounting(t *testing.T) {
	o := obs.New(0)
	m := NewMeter(o, "client", "", -1)

	end := func(op Op, bytesIn, bytesOut int, err error) {
		start := m.Begin()
		if got := m.inflight.Value(); got != 1 {
			t.Fatalf("inflight during op = %d, want 1", got)
		}
		m.End(op, "b", start, bytesIn, bytesOut, err)
	}
	end(OpInsert, 10, 20, nil)
	end(OpInsert, 1, 2, ErrAgain)   // retry, not an error
	end(OpInsert, 0, 3, ErrFailed)  // error
	end(OpRemove, 5, 0, ErrEmpty)   // empty counts as success
	end(Op(0), 7, 7, nil)           // unknown op: bytes only

	snap := o.Registry().Snapshot()
	wants := map[string]float64{
		`hurricane_storage_op_total{role="client",op="insert"}`:        3,
		`hurricane_storage_op_errors_total{role="client",op="insert"}`: 1,
		`hurricane_storage_op_total{role="client",op="remove"}`:        1,
		`hurricane_storage_op_errors_total{role="client",op="remove"}`: 0,
		`hurricane_storage_op_ns_count{role="client",op="insert"}`:     3,
		`hurricane_storage_retries_total{role="client"}`:               1,
		`hurricane_storage_bytes_in_total{role="client"}`:              10 + 1 + 0 + 5 + 7,
		`hurricane_storage_bytes_out_total{role="client"}`:             20 + 2 + 3 + 0 + 7,
		`hurricane_storage_inflight{role="client"}`:                    0,
	}
	for series, want := range wants {
		if got := snap[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// A nil meter is a no-op on every method.
	var nm *Meter
	nm.End(OpInsert, "b", nm.Begin(), 1, 1, ErrFailed)
	nm.Dial()
	nm.ConnOpened()
	nm.ConnClosed()
}

// TestMeterNodeLabel: a node-role meter carries the node label on every
// series and uses the node name as the slow-op event subject.
func TestMeterNodeLabel(t *testing.T) {
	o := obs.New(0)
	m := NewMeter(o, "node", "s7", -1)
	m.End(OpSeal, "b", m.Begin(), 0, 0, nil)
	snap := o.Registry().Snapshot()
	const want = `hurricane_storage_op_total{role="node",node="s7",op="seal"}`
	if got := snap[want]; got != 1 {
		t.Fatalf("%s = %v, want 1 (snapshot %v)", want, got, snap)
	}
}

// TestMeterSlowOp: an op at or over the threshold emits one typed
// EvStorageSlowOp trace event naming the op and bag; fast ops do not.
func TestMeterSlowOp(t *testing.T) {
	o := obs.New(0)
	m := NewMeter(o, "server", "s0", time.Microsecond)
	start := m.Begin()
	time.Sleep(2 * time.Millisecond)
	m.End(OpRemove, "shuf.p3", start, 0, 0, nil)

	events := o.Tracer().Events("", obs.EvStorageSlowOp)
	if len(events) != 1 {
		t.Fatalf("slow-op events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Subject != "s0" {
		t.Errorf("subject = %q, want s0", e.Subject)
	}
	if !strings.Contains(e.Detail, "op=remove") || !strings.Contains(e.Detail, "bag=shuf.p3") {
		t.Errorf("detail = %q, want op and bag named", e.Detail)
	}

	// Negative threshold disables emission entirely.
	m2 := NewMeter(o, "server", "s1", -1)
	start = m2.Begin()
	time.Sleep(time.Millisecond)
	m2.End(OpRemove, "b", start, 0, 0, nil)
	if got := o.Tracer().Events("", obs.EvStorageSlowOp); len(got) != 1 {
		t.Fatalf("disabled meter emitted slow-op events: %d", len(got))
	}
}

// TestTCPMeterScrapeRace hammers one TCP client from concurrent workers
// while the registry is scraped (WriteText and Snapshot) the whole time,
// then reconciles the client- and server-side op counters. Run under
// -race this is the data-race proof for the whole metered wire path.
func TestTCPMeterScrapeRace(t *testing.T) {
	const workers, calls = 8, 40
	o := obs.New(0)
	srv := NewTCPServer(&echoHandler{})
	srv.Bind(NewMeter(o, "server", "s0", -1))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[string]string{"node": addr})
	defer client.Close()
	client.Bind(NewMeter(o, "client", "", -1))

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = o.Registry().WriteText(io.Discard)
				_ = o.Registry().Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				data := []byte{byte(g), byte(i)}
				resp, err := client.Call(context.Background(), "node", &Request{Op: OpInsert, Bag: "b", Data: data})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, data) {
					errs <- fmt.Errorf("worker %d call %d: payload mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := o.Registry().Snapshot()
	const total = workers * calls
	for _, series := range []string{
		`hurricane_storage_op_total{role="client",op="insert"}`,
		`hurricane_storage_op_total{role="server",node="s0",op="insert"}`,
	} {
		if got := snap[series]; got != total {
			t.Errorf("%s = %v, want %d", series, got, total)
		}
	}
	for _, series := range []string{
		`hurricane_storage_inflight{role="client"}`,
		`hurricane_storage_inflight{role="server",node="s0"}`,
	} {
		if got := snap[series]; got != 0 {
			t.Errorf("%s = %v, want 0 after quiesce", series, got)
		}
	}
	// Client and server frame the same messages, so their byte views
	// mirror each other: client out == server in, client in == server out.
	cOut := snap[`hurricane_storage_bytes_out_total{role="client"}`]
	sIn := snap[`hurricane_storage_bytes_in_total{role="server",node="s0"}`]
	if cOut == 0 || cOut != sIn {
		t.Errorf("client out %v != server in %v", cOut, sIn)
	}
	cIn := snap[`hurricane_storage_bytes_in_total{role="client"}`]
	sOut := snap[`hurricane_storage_bytes_out_total{role="server",node="s0"}`]
	if cIn == 0 || cIn != sOut {
		t.Errorf("client in %v != server out %v", cIn, sOut)
	}
	if got := snap[`hurricane_storage_dials_total{role="client"}`]; got == 0 {
		t.Error("no dials recorded")
	}
}
