package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// InProc is an in-process transport: a registry of storage-node handlers
// addressed by name. It supports latency injection (to exercise the batch
// sampling pipeline) and crash injection (to exercise failure recovery).
// It implements Client; one InProc can be shared by any number of
// concurrent callers.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	down     map[string]bool

	// Latency, if non-zero, is added to every call.
	latency atomic.Int64 // nanoseconds

	// meter, when bound, records per-op telemetry for every call.
	meter atomic.Pointer[Meter]
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{
		handlers: make(map[string]Handler),
		down:     make(map[string]bool),
	}
}

// Register installs the handler for a named storage node. Re-registering a
// name replaces the previous handler (used when a node restarts).
func (t *InProc) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[node] = h
	delete(t.down, node)
}

// Deregister removes a node from the registry.
func (t *InProc) Deregister(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, node)
	delete(t.down, node)
}

// SetLatency injects d of artificial latency into every call.
func (t *InProc) SetLatency(d time.Duration) { t.latency.Store(int64(d)) }

// Crash marks a node as down: calls to it fail with ErrNodeDown until
// Restore (or Register) is called. The handler's state is preserved,
// modelling a network partition or process crash with durable storage.
func (t *InProc) Crash(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[node] = true
}

// Restore brings a crashed node back.
func (t *InProc) Restore(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, node)
}

// Bind attaches a meter recording per-op telemetry (latency, bytes,
// errors, in-flight) for every call through this transport. Safe to
// call concurrently with Call; bind nil to stop recording.
func (t *InProc) Bind(m *Meter) { t.meter.Store(m) }

// Call implements Client.
func (t *InProc) Call(ctx context.Context, node string, req *Request) (*Response, error) {
	m := t.meter.Load()
	start := m.Begin()
	resp, err := t.call(ctx, node, req)
	var in int
	if resp != nil {
		in = len(resp.Data)
	}
	m.End(req.Op, req.Bag, start, in, len(req.Data), respError(resp, err))
	return resp, err
}

// call is Call without the telemetry wrapper.
func (t *InProc) call(ctx context.Context, node string, req *Request) (*Response, error) {
	if d := time.Duration(t.latency.Load()); d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	t.mu.RLock()
	h, ok := t.handlers[node]
	isDown := t.down[node]
	t.mu.RUnlock()
	if !ok || isDown {
		return nil, ErrNodeDown
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.Handle(req), nil
}

// Close implements Client. It is a no-op for the in-process transport.
func (t *InProc) Close() error { return nil }
