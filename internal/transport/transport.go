// Package transport carries storage-protocol messages between Hurricane
// compute nodes and storage nodes.
//
// Two implementations are provided: an in-process transport used by the
// embedded engine, the test suite, and the benchmarks (with configurable
// latency and crash injection), and a TCP transport on the standard
// library's net package for multi-process deployments. Both speak the same
// request/response protocol, so the engine is agnostic to which one is
// wired in.
package transport

import (
	"context"
	"errors"
	"fmt"
)

// Op identifies a storage-protocol operation.
type Op uint8

// Storage protocol operations. The set mirrors the bag API from the paper
// (§4.3): insert, remove, plus the auxiliary operations — sealing a bag when
// its producers finish, sampling the amount of data remaining, rewinding for
// failure recovery or reuse, renaming (clone-output adoption), discarding,
// and garbage collection.
const (
	OpInsert  Op = iota + 1 // append a chunk to a bag
	OpRemove                // remove the next unread chunk from a bag
	OpSeal                  // mark a bag as complete (no more inserts)
	OpSample                // report bag statistics (size, position)
	OpRewind                // reset the bag's read pointer to the start
	OpDiscard               // drop a bag's contents but keep the bag
	OpDelete                // garbage collect a bag entirely
	OpRename                // atomically rename a bag
	OpReadAt                // read chunk at index without consuming (shared scans)
	OpPing                  // liveness probe
	OpAdvance               // move the read pointer forward monotonically (replica sync)
	// OpSketch carries shuffle-edge statistics. With a payload it pushes a
	// producer's edge stats (partition counts + count-min sketch), which
	// the storage node merges into its per-edge state; without a payload
	// it fetches the merged stats, which the application master uses to
	// detect hot partitions worth splitting; with Arg == SketchClear it
	// drops the edge's stats (job completion / failure recovery).
	// Request.Dst carries the producer's worker identifier so repeated
	// cumulative pushes replace rather than double-count.
	OpSketch
	// OpDeletePrefix garbage collects every bag (and every shuffle-edge
	// sketch) whose name starts with Request.Bag. The multi-job scheduler
	// uses it to discard a completed job's namespaced bags — work bags,
	// partition maps, runtime-derived partition bags — without having to
	// enumerate names it cannot know in advance.
	OpDeletePrefix
)

// SketchClear, passed in Request.Arg with a payload-less OpSketch, drops
// the edge's sketch state instead of fetching it.
const SketchClear int64 = 1

var opNames = map[Op]string{
	OpInsert: "insert", OpRemove: "remove", OpSeal: "seal",
	OpSample: "sample", OpRewind: "rewind", OpDiscard: "discard",
	OpDelete: "delete", OpRename: "rename", OpReadAt: "readAt",
	OpPing: "ping", OpAdvance: "advance", OpSketch: "sketch",
	OpDeletePrefix: "deletePrefix",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request is a storage-protocol request.
type Request struct {
	Op   Op
	Bag  string // target bag identifier
	Data []byte // chunk payload for OpInsert
	Arg  int64  // operation argument (e.g. chunk index for OpReadAt)
	Dst  string // destination bag name for OpRename
}

// Status codes carried in Response.Status.
const (
	StatusOK      = 0 // success
	StatusEmpty   = 1 // bag exhausted and sealed: no more chunks, ever
	StatusAgain   = 2 // bag exhausted but not sealed: more chunks may arrive
	StatusNoBag   = 3 // bag does not exist
	StatusErr     = 4 // other error, see Err
	StatusRemoved = 5 // storage node is draining and rejects inserts
)

// Response is a storage-protocol response.
type Response struct {
	Status int
	Err    string
	Data   []byte // chunk payload for OpRemove / OpReadAt
	// Sample results (OpSample) and general numeric results.
	TotalChunks int64 // chunks ever inserted
	ReadChunks  int64 // chunks already consumed
	TotalBytes  int64 // bytes ever inserted
	ReadBytes   int64 // bytes already consumed
	Sealed      bool
}

// OK reports whether the response indicates success.
func (r *Response) OK() bool { return r.Status == StatusOK }

// Error converts a failure response into a Go error (nil on success).
func (r *Response) Error() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusEmpty:
		return ErrEmpty
	case StatusAgain:
		return ErrAgain
	case StatusNoBag:
		return ErrNoBag
	case StatusRemoved:
		return ErrDraining
	default:
		if r.Err != "" {
			return errors.New(r.Err)
		}
		return ErrFailed
	}
}

// Sentinel errors mapped from response status codes.
var (
	// ErrEmpty means the bag is sealed and fully consumed: a worker that
	// sees ErrEmpty from every storage node is done.
	ErrEmpty = errors.New("transport: bag empty")
	// ErrAgain means the bag has no chunk available right now but is not
	// sealed; the caller should retry later.
	ErrAgain = errors.New("transport: bag temporarily empty")
	// ErrNoBag means the bag does not exist on the node.
	ErrNoBag = errors.New("transport: no such bag")
	// ErrDraining means the storage node is being removed and rejects
	// inserts (it still serves removes until its bags drain, §3.4).
	ErrDraining = errors.New("transport: storage node draining")
	// ErrFailed is a generic failure.
	ErrFailed = errors.New("transport: request failed")
	// ErrNodeDown means the target node is unreachable (crash injection
	// or closed connection).
	ErrNodeDown = errors.New("transport: node down")
)

// Handler processes storage requests on a storage node.
type Handler interface {
	Handle(req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// Handle implements Handler.
func (f HandlerFunc) Handle(req *Request) *Response { return f(req) }

// Client issues storage requests to named storage nodes. Implementations
// must be safe for concurrent use; batch sampling issues many concurrent
// calls per client.
type Client interface {
	// Call sends req to the named node and waits for its response.
	Call(ctx context.Context, node string, req *Request) (*Response, error)
	// Close releases client resources.
	Close() error
}
