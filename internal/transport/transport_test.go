package transport

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/obs"
)

func TestWireRequestRoundTripQuick(t *testing.T) {
	f := func(op uint8, bagName, dst string, arg int64, data []byte) bool {
		req := &Request{Op: Op(op), Bag: bagName, Dst: dst, Arg: arg, Data: data}
		buf := EncodeRequest(nil, req)
		got, err := DecodeRequest(buf)
		if err != nil {
			return false
		}
		return got.Op == req.Op && got.Bag == req.Bag && got.Dst == req.Dst &&
			got.Arg == req.Arg && bytes.Equal(got.Data, req.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireResponseRoundTripQuick(t *testing.T) {
	f := func(status uint8, errMsg string, tc, rc, tb, rb int64, sealed bool, data []byte) bool {
		resp := &Response{
			Status: int(status), Err: errMsg,
			TotalChunks: tc, ReadChunks: rc, TotalBytes: tb, ReadBytes: rb,
			Sealed: sealed, Data: data,
		}
		buf := EncodeResponse(nil, resp)
		got, err := DecodeResponse(buf)
		if err != nil {
			return false
		}
		return got.Status == resp.Status && got.Err == resp.Err &&
			got.TotalChunks == tc && got.ReadChunks == rc &&
			got.TotalBytes == tb && got.ReadBytes == rb &&
			got.Sealed == sealed && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	req := &Request{Op: OpInsert, Bag: "bag", Data: []byte("payload")}
	buf := EncodeRequest(nil, req)
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeRequest(buf[:i]); err == nil && i < len(buf)-1 {
			// Some prefixes may decode if the data field self-truncates
			// consistently; the decoder must never panic, which reaching
			// here proves.
			continue
		}
	}
}

func TestResponseErrors(t *testing.T) {
	cases := []struct {
		status int
		want   error
	}{
		{StatusOK, nil},
		{StatusEmpty, ErrEmpty},
		{StatusAgain, ErrAgain},
		{StatusNoBag, ErrNoBag},
		{StatusRemoved, ErrDraining},
	}
	for _, c := range cases {
		r := &Response{Status: c.status}
		if got := r.Error(); got != c.want {
			t.Errorf("status %d: got %v, want %v", c.status, got, c.want)
		}
	}
	r := &Response{Status: StatusErr, Err: "boom"}
	if got := r.Error(); got == nil || got.Error() != "boom" {
		t.Errorf("custom error: got %v", got)
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpAdvance.String() != "advance" || OpSketch.String() != "sketch" {
		t.Fatal("op names wrong")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op must format")
	}
}

// TestOpSketchOverTransports: the sketch op's push form (Bag + Dst writer
// ID + payload) and fetch form (payload returned in Data) survive both the
// in-process and the TCP transport unchanged.
func TestOpSketchOverTransports(t *testing.T) {
	ctx := context.Background()
	req := &Request{Op: OpSketch, Bag: "shuf", Dst: "join/w2@e0", Data: []byte(`{"counts":{"shuf.p0":7}}`)}

	check := func(t *testing.T, client Client, h *echoHandler) {
		resp, err := client.Call(ctx, "node", req)
		if err != nil || !resp.OK() {
			t.Fatalf("call: %v %+v", err, resp)
		}
		if !bytes.Equal(resp.Data, req.Data) {
			t.Fatalf("payload did not round-trip: %q", resp.Data)
		}
		if op, bag, dst := h.last(); op != OpSketch || dst != "join/w2@e0" || bag != "shuf" {
			t.Fatalf("handler saw op=%v bag=%q dst=%q", op, bag, dst)
		}
	}
	t.Run("inproc", func(t *testing.T) {
		tr := NewInProc()
		h := &echoHandler{}
		tr.Register("node", h)
		check(t, tr, h)
	})
	t.Run("tcp", func(t *testing.T) {
		h := &echoHandler{}
		srv := NewTCPServer(h)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		client := NewTCPClient(map[string]string{"node": addr})
		defer client.Close()
		check(t, client, h)
	})
}

// echoHandler returns the request payload with status OK. The TCP
// server invokes Handle from one goroutine per connection, so the
// bookkeeping fields are mutex-guarded.
type echoHandler struct {
	mu      sync.Mutex
	calls   int
	lastOp  Op
	lastBag string
	lastDst string
}

func (e *echoHandler) Handle(req *Request) *Response {
	e.mu.Lock()
	e.calls++
	e.lastOp, e.lastBag, e.lastDst = req.Op, req.Bag, req.Dst
	e.mu.Unlock()
	return &Response{Status: StatusOK, Data: req.Data, TotalChunks: req.Arg}
}

func (e *echoHandler) last() (Op, string, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastOp, e.lastBag, e.lastDst
}

func TestInProcBasics(t *testing.T) {
	tr := NewInProc()
	o := obs.New(0)
	tr.Bind(NewMeter(o, "inproc", "", 0))
	h := &echoHandler{}
	tr.Register("n1", h)
	ctx := context.Background()

	resp, err := tr.Call(ctx, "n1", &Request{Op: OpPing, Data: []byte("x"), Arg: 7})
	if err != nil || !resp.OK() || string(resp.Data) != "x" || resp.TotalChunks != 7 {
		t.Fatalf("call: %v %+v", err, resp)
	}
	if _, err := tr.Call(ctx, "nope", &Request{Op: OpPing}); err != ErrNodeDown {
		t.Fatalf("unknown node: got %v", err)
	}
	tr.Crash("n1")
	if _, err := tr.Call(ctx, "n1", &Request{Op: OpPing}); err != ErrNodeDown {
		t.Fatalf("crashed node: got %v", err)
	}
	tr.Restore("n1")
	if _, err := tr.Call(ctx, "n1", &Request{Op: OpPing}); err != nil {
		t.Fatalf("restored node: got %v", err)
	}
	tr.Deregister("n1")
	if _, err := tr.Call(ctx, "n1", &Request{Op: OpPing}); err != ErrNodeDown {
		t.Fatalf("deregistered node: got %v", err)
	}
	// The bound meter supersedes the old private calls counter: every
	// call — including the failed ones — shows up in the per-op series.
	snap := o.Registry().Snapshot()
	const pings = `hurricane_storage_op_total{role="inproc",op="ping"}`
	if got := snap[pings]; got != 5 {
		t.Fatalf("ping op counter = %v, want 5 (snapshot %v)", got, snap)
	}
	const pingErrs = `hurricane_storage_op_errors_total{role="inproc",op="ping"}`
	if got := snap[pingErrs]; got != 3 {
		t.Fatalf("ping error counter = %v, want 3", got)
	}
}

func TestInProcLatencyAndCancel(t *testing.T) {
	tr := NewInProc()
	tr.Register("n1", &echoHandler{})
	tr.SetLatency(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.Call(ctx, "n1", &Request{Op: OpPing})
	if err == nil {
		t.Fatal("expected context deadline error")
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("cancellation did not interrupt latency sleep")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	h := &echoHandler{}
	srv := NewTCPServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewTCPClient(map[string]string{"node": addr})
	defer client.Close()
	ctx := context.Background()

	payload := bytes.Repeat([]byte("hurricane"), 1000)
	resp, err := client.Call(ctx, "node", &Request{Op: OpInsert, Bag: "b", Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK() || !bytes.Equal(resp.Data, payload) {
		t.Fatalf("bad response: %+v", resp)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv := NewTCPServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[string]string{"node": addr})
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				data := []byte{byte(g), byte(i)}
				resp, err := client.Call(context.Background(), "node", &Request{Op: OpInsert, Data: data})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, data) {
					errs <- ErrFailed
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPUnknownNode(t *testing.T) {
	client := NewTCPClient(nil)
	defer client.Close()
	if _, err := client.Call(context.Background(), "ghost", &Request{Op: OpPing}); err != ErrNodeDown {
		t.Fatalf("got %v, want ErrNodeDown", err)
	}
}

func TestTCPServerClosedConnection(t *testing.T) {
	srv := NewTCPServer(&echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCPClient(map[string]string{"node": addr})
	defer client.Close()
	if _, err := client.Call(context.Background(), "node", &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := client.Call(context.Background(), "node", &Request{Op: OpPing}); err == nil {
		t.Fatal("expected error after server close")
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(req *Request) *Response {
		return &Response{Status: StatusOK, Data: req.Data}
	})
	resp := h.Handle(&Request{Data: []byte("z")})
	if string(resp.Data) != "z" {
		t.Fatal("HandlerFunc broken")
	}
}
