package transport

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPServer serves the storage protocol over TCP for a single storage node.
type TCPServer struct {
	Handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	meter    atomic.Pointer[Meter]
}

// Bind attaches a meter recording per-op telemetry (latency, wire
// bytes, errors, connection and in-flight gauges) for every request
// this server handles. Safe to call concurrently with serving.
func (s *TCPServer) Bind(m *Meter) { s.meter.Store(m) }

// NewTCPServer returns a server dispatching requests to h.
func NewTCPServer(h Handler) *TCPServer {
	return &TCPServer{Handler: h, conns: make(map[net.Conn]struct{})}
}

// Listen binds to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in the background. It returns the bound address.
func (s *TCPServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	cm := s.meter.Load()
	cm.ConnOpened()
	defer func() {
		cm.ConnClosed()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<20)
	var buf []byte
	for {
		body, err := readMessage(br)
		if err != nil {
			return
		}
		m := s.meter.Load()
		start := m.Begin()
		req, err := DecodeRequest(body)
		var resp *Response
		if err != nil {
			resp = &Response{Status: StatusErr, Err: err.Error()}
		} else {
			resp = s.Handler.Handle(req)
		}
		buf = EncodeResponse(buf[:0], resp)
		var op Op
		var bag string
		if req != nil {
			op, bag = req.Op, req.Bag
		}
		m.End(op, bag, start, frameBytes(len(body)), frameBytes(len(buf)), resp.Error())
		if err := writeMessage(bw, buf); err != nil {
			return
		}
	}
}

// Close stops the server and closes all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// TCPClient implements Client over TCP. Node names are resolved to
// addresses through the Addrs map supplied at construction. Each node gets
// a small connection pool so that batch sampling's concurrent requests do
// not serialize on one socket.
type TCPClient struct {
	addrs map[string]string

	mu     sync.Mutex
	idle   map[string][]*tcpConn
	closed bool
	meter  atomic.Pointer[Meter]
}

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// m is the meter that counted this connection's open, captured at
	// dial time so the close decrement lands on the same gauge even if
	// the client is re-bound meanwhile.
	m *Meter
}

// close closes the connection and settles its gauge accounting. Every
// tcpConn is closed through exactly one of the client's paths (call
// failure, pool replacement, or Close), so the decrement pairs with the
// dial-time increment.
func (tc *tcpConn) close() {
	tc.c.Close()
	tc.m.ConnClosed()
}

// Bind attaches a meter recording per-op telemetry (latency, wire
// bytes, errors, dial and connection gauges) for every call through
// this client. Safe to call concurrently with Call.
func (c *TCPClient) Bind(m *Meter) { c.meter.Store(m) }

// NewTCPClient returns a client that reaches each named node at the given
// TCP address.
func NewTCPClient(addrs map[string]string) *TCPClient {
	m := make(map[string]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPClient{addrs: m, idle: make(map[string][]*tcpConn)}
}

// SetAddr adds or updates a node's address (used when storage nodes are
// added at runtime, §3.4). Pooled connections to the node's previous
// address are closed — they would otherwise leak (and keep the
// connection gauge inflated) since the pool never hands them out again.
func (c *TCPClient) SetAddr(node, addr string) {
	c.mu.Lock()
	stale := c.idle[node]
	c.addrs[node] = addr
	c.idle[node] = nil
	c.mu.Unlock()
	for _, tc := range stale {
		tc.close()
	}
}

var errClientClosed = errors.New("transport: client closed")

func (c *TCPClient) get(node string) (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	pool := c.idle[node]
	if n := len(pool); n > 0 {
		tc := pool[n-1]
		c.idle[node] = pool[:n-1]
		c.mu.Unlock()
		return tc, nil
	}
	addr, ok := c.addrs[node]
	c.mu.Unlock()
	if !ok {
		return nil, ErrNodeDown
	}
	m := c.meter.Load()
	m.Dial()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, ErrNodeDown
	}
	m.ConnOpened()
	return &tcpConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 1<<20),
		bw: bufio.NewWriterSize(conn, 1<<20),
		m:  m,
	}, nil
}

func (c *TCPClient) put(node string, tc *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		tc.close()
		return
	}
	c.idle[node] = append(c.idle[node], tc)
}

// Call implements Client.
func (c *TCPClient) Call(ctx context.Context, node string, req *Request) (*Response, error) {
	m := c.meter.Load()
	start := m.Begin()
	resp, in, out, err := c.call(ctx, node, req)
	m.End(req.Op, req.Bag, start, in, out, respError(resp, err))
	return resp, err
}

// call is Call without the telemetry wrapper; it returns the wire bytes
// read and written alongside the response.
func (c *TCPClient) call(ctx context.Context, node string, req *Request) (resp *Response, in, out int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	tc, err := c.get(node)
	if err != nil {
		return nil, 0, 0, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		tc.c.SetDeadline(deadline)
	} else {
		tc.c.SetDeadline(zeroTime)
	}
	body := EncodeRequest(nil, req)
	out = frameBytes(len(body))
	if err := writeMessage(tc.bw, body); err != nil {
		tc.close()
		return nil, 0, out, ErrNodeDown
	}
	respBody, err := readMessage(tc.br)
	if err != nil {
		tc.close()
		return nil, 0, out, ErrNodeDown
	}
	in = frameBytes(len(respBody))
	resp, err = DecodeResponse(respBody)
	if err != nil {
		tc.close()
		return nil, in, out, err
	}
	c.put(node, tc)
	return resp, in, out, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pool := range c.idle {
		for _, tc := range pool {
			tc.close()
		}
	}
	c.idle = make(map[string][]*tcpConn)
	return nil
}

// zeroTime clears a connection deadline.
var zeroTime = time.Time{}
