package transport

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// TCPServer serves the storage protocol over TCP for a single storage node.
type TCPServer struct {
	Handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPServer returns a server dispatching requests to h.
func NewTCPServer(h Handler) *TCPServer {
	return &TCPServer{Handler: h, conns: make(map[net.Conn]struct{})}
}

// Listen binds to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in the background. It returns the bound address.
func (s *TCPServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<20)
	var buf []byte
	for {
		body, err := readMessage(br)
		if err != nil {
			return
		}
		req, err := DecodeRequest(body)
		var resp *Response
		if err != nil {
			resp = &Response{Status: StatusErr, Err: err.Error()}
		} else {
			resp = s.Handler.Handle(req)
		}
		buf = EncodeResponse(buf[:0], resp)
		if err := writeMessage(bw, buf); err != nil {
			return
		}
	}
}

// Close stops the server and closes all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// TCPClient implements Client over TCP. Node names are resolved to
// addresses through the Addrs map supplied at construction. Each node gets
// a small connection pool so that batch sampling's concurrent requests do
// not serialize on one socket.
type TCPClient struct {
	addrs map[string]string

	mu     sync.Mutex
	idle   map[string][]*tcpConn
	closed bool
}

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewTCPClient returns a client that reaches each named node at the given
// TCP address.
func NewTCPClient(addrs map[string]string) *TCPClient {
	m := make(map[string]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPClient{addrs: m, idle: make(map[string][]*tcpConn)}
}

// SetAddr adds or updates a node's address (used when storage nodes are
// added at runtime, §3.4).
func (c *TCPClient) SetAddr(node, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[node] = addr
	c.idle[node] = nil
}

var errClientClosed = errors.New("transport: client closed")

func (c *TCPClient) get(node string) (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	pool := c.idle[node]
	if n := len(pool); n > 0 {
		tc := pool[n-1]
		c.idle[node] = pool[:n-1]
		c.mu.Unlock()
		return tc, nil
	}
	addr, ok := c.addrs[node]
	c.mu.Unlock()
	if !ok {
		return nil, ErrNodeDown
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, ErrNodeDown
	}
	return &tcpConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 1<<20),
		bw: bufio.NewWriterSize(conn, 1<<20),
	}, nil
}

func (c *TCPClient) put(node string, tc *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		tc.c.Close()
		return
	}
	c.idle[node] = append(c.idle[node], tc)
}

// Call implements Client.
func (c *TCPClient) Call(ctx context.Context, node string, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tc, err := c.get(node)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		tc.c.SetDeadline(deadline)
	} else {
		tc.c.SetDeadline(zeroTime)
	}
	body := EncodeRequest(nil, req)
	if err := writeMessage(tc.bw, body); err != nil {
		tc.c.Close()
		return nil, ErrNodeDown
	}
	respBody, err := readMessage(tc.br)
	if err != nil {
		tc.c.Close()
		return nil, ErrNodeDown
	}
	resp, err := DecodeResponse(respBody)
	if err != nil {
		tc.c.Close()
		return nil, err
	}
	c.put(node, tc)
	return resp, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pool := range c.idle {
		for _, tc := range pool {
			tc.c.Close()
		}
	}
	c.idle = make(map[string][]*tcpConn)
	return nil
}

// zeroTime clears a connection deadline.
var zeroTime = time.Time{}
