// Package workload generates the synthetic datasets used throughout the
// paper's evaluation (§5): skewed click logs for ClickLog, key-skewed
// relations for HashJoin, and R-MAT power-law graphs for PageRank.
//
// Skew model. The paper introduces skew with "a zipf distribution with
// parameter s (0 ≤ s ≤ 1)" and reports the imbalance between the largest
// and smallest region as 1×, 2.3×, 8×, 28×, and 64× for s = 0, 0.2, 0.5,
// 0.8, and 1. With R = 64 regions weighted w_i ∝ (i+1)^{-s}, the
// max/min ratio is exactly 64^s = {1, 2.30, 8, 27.9, 64} — matching the
// paper's numbers — and the largest region's share at s = 1 is
// 1/H(64) ≈ 21% (paper: 19.6%).
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// DefaultRegions is the region count that reproduces the paper's skew
// imbalance figures.
const DefaultRegions = 64

// PaperSkews are the skew parameters evaluated in the paper.
var PaperSkews = []float64{0, 0.2, 0.5, 0.8, 1.0}

// RegionWeights returns normalized zipf(s) weights for n regions:
// w_i ∝ (i+1)^{-s}.
func RegionWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Imbalance returns the max/min ratio of a weight vector.
func Imbalance(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	min, max := w[0], w[0]
	for _, x := range w[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max / min
}

// LargestFraction returns the largest weight (the serial fraction in the
// paper's Amdahl analysis).
func LargestFraction(w []float64) float64 {
	max := 0.0
	for _, x := range w {
		if x > max {
			max = x
		}
	}
	return max
}

// AmdahlBestSlowdown computes the paper's best-case slowdown bound for a
// cluster of n machines when the largest region (fraction f of the input)
// cannot be split: speedup ≤ 1/(f + (1-f)/n), so slowdown ≥ n/speedup.
// For s = 1 on 32 machines the paper derives 7.1×.
func AmdahlBestSlowdown(f float64, machines int) float64 {
	speedup := 1.0 / (f + (1.0-f)/float64(machines))
	return float64(machines) / speedup
}

// Sampler draws indices according to a weight vector using inverse-CDF
// sampling (math/rand's Zipf requires s > 1, so it cannot express the
// paper's 0 ≤ s ≤ 1 range).
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler builds a sampler over weights (need not be normalized).
func NewSampler(weights []float64, seed int64) *Sampler {
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Sampler{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one index.
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	return sort.SearchFloat64s(s.cdf, u)
}

// ---- ClickLog ----

// RegionBits is the number of high bits of an IP that identify its region
// (64 regions).
const RegionBits = 6

// Geolocate maps an IP to its region index — the deterministic stand-in
// for the paper's geolocation function ("we simulate the geolocation
// function to avoid external API calls").
func Geolocate(ip uint32) int {
	return int(ip >> (32 - RegionBits))
}

// RegionName returns the bag-name suffix for a region index.
var regionNames = []string{
	"usa", "china", "india", "brazil", "uk", "japan", "germany", "france",
	"italy", "canada", "korea", "russia", "spain", "mexico", "indonesia",
	"turkey", "nl", "saudi", "swiss", "poland", "taiwan", "belgium",
	"sweden", "ireland", "austria", "norway", "uae", "israel", "denmark",
	"sg", "malaysia", "hk", "colombia", "philippines", "pakistan", "chile",
	"finland", "bangladesh", "egypt", "vietnam", "portugal", "czech",
	"romania", "peru", "nz", "greece", "iraq", "qatar", "algeria",
	"hungary", "kazakhstan", "kuwait", "morocco", "ecuador", "slovakia",
	"kenya", "ethiopia", "dr", "guatemala", "oman", "bulgaria", "venezuela",
	"uruguay", "croatia",
}

// RegionName returns a human-readable region name for an index.
func RegionName(i int) string {
	if i >= 0 && i < len(regionNames) {
		return regionNames[i]
	}
	return "region" + string(rune('a'+i%26))
}

// ClickLogGen generates click-log records: IPs whose region follows a
// zipf(s) distribution over 64 regions.
type ClickLogGen struct {
	// S is the zipf skew parameter (0 = uniform).
	S float64
	// Regions is the region count (default 64).
	Regions int
	// UniquePerRegion bounds the distinct IPs per region (so distinct
	// counts are interesting); 0 means unbounded.
	UniquePerRegion int
	// Seed seeds the generator.
	Seed int64
	// DriftEvery, when > 0, makes the hot region migrate over time: after
	// every DriftEvery records the zipf rank→region assignment rotates by
	// one, so the region that was hottest hands the role to its
	// neighbor. Streaming benchmarks use it to exercise *changing* skew —
	// a workload where yesterday's partition map is mostly, but not
	// entirely, right for today. 0 disables drift (stationary skew).
	DriftEvery int
}

func (g *ClickLogGen) regions() int {
	if g.Regions <= 0 {
		return DefaultRegions
	}
	return g.Regions
}

// Generate produces n click IPs. Region r owns the IP range with high
// bits r, so Geolocate inverts the assignment exactly.
func (g *ClickLogGen) Generate(n int) []uint32 {
	it := g.Iter()
	out := make([]uint32, n)
	for i := range out {
		out[i] = it.Next()
	}
	return out
}

// ClickIter is a sequential click-log generator — the streaming form of
// Generate. The i-th call to Next returns exactly Generate(n)[i] for any
// n > i, so batch and streaming consumers of one configuration see the
// same log.
type ClickIter struct {
	g       ClickLogGen
	sampler *Sampler
	rng     *rand.Rand
	regions int
	low     uint32
	i       int
}

// Iter returns a fresh sequential generator for the configuration.
func (g *ClickLogGen) Iter() *ClickIter {
	return &ClickIter{
		g:       *g,
		sampler: NewSampler(RegionWeights(g.regions(), g.S), g.Seed),
		rng:     rand.New(rand.NewSource(g.Seed + 1)),
		regions: g.regions(),
		low:     uint32(1)<<(32-RegionBits) - 1, // mask of low bits
	}
}

// Next draws the next click IP.
func (it *ClickIter) Next() uint32 {
	r := it.sampler.Next()
	if it.g.DriftEvery > 0 {
		r = (r + it.i/it.g.DriftEvery) % it.regions
	}
	var host uint32
	if it.g.UniquePerRegion > 0 {
		host = uint32(it.rng.Intn(it.g.UniquePerRegion))
	} else {
		host = it.rng.Uint32() & it.low
	}
	it.i++
	return uint32(r)<<(32-RegionBits) | (host & it.low)
}

// DistinctPerRegion computes the ground-truth distinct IP count per
// region for a generated log (the ClickLog application's expected answer).
func DistinctPerRegion(ips []uint32, regions int) []int64 {
	sets := make([]map[uint32]struct{}, regions)
	for i := range sets {
		sets[i] = make(map[uint32]struct{})
	}
	for _, ip := range ips {
		r := Geolocate(ip)
		if r < regions {
			sets[r][ip] = struct{}{}
		}
	}
	out := make([]int64, regions)
	for i, s := range sets {
		out[i] = int64(len(s))
	}
	return out
}

// CountPerRegion computes the raw record count per region.
func CountPerRegion(ips []uint32, regions int) []int64 {
	out := make([]int64, regions)
	for _, ip := range ips {
		r := Geolocate(ip)
		if r < regions {
			out[r]++
		}
	}
	return out
}

// ---- HashJoin relations ----

// Tuple is one relation row: a join key and a payload.
type Tuple struct {
	Key     uint64
	Payload uint64
}

// RelationGen generates join relations. Skew in the key distribution of
// the probe relation produces the "larger hit rate for some keys" the
// paper uses in Table 3.
type RelationGen struct {
	// Keys is the size of the join-key domain.
	Keys int
	// S is the zipf skew of key popularity (0 = uniform).
	S float64
	// Seed seeds the generator.
	Seed int64
}

// Generate produces n tuples.
func (g *RelationGen) Generate(n int) []Tuple {
	sampler := NewSampler(RegionWeights(g.Keys, g.S), g.Seed)
	rng := rand.New(rand.NewSource(g.Seed + 1))
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Key: uint64(sampler.Next()), Payload: rng.Uint64()}
	}
	return out
}

// SeqRelation generates a dimension relation holding each key of
// [0, keys) exactly once with a random payload — the build side of the
// planner benchmarks, where one build tuple per key makes join output
// exactly per-probe-record.
func SeqRelation(keys int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, keys)
	for i := range out {
		out[i] = Tuple{Key: uint64(i), Payload: rng.Uint64()}
	}
	return out
}

// ZipfTuples generates n tuples whose keys follow zipf(s) over a keys-
// sized domain — the dataset-generation glue shared by the benchmark
// subcommands and the hurricane-run jobs.
func ZipfTuples(n, keys int, s float64, seed int64) []Tuple {
	g := RelationGen{Keys: keys, S: s, Seed: seed}
	return g.Generate(n)
}

// KeyCounts computes per-key record counts — the ground-truth oracle for
// every keyed-aggregation workload.
func KeyCounts(ts []Tuple) map[uint64]int64 {
	m := make(map[uint64]int64, 64)
	for _, t := range ts {
		m[t.Key]++
	}
	return m
}

// JoinCount computes the ground-truth number of join output tuples
// between two relations (sum over keys of count_a × count_b).
func JoinCount(a, b []Tuple) int64 {
	ca := make(map[uint64]int64)
	for _, t := range a {
		ca[t.Key]++
	}
	cb := make(map[uint64]int64)
	for _, t := range b {
		cb[t.Key]++
	}
	var total int64
	for k, n := range ca {
		total += n * cb[k]
	}
	return total
}

// ---- R-MAT graphs ----

// Edge is a directed graph edge.
type Edge struct {
	Src, Dst int64
}

// RMATGen generates R-MAT power-law graphs (Chakrabarti et al., cited by
// the paper for its PageRank inputs) with the standard Graph500
// parameters a=0.57, b=0.19, c=0.19, d=0.05.
type RMATGen struct {
	// Scale: the graph has 2^Scale vertices.
	Scale int
	// EdgeFactor: edges = EdgeFactor × vertices (paper graphs use 16).
	EdgeFactor int
	// Seed seeds the generator.
	Seed int64
	// A, B, C are the quadrant probabilities (defaults 0.57/0.19/0.19).
	A, B, C float64
}

func (g *RMATGen) params() (a, b, c float64) {
	a, b, c = g.A, g.B, g.C
	if a == 0 && b == 0 && c == 0 {
		a, b, c = 0.57, 0.19, 0.19
	}
	return
}

// NumVertices returns 2^Scale.
func (g *RMATGen) NumVertices() int64 { return int64(1) << g.Scale }

// NumEdges returns EdgeFactor × 2^Scale.
func (g *RMATGen) NumEdges() int64 {
	ef := g.EdgeFactor
	if ef <= 0 {
		ef = 16
	}
	return int64(ef) << g.Scale
}

// Generate produces the edge list.
func (g *RMATGen) Generate() []Edge {
	a, b, c := g.params()
	rng := rand.New(rand.NewSource(g.Seed))
	n := g.NumEdges()
	out := make([]Edge, n)
	for i := int64(0); i < n; i++ {
		out[i] = g.edge(rng, a, b, c)
	}
	return out
}

func (g *RMATGen) edge(rng *rand.Rand, a, b, c float64) Edge {
	var src, dst int64
	for bit := g.Scale - 1; bit >= 0; bit-- {
		u := rng.Float64()
		switch {
		case u < a:
			// top-left: no bits set
		case u < a+b:
			dst |= 1 << bit
		case u < a+b+c:
			src |= 1 << bit
		default:
			src |= 1 << bit
			dst |= 1 << bit
		}
	}
	return Edge{Src: src, Dst: dst}
}

// OutDegrees computes per-vertex out-degrees for an edge list.
func OutDegrees(edges []Edge, vertices int64) []int64 {
	deg := make([]int64, vertices)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

// MaxDegree returns the maximum value in a degree vector (the skew the
// paper's PageRank experiment exercises).
func MaxDegree(deg []int64) int64 {
	var max int64
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}
