package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// TestImbalanceMatchesPaper: with 64 regions and w_i ∝ (i+1)^{-s}, the
// max/min imbalance must reproduce the paper's reported factors
// (1×, 2.3×, 8×, 28×, 64× for s = 0, 0.2, 0.5, 0.8, 1).
func TestImbalanceMatchesPaper(t *testing.T) {
	want := map[float64]float64{0: 1, 0.2: 2.3, 0.5: 8, 0.8: 28, 1.0: 64}
	for s, imb := range want {
		w := RegionWeights(DefaultRegions, s)
		got := Imbalance(w)
		if math.Abs(got-imb)/imb > 0.02 {
			t.Errorf("s=%.1f: imbalance %.2f, paper %.1f", s, got, imb)
		}
	}
}

// TestLargestFractionAndAmdahl: at s=1 the largest region is ≈20% (paper:
// 19.6%) and the 32-machine Amdahl best-case slowdown is ≈7.1×.
func TestLargestFractionAndAmdahl(t *testing.T) {
	w := RegionWeights(DefaultRegions, 1.0)
	f := LargestFraction(w)
	if f < 0.18 || f > 0.23 {
		t.Errorf("largest fraction %.3f, paper 0.196", f)
	}
	// Using the paper's own 0.196 must give the paper's 7.1×.
	slow := AmdahlBestSlowdown(0.196, 32)
	if math.Abs(slow-7.1) > 0.2 {
		t.Errorf("Amdahl slowdown %.2f, paper 7.1", slow)
	}
}

func TestWeightsNormalizedQuick(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := float64(sRaw%101) / 100
		w := RegionWeights(n, s)
		var sum float64
		for i, x := range w {
			if x <= 0 {
				return false
			}
			if i > 0 && x > w[i-1]+1e-12 {
				return false // must be non-increasing
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerFollowsWeights(t *testing.T) {
	weights := []float64{0.7, 0.2, 0.1}
	s := NewSampler(weights, 42)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("index %d: frequency %.3f, want %.3f", i, got, w)
		}
	}
}

func TestGeolocateInvertsGeneration(t *testing.T) {
	gen := ClickLogGen{S: 0.8, Seed: 7, UniquePerRegion: 1000}
	ips := gen.Generate(10000)
	for _, ip := range ips {
		r := Geolocate(ip)
		if r < 0 || r >= DefaultRegions {
			t.Fatalf("ip %#x maps to region %d", ip, r)
		}
	}
	counts := CountPerRegion(ips, DefaultRegions)
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("region counts sum to %d", total)
	}
	// Skewed generation: region 0 must be the heaviest.
	max := counts[0]
	for _, c := range counts[1:] {
		if c > max {
			t.Fatalf("region 0 (%d) is not the heaviest (%d)", counts[0], c)
		}
	}
}

func TestDistinctPerRegionBounded(t *testing.T) {
	gen := ClickLogGen{S: 0, Seed: 1, UniquePerRegion: 50}
	ips := gen.Generate(20000)
	distinct := DistinctPerRegion(ips, DefaultRegions)
	for r, d := range distinct {
		if d > 50 {
			t.Fatalf("region %d has %d distinct IPs, cap 50", r, d)
		}
	}
}

// TestClickLogDrift checks the drifted distribution: with DriftEvery set,
// the hot region migrates — segment k of the log is hottest at region
// (0 + k) — while the undrifted generator keeps region 0 hottest
// throughout. It also pins Iter to Generate.
func TestClickLogDrift(t *testing.T) {
	const per = 8000
	gen := ClickLogGen{S: 1.3, Regions: 16, Seed: 7, DriftEvery: per}
	ips := gen.Generate(4 * per)

	hottest := func(seg []uint32) int {
		counts := CountPerRegion(seg, 16)
		best := 0
		for r, c := range counts {
			if c > counts[best] {
				best = r
			}
		}
		return best
	}
	for k := 0; k < 4; k++ {
		seg := ips[k*per : (k+1)*per]
		if got := hottest(seg); got != k {
			t.Fatalf("segment %d: hottest region %d, want %d (hot region must migrate)", k, got, k)
		}
		// Zipf(1.3) concentrates ≈38%% of a 16-region stream on rank 0;
		// require a clear majority signal, not just argmax noise.
		counts := CountPerRegion(seg, 16)
		if frac := float64(counts[k]) / per; frac < 0.25 {
			t.Fatalf("segment %d: hot region holds %.2f of records, want ≥0.25", k, frac)
		}
	}

	// Stationary control: same config without drift stays hot at region 0.
	still := ClickLogGen{S: 1.3, Regions: 16, Seed: 7}
	sips := still.Generate(4 * per)
	for k := 0; k < 4; k++ {
		if got := hottest(sips[k*per : (k+1)*per]); got != 0 {
			t.Fatalf("undrifted segment %d: hottest region %d, want 0", k, got)
		}
	}

	// Iter must reproduce Generate element-wise.
	it := gen.Iter()
	for i, want := range ips[:1000] {
		if got := it.Next(); got != want {
			t.Fatalf("Iter diverges from Generate at %d: %d != %d", i, got, want)
		}
	}
}

func TestClickLogDeterministic(t *testing.T) {
	g1 := ClickLogGen{S: 0.5, Seed: 99}
	g2 := ClickLogGen{S: 0.5, Seed: 99}
	a, b := g1.Generate(1000), g2.Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestRegionNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < DefaultRegions; i++ {
		name := RegionName(i)
		if name == "" || seen[name] {
			t.Fatalf("region name %d: %q duplicate or empty", i, name)
		}
		seen[name] = true
	}
	if RegionName(1000) == "" {
		t.Fatal("out-of-range region must still name")
	}
}

func TestRelationGenAndJoinCount(t *testing.T) {
	rg := RelationGen{Keys: 10, S: 0, Seed: 5}
	r := rg.Generate(100)
	sg := RelationGen{Keys: 10, S: 1, Seed: 6}
	s := sg.Generate(1000)
	got := JoinCount(r, s)
	// Oracle by brute force.
	var want int64
	for _, a := range r {
		for _, b := range s {
			if a.Key == b.Key {
				want++
			}
		}
	}
	if got != want {
		t.Fatalf("JoinCount = %d, brute force %d", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate test: no matches")
	}
}

func TestRMATProperties(t *testing.T) {
	gen := RMATGen{Scale: 10, EdgeFactor: 8, Seed: 3}
	edges := gen.Generate()
	if int64(len(edges)) != gen.NumEdges() {
		t.Fatalf("edges %d, want %d", len(edges), gen.NumEdges())
	}
	n := gen.NumVertices()
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			t.Fatalf("edge %v out of range", e)
		}
	}
	deg := OutDegrees(edges, n)
	var sum int64
	for _, d := range deg {
		sum += d
	}
	if sum != gen.NumEdges() {
		t.Fatalf("degree sum %d", sum)
	}
	// Power-law: the max degree must far exceed the mean (skew exists).
	mean := float64(sum) / float64(n)
	if float64(MaxDegree(deg)) < 5*mean {
		t.Errorf("max degree %d vs mean %.1f: not skewed enough for R-MAT",
			MaxDegree(deg), mean)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := (&RMATGen{Scale: 8, EdgeFactor: 4, Seed: 11}).Generate()
	b := (&RMATGen{Scale: 8, EdgeFactor: 4, Seed: 11}).Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("R-MAT generation not deterministic")
		}
	}
}

func TestPartitionWeightsViaSampler(t *testing.T) {
	// Sampler over region weights must hit every region eventually at s=0.
	s := NewSampler(RegionWeights(16, 0), 1)
	seen := make([]bool, 16)
	for i := 0; i < 10000; i++ {
		seen[s.Next()] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("region %d never sampled", i)
		}
	}
}
