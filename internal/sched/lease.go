package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Leases implements weighted fair-share slot leasing between concurrent
// jobs. Every worker slot a job claims — original task workers, clones,
// speculative re-executions, post-split partition consumers — is billed
// to its lease. The allocator is work-conserving: a job may run beyond
// its fair share while no other job is starved (starved = has unclaimed
// ready blueprints and runs below its share), but the moment a neighbor
// starves, over-share jobs stop acquiring and become preemption targets.
type Leases struct {
	mu       sync.Mutex
	disabled bool
	total    int
	jobs     map[string]*lease
	o        *obs.Observer // nil-safe; set once by Bind before use
}

type lease struct {
	weight  int
	running int // slots currently claimed cluster-wide
	demand  int // unclaimed ready blueprints (sampled)
	share   int // current fair-share allotment

	// cached per-job metric handles (nil-safe no-ops when unobserved)
	mGrants  *obs.Counter
	mDenials *obs.Counter
}

// NewLeases returns a lease allocator. disabled puts it in pass-through
// mode: Acquire always succeeds and Plan never preempts (the
// unarbitrated baseline).
func NewLeases(disabled bool) *Leases {
	return &Leases{disabled: disabled, jobs: make(map[string]*lease)}
}

// FairShare reports whether fair-share arbitration is active.
func (l *Leases) FairShare() bool { return !l.disabled }

// Bind connects the allocator to an observer (call before jobs are
// added; nil leaves it unobserved).
func (l *Leases) Bind(o *obs.Observer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o = o
}

// SetTotal updates the cluster-wide slot count (compute-node churn).
func (l *Leases) SetTotal(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total = n
	l.reshare()
}

// Add registers a job with the given weight.
func (l *Leases) Add(job string, weight int) {
	if weight <= 0 {
		weight = 1
	}
	l.mu.Lock()
	j := &lease{
		weight:   weight,
		mGrants:  l.o.Counter("hurricane_sched_lease_grants_total", "job", job),
		mDenials: l.o.Counter("hurricane_sched_lease_denials_total", "job", job),
	}
	l.jobs[job] = j
	l.reshare()
	share := j.share
	o := l.o
	l.mu.Unlock()
	o.Emit(obs.EvLeaseGrant, job, job, fmt.Sprintf("weight=%d share=%d", weight, share))
}

// Remove unregisters a job (completion). Its claimed slots drain through
// Release as the workers exit.
func (l *Leases) Remove(job string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.jobs, job)
	l.reshare()
}

// SetDemand records a job's sampled demand: the number of ready
// blueprints no node has claimed yet.
func (l *Leases) SetDemand(job string, pending int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j := l.jobs[job]; j != nil {
		j.demand = pending
	}
}

// reshare recomputes fair shares: floor(total · w/W) per job, remainder
// distributed by largest fractional part (ties by job id), minimum 1 so
// every job can always make progress. Called with l.mu held.
func (l *Leases) reshare() {
	if len(l.jobs) == 0 {
		return
	}
	ids := make([]string, 0, len(l.jobs))
	totalW := 0
	for id, j := range l.jobs {
		ids = append(ids, id)
		totalW += j.weight
	}
	sort.Strings(ids)
	type frac struct {
		id  string
		rem int // numerator of the fractional part (total·w mod W)
	}
	fracs := make([]frac, 0, len(ids))
	assigned := 0
	for _, id := range ids {
		j := l.jobs[id]
		j.share = l.total * j.weight / totalW
		assigned += j.share
		fracs = append(fracs, frac{id, l.total * j.weight % totalW})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for i := 0; i < l.total-assigned && i < len(fracs); i++ {
		l.jobs[fracs[i].id].share++
	}
	for _, j := range l.jobs {
		if j.share < 1 {
			j.share = 1
		}
	}
}

// Acquire asks to bill one more slot to the job. Within the job's share
// it always succeeds; beyond it, borrowing is allowed only while no
// other job is starved. The caller must Release the slot exactly once
// when the worker exits (or when no blueprint was claimed after all).
func (l *Leases) Acquire(job string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	j := l.jobs[job]
	if j == nil {
		return false // unknown (already completed) job: nothing to claim for
	}
	if l.disabled || j.running < j.share || !l.anyStarvedLocked(job) {
		j.running++
		j.mGrants.Inc()
		return true
	}
	j.mDenials.Inc()
	return false
}

// Release returns one billed slot.
func (l *Leases) Release(job string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j := l.jobs[job]; j != nil && j.running > 0 {
		j.running--
	}
}

// anyStarvedLocked reports whether any job other than skip has demand it
// cannot place within its fair share.
func (l *Leases) anyStarvedLocked(skip string) bool {
	for id, j := range l.jobs {
		if id != skip && j.demand > 0 && j.running < j.share {
			return true
		}
	}
	return false
}

// Running reports the slots currently billed to the job.
func (l *Leases) Running(job string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j := l.jobs[job]; j != nil {
		return j.running
	}
	return 0
}

// Share reports the job's current fair-share allotment.
func (l *Leases) Share(job string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if j := l.jobs[job]; j != nil {
		return j.share
	}
	return 0
}

// Priorities snapshots the claim order for a set of jobs in one lock
// acquisition: lower value = claim first (lowest running-to-share
// ratio, so freed slots flow to whoever is furthest below fair share).
// Unknown (completed) jobs sort last.
func (l *Leases) Priorities(jobs []string) map[string]float64 {
	out := make(map[string]float64, len(jobs))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, job := range jobs {
		j := l.jobs[job]
		if j == nil {
			out[job] = 1 << 20
			continue
		}
		share := j.share
		if share < 1 {
			share = 1
		}
		out[job] = float64(j.running) / float64(share)
	}
	return out
}

// CloneBudget caps a job's mitigation budget (extra clone workers this
// control round) by its lease: with a starved neighbor the job may only
// clone up to its fair share; otherwise the physical free-slot count
// rules, keeping the allocator work-conserving.
func (l *Leases) CloneBudget(job string, free int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	j := l.jobs[job]
	if j == nil {
		return 0
	}
	if l.disabled || !l.anyStarvedLocked(job) {
		return free
	}
	headroom := j.share - j.running
	if headroom < 0 {
		headroom = 0
	}
	if headroom < free {
		return headroom
	}
	return free
}

// Plan computes the preemption round: for every starved job's unmet
// deficit, over-share jobs are asked to yield clone workers (number per
// job, deterministic over sorted ids). The caller asks each named job's
// master to yield; the master yields at most what is safely yieldable.
func (l *Leases) Plan() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled || len(l.jobs) < 2 {
		return nil
	}
	ids := make([]string, 0, len(l.jobs))
	for id := range l.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	deficit := 0
	for _, id := range ids {
		j := l.jobs[id]
		if j.demand > 0 && j.running < j.share {
			want := j.share - j.running
			if j.demand < want {
				want = j.demand
			}
			deficit += want
		}
	}
	if deficit == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, id := range ids {
		if deficit == 0 {
			break
		}
		j := l.jobs[id]
		over := j.running - j.share
		if over <= 0 {
			continue
		}
		n := over
		if n > deficit {
			n = deficit
		}
		out[id] = n
		deficit -= n
	}
	return out
}
