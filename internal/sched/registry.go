package sched

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Registry is the job registry: it admits submissions, enforces the
// concurrency limit, queues the overflow, and guarantees that no two
// live jobs can ever touch the same physical bag.
type Registry struct {
	mu   sync.Mutex
	cfg  Config
	jobs map[string]*regEntry
	// queue holds queued job ids in submission order.
	queue   []string
	running int

	// cached metric handles (nil-safe no-ops when unobserved)
	mSubmitted *obs.Counter
	mQueued    *obs.Counter
	mDepth     *obs.Gauge
	mRunning   *obs.Gauge
}

type regEntry struct {
	claims NameClaims
	weight int
	state  State
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	cfg.Fill()
	return &Registry{cfg: cfg, jobs: make(map[string]*regEntry)}
}

// Bind connects the registry to an observer (call before submissions;
// nil leaves it unobserved).
func (r *Registry) Bind(o *obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mSubmitted = o.Counter("hurricane_sched_jobs_submitted_total")
	r.mQueued = o.Counter("hurricane_sched_jobs_queued_total")
	r.mDepth = o.Gauge("hurricane_sched_queue_depth")
	r.mRunning = o.Gauge("hurricane_sched_jobs_running")
}

// Submit validates and registers a job. It returns start=true when the
// job may begin executing immediately, start=false when it was queued
// behind the concurrency limit. Submission fails on a duplicate id, a
// bag-name collision (within the job's own claims or against any live
// job's), or a full queue.
//
// A finished job's claims remain registered until Release, so a later
// submission reusing its bag names fails loudly instead of silently
// reading the predecessor's leftover data.
func (r *Registry) Submit(id string, claims NameClaims, weight int) (start bool, err error) {
	if id == "" {
		return false, fmt.Errorf("sched: job with empty name")
	}
	if weight <= 0 {
		weight = r.cfg.DefaultWeight
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.jobs[id]; dup {
		return false, fmt.Errorf("sched: job %q already exists", id)
	}
	if msg, bad := claims.SelfConflict(); bad {
		return false, fmt.Errorf("sched: job %q: %s", id, msg)
	}
	for other, e := range r.jobs {
		if msg, bad := claims.Conflict(e.claims); bad {
			return false, fmt.Errorf("sched: job %q vs job %q: %s", id, other, msg)
		}
	}
	e := &regEntry{claims: claims, weight: weight}
	if r.cfg.MaxConcurrent > 0 && r.running >= r.cfg.MaxConcurrent {
		if r.cfg.MaxQueued > 0 && len(r.queue) >= r.cfg.MaxQueued {
			return false, fmt.Errorf("sched: job %q rejected: %d running, %d queued (limits %d/%d)",
				id, r.running, len(r.queue), r.cfg.MaxConcurrent, r.cfg.MaxQueued)
		}
		e.state = StateQueued
		r.jobs[id] = e
		r.queue = append(r.queue, id)
		r.mSubmitted.Inc()
		r.mQueued.Inc()
		r.mDepth.Set(int64(len(r.queue)))
		return false, nil
	}
	e.state = StateRunning
	r.jobs[id] = e
	r.running++
	r.mSubmitted.Inc()
	r.mRunning.Set(int64(r.running))
	return true, nil
}

// Finish records a running job's completion and returns the queued job
// ids (in submission order) that the freed concurrency slot admits; the
// caller must start them. The job's claims stay registered.
func (r *Registry) Finish(id string, failed bool) (admit []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.jobs[id]
	if e == nil || e.state != StateRunning {
		return nil
	}
	if failed {
		e.state = StateFailed
	} else {
		e.state = StateDone
	}
	r.running--
	for len(r.queue) > 0 && (r.cfg.MaxConcurrent == 0 || r.running < r.cfg.MaxConcurrent) {
		next := r.queue[0]
		r.queue = r.queue[1:]
		ne := r.jobs[next]
		if ne == nil || ne.state != StateQueued {
			continue
		}
		ne.state = StateRunning
		r.running++
		admit = append(admit, next)
	}
	r.mDepth.Set(int64(len(r.queue)))
	r.mRunning.Set(int64(r.running))
	return admit
}

// Release drops a finished job's registration and name claims (after the
// caller discarded or deliberately retained its bags).
func (r *Registry) Release(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.jobs[id]; e != nil && e.state != StateRunning && e.state != StateQueued {
		delete(r.jobs, id)
	}
}

// State reports a job's lifecycle state.
func (r *Registry) State(id string) (State, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.jobs[id]
	if !ok {
		return 0, false
	}
	return e.state, true
}

// Weight reports a job's fair-share weight.
func (r *Registry) Weight(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.jobs[id]; e != nil {
		return e.weight
	}
	return 0
}
