package sched

import (
	"strings"
	"testing"
)

func TestClaimsConflicts(t *testing.T) {
	a := NameClaims{
		Exact:   []string{"a/in", "a/out", "a!ready"},
		Derived: []string{"a/out~p"},
	}
	b := NameClaims{
		Exact:   []string{"b/in", "b/out", "b!ready"},
		Derived: []string{"b/out~p"},
	}
	if msg, bad := a.Conflict(b); bad {
		t.Fatalf("disjoint claims conflict: %s", msg)
	}

	// Exact/exact overlap.
	c := NameClaims{Exact: []string{"a/out"}}
	if _, bad := a.Conflict(c); !bad {
		t.Fatal("shared exact bag not detected")
	}
	// Exact caught by the other job's derived-name stem.
	d := NameClaims{Exact: []string{"a/out~p3@e0"}}
	if _, bad := a.Conflict(d); !bad {
		t.Fatal("partial-bag name in foreign derived space not detected")
	}
	if _, bad := d.Conflict(a); !bad {
		t.Fatal("derived conflict must be symmetric")
	}
	// A name extending the stem with a non-digit is NOT derived: legal.
	e := NameClaims{Exact: []string{"a/out~partial"}}
	if msg, bad := a.Conflict(e); bad {
		t.Fatalf("non-digit stem extension wrongly flagged: %s", msg)
	}
	// Nested derived stems overlap.
	f := NameClaims{Derived: []string{"a/out~p5"}}
	if _, bad := a.Conflict(f); !bad {
		t.Fatal("nested derived stems not detected")
	}
	// A namespace prefix claim swallows everything under it.
	ns := NameClaims{Prefix: []string{"a/"}}
	if _, bad := ns.Conflict(a); !bad {
		t.Fatal("exact names under a foreign namespace not detected")
	}
	if _, bad := a.Conflict(ns); !bad {
		t.Fatal("namespace conflict must be symmetric")
	}
}

func TestClaimsSelfConflict(t *testing.T) {
	// Declaring a partitioned bag "x" (derived stems x.p / x.h)
	// alongside a plain bag "x.p0" shadows the derived partition names.
	c := NameClaims{Exact: []string{"x", "x.p0"}, Derived: []string{"x.p", "x.h"}}
	msg, bad := c.SelfConflict()
	if !bad || !strings.Contains(msg, "x.p0") {
		t.Fatalf("self conflict not detected: %q %v", msg, bad)
	}
	// "x.part2" extends the stem with a letter, not a digit: legal
	// (pre-existing apps use such sibling names freely).
	ok := NameClaims{Exact: []string{"x", "x.part2", "x.hits"}, Derived: []string{"x.p", "x.h"}}
	if msg, bad := ok.SelfConflict(); bad {
		t.Fatalf("clean claims flagged: %s", msg)
	}
}

func TestRegistryAdmissionAndQueue(t *testing.T) {
	r := NewRegistry(Config{MaxConcurrent: 1, MaxQueued: 1})
	start, err := r.Submit("a", NameClaims{Exact: []string{"a/x"}}, 0)
	if err != nil || !start {
		t.Fatalf("first submit: start=%v err=%v", start, err)
	}
	start, err = r.Submit("b", NameClaims{Exact: []string{"b/x"}}, 0)
	if err != nil || start {
		t.Fatalf("second submit should queue: start=%v err=%v", start, err)
	}
	if st, _ := r.State("b"); st != StateQueued {
		t.Fatalf("state(b) = %v, want queued", st)
	}
	// Queue full.
	if _, err := r.Submit("c", NameClaims{Exact: []string{"c/x"}}, 0); err == nil {
		t.Fatal("third submit should be rejected (queue full)")
	}
	// Duplicate id.
	if _, err := r.Submit("a", NameClaims{Exact: []string{"other"}}, 0); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Collision with a live job.
	if _, err := r.Submit("d", NameClaims{Exact: []string{"a/x"}}, 0); err == nil {
		t.Fatal("bag collision accepted")
	}
	// Completion admits the queued job.
	admit := r.Finish("a", false)
	if len(admit) != 1 || admit[0] != "b" {
		t.Fatalf("admit = %v, want [b]", admit)
	}
	if st, _ := r.State("b"); st != StateRunning {
		t.Fatalf("state(b) = %v, want running", st)
	}
	// A finished job's claims persist until released.
	if _, err := r.Submit("e", NameClaims{Exact: []string{"a/x"}}, 0); err == nil {
		t.Fatal("claims of finished job should still conflict")
	}
	r.Release("a")
	if start, err := r.Submit("e", NameClaims{Exact: []string{"a/x"}}, 0); err != nil || start {
		t.Fatalf("after release: start=%v err=%v (want queued behind b)", start, err)
	}
}

func TestLeaseShares(t *testing.T) {
	l := NewLeases(false)
	l.SetTotal(8)
	l.Add("a", 1)
	l.Add("b", 1)
	if sa, sb := l.Share("a"), l.Share("b"); sa != 4 || sb != 4 {
		t.Fatalf("equal-weight shares = %d/%d, want 4/4", sa, sb)
	}
	l.Add("c", 2)
	// W=4, total 8: a=2, b=2, c=4.
	if sa, sb, sc := l.Share("a"), l.Share("b"), l.Share("c"); sa != 2 || sb != 2 || sc != 4 {
		t.Fatalf("weighted shares = %d/%d/%d, want 2/2/4", sa, sb, sc)
	}
	l.Remove("c")
	if sa := l.Share("a"); sa != 4 {
		t.Fatalf("share after removal = %d, want 4", sa)
	}
	// Shares never drop below 1 even when jobs outnumber slots.
	l.SetTotal(1)
	if sa, sb := l.Share("a"), l.Share("b"); sa < 1 || sb < 1 {
		t.Fatalf("minimum share violated: %d/%d", sa, sb)
	}
}

func TestLeaseBorrowAndStarve(t *testing.T) {
	l := NewLeases(false)
	l.SetTotal(4)
	l.Add("a", 1)
	l.Add("b", 1)
	// Job a may borrow the whole cluster while b shows no demand.
	for i := 0; i < 4; i++ {
		if !l.Acquire("a") {
			t.Fatalf("work-conserving acquire %d denied", i)
		}
	}
	if l.Running("a") != 4 {
		t.Fatalf("running(a) = %d, want 4", l.Running("a"))
	}
	// b becomes starved: a (over share) may not acquire further...
	l.SetDemand("b", 3)
	if l.Acquire("a") {
		t.Fatal("over-share acquire allowed with starved neighbor")
	}
	// ...but b itself may.
	if !l.Acquire("b") {
		t.Fatal("starved job denied its own share")
	}
	// a's clone budget collapses to zero; b — with no starved neighbor of
	// its own — keeps the full free-slot budget (work conservation).
	if g := l.CloneBudget("a", 3); g != 0 {
		t.Fatalf("clone budget(a) = %d, want 0", g)
	}
	if g := l.CloneBudget("b", 3); g != 3 {
		t.Fatalf("clone budget(b) = %d, want 3", g)
	}
	// Preemption plan: b is short one slot, a is two over share.
	plan := l.Plan()
	if plan["a"] != 1 {
		t.Fatalf("plan = %v, want a:1", plan)
	}
	// Releases drain a back to its share; no more preemption needed.
	l.Release("a")
	l.Release("a")
	l.SetDemand("b", 0)
	if plan := l.Plan(); len(plan) != 0 {
		t.Fatalf("plan with no demand = %v, want empty", plan)
	}
}

func TestLeaseDisabledPassThrough(t *testing.T) {
	l := NewLeases(true)
	l.SetTotal(2)
	l.Add("a", 1)
	l.Add("b", 1)
	l.SetDemand("b", 10)
	for i := 0; i < 5; i++ {
		if !l.Acquire("a") {
			t.Fatal("disabled leases must never gate claims")
		}
	}
	if plan := l.Plan(); plan != nil {
		t.Fatalf("disabled leases must not preempt: %v", plan)
	}
	if g := l.CloneBudget("a", 7); g != 7 {
		t.Fatalf("disabled clone budget = %d, want 7", g)
	}
}

func TestLeasePlanDeficitCappedByDemand(t *testing.T) {
	l := NewLeases(false)
	l.SetTotal(8)
	l.Add("a", 1)
	l.Add("b", 1)
	for i := 0; i < 8; i++ {
		l.Acquire("a")
	}
	// b wants only one slot although its share is 4: yield just one.
	l.SetDemand("b", 1)
	if plan := l.Plan(); plan["a"] != 1 {
		t.Fatalf("plan = %v, want a:1 (deficit capped by demand)", plan)
	}
}
