package sched

import (
	"fmt"
	"strings"
)

// NameClaims is the set of physical bag names a job may touch over its
// lifetime: the exact names it declares (data bags, work bags, partition
// control bags), subtree claims covering a whole namespace, and derived
// claims covering names generated at runtime (physical partition bags
// "<bag>.p<i>" and their re-hash splits, isolated heavy-hitter bags
// "<bag>.h<i>", clone partial bags "<out>~p<w>@e<n>" — always the stem
// followed by a decimal digit).
//
// Two jobs whose claims overlap would silently steal each other's chunks
// — the bag substrate's exactly-once guarantee is per physical bag, not
// per job — so the registry rejects such a submission with a clear error
// instead.
type NameClaims struct {
	// Exact bag names the job owns.
	Exact []string
	// Prefix claims: the job owns every bag name starting with one of
	// these prefixes (a namespaced job's "<prefix>/" subtree, which its
	// Discard sweeps in full).
	Prefix []string
	// Derived claims: the job owns every bag name consisting of one of
	// these stems immediately followed by a decimal digit. Narrower than
	// a Prefix claim on purpose: a partitioned bag "x" derives "x.p3",
	// "x.p3.s1", "x.h0" — but a sibling bag literally named "x.part2"
	// is legal and must not be rejected.
	Derived []string
}

// derivedMatch reports whether name lies in stem's derived-name space:
// the stem followed immediately by a decimal digit.
func derivedMatch(stem, name string) bool {
	return len(name) > len(stem) && strings.HasPrefix(name, stem) &&
		name[len(stem)] >= '0' && name[len(stem)] <= '9'
}

// Conflict reports the first physical-name overlap between two claim
// sets.
func (c NameClaims) Conflict(o NameClaims) (string, bool) {
	if msg, bad := c.conflictOneWay(o); bad {
		return msg, true
	}
	return o.conflictOneWay(c)
}

// conflictOneWay checks c's exact names against all of o's claims, and
// c's broad claims against each other's (the broad-vs-broad checks are
// symmetric, so running them in one direction suffices; Conflict runs
// both directions for the exact-vs-broad cases).
func (c NameClaims) conflictOneWay(o NameClaims) (string, bool) {
	for _, e := range c.Exact {
		for _, oe := range o.Exact {
			if e == oe {
				return fmt.Sprintf("bag %q claimed by both jobs", e), true
			}
		}
		for _, op := range o.Prefix {
			if strings.HasPrefix(e, op) {
				return fmt.Sprintf("bag %q lies in the claimed namespace %q*", e, op), true
			}
		}
		for _, od := range o.Derived {
			if derivedMatch(od, e) {
				return fmt.Sprintf("bag %q collides with derived-name stem %q<digit>", e, od), true
			}
		}
	}
	for _, p := range c.Prefix {
		for _, op := range o.Prefix {
			if strings.HasPrefix(p, op) || strings.HasPrefix(op, p) {
				return fmt.Sprintf("claimed namespaces %q* and %q* overlap", p, op), true
			}
		}
		for _, od := range o.Derived {
			// Overlap iff some "<stem><digit>..." name can start with p:
			// the stem extends into the subtree, or p itself lies in the
			// stem's derived space.
			if strings.HasPrefix(od, p) || derivedMatch(od, p) {
				return fmt.Sprintf("derived-name stem %q<digit> overlaps claimed namespace %q*", od, p), true
			}
		}
	}
	for _, d := range c.Derived {
		for _, od := range o.Derived {
			if d == od || derivedMatch(d, od) || derivedMatch(od, d) {
				return fmt.Sprintf("derived-name stems %q<digit> and %q<digit> overlap", d, od), true
			}
		}
	}
	return "", false
}

// SelfConflict reports an overlap within one job's own claims: a
// declared bag name that a sibling bag's derived names would shadow
// (for example declaring both a partitioned bag "x" and a plain bag
// "x.p0" — while "x.part2" is fine). Exact duplicates are not checked
// here — the application graph validator already rejects redeclared
// bags.
func (c NameClaims) SelfConflict() (string, bool) {
	for _, e := range c.Exact {
		for _, p := range c.Prefix {
			if strings.HasPrefix(e, p) {
				return fmt.Sprintf("bag %q lies in the job's own namespace claim %q*", e, p), true
			}
		}
		for _, d := range c.Derived {
			if derivedMatch(d, e) {
				return fmt.Sprintf("bag %q collides with the job's own derived-name stem %q<digit>", e, d), true
			}
		}
	}
	for i, d := range c.Derived {
		for _, od := range c.Derived[i+1:] {
			if d == od || derivedMatch(d, od) || derivedMatch(od, d) {
				return fmt.Sprintf("derived-name stems %q<digit> and %q<digit> overlap", d, od), true
			}
		}
	}
	return "", false
}
