// Package sched is Hurricane's multi-job scheduler control plane: the
// pure decision logic that lets one cluster admit, queue, and execute
// many independent DAG jobs concurrently.
//
// The paper executes exactly one application per cluster; its skew
// mitigations (cloning, speculative re-execution, partition splitting)
// therefore compete only with the job's own tasks. On shared hardware a
// single skewed job's clones would monopolize every worker slot, so the
// scheduler arbitrates *across* jobs:
//
//   - a Registry admits jobs, validates that their physical bag names
//     (including derived partition, control, and partial bags) cannot
//     collide with any live job's, and queues submissions beyond the
//     concurrency limit;
//   - Leases implements weighted fair-share slot leasing: every claimed
//     worker slot — original tasks, clones, speculative re-executions,
//     post-split consumers — is billed to the owning job's lease. A job
//     may borrow beyond its share while no neighbor is starved, and a
//     starved neighbor triggers both claim gating (over-share jobs stop
//     claiming) and preemption (the over-share job's clone workers are
//     asked to yield at their next chunk boundary).
//
// Like internal/ctrl, this package deliberately does not import
// internal/core: all state it needs is pushed in (slot totals, running
// counts, demand probes), and all state it changes is returned as
// decisions (admit lists, claim verdicts, preemption plans). That keeps
// the fair-share math unit-testable with no cluster behind it.
package sched

import "time"

// Config tunes the multi-job scheduler.
type Config struct {
	// MaxConcurrent caps the number of jobs running at once; submissions
	// beyond it are queued. 0 means unlimited (every submission starts
	// immediately).
	MaxConcurrent int
	// MaxQueued caps the submission queue when MaxConcurrent is in
	// effect; a submission past both limits is rejected. 0 = unlimited.
	MaxQueued int
	// DefaultWeight is the fair-share weight assigned to jobs that do
	// not set one (default 1).
	DefaultWeight int
	// DisableFairShare turns off slot leasing and preemption: compute
	// nodes claim blueprints from any job's ready bag as slots free up
	// (the unarbitrated baseline the sched benchmark measures against).
	DisableFairShare bool
	// Interval is the cadence of the cluster's scheduling pass (demand
	// sampling and preemption planning). Default 20ms.
	Interval time.Duration
}

// Fill applies defaults.
func (c *Config) Fill() {
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
}

// State is a job's lifecycle state in the registry.
type State int

const (
	// StateQueued: admitted but waiting for a concurrency slot.
	StateQueued State = iota
	// StateRunning: executing on the cluster.
	StateRunning
	// StateDone: completed successfully. Name claims are retained until
	// released so a later job cannot silently collide with its bags.
	StateDone
	// StateFailed: completed with an error.
	StateFailed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}
