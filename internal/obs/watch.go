package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The anomaly layer on top of the Recorder: declarative rules evaluated
// against every SampleView. A rule describes a condition over one series
// (threshold on a value, rate-of-change of a counter) or a pair of
// series (ratio), matched by metric base name so one rule covers every
// label-set of a metric. A rule that holds for RuleFor consecutive
// samples raises: it emits an EvAlertRaised trace event (decision-class,
// so the alert survives ring eviction alongside the mitigation decisions
// it points at) and bumps hurricane_watch_alerts_total{rule}. The rule
// stays "firing" until a sample no longer satisfies it, so a sustained
// condition is one alert, not one per tick.

// RuleKind selects how a Rule's condition is evaluated.
type RuleKind string

const (
	// KindThreshold fires when a series' sampled value crosses the
	// threshold.
	KindThreshold RuleKind = "threshold"
	// KindRate fires when a counter series' derived per-second rate
	// crosses the threshold.
	KindRate RuleKind = "rate"
	// KindRatio fires when Num/Den crosses the threshold. Num and Den
	// are metric base names joined per label-set; OfRates divides the
	// derived rates instead of the raw values.
	KindRatio RuleKind = "ratio"
)

// Rule is one declarative watchdog condition.
type Rule struct {
	// Name identifies the rule in alerts, traces, and metrics labels.
	Name string `json:"name"`
	Kind RuleKind `json:"kind"`
	// Series is the metric base name (no labels) a threshold/rate rule
	// watches; every label-set of the metric is evaluated independently.
	Series string `json:"series,omitempty"`
	// Num and Den are the metric base names of a ratio rule, joined on
	// identical label suffix (p99/p50 of the same histogram, denials vs
	// grants of the same job).
	Num string `json:"num,omitempty"`
	Den string `json:"den,omitempty"`
	// OfRates makes a ratio rule divide derived per-second rates rather
	// than raw sampled values.
	OfRates bool `json:"of_rates,omitempty"`
	// Threshold is the boundary; the condition holds when the evaluated
	// quantity is >= Threshold.
	Threshold float64 `json:"threshold"`
	// DenMin gates a ratio rule: the denominator must be >= DenMin or
	// the sample is skipped (keeps p99/p50 quiet on empty histograms and
	// rate ratios quiet on idle clusters).
	DenMin float64 `json:"den_min,omitempty"`
	// NumMin gates any rule: the numerator (or the watched value) must
	// be >= NumMin or the sample is skipped.
	NumMin float64 `json:"num_min,omitempty"`
	// For is how many consecutive satisfying samples arm the alert
	// (<= 1 fires on the first).
	For int `json:"for,omitempty"`
	// Help is a one-line operator-facing description.
	Help string `json:"help,omitempty"`
}

// DefaultRules returns the engine's built-in watchdogs. Thresholds are
// deliberately conservative — these flag conditions the control plane
// should already be mitigating (heat imbalance, stragglers) or that mean
// telemetry itself is degrading (trace drops, slow storage ops).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "shuffle-heat-imbalance", Kind: KindThreshold,
			Series:    "hurricane_skew_partition_top_share",
			Threshold: 0.5, NumMin: 0.01, For: 2,
			Help: "one partition of a shuffle edge holds >=50% of the edge's records",
		},
		{
			Name: "straggler-task-time", Kind: KindRatio,
			Num: "hurricane_core_task_span_ns_p99", Den: "hurricane_core_task_span_ns_p50",
			Threshold: 4, DenMin: 1e5, For: 2,
			Help: "p99 task wall time is >=4x p50 — stragglers the clone/split policies should be absorbing",
		},
		{
			Name: "storage-slow-ops", Kind: KindRate,
			Series:    "hurricane_storage_slow_ops_total",
			Threshold: 5, For: 2,
			Help: "storage ops are exceeding the slow-op threshold at >=5/s",
		},
		{
			Name: "lease-starvation", Kind: KindRatio,
			Num: "hurricane_sched_lease_denials_total", Den: "hurricane_sched_lease_grants_total",
			OfRates: true, Threshold: 2, DenMin: 0.5, NumMin: 1, For: 2,
			Help: "a job's lease denials are outpacing grants >=2x — fair-share starvation",
		},
		{
			Name: "trace-drops", Kind: KindRate,
			Series:    "hurricane_trace_dropped_total",
			Threshold: 50, For: 2,
			Help: "the trace ring is shedding >=50 events/s — raise the ring cap or filter emitters",
		},
	}
}

// Alert is one raised (or historical) alert of a rule on one series
// label-set.
type Alert struct {
	Rule   string  `json:"rule"`
	Series string  `json:"series"`
	Value  float64 `json:"value"`
	// Threshold echoes the rule's boundary at raise time.
	Threshold float64 `json:"threshold"`
	// RaisedUs is the recorder-clock sample time that armed the alert.
	RaisedUs int64 `json:"raised_us"`
	// ResolvedUs is when the condition stopped holding (0 while firing).
	ResolvedUs int64 `json:"resolved_us,omitempty"`
}

// alertState tracks one (rule, series) pair across samples.
type alertState struct {
	consecutive int
	firing      bool
	count       uint64
	lastValue   float64
	lastUs      int64
}

// maxAlertHistory bounds the retained raised-alert log (oldest dropped).
const maxAlertHistory = 256

// maxWatchStates bounds the per-(rule,series) state map — runaway label
// cardinality must not grow the watchdog without bound.
const maxWatchStates = 4096

// Watch evaluates rules against sample views. A nil *Watch is a no-op.
// Eval is called from the sampler goroutine; readers (HTTP) are safe
// concurrently.
type Watch struct {
	o     *Observer
	rules []Rule

	mu      sync.Mutex
	states  map[string]*alertState // "rule|series"
	history []Alert
	firing  map[string]*Alert // "rule|series" -> entry in history
	evals   uint64
	ctrs    map[string]*Counter // per-rule hurricane_watch_alerts_total
}

// NewWatch returns a watchdog reporting through o (trace event + alert
// counter; o may be nil for a metrics-less watchdog) evaluating the given
// rules (nil selects DefaultRules).
func NewWatch(o *Observer, rules []Rule) *Watch {
	if rules == nil {
		rules = DefaultRules()
	}
	w := &Watch{
		o:      o,
		rules:  rules,
		states: make(map[string]*alertState),
		firing: make(map[string]*Alert),
		ctrs:   make(map[string]*Counter),
	}
	for _, r := range rules {
		w.ctrs[r.Name] = o.Counter("hurricane_watch_alerts_total", "rule", r.Name)
	}
	return w
}

// Rules returns the watchdog's rule set.
func (w *Watch) Rules() []Rule {
	if w == nil {
		return nil
	}
	return w.rules
}

// Evals returns how many sample views were evaluated.
func (w *Watch) Evals() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evals
}

// baseName splits a flattened series key into metric base name and label
// suffix ("{...}" or "").
func baseName(series string) (name, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], series[i:]
	}
	return series, ""
}

// Eval evaluates every rule against one sample view. Call once per
// Sample; a nil view (nil recorder) is a no-op.
func (w *Watch) Eval(view *SampleView) {
	if w == nil || view == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evals++
	for i := range w.rules {
		w.evalRule(&w.rules[i], view)
	}
}

// evalRule evaluates one rule over all matching label-sets of the view.
// Caller holds w.mu.
func (w *Watch) evalRule(r *Rule, view *SampleView) {
	switch r.Kind {
	case KindThreshold, KindRate:
		src := view.Values
		if r.Kind == KindRate {
			src = view.Rates
		}
		for series, v := range src {
			if name, _ := baseName(series); name != r.Series {
				continue
			}
			if v < r.NumMin {
				w.observe(r, series, v, false, view.TUs)
				continue
			}
			w.observe(r, series, v, v >= r.Threshold, view.TUs)
		}
	case KindRatio:
		src := view.Values
		if r.OfRates {
			src = view.Rates
		}
		for series, num := range src {
			name, labels := baseName(series)
			if name != r.Num {
				continue
			}
			den, ok := src[r.Den+labels]
			if !ok || den < r.DenMin || den <= 0 || num < r.NumMin {
				w.observe(r, r.Num+labels, 0, false, view.TUs)
				continue
			}
			ratio := num / den
			w.observe(r, r.Num+labels, ratio, ratio >= r.Threshold, view.TUs)
		}
	}
}

// observe advances one (rule, series) state machine by one sample.
// Caller holds w.mu.
func (w *Watch) observe(r *Rule, series string, v float64, holds bool, tUs int64) {
	key := r.Name + "|" + series
	st := w.states[key]
	if st == nil {
		if len(w.states) >= maxWatchStates {
			return
		}
		st = &alertState{}
		w.states[key] = st
	}
	st.lastValue = v
	st.lastUs = tUs
	if !holds {
		st.consecutive = 0
		if st.firing {
			st.firing = false
			if a := w.firing[key]; a != nil {
				a.ResolvedUs = tUs
				delete(w.firing, key)
			}
		}
		return
	}
	st.consecutive++
	need := r.For
	if need < 1 {
		need = 1
	}
	if st.firing || st.consecutive < need {
		return
	}
	st.firing = true
	st.count++
	alert := Alert{
		Rule: r.Name, Series: series, Value: v,
		Threshold: r.Threshold, RaisedUs: tUs,
	}
	if len(w.history) >= maxAlertHistory {
		w.history = w.history[1:]
	}
	w.history = append(w.history, alert)
	// Appends and shifts move history's backing array; rebuild the
	// firing pointers so resolution writes keep landing in it.
	w.reindexFiring()

	w.ctrs[r.Name].Inc()
	w.o.Emit(EvAlertRaised, "", r.Name,
		fmt.Sprintf("series=%s value=%.4g threshold=%.4g", series, v, r.Threshold))
}

// reindexFiring re-resolves the firing map's pointers into the current
// history backing array after an append or shift. Caller holds w.mu.
func (w *Watch) reindexFiring() {
	for key := range w.firing {
		w.firing[key] = nil
	}
	for i := range w.history {
		a := &w.history[i]
		if a.ResolvedUs == 0 {
			w.firing[a.Rule+"|"+a.Series] = a
		}
	}
	for key, a := range w.firing {
		if a == nil {
			delete(w.firing, key)
		}
	}
}

// RuleState is one (rule, series) pair's current status for /debug/alerts.
type RuleState struct {
	Rule      string  `json:"rule"`
	Series    string  `json:"series"`
	Value     float64 `json:"value"`
	Firing    bool    `json:"firing"`
	Count     uint64  `json:"count"`
	SampledUs int64   `json:"sampled_us"`
}

// Status is the watchdog's full introspection view.
type Status struct {
	Evals  uint64      `json:"evals"`
	Rules  []Rule      `json:"rules"`
	States []RuleState `json:"states"`
	Alerts []Alert     `json:"alerts"`
}

// Snapshot returns the watchdog status: rule set, every evaluated
// (rule, series) state, and the bounded raised-alert history (oldest
// first).
func (w *Watch) Snapshot() Status {
	if w == nil {
		return Status{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Status{Evals: w.evals, Rules: w.rules}
	s.States = make([]RuleState, 0, len(w.states))
	for key, st := range w.states {
		rule, series, _ := strings.Cut(key, "|")
		s.States = append(s.States, RuleState{
			Rule: rule, Series: series, Value: st.lastValue,
			Firing: st.firing, Count: st.count, SampledUs: st.lastUs,
		})
	}
	sort.Slice(s.States, func(a, b int) bool {
		if s.States[a].Rule != s.States[b].Rule {
			return s.States[a].Rule < s.States[b].Rule
		}
		return s.States[a].Series < s.States[b].Series
	})
	s.Alerts = append([]Alert(nil), w.history...)
	return s
}
