package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// HTTP surfaces for the time dimension, mounted by both the cluster
// debug mux (core.DebugHandler) and the standalone storage node's. They
// live here so the two muxes render identically; stdlib only, like
// everything else in obs.

// timeseriesDoc is the /debug/timeseries response shape.
type timeseriesDoc struct {
	NowUs         int64        `json:"now_us"`
	Samples       uint64       `json:"samples"`
	DroppedSeries uint64       `json:"dropped_series,omitempty"`
	Series        []SeriesDump `json:"series"`
}

// TimeseriesHandler serves the recorder's retained history as JSON.
// ?series=a,b filters to series whose key contains any given substring;
// ?since=<t_us> skips points at or before the recorder-clock time (so
// pollers fetch deltas).
func TimeseriesHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var filters []string
		if s := req.URL.Query().Get("series"); s != "" {
			for _, f := range strings.Split(s, ",") {
				if f = strings.TrimSpace(f); f != "" {
					filters = append(filters, f)
				}
			}
		}
		sinceUs := int64(-1)
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			sinceUs = v
		}
		doc := timeseriesDoc{
			NowUs:         rec.NowUs(),
			Samples:       rec.Samples(),
			DroppedSeries: rec.DroppedSeries(),
			Series:        rec.Dump(filters, sinceUs),
		}
		writeJSONTo(w, doc)
	})
}

// AlertsHandler serves the watchdog status (rules, per-series states,
// raised-alert history) as JSON. ?firing=1 restricts the alert list to
// unresolved ones.
func AlertsHandler(watch *Watch) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := watch.Snapshot()
		if req.URL.Query().Get("firing") != "" {
			firing := s.Alerts[:0:0]
			for _, a := range s.Alerts {
				if a.ResolvedUs == 0 {
					firing = append(firing, a)
				}
			}
			s.Alerts = firing
		}
		writeJSONTo(w, s)
	})
}

func writeJSONTo(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DashHandler serves the live dashboard: one self-contained HTML page
// (no external assets, no frameworks) that polls /debug/timeseries and
// /debug/alerts on the same mux and renders inline canvas sparklines
// per series plus the watchdog table. It works identically on the
// cluster mux and the storage-node mux because it only speaks to its
// own origin.
func DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashHTML))
	})
}

const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hurricane dash</title>
<style>
  body { font: 13px/1.4 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 0; background: #101418; color: #d6dde4; }
  header { padding: 10px 16px; background: #161c22; border-bottom: 1px solid #2a333c;
           display: flex; gap: 16px; align-items: baseline; }
  header h1 { font-size: 14px; margin: 0; color: #7fd1b9; }
  header .meta { color: #76818c; }
  header input { background: #0c1013; color: #d6dde4; border: 1px solid #2a333c;
                 padding: 3px 8px; font: inherit; width: 260px; }
  #alerts { padding: 8px 16px; }
  .alert { padding: 3px 8px; margin: 2px 0; border-left: 3px solid #f2555a; background: #1d1416; }
  .alert.resolved { border-left-color: #4a5560; background: #141a1f; color: #8e99a4; }
  .ok { color: #7fd1b9; padding: 3px 0; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(330px, 1fr));
          gap: 10px; padding: 10px 16px 30px; }
  .card { background: #161c22; border: 1px solid #2a333c; padding: 8px 10px; }
  .card .name { color: #9fb4c7; white-space: nowrap; overflow: hidden;
                text-overflow: ellipsis; }
  .card .val { color: #e8c268; }
  canvas { width: 100%; height: 48px; display: block; margin-top: 4px; }
</style>
</head>
<body>
<header>
  <h1>hurricane dash</h1>
  <span class="meta" id="meta">connecting…</span>
  <input id="filter" placeholder="filter series (substring)" value="">
</header>
<div id="alerts"></div>
<div id="grid"></div>
<script>
"use strict";
const grid = document.getElementById("grid");
const alertsBox = document.getElementById("alerts");
const meta = document.getElementById("meta");
const filter = document.getElementById("filter");
const fmt = v => Math.abs(v) >= 1e6 ? (v/1e6).toFixed(2)+"M"
             : Math.abs(v) >= 1e3 ? (v/1e3).toFixed(2)+"k"
             : (Math.abs(v) >= 1 || v === 0 ? v.toFixed(2) : v.toPrecision(3));

function spark(canvas, pts) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth || 300, h = canvas.clientHeight || 48;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  if (pts.length < 2) return;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { if (p.v < lo) lo = p.v; if (p.v > hi) hi = p.v; }
  if (hi === lo) { hi += 1; lo -= 1; }
  const t0 = pts[0].t_us, t1 = pts[pts.length-1].t_us || t0 + 1;
  const x = t => t1 === t0 ? 0 : (t - t0) / (t1 - t0) * (w - 2) + 1;
  const y = v => h - 3 - (v - lo) / (hi - lo) * (h - 6);
  ctx.beginPath();
  pts.forEach((p, i) => i ? ctx.lineTo(x(p.t_us), y(p.v)) : ctx.moveTo(x(p.t_us), y(p.v)));
  ctx.strokeStyle = "#7fd1b9"; ctx.lineWidth = 1.2; ctx.stroke();
}

async function tick() {
  try {
    const q = filter.value.trim();
    const [tsRes, alRes] = await Promise.all([
      fetch("timeseries" + (q ? "?series=" + encodeURIComponent(q) : "")),
      fetch("alerts"),
    ]);
    const ts = await tsRes.json(), al = await alRes.json();
    meta.textContent = ts.samples + " samples · " + (ts.series ? ts.series.length : 0) +
      " series · " + (al.evals || 0) + " rule evals";

    const alerts = (al.alerts || []).slice(-8).reverse();
    alertsBox.innerHTML = alerts.length === 0
      ? '<div class="ok">no alerts raised</div>'
      : alerts.map(a =>
          '<div class="alert' + (a.resolved_us ? " resolved" : "") + '">' +
          a.rule + " · " + a.series + " · value " + fmt(a.value) +
          " ≥ " + fmt(a.threshold) + (a.resolved_us ? " (resolved)" : " (firing)") +
          "</div>").join("");

    const want = new Set();
    for (const s of (ts.series || [])) {
      // Prefer the rate track on counters — the raw monotonic ramp is
      // rarely what you want to look at.
      const pts = (s.counter && s.rate && s.rate.length > 1) ? s.rate : s.points;
      if (!pts || pts.length === 0) continue;
      const id = "c_" + s.name.replace(/[^a-zA-Z0-9]/g, "_");
      want.add(id);
      let card = document.getElementById(id);
      if (!card) {
        card = document.createElement("div");
        card.className = "card"; card.id = id;
        card.innerHTML = '<div class="name"></div><div class="val"></div><canvas></canvas>';
        grid.appendChild(card);
      }
      card.querySelector(".name").textContent = s.name + (s.counter ? " (rate/s)" : "");
      card.querySelector(".name").title = s.name;
      card.querySelector(".val").textContent = fmt(pts[pts.length-1].v);
      spark(card.querySelector("canvas"), pts);
    }
    for (const card of Array.from(grid.children)) {
      if (!want.has(card.id)) card.remove();
    }
  } catch (err) {
    meta.textContent = "poll failed: " + err;
  }
}
tick();
setInterval(tick, 1000);
filter.addEventListener("input", tick);
</script>
</body>
</html>
`
