package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). 64 buckets cover the whole uint64 range, so there is
// never an overflow bucket to reason about.
const histBuckets = 65

// Histogram is a streaming histogram over non-negative integer
// observations (typically nanoseconds or record counts) with
// power-of-two buckets. Observations are two atomic adds; quantiles are
// estimated from the bucket boundaries (error bounded by the 2x bucket
// width). A nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one observation (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) as the geometric
// midpoint of the bucket the q-th observation falls in. Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1) // bucket holds [2^(i-1), 2^i)
			return lo + lo/2
		}
	}
	return 0
}

// metricKind discriminates registry entries for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series: a name, optional label pairs, and
// exactly one of the three handle kinds.
type metric struct {
	name   string
	labels []string // k1, v1, k2, v2, ...
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// series renders the full series name, e.g. `hurricane_core_clones_total{job="q1"}`.
func (m *metric) series() string {
	if len(m.labels) == 0 {
		return m.name
	}
	var b strings.Builder
	b.WriteString(m.name)
	b.WriteByte('{')
	for i := 0; i+1 < len(m.labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", m.labels[i], m.labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named metric series. Registration (Counter/Gauge/
// Histogram) takes a lock and is meant for setup paths; the returned
// handles are lock-free. Registering the same name+labels twice returns
// the same handle, so concurrent per-job setup is safe. A nil *Registry
// is a no-op registry that hands out nil (no-op) handles.
type Registry struct {
	mu      sync.Mutex
	order   []string // series keys in first-registration order
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup finds or creates the series. kind mismatches on an existing
// name are a programming error; the existing handle wins and the caller
// gets a nil handle of the requested kind (no-op) rather than a panic.
func (r *Registry) lookup(name string, kind metricKind, labels []string) *metric {
	m := &metric{name: name, labels: labels, kind: kind}
	key := m.series()
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.metrics[key]; ok {
		return got
	}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter registers (or looks up) a counter series. labels are
// key/value pairs ("job", "q1"). Cache the handle; do not call on a hot
// path.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, labels).c
}

// Gauge registers (or looks up) a gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, labels).g
}

// Histogram registers (or looks up) a histogram series.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, labels).h
}

// snapshotInto appends the series' current values as flat name->value
// entries. Histograms flatten to _count, _sum, and _p50/_p95/_p99.
func (m *metric) snapshotInto(out map[string]float64) {
	switch m.kind {
	case kindCounter:
		out[m.series()] = float64(m.c.Value())
	case kindGauge:
		out[m.series()] = float64(m.g.Value())
	case kindHistogram:
		base := metric{name: m.name + "_count", labels: m.labels}
		out[base.series()] = float64(m.h.Count())
		base.name = m.name + "_sum"
		out[base.series()] = float64(m.h.Sum())
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			base.name = m.name + q.suffix
			out[base.series()] = float64(m.h.Quantile(q.q))
		}
	}
}

// Snapshot returns every series' current value keyed by rendered series
// name. Histograms flatten into _count/_sum/_p50/_p95/_p99 entries.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, key := range r.order {
		r.metrics[key].snapshotInto(out)
	}
	return out
}

// labelValue returns the series' value for a label key ("" if absent).
func (m *metric) labelValue(key string) string {
	for i := 0; i+1 < len(m.labels); i += 2 {
		if m.labels[i] == key {
			return m.labels[i+1]
		}
	}
	return ""
}

// SnapshotFor returns the values of series carrying label key=value,
// plus series that do not carry the label at all (engine-wide globals),
// with the matching label stripped from the rendered keys. This is what
// JobHandle.Metrics uses to narrow the shared registry to one job.
func (r *Registry) SnapshotFor(key, value string) map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sk := range r.order {
		m := r.metrics[sk]
		lv := m.labelValue(key)
		if lv != "" && lv != value {
			continue
		}
		if lv == "" {
			m.snapshotInto(out)
			continue
		}
		stripped := metric{name: m.name, kind: m.kind, c: m.c, g: m.g, h: m.h}
		for i := 0; i+1 < len(m.labels); i += 2 {
			if m.labels[i] != key {
				stripped.labels = append(stripped.labels, m.labels[i], m.labels[i+1])
			}
		}
		stripped.snapshotInto(out)
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format (untyped lines, stable first-registration order; histogram
// series flatten the same way Snapshot does).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	metrics := make([]*metric, len(keys))
	for i, k := range keys {
		metrics[i] = r.metrics[k]
	}
	r.mu.Unlock()
	for _, m := range metrics {
		flat := make(map[string]float64)
		m.snapshotInto(flat)
		names := make([]string, 0, len(flat))
		for k := range flat {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			v := flat[name]
			if v == math.Trunc(v) {
				if _, err := fmt.Fprintf(w, "%s %d\n", name, int64(v)); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", name, v); err != nil {
				return err
			}
		}
	}
	return nil
}
