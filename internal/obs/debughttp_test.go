package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTimeseriesHandler(t *testing.T) {
	rec := NewRecorder(0)
	rec.Append("hurricane_a_ops_total", 1)
	rec.Append("hurricane_a_ops_total", 5)
	rec.Append("hurricane_b_heat", 0.7)

	get := func(url string) timeseriesDoc {
		t.Helper()
		w := httptest.NewRecorder()
		TimeseriesHandler(rec).ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var doc timeseriesDoc
		if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return doc
	}

	doc := get("/debug/timeseries")
	if len(doc.Series) != 2 {
		t.Fatalf("series = %+v, want 2", doc.Series)
	}
	// Sorted by name; the counter carries its rate track.
	if doc.Series[0].Name != "hurricane_a_ops_total" || !doc.Series[0].Counter {
		t.Fatalf("series[0] = %+v", doc.Series[0])
	}
	if len(doc.Series[0].Points) != 2 || len(doc.Series[0].Rate) != 1 {
		t.Fatalf("counter tracks = %+v", doc.Series[0])
	}

	if doc = get("/debug/timeseries?series=b_heat"); len(doc.Series) != 1 || doc.Series[0].Name != "hurricane_b_heat" {
		t.Fatalf("filtered = %+v", doc.Series)
	}
	if doc = get("/debug/timeseries?since=" + itoa(rec.NowUs())); len(doc.Series) != 0 {
		t.Fatalf("future since returned %+v", doc.Series)
	}

	w := httptest.NewRecorder()
	TimeseriesHandler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/timeseries?since=xyz", nil))
	if w.Code != 400 {
		t.Fatalf("bad since = %d, want 400", w.Code)
	}

	// A nil recorder (sampler disabled) serves an empty document, not a
	// panic or error.
	w = httptest.NewRecorder()
	TimeseriesHandler(nil).ServeHTTP(w, httptest.NewRequest("GET", "/debug/timeseries", nil))
	if w.Code != 200 {
		t.Fatalf("nil recorder = %d", w.Code)
	}
}

func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestAlertsHandler(t *testing.T) {
	o := New(0)
	w := NewWatch(o, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "hurricane_x_share", Threshold: 0.5,
	}})
	w.Eval(view(1, map[string]float64{"hurricane_x_share": 0.9}, nil))
	w.Eval(view(2, map[string]float64{"hurricane_x_share": 0.2}, nil)) // resolves
	w.Eval(view(3, map[string]float64{"hurricane_x_share": 0.9}, nil)) // re-fires

	get := func(url string) Status {
		t.Helper()
		rr := httptest.NewRecorder()
		AlertsHandler(w).ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d", url, rr.Code)
		}
		var s Status
		if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return s
	}

	s := get("/debug/alerts")
	if s.Evals != 3 || len(s.Rules) != 1 || len(s.Alerts) != 2 {
		t.Fatalf("status = evals %d rules %d alerts %d", s.Evals, len(s.Rules), len(s.Alerts))
	}
	if len(s.States) != 1 || !s.States[0].Firing || s.States[0].Count != 2 {
		t.Fatalf("states = %+v", s.States)
	}
	if s = get("/debug/alerts?firing=1"); len(s.Alerts) != 1 || s.Alerts[0].ResolvedUs != 0 {
		t.Fatalf("firing filter = %+v", s.Alerts)
	}

	// Nil watch (sampler disabled): empty document.
	rr := httptest.NewRecorder()
	AlertsHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rr.Code != 200 {
		t.Fatalf("nil watch = %d", rr.Code)
	}
}

func TestDashHandler(t *testing.T) {
	w := httptest.NewRecorder()
	DashHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/dash", nil))
	if w.Code != 200 {
		t.Fatalf("dash = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content-type = %q", ct)
	}
	body := w.Body.String()
	// Self-contained: polls its sibling endpoints, draws its own
	// sparklines, references no external assets.
	for _, want := range []string{"<!doctype html", `fetch("timeseries"`, `fetch("alerts")`, "<canvas"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dash page missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "<script src", "@import"} {
		if strings.Contains(body, banned) {
			t.Fatalf("dash page references external asset (%q)", banned)
		}
	}
}
