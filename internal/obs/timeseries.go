package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// The time dimension of the observability layer. Every other obs surface
// is a point-in-time snapshot — the Recorder turns those snapshots into
// bounded per-series histories by sampling registered sources on a fixed
// interval, so a live run (and the watchdog layer on top, watch.go) can
// see when an edge got hot, how fast a counter is moving, and whether a
// gauge is drifting. Design constraints match the rest of obs: nil-safe
// everywhere, bounded memory (fixed-capacity rings, a hard series cap),
// and cheap — one sample is one Registry.Snapshot plus map/ring appends,
// far off any hot path.

// Point is one sampled value of one series. TUs is microseconds since
// the recorder was created (monotonic, comparable to trace TMicros
// deltas but on the recorder's own clock).
type Point struct {
	TUs int64   `json:"t_us"`
	V   float64 `json:"v"`
}

// Source is a sampling callback: it emits the current value of every
// series it knows into emit. Sources run on the sampler's goroutine at
// every Sample call; they must be cheap and must not block on I/O.
type Source func(emit func(series string, v float64))

// RegistrySource samples every series of a metrics registry (histograms
// flattened exactly like Registry.Snapshot). A nil registry yields an
// empty source.
func RegistrySource(reg *Registry) Source {
	return func(emit func(string, float64)) {
		for series, v := range reg.Snapshot() {
			emit(series, v)
		}
	}
}

const (
	// DefaultPointsPerSeries is the per-series ring capacity when
	// NewRecorder is given cap <= 0 (at the engine's default 250ms
	// sample interval: a bit over two minutes of history).
	DefaultPointsPerSeries = 512
	// maxSeries bounds how many distinct series a recorder will track.
	// Past it, new series are dropped and counted (DroppedSeries) —
	// unbounded label growth (per-window jobs, runtime partition splits)
	// must not grow recorder memory without bound.
	maxSeries = 2048
)

// seriesRing is one series' bounded point history: a circular buffer of
// cap(pts) points, oldest overwritten first.
type seriesRing struct {
	pts  []Point
	head int // index of the oldest point when full
	n    int
	last Point // most recent point (valid when n > 0)
}

func (s *seriesRing) append(p Point) {
	if s.n < cap(s.pts) {
		s.pts = s.pts[:s.n+1]
		s.pts[s.n] = p
		s.n++
	} else {
		s.pts[s.head] = p
		s.head = (s.head + 1) % s.n
	}
	s.last = p
}

// dump copies the retained points oldest-first, skipping points at or
// before sinceUs (pass a negative sinceUs for everything).
func (s *seriesRing) dump(sinceUs int64) []Point {
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		p := s.pts[(s.head+i)%s.n]
		if p.TUs > sinceUs {
			out = append(out, p)
		}
	}
	return out
}

// SampleView is what one Sample observed: the flat series->value map of
// the sample, plus per-second rates for counter-like series (derived
// against the previous sample of the same series; absent on a series'
// first sample). The watchdog evaluates rules against one view per
// sample tick.
type SampleView struct {
	// TUs is the sample time, microseconds on the recorder clock.
	TUs    int64
	Values map[string]float64
	Rates  map[string]float64
}

// CounterSeries reports whether a flattened series key is monotonic —
// the engine's naming scheme puts _total on counters, and the registry
// flattens histograms into monotonic _count/_sum components. Rates are
// derived only for these.
func CounterSeries(series string) bool {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return strings.HasSuffix(name, "_total") ||
		strings.HasSuffix(name, "_count") ||
		strings.HasSuffix(name, "_sum")
}

// Recorder samples Sources into bounded per-series rings. A nil
// *Recorder is a no-op (Sample returns nil, Append does nothing), so an
// unsampled deployment pays one nil check. All methods are safe for
// concurrent use; Sample is typically called by one sampler goroutine
// while HTTP scrapes read concurrently.
type Recorder struct {
	start time.Time

	mu            sync.Mutex
	cap           int
	series        map[string]*seriesRing
	order         []string
	sources       []Source
	samples       uint64
	droppedSeries uint64
}

// NewRecorder returns a recorder whose series retain up to pointsPerSeries
// points (<= 0 selects DefaultPointsPerSeries).
func NewRecorder(pointsPerSeries int) *Recorder {
	if pointsPerSeries <= 0 {
		pointsPerSeries = DefaultPointsPerSeries
	}
	return &Recorder{
		start:  time.Now(),
		cap:    pointsPerSeries,
		series: make(map[string]*seriesRing),
	}
}

// AddSource registers a sampling source. Call during setup; sources run
// in registration order on every Sample.
func (r *Recorder) AddSource(s Source) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, s)
	r.mu.Unlock()
}

// NowUs returns the current time on the recorder clock.
func (r *Recorder) NowUs() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.start).Microseconds()
}

// ring returns the series' ring, creating it if the series cap allows.
// Caller holds r.mu.
func (r *Recorder) ringLocked(series string) *seriesRing {
	ring := r.series[series]
	if ring == nil {
		if len(r.series) >= maxSeries {
			r.droppedSeries++
			return nil
		}
		ring = &seriesRing{pts: make([]Point, 0, r.cap)}
		r.series[series] = ring
		r.order = append(r.order, series)
	}
	return ring
}

// Sample runs every source once, appends the observed values to their
// rings, and returns the sample's view (values plus derived counter
// rates). Returns nil on a nil recorder.
func (r *Recorder) Sample() *SampleView {
	if r == nil {
		return nil
	}
	// Collect outside the lock: sources may take their own locks
	// (Registry.Snapshot, master EdgeMemory) and must not nest inside
	// ours.
	r.mu.Lock()
	sources := r.sources
	r.mu.Unlock()
	view := &SampleView{
		Values: make(map[string]float64),
		Rates:  make(map[string]float64),
	}
	for _, src := range sources {
		src(func(series string, v float64) { view.Values[series] = v })
	}
	view.TUs = r.NowUs()

	r.mu.Lock()
	defer r.mu.Unlock()
	for series, v := range view.Values {
		ring := r.ringLocked(series)
		if ring == nil {
			continue
		}
		if ring.n > 0 && CounterSeries(series) {
			prev := ring.last
			if dt := float64(view.TUs-prev.TUs) / 1e6; dt > 0 {
				rate := (v - prev.V) / dt
				if rate < 0 {
					rate = 0 // counter handle re-created; clamp the reset
				}
				view.Rates[series] = rate
			}
		}
		ring.append(Point{TUs: view.TUs, V: v})
	}
	r.samples++
	return view
}

// Append records one event-driven point outside the sampling cadence —
// the streaming subsystem uses it to put every completed window's
// latency and record count on the timeline at the moment the window
// finishes, rather than wherever the next sample tick lands.
func (r *Recorder) Append(series string, v float64) {
	if r == nil {
		return
	}
	now := r.NowUs()
	r.mu.Lock()
	defer r.mu.Unlock()
	if ring := r.ringLocked(series); ring != nil {
		ring.append(Point{TUs: now, V: v})
	}
}

// Samples returns how many Sample calls completed.
func (r *Recorder) Samples() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// DroppedSeries returns how many series were discarded at the series cap.
func (r *Recorder) DroppedSeries() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedSeries
}

// SeriesDump is one series' retained history, oldest first. Rate is the
// derived per-second rate between consecutive points, populated only for
// counter-like series (one fewer entry than Points).
type SeriesDump struct {
	Name    string  `json:"name"`
	Counter bool    `json:"counter,omitempty"`
	Points  []Point `json:"points"`
	Rate    []Point `json:"rate,omitempty"`
}

// Dump returns the retained history of every series whose key contains
// any of the given substrings (no filters = every series), skipping
// points at or before sinceUs (negative = all), sorted by series name.
// Counter-like series carry a derived rate track.
func (r *Recorder) Dump(filters []string, sinceUs int64) []SeriesDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SeriesDump, 0, len(r.order))
	for _, name := range r.order {
		if !matchesAny(name, filters) {
			continue
		}
		// Dump all points first: the rate between the first in-window
		// point and its predecessor needs the predecessor's value.
		all := r.series[name].dump(-1)
		d := SeriesDump{Name: name, Counter: CounterSeries(name)}
		if d.Counter {
			for i := 1; i < len(all); i++ {
				if all[i].TUs <= sinceUs {
					continue
				}
				if dt := float64(all[i].TUs-all[i-1].TUs) / 1e6; dt > 0 {
					rate := (all[i].V - all[i-1].V) / dt
					if rate < 0 {
						rate = 0
					}
					d.Rate = append(d.Rate, Point{TUs: all[i].TUs, V: rate})
				}
			}
		}
		for _, p := range all {
			if p.TUs > sinceUs {
				d.Points = append(d.Points, p)
			}
		}
		if len(d.Points) == 0 {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// matchesAny reports whether name contains any filter substring (or no
// filters were given).
func matchesAny(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if f != "" && strings.Contains(name, f) {
			return true
		}
	}
	return false
}
