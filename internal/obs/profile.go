package obs

import (
	"fmt"
	"sort"
	"strings"
)

// The profiler decomposes every task worker's lifetime into a small fixed
// set of phases. Phase names are part of the JSON surface
// (/debug/profile, BENCH_*.json) and of EXPLAIN ANALYZE output.
const (
	// PhaseQueue: blueprint published by the master until a compute node
	// started the worker (scheduler poll latency + fair-share gating).
	PhaseQueue = "queue"
	// PhaseRead: blocked removing/scanning input chunks from storage.
	PhaseRead = "read"
	// PhaseCompute: running task code (wall time minus every other
	// in-worker phase).
	PhaseCompute = "compute"
	// PhaseShuffle: encoding and writing output — inserter waits plus
	// partitioned-writer chunk flushes.
	PhaseShuffle = "shuffle"
	// PhaseFinalize: end-of-task flush — draining buffered writers,
	// closing shuffle writers (final sketch push), closing inserters.
	PhaseFinalize = "finalize"
)

// TaskSpans is one worker's phase accounting, recorded by the compute
// node and shipped to the master inside the task's done event. All
// durations are nanoseconds; Started/Ended are unix nanoseconds.
type TaskSpans struct {
	TaskID string `json:"task"`   // blueprint ID ("spec/wN@eM")
	Spec   string `json:"spec"`   // task spec name (= plan stage)
	Worker int    `json:"worker"` // worker index within the task
	Merge  bool   `json:"merge,omitempty"`

	StartedNS int64 `json:"started_ns"`
	EndedNS   int64 `json:"ended_ns"`

	QueueNS    int64 `json:"queue_ns"`
	ReadNS     int64 `json:"read_ns"`
	ComputeNS  int64 `json:"compute_ns"`
	ShuffleNS  int64 `json:"shuffle_ns"`
	FinalizeNS int64 `json:"finalize_ns"`

	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	ChunksIn int64 `json:"chunks_in"`
	// Records counts records routed through the worker's partitioned
	// shuffle writers (exact, from the writers' per-leaf counts); 0 for
	// tasks that only write plain bags.
	Records int64 `json:"records,omitempty"`
	// Parts is the per-partition record breakdown of those writes, keyed
	// by physical partition bag.
	Parts map[string]int64 `json:"parts,omitempty"`
}

// WallNS is the worker's in-node lifetime (excludes queue wait).
func (s *TaskSpans) WallNS() int64 { return s.EndedNS - s.StartedNS }

// Phases is a per-phase duration breakdown, summable across tasks.
type Phases struct {
	QueueNS    int64 `json:"queue_ns"`
	ReadNS     int64 `json:"read_ns"`
	ComputeNS  int64 `json:"compute_ns"`
	ShuffleNS  int64 `json:"shuffle_ns"`
	FinalizeNS int64 `json:"finalize_ns"`
}

func (p *Phases) add(s *TaskSpans) {
	p.QueueNS += s.QueueNS
	p.ReadNS += s.ReadNS
	p.ComputeNS += s.ComputeNS
	p.ShuffleNS += s.ShuffleNS
	p.FinalizeNS += s.FinalizeNS
}

// TotalNS sums every phase — for a single task this is queue wait plus
// worker wall time.
func (p Phases) TotalNS() int64 {
	return p.QueueNS + p.ReadNS + p.ComputeNS + p.ShuffleNS + p.FinalizeNS
}

// StageProfile aggregates every worker (clones and merges included) of
// one task spec.
type StageProfile struct {
	Task    string `json:"task"` // task spec name
	Workers int    `json:"workers"`
	Merges  int    `json:"merges,omitempty"`
	// WallNS is the stage's elapsed span: earliest worker start to latest
	// worker end.
	WallNS int64 `json:"wall_ns"`
	// P50TaskNS / MaxTaskNS are the median and slowest worker wall times
	// — their ratio is the stage's straggler factor.
	P50TaskNS int64  `json:"p50_task_ns"`
	MaxTaskNS int64  `json:"max_task_ns"`
	Phases    Phases `json:"phases"`

	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	Records  int64 `json:"records,omitempty"`

	Tasks []TaskSpans `json:"tasks"`
}

// CriticalStep is one task on the job's critical path: the worker that
// bounded its stage, with its phase breakdown.
type CriticalStep struct {
	TaskID string `json:"task"`
	Task   string `json:"spec"`
	Phases Phases `json:"phases"`
}

// EdgeSkew is the time-based skew attribution for one partitioned
// shuffle edge, measured on its consumer stage and correlated with the
// mitigation actions the trace recorded for the edge.
type EdgeSkew struct {
	Edge     string `json:"edge"`
	Consumer string `json:"consumer,omitempty"`
	// P50TaskNS / MaxTaskNS are consumer worker wall times.
	P50TaskNS int64 `json:"p50_task_ns"`
	MaxTaskNS int64 `json:"max_task_ns"`
	// SlowestShare is the slowest consumer worker's fraction of the
	// stage's summed worker wall time — 1/workers when perfectly
	// balanced, approaching 1 under total skew.
	SlowestShare float64 `json:"slowest_share"`
	// Mitigation actions the trace recorded for the edge (splits,
	// isolations) and its consumer (clones).
	Splits     int `json:"splits"`
	Isolations int `json:"isolations"`
	Clones     int `json:"clones"`
	// RecoveredNS estimates the consumer time mitigation bought back: the
	// working time (read+compute+shuffle) clone workers absorbed — work
	// that would otherwise have queued on the original workers.
	RecoveredNS int64 `json:"recovered_ns"`
}

// Profile is the measured execution profile of one job: per-stage span
// aggregation, the critical path that bounded wall clock, and per-edge
// skew attribution. Assembled by the master from the done-event spans;
// serialized as-is on /debug/profile/<job>.
type Profile struct {
	Job string `json:"job"`
	// TraceID is the causal trace ID minted at the job's submission,
	// when one travelled with it (see JobConfig.TraceID). It lets a
	// remote submitter fetch this profile from the serving cluster's
	// debug endpoint without knowing the job's server-side name.
	TraceID string `json:"trace_id,omitempty"`
	// WallNS is the measured job wall time (master start to completion).
	WallNS int64 `json:"wall_ns"`
	// Stages in dependency order (upstream first).
	Stages []StageProfile `json:"stages"`
	// Critical is the chain of tasks that bounded wall clock, upstream
	// first; CriticalNS is the sum of its phase totals. CriticalNS ≈
	// WallNS — the gap is scheduler latency between stages.
	Critical   []CriticalStep `json:"critical"`
	CriticalNS int64          `json:"critical_ns"`
	CriticalBy Phases         `json:"critical_by"`
	Edges      []EdgeSkew     `json:"edges,omitempty"`
}

// Stage returns the named stage's profile, or nil.
func (p *Profile) Stage(task string) *StageProfile {
	if p == nil {
		return nil
	}
	for i := range p.Stages {
		if p.Stages[i].Task == task {
			return &p.Stages[i]
		}
	}
	return nil
}

// BuildProfile assembles a job profile from raw task spans. deps maps a
// task spec name to its upstream spec names (producers of its inputs);
// it drives both stage ordering and the critical-path walk.
//
// The critical path is computed at stage granularity with barrier
// semantics — a partitioned consumer cannot start before its producers
// sealed, which is exactly how the engine schedules — walking back from
// the stage that finished last, at each step following the upstream
// stage that finished latest, and charging each chosen stage its
// latest-finishing worker (the one the successor actually waited for).
func BuildProfile(job string, wallNS int64, spans []TaskSpans, deps map[string][]string) *Profile {
	p := &Profile{Job: job, WallNS: wallNS}
	if len(spans) == 0 {
		return p
	}

	byStage := make(map[string][]*TaskSpans)
	for i := range spans {
		s := &spans[i]
		byStage[s.Spec] = append(byStage[s.Spec], s)
	}

	for spec, ss := range byStage {
		sp := StageProfile{Task: spec}
		start, end := ss[0].StartedNS, ss[0].EndedNS
		walls := make([]int64, 0, len(ss))
		for _, s := range ss {
			if s.Merge {
				sp.Merges++
			} else {
				sp.Workers++
			}
			if s.StartedNS < start {
				start = s.StartedNS
			}
			if s.EndedNS > end {
				end = s.EndedNS
			}
			walls = append(walls, s.WallNS())
			sp.Phases.add(s)
			sp.BytesIn += s.BytesIn
			sp.BytesOut += s.BytesOut
			sp.Records += s.Records
			sp.Tasks = append(sp.Tasks, *s)
		}
		sp.WallNS = end - start
		sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
		sp.P50TaskNS = walls[len(walls)/2]
		sp.MaxTaskNS = walls[len(walls)-1]
		sort.Slice(sp.Tasks, func(a, b int) bool { return sp.Tasks[a].TaskID < sp.Tasks[b].TaskID })
		p.Stages = append(p.Stages, sp)
	}
	// Dependency order: upstream stages first, ties by earliest start.
	depth := stageDepths(byStage, deps)
	sort.Slice(p.Stages, func(a, b int) bool {
		da, db := depth[p.Stages[a].Task], depth[p.Stages[b].Task]
		if da != db {
			return da < db
		}
		return stageStart(byStage[p.Stages[a].Task]) < stageStart(byStage[p.Stages[b].Task])
	})

	// Critical path: start from the stage that finished last.
	last := ""
	var lastEnd int64
	for spec, ss := range byStage {
		if e := stageEnd(ss); last == "" || e > lastEnd {
			last, lastEnd = spec, e
		}
	}
	seen := make(map[string]bool)
	var chain []CriticalStep
	for cur := last; cur != "" && !seen[cur]; {
		seen[cur] = true
		bound := slowestFinisher(byStage[cur])
		step := CriticalStep{TaskID: bound.TaskID, Task: cur}
		step.Phases.add(bound)
		chain = append(chain, step)
		next, nextEnd := "", int64(0)
		for _, up := range deps[cur] {
			ss := byStage[up]
			if len(ss) == 0 || seen[up] {
				continue
			}
			if e := stageEnd(ss); next == "" || e > nextEnd {
				next, nextEnd = up, e
			}
		}
		cur = next
	}
	// Reverse to upstream-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	p.Critical = chain
	for _, st := range chain {
		p.CriticalNS += st.Phases.TotalNS()
		p.CriticalBy.QueueNS += st.Phases.QueueNS
		p.CriticalBy.ReadNS += st.Phases.ReadNS
		p.CriticalBy.ComputeNS += st.Phases.ComputeNS
		p.CriticalBy.ShuffleNS += st.Phases.ShuffleNS
		p.CriticalBy.FinalizeNS += st.Phases.FinalizeNS
	}
	return p
}

func stageStart(ss []*TaskSpans) int64 {
	v := ss[0].StartedNS
	for _, s := range ss {
		if s.StartedNS < v {
			v = s.StartedNS
		}
	}
	return v
}

func stageEnd(ss []*TaskSpans) int64 {
	v := ss[0].EndedNS
	for _, s := range ss {
		if s.EndedNS > v {
			v = s.EndedNS
		}
	}
	return v
}

// slowestFinisher picks the stage's latest-ending span — the worker (or
// merge) every successor had to wait for.
func slowestFinisher(ss []*TaskSpans) *TaskSpans {
	v := ss[0]
	for _, s := range ss {
		if s.EndedNS > v.EndedNS {
			v = s
		}
	}
	return v
}

// stageDepths assigns each observed stage its longest-path depth in the
// dependency graph (sources = 0), tolerating deps entries for stages
// that recorded no spans.
func stageDepths(byStage map[string][]*TaskSpans, deps map[string][]string) map[string]int {
	depth := make(map[string]int, len(byStage))
	var walk func(spec string, hops int) int
	walk = func(spec string, hops int) int {
		if d, ok := depth[spec]; ok {
			return d
		}
		if hops > len(byStage)+len(deps) {
			return 0 // cycle guard; the graph validator forbids cycles
		}
		d := 0
		for _, up := range deps[spec] {
			if _, ok := byStage[up]; !ok {
				continue
			}
			if ud := walk(up, hops+1) + 1; ud > d {
				d = ud
			}
		}
		depth[spec] = d
		return d
	}
	for spec := range byStage {
		walk(spec, 0)
	}
	return depth
}

// Summary is the compact, human-scale digest of a Profile that
// hurricane-bench embeds into BENCH_*.json documents.
type Summary struct {
	Job    string  `json:"job"`
	WallMS float64 `json:"wall_ms"`
	// CriticalMS is the critical path's phase-total; CriticalPath names
	// its stages upstream-first.
	CriticalMS   float64  `json:"critical_ms"`
	CriticalPath []string `json:"critical_path"`
	// PhaseMS breaks the critical path down per phase, in milliseconds.
	PhaseMS map[string]float64 `json:"phase_ms"`
}

// Summarize reduces the profile to its benchmark digest.
func (p *Profile) Summarize() Summary {
	if p == nil {
		return Summary{}
	}
	s := Summary{
		Job:        p.Job,
		WallMS:     float64(p.WallNS) / 1e6,
		CriticalMS: float64(p.CriticalNS) / 1e6,
		PhaseMS: map[string]float64{
			PhaseQueue:    float64(p.CriticalBy.QueueNS) / 1e6,
			PhaseRead:     float64(p.CriticalBy.ReadNS) / 1e6,
			PhaseCompute:  float64(p.CriticalBy.ComputeNS) / 1e6,
			PhaseShuffle:  float64(p.CriticalBy.ShuffleNS) / 1e6,
			PhaseFinalize: float64(p.CriticalBy.FinalizeNS) / 1e6,
		},
	}
	for _, st := range p.Critical {
		s.CriticalPath = append(s.CriticalPath, st.Task)
	}
	return s
}

// String renders the profile as a fixed-width report (one stage per
// line, then the critical path) — the embedded-API sibling of the
// /debug/profile JSON.
func (p *Profile) String() string {
	if p == nil {
		return "(no profile)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: wall %.1fms, critical path %.1fms over %d stage(s)\n",
		p.Job, float64(p.WallNS)/1e6, float64(p.CriticalNS)/1e6, len(p.Critical))
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "  %-14s workers=%d wall=%.1fms p50=%.1fms max=%.1fms in=%dB out=%dB",
			st.Task, st.Workers, float64(st.WallNS)/1e6,
			float64(st.P50TaskNS)/1e6, float64(st.MaxTaskNS)/1e6, st.BytesIn, st.BytesOut)
		if st.Records > 0 {
			fmt.Fprintf(&b, " records=%d", st.Records)
		}
		b.WriteByte('\n')
	}
	for _, st := range p.Critical {
		fmt.Fprintf(&b, "  critical %-14s %s\n", st.Task, st.Phases.String())
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  edge %-14s p50=%.1fms max=%.1fms slowest=%.0f%% splits=%d isolations=%d clones=%d recovered=%.1fms\n",
			e.Edge, float64(e.P50TaskNS)/1e6, float64(e.MaxTaskNS)/1e6,
			e.SlowestShare*100, e.Splits, e.Isolations, e.Clones, float64(e.RecoveredNS)/1e6)
	}
	return b.String()
}

// String renders the breakdown as "queue=…ms read=…ms …" — shared by
// the profile report and EXPLAIN ANALYZE.
func (p Phases) String() string {
	return fmt.Sprintf("queue=%.1fms read=%.1fms compute=%.1fms shuffle=%.1fms finalize=%.1fms",
		float64(p.QueueNS)/1e6, float64(p.ReadNS)/1e6, float64(p.ComputeNS)/1e6,
		float64(p.ShuffleNS)/1e6, float64(p.FinalizeNS)/1e6)
}
