package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Append("g", float64(i))
	}
	dumps := r.Dump(nil, -1)
	if len(dumps) != 1 {
		t.Fatalf("series = %d, want 1", len(dumps))
	}
	pts := dumps[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want ring cap 4", len(pts))
	}
	// Oldest first, and only the newest 4 of the 10 appends survive.
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("point %d = %v, want %v", i, p.V, want)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TUs < pts[i-1].TUs {
			t.Fatalf("points not time-ordered: %v", pts)
		}
	}
}

func TestRecorderSeriesCap(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < maxSeries+10; i++ {
		r.Append(fmt.Sprintf("s%d", i), 1)
	}
	if got := len(r.Dump(nil, -1)); got != maxSeries {
		t.Fatalf("retained %d series, want cap %d", got, maxSeries)
	}
	if got := r.DroppedSeries(); got != 10 {
		t.Fatalf("DroppedSeries = %d, want 10", got)
	}
}

func TestRecorderCounterRates(t *testing.T) {
	r := NewRecorder(0)
	var ops float64
	r.AddSource(func(emit func(string, float64)) {
		emit("hurricane_x_ops_total", ops)
		emit("hurricane_x_inflight", ops) // gauge: no rate derived
	})

	ops = 100
	v1 := r.Sample()
	if len(v1.Rates) != 0 {
		t.Fatalf("first sample derived rates %v, want none", v1.Rates)
	}
	ops = 300
	v2 := r.Sample()
	rate, ok := v2.Rates["hurricane_x_ops_total"]
	if !ok {
		t.Fatalf("no rate for counter series; rates = %v", v2.Rates)
	}
	// 200 ops over the inter-sample gap; just check it is positive and
	// finite — wall time between samples is not controlled.
	if rate <= 0 {
		t.Fatalf("rate = %v, want > 0", rate)
	}
	if _, ok := v2.Rates["hurricane_x_inflight"]; ok {
		t.Fatal("gauge series derived a rate")
	}

	// Counter reset (handle re-created): rate clamps to zero, never
	// negative.
	ops = 50
	v3 := r.Sample()
	if got := v3.Rates["hurricane_x_ops_total"]; got != 0 {
		t.Fatalf("rate after counter reset = %v, want clamp to 0", got)
	}

	// Dump carries the rate track for the counter only.
	dumps := r.Dump([]string{"hurricane_x"}, -1)
	if len(dumps) != 2 {
		t.Fatalf("series = %d, want 2", len(dumps))
	}
	for _, d := range dumps {
		isCounter := d.Name == "hurricane_x_ops_total"
		if d.Counter != isCounter {
			t.Fatalf("%s Counter = %v", d.Name, d.Counter)
		}
		if isCounter && len(d.Rate) != len(d.Points)-1 {
			t.Fatalf("rate track %d entries for %d points", len(d.Rate), len(d.Points))
		}
		if !isCounter && d.Rate != nil {
			t.Fatalf("gauge %s has a rate track", d.Name)
		}
	}
}

func TestRecorderDumpFilters(t *testing.T) {
	r := NewRecorder(0)
	r.Append("hurricane_a_ops_total", 1)
	r.Append("hurricane_b_heat", 0.5)
	mark := r.NowUs()
	// since= is an exclusive microsecond cutoff; step past the mark so
	// the next append cannot land in the same microsecond tick.
	time.Sleep(2 * time.Millisecond)
	r.Append("hurricane_b_heat", 0.9)

	if got := r.Dump([]string{"b_heat"}, -1); len(got) != 1 || got[0].Name != "hurricane_b_heat" {
		t.Fatalf("filter dump = %+v", got)
	}
	got := r.Dump([]string{"b_heat"}, mark)
	if len(got) != 1 || len(got[0].Points) != 1 || got[0].Points[0].V != 0.9 {
		t.Fatalf("since dump = %+v", got)
	}
	// A series entirely before the cutoff is omitted, not empty.
	if got := r.Dump([]string{"a_ops"}, mark); len(got) != 0 {
		t.Fatalf("stale series dump = %+v", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.AddSource(RegistrySource(nil))
	r.Append("x", 1)
	if v := r.Sample(); v != nil {
		t.Fatalf("nil recorder Sample = %v", v)
	}
	if d := r.Dump(nil, -1); d != nil {
		t.Fatalf("nil recorder Dump = %v", d)
	}
	if r.Samples() != 0 || r.DroppedSeries() != 0 || r.NowUs() != 0 {
		t.Fatal("nil recorder counters not zero")
	}
}

// TestRecorderConcurrent exercises sample/append/scrape under the race
// detector: one goroutine sampling a registry source, one appending
// event-driven points, one dumping.
func TestRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("hurricane_t_ops_total")
	r := NewRecorder(32)
	r.AddSource(RegistrySource(reg))

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch w {
				case 0:
					ctr.Inc()
					r.Sample()
				case 1:
					r.Append("hurricane_t_window_ms", float64(i))
				default:
					r.Dump(nil, -1)
					r.Dump([]string{"window"}, r.NowUs()-1000)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Samples() != 200 {
		t.Fatalf("Samples = %d, want 200", r.Samples())
	}
}
