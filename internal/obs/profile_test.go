package obs

import (
	"strings"
	"testing"
)

// span builds a synthetic worker span whose in-worker phases sum exactly
// to its wall time — compute absorbs the remainder, which is the
// invariant the real snapshot path maintains.
func span(spec string, worker int, start, end, queue, read, shuffle, finalize int64, merge bool) TaskSpans {
	return TaskSpans{
		TaskID:     spec + "/w" + string(rune('0'+worker)),
		Spec:       spec,
		Worker:     worker,
		Merge:      merge,
		StartedNS:  start,
		EndedNS:    end,
		QueueNS:    queue,
		ReadNS:     read,
		ComputeNS:  (end - start) - read - shuffle - finalize,
		ShuffleNS:  shuffle,
		FinalizeNS: finalize,
	}
}

// TestBuildProfileCriticalPath assembles a staggered three-stage DAG
// (scan -> shuffle -> agg, each stage starting only after its producer's
// slowest worker finished) and checks stage aggregation, dependency
// ordering, and that the critical path picks exactly the workers that
// bounded each stage.
func TestBuildProfileCriticalPath(t *testing.T) {
	spans := []TaskSpans{
		// scan: w1 is the straggler every consumer waited for.
		span("scan", 0, 1_000, 3_000, 100, 500, 400, 100, false),
		span("scan", 1, 1_000, 5_000, 200, 1_000, 500, 500, false),
		// shuffle: starts at scan's end; w1 again bounds the stage.
		span("shuffle", 0, 5_000, 9_000, 300, 1_000, 1_000, 500, false),
		span("shuffle", 1, 5_200, 12_000, 100, 2_000, 1_000, 800, false),
		// agg: one worker plus its merge; the merge finishes last.
		span("agg", 0, 12_000, 20_000, 400, 3_000, 2_000, 1_000, false),
		span("agg", 1, 20_000, 21_000, 50, 200, 100, 100, true),
	}
	deps := map[string][]string{
		"scan":    {"ghost"}, // producer that recorded no spans: tolerated
		"shuffle": {"scan"},
		"agg":     {"shuffle"},
	}
	const wall = int64(20_000) // job start 1_000, done 21_000
	p := BuildProfile("j", wall, spans, deps)

	if p.Job != "j" || p.WallNS != wall {
		t.Fatalf("header: %+v", p)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(p.Stages))
	}
	// Dependency order, upstream first.
	for i, want := range []string{"scan", "shuffle", "agg"} {
		if p.Stages[i].Task != want {
			t.Fatalf("stage %d = %q, want %q", i, p.Stages[i].Task, want)
		}
	}

	scan := p.Stage("scan")
	if scan.Workers != 2 || scan.Merges != 0 {
		t.Fatalf("scan workers=%d merges=%d", scan.Workers, scan.Merges)
	}
	if scan.WallNS != 4_000 || scan.MaxTaskNS != 4_000 || scan.P50TaskNS != 4_000 {
		t.Fatalf("scan wall=%d p50=%d max=%d", scan.WallNS, scan.P50TaskNS, scan.MaxTaskNS)
	}
	agg := p.Stage("agg")
	if agg.Workers != 1 || agg.Merges != 1 || agg.WallNS != 9_000 {
		t.Fatalf("agg: %+v", agg)
	}
	if p.Stage("nope") != nil {
		t.Fatal("unknown stage lookup must return nil")
	}

	// Every aggregated span keeps the in-worker invariant: phases minus
	// queue sum exactly to the worker's wall time.
	for _, st := range p.Stages {
		for _, s := range st.Tasks {
			if got := s.ReadNS + s.ComputeNS + s.ShuffleNS + s.FinalizeNS; got != s.WallNS() {
				t.Fatalf("%s: in-worker phases sum %d, wall %d", s.TaskID, got, s.WallNS())
			}
		}
	}

	// Critical path: the latest-ending worker of each stage, upstream
	// first — scan/w1, shuffle/w1, then agg's merge.
	wantChain := []struct{ spec, id string }{
		{"scan", "scan/w1"}, {"shuffle", "shuffle/w1"}, {"agg", "agg/w1"},
	}
	if len(p.Critical) != len(wantChain) {
		t.Fatalf("critical path %v", p.Critical)
	}
	var wantNS int64
	for i, w := range wantChain {
		st := p.Critical[i]
		if st.Task != w.spec || st.TaskID != w.id {
			t.Fatalf("critical[%d] = %s (%s), want %s (%s)", i, st.Task, st.TaskID, w.spec, w.id)
		}
		wantNS += st.Phases.TotalNS()
	}
	// The chosen spans: queue+wall = 200+4000, 100+6800, 50+1000.
	if wantNS != 4_200+6_900+1_050 {
		t.Fatalf("chain phase totals sum %d", wantNS)
	}
	if p.CriticalNS != wantNS {
		t.Fatalf("CriticalNS = %d, want %d", p.CriticalNS, wantNS)
	}
	if got := p.CriticalBy.TotalNS(); got != wantNS {
		t.Fatalf("CriticalBy sums to %d, want %d", got, wantNS)
	}

	s := p.Summarize()
	if strings.Join(s.CriticalPath, ",") != "scan,shuffle,agg" {
		t.Fatalf("summary path %v", s.CriticalPath)
	}
	if s.WallMS != float64(wall)/1e6 || s.CriticalMS != float64(wantNS)/1e6 {
		t.Fatalf("summary times: %+v", s)
	}
	var phaseMS float64
	for _, v := range s.PhaseMS {
		phaseMS += v
	}
	if diff := phaseMS - s.CriticalMS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("summary phases sum %.9f, critical %.9f", phaseMS, s.CriticalMS)
	}

	if r := p.String(); !strings.Contains(r, "critical path") || !strings.Contains(r, "shuffle") {
		t.Fatalf("report: %s", r)
	}
}

// TestBuildProfileEmpty: a job that recorded no spans (profiling off)
// still yields a well-formed, empty profile.
func TestBuildProfileEmpty(t *testing.T) {
	p := BuildProfile("j", 1234, nil, nil)
	if p == nil || p.WallNS != 1234 || len(p.Stages) != 0 || len(p.Critical) != 0 || p.CriticalNS != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	if (&Profile{}).Stage("x") != nil {
		t.Fatal("Stage on empty profile")
	}
}
