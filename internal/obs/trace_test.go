package obs

import "testing"

// TestJobTraceStamping: once a causal trace ID is registered for a job,
// every subsequent event of that job carries it; other jobs' events do
// not, and the trace-ID filter composes with the job and type filters.
func TestJobTraceStamping(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(EvTaskScheduled, "j1", "t0", "before registration")
	tr.SetJobTrace("j1", "t-abc123")
	tr.Emit(EvTaskScheduled, "j1", "t1", "")
	tr.Emit(EvTaskFinished, "j1", "t1", "")
	tr.Emit(EvTaskScheduled, "j2", "t9", "foreign job")

	all := tr.Events("j1", "")
	if len(all) != 3 {
		t.Fatalf("j1 events = %d, want 3", len(all))
	}
	if all[0].Trace != "" {
		t.Errorf("pre-registration event stamped: %+v", all[0])
	}
	for _, e := range all[1:] {
		if e.Trace != "t-abc123" {
			t.Errorf("post-registration event unstamped: %+v", e)
		}
	}

	byTrace := tr.EventsFiltered("", "t-abc123", "")
	if len(byTrace) != 2 {
		t.Fatalf("trace-filtered events = %d, want 2", len(byTrace))
	}
	for _, e := range byTrace {
		if e.Job != "j1" {
			t.Errorf("trace filter leaked foreign job: %+v", e)
		}
	}
	if got := tr.EventsFiltered("", "t-abc123", EvTaskFinished); len(got) != 1 {
		t.Fatalf("trace+type filter = %d events, want 1", len(got))
	}
	if got := tr.EventsFiltered("j2", "t-abc123", ""); len(got) != 0 {
		t.Fatalf("contradictory job+trace filter = %d events, want 0", len(got))
	}
}

func TestJobForTrace(t *testing.T) {
	tr := NewTrace(16)
	tr.SetJobTrace("j1", "t-aaa")
	tr.SetJobTrace("j2", "t-bbb")
	if got := tr.JobForTrace("t-bbb"); got != "j2" {
		t.Fatalf("JobForTrace(t-bbb) = %q, want j2", got)
	}
	if got := tr.JobForTrace("t-nope"); got != "" {
		t.Fatalf("unknown trace resolved to %q", got)
	}
	if got := tr.JobForTrace(""); got != "" {
		t.Fatalf("empty trace resolved to %q", got)
	}
}

// TestJobTraceNilSafe: every trace-ID method is a no-op on a nil ring,
// and blank registrations are ignored.
func TestJobTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.SetJobTrace("j", "t-x")
	if got := tr.JobForTrace("t-x"); got != "" {
		t.Fatalf("nil trace resolved %q", got)
	}
	if got := tr.EventsFiltered("", "t-x", ""); got != nil {
		t.Fatalf("nil trace returned events: %v", got)
	}
	live := NewTrace(4)
	live.SetJobTrace("", "t-x")
	live.SetJobTrace("j", "")
	live.Emit(EvTaskScheduled, "j", "", "")
	if got := live.Events("j", ""); len(got) != 1 || got[0].Trace != "" {
		t.Fatalf("blank registration stamped events: %+v", got)
	}
}

// TestSlowOpEventSurvivesCap: EvStorageSlowOp is a decision event — at
// capacity it evicts lifecycle chatter instead of being dropped.
func TestAlertEventSurvivesCap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 4; i++ {
		tr.Emit(EvTaskFinished, "j", "t", "lifecycle")
	}
	tr.Emit(EvAlertRaised, "", "straggler-task-time", "series=x value=5 threshold=4")
	if got := tr.Events("", EvAlertRaised); len(got) != 1 {
		t.Fatalf("AlertRaised did not survive a full ring: %d", len(got))
	}
}

func TestTraceDroppedCounter(t *testing.T) {
	// obs.New binds the ring's displacement count to
	// hurricane_trace_dropped_total, so ring pressure is scrapeable.
	o := New(4)
	for i := 0; i < 7; i++ {
		o.Emit(EvTaskFinished, "j", "t", "lifecycle")
	}
	if d := o.Tracer().Dropped(); d != 3 {
		t.Fatalf("Dropped = %d, want 3", d)
	}
	if got := o.Registry().Snapshot()["hurricane_trace_dropped_total"]; got != 3 {
		t.Fatalf("hurricane_trace_dropped_total = %v, want 3", got)
	}
}

func TestSlowOpEventSurvivesCap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 4; i++ {
		tr.Emit(EvTaskFinished, "j", "t", "lifecycle")
	}
	tr.Emit(EvStorageSlowOp, "j", "s0", "op=remove bag=b took=30ms")
	got := tr.Events("", EvStorageSlowOp)
	if len(got) != 1 {
		t.Fatalf("slow-op event did not survive a full ring: %d", len(got))
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
}
