// Package obs is the engine's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, streaming histograms) and a
// bounded structured event trace. Every layer that makes a runtime
// decision — the control plane, the master, the shuffle writers, the
// multi-job scheduler, the streaming pump, the query planner — records
// what it decided and why through one Observer, so a live run can answer
// the questions the paper answers with figures: which partitions ran
// hot, which keys were isolated, when clones fired and when they were
// preempted.
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. Counter/gauge/histogram updates are
//     single atomic operations on handles the caller registered once and
//     cached; there is no map lookup and no lock on the update path.
//  2. Disabled must be free-ish. Every handle method is nil-safe, and a
//     nil *Observer hands out nil handles, so an uninstrumented run pays
//     one predictable nil check per update site.
//  3. Bounded memory. The event trace is a fixed-size ring that sheds
//     load past capacity rather than blocking or reallocating: lifecycle
//     chatter is dropped, control-plane decision events displace the
//     oldest lifecycle entries (all displacement is counted); the
//     registry grows only at registration sites.
//
// Metric names follow the scheme hurricane_<layer>_<name>, with _total
// suffixes on monotonic counters, rendered in the Prometheus text
// exposition format by Registry.WriteText.
package obs

// Observer bundles the metrics registry and the event trace that one
// cluster shares across all of its jobs and layers. A nil *Observer is a
// valid no-op observer: every method on it, and every handle it returns,
// is safe to call and does nothing.
type Observer struct {
	reg   *Registry
	trace *Trace
}

// New returns an enabled observer with the given trace capacity
// (traceCap <= 0 selects DefaultTraceCap).
func New(traceCap int) *Observer {
	o := &Observer{reg: NewRegistry(), trace: NewTrace(traceCap)}
	// Ring pressure is itself a signal worth watching: mirror trace
	// displacement into a registry counter so the drop-rate watchdog and
	// /metrics scrapes see it without touching Go APIs.
	o.trace.BindDropCounter(o.reg.Counter("hurricane_trace_dropped_total"))
	return o
}

// Registry returns the observer's metrics registry (nil for a nil
// observer — and a nil *Registry is itself a no-op registry).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's event trace (nil for a nil observer —
// and a nil *Trace is itself a no-op trace).
func (o *Observer) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Counter registers (or looks up) a counter. Call once and cache the
// handle; the handle's Add/Inc are the hot-path operations.
func (o *Observer) Counter(name string, labels ...string) *Counter {
	return o.Registry().Counter(name, labels...)
}

// Gauge registers (or looks up) a gauge.
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	return o.Registry().Gauge(name, labels...)
}

// Histogram registers (or looks up) a histogram.
func (o *Observer) Histogram(name string, labels ...string) *Histogram {
	return o.Registry().Histogram(name, labels...)
}

// Emit appends a typed event to the trace (no-op on a nil observer).
func (o *Observer) Emit(typ EventType, job, subject, detail string) {
	o.Tracer().Emit(typ, job, subject, detail)
}
