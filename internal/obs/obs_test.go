package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestTraceOverflow pins the ring's class-based overflow contract: past
// capacity, lifecycle chatter is dropped-new, while control-plane
// decision events evict the oldest lifecycle event (the oldest event
// outright once only decisions remain). Every displacement counts in
// Dropped; the ring never blocks and never grows past its capacity.
func TestTraceOverflow(t *testing.T) {
	const capacity = 8
	tr := NewTrace(capacity)
	// Lifecycle chatter past capacity: dropped-new, oldest retained.
	for i := 0; i < 2*capacity; i++ {
		tr.Emit(EvTaskScheduled, "job", fmt.Sprintf("life-%d", i), "")
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("retained %d events, want %d", got, capacity)
	}
	if got := tr.Dropped(); got != capacity {
		t.Fatalf("dropped %d events, want %d", got, capacity)
	}
	if got := cap(tr.ring); got != capacity {
		t.Fatalf("ring reallocated: cap %d, want %d", got, capacity)
	}
	evs := tr.Events("", "")
	for i, e := range evs {
		if want := fmt.Sprintf("life-%d", i); e.Subject != want {
			t.Fatalf("event %d subject %q, want %q", i, e.Subject, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("non-monotonic seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
		if i > 0 && evs[i].TMicros < evs[i-1].TMicros {
			t.Fatalf("non-monotonic time at %d", i)
		}
	}
	// Decision events arriving at a full ring are never starved: each
	// evicts the oldest lifecycle event instead of being dropped.
	for i := 0; i < capacity; i++ {
		tr.Emit(EvTaskCloned, "job", fmt.Sprintf("dec-%d", i), "")
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("retained %d events after decisions, want %d", got, capacity)
	}
	if got := tr.Dropped(); got != 2*capacity {
		t.Fatalf("dropped %d events, want %d", got, 2*capacity)
	}
	if got := len(tr.Events("", EvTaskCloned)); got != capacity {
		t.Fatalf("retained %d decision events, want all %d", got, capacity)
	}
	// All-decision ring: a further decision evicts the oldest decision.
	tr.Emit(EvKeyIsolated, "job", "edge", "")
	evs = tr.Events("", "")
	if len(evs) != capacity || evs[0].Subject != "dec-1" || evs[capacity-1].Subject != "edge" {
		t.Fatalf("all-decision eviction wrong: %+v", evs)
	}
}

// TestTraceConcurrentEmit hammers the ring from many goroutines; the
// invariant len+dropped == emitted must hold exactly.
func TestTraceConcurrentEmit(t *testing.T) {
	const capacity, emitters, perEmitter = 64, 8, 100
	tr := NewTrace(capacity)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				tr.Emit(EvLeaseGrant, "j", "n", "")
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != emitters*perEmitter {
		t.Fatalf("len+dropped = %d, want %d", got, emitters*perEmitter)
	}
}

// TestTraceFilters checks job/type filtering in Events.
func TestTraceFilters(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(EvTaskCloned, "a", "t1", "")
	tr.Emit(EvPartitionSplit, "a", "e1", "")
	tr.Emit(EvTaskCloned, "b", "t2", "")
	if got := len(tr.Events("a", "")); got != 2 {
		t.Fatalf("job filter: %d events, want 2", got)
	}
	if got := len(tr.Events("", EvTaskCloned)); got != 2 {
		t.Fatalf("type filter: %d events, want 2", got)
	}
	if got := len(tr.Events("b", EvTaskCloned)); got != 1 {
		t.Fatalf("combined filter: %d events, want 1", got)
	}
}

// TestNilObserverIsNoOp pins constraint 2: a nil observer and all of its
// handles are callable and do nothing.
func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.Counter("hurricane_test_total").Inc()
	o.Gauge("hurricane_test_depth").Set(3)
	o.Histogram("hurricane_test_lat").Observe(100)
	o.Emit(EvTaskCloned, "j", "t", "")
	if o.Tracer().Len() != 0 || o.Tracer().Dropped() != 0 {
		t.Fatal("nil trace retained events")
	}
	if got := o.Registry().Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %v", got)
	}
	var tr *Trace
	if tr.Events("", "") != nil {
		t.Fatal("nil trace Events non-nil")
	}
}

// TestRegistryHandles checks registration identity and snapshot values.
func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hurricane_core_clones_total", "job", "q1")
	c2 := r.Counter("hurricane_core_clones_total", "job", "q1")
	if c1 != c2 {
		t.Fatal("same name+labels returned distinct counter handles")
	}
	other := r.Counter("hurricane_core_clones_total", "job", "q2")
	if other == c1 {
		t.Fatal("distinct labels shared a handle")
	}
	c1.Add(3)
	other.Inc()
	r.Gauge("hurricane_sched_queue_depth").Set(2)

	snap := r.Snapshot()
	if got := snap[`hurricane_core_clones_total{job="q1"}`]; got != 3 {
		t.Fatalf("q1 clones = %v, want 3", got)
	}
	if got := snap[`hurricane_core_clones_total{job="q2"}`]; got != 1 {
		t.Fatalf("q2 clones = %v, want 1", got)
	}
	if got := snap["hurricane_sched_queue_depth"]; got != 2 {
		t.Fatalf("queue depth = %v, want 2", got)
	}

	// SnapshotFor narrows to one job, strips the label, keeps globals.
	job := r.SnapshotFor("job", "q1")
	if got := job["hurricane_core_clones_total"]; got != 3 {
		t.Fatalf("SnapshotFor clones = %v, want 3", got)
	}
	if _, ok := job[`hurricane_core_clones_total{job="q2"}`]; ok {
		t.Fatal("SnapshotFor leaked a foreign job's series")
	}
	if got := job["hurricane_sched_queue_depth"]; got != 2 {
		t.Fatalf("SnapshotFor dropped global series: %v", job)
	}
}

// TestHistogramQuantiles sanity-checks the power-of-two quantile
// estimates: estimates land within the observation's bucket (a 2x
// range).
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000) // 1ms..100ms in µs
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 32_000 || p50 > 128_000 {
		t.Fatalf("p50 = %d, want within [32000,128000] (true 50000)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64_000 || p99 > 256_000 {
		t.Fatalf("p99 = %d, want within [64000,256000] (true 99000)", p99)
	}
	if h.Quantile(0.5) < h.Quantile(0.1) {
		t.Fatal("quantiles not monotone")
	}
}

// TestWriteText checks the exposition format output.
func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("hurricane_core_splits_total", "job", "q1").Add(4)
	r.Histogram("hurricane_ctrl_snapshot_lag_us").Observe(500)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hurricane_core_splits_total{job=\"q1\"} 4\n",
		"hurricane_ctrl_snapshot_lag_us_count 1\n",
		"hurricane_ctrl_snapshot_lag_us_p99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
