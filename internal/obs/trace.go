package obs

import (
	"sync"
	"time"
)

// EventType names one kind of engine decision. The vocabulary is closed
// on purpose — the trace is a decision log, not a logging framework.
type EventType string

const (
	// EvPartitionSplit: the control plane split a hot partition
	// (subject = edge, detail = leaf and fan).
	EvPartitionSplit EventType = "PartitionSplit"
	// EvKeyIsolated: a heavy key was isolated onto dedicated/spread
	// partitions (subject = edge, detail = key and share).
	EvKeyIsolated EventType = "KeyIsolated"
	// EvTaskCloned: the master started a clone worker (subject = task).
	EvTaskCloned EventType = "TaskCloned"
	// EvCloneYielded: a clone was asked to wind down for fair-share
	// preemption (subject = task/worker).
	EvCloneYielded EventType = "CloneYielded"
	// EvMapRevision: a writer adopted a newer partition-map version
	// (subject = edge, detail = version).
	EvMapRevision EventType = "MapRevision"
	// EvLeaseGrant: the lease allocator billed a slot to a job.
	EvLeaseGrant EventType = "LeaseGrant"
	// EvLeasePreempt: the scheduler asked a job to yield clone slots to
	// a starved neighbor (detail = slot count).
	EvLeasePreempt EventType = "LeasePreempt"
	// EvWindowSealed: a streaming window's ingest sealed (subject =
	// window job id).
	EvWindowSealed EventType = "WindowSealed"
	// EvWindowRetried: a streaming window was reset and re-run after a
	// failure (subject = window job id).
	EvWindowRetried EventType = "WindowRetried"
	// EvJoinStrategyChosen: the planner picked a physical join strategy
	// (subject = join edge or node, detail = strategy and reason).
	EvJoinStrategyChosen EventType = "JoinStrategyChosen"
	// EvTaskScheduled: the master published a task's blueprints (subject
	// = task).
	EvTaskScheduled EventType = "TaskScheduled"
	// EvTaskFinished: all workers of a task completed (subject = task).
	EvTaskFinished EventType = "TaskFinished"
	// EvStorageSlowOp: a storage operation exceeded the wire meter's
	// slow-op threshold (subject = node or bag, detail = op, bag, and
	// duration). Emitted by the storage-tier meters (transport.Meter).
	EvStorageSlowOp EventType = "StorageSlowOp"
	// EvAlertRaised: a watchdog rule fired (subject = rule name, detail =
	// series, observed value, and threshold). Emitted by the Watch layer
	// on the sampling cadence; decision-class, so raised alerts survive
	// ring eviction like the mitigation decisions they point at.
	EvAlertRaised EventType = "AlertRaised"
)

// Event is one trace entry. TMicros is monotonic time since the trace
// was created, so event deltas are meaningful even across wall-clock
// adjustments.
type Event struct {
	Seq     uint64    `json:"seq"`
	TMicros int64     `json:"t_us"`
	Type    EventType `json:"type"`
	Job     string    `json:"job,omitempty"`
	Subject string    `json:"subject,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// Trace is the causal trace ID of the submission that owns the
	// event's job, when one was registered via SetJobTrace. It is what
	// lets a remote client correlate its submission with the serving
	// cluster's events across the process boundary.
	Trace string `json:"trace,omitempty"`
}

// DefaultTraceCap is the default trace ring capacity.
const DefaultTraceCap = 4096

// Trace is a bounded, mutex-guarded event log. At capacity it degrades
// by event class rather than uniformly: lifecycle chatter (schedule /
// finish / lease-grant / window-seal notifications, which dominate the
// volume on long runs) is dropped new-at-cap, while control-plane
// *decision* events (splits, isolations, clones, yields, map revisions,
// preemptions, retries, join choices) evict the oldest lifecycle event —
// or, failing that, the oldest event outright — so the latest mitigation
// decisions are always retained. Every displaced event is counted in
// Dropped. The buffer never blocks the emitter and never reallocates
// past its capacity. A nil *Trace is a no-op.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	ring    []Event
	seq     uint64
	dropped uint64
	// jobTrace maps a job name to the causal trace ID minted at its
	// submission; Emit stamps it onto every event of that job.
	jobTrace map[string]string
	// dropCtr, when bound, mirrors every displacement into a registry
	// counter (hurricane_trace_dropped_total) so ring pressure shows up
	// on /metrics and the timeline without calling Go APIs.
	dropCtr *Counter
}

// decisionEvent classifies the event types whose latest occurrences must
// survive a full ring — the control-plane decisions skew forensics are
// about. The rest (lifecycle notifications) are the evictable bulk.
func decisionEvent(typ EventType) bool {
	switch typ {
	case EvPartitionSplit, EvKeyIsolated, EvTaskCloned, EvCloneYielded,
		EvMapRevision, EvLeasePreempt, EvWindowRetried, EvJoinStrategyChosen,
		EvStorageSlowOp, EvAlertRaised:
		return true
	}
	return false
}

// NewTrace returns a trace ring with the given capacity (cap <= 0
// selects DefaultTraceCap).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{start: time.Now(), ring: make([]Event, 0, capacity)}
}

// BindDropCounter mirrors future displacement counts into ctr (pass the
// registry's hurricane_trace_dropped_total handle). Call during setup,
// before concurrent emitters start.
func (t *Trace) BindDropCounter(ctr *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropCtr = ctr
	t.mu.Unlock()
}

// Emit appends one event. At capacity, lifecycle events are dropped;
// decision events evict the oldest lifecycle event (oldest overall when
// the ring holds only decisions). Either way the displaced event counts
// toward Dropped. The eviction scan is linear in the ring, which is fine
// at control-plane rates — a full ring means the job already emitted
// thousands of events.
func (t *Trace) Emit(typ EventType, job, subject, detail string) {
	if t == nil {
		return
	}
	now := time.Since(t.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == cap(t.ring) {
		if !decisionEvent(typ) {
			t.dropped++
			t.dropCtr.Inc()
			return
		}
		evict := 0
		for i := range t.ring {
			if !decisionEvent(t.ring[i].Type) {
				evict = i
				break
			}
		}
		copy(t.ring[evict:], t.ring[evict+1:])
		t.ring = t.ring[:len(t.ring)-1]
		t.dropped++
		t.dropCtr.Inc()
	}
	t.seq++
	t.ring = append(t.ring, Event{
		Seq: t.seq, TMicros: now, Type: typ,
		Job: job, Subject: subject, Detail: detail,
		Trace: t.jobTrace[job],
	})
}

// SetJobTrace registers the causal trace ID minted at job's submission.
// Subsequent events for that job carry the ID, which is how a remote
// submitter correlates its submission with this process's trace ring.
func (t *Trace) SetJobTrace(job, traceID string) {
	if t == nil || job == "" || traceID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jobTrace == nil {
		t.jobTrace = make(map[string]string)
	}
	t.jobTrace[job] = traceID
}

// JobForTrace resolves a trace ID back to the job name it was registered
// for ("" when unknown). Debug endpoints use it to answer ?trace=
// queries from remote submitters that never learned the job's name.
func (t *Trace) JobForTrace(traceID string) string {
	if t == nil || traceID == "" {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for job, id := range t.jobTrace {
		if id == traceID {
			return job
		}
	}
	return ""
}

// Events returns a copy of the retained events, oldest first. job and
// typ filter when non-empty.
func (t *Trace) Events(job string, typ EventType) []Event {
	return t.EventsFiltered(job, "", typ)
}

// EventsFiltered is Events with an additional trace-ID filter: when
// traceID is non-empty only events stamped with that causal trace ID
// are returned. All filters compose (empty string = wildcard).
func (t *Trace) EventsFiltered(job, traceID string, typ EventType) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	for _, e := range t.ring {
		if job != "" && e.Job != job {
			continue
		}
		if traceID != "" && e.Trace != traceID {
			continue
		}
		if typ != "" && e.Type != typ {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns the number of events dropped at capacity.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
