package obs

import (
	"strings"
	"testing"
)

// view builds a SampleView by hand for rule-evaluation tests.
func view(t int64, values, rates map[string]float64) *SampleView {
	if values == nil {
		values = map[string]float64{}
	}
	if rates == nil {
		rates = map[string]float64{}
	}
	return &SampleView{TUs: t, Values: values, Rates: rates}
}

func TestWatchThresholdRuleFiresAndResolves(t *testing.T) {
	o := New(0)
	w := NewWatch(o, []Rule{{
		Name: "hot", Kind: KindThreshold,
		Series: "hurricane_skew_partition_top_share", Threshold: 0.5, For: 2,
	}})
	series := `hurricane_skew_partition_top_share{edge="e",job="j"}`

	// One hot sample: armed but not firing (For: 2).
	w.Eval(view(1, map[string]float64{series: 0.9}, nil))
	if s := w.Snapshot(); len(s.Alerts) != 0 {
		t.Fatalf("alert after 1/2 samples: %+v", s.Alerts)
	}
	// Second consecutive: fires once.
	w.Eval(view(2, map[string]float64{series: 0.8}, nil))
	// Still hot: no duplicate alert.
	w.Eval(view(3, map[string]float64{series: 0.8}, nil))
	s := w.Snapshot()
	if len(s.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly 1", s.Alerts)
	}
	a := s.Alerts[0]
	if a.Rule != "hot" || a.Series != series || a.Value != 0.8 || a.ResolvedUs != 0 {
		t.Fatalf("alert = %+v", a)
	}

	// The counter bumped once, labeled by rule.
	if got := o.Registry().Snapshot()[`hurricane_watch_alerts_total{rule="hot"}`]; got != 1 {
		t.Fatalf("alerts counter = %v, want 1", got)
	}

	// The trace carries a decision-class AlertRaised event.
	evs := o.Tracer().Events("", EvAlertRaised)
	if len(evs) != 1 {
		t.Fatalf("AlertRaised events = %+v, want 1", evs)
	}
	if evs[0].Subject != "hot" || !strings.Contains(evs[0].Detail, "value=0.8") {
		t.Fatalf("event = %+v", evs[0])
	}
	if !decisionEvent(EvAlertRaised) {
		t.Fatal("EvAlertRaised is not decision-class")
	}

	// Cooling below threshold resolves the alert in the history.
	w.Eval(view(4, map[string]float64{series: 0.1}, nil))
	s = w.Snapshot()
	if s.Alerts[0].ResolvedUs != 4 {
		t.Fatalf("alert not resolved: %+v", s.Alerts[0])
	}
	// Re-heating for two samples raises a second alert.
	w.Eval(view(5, map[string]float64{series: 0.9}, nil))
	w.Eval(view(6, map[string]float64{series: 0.9}, nil))
	if s = w.Snapshot(); len(s.Alerts) != 2 {
		t.Fatalf("alerts after re-fire = %+v, want 2", s.Alerts)
	}
}

func TestWatchRateRule(t *testing.T) {
	w := NewWatch(nil, []Rule{{
		Name: "drops", Kind: KindRate,
		Series: "hurricane_trace_dropped_total", Threshold: 50,
	}})
	// Rates (not raw values) drive the rule.
	w.Eval(view(1, map[string]float64{"hurricane_trace_dropped_total": 1e6}, nil))
	if s := w.Snapshot(); len(s.Alerts) != 0 {
		t.Fatalf("rate rule fired on raw value: %+v", s.Alerts)
	}
	w.Eval(view(2, nil, map[string]float64{"hurricane_trace_dropped_total": 80}))
	s := w.Snapshot()
	if len(s.Alerts) != 1 || s.Alerts[0].Value != 80 {
		t.Fatalf("alerts = %+v", s.Alerts)
	}
}

func TestWatchRatioRule(t *testing.T) {
	w := NewWatch(nil, []Rule{{
		Name: "straggler", Kind: KindRatio,
		Num: "hurricane_core_task_span_ns_p99", Den: "hurricane_core_task_span_ns_p50",
		Threshold: 4, DenMin: 1e5,
	}})
	lbl := `{job="j"}`
	// Denominator below DenMin: skipped, no matter the ratio.
	w.Eval(view(1, map[string]float64{
		"hurricane_core_task_span_ns_p99" + lbl: 1e6,
		"hurricane_core_task_span_ns_p50" + lbl: 10,
	}, nil))
	if s := w.Snapshot(); len(s.Alerts) != 0 {
		t.Fatalf("ratio fired under DenMin: %+v", s.Alerts)
	}
	// Labels must join: a p99 with no matching p50 label-set is skipped.
	w.Eval(view(2, map[string]float64{
		"hurricane_core_task_span_ns_p99" + lbl: 1e7,
		`hurricane_core_task_span_ns_p50{job="other"}`: 1e6,
	}, nil))
	if s := w.Snapshot(); len(s.Alerts) != 0 {
		t.Fatalf("ratio fired across label-sets: %+v", s.Alerts)
	}
	// 10x spread over a real denominator: fires.
	w.Eval(view(3, map[string]float64{
		"hurricane_core_task_span_ns_p99" + lbl: 1e7,
		"hurricane_core_task_span_ns_p50" + lbl: 1e6,
	}, nil))
	s := w.Snapshot()
	if len(s.Alerts) != 1 || s.Alerts[0].Value != 10 {
		t.Fatalf("alerts = %+v", s.Alerts)
	}
	if s.Alerts[0].Series != "hurricane_core_task_span_ns_p99"+lbl {
		t.Fatalf("alert series = %q", s.Alerts[0].Series)
	}
}

func TestWatchDefaultRulesCoverBuiltins(t *testing.T) {
	names := map[string]bool{}
	for _, r := range DefaultRules() {
		names[r.Name] = true
	}
	for _, want := range []string{
		"shuffle-heat-imbalance", "straggler-task-time",
		"storage-slow-ops", "lease-starvation", "trace-drops",
	} {
		if !names[want] {
			t.Fatalf("DefaultRules missing %q (have %v)", want, names)
		}
	}
}

func TestWatchNilSafe(t *testing.T) {
	var w *Watch
	w.Eval(view(1, map[string]float64{"x": 1}, nil))
	w.Eval(nil)
	if s := w.Snapshot(); s.Evals != 0 || s.Alerts != nil {
		t.Fatalf("nil watch snapshot = %+v", s)
	}
	if w.Rules() != nil || w.Evals() != 0 {
		t.Fatal("nil watch accessors not zero")
	}
	// A real watch evaluating a nil view (sampler off) is also a no-op.
	w2 := NewWatch(nil, nil)
	w2.Eval(nil)
	if w2.Evals() != 0 {
		t.Fatal("nil view counted as an eval")
	}
}
