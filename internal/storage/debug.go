package storage

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// DebugHandler returns the HTTP handler a standalone storage process
// (cmd/hurricane-storage -debug) mounts for live observability:
//
//	/metrics        Prometheus text exposition of the node's bound
//	                observer (hurricane_storage_op_* series from the
//	                node and TCP-server meters)
//	/debug/storage  the Node.Stats JSON summary: per-bag chunk/byte/
//	                read-pointer stats, node totals, sketch edge count
//
// When BindTelemetry has attached a recorder and watchdog, the
// continuous-telemetry surfaces are live too — the same three the
// cluster mux serves, so one dashboard works against either process:
//
//	/debug/timeseries  sampled metric history (?series=, ?since=)
//	/debug/alerts      watchdog rules, states, raised alerts
//	/debug/dash        the self-contained live dashboard page
//
// Handlers read the same structures the request path writes, so they
// are safe against a serving node. The registry is empty until Bind is
// called.
func (n *Node) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	// Resolve the recorder/watch per request: BindTelemetry may run
	// after the mux was built.
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		obs.TimeseriesHandler(n.Recorder()).ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, r *http.Request) {
		obs.AlertsHandler(n.Watch()).ServeHTTP(w, r)
	})
	mux.Handle("/debug/dash", obs.DashHandler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = n.Observer().Registry().WriteText(w)
	})
	mux.HandleFunc("/debug/storage", func(w http.ResponseWriter, r *http.Request) {
		st := n.Stats()
		if st.Bags == nil {
			st.Bags = []BagStats{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	return mux
}
