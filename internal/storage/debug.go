package storage

import (
	"encoding/json"
	"net/http"
)

// DebugHandler returns the HTTP handler a standalone storage process
// (cmd/hurricane-storage -debug) mounts for live observability:
//
//	/metrics        Prometheus text exposition of the node's bound
//	                observer (hurricane_storage_op_* series from the
//	                node and TCP-server meters)
//	/debug/storage  the Node.Stats JSON summary: per-bag chunk/byte/
//	                read-pointer stats, node totals, sketch edge count
//
// Handlers read the same structures the request path writes, so they
// are safe against a serving node. The registry is empty until Bind is
// called.
func (n *Node) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = n.Observer().Registry().WriteText(w)
	})
	mux.HandleFunc("/debug/storage", func(w http.ResponseWriter, r *http.Request) {
		st := n.Stats()
		if st.Bags == nil {
			st.Bags = []BagStats{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	return mux
}
