package storage

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
	"repro/internal/transport"
)

func insert(t *testing.T, n *Node, bagName string, data []byte) {
	t.Helper()
	resp := n.Handle(&transport.Request{Op: transport.OpInsert, Bag: bagName, Data: data})
	if !resp.OK() {
		t.Fatalf("insert: %+v", resp)
	}
}

func TestNodeInsertRemoveFIFO(t *testing.T) {
	n := NewNode("s0")
	for i := 0; i < 10; i++ {
		insert(t, n, "b", []byte{byte(i)})
	}
	n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "b"})
	for i := 0; i < 10; i++ {
		resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
		if !resp.OK() || resp.Data[0] != byte(i) {
			t.Fatalf("remove %d: %+v", i, resp)
		}
		if resp.ReadChunks != int64(i+1) {
			t.Fatalf("remove %d: ReadChunks = %d", i, resp.ReadChunks)
		}
	}
	resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if resp.Status != transport.StatusEmpty {
		t.Fatalf("after drain: %+v", resp)
	}
}

func TestNodeRemoveUnsealedEmpty(t *testing.T) {
	n := NewNode("s0")
	resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "new"})
	if resp.Status != transport.StatusAgain {
		t.Fatalf("unsealed empty: %+v", resp)
	}
}

func TestNodeSealRejectsInsert(t *testing.T) {
	n := NewNode("s0")
	n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "b"})
	resp := n.Handle(&transport.Request{Op: transport.OpInsert, Bag: "b", Data: []byte("x")})
	if resp.Status != transport.StatusErr {
		t.Fatalf("insert into sealed bag: %+v", resp)
	}
}

func TestNodeSample(t *testing.T) {
	n := NewNode("s0")
	insert(t, n, "b", []byte("abc"))
	insert(t, n, "b", []byte("de"))
	n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	resp := n.Handle(&transport.Request{Op: transport.OpSample, Bag: "b"})
	if resp.TotalChunks != 2 || resp.ReadChunks != 1 || resp.TotalBytes != 5 || resp.ReadBytes != 3 {
		t.Fatalf("sample: %+v", resp)
	}
	// Sampling a nonexistent bag reports zeroes without creating it.
	resp = n.Handle(&transport.Request{Op: transport.OpSample, Bag: "ghost"})
	if !resp.OK() || resp.TotalChunks != 0 {
		t.Fatalf("ghost sample: %+v", resp)
	}
	if len(n.BagNames()) != 1 {
		t.Fatalf("ghost bag was created: %v", n.BagNames())
	}
}

func TestNodeRewindAndReplay(t *testing.T) {
	n := NewNode("s0")
	for i := 0; i < 5; i++ {
		insert(t, n, "b", []byte{byte(i)})
	}
	for i := 0; i < 5; i++ {
		n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	}
	n.Handle(&transport.Request{Op: transport.OpRewind, Bag: "b", Arg: 0})
	resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if !resp.OK() || resp.Data[0] != 0 {
		t.Fatalf("replay after rewind: %+v", resp)
	}
	// Rewind to a mid position.
	n.Handle(&transport.Request{Op: transport.OpRewind, Bag: "b", Arg: 3})
	resp = n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if !resp.OK() || resp.Data[0] != 3 {
		t.Fatalf("rewind(3): %+v", resp)
	}
	// Out-of-range rewind errors.
	resp = n.Handle(&transport.Request{Op: transport.OpRewind, Bag: "b", Arg: 99})
	if resp.Status != transport.StatusErr {
		t.Fatalf("rewind(99): %+v", resp)
	}
}

func TestNodeAdvanceMonotonic(t *testing.T) {
	n := NewNode("s0")
	for i := 0; i < 5; i++ {
		insert(t, n, "b", []byte{byte(i)})
	}
	n.Handle(&transport.Request{Op: transport.OpAdvance, Bag: "b", Arg: 3})
	// Advancing backward is a no-op.
	n.Handle(&transport.Request{Op: transport.OpAdvance, Bag: "b", Arg: 1})
	resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if !resp.OK() || resp.Data[0] != 3 {
		t.Fatalf("after advance: %+v", resp)
	}
	// Advancing past the end clamps.
	n.Handle(&transport.Request{Op: transport.OpAdvance, Bag: "b", Arg: 100})
	resp = n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if resp.Status != transport.StatusAgain {
		t.Fatalf("after clamped advance: %+v", resp)
	}
}

func TestNodeDiscard(t *testing.T) {
	n := NewNode("s0")
	insert(t, n, "b", []byte("x"))
	n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "b"})
	n.Handle(&transport.Request{Op: transport.OpDiscard, Bag: "b"})
	resp := n.Handle(&transport.Request{Op: transport.OpSample, Bag: "b"})
	if resp.TotalChunks != 0 || resp.Sealed {
		t.Fatalf("after discard: %+v", resp)
	}
	// Discarded bags accept inserts again (restart path).
	insert(t, n, "b", []byte("y"))
}

func TestNodeDelete(t *testing.T) {
	n := NewNode("s0")
	insert(t, n, "b", []byte("x"))
	n.Handle(&transport.Request{Op: transport.OpDelete, Bag: "b"})
	if len(n.BagNames()) != 0 {
		t.Fatalf("bag not deleted: %v", n.BagNames())
	}
	// Deleting a nonexistent bag succeeds (idempotent GC).
	resp := n.Handle(&transport.Request{Op: transport.OpDelete, Bag: "ghost"})
	if !resp.OK() {
		t.Fatalf("delete ghost: %+v", resp)
	}
}

func TestNodeRename(t *testing.T) {
	n := NewNode("s0")
	insert(t, n, "src", []byte("x"))
	resp := n.Handle(&transport.Request{Op: transport.OpRename, Bag: "src", Dst: "dst"})
	if !resp.OK() {
		t.Fatalf("rename: %+v", resp)
	}
	got := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "dst"})
	if !got.OK() || string(got.Data) != "x" {
		t.Fatalf("read renamed: %+v", got)
	}
	// Renaming a missing source succeeds (the slot simply holds nothing).
	resp = n.Handle(&transport.Request{Op: transport.OpRename, Bag: "missing", Dst: "other"})
	if !resp.OK() {
		t.Fatalf("rename missing: %+v", resp)
	}
	// Renaming onto an existing bag fails.
	insert(t, n, "a", []byte("1"))
	insert(t, n, "b", []byte("2"))
	resp = n.Handle(&transport.Request{Op: transport.OpRename, Bag: "a", Dst: "b"})
	if resp.Status != transport.StatusErr {
		t.Fatalf("rename onto existing: %+v", resp)
	}
}

func TestNodeReadAt(t *testing.T) {
	n := NewNode("s0")
	for i := 0; i < 3; i++ {
		insert(t, n, "b", []byte{byte(i)})
	}
	// ReadAt does not consume.
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < 3; i++ {
			resp := n.Handle(&transport.Request{Op: transport.OpReadAt, Bag: "b", Arg: i})
			if !resp.OK() || resp.Data[0] != byte(i) {
				t.Fatalf("readAt %d: %+v", i, resp)
			}
		}
	}
	resp := n.Handle(&transport.Request{Op: transport.OpReadAt, Bag: "b", Arg: 3})
	if resp.Status != transport.StatusAgain {
		t.Fatalf("readAt past end (unsealed): %+v", resp)
	}
	n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "b"})
	resp = n.Handle(&transport.Request{Op: transport.OpReadAt, Bag: "b", Arg: 3})
	if resp.Status != transport.StatusEmpty {
		t.Fatalf("readAt past end (sealed): %+v", resp)
	}
}

func TestNodeDraining(t *testing.T) {
	n := NewNode("s0")
	insert(t, n, "b", []byte("x"))
	n.SetDraining(true)
	resp := n.Handle(&transport.Request{Op: transport.OpInsert, Bag: "b", Data: []byte("y")})
	if resp.Status != transport.StatusRemoved {
		t.Fatalf("insert while draining: %+v", resp)
	}
	// Removes still served while draining (§3.4).
	resp = n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if !resp.OK() || string(resp.Data) != "x" {
		t.Fatalf("remove while draining: %+v", resp)
	}
	n.SetDraining(false)
	insert(t, n, "b", []byte("z"))
}

func TestDiskBackendPersistence(t *testing.T) {
	dir := t.TempDir()
	n := NewNode("s0", WithDir(dir))
	var want [][]byte
	for i := 0; i < 20; i++ {
		data := bytes.Repeat([]byte{byte(i)}, i+1)
		want = append(want, data)
		insert(t, n, "b", data)
	}
	// Consume a few, then "restart" the node by reopening the directory.
	for i := 0; i < 5; i++ {
		n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	}
	n2 := NewNode("s0", WithDir(dir))
	// The restarted node rebuilds the chunk index from the file; the read
	// pointer resets (the master rewinds/restarts affected tasks).
	for i := 0; i < 20; i++ {
		resp := n2.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
		if !resp.OK() || !bytes.Equal(resp.Data, want[i]) {
			t.Fatalf("after restart, chunk %d: %+v", i, resp)
		}
	}
}

func TestDiskBackendOps(t *testing.T) {
	dir := t.TempDir()
	n := NewNode("s0", WithDir(dir))
	for i := 0; i < 10; i++ {
		insert(t, n, "b", []byte{byte(i)})
	}
	n.Handle(&transport.Request{Op: transport.OpRewind, Bag: "b", Arg: 7})
	resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
	if !resp.OK() || resp.Data[0] != 7 {
		t.Fatalf("disk rewind: %+v", resp)
	}
	resp = n.Handle(&transport.Request{Op: transport.OpReadAt, Bag: "b", Arg: 2})
	if !resp.OK() || resp.Data[0] != 2 {
		t.Fatalf("disk readAt: %+v", resp)
	}
	resp = n.Handle(&transport.Request{Op: transport.OpSample, Bag: "b"})
	if resp.TotalChunks != 10 || resp.ReadChunks != 8 {
		t.Fatalf("disk sample: %+v", resp)
	}
	n.Handle(&transport.Request{Op: transport.OpDiscard, Bag: "b"})
	resp = n.Handle(&transport.Request{Op: transport.OpSample, Bag: "b"})
	if resp.TotalBytes != 0 {
		t.Fatalf("disk discard: %+v", resp)
	}
	n.Handle(&transport.Request{Op: transport.OpDelete, Bag: "b"})
}

// TestExactlyOnceProperty: however inserts and removes interleave, each
// chunk is returned exactly once per rewind cycle.
func TestExactlyOnceProperty(t *testing.T) {
	f := func(numChunks uint8) bool {
		n := NewNode("s0")
		total := int(numChunks%64) + 1
		for i := 0; i < total; i++ {
			resp := n.Handle(&transport.Request{
				Op: transport.OpInsert, Bag: "b",
				Data: []byte(fmt.Sprintf("c%d", i)),
			})
			if !resp.OK() {
				return false
			}
		}
		n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "b"})
		seen := map[string]bool{}
		for {
			resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "b"})
			if resp.Status == transport.StatusEmpty {
				break
			}
			if !resp.OK() || seen[string(resp.Data)] {
				return false
			}
			seen[string(resp.Data)] = true
		}
		return len(seen) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownOp(t *testing.T) {
	n := NewNode("s0")
	resp := n.Handle(&transport.Request{Op: transport.Op(99)})
	if resp.Status != transport.StatusErr {
		t.Fatalf("unknown op: %+v", resp)
	}
}

// TestNodeSketchPushFetch: OpSketch with a payload stores a producer's
// cumulative edge stats; without a payload it returns the merge across
// producers. Cumulative re-pushes replace, so nothing double-counts.
func TestNodeSketchPushFetch(t *testing.T) {
	n := NewNode("s0")

	push := func(writer string, counts map[string]uint64) {
		t.Helper()
		st := sketch.NewEdgeStats()
		for k, v := range counts {
			st.Counts[k] = v
			st.CM.Add([]byte(k), v)
		}
		data, err := st.Encode()
		if err != nil {
			t.Fatal(err)
		}
		resp := n.Handle(&transport.Request{
			Op: transport.OpSketch, Bag: "shuf", Dst: writer, Data: data,
		})
		if !resp.OK() {
			t.Fatalf("push: %+v", resp)
		}
	}
	fetch := func() *sketch.EdgeStats {
		t.Helper()
		resp := n.Handle(&transport.Request{Op: transport.OpSketch, Bag: "shuf"})
		if !resp.OK() {
			t.Fatalf("fetch: %+v", resp)
		}
		st, err := sketch.DecodeEdgeStats(resp.Data)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Empty fetch: zero stats, not an error.
	if st := fetch(); st.Total() != 0 {
		t.Fatalf("empty edge reports total %d", st.Total())
	}

	push("w0", map[string]uint64{"shuf.p0": 100, "shuf.p1": 10})
	push("w1", map[string]uint64{"shuf.p0": 50})
	st := fetch()
	if st.Counts["shuf.p0"] != 150 || st.Counts["shuf.p1"] != 10 {
		t.Fatalf("merged counts %v", st.Counts)
	}

	// w0 re-pushes larger cumulative stats: replaces, not adds.
	push("w0", map[string]uint64{"shuf.p0": 120, "shuf.p1": 30})
	st = fetch()
	if st.Counts["shuf.p0"] != 170 || st.Counts["shuf.p1"] != 30 {
		t.Fatalf("counts after re-push %v", st.Counts)
	}
	if est := st.CM.Estimate([]byte("shuf.p0")); est < 170 {
		t.Fatalf("merged count-min undercounts: %d", est)
	}

	// Corrupt pushes are rejected and never poison fetches.
	resp := n.Handle(&transport.Request{
		Op: transport.OpSketch, Bag: "shuf", Dst: "w2", Data: []byte("{"),
	})
	if resp.Status != transport.StatusErr {
		t.Fatalf("corrupt push accepted: %+v", resp)
	}
	if st := fetch(); st.Counts["shuf.p0"] != 170 {
		t.Fatalf("fetch after corrupt push: %v", st.Counts)
	}

	// Sketch state is per-edge.
	if resp := n.Handle(&transport.Request{Op: transport.OpSketch, Bag: "other"}); !resp.OK() {
		t.Fatalf("other edge fetch: %+v", resp)
	} else if st, _ := sketch.DecodeEdgeStats(resp.Data); st.Total() != 0 {
		t.Fatalf("edges share sketch state")
	}

	// A crafted blob with overflowing count-min dimensions is rejected,
	// not a panic (the TCP server has no recover).
	resp = n.Handle(&transport.Request{
		Op: transport.OpSketch, Bag: "shuf", Dst: "w3",
		Data: []byte(`{"cm":"gICAgICAgICAAQI="}`), // width=1<<63, depth=2
	})
	if resp.Status != transport.StatusErr {
		t.Fatalf("overflowing dimensions accepted: %+v", resp)
	}

	// SketchClear drops the edge's state.
	if resp := n.Handle(&transport.Request{
		Op: transport.OpSketch, Bag: "shuf", Arg: transport.SketchClear,
	}); !resp.OK() {
		t.Fatalf("clear: %+v", resp)
	}
	if st := fetch(); st.Total() != 0 {
		t.Fatalf("state survived clear: %v", st.Counts)
	}
}

func TestNodeDeletePrefix(t *testing.T) {
	n := NewNode("s0")
	for _, b := range []string{"j1/in#0", "j1/out~p0@e0#2", "j1/gb.shuf.p3.s1#0", "j2/in#0", "other#1"} {
		insert(t, n, b, []byte{1})
	}
	// Sketch state under the prefix is dropped too.
	st := sketch.NewEdgeStats()
	blob, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	n.Handle(&transport.Request{Op: transport.OpSketch, Bag: "j1/gb.shuf", Dst: "w0", Data: blob})

	resp := n.Handle(&transport.Request{Op: transport.OpDeletePrefix, Bag: "j1/"})
	if !resp.OK() {
		t.Fatalf("delete prefix: %+v", resp)
	}
	names := n.BagNames()
	for _, name := range names {
		if name != "j2/in#0" && name != "other#1" {
			t.Fatalf("bag %q survived / was wrongly deleted; remaining %v", name, names)
		}
	}
	if len(names) != 2 {
		t.Fatalf("remaining bags = %v, want j2/in#0 and other#1", names)
	}
	n.sketchMu.Lock()
	_, sketchAlive := n.sketches["j1/gb.shuf"]
	n.sketchMu.Unlock()
	if sketchAlive {
		t.Fatal("sketch state under deleted prefix survived")
	}
	// The empty prefix is refused outright.
	if resp := n.Handle(&transport.Request{Op: transport.OpDeletePrefix, Bag: ""}); resp.OK() {
		t.Fatal("empty prefix accepted")
	}
}
