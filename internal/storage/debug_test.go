package storage

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestNodeDebugHandler exercises the standalone storage node's HTTP
// surface end to end: drive some metered ops through the node, then
// scrape /metrics (Prometheus text with role="node" wire series) and
// /debug/storage (the per-bag chunk/byte/read-pointer JSON).
func TestNodeDebugHandler(t *testing.T) {
	n := NewNode("s0")
	n.Bind(obs.New(0), -1)

	for i := 0; i < 3; i++ {
		insert(t, n, "hot", []byte("abcd"))
	}
	insert(t, n, "cold", []byte("xy"))
	n.Handle(&transport.Request{Op: transport.OpSeal, Bag: "hot"})
	if resp := n.Handle(&transport.Request{Op: transport.OpRemove, Bag: "hot"}); !resp.OK() {
		t.Fatalf("remove: %+v", resp)
	}

	srv := httptest.NewServer(n.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		`hurricane_storage_op_total{role="node",node="s0",op="insert"} 4`,
		`hurricane_storage_op_total{role="node",node="s0",op="remove"} 1`,
		`hurricane_storage_op_total{role="node",node="s0",op="seal"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q; got:\n%s", want, body)
		}
	}

	body, ct = get("/debug/storage")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/storage content type %q", ct)
	}
	var stats NodeStats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/debug/storage not JSON: %v\n%s", err, body)
	}
	if stats.Node != "s0" || len(stats.Bags) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	byName := map[string]BagStats{}
	for _, b := range stats.Bags {
		byName[b.Bag] = b
	}
	hot := byName["hot"]
	if hot.TotalChunks != 3 || hot.ReadChunks != 1 || hot.TotalBytes != 12 || hot.ReadBytes != 4 || !hot.Sealed {
		t.Fatalf("hot bag stats = %+v", hot)
	}
	cold := byName["cold"]
	if cold.TotalChunks != 1 || cold.ReadChunks != 0 || cold.TotalBytes != 2 || cold.Sealed {
		t.Fatalf("cold bag stats = %+v", cold)
	}
	if stats.TotalChunks != 4 || stats.TotalBytes != 14 {
		t.Fatalf("node totals = %+v", stats)
	}
}

// TestNodeTelemetrySurfaces: a node with a bound recorder + watchdog
// serves the continuous-telemetry endpoints; binding after the mux was
// built works (per-request resolution), and an unbound node serves empty
// documents.
func TestNodeTelemetrySurfaces(t *testing.T) {
	n := NewNode("s0")
	o := obs.New(0)
	n.Bind(o, -1)
	srv := httptest.NewServer(n.DebugHandler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Unbound: valid empty documents, not errors.
	var ts struct {
		Series []obs.SeriesDump `json:"series"`
	}
	if err := json.Unmarshal([]byte(get("/debug/timeseries")), &ts); err != nil {
		t.Fatalf("unbound timeseries: %v", err)
	}
	if len(ts.Series) != 0 {
		t.Fatalf("unbound node has series: %+v", ts.Series)
	}

	// Bind after mux creation, drive an op, sample: the history shows up.
	rec := obs.NewRecorder(0)
	rec.AddSource(obs.RegistrySource(o.Registry()))
	watch := obs.NewWatch(o, nil)
	n.BindTelemetry(rec, watch)
	insert(t, n, "b", []byte("data"))
	watch.Eval(rec.Sample())

	if err := json.Unmarshal([]byte(get("/debug/timeseries?series=op_total")), &ts); err != nil {
		t.Fatal(err)
	}
	if len(ts.Series) == 0 {
		t.Fatal("no op_total series after bind + sample")
	}
	var al obs.Status
	if err := json.Unmarshal([]byte(get("/debug/alerts")), &al); err != nil {
		t.Fatal(err)
	}
	if al.Evals != 1 || len(al.Rules) == 0 {
		t.Fatalf("alerts = evals %d rules %d", al.Evals, len(al.Rules))
	}
	if body := get("/debug/dash"); !strings.Contains(body, "hurricane dash") {
		t.Fatal("/debug/dash not the dashboard page")
	}
}

// TestNodeStatsUnbound: Stats works without a bound observer, and an
// unbound node's DebugHandler still serves (empty) metrics rather than
// panicking.
func TestNodeStatsUnbound(t *testing.T) {
	n := NewNode("s1")
	insert(t, n, "b", []byte("z"))
	st := n.Stats()
	if st.Node != "s1" || st.TotalChunks != 1 || st.TotalBytes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	srv := httptest.NewServer(n.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics on unbound node: status %d", resp.StatusCode)
	}
}
