// Package storage implements Hurricane storage nodes.
//
// A storage node stores the local portion of every bag: an append-only
// sequence of chunks plus a read pointer. Inserts append in FIFO order;
// removes return the chunk at the read pointer and advance it, which is
// what guarantees that every chunk is delivered to exactly one task clone
// (§4.3 of the paper: bags are implemented as regular files; the append is
// atomic and the file pointer ensures a chunk is never returned twice).
//
// Two backends are provided: an in-memory backend (the default for the
// embedded engine and tests) and a disk backend that stores each bag as a
// file in a directory, mirroring the paper's ext4 implementation.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/transport"
)

// backend is the per-bag storage implementation.
type backend interface {
	insert(chunk []byte) error
	// remove returns the chunk at the read pointer and advances it.
	// ok is false when no unread chunk is available.
	remove() (chunk []byte, ok bool, err error)
	// readAt returns chunk i without consuming it.
	readAt(i int64) (chunk []byte, ok bool, err error)
	// rewindTo positions the read pointer at chunk index pos.
	rewindTo(pos int64) error
	// discard drops all contents, resetting the bag to empty.
	discard() error
	// stats returns (totalChunks, readChunks, totalBytes, readBytes).
	stats() (int64, int64, int64, int64)
	// destroy releases all resources (files, memory).
	destroy() error
}

// bagState is a bag's local state on one storage node.
type bagState struct {
	mu     sync.Mutex
	b      backend
	sealed bool
}

// Node is a single Hurricane storage node. It implements
// transport.Handler, so it can be served by any transport.
type Node struct {
	name string

	mu       sync.Mutex
	bags     map[string]*bagState
	draining bool

	// sketches holds shuffle-edge statistics: edge name -> producer
	// worker ID -> that producer's latest cumulative stats push. Producers
	// push cumulative (not delta) stats, so a re-push replaces rather than
	// accumulates, and a fetch merges across producers.
	sketchMu sync.Mutex
	sketches map[string]map[string][]byte

	newBackend func(bag string) (backend, error)

	// meter, when bound, records per-op telemetry for every request
	// this node handles, regardless of which transport delivered it.
	meter atomic.Pointer[transport.Meter]
	obs   atomic.Pointer[obs.Observer]

	// rec and watch, when bound, back the node's continuous-telemetry
	// debug surfaces (/debug/timeseries, /debug/alerts, /debug/dash).
	// The standalone process (cmd/hurricane-storage) owns the sampling
	// goroutine; the node only holds the handles for DebugHandler.
	rec   atomic.Pointer[obs.Recorder]
	watch atomic.Pointer[obs.Watch]
}

// Option configures a Node.
type Option func(*Node)

// WithDir makes the node persist bags as files under dir (one file per
// bag), like the paper's ext4-backed implementation. Without this option
// bags are kept in memory.
func WithDir(dir string) Option {
	return func(n *Node) {
		n.newBackend = func(bag string) (backend, error) {
			return newDiskBackend(dir, bag)
		}
	}
}

// NewNode returns a storage node with the given name.
func NewNode(name string, opts ...Option) *Node {
	n := &Node{
		name:     name,
		bags:     make(map[string]*bagState),
		sketches: make(map[string]map[string][]byte),
		newBackend: func(string) (backend, error) {
			return &memBackend{}, nil
		},
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Bind attaches an observer: every handled request is recorded under
// role="node" with the node's name as a label (per-op latency, payload
// bytes, errors), and ops at or above slow emit EvStorageSlowOp trace
// events (slow == 0 selects transport.DefaultSlowOp, slow < 0 disables
// them). Safe to call concurrently with Handle; bind nil to stop.
func (n *Node) Bind(o *obs.Observer, slow time.Duration) {
	n.obs.Store(o)
	n.meter.Store(transport.NewMeter(o, "node", n.name, slow))
}

// Observer returns the observer bound to this node (nil when unbound).
func (n *Node) Observer() *obs.Observer { return n.obs.Load() }

// BindTelemetry attaches a time-series recorder and watchdog for the
// debug surface to serve. The caller owns the sampling cadence (the
// node never starts goroutines); nil handles are fine — the surfaces
// then serve empty documents.
func (n *Node) BindTelemetry(rec *obs.Recorder, watch *obs.Watch) {
	n.rec.Store(rec)
	n.watch.Store(watch)
}

// Recorder returns the bound time-series recorder (nil when unbound).
func (n *Node) Recorder() *obs.Recorder { return n.rec.Load() }

// Watch returns the bound watchdog (nil when unbound).
func (n *Node) Watch() *obs.Watch { return n.watch.Load() }

// BagStats is one bag's state in a Node.Stats summary.
type BagStats struct {
	Bag         string `json:"bag"`
	TotalChunks int64  `json:"total_chunks"`
	ReadChunks  int64  `json:"read_chunks"`
	TotalBytes  int64  `json:"total_bytes"`
	ReadBytes   int64  `json:"read_bytes"`
	Sealed      bool   `json:"sealed"`
}

// NodeStats is the summary served by the storage debug endpoint.
type NodeStats struct {
	Node        string     `json:"node"`
	Draining    bool       `json:"draining"`
	Bags        []BagStats `json:"bags"`
	TotalChunks int64      `json:"total_chunks"`
	TotalBytes  int64      `json:"total_bytes"`
	SketchEdges int        `json:"sketch_edges"`
}

// Stats summarizes the node: per-bag chunk/byte/read-pointer stats from
// each bag's backend, sorted by name, plus node-wide totals and the
// number of shuffle edges with sketch state.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	st := NodeStats{Node: n.name, Draining: n.draining}
	bags := make(map[string]*bagState, len(n.bags))
	for name, bs := range n.bags {
		bags[name] = bs
	}
	n.mu.Unlock()
	for name, bs := range bags {
		bs.mu.Lock()
		tc, rc, tb, rb := bs.b.stats()
		sealed := bs.sealed
		bs.mu.Unlock()
		st.Bags = append(st.Bags, BagStats{
			Bag: name, TotalChunks: tc, ReadChunks: rc,
			TotalBytes: tb, ReadBytes: rb, Sealed: sealed,
		})
		st.TotalChunks += tc
		st.TotalBytes += tb
	}
	sort.Slice(st.Bags, func(i, j int) bool { return st.Bags[i].Bag < st.Bags[j].Bag })
	n.sketchMu.Lock()
	st.SketchEdges = len(n.sketches)
	n.sketchMu.Unlock()
	return st
}

// SetDraining marks the node as draining: it rejects inserts but continues
// to serve removes until its bags empty (§3.4, storage node removal).
func (n *Node) SetDraining(v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.draining = v
}

// BagNames returns the names of all bags with local state on this node.
func (n *Node) BagNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.bags))
	for name := range n.bags {
		out = append(out, name)
	}
	return out
}

// get returns the bag's state, creating it lazily if create is set.
func (n *Node) get(bag string, create bool) (*bagState, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bs, ok := n.bags[bag]
	if !ok {
		if !create {
			return nil, nil
		}
		b, err := n.newBackend(bag)
		if err != nil {
			return nil, err
		}
		bs = &bagState{b: b}
		n.bags[bag] = bs
	}
	return bs, nil
}

func errResp(err error) *transport.Response {
	return &transport.Response{Status: transport.StatusErr, Err: err.Error()}
}

// Handle implements transport.Handler.
func (n *Node) Handle(req *transport.Request) *transport.Response {
	m := n.meter.Load()
	start := m.Begin()
	resp := n.handle(req)
	m.End(req.Op, req.Bag, start, len(req.Data), len(resp.Data), resp.Error())
	return resp
}

// handle dispatches one request; Handle wraps it with telemetry.
func (n *Node) handle(req *transport.Request) *transport.Response {
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{Status: transport.StatusOK}
	case transport.OpInsert:
		return n.handleInsert(req)
	case transport.OpRemove:
		return n.handleRemove(req)
	case transport.OpSeal:
		return n.handleSeal(req)
	case transport.OpSample:
		return n.handleSample(req)
	case transport.OpRewind:
		return n.handleRewind(req)
	case transport.OpAdvance:
		return n.handleAdvance(req)
	case transport.OpDiscard:
		return n.handleDiscard(req)
	case transport.OpDelete:
		return n.handleDelete(req)
	case transport.OpDeletePrefix:
		return n.handleDeletePrefix(req)
	case transport.OpRename:
		return n.handleRename(req)
	case transport.OpReadAt:
		return n.handleReadAt(req)
	case transport.OpSketch:
		return n.handleSketch(req)
	default:
		return errResp(fmt.Errorf("storage: unknown op %v", req.Op))
	}
}

func (n *Node) handleInsert(req *transport.Request) *transport.Response {
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	if draining {
		return &transport.Response{Status: transport.StatusRemoved}
	}
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.sealed {
		return errResp(fmt.Errorf("storage: insert into sealed bag %q", req.Bag))
	}
	if err := bs.b.insert(req.Data); err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK}
}

func (n *Node) handleRemove(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	chunk, ok, err := bs.b.remove()
	if err != nil {
		return errResp(err)
	}
	if !ok {
		if bs.sealed {
			return &transport.Response{Status: transport.StatusEmpty, Sealed: true}
		}
		return &transport.Response{Status: transport.StatusAgain}
	}
	// Report the post-remove read pointer: clients replicate it to the
	// slot's backups before delivering the chunk (§4.4).
	_, rc, _, _ := bs.b.stats()
	return &transport.Response{
		Status: transport.StatusOK, Data: chunk,
		ReadChunks: rc, Sealed: bs.sealed,
	}
}

func (n *Node) handleSeal(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.sealed = true
	return &transport.Response{Status: transport.StatusOK, Sealed: true}
}

func (n *Node) handleSample(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, false)
	if err != nil {
		return errResp(err)
	}
	if bs == nil {
		// A bag with no local state is an empty, unsealed bag.
		return &transport.Response{Status: transport.StatusOK}
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	tc, rc, tb, rb := bs.b.stats()
	return &transport.Response{
		Status:      transport.StatusOK,
		TotalChunks: tc, ReadChunks: rc,
		TotalBytes: tb, ReadBytes: rb,
		Sealed: bs.sealed,
	}
}

// handleRewind positions the bag's read pointer at chunk index req.Arg
// (0 replays the bag from the start). Rewind is used for failure recovery
// — rewinding the inputs of a restarted task — and for pointer
// synchronization to backup replicas.
func (n *Node) handleRewind(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if err := bs.b.rewindTo(req.Arg); err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handleAdvance moves the read pointer forward to req.Arg if it is
// currently behind it. Backup replicas apply advances from the client's
// pointer synchronization; the monotonicity makes concurrent syncs from
// batch-sampling fetchers commute, so a failover target never rewinds
// behind the furthest chunk already delivered (exactly-once across
// storage failover).
func (n *Node) handleAdvance(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	tc, rc, _, _ := bs.b.stats()
	if req.Arg > rc {
		pos := req.Arg
		if pos > tc {
			pos = tc
		}
		if err := bs.b.rewindTo(pos); err != nil {
			return errResp(err)
		}
	}
	return &transport.Response{Status: transport.StatusOK}
}

func (n *Node) handleDiscard(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, false)
	if err != nil {
		return errResp(err)
	}
	if bs == nil {
		return &transport.Response{Status: transport.StatusOK}
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if err := bs.b.discard(); err != nil {
		return errResp(err)
	}
	bs.sealed = false
	return &transport.Response{Status: transport.StatusOK}
}

func (n *Node) handleDelete(req *transport.Request) *transport.Response {
	n.mu.Lock()
	bs, ok := n.bags[req.Bag]
	delete(n.bags, req.Bag)
	n.mu.Unlock()
	if !ok {
		return &transport.Response{Status: transport.StatusOK}
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if err := bs.b.destroy(); err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handleDeletePrefix garbage collects every bag whose name starts with
// req.Bag, and drops matching shuffle-edge sketch state. The scheduler
// discards a completed job's namespace with one request per node, which
// also covers runtime-derived names (sub-partitions, isolated-key bags,
// clone partials) no client-side enumeration could produce.
func (n *Node) handleDeletePrefix(req *transport.Request) *transport.Response {
	if req.Bag == "" {
		return errResp(fmt.Errorf("storage: refusing to delete the empty prefix"))
	}
	n.mu.Lock()
	var victims []*bagState
	for name, bs := range n.bags {
		if strings.HasPrefix(name, req.Bag) {
			victims = append(victims, bs)
			delete(n.bags, name)
		}
	}
	n.mu.Unlock()
	n.sketchMu.Lock()
	for edge := range n.sketches {
		if strings.HasPrefix(edge, req.Bag) {
			delete(n.sketches, edge)
		}
	}
	n.sketchMu.Unlock()
	for _, bs := range victims {
		bs.mu.Lock()
		err := bs.b.destroy()
		bs.mu.Unlock()
		if err != nil {
			return errResp(err)
		}
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handleRename atomically renames a bag. Used to adopt a sole worker's
// partial output as the task's final output without copying data.
func (n *Node) handleRename(req *transport.Request) *transport.Response {
	if req.Dst == "" {
		return errResp(fmt.Errorf("storage: rename without destination"))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bs, ok := n.bags[req.Bag]
	if !ok {
		// Nothing stored locally for the source bag: the destination is
		// simply (locally) empty. Succeed so cluster-wide rename is easy.
		return &transport.Response{Status: transport.StatusOK}
	}
	if _, exists := n.bags[req.Dst]; exists {
		return errResp(fmt.Errorf("storage: rename target %q exists", req.Dst))
	}
	delete(n.bags, req.Bag)
	n.bags[req.Dst] = bs
	return &transport.Response{Status: transport.StatusOK}
}

// handleSketch serves the shuffle-edge statistics protocol. A request with
// a payload stores the producer's (req.Dst) cumulative stats for the edge
// (req.Bag); a request without a payload returns the merge of every
// producer's stats. Sketch state is advisory — it only steers the master's
// split decisions — so it is deliberately not replicated or persisted.
func (n *Node) handleSketch(req *transport.Request) *transport.Response {
	if len(req.Data) > 0 {
		// Validate before storing so a fetch never fails on a corrupt blob.
		if _, err := sketch.DecodeEdgeStats(req.Data); err != nil {
			return errResp(err)
		}
		n.sketchMu.Lock()
		defer n.sketchMu.Unlock()
		byWriter, ok := n.sketches[req.Bag]
		if !ok {
			byWriter = make(map[string][]byte)
			n.sketches[req.Bag] = byWriter
		}
		byWriter[req.Dst] = append([]byte(nil), req.Data...)
		return &transport.Response{Status: transport.StatusOK}
	}
	if req.Arg == transport.SketchClear {
		n.sketchMu.Lock()
		delete(n.sketches, req.Bag)
		n.sketchMu.Unlock()
		return &transport.Response{Status: transport.StatusOK}
	}
	n.sketchMu.Lock()
	blobs := make([][]byte, 0, len(n.sketches[req.Bag]))
	for _, b := range n.sketches[req.Bag] {
		blobs = append(blobs, b)
	}
	n.sketchMu.Unlock()
	merged := sketch.NewEdgeStats()
	for _, b := range blobs {
		st, err := sketch.DecodeEdgeStats(b)
		if err != nil {
			return errResp(err)
		}
		if err := merged.Merge(st); err != nil {
			return errResp(err)
		}
	}
	data, err := merged.Encode()
	if err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK, Data: data}
}

// handleReadAt returns chunk req.Arg without consuming it, supporting
// shared full-bag scans ("allowing multiple workers to read an entire bag
// concurrently", §4.3).
func (n *Node) handleReadAt(req *transport.Request) *transport.Response {
	bs, err := n.get(req.Bag, true)
	if err != nil {
		return errResp(err)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	chunk, ok, err := bs.b.readAt(req.Arg)
	if err != nil {
		return errResp(err)
	}
	if !ok {
		if bs.sealed {
			return &transport.Response{Status: transport.StatusEmpty, Sealed: true}
		}
		return &transport.Response{Status: transport.StatusAgain}
	}
	return &transport.Response{Status: transport.StatusOK, Data: chunk, Sealed: bs.sealed}
}
