package storage

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// memBackend keeps a bag's chunks in memory.
type memBackend struct {
	chunks    [][]byte
	readIdx   int64
	totalSize int64
	readSize  int64
}

func (m *memBackend) insert(chunk []byte) error {
	c := append([]byte(nil), chunk...)
	m.chunks = append(m.chunks, c)
	m.totalSize += int64(len(c))
	return nil
}

func (m *memBackend) remove() ([]byte, bool, error) {
	if m.readIdx >= int64(len(m.chunks)) {
		return nil, false, nil
	}
	c := m.chunks[m.readIdx]
	m.readIdx++
	m.readSize += int64(len(c))
	return c, true, nil
}

func (m *memBackend) readAt(i int64) ([]byte, bool, error) {
	if i < 0 || i >= int64(len(m.chunks)) {
		return nil, false, nil
	}
	return m.chunks[i], true, nil
}

func (m *memBackend) rewindTo(pos int64) error {
	if pos < 0 || pos > int64(len(m.chunks)) {
		return fmt.Errorf("storage: rewind position %d out of range [0,%d]", pos, len(m.chunks))
	}
	m.readIdx = pos
	m.readSize = 0
	for i := int64(0); i < pos; i++ {
		m.readSize += int64(len(m.chunks[i]))
	}
	return nil
}

func (m *memBackend) discard() error {
	m.chunks = nil
	m.readIdx = 0
	m.totalSize = 0
	m.readSize = 0
	return nil
}

func (m *memBackend) stats() (int64, int64, int64, int64) {
	return int64(len(m.chunks)), m.readIdx, m.totalSize, m.readSize
}

func (m *memBackend) destroy() error { return m.discard() }

// diskBackend stores a bag as a single append-only file: a sequence of
// 4-byte big-endian length prefixes followed by chunk payloads, mirroring
// the paper's ext4-file-per-bag implementation. The chunk offset index is
// kept in memory and rebuilt from the file on open, so a restarted storage
// node recovers its bags.
type diskBackend struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	offsets  []int64 // byte offset of each chunk's length prefix
	sizes    []int32
	readIdx  int64
	totalSz  int64
	readSz   int64
	writeOff int64
}

// newDiskBackend opens (or creates) the file for bag under dir.
func newDiskBackend(dir, bag string) (*diskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Hash the bag name into a filesystem-safe file name.
	h := fnv.New64a()
	io.WriteString(h, bag)
	path := filepath.Join(dir, fmt.Sprintf("bag-%016x.dat", h.Sum64()))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	d := &diskBackend{f: f, path: path}
	if err := d.rebuildIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// rebuildIndex scans the file to reconstruct the chunk offset index.
func (d *diskBackend) rebuildIndex() error {
	info, err := d.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	var off int64
	var hdr [4]byte
	for off+4 <= size {
		if _, err := d.f.ReadAt(hdr[:], off); err != nil {
			return err
		}
		n := int32(binary.BigEndian.Uint32(hdr[:]))
		if off+4+int64(n) > size {
			break // truncated trailing write; ignore
		}
		d.offsets = append(d.offsets, off)
		d.sizes = append(d.sizes, n)
		d.totalSz += int64(n)
		off += 4 + int64(n)
	}
	d.writeOff = off
	return nil
}

func (d *diskBackend) insert(chunk []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(chunk)))
	if _, err := d.f.WriteAt(hdr[:], d.writeOff); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(chunk, d.writeOff+4); err != nil {
		return err
	}
	d.offsets = append(d.offsets, d.writeOff)
	d.sizes = append(d.sizes, int32(len(chunk)))
	d.writeOff += 4 + int64(len(chunk))
	d.totalSz += int64(len(chunk))
	return nil
}

func (d *diskBackend) readChunk(i int64) ([]byte, error) {
	buf := make([]byte, d.sizes[i])
	if _, err := d.f.ReadAt(buf, d.offsets[i]+4); err != nil {
		return nil, err
	}
	return buf, nil
}

func (d *diskBackend) remove() ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readIdx >= int64(len(d.offsets)) {
		return nil, false, nil
	}
	c, err := d.readChunk(d.readIdx)
	if err != nil {
		return nil, false, err
	}
	d.readSz += int64(len(c))
	d.readIdx++
	return c, true, nil
}

func (d *diskBackend) readAt(i int64) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= int64(len(d.offsets)) {
		return nil, false, nil
	}
	c, err := d.readChunk(i)
	return c, err == nil, err
}

func (d *diskBackend) rewindTo(pos int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pos < 0 || pos > int64(len(d.offsets)) {
		return fmt.Errorf("storage: rewind position %d out of range [0,%d]", pos, len(d.offsets))
	}
	d.readIdx = pos
	d.readSz = 0
	for i := int64(0); i < pos; i++ {
		d.readSz += int64(d.sizes[i])
	}
	return nil
}

func (d *diskBackend) discard() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(0); err != nil {
		return err
	}
	d.offsets = nil
	d.sizes = nil
	d.readIdx = 0
	d.totalSz = 0
	d.readSz = 0
	d.writeOff = 0
	return nil
}

func (d *diskBackend) stats() (int64, int64, int64, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.offsets)), d.readIdx, d.totalSz, d.readSz
}

func (d *diskBackend) destroy() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.f.Close()
	return os.Remove(d.path)
}
