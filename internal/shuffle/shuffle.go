// Package shuffle implements Hurricane's skew-aware shuffle subsystem: a
// key-partitioned data exchange between producer and consumer tasks built
// on the existing bag/storage machinery.
//
// A partitioned bag is one *logical* bag multiplexed onto P physical
// partition bags named "<bag>.p<i>". Producers route records by key through
// a PartitionMap; the consumer task gets one worker per physical partition,
// so consumers pull from disjoint bags instead of contending on a single
// monolithic bag. The map is *adaptive*: producers feed key counts into a
// per-edge count-min sketch (see internal/sketch), and when the
// application master observes a heavy-hitter partition it refines the map —
// re-hashing a hot partition into finer sub-partitions ("<bag>.p<i>.s<j>")
// or isolating a heavy-hitter key into a dedicated bag ("<bag>.h<k>",
// optionally spread record-wise over "<bag>.h<k>.s<j>" when the edge
// declares per-key atomicity unnecessary). New map versions are published
// through an ordinary bag ("<bag>!pmap") that producers poll, so the
// mechanism works unchanged over the in-process and TCP transports.
//
// Correctness invariant: every record is routed to exactly one physical
// bag, every physical bag in the final map is sealed by the master and
// consumed by exactly one worker, so splitting at runtime neither loses
// nor duplicates records (partition-map refinement only redirects records
// not yet written).
package shuffle

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
)

// Partitioner maps a record key to one of n partitions. Implementations
// must be deterministic and agree across all producers of an edge.
type Partitioner interface {
	Partition(key []byte, n int) int
}

// HashPartitioner is the default Partitioner: FNV-1a modulo n.
type HashPartitioner struct{}

// Partition implements Partitioner.
func (HashPartitioner) Partition(key []byte, n int) int {
	return int(KeyHash(key) % uint64(n))
}

// FNV-1a constants. The hash loops are open-coded rather than built on
// hash/fnv because KeyHash sits on the per-record routing path: the
// stdlib constructor materializes a hash.Hash64 allocation per call,
// which profiles as the single largest routing cost at batch rates.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyHash is the canonical 64-bit key hash used for partition routing
// and for identifying isolated heavy-hitter keys in the partition map.
// It is a word-at-a-time FNV-1a variant with a murmur3-style finalizer:
// one multiply per 8 bytes instead of one per byte (routing hashes every
// record, and typical keys are 8-byte words), and the finalizer repairs
// the weak low bits a word-sized FNV step leaves — partition selection
// is hash mod n, which reads exactly those bits. Only intra-run
// agreement among producers matters; nothing persists hashes across
// processes.
func KeyHash(key []byte) uint64 {
	return keyHashSeeded(fnvOffset64, key)
}

// KeyHashUint64 is KeyHash of the 8-byte little-endian encoding of v,
// computed without materializing the bytes: that encoding is exactly one
// word, so the fold collapses to a single xor-multiply before the
// finalizer. Callers with native uint64 keys (the overwhelmingly common
// shuffle key shape) route through this to keep the byte round-trip off
// per-record paths.
func KeyHashUint64(v uint64) uint64 {
	h := (fnvOffset64 ^ v) * fnvPrime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// subHash is an independently salted hash used to re-hash a hot
// partition's keys across its sub-partitions; using the primary hash again
// would send every key of the partition to the same sub-partition.
func subHash(key []byte) uint64 {
	// (fnvOffset64 ^ 0x9e3779b97f4a7c15) * fnvPrime64 mod 2^64: the FNV
	// seed advanced by one golden-ratio-salted round.
	const saltedSeed uint64 = 0x27a3eeb23259be90
	return keyHashSeeded(saltedSeed, key)
}

func keyHashSeeded(h uint64, key []byte) uint64 {
	for len(key) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(key)) * fnvPrime64
		key = key[8:]
	}
	for _, b := range key {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// PartitionBag names base partition p of a logical bag.
func PartitionBag(bag string, p int) string { return fmt.Sprintf("%s.p%d", bag, p) }

// SubPartitionBag names sub-partition s of a re-hashed hot partition p.
func SubPartitionBag(bag string, p, s int) string { return fmt.Sprintf("%s.p%d.s%d", bag, p, s) }

// IsolatedBag names the dedicated bag(s) for isolated heavy-hitter key i.
// With fan > 1 the key's records are spread over fan bags.
func IsolatedBag(bag string, i, s int, fan int) string {
	if fan <= 1 {
		return fmt.Sprintf("%s.h%d", bag, i)
	}
	return fmt.Sprintf("%s.h%d.s%d", bag, i, s)
}

// EdgeOf returns the logical edge name a physical leaf bag belongs to by
// stripping the ".p<i>[.s<j>]" / ".h<k>[.s<j>]" suffix produced by the
// naming helpers above ("gb.shuf.p1.s3" → "gb.shuf"). Names without a
// partition suffix are returned unchanged. Consumers use it to find the
// edge's sketch slot from the one input bag name they are handed.
func EdgeOf(leaf string) string {
	for range [2]int{} { // at most ".p<i>" then ".s<j>" (or ".h<k>" ".s<j>")
		i := len(leaf) - 1
		for i >= 0 && leaf[i] >= '0' && leaf[i] <= '9' {
			i--
		}
		if i <= 0 || i == len(leaf)-1 || leaf[i-1] != '.' {
			return leaf
		}
		switch leaf[i] {
		case 's':
			leaf = leaf[:i-1]
		case 'p', 'h':
			return leaf[:i-1]
		default:
			return leaf
		}
	}
	return leaf
}

// PMapBag names the control bag through which the master publishes
// partition-map revisions to producers.
func PMapBag(bag string) string { return bag + "!pmap" }

// Isolation diverts one heavy-hitter key (identified by KeyHash) to a
// dedicated bag. Fan > 1 spreads the key's records round-robin over fan
// bags — only valid on edges whose consumer declared record-level
// parallelism safe (BagSpec.Spread). Key carries the raw key bytes when
// the isolating party knew them: routing only ever consults Hash, but
// consumers warm-starting their heavy-key fast path (HeavySlots) read
// the keys back out of the published map — the partition-map control bag
// outlives the edge's sketch slot, which the master wipes at seal.
type Isolation struct {
	Hash uint64 `json:"hash"`
	Fan  int    `json:"fan"`
	Key  []byte `json:"key,omitempty"`
}

// PartitionMap is the routing table of one shuffle edge. Version 1 is the
// plain hash layout; the master publishes higher versions as it splits hot
// partitions. Maps only ever *add* physical bags, so the physical bags of
// version v are a subset of those of any later version.
type PartitionMap struct {
	Version int    `json:"version"`
	Bag     string `json:"bag"`
	// Base is the number of base hash partitions.
	Base int `json:"base"`
	// Splits maps a base partition index to its re-hash fan: partition p
	// is refined into Splits[p] sub-partitions.
	Splits map[int]int `json:"splits,omitempty"`
	// Isolated lists heavy-hitter keys diverted to dedicated bags, in
	// isolation order (the index names the bag).
	Isolated []Isolation `json:"isolated,omitempty"`
}

// BaseMap returns version 1 of an edge's map: plain hash partitioning over
// parts partitions. All parties derive it locally, so an edge that is
// never split needs no control traffic at all.
func BaseMap(bag string, parts int) *PartitionMap {
	if parts < 1 {
		parts = 1
	}
	return &PartitionMap{Version: 1, Bag: bag, Base: parts}
}

// isolation returns the isolation entry for a key hash, if any.
func (pm *PartitionMap) isolation(hash uint64) (int, *Isolation) {
	for i := range pm.Isolated {
		if pm.Isolated[i].Hash == hash {
			return i, &pm.Isolated[i]
		}
	}
	return -1, nil
}

// IsIsolated reports whether the key hash has a dedicated bag.
func (pm *PartitionMap) IsIsolated(hash uint64) bool {
	_, iso := pm.isolation(hash)
	return iso != nil
}

// RouteRef is a compact routing decision: Iso ≥ 0 selects an isolation
// bag (Part is then the spread sub-bag index), otherwise Part/Sub select a
// base partition and optional sub-partition (Sub = -1 when unsplit).
// RouteRef is comparable, so writers cache bag pipelines per ref instead
// of formatting a bag name per record — the shuffle's per-record hot path.
type RouteRef struct {
	Iso, Part, Sub int
}

// RefName formats the physical bag name a ref addresses under this map.
// Refs stay name-stable across map refinements (refinements only add
// partitions and never change an isolation's fan), so cached names remain
// valid when a writer adopts a newer version.
func (pm *PartitionMap) RefName(ref RouteRef) string {
	if ref.Iso >= 0 {
		return IsolatedBag(pm.Bag, ref.Iso, ref.Part, pm.Isolated[ref.Iso].Fan)
	}
	if ref.Sub >= 0 {
		return SubPartitionBag(pm.Bag, ref.Part, ref.Sub)
	}
	return PartitionBag(pm.Bag, ref.Part)
}

// Route returns the physical bag for a key under the default hash
// partitioner. rr disambiguates spread isolations (fan > 1): the caller
// supplies a round-robin counter so a heavy key's records spread evenly;
// any value is correct, placement only affects balance.
func (pm *PartitionMap) Route(key []byte, rr int) string {
	return pm.RouteWith(HashPartitioner{}, key, rr)
}

// RouteWith is Route with a caller-supplied base partitioner.
func (pm *PartitionMap) RouteWith(part Partitioner, key []byte, rr int) string {
	return pm.RefName(pm.RouteRefWith(part, key, rr))
}

// RouteRefWith computes the routing decision for a key. Isolation matching
// and sub-partition re-hashing are partitioner-independent, so a custom
// partitioner only chooses the base partition. (The master's heavy-hitter
// attribution assumes the default hash partitioner; with a custom one,
// attribution may pick the re-hash action instead of isolation, which
// affects balance but never correctness.)
func (pm *PartitionMap) RouteRefWith(part Partitioner, key []byte, rr int) RouteRef {
	return pm.routeRefHashed(part, key, KeyHash(key), rr)
}

// routeRefHashed is RouteRefWith with the key hash computed by the
// caller, for batch paths that reuse one hash per record for both
// routing and sketch aggregation.
func (pm *PartitionMap) routeRefHashed(part Partitioner, key []byte, hash uint64, rr int) RouteRef {
	if len(pm.Isolated) > 0 {
		if i, iso := pm.isolation(hash); iso != nil {
			if iso.Fan <= 1 {
				return RouteRef{Iso: i, Part: 0, Sub: -1}
			}
			if rr < 0 {
				rr = -rr
			}
			return RouteRef{Iso: i, Part: rr % iso.Fan, Sub: -1}
		}
	}
	var p int
	if _, isDefault := part.(HashPartitioner); isDefault {
		p = int(hash % uint64(pm.Base)) // reuse the isolation-check hash
	} else {
		p = part.Partition(key, pm.Base)
	}
	if fan := pm.Splits[p]; fan > 1 {
		return RouteRef{Iso: -1, Part: p, Sub: int(subHash(key) % uint64(fan))}
	}
	return RouteRef{Iso: -1, Part: p, Sub: -1}
}

// LeafForKey returns the physical bag a non-isolated key routes to (the
// first spread bag for isolated keys). The master uses it to attribute
// heavy-hitter candidates to the partition they load.
func (pm *PartitionMap) LeafForKey(key []byte) string { return pm.Route(key, 0) }

// BasePartitionIndex parses a base-partition leaf name ("<bag>.p<i>"),
// returning (i, true) if leaf is an unsplit base partition of this map.
func (pm *PartitionMap) BasePartitionIndex(leaf string) (int, bool) {
	for p := 0; p < pm.Base; p++ {
		if pm.Splits[p] > 1 {
			continue
		}
		if PartitionBag(pm.Bag, p) == leaf {
			return p, true
		}
	}
	return 0, false
}

// Leaves returns every physical bag of the current map, in deterministic
// order. The master schedules one consumer worker per leaf and seals every
// leaf when the edge's producers finish. A split base partition remains a
// leaf alongside its sub-partitions: records routed to it before the split
// (or by producers still on an older map version) live there and need
// their own consumer — that residue is never re-shuffled, only future
// records divert.
func (pm *PartitionMap) Leaves() []string {
	var out []string
	for p := 0; p < pm.Base; p++ {
		out = append(out, PartitionBag(pm.Bag, p))
		if fan := pm.Splits[p]; fan > 1 {
			for s := 0; s < fan; s++ {
				out = append(out, SubPartitionBag(pm.Bag, p, s))
			}
		}
	}
	for i, iso := range pm.Isolated {
		fan := iso.Fan
		if fan <= 1 {
			out = append(out, IsolatedBag(pm.Bag, i, 0, 1))
		} else {
			for s := 0; s < fan; s++ {
				out = append(out, IsolatedBag(pm.Bag, i, s, fan))
			}
		}
	}
	return out
}

// Clone returns a deep copy (the master mutates a copy, then publishes).
func (pm *PartitionMap) Clone() *PartitionMap {
	cp := *pm
	if pm.Splits != nil {
		cp.Splits = make(map[int]int, len(pm.Splits))
		for k, v := range pm.Splits {
			cp.Splits[k] = v
		}
	}
	cp.Isolated = append([]Isolation(nil), pm.Isolated...)
	return &cp
}

// Encode serializes the map as one record.
func (pm *PartitionMap) Encode() []byte {
	data, err := json.Marshal(pm)
	if err != nil {
		panic(fmt.Sprintf("shuffle: partition map marshal: %v", err))
	}
	return data
}

// DecodePartitionMap parses an encoded partition map.
func DecodePartitionMap(data []byte) (*PartitionMap, error) {
	var pm PartitionMap
	if err := json.Unmarshal(data, &pm); err != nil {
		return nil, fmt.Errorf("shuffle: bad partition map record: %w", err)
	}
	if pm.Base < 1 {
		return nil, fmt.Errorf("shuffle: partition map with base %d", pm.Base)
	}
	return &pm, nil
}

// SortedSplitKeys returns the split partition indices in order (for
// deterministic iteration in logs and tests).
func (pm *PartitionMap) SortedSplitKeys() []int {
	out := make([]int, 0, len(pm.Splits))
	for p := range pm.Splits {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
