package shuffle

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

func key(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestBaseMapRouting(t *testing.T) {
	pm := BaseMap("shuf", 4)
	leaves := pm.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("base map has %d leaves, want 4", len(leaves))
	}
	inLeaves := make(map[string]bool, len(leaves))
	for _, l := range leaves {
		inLeaves[l] = true
	}
	for i := uint64(0); i < 1000; i++ {
		leaf := pm.Route(key(i), 0)
		if !inLeaves[leaf] {
			t.Fatalf("key %d routed to %q, not a leaf", i, leaf)
		}
		if leaf != pm.Route(key(i), 7) {
			t.Fatalf("non-isolated key %d routing depends on rr", i)
		}
	}
}

// TestSplitRoutingDisjointAndComplete: after re-hash splitting a
// partition, every key routes to exactly one leaf of the refined map, keys
// of unsplit partitions are untouched, and the split partition's keys
// spread over its sub-partitions only.
func TestSplitRoutingDisjointAndComplete(t *testing.T) {
	base := BaseMap("shuf", 4)
	next := base.Clone()
	next.Splits = map[int]int{2: 3}
	next.Version++

	// 4 base partitions (the split one keeps its residue bag) + 3 subs.
	leaves := next.Leaves()
	if len(leaves) != 4+3 {
		t.Fatalf("got %d leaves %v, want 7", len(leaves), leaves)
	}
	inLeaves := make(map[string]bool)
	for _, l := range leaves {
		inLeaves[l] = true
	}
	subsSeen := make(map[string]bool)
	for i := uint64(0); i < 5000; i++ {
		before := base.Route(key(i), 0)
		after := next.Route(key(i), 0)
		if !inLeaves[after] {
			t.Fatalf("key %d routed to non-leaf %q", i, after)
		}
		if before == PartitionBag("shuf", 2) {
			if !strings.HasPrefix(after, PartitionBag("shuf", 2)+".s") {
				t.Fatalf("split-partition key %d routed to %q", i, after)
			}
			subsSeen[after] = true
		} else if after != before {
			t.Fatalf("key %d of unsplit partition moved %q -> %q", i, before, after)
		}
	}
	if len(subsSeen) != 3 {
		t.Fatalf("re-hash used %d of 3 sub-partitions", len(subsSeen))
	}
}

func TestIsolationRouting(t *testing.T) {
	pm := BaseMap("shuf", 4)
	hot := key(42)
	pm.Isolated = []Isolation{{Hash: KeyHash(hot), Fan: 1}}
	if got := pm.Route(hot, 0); got != "shuf.h0" {
		t.Fatalf("isolated key routed to %q", got)
	}
	// Spread isolation fans the key's records by the rr counter.
	pm.Isolated[0].Fan = 3
	seen := make(map[string]bool)
	for rr := 0; rr < 9; rr++ {
		seen[pm.Route(hot, rr)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("spread isolation hit %d of 3 bags: %v", len(seen), seen)
	}
	for b := range seen {
		if !strings.HasPrefix(b, "shuf.h0.s") {
			t.Fatalf("spread bag %q has wrong prefix", b)
		}
	}
	// Other keys are unaffected.
	for i := uint64(0); i < 100; i++ {
		if i == 42 {
			continue
		}
		if got := pm.Route(key(i), 0); strings.HasPrefix(got, "shuf.h") {
			t.Fatalf("non-isolated key %d routed to isolation bag %q", i, got)
		}
	}
}

func TestPartitionMapEncodeDecode(t *testing.T) {
	pm := BaseMap("shuf", 8)
	pm.Splits = map[int]int{1: 2, 5: 4}
	pm.Isolated = []Isolation{{Hash: 123, Fan: 2}, {Hash: 456, Fan: 1}}
	pm.Version = 4
	got, err := DecodePartitionMap(pm.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 4 || got.Base != 8 || got.Bag != "shuf" {
		t.Fatalf("round trip lost header: %+v", got)
	}
	if len(got.Leaves()) != len(pm.Leaves()) {
		t.Fatalf("round trip changed leaves: %v vs %v", got.Leaves(), pm.Leaves())
	}
	for i := uint64(0); i < 2000; i++ {
		if got.Route(key(i), 3) != pm.Route(key(i), 3) {
			t.Fatalf("round trip changed routing of key %d", i)
		}
	}
	if _, err := DecodePartitionMap([]byte("{")); err == nil {
		t.Fatal("truncated map must error")
	}
	if _, err := DecodePartitionMap([]byte(`{"base":0}`)); err == nil {
		t.Fatal("zero-base map must error")
	}
}

func TestBasePartitionIndex(t *testing.T) {
	pm := BaseMap("shuf", 4)
	pm.Splits = map[int]int{1: 2}
	if _, ok := pm.BasePartitionIndex(PartitionBag("shuf", 1)); ok {
		t.Fatal("split partition must not be re-splittable")
	}
	p, ok := pm.BasePartitionIndex(PartitionBag("shuf", 3))
	if !ok || p != 3 {
		t.Fatalf("BasePartitionIndex = %d,%v", p, ok)
	}
	if _, ok := pm.BasePartitionIndex("shuf.h0"); ok {
		t.Fatal("isolation bag is not a base partition")
	}
}

func TestLeavesDeterministic(t *testing.T) {
	pm := BaseMap("shuf", 6)
	pm.Splits = map[int]int{0: 2, 4: 2}
	pm.Isolated = []Isolation{{Hash: 9, Fan: 2}}
	want := fmt.Sprint(pm.Leaves())
	for i := 0; i < 10; i++ {
		if got := fmt.Sprint(pm.Leaves()); got != want {
			t.Fatalf("leaf order unstable: %s vs %s", got, want)
		}
	}
}
