package shuffle

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Default writer cadences, in records. A map poll costs one OpReadAt
// probe per storage slot (the scanner must check every slot of the
// control bag); a sketch push is one RPC. At the default cadences that is
// well under one control RPC per data chunk inserted.
const (
	DefaultPollEvery   = 1024
	DefaultSketchEvery = 4096
)

// DefaultSketchSample feeds every 8th record into the count-min sketch
// (with weight 8), keeping the sketch off the per-record hot path while
// leaving heavy-hitter estimates unbiased. Partition counts stay exact —
// they are one map increment.
const DefaultSketchSample = 8

// heavyAdmitFraction admits a key into the heavy-hitter candidate list
// when its estimated count exceeds 1/heavyAdmitFraction of the records
// written so far.
const heavyAdmitFraction = 16

// WriterConfig configures a partitioned writer.
type WriterConfig struct {
	// Store is the bag store the physical partition bags live in.
	Store *bag.Store
	// Edge is the logical partitioned bag name.
	Edge string
	// Parts is the edge's base partition count.
	Parts int
	// WriterID identifies this producer worker for cumulative sketch
	// pushes (typically the worker's blueprint ID).
	WriterID string
	// Partitioner overrides the base partitioner (default HashPartitioner).
	Partitioner Partitioner
	// PollEvery / SketchEvery override the control-traffic cadences.
	PollEvery   int
	SketchEvery int
	// SketchSample overrides the 1-in-N sketch sampling rate.
	SketchSample int
	// Obs, when set, receives the edge's record/byte counters (flushed at
	// Close, off the per-record hot path) and map-adoption trace events.
	// Job labels the series.
	Obs *obs.Observer
	Job string
	// OnSpans, when set, is invoked once at Close with the writer's
	// profiler accounting: nanoseconds spent inserting flushed chunks and
	// draining pipelines, total records routed, and the per-partition
	// record breakdown. Nil keeps clock reads off the flush path entirely
	// (the engine sets it only while span profiling is on).
	OnSpans func(flushNS, records int64, parts map[string]int64)
}

// leafOut is the write pipeline for one physical partition bag: a chunk
// framer flushing into a pipelined inserter, plus the exact count of
// records routed there (the master's primary load signal).
type leafOut struct {
	name  string
	w     *chunk.Writer
	ins   *bag.Inserter
	count uint64
}

// Writer routes records to the physical partition bags of one shuffle
// edge. It adopts new partition-map versions published by the master
// mid-stream and feeds key counts into the edge's count-min sketch, which
// is what makes the shuffle skew-aware. A Writer is used by one producer
// worker goroutine; concurrent producer workers each create their own
// (their sketch pushes merge storage-side).
type Writer struct {
	ctx  context.Context
	cfg  WriterConfig
	pm   *PartitionMap
	scan *bag.Scanner
	// outs caches one write pipeline per routing decision. RouteRefs are
	// name-stable across map versions (refinements only add partitions),
	// so the cache survives map adoption.
	outs map[RouteRef]*leafOut

	stats    *sketch.EdgeStats
	heavyIdx map[string]int // key -> index into stats.Heavy

	n     uint64 // records written
	bytes uint64 // record payload bytes written
	rr    int    // round-robin counter for spread isolations

	// Batch-path state (see batch.go): routing-vector scratch, per-batch
	// key count aggregation for bulk sketch feeds, and cadence watermarks
	// (the row path uses modulo cadences; batches advance n in jumps).
	refs      []RouteRef
	batchTab  []batchSlot // open-addressed count table, reused across batches
	batchLive []int32     // occupied batchTab slots, for drain + reset
	lastSlot  *batchSlot  // count slot of the previous record, if still live
	lastHash  uint64      // its routing hash (slot identity check)
	batches   uint64
	lastPoll  uint64
	lastPush  uint64

	// flushNS accumulates time blocked inserting flushed chunks and
	// draining pipelines — the profiler's shuffle phase. Only advanced
	// when cfg.OnSpans is set.
	flushNS int64
}

// NewWriter creates a writer for the edge. The initial routing table is
// the locally derived base map; newer versions are adopted from the
// edge's partition-map bag as they appear.
func NewWriter(ctx context.Context, cfg WriterConfig) *Writer {
	if cfg.Partitioner == nil {
		cfg.Partitioner = HashPartitioner{}
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = DefaultPollEvery
	}
	if cfg.SketchEvery <= 0 {
		cfg.SketchEvery = DefaultSketchEvery
	}
	if cfg.SketchSample <= 0 {
		cfg.SketchSample = DefaultSketchSample
	}
	return &Writer{
		ctx:      ctx,
		cfg:      cfg,
		pm:       BaseMap(cfg.Edge, cfg.Parts),
		scan:     cfg.Store.Scanner(PMapBag(cfg.Edge)),
		outs:     make(map[RouteRef]*leafOut),
		stats:    sketch.NewEdgeStats(),
		heavyIdx: make(map[string]int),
	}
}

// Map returns the writer's current partition map (for tests/inspection).
func (w *Writer) Map() *PartitionMap { return w.pm }

// Write routes one record by key to its physical partition bag.
func (w *Writer) Write(key, rec []byte) error {
	if w.n%uint64(w.cfg.PollEvery) == 0 {
		w.pollMap()
	}
	ref := w.pm.RouteRefWith(w.cfg.Partitioner, key, w.rr)
	w.rr++
	out := w.outs[ref]
	if out == nil {
		out = w.newLeaf(ref)
	}
	if err := out.w.Append(rec); err != nil {
		return err
	}
	w.bytes += uint64(len(rec))
	if w.n%uint64(w.cfg.SketchSample) == 0 {
		w.stats.CM.Add(key, uint64(w.cfg.SketchSample))
		w.noteHeavy(key)
	}
	w.n++
	out.count++
	if w.n%uint64(w.cfg.SketchEvery) == 0 {
		w.pushStats()
	}
	return nil
}

// newLeaf creates the write pipeline for a routing decision.
func (w *Writer) newLeaf(ref RouteRef) *leafOut {
	name := w.pm.RefName(ref)
	ins := w.cfg.Store.Bag(name).Inserter(w.ctx)
	out := &leafOut{
		name: name,
		ins:  ins,
		w: chunk.NewWriter(w.cfg.Store.ChunkSize(), func(c chunk.Chunk) error {
			if w.cfg.OnSpans == nil {
				return ins.Insert(c)
			}
			start := time.Now()
			err := ins.Insert(c)
			w.flushNS += time.Since(start).Nanoseconds()
			return err
		}),
	}
	w.outs[ref] = out
	return out
}

// noteHeavy maintains the heavy-hitter candidate list: a key whose
// count-min estimate exceeds 1/16 of the stream so far is a candidate.
// Candidate counts are count-min estimates (one-sided error), which is
// all the master's isolation decision needs.
func (w *Writer) noteHeavy(key []byte) {
	est := w.stats.CM.Estimate(key)
	if est*heavyAdmitFraction < w.n {
		return
	}
	if i, ok := w.heavyIdx[string(key)]; ok {
		w.stats.Heavy[i].Count = est
		return
	}
	if len(w.stats.Heavy) >= sketch.MaxHeavyKeys {
		return
	}
	w.heavyIdx[string(key)] = len(w.stats.Heavy)
	w.stats.Heavy = append(w.stats.Heavy, sketch.HeavyKey{
		Key: append([]byte(nil), key...), Count: est,
	})
}

// pollMap adopts the newest partition map published for the edge, if any.
// Failures are ignored: routing by a stale map is always correct, only
// less balanced.
func (w *Writer) pollMap() {
	_, _ = w.scan.Drain(w.ctx, func(c chunk.Chunk) error {
		pm, err := DecodePartitionMap(c)
		if err != nil || pm.Bag != w.cfg.Edge {
			return nil // ignore foreign/corrupt records
		}
		if pm.Version > w.pm.Version {
			w.pm = pm
			w.cfg.Obs.Emit(obs.EvMapRevision, w.cfg.Job, w.cfg.Edge,
				fmt.Sprintf("adopted version=%d writer=%s", pm.Version, w.cfg.WriterID))
		}
		return nil
	})
}

// pushStats pushes the writer's cumulative stats to the edge's sketch home
// slot. Best-effort: detection is advisory. Per-leaf counts live on the
// leaf pipelines during writing and are snapshotted here.
func (w *Writer) pushStats() {
	counts := make(map[string]uint64, len(w.outs))
	for _, out := range w.outs {
		counts[out.name] = out.count
	}
	w.stats.Counts = counts
	_ = w.cfg.Store.PushSketch(w.ctx, w.cfg.Edge, w.cfg.WriterID, w.stats)
}

// Close flushes every partition bag's buffered chunks, waits for all
// outstanding inserts, and pushes the final sketch update. It must be
// called (and its error checked) before the producer reports completion —
// the engine's TaskCtx.OnFinish hook does this automatically for writers
// created through the public API.
func (w *Writer) Close() error {
	var firstErr error
	for _, out := range w.outs {
		if err := out.w.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shuffle: flushing %s: %w", out.name, err)
		}
	}
	for _, out := range w.outs {
		var t0 time.Time
		if w.cfg.OnSpans != nil {
			t0 = time.Now()
		}
		err := out.ins.Close()
		if w.cfg.OnSpans != nil {
			w.flushNS += time.Since(t0).Nanoseconds()
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shuffle: closing %s: %w", out.name, err)
		}
	}
	w.pushStats()
	w.flushMetrics()
	if w.cfg.OnSpans != nil {
		parts := make(map[string]int64, len(w.outs))
		for _, out := range w.outs {
			parts[out.name] = int64(out.count)
		}
		w.cfg.OnSpans(w.flushNS, int64(w.n), parts)
	}
	return firstErr
}

// flushMetrics accumulates the writer's lifetime totals into the edge's
// labeled counters. Deferred to Close so the per-record hot path never
// touches the registry; concurrent producer writers of the same edge add
// into the same series.
func (w *Writer) flushMetrics() {
	if w.cfg.Obs == nil {
		return
	}
	labels := []string{"job", w.cfg.Job, "edge", w.cfg.Edge}
	w.cfg.Obs.Counter("hurricane_shuffle_records_total", labels...).Add(w.n)
	w.cfg.Obs.Counter("hurricane_shuffle_bytes_total", labels...).Add(w.bytes)
	if w.batches > 0 {
		w.cfg.Obs.Counter("hurricane_chunk_batches_total", labels...).Add(w.batches)
	}
	for _, out := range w.outs {
		w.cfg.Obs.Counter("hurricane_shuffle_partition_records_total",
			"job", w.cfg.Job, "edge", w.cfg.Edge, "part", out.name).Add(out.count)
	}
}
