package shuffle

import "repro/internal/sketch"

// WarmStart derives a seed partition map for a fresh shuffle edge from a
// predecessor edge's final map and merged producer statistics — the
// cross-window skew memory of the streaming subsystem (internal/stream).
// Each micro-batch window runs as its own job with its own edges, so
// without seeding every window would rediscover the same hot partitions
// and heavy-hitter keys from scratch; short windows often finish before
// detection even triggers. WarmStart transplants what the finished window
// learned:
//
//   - the predecessor's splits and isolations carry over verbatim (routing
//     is by key hash, which is stable across windows);
//   - heavy-hitter keys from the merged sketch that were not yet isolated
//     are pre-isolated when their observed share of the stream exceeds
//     isolateFraction of a mean partition's load — the same threshold
//     shape the IsolateKeyPolicy applies at runtime.
//
// prev may be nil (no predecessor map) and stats may be nil (no sketch
// was captured); base is the new edge's declared base partition count. A
// predecessor map with a different base cannot be transplanted — its
// split indices would refine the wrong key ranges — so only the stats are
// used then. Returns nil when nothing was learned (seeding a plain base
// map would be pure control-bag noise).
func WarmStart(prev *PartitionMap, stats *sketch.EdgeStats, newBag string, base int, isolateFraction float64, fan int, spread bool) *PartitionMap {
	if base < 1 {
		base = 1
	}
	var seed *PartitionMap
	if prev != nil && prev.Base == base {
		seed = prev.Clone()
	} else {
		seed = BaseMap(newBag, base)
	}
	seed.Bag = newBag
	if stats != nil {
		if isolateFraction <= 0 {
			isolateFraction = 0.5
		}
		if fan < 1 || !spread {
			fan = 1
		}
		// A key is seed-isolated when its observed share reaches
		// isolateFraction of a mean partition's load — as a fraction of
		// the stream, isolateFraction/base (sketch.EdgeStats.TopKeys is
		// the canonical extraction).
		for _, hk := range stats.TopKeys(sketch.MaxHeavyKeys, isolateFraction/float64(base)) {
			hash := KeyHash(hk.Key)
			if seed.IsIsolated(hash) {
				continue
			}
			seed.Isolated = append(seed.Isolated, Isolation{
				Hash: hash, Fan: fan, Key: append([]byte(nil), hk.Key...),
			})
		}
	}
	if len(seed.Splits) == 0 && len(seed.Isolated) == 0 {
		return nil
	}
	// Producers and the new master derive version 1 (the plain base map)
	// locally; any published version above it wins, so the seed only needs
	// to be ≥ 2. Later runtime refinements continue from here.
	seed.Version++
	if seed.Version < 2 {
		seed.Version = 2
	}
	return seed
}
