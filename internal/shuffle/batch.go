package shuffle

import (
	"bytes"
	"encoding/binary"

	"repro/internal/chunk"
)

// Batch-at-a-time producer path. The typed scatter layer (hurricane
// package) computes the routing vector for a whole batch in one pass,
// appends each row into a per-partition batch builder, and hands the
// encoded batch chunks back through InsertBatchChunk — so the per-record
// work drops to one route computation and a few column appends, with the
// control-plane duties (map polling, sketch feeding, stat pushes) paid
// once per batch instead of amortized per record.

// PartitionBatch computes the routing vector for a batch of n records in
// one pass. The partition map is polled at most once per batch, and the
// per-key counts of the whole batch are fed to the edge's count-min
// sketch in bulk — exact counts per distinct key, not the 1-in-N sampling
// of the row path. The returned slice is reused by the next call.
func (w *Writer) PartitionBatch(n int, key func(i int) []byte) []RouteRef {
	if w.n == 0 || w.n-w.lastPoll >= uint64(w.cfg.PollEvery) {
		w.pollMap()
		w.lastPoll = w.n
	}
	if cap(w.refs) < n {
		w.refs = make([]RouteRef, n)
	}
	w.refs = w.refs[:n]
	// The partition map is fixed for the whole batch, so the routing
	// shape checks (default partitioner? any isolations or splits?) hoist
	// out of the record loop; the common case reduces to hash-mod-base.
	_, defaultPart := w.cfg.Partitioner.(HashPartitioner)
	if plain := defaultPart && len(w.pm.Isolated) == 0 && len(w.pm.Splits) == 0; plain {
		base := uint64(w.pm.Base)
		if base&(base-1) == 0 {
			// Power-of-two partition counts (the common configuration)
			// route with a mask; the 64-bit divide is otherwise the single
			// largest instruction in this loop.
			mask := base - 1
			for i := 0; i < n; i++ {
				k := key(i)
				h := KeyHash(k)
				w.refs[i] = RouteRef{Iso: -1, Part: int(h & mask), Sub: -1}
				w.countBatchKey(k, h)
			}
		} else {
			for i := 0; i < n; i++ {
				k := key(i)
				h := KeyHash(k)
				w.refs[i] = RouteRef{Iso: -1, Part: int(h % base), Sub: -1}
				w.countBatchKey(k, h)
			}
		}
		w.rr += n
	} else {
		for i := 0; i < n; i++ {
			k := key(i)
			h := KeyHash(k)
			w.refs[i] = w.pm.routeRefHashed(w.cfg.Partitioner, k, h, w.rr)
			w.rr++
			w.countBatchKey(k, h)
		}
	}
	w.n += uint64(n)
	w.drainBatchCounts()
	if w.n-w.lastPush >= uint64(w.cfg.SketchEvery) {
		w.pushStats()
		w.lastPush = w.n
	}
	return w.refs
}

// PartitionBatchUint64 is PartitionBatch for uint64 keys, identified by
// their 8-byte little-endian encoding (the Uint64Key convention). Routing
// and counting work on the words directly — KeyHashUint64 agrees with
// KeyHash over the encoding, so the placement is identical to the generic
// path — and key bytes materialize only once per distinct key per batch,
// when a count slot is first claimed.
func (w *Writer) PartitionBatchUint64(keys []uint64) []RouteRef {
	n := len(keys)
	if w.n == 0 || w.n-w.lastPoll >= uint64(w.cfg.PollEvery) {
		w.pollMap()
		w.lastPoll = w.n
	}
	if cap(w.refs) < n {
		w.refs = make([]RouteRef, n)
	}
	w.refs = w.refs[:n]
	_, defaultPart := w.cfg.Partitioner.(HashPartitioner)
	if plain := defaultPart && len(w.pm.Isolated) == 0 && len(w.pm.Splits) == 0; plain {
		base := uint64(w.pm.Base)
		if base&(base-1) == 0 {
			mask := base - 1
			for i, v := range keys {
				h := KeyHashUint64(v)
				w.refs[i] = RouteRef{Iso: -1, Part: int(h & mask), Sub: -1}
				w.countBatchKeyUint64(v, h)
			}
		} else {
			for i, v := range keys {
				h := KeyHashUint64(v)
				w.refs[i] = RouteRef{Iso: -1, Part: int(h % base), Sub: -1}
				w.countBatchKeyUint64(v, h)
			}
		}
		w.rr += n
	} else {
		var kb [8]byte
		for i, v := range keys {
			binary.LittleEndian.PutUint64(kb[:], v)
			h := KeyHashUint64(v)
			w.refs[i] = w.pm.routeRefHashed(w.cfg.Partitioner, kb[:], h, w.rr)
			w.rr++
			w.countBatchKeyUint64(v, h)
		}
	}
	w.n += uint64(n)
	w.drainBatchCounts()
	if w.n-w.lastPush >= uint64(w.cfg.SketchEvery) {
		w.pushStats()
		w.lastPush = w.n
	}
	return w.refs
}

// batchTabSlots sizes the per-batch count table. Power of two; holds up
// to batchTabSlots/2 distinct keys before an early drain. Typical batch
// key cardinality is far below this, so the steady state is one drain
// per batch with zero allocations.
const batchTabSlots = 512

// batchSlot is one entry of the per-batch key count table. n doubles as
// the occupancy marker (occupied slots always count at least one
// record); key storage is reused across batches. key8 holds the first
// min(len,8) key bytes inline (little-endian, zero-padded): for keys of
// at most 8 bytes — the common case, e.g. Uint64Key — the equality check
// is three register compares with no pointer chase into the stored copy.
type batchSlot struct {
	hash uint64
	n    uint64
	key8 uint64
	klen int32
	key  []byte
}

// slotKey8 packs key's first bytes for batchSlot.key8.
func slotKey8(key []byte) uint64 {
	if len(key) >= 8 {
		return binary.LittleEndian.Uint64(key)
	}
	var v uint64
	for i := len(key) - 1; i >= 0; i-- {
		v = v<<8 | uint64(key[i])
	}
	return v
}

// countBatchKey adds one record to the batch's per-key count, reusing the
// routing hash instead of re-hashing through the runtime map. The open
// table replaces a map[string]uint64 whose per-record assign (string
// hashing plus bucket walk) dominated the batch routing profile.
func (w *Writer) countBatchKey(key []byte, hash uint64) {
	// Skewed streams repeat keys on consecutive records; the previous
	// record's slot resolves those with one compare, no table probe.
	if s := w.lastSlot; s != nil && w.lastHash == hash &&
		s.key8 == slotKey8(key) && s.klen == int32(len(key)) &&
		(len(key) <= 8 || bytes.Equal(s.key, key)) {
		s.n++
		return
	}
	if w.batchTab == nil {
		w.batchTab = make([]batchSlot, batchTabSlots)
	}
	if len(w.batchLive) >= batchTabSlots/2 {
		// High key cardinality: feed the sketch early and reuse the
		// table. Count-min adds accumulate, so splitting one batch's
		// feed into several keeps the counts exact.
		w.drainBatchCounts()
	}
	k8 := slotKey8(key)
	for i := hash & (batchTabSlots - 1); ; i = (i + 1) & (batchTabSlots - 1) {
		s := &w.batchTab[i]
		if s.n == 0 {
			s.hash = hash
			s.key8 = k8
			s.klen = int32(len(key))
			s.key = append(s.key[:0], key...)
			s.n = 1
			w.batchLive = append(w.batchLive, int32(i))
			w.lastSlot, w.lastHash = s, hash
			return
		}
		if s.hash == hash && s.key8 == k8 && s.klen == int32(len(key)) &&
			(len(key) <= 8 || bytes.Equal(s.key, key)) {
			s.n++
			w.lastSlot, w.lastHash = s, hash
			return
		}
	}
}

// countBatchKeyUint64 is countBatchKey for a uint64 key: the word IS the
// whole key (key8 == v, klen == 8), so the equality check never touches
// the stored byte copy, which exists only for the sketch drain.
func (w *Writer) countBatchKeyUint64(v, hash uint64) {
	if s := w.lastSlot; s != nil && s.key8 == v && s.klen == 8 {
		s.n++
		return
	}
	if w.batchTab == nil {
		w.batchTab = make([]batchSlot, batchTabSlots)
	}
	if len(w.batchLive) >= batchTabSlots/2 {
		w.drainBatchCounts()
	}
	for i := hash & (batchTabSlots - 1); ; i = (i + 1) & (batchTabSlots - 1) {
		s := &w.batchTab[i]
		if s.n == 0 {
			s.hash = hash
			s.key8 = v
			s.klen = 8
			s.key = binary.LittleEndian.AppendUint64(s.key[:0], v)
			s.n = 1
			w.batchLive = append(w.batchLive, int32(i))
			w.lastSlot, w.lastHash = s, hash
			return
		}
		if s.hash == hash && s.key8 == v && s.klen == 8 {
			s.n++
			w.lastSlot, w.lastHash = s, hash
			return
		}
	}
}

// drainBatchCounts feeds the accumulated per-key counts to the edge's
// count-min sketch — exact counts per distinct key, not the 1-in-N
// sampling of the row path — and resets the table for the next batch.
func (w *Writer) drainBatchCounts() {
	for _, i := range w.batchLive {
		s := &w.batchTab[i]
		w.stats.CM.Add(s.key, s.n)
		w.noteHeavy(s.key)
		s.n = 0
	}
	w.batchLive = w.batchLive[:0]
	w.lastSlot = nil
}

// InsertBatchChunk inserts one encoded batch chunk for the given routing
// decision. The rows count feeds the leaf's exact record counter (the
// master's primary load signal), so batch and row producers are
// indistinguishable to the control plane.
func (w *Writer) InsertBatchChunk(ref RouteRef, c chunk.Chunk, rows int) error {
	out := w.outs[ref]
	if out == nil {
		out = w.newLeaf(ref)
	}
	if err := out.ins.Insert(c); err != nil {
		return err
	}
	out.count += uint64(rows)
	w.bytes += uint64(len(c))
	w.batches++
	return nil
}
