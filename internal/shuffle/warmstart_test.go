package shuffle

import (
	"testing"

	"repro/internal/sketch"
)

func TestWarmStartTransplantsRefinements(t *testing.T) {
	prev := BaseMap("old", 4)
	prev.Splits = map[int]int{2: 4}
	prev.Isolated = []Isolation{{Hash: KeyHash(key(7)), Fan: 2}}
	prev.Version = 3

	seed := WarmStart(prev, nil, "new", 4, 0.5, 2, true)
	if seed == nil {
		t.Fatal("learned map produced no seed")
	}
	if seed.Bag != "new" {
		t.Fatalf("seed bag = %q, want new", seed.Bag)
	}
	if seed.Version < 2 {
		t.Fatalf("seed version %d would lose to the locally derived base map", seed.Version)
	}
	if seed.Splits[2] != 4 {
		t.Fatalf("split fan not transplanted: %v", seed.Splits)
	}
	if !seed.IsIsolated(KeyHash(key(7))) {
		t.Fatal("isolation not transplanted")
	}
	// The predecessor must be untouched (Clone semantics).
	if prev.Bag != "old" || prev.Version != 3 {
		t.Fatalf("predecessor mutated: %+v", prev)
	}
}

func TestWarmStartSeedsHeavyKeysFromStats(t *testing.T) {
	stats := sketch.NewEdgeStats()
	stats.Counts = map[string]uint64{"x.p0": 6000, "x.p1": 2000, "x.p2": 1000, "x.p3": 1000}
	stats.Heavy = []sketch.HeavyKey{
		{Key: key(1), Count: 4000}, // 40% of 10000 ≥ 0.5 × mean(2500)
		{Key: key(2), Count: 500},  // below the threshold
	}

	seed := WarmStart(nil, stats, "new", 4, 0.5, 3, true)
	if seed == nil {
		t.Fatal("heavy stats produced no seed")
	}
	if !seed.IsIsolated(KeyHash(key(1))) {
		t.Fatal("dominant key not pre-isolated")
	}
	if seed.IsIsolated(KeyHash(key(2))) {
		t.Fatal("light key wrongly isolated")
	}
	if len(seed.Isolated) != 1 || seed.Isolated[0].Fan != 3 {
		t.Fatalf("isolations = %+v, want one with fan 3", seed.Isolated)
	}
	// Without Spread the key must get a single dedicated bag.
	noSpread := WarmStart(nil, stats, "new", 4, 0.5, 3, false)
	if noSpread.Isolated[0].Fan != 1 {
		t.Fatalf("no-spread fan = %d, want 1", noSpread.Isolated[0].Fan)
	}
}

func TestWarmStartNothingLearned(t *testing.T) {
	if seed := WarmStart(BaseMap("old", 4), sketch.NewEdgeStats(), "new", 4, 0.5, 2, true); seed != nil {
		t.Fatalf("unrefined predecessor and empty stats must not seed, got %+v", seed)
	}
	if seed := WarmStart(nil, nil, "new", 4, 0.5, 2, true); seed != nil {
		t.Fatalf("no memory must not seed, got %+v", seed)
	}
	// A predecessor with a different base cannot be transplanted.
	prev := BaseMap("old", 8)
	prev.Splits = map[int]int{1: 2}
	prev.Version = 2
	if seed := WarmStart(prev, nil, "new", 4, 0.5, 2, true); seed != nil {
		t.Fatalf("mismatched base must not transplant splits, got %+v", seed)
	}
}
