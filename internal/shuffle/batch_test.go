package shuffle

import (
	"context"
	"testing"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/transport"
)

func TestEdgeOf(t *testing.T) {
	cases := map[string]string{
		PartitionBag("gb.shuf", 1):       "gb.shuf",
		SubPartitionBag("gb.shuf", 1, 3): "gb.shuf",
		IsolatedBag("gb.shuf", 0, 0, 1):  "gb.shuf",
		IsolatedBag("gb.shuf", 2, 5, 8):  "gb.shuf",
		"gb.shuf":                        "gb.shuf",
		"plain":                          "plain",
		"w5/gb.shuf.p12.s4":              "w5/gb.shuf",
	}
	for leaf, want := range cases {
		if got := EdgeOf(leaf); got != want {
			t.Errorf("EdgeOf(%q) = %q, want %q", leaf, got, want)
		}
	}
}

func newBatchTestStore(t *testing.T) *bag.Store {
	t.Helper()
	tr := transport.NewInProc()
	names := []string{"s0", "s1"}
	for _, n := range names {
		tr.Register(n, storage.NewNode(n))
	}
	st, err := bag.NewStore(bag.Config{Nodes: names, Client: tr, ChunkSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPartitionBatchMatchesRowRouting pins the core batch-path contract:
// the routing vector for a batch is exactly what per-record Write calls
// would have decided, per-leaf counts stay exact, and the bulk sketch
// feed gives the edge's sketch exact per-key counts.
func TestPartitionBatchMatchesRowRouting(t *testing.T) {
	ctx := context.Background()
	st := newBatchTestStore(t)
	w := NewWriter(ctx, WriterConfig{Store: st, Edge: "e", Parts: 4, WriterID: "w0"})

	const n = 1000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(uint64(i % 37))
	}
	refs := w.PartitionBatch(n, func(i int) []byte { return keys[i] })
	if len(refs) != n {
		t.Fatalf("got %d refs, want %d", len(refs), n)
	}
	want := BaseMap("e", 4)
	for i, ref := range refs {
		if wref := want.RouteRefWith(HashPartitioner{}, keys[i], i); ref != wref {
			t.Fatalf("row %d routed %+v, want %+v", i, ref, wref)
		}
	}

	// Scatter whole batches per ref and check leaf counts stay exact.
	perRef := make(map[RouteRef]int)
	for _, ref := range refs {
		perRef[ref]++
	}
	for ref, rows := range perRef {
		b := chunk.NewBatchBuilder(0, []chunk.ColKind{chunk.ColVarint})
		for i := 0; i < rows; i++ {
			b.AppendUvarint(0, uint64(i))
			b.EndRow()
		}
		if err := w.InsertBatchChunk(ref, b.Encode(), rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	est, err := st.FetchSketch(ctx, "e")
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Total(); got != n {
		t.Fatalf("sketch leaf-count total %d, want %d", got, n)
	}
	// Exact bulk feed: each of the 37 keys appeared either 27 or 28 times;
	// count-min over-counts but never under-counts.
	for i := 0; i < 37; i++ {
		c := est.CM.Estimate(key(uint64(i)))
		if c < n/37 {
			t.Fatalf("key %d sketch estimate %d below exact count", i, c)
		}
	}
	// The batch counters made it into the leaf counts map.
	var total uint64
	for leaf, c := range est.Counts {
		if EdgeOf(leaf) != "e" {
			t.Fatalf("unexpected leaf %q", leaf)
		}
		total += c
	}
	if total != n {
		t.Fatalf("leaf counts sum to %d, want %d", total, n)
	}
}

// TestPartitionBatchUint64MatchesGeneric pins the uint64-native routing
// path's contract: hashing the key word directly must agree with hashing
// its 8-byte little-endian encoding, so placement — and therefore the
// whole partition map — is identical whichever entry point a producer
// uses.
func TestPartitionBatchUint64MatchesGeneric(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 255, 1 << 20, 0xdeadbeefcafef00d, ^uint64(0)} {
		if got, want := KeyHashUint64(v), KeyHash(key(v)); got != want {
			t.Fatalf("KeyHashUint64(%#x) = %#x, want KeyHash of encoding %#x", v, got, want)
		}
	}

	ctx := context.Background()
	st := newBatchTestStore(t)
	wg := NewWriter(ctx, WriterConfig{Store: st, Edge: "eg", Parts: 4, WriterID: "w0"})
	wu := NewWriter(ctx, WriterConfig{Store: st, Edge: "eu", Parts: 4, WriterID: "w0"})

	const n = 1000
	words := make([]uint64, n)
	keys := make([][]byte, n)
	for i := range words {
		words[i] = uint64(i % 37)
		keys[i] = key(words[i])
	}
	gRefs := wg.PartitionBatch(n, func(i int) []byte { return keys[i] })
	uRefs := wu.PartitionBatchUint64(words)
	for i := range gRefs {
		if gRefs[i] != uRefs[i] {
			t.Fatalf("row %d: uint64 path routed %+v, generic %+v", i, uRefs[i], gRefs[i])
		}
	}
	if err := wu.Close(); err != nil {
		t.Fatal(err)
	}

	// The bulk count feed saw the same exact counts.
	est, err := st.FetchSketch(ctx, "eu")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 37; i++ {
		if c := est.CM.Estimate(key(i)); c < n/37 {
			t.Fatalf("key %d sketch estimate %d below exact count", i, c)
		}
	}
}
