package ctrl

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// maxPendingOverloads bounds the hub's overload buffer. Signals beyond it
// are dropped: overload signals are advisory and re-sent by the nodes'
// monitors every interval.
const maxPendingOverloads = 1024

// FetchStatsFunc fetches the merged producer statistics for one shuffle
// edge (in the engine: a storage-tier sketch fetch RPC).
type FetchStatsFunc func(ctx context.Context, edge string) (*sketch.EdgeStats, error)

// SampleBagFunc probes one bag's depth (in the engine: a sampled stats
// RPC over the bag's slots).
type SampleBagFunc func(ctx context.Context, bag string) (*BagTel, error)

// HubConfig wires a Hub to its telemetry sources.
type HubConfig struct {
	// FetchStats fetches merged edge sketches; nil disables edge
	// statistics entirely (no refinement policy will see fresh stats).
	FetchStats FetchStatsFunc
	// FetchInterval rate-limits sketch fetches per edge: a fetch makes the
	// storage node decode and merge every producer's sketch blob, far too
	// much work to repeat on every snapshot.
	FetchInterval time.Duration
	// SampleBag probes bag depths for the cloning heuristic; nil makes the
	// heuristic decline every clone (tests install synthetic probes).
	SampleBag SampleBagFunc
	// Obs receives the hub's metrics (snapshot count, snapshot lag,
	// overload signals seen and dropped); nil disables them. Job labels
	// the series in a multi-job cluster.
	Obs *obs.Observer
	Job string
}

// Hub is the event-driven telemetry hub: compute nodes and the master
// push signals into it as they happen (heartbeats, overload signals,
// work-bag nudges), and the master's control loop blocks on Wake instead
// of polling on a fixed tick. When the loop wakes, Snapshot drains the
// batched signals into one versioned view and augments it with
// rate-limited sketch fetches and lazy bag-depth probes.
type Hub struct {
	cfg HubConfig

	wake chan struct{}

	mu        sync.Mutex
	version   uint64
	nodes     map[string]NodeTel
	overloads []Overload
	dropped   int // overload signals dropped under pressure
	lastFetch map[string]time.Time
	// firstSignal is when the oldest still-undrained buffered signal
	// arrived; Snapshot observes the drain delay as snapshot lag.
	firstSignal time.Time

	// cached metric handles (nil-safe no-ops when cfg.Obs is nil)
	mSnapshots *obs.Counter
	mOverloads *obs.Counter
	mDropped   *obs.Counter
	mLag       *obs.Histogram
}

// NewHub creates a hub. The zero HubConfig is valid (no sketch fetches,
// no bag probes): signals still batch and Wake still fires.
func NewHub(cfg HubConfig) *Hub {
	job := []string{"job", cfg.Job}
	return &Hub{
		cfg:        cfg,
		wake:       make(chan struct{}, 1),
		nodes:      make(map[string]NodeTel),
		lastFetch:  make(map[string]time.Time),
		mSnapshots: cfg.Obs.Counter("hurricane_ctrl_snapshots_total", job...),
		mOverloads: cfg.Obs.Counter("hurricane_ctrl_overloads_total", job...),
		mDropped:   cfg.Obs.Counter("hurricane_ctrl_overloads_dropped_total", job...),
		mLag:       cfg.Obs.Histogram("hurricane_ctrl_snapshot_lag_us", job...),
	}
}

// Wake returns the hub's wake channel: it receives (coalesced) whenever a
// signal arrives. The master's loop selects on it alongside its coarse
// fallback timer.
func (h *Hub) Wake() <-chan struct{} { return h.wake }

// signal wakes the consumer without blocking; concurrent signals coalesce.
func (h *Hub) signal() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Nudge wakes the control loop without carrying data — compute nodes
// call it after inserting work-bag records (task started / completed) so
// the master's event-driven loop re-scans immediately instead of waiting
// out its idle fallback timer. (There is no polling cadence left to wait
// on; MasterConfig.PollInterval survives only as a compatibility knob
// pinning that fallback timer.)
func (h *Hub) Nudge() { h.signal() }

// noteSignalLocked timestamps the arrival of a buffered (data-carrying)
// signal so Snapshot can report how long signals waited to be drained.
func (h *Hub) noteSignalLocked(now time.Time) {
	if h.firstSignal.IsZero() {
		h.firstSignal = now
	}
}

// Heartbeat ingests one node heartbeat.
func (h *Hub) Heartbeat(node string, running, slots int) {
	now := time.Now()
	h.mu.Lock()
	h.nodes[node] = NodeTel{LastBeat: now, Running: running, Slots: slots}
	h.noteSignalLocked(now)
	h.mu.Unlock()
	h.signal()
}

// OverloadSignal ingests one overload signal. Signals beyond the buffer
// cap are dropped (they are advisory and periodically re-sent).
func (h *Hub) OverloadSignal(o Overload) {
	h.mu.Lock()
	h.mOverloads.Inc()
	if len(h.overloads) < maxPendingOverloads {
		h.overloads = append(h.overloads, o)
		h.noteSignalLocked(time.Now())
	} else {
		h.dropped++
		h.mDropped.Inc()
	}
	h.mu.Unlock()
	h.signal()
}

// Dropped reports how many overload signals were dropped under pressure.
func (h *Hub) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Snapshot drains the batched signals into a new versioned Snapshot. The
// fill callback lets the owner (the master) contribute its authoritative
// task and edge state; afterwards the hub fetches merged sketches for
// active edges whose per-edge rate limit has elapsed and installs the
// memoized bag-depth prober.
func (h *Hub) Snapshot(ctx context.Context, fill func(*Snapshot)) *Snapshot {
	h.mu.Lock()
	h.version++
	snap := &Snapshot{
		Version:   h.version,
		Now:       time.Now(),
		Nodes:     make(map[string]NodeTel, len(h.nodes)),
		Tasks:     make(map[string]*TaskTel),
		Edges:     make(map[string]*EdgeTel),
		Overloads: h.overloads,
	}
	h.overloads = nil
	if !h.firstSignal.IsZero() {
		h.mLag.Observe(snap.Now.Sub(h.firstSignal).Microseconds())
		h.firstSignal = time.Time{}
	}
	for n, tel := range h.nodes {
		snap.Nodes[n] = tel
	}
	h.mu.Unlock()
	h.mSnapshots.Inc()

	if fill != nil {
		fill(snap)
	}

	if h.cfg.FetchStats != nil {
		for _, name := range snap.EdgeNames() {
			e := snap.Edges[name]
			if !e.Active || e.Stats != nil {
				continue
			}
			h.mu.Lock()
			last := h.lastFetch[name]
			due := snap.Now.Sub(last) >= h.cfg.FetchInterval
			if due {
				h.lastFetch[name] = snap.Now
			}
			h.mu.Unlock()
			if !due {
				continue
			}
			stats, err := h.cfg.FetchStats(ctx, name)
			if err != nil {
				continue // detection is advisory; retry next interval
			}
			e.Stats = stats
		}
	}

	if snap.SampleBag == nil && h.cfg.SampleBag != nil {
		memo := make(map[string]*BagTel)
		snap.SampleBag = func(bag string) *BagTel {
			if tel, ok := memo[bag]; ok {
				return tel
			}
			tel, err := h.cfg.SampleBag(ctx, bag)
			if err != nil {
				tel = nil
			}
			memo[bag] = tel
			return tel
		}
	}
	return snap
}

// Evaluate runs the policy chain over a snapshot and arbitrates the
// proposals. It is a convenience for the common "snapshot → propose →
// arbitrate" sequence; callers needing the raw proposals run the policies
// themselves.
func Evaluate(snap *Snapshot, policies []Policy) []Action {
	var proposed []Action
	for _, p := range policies {
		proposed = append(proposed, p.Evaluate(snap)...)
	}
	return Arbitrate(snap, proposed)
}
