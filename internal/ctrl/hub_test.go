package ctrl

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/sketch"
)

// TestHubBatchesAndVersions: signals batch between snapshots, snapshots
// are versioned, and the overload buffer drains exactly once.
func TestHubBatchesAndVersions(t *testing.T) {
	h := NewHub(HubConfig{})
	h.Heartbeat("node-0", 1, 2)
	h.OverloadSignal(Overload{Task: "map", Busy: 0.9})
	h.OverloadSignal(Overload{Task: "map", Busy: 0.95})

	select {
	case <-h.Wake():
	default:
		t.Fatal("signals did not wake the hub")
	}

	snap := h.Snapshot(context.Background(), nil)
	if snap.Version != 1 {
		t.Fatalf("first snapshot version %d", snap.Version)
	}
	if len(snap.Overloads) != 2 {
		t.Fatalf("want 2 batched overloads, got %d", len(snap.Overloads))
	}
	if tel, ok := snap.Nodes["node-0"]; !ok || tel.Slots != 2 {
		t.Fatalf("heartbeat not ingested: %+v", snap.Nodes)
	}

	snap2 := h.Snapshot(context.Background(), nil)
	if snap2.Version != 2 {
		t.Fatalf("second snapshot version %d", snap2.Version)
	}
	if len(snap2.Overloads) != 0 {
		t.Fatal("overloads delivered twice")
	}
}

// TestHubOverloadBackpressure: the buffer caps and drops instead of
// growing without bound.
func TestHubOverloadBackpressure(t *testing.T) {
	h := NewHub(HubConfig{})
	for i := 0; i < maxPendingOverloads+10; i++ {
		h.OverloadSignal(Overload{Task: "map"})
	}
	if got := h.Dropped(); got != 10 {
		t.Fatalf("dropped %d, want 10", got)
	}
	snap := h.Snapshot(context.Background(), nil)
	if len(snap.Overloads) != maxPendingOverloads {
		t.Fatalf("buffered %d, want cap %d", len(snap.Overloads), maxPendingOverloads)
	}
}

// TestHubFetchRateLimit: edge sketch fetches are rate-limited per edge
// and only issued for active edges.
func TestHubFetchRateLimit(t *testing.T) {
	fetches := 0
	h := NewHub(HubConfig{
		FetchInterval: time.Hour, // one fetch, then rate-limited
		FetchStats: func(ctx context.Context, edge string) (*sketch.EdgeStats, error) {
			fetches++
			s := sketch.NewEdgeStats()
			s.Counts[edge+".p0"] = 42
			return s, nil
		},
	})
	fill := func(active bool) func(*Snapshot) {
		return func(snap *Snapshot) {
			snap.Edges["shuf"] = &EdgeTel{Name: "shuf", Active: active}
			snap.Edges["idle"] = &EdgeTel{Name: "idle", Active: false}
		}
	}

	snap := h.Snapshot(context.Background(), fill(true))
	if fetches != 1 {
		t.Fatalf("want 1 fetch (active edge only), got %d", fetches)
	}
	if snap.Edges["shuf"].Stats == nil || snap.Edges["shuf"].Stats.Counts["shuf.p0"] != 42 {
		t.Fatal("fetched stats not installed on the edge")
	}
	if snap.Edges["idle"].Stats != nil {
		t.Fatal("inactive edge was fetched")
	}

	snap = h.Snapshot(context.Background(), fill(true))
	if fetches != 1 {
		t.Fatalf("rate limit not applied: %d fetches", fetches)
	}
	if snap.Edges["shuf"].Stats != nil {
		t.Fatal("stale round must carry nil stats (no fresh evidence)")
	}
}

// TestHubSampleMemoized: bag probes are memoized per snapshot, including
// failures.
func TestHubSampleMemoized(t *testing.T) {
	probes := 0
	h := NewHub(HubConfig{
		SampleBag: func(ctx context.Context, bag string) (*BagTel, error) {
			probes++
			if bag == "broken" {
				return nil, fmt.Errorf("probe failed")
			}
			return &BagTel{ReadBytes: 1, RemainingBytes: 2}, nil
		},
	})
	snap := h.Snapshot(context.Background(), nil)
	for i := 0; i < 3; i++ {
		if tel := snap.SampleBag("in"); tel == nil || tel.RemainingBytes != 2 {
			t.Fatalf("probe %d: %+v", i, tel)
		}
		if tel := snap.SampleBag("broken"); tel != nil {
			t.Fatalf("failed probe returned %+v", tel)
		}
	}
	if probes != 2 {
		t.Fatalf("probes not memoized: %d calls", probes)
	}
}

// TestHubWakeCoalesces: many signals produce at most one pending wake;
// the loop never queues redundant iterations.
func TestHubWakeCoalesces(t *testing.T) {
	h := NewHub(HubConfig{})
	for i := 0; i < 100; i++ {
		h.Nudge()
	}
	n := 0
	for {
		select {
		case <-h.Wake():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("want exactly 1 coalesced wake, got %d", n)
	}
}
