package ctrl

import (
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// ---- cloning ----

// ClonePolicy is the paper's reactive mitigation (§4.2): each overload
// signal from a compute node is a clone request, gated by per-task rate
// limiting, the worker-count caps, and the Eq. 2 heuristic
// T > (k+1)·T_IO evaluated against live bag depth telemetry.
type ClonePolicy struct {
	Cfg Config
}

// Name implements Policy.
func (*ClonePolicy) Name() string { return "clone" }

// Evaluate implements Policy.
func (p *ClonePolicy) Evaluate(snap *Snapshot) []Action {
	var out []Action
	for _, o := range snap.Overloads {
		t := snap.Tasks[o.Task]
		if t == nil || o.Epoch != t.Epoch || o.Merge ||
			!t.Scheduled || t.Finished || t.NoClone {
			continue
		}
		if a, ok := proposeClone(&p.Cfg, snap, t, o.Inputs, false); ok {
			out = append(out, a)
		}
	}
	return out
}

// SpeculativePolicy is the paper's stated future work (§3.5): any task
// still running SpeculativeAfter past its start is treated as if it had
// signalled overload, mitigating stragglers whose slowness is not
// CPU-bound (e.g. a degraded machine). The clone steals the remaining
// chunks through ordinary late binding, so no work is redone.
type SpeculativePolicy struct {
	Cfg Config
}

// Name implements Policy.
func (*SpeculativePolicy) Name() string { return "speculative" }

// Evaluate implements Policy.
func (p *SpeculativePolicy) Evaluate(snap *Snapshot) []Action {
	var out []Action
	for _, name := range snap.TaskNames() {
		t := snap.Tasks[name]
		if !t.Scheduled || t.Finished || t.Workers == 0 ||
			t.DoneWorkers >= t.Workers || t.NoClone {
			continue
		}
		if snap.Now.Sub(t.StartedAt) < p.Cfg.SpeculativeAfter {
			continue
		}
		if snap.Now.Sub(t.LastClone) < p.Cfg.CloneInterval {
			continue
		}
		// Speculative requests carry no worker blueprint, so they cannot
		// name the physical partition a clone of a partitioned consumer
		// would have to pull from.
		if t.ConsumesEdge != "" {
			continue
		}
		if a, ok := proposeClone(&p.Cfg, snap, t, nil, true); ok {
			out = append(out, a)
		}
	}
	return out
}

// proposeClone applies the gates shared by reactive and speculative
// cloning and returns the resulting proposal: a CloneTask when every gate
// passes, a RejectClone when an idle slot is missing or Eq. 2 declines
// (preserving the master's reject counters), or nothing when a cheap gate
// (worker caps, rate limit, partitioned-input rules) filters the request.
func proposeClone(cfg *Config, snap *Snapshot, t *TaskTel, workerInputs []string, speculative bool) (Action, bool) {
	if t.DoneWorkers >= t.Workers && t.Workers > 0 {
		return nil, false // task is effectively over
	}
	maxWorkers := snap.TotalSlots
	if t.MaxClones > 0 && t.MaxClones < maxWorkers {
		maxWorkers = t.MaxClones
	}
	if t.Workers >= maxWorkers {
		return nil, false
	}
	if snap.Now.Sub(t.LastClone) < cfg.CloneInterval {
		return nil, false
	}
	// For a consumer of a partitioned shuffle bag, a clone must pull from
	// the overloaded worker's physical partition, not the logical bag —
	// and chunk-level sharing of one partition splits a key's records
	// across workers, so it is only sound when the edge declared
	// record-level parallelism safe (Spread) or the task reconciles
	// partials through a merge procedure. Otherwise splitting is the skew
	// defense.
	var inputs []string
	if t.ConsumesEdge != "" {
		if len(workerInputs) == 0 || (!t.EdgeSpread && !t.HasMerge) {
			return nil, false
		}
		inputs = workerInputs
	}
	if snap.FreeSlots <= 0 {
		return RejectClone{Task: t.Name, Speculative: speculative}, true
	}
	if !cfg.DisableHeuristic {
		input := ""
		if len(t.Inputs) > 0 {
			input = t.Inputs[0]
		}
		if inputs != nil {
			input = inputs[0]
		}
		if !cloneWorthwhile(cfg, snap, input, t) {
			return RejectClone{Task: t.Name, Speculative: speculative}, true
		}
	}
	return CloneTask{Task: t.Name, Epoch: t.Epoch, Inputs: inputs, Speculative: speculative}, true
}

// cloneWorthwhile evaluates Eq. 2 against sampled bag depth telemetry.
//
//	T    — remaining task time, estimated from the input bag's remaining
//	       bytes and the task's observed aggregate drain rate;
//	T_IO — extra I/O the clone causes: it will read ≈ R/(k+1) of the
//	       remaining input and write a comparable partial output that must
//	       then be merged, so T_IO ≈ 2·(R/(k+1))/BW.
//
// Clone iff T > (k+1)·T_IO.
func cloneWorthwhile(cfg *Config, snap *Snapshot, input string, t *TaskTel) bool {
	if snap.SampleBag == nil {
		return false
	}
	stats := snap.SampleBag(input)
	if stats == nil {
		return false
	}
	remaining := float64(stats.RemainingBytes)
	if remaining <= 0 {
		return false // nothing left to split
	}
	elapsed := snap.Now.Sub(t.StartedAt).Seconds()
	if elapsed <= 0 {
		return true
	}
	rate := float64(stats.ReadBytes) / elapsed
	if rate <= 0 {
		// No observed progress yet: assume cloning helps.
		return true
	}
	k := float64(t.Workers)
	tt := remaining / rate
	tio := 2 * (remaining / (k + 1)) / cfg.StorageBandwidth
	return tt > (k+1)*tio
}

// ---- shuffle-edge refinement ----

// hotLeaf finds the hottest refinable leaf of an edge and reports whether
// it crosses the imbalance threshold. Both refinement policies share this
// detection so their proposals name the same partition and Arbitrate can
// resolve the preference.
func hotLeaf(cfg *Config, e *EdgeTel) (leaf string, count uint64, ok bool) {
	if !e.Active || e.Stats == nil || e.PMap == nil {
		return "", 0, false
	}
	total := e.Stats.Total()
	if total < uint64(cfg.SplitMinRecords) {
		return "", 0, false
	}
	leaves := e.PMap.Leaves()
	mean := float64(total) / float64(len(leaves))
	for _, l := range leaves {
		if c := e.Stats.Counts[l]; c > count && !e.Unsplittable[l] {
			leaf, count = l, c
		}
	}
	if leaf == "" || float64(count) <= cfg.SplitImbalance*mean {
		return "", 0, false
	}
	return leaf, count, true
}

// dominantKey returns the heaviest non-isolated heavy-hitter candidate
// routed to the given leaf, if one accounts for at least IsolateFraction
// of the leaf's records. Candidates come pre-ranked from the sketch
// API's first-class extraction (TopKeys), so the first survivor of the
// leaf/isolation filters is the dominant one.
func dominantKey(cfg *Config, e *EdgeTel, leaf string, leafCount uint64) *sketch.HeavyKey {
	for _, hk := range e.Stats.TopKeys(sketch.MaxHeavyKeys, 0) {
		if e.PMap.IsIsolated(shuffle.KeyHash(hk.Key)) {
			continue
		}
		if e.PMap.LeafForKey(hk.Key) != leaf {
			continue
		}
		if float64(hk.Count) < cfg.IsolateFraction*float64(leafCount) {
			return nil
		}
		hk := hk
		return &hk
	}
	return nil
}

// SplitPartitionPolicy re-hashes a hot base partition into SplitFan
// sub-partitions when many medium keys pile onto it (Reshape-style).
// Splitting only redirects records not yet written, so it is always safe;
// the edge must still be active (producers running, consumer unscheduled).
type SplitPartitionPolicy struct {
	Cfg Config
}

// Name implements Policy.
func (*SplitPartitionPolicy) Name() string { return "split-partition" }

// WantsEdgeStats implements EdgeStatsConsumer.
func (*SplitPartitionPolicy) WantsEdgeStats() bool { return true }

// Evaluate implements Policy.
func (p *SplitPartitionPolicy) Evaluate(snap *Snapshot) []Action {
	var out []Action
	for _, name := range snap.EdgeNames() {
		e := snap.Edges[name]
		leaf, _, ok := hotLeaf(&p.Cfg, e)
		if !ok {
			continue
		}
		part, isBase := e.PMap.BasePartitionIndex(leaf)
		if !isBase {
			// A sub-partition or isolated bag still hot: re-hashing cannot
			// refine it further. If IsolateKeyPolicy has a dominant key to
			// extract, its proposal wins in arbitration; otherwise the
			// master records the leaf as unrefinable.
			out = append(out, MarkUnsplittable{Edge: name, Leaf: leaf})
			continue
		}
		out = append(out, SplitPartition{Edge: name, Partition: part, Fan: p.Cfg.SplitFan, Leaf: leaf})
	}
	return out
}

// IsolateKeyPolicy diverts a dominant heavy-hitter key into a dedicated
// bag when a single key carries a hot partition (SharesSkew-style),
// spreading it record-wise over SplitFan bags when the edge permits.
type IsolateKeyPolicy struct {
	Cfg Config
}

// Name implements Policy.
func (*IsolateKeyPolicy) Name() string { return "isolate-key" }

// WantsEdgeStats implements EdgeStatsConsumer.
func (*IsolateKeyPolicy) WantsEdgeStats() bool { return true }

// Evaluate implements Policy.
func (p *IsolateKeyPolicy) Evaluate(snap *Snapshot) []Action {
	var out []Action
	for _, name := range snap.EdgeNames() {
		e := snap.Edges[name]
		leaf, count, ok := hotLeaf(&p.Cfg, e)
		if !ok {
			continue
		}
		top := dominantKey(&p.Cfg, e, leaf, count)
		if top == nil {
			continue
		}
		fan := 1
		if e.Spread {
			fan = p.Cfg.SplitFan
		}
		out = append(out, IsolateKey{Edge: name, Key: top.Key, Fan: fan})
	}
	return out
}
