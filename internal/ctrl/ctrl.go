// Package ctrl is Hurricane's adaptive control plane: the telemetry hub
// that turns worker heartbeats, overload signals, bag depths, and merged
// edge sketches into one versioned cluster Snapshot, and the pluggable
// mitigation Policies that turn a Snapshot into declarative Actions.
//
// The paper's core claim (§2.2) is that one adaptive mechanism family —
// fine-grained cloning plus late binding — tames skew at runtime. After the
// shuffle subsystem landed, Hurricane had four mitigations (reactive
// cloning, speculative cloning, hot-partition splitting, heavy-key
// isolation) smeared across what was then the master's polling loop
// (today's control loop is event-driven). Following the
// Reshape/Texera line of work, this package separates them into
// interchangeable strategies driven by a shared metrics pipeline:
//
//   - the Hub ingests telemetry signals as they arrive (event-driven, not
//     polled), batches them, and builds versioned Snapshots on demand;
//   - a Policy inspects a Snapshot and proposes Actions;
//   - Arbitrate resolves conflicts between concurrently proposed Actions
//     (clone-vs-split on one edge, duplicate clones, slot budgets) in one
//     place, instead of implicitly by pass ordering;
//   - the master validates and applies the surviving Actions
//     transactionally against its authoritative task state.
//
// The package deliberately does not import internal/core: policies are
// pure functions over telemetry, unit-testable against synthetic traces
// with no cluster behind them.
package ctrl

import (
	"sort"
	"time"

	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// Config carries the tuning knobs shared by the built-in policies. The
// master derives it from its MasterConfig, so existing knobs keep working.
type Config struct {
	// CloneInterval is the minimum gap between successive clones of one
	// task (the paper sends clone messages at least 2 seconds apart).
	CloneInterval time.Duration
	// StorageBandwidth (bytes/s) estimates the I/O rate used for the T_IO
	// term of the cloning heuristic (Eq. 2).
	StorageBandwidth float64
	// DisableHeuristic accepts every rate-limited clone request without
	// evaluating Eq. 2 (ablations and tests).
	DisableHeuristic bool
	// SpeculativeAfter is the straggler threshold for SpeculativePolicy.
	SpeculativeAfter time.Duration
	// SplitImbalance triggers a split when the hottest physical partition
	// holds more than SplitImbalance × the mean partition load.
	SplitImbalance float64
	// SplitMinRecords is the number of records an edge must have observed
	// before refinement is considered.
	SplitMinRecords int
	// SplitFan is the re-hash fan for hot partitions and the spread factor
	// for isolated heavy-hitter keys on Spread edges.
	SplitFan int
	// IsolateFraction: a single key accounting for at least this fraction
	// of a hot partition's records is isolated instead of re-hashed.
	IsolateFraction float64
}

// ---- telemetry (snapshot contents) ----

// NodeTel is the hub's view of one compute node, built from heartbeats.
type NodeTel struct {
	LastBeat time.Time
	Running  int
	Slots    int
}

// Overload is one overload signal from a compute node: the node was
// CPU-bound while running a worker of the named task and asks for a clone.
type Overload struct {
	Node   string
	Task   string
	Epoch  int
	Worker int
	Merge  bool
	// Inputs are the overloaded worker's input bags (physical partition
	// bags for partitioned consumers; clones must pull from the same
	// physical bag, not the logical edge).
	Inputs []string
	Busy   float64
}

// TaskTel is the master's view of one task, forwarded into the snapshot.
type TaskTel struct {
	Name        string
	Epoch       int
	Scheduled   bool
	Finished    bool
	Workers     int
	DoneWorkers int
	StartedAt   time.Time
	LastClone   time.Time

	// Declared shape relevant to cloning decisions.
	NoClone   bool
	MaxClones int
	HasMerge  bool
	Inputs    []string
	// ConsumesEdge names the partitioned shuffle edge this task consumes
	// ("" for ordinary tasks); EdgeSpread mirrors the edge's Spread flag.
	ConsumesEdge string
	EdgeSpread   bool
}

// EdgeTel is the state of one partitioned shuffle edge: the current
// partition map, whether the edge is still being produced (refinements only
// help while records are in flight), and — when the hub fetched them this
// round — the merged producer statistics.
type EdgeTel struct {
	Name   string
	PMap   *shuffle.PartitionMap
	Spread bool
	// Active: producers still running and the consumer not yet scheduled,
	// so partition-map refinements can still take effect.
	Active bool
	// Stats is the merged producer sketch for the edge, or nil if the hub
	// did not (re-)fetch it for this snapshot. Policies must treat nil as
	// "no fresh evidence", not as "empty edge".
	Stats *sketch.EdgeStats
	// Unsplittable lists leaves the master already found unrefinable (hot
	// sub-partitions with no dominant key to extract).
	Unsplittable map[string]bool
}

// BagTel is a sampled depth probe of one bag, used by the Eq. 2 cloning
// heuristic.
type BagTel struct {
	ReadBytes      int64
	RemainingBytes int64
}

// Snapshot is one versioned, self-consistent view of the cluster: task
// state from the master, node/overload telemetry from the hub, and fresh
// edge statistics where the fetch rate limit allowed. Policies treat it as
// read-only.
type Snapshot struct {
	Version uint64
	Now     time.Time

	// Job identifies the job this snapshot describes. In a multi-job
	// cluster every job runs its own master, hub, and policy chain; the
	// job identity lets policies and logs attribute actions, and marks
	// that FreeSlots/LeaseSlots describe a *shared* cluster rather than
	// one the job owns outright.
	Job string

	// FreeSlots and TotalSlots are the cluster's physical idle and total
	// worker slots — shared by every concurrent job.
	FreeSlots  int
	TotalSlots int

	// LeaseSlots, when LeaseCapped is set, is the job's fair-share
	// mitigation budget this round: the number of additional workers the
	// scheduler will let the job claim before a starved neighbor's share
	// takes precedence. Arbitrate caps the clone budget at it so no
	// policy — built-in or custom — can starve a neighboring job, even
	// when physical FreeSlots are plentiful.
	LeaseSlots  int
	LeaseCapped bool

	Nodes     map[string]NodeTel
	Tasks     map[string]*TaskTel
	Edges     map[string]*EdgeTel
	Overloads []Overload

	// SampleBag lazily probes a bag's depth (read/remaining bytes). It
	// returns nil when the probe fails or no prober is configured; the
	// cloning heuristic then declines to clone, exactly like a failed
	// SampleSlots RPC did. Results are memoized per snapshot.
	SampleBag func(bag string) *BagTel
}

// TaskNames returns the snapshot's task names in deterministic order.
func (s *Snapshot) TaskNames() []string {
	out := make([]string, 0, len(s.Tasks))
	for n := range s.Tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgeNames returns the snapshot's edge names in deterministic order.
func (s *Snapshot) EdgeNames() []string {
	out := make([]string, 0, len(s.Edges))
	for n := range s.Edges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---- actions ----

// An Action is a declarative mitigation decision. Policies emit Actions;
// Arbitrate prunes conflicting ones; the master validates each survivor
// against its authoritative state and applies it (or drops it if the state
// moved underneath — the next snapshot will re-propose).
//
// The action vocabulary is CLOSED: CloneTask, RejectClone, SplitPartition,
// IsolateKey, and MarkUnsplittable are the complete instruction set the
// master knows how to apply. Policies are the extension point — a custom
// policy composes these instructions; an action type the master does not
// recognize is discarded without effect.
type Action interface {
	// Kind returns a stable action identifier for logs and tests.
	Kind() string
}

// CloneTask schedules one additional worker for a running task ("the
// master performs task cloning by scheduling a copy of the task on an idle
// node, as it would any other task", §3.2).
type CloneTask struct {
	Task  string
	Epoch int
	// Inputs overrides the clone's consumed bags (partitioned consumers:
	// the overloaded worker's physical partition). Nil means the task's
	// declared inputs.
	Inputs []string
	// Speculative marks clones proposed by SpeculativePolicy (straggler
	// mitigation without an overload signal, §3.5 future work).
	Speculative bool
}

// Kind implements Action.
func (CloneTask) Kind() string { return "clone" }

// RejectClone records that a clone proposal was evaluated and declined
// (no idle slot, or Eq. 2 said cloning would not pay off). It exists so
// the master's observability counters survive the refactor.
type RejectClone struct {
	Task        string
	Speculative bool
}

// Kind implements Action.
func (RejectClone) Kind() string { return "reject-clone" }

// SplitPartition re-hashes one hot base partition of a shuffle edge into
// Fan sub-partitions (Reshape-style: many medium keys piled onto one
// partition).
type SplitPartition struct {
	Edge string
	// Partition is the base partition index to refine.
	Partition int
	Fan       int
	// Leaf is the physical bag being split (diagnostic; the partition
	// index is authoritative).
	Leaf string
}

// Kind implements Action.
func (SplitPartition) Kind() string { return "split" }

// IsolateKey diverts one heavy-hitter key of a shuffle edge into a
// dedicated bag (SharesSkew-style), spread record-wise over Fan bags when
// the edge permits record-level parallelism.
type IsolateKey struct {
	Edge string
	Key  []byte
	Fan  int
}

// Kind implements Action.
func (IsolateKey) Kind() string { return "isolate" }

// MarkUnsplittable records that a leaf is hot but cannot be refined
// further (a sub-partition or isolated bag with no dominant key left to
// extract), so detection stops re-proposing it.
type MarkUnsplittable struct {
	Edge string
	Leaf string
}

// Kind implements Action.
func (MarkUnsplittable) Kind() string { return "mark-unsplittable" }

// ---- policies ----

// A Policy is one interchangeable mitigation strategy: it inspects a
// Snapshot and proposes Actions. Policies must be side-effect free — all
// state they need is in the Snapshot, and all state they change is carried
// by the Actions they emit. That makes them replayable against synthetic
// telemetry traces and composable in any order (Arbitrate, not emission
// order, resolves conflicts).
type Policy interface {
	// Name identifies the policy in logs and stats.
	Name() string
	// Evaluate proposes mitigation actions for one snapshot.
	Evaluate(snap *Snapshot) []Action
}

// EdgeStatsConsumer is implemented by policies that read EdgeTel.Stats.
// The telemetry hub only pays for storage-tier sketch fetches when at
// least one installed policy declares the need.
type EdgeStatsConsumer interface {
	WantsEdgeStats() bool
}

// Arbitrate resolves conflicts among the actions proposed by all policies
// for one snapshot, in one place:
//
//   - at most one clone per task per round (duplicate overload signals and
//     clone/speculative overlap collapse to the first proposal);
//   - total clones are capped by the snapshot's free slots — and, in a
//     multi-job cluster, by the job's fair-share lease budget
//     (LeaseSlots), so one job's mitigations cannot starve its
//     neighbors (excess proposals become RejectClone, preserving the
//     reject counters);
//   - at most one partition-map refinement per edge per round, preferring
//     IsolateKey over SplitPartition (re-hashing cannot help when a single
//     key carries the partition) over MarkUnsplittable;
//   - a clone of a task that consumes an edge being refined this round is
//     dropped: the refinement is the preferred skew defense, and the
//     clone's evidence predates the new map (a later overload signal will
//     re-propose it if the split alone does not help).
func Arbitrate(snap *Snapshot, proposed []Action) []Action {
	refined := make(map[string]Action) // edge -> winning refinement
	for _, a := range proposed {
		switch act := a.(type) {
		case IsolateKey:
			refined[act.Edge] = act
		case SplitPartition:
			if _, ok := refined[act.Edge].(IsolateKey); !ok {
				refined[act.Edge] = act
			}
		case MarkUnsplittable:
			if refined[act.Edge] == nil {
				refined[act.Edge] = act
			}
		}
	}

	out := make([]Action, 0, len(proposed))
	emittedRefinement := make(map[string]bool)
	clonedTask := make(map[string]bool)
	budget := snap.FreeSlots
	if snap.LeaseCapped && snap.LeaseSlots < budget {
		budget = snap.LeaseSlots
	}
	for _, a := range proposed {
		switch act := a.(type) {
		case CloneTask:
			if clonedTask[act.Task] {
				continue
			}
			if t := snap.Tasks[act.Task]; t != nil && t.ConsumesEdge != "" {
				if _, conflict := refined[t.ConsumesEdge]; conflict {
					if _, marked := refined[t.ConsumesEdge].(MarkUnsplittable); !marked {
						continue // refinement wins the edge this round
					}
				}
			}
			clonedTask[act.Task] = true
			if budget <= 0 {
				out = append(out, RejectClone{Task: act.Task, Speculative: act.Speculative})
				continue
			}
			budget--
			out = append(out, act)
		case RejectClone:
			out = append(out, act)
		case IsolateKey:
			if !emittedRefinement[act.Edge] {
				if winner, ok := refined[act.Edge].(IsolateKey); ok {
					emittedRefinement[act.Edge] = true
					out = append(out, winner)
				}
			}
		case SplitPartition:
			if !emittedRefinement[act.Edge] {
				if winner, ok := refined[act.Edge].(SplitPartition); ok {
					emittedRefinement[act.Edge] = true
					out = append(out, winner)
				}
			}
		case MarkUnsplittable:
			if !emittedRefinement[act.Edge] {
				if winner, ok := refined[act.Edge].(MarkUnsplittable); ok {
					emittedRefinement[act.Edge] = true
					out = append(out, winner)
				}
			}
		default:
			out = append(out, a)
		}
	}
	return out
}
