package ctrl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// The policy tests run entirely against synthetic telemetry: no cluster,
// no storage, no goroutines. A trace builds Snapshots by hand (or from a
// synthetic Zipf workload routed through a real PartitionMap) and feeds
// them to policies, asserting on the emitted Actions.

var t0 = time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)

func testConfig() Config {
	return Config{
		CloneInterval:    2 * time.Second,
		StorageBandwidth: 1 << 30,
		SpeculativeAfter: 8 * time.Second,
		SplitImbalance:   2,
		SplitMinRecords:  1000,
		SplitFan:         4,
		IsolateFraction:  0.5,
	}
}

func baseSnapshot() *Snapshot {
	return &Snapshot{
		Version:    1,
		Now:        t0,
		FreeSlots:  4,
		TotalSlots: 8,
		Nodes:      map[string]NodeTel{},
		Tasks:      map[string]*TaskTel{},
		Edges:      map[string]*EdgeTel{},
	}
}

func runningTask(name string) *TaskTel {
	return &TaskTel{
		Name:      name,
		Scheduled: true,
		Workers:   1,
		StartedAt: t0.Add(-time.Minute),
		Inputs:    []string{name + ".in"},
	}
}

// zipfKeyNames builds a deterministic key universe whose hotK top-ranked
// keys all hash to base partition `target` — the canonical "many medium
// keys piled onto one partition" skew shape. Routing still goes through
// the real partitioner, so the resulting trace is exactly what producers
// would report.
func zipfKeyNames(base, keys, hotK, target int) [][]byte {
	part := shuffle.HashPartitioner{}
	names := make([][]byte, 0, keys)
	for next := 0; len(names) < hotK; next++ {
		cand := []byte(fmt.Sprintf("key-%06d", next))
		if part.Partition(cand, base) == target {
			names = append(names, cand)
		}
	}
	for next := 1 << 20; len(names) < keys; next++ {
		cand := []byte(fmt.Sprintf("key-%06d", next))
		if part.Partition(cand, base) != target {
			names = append(names, cand)
		}
	}
	return names
}

// zipfEdgeStats routes n Zipf(s)-distributed draws over the given key
// universe through pmap exactly the way a partitioned producer would,
// building the per-leaf counts and heavy-key candidates the master's
// sketch fetch returns.
func zipfEdgeStats(pmap *shuffle.PartitionMap, names [][]byte, s float64, n int, seed int64) *sketch.EdgeStats {
	rng := rand.New(rand.NewSource(seed))
	// Zipf ranks 1..len(names) with exponent s.
	weights := make([]float64, len(names))
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	stats := sketch.NewEdgeStats()
	byKey := make(map[string]uint64)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		k := 0
		for r > weights[k] && k < len(names)-1 {
			r -= weights[k]
			k++
		}
		key := names[k]
		leaf := pmap.Route(key, i)
		stats.Counts[leaf]++
		stats.CM.Add(key, 1)
		byKey[string(key)]++
	}
	for k, c := range byKey {
		stats.Heavy = append(stats.Heavy, sketch.HeavyKey{Key: []byte(k), Count: c})
	}
	return stats
}

// TestClonePolicyTable drives ClonePolicy through a table of overload
// scenarios replayed as synthetic snapshots.
func TestClonePolicyTable(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Snapshot)
		overload Overload
		want     string // expected action kind, "" for none
	}{
		{
			name:     "overloaded task clones",
			overload: Overload{Task: "map", Busy: 0.9},
			want:     "clone",
		},
		{
			name:     "epoch mismatch is stale",
			overload: Overload{Task: "map", Epoch: 1, Busy: 0.9},
			want:     "",
		},
		{
			name:     "merge workers never clone",
			overload: Overload{Task: "map", Merge: true, Busy: 0.9},
			want:     "",
		},
		{
			name:     "NoClone respected",
			mutate:   func(s *Snapshot) { s.Tasks["map"].NoClone = true },
			overload: Overload{Task: "map", Busy: 0.9},
			want:     "",
		},
		{
			name:     "MaxClones caps workers",
			mutate:   func(s *Snapshot) { s.Tasks["map"].MaxClones = 1 },
			overload: Overload{Task: "map", Busy: 0.9},
			want:     "",
		},
		{
			name:     "rate limited after recent clone",
			mutate:   func(s *Snapshot) { s.Tasks["map"].LastClone = t0.Add(-time.Second) },
			overload: Overload{Task: "map", Busy: 0.9},
			want:     "",
		},
		{
			name:     "no free slots rejects",
			mutate:   func(s *Snapshot) { s.FreeSlots = 0 },
			overload: Overload{Task: "map", Busy: 0.9},
			want:     "reject-clone",
		},
		{
			name: "partitioned consumer without spread or merge never clones",
			mutate: func(s *Snapshot) {
				s.Tasks["map"].ConsumesEdge = "shuf"
			},
			overload: Overload{Task: "map", Inputs: []string{"shuf.p1"}, Busy: 0.9},
			want:     "",
		},
		{
			name: "partitioned spread consumer clones its physical partition",
			mutate: func(s *Snapshot) {
				s.Tasks["map"].ConsumesEdge = "shuf"
				s.Tasks["map"].EdgeSpread = true
			},
			overload: Overload{Task: "map", Inputs: []string{"shuf.p1"}, Busy: 0.9},
			want:     "clone",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := baseSnapshot()
			snap.Tasks["map"] = runningTask("map")
			snap.SampleBag = func(string) *BagTel {
				return &BagTel{ReadBytes: 1 << 20, RemainingBytes: 1 << 30}
			}
			if tc.mutate != nil {
				tc.mutate(snap)
			}
			snap.Overloads = []Overload{tc.overload}
			p := &ClonePolicy{Cfg: testConfig()}
			actions := p.Evaluate(snap)
			if tc.want == "" {
				if len(actions) != 0 {
					t.Fatalf("want no actions, got %v", actions)
				}
				return
			}
			if len(actions) != 1 || actions[0].Kind() != tc.want {
				t.Fatalf("want one %q action, got %v", tc.want, actions)
			}
			if clone, ok := actions[0].(CloneTask); ok && snap.Tasks["map"].ConsumesEdge != "" {
				if len(clone.Inputs) != 1 || clone.Inputs[0] != "shuf.p1" {
					t.Fatalf("partitioned clone must target the worker's physical partition, got %v", clone.Inputs)
				}
			}
		})
	}
}

// TestCloneHeuristic exercises Eq. 2 against synthetic bag depths: a
// fast-draining bag with little data left is not worth cloning; a slow
// task with most of its input remaining is.
func TestCloneHeuristic(t *testing.T) {
	cfg := testConfig()
	cfg.StorageBandwidth = 1 << 20 // 1 MB/s: I/O cost matters

	mk := func(read, remaining int64) *Snapshot {
		snap := baseSnapshot()
		snap.Tasks["map"] = runningTask("map")
		snap.Overloads = []Overload{{Task: "map", Busy: 0.9}}
		snap.SampleBag = func(string) *BagTel {
			return &BagTel{ReadBytes: read, RemainingBytes: remaining}
		}
		return snap
	}
	p := &ClonePolicy{Cfg: cfg}

	// Slow drain (little read after a minute), lots remaining: clone.
	fast := p.Evaluate(mk(1<<10, 1<<30))
	if len(fast) != 1 || fast[0].Kind() != "clone" {
		t.Fatalf("slow task with deep bag should clone, got %v", fast)
	}
	// Fast drain, almost nothing left: rejected by the heuristic.
	slow := p.Evaluate(mk(1<<30, 1<<10))
	if len(slow) != 1 || slow[0].Kind() != "reject-clone" {
		t.Fatalf("nearly drained bag should reject, got %v", slow)
	}
	// Probe failure: decline silently is not an option — the policy must
	// not clone blind.
	blind := mk(0, 0)
	blind.SampleBag = func(string) *BagTel { return nil }
	if got := p.Evaluate(blind); len(got) != 1 || got[0].Kind() != "reject-clone" {
		t.Fatalf("failed probe should reject, got %v", got)
	}
}

// TestSpeculativePolicy: stragglers past the threshold are cloned without
// any overload signal; fresh tasks and partitioned consumers are not.
func TestSpeculativePolicy(t *testing.T) {
	cfg := testConfig()
	cfg.DisableHeuristic = true
	p := &SpeculativePolicy{Cfg: cfg}

	snap := baseSnapshot()
	snap.Tasks["straggler"] = runningTask("straggler")
	snap.Tasks["fresh"] = runningTask("fresh")
	snap.Tasks["fresh"].StartedAt = t0.Add(-time.Second)
	snap.Tasks["partitioned"] = runningTask("partitioned")
	snap.Tasks["partitioned"].ConsumesEdge = "shuf"

	actions := p.Evaluate(snap)
	if len(actions) != 1 {
		t.Fatalf("want exactly one speculative clone, got %v", actions)
	}
	clone, ok := actions[0].(CloneTask)
	if !ok || clone.Task != "straggler" || !clone.Speculative {
		t.Fatalf("want speculative clone of straggler, got %+v", actions[0])
	}
}

// TestSplitPolicyZipfTrace replays a synthetic Zipf(1.1) trace with many
// medium keys piled onto one partition (no dominant key): the split
// policy must re-hash the hottest base partition, and the isolate policy
// must stay silent.
func TestSplitPolicyZipfTrace(t *testing.T) {
	cfg := testConfig()
	pmap := shuffle.BaseMap("shuf", 4)
	names := zipfKeyNames(4, 64, 24, 1)
	stats := zipfEdgeStats(pmap, names, 1.1, 20000, 7)

	snap := baseSnapshot()
	snap.Edges["shuf"] = &EdgeTel{
		Name: "shuf", PMap: pmap, Active: true, Stats: stats,
		Unsplittable: map[string]bool{},
	}

	split := (&SplitPartitionPolicy{Cfg: cfg}).Evaluate(snap)
	if len(split) != 1 {
		t.Fatalf("want one split action, got %v", split)
	}
	sp, ok := split[0].(SplitPartition)
	if !ok || sp.Edge != "shuf" || sp.Fan != cfg.SplitFan {
		t.Fatalf("unexpected split action %+v", split[0])
	}
	// The named partition must really be the hottest leaf.
	hottest, best := "", uint64(0)
	for leaf, c := range stats.Counts {
		if c > best {
			hottest, best = leaf, c
		}
	}
	if shuffle.PartitionBag("shuf", sp.Partition) != hottest {
		t.Fatalf("split names partition %d, hottest leaf is %s", sp.Partition, hottest)
	}

	// Zipf(1.1) over 64 keys: the top key holds well under half the hot
	// partition, so isolation must not trigger.
	if iso := (&IsolateKeyPolicy{Cfg: cfg}).Evaluate(snap); len(iso) != 0 {
		t.Fatalf("no dominant key, want no isolation, got %v", iso)
	}
}

// TestIsolatePolicyHeavyKey: one key dominating the stream is isolated,
// with spread fan on Spread edges and fan 1 otherwise.
func TestIsolatePolicyHeavyKey(t *testing.T) {
	cfg := testConfig()
	pmap := shuffle.BaseMap("shuf", 4)
	stats := sketch.NewEdgeStats()
	heavy := []byte("elephant")
	leaf := pmap.LeafForKey(heavy)
	stats.Counts[leaf] = 9000
	for p := 0; p < 4; p++ {
		stats.Counts[shuffle.PartitionBag("shuf", p)] += 400
	}
	stats.Heavy = []sketch.HeavyKey{{Key: heavy, Count: 8500}}

	for _, spread := range []bool{true, false} {
		snap := baseSnapshot()
		snap.Edges["shuf"] = &EdgeTel{
			Name: "shuf", PMap: pmap, Spread: spread, Active: true, Stats: stats,
			Unsplittable: map[string]bool{},
		}
		actions := (&IsolateKeyPolicy{Cfg: cfg}).Evaluate(snap)
		if len(actions) != 1 {
			t.Fatalf("spread=%v: want one isolation, got %v", spread, actions)
		}
		iso := actions[0].(IsolateKey)
		if string(iso.Key) != "elephant" {
			t.Fatalf("spread=%v: isolated key %q", spread, iso.Key)
		}
		wantFan := 1
		if spread {
			wantFan = cfg.SplitFan
		}
		if iso.Fan != wantFan {
			t.Fatalf("spread=%v: fan %d, want %d", spread, iso.Fan, wantFan)
		}
	}
}

// TestRefinementGates: inactive edges, thin edges, and already-tried
// leaves produce no refinement.
func TestRefinementGates(t *testing.T) {
	cfg := testConfig()
	pmap := shuffle.BaseMap("shuf", 4)
	stats := zipfEdgeStats(pmap, zipfKeyNames(4, 32, 12, 2), 1.3, 20000, 3)

	mk := func(mutate func(*EdgeTel)) *Snapshot {
		snap := baseSnapshot()
		e := &EdgeTel{
			Name: "shuf", PMap: pmap, Active: true, Stats: stats,
			Unsplittable: map[string]bool{},
		}
		if mutate != nil {
			mutate(e)
		}
		snap.Edges["shuf"] = e
		return snap
	}
	p := &SplitPartitionPolicy{Cfg: cfg}

	if got := p.Evaluate(mk(func(e *EdgeTel) { e.Active = false })); len(got) != 0 {
		t.Fatalf("inactive edge refined: %v", got)
	}
	if got := p.Evaluate(mk(func(e *EdgeTel) { e.Stats = nil })); len(got) != 0 {
		t.Fatalf("no fresh stats but refined: %v", got)
	}
	thin := sketch.NewEdgeStats()
	thin.Counts["shuf.p0"] = 100 // below SplitMinRecords
	if got := p.Evaluate(mk(func(e *EdgeTel) { e.Stats = thin })); len(got) != 0 {
		t.Fatalf("thin edge refined: %v", got)
	}
	// Marking every leaf unsplittable silences the policy.
	all := map[string]bool{}
	for _, l := range pmap.Leaves() {
		all[l] = true
	}
	if got := p.Evaluate(mk(func(e *EdgeTel) { e.Unsplittable = all })); len(got) != 0 {
		t.Fatalf("unsplittable leaves refined: %v", got)
	}
}

// TestArbitrateCloneSplitConflict is the required conflict case: in one
// evaluation round, ClonePolicy wants to clone the consumer of a hot edge
// while SplitPartitionPolicy wants to split the same edge. Arbitration
// must keep the split and drop the clone (the refinement is the preferred
// skew defense); clones of unrelated tasks survive.
func TestArbitrateCloneSplitConflict(t *testing.T) {
	cfg := testConfig()
	cfg.DisableHeuristic = true

	pmap := shuffle.BaseMap("shuf", 4)
	stats := zipfEdgeStats(pmap, zipfKeyNames(4, 64, 24, 1), 1.1, 20000, 7)

	snap := baseSnapshot()
	snap.Edges["shuf"] = &EdgeTel{
		Name: "shuf", PMap: pmap, Spread: true, Active: true, Stats: stats,
		Unsplittable: map[string]bool{},
	}
	consumer := runningTask("agg")
	consumer.ConsumesEdge = "shuf"
	consumer.EdgeSpread = true
	snap.Tasks["agg"] = consumer
	snap.Tasks["other"] = runningTask("other")
	snap.Overloads = []Overload{
		{Task: "agg", Inputs: []string{"shuf.p1"}, Busy: 0.95},
		{Task: "other", Busy: 0.95},
	}

	policies := []Policy{
		&ClonePolicy{Cfg: cfg},
		&SplitPartitionPolicy{Cfg: cfg},
		&IsolateKeyPolicy{Cfg: cfg},
	}
	actions := Evaluate(snap, policies)

	var haveSplit, haveOtherClone bool
	for _, a := range actions {
		switch act := a.(type) {
		case SplitPartition:
			haveSplit = true
		case CloneTask:
			if act.Task == "agg" {
				t.Fatalf("clone of the refined edge's consumer survived arbitration: %+v", act)
			}
			if act.Task == "other" {
				haveOtherClone = true
			}
		}
	}
	if !haveSplit {
		t.Fatalf("split did not survive arbitration: %v", actions)
	}
	if !haveOtherClone {
		t.Fatalf("unrelated clone was dropped: %v", actions)
	}
}

// TestArbitrateIsolationBeatsSplit: when both refinement policies fire on
// the same hot edge, the isolation wins (re-hashing cannot help when one
// key carries the partition) and exactly one refinement is emitted.
func TestArbitrateIsolationBeatsSplit(t *testing.T) {
	cfg := testConfig()
	pmap := shuffle.BaseMap("shuf", 4)
	heavy := []byte("elephant")
	leaf := pmap.LeafForKey(heavy)
	stats := sketch.NewEdgeStats()
	for p := 0; p < 4; p++ {
		stats.Counts[shuffle.PartitionBag("shuf", p)] = 500
	}
	stats.Counts[leaf] = 10000
	stats.Heavy = []sketch.HeavyKey{{Key: heavy, Count: 9000}}

	snap := baseSnapshot()
	snap.Edges["shuf"] = &EdgeTel{
		Name: "shuf", PMap: pmap, Active: true, Stats: stats,
		Unsplittable: map[string]bool{},
	}
	actions := Evaluate(snap, []Policy{
		&SplitPartitionPolicy{Cfg: cfg},
		&IsolateKeyPolicy{Cfg: cfg},
	})
	if len(actions) != 1 {
		t.Fatalf("want exactly one refinement, got %v", actions)
	}
	if _, ok := actions[0].(IsolateKey); !ok {
		t.Fatalf("isolation should beat split, got %+v", actions[0])
	}
}

// TestArbitrateCloneBudget: clones beyond the free-slot budget become
// rejections, and duplicate proposals for one task collapse.
func TestArbitrateCloneBudget(t *testing.T) {
	snap := baseSnapshot()
	snap.FreeSlots = 1
	for _, n := range []string{"a", "b"} {
		snap.Tasks[n] = runningTask(n)
	}
	proposed := []Action{
		CloneTask{Task: "a"},
		CloneTask{Task: "a"}, // duplicate collapses
		CloneTask{Task: "b"}, // over budget: becomes a rejection
	}
	out := Arbitrate(snap, proposed)
	var clones, rejects int
	for _, a := range out {
		switch a.(type) {
		case CloneTask:
			clones++
		case RejectClone:
			rejects++
		}
	}
	if clones != 1 || rejects != 1 {
		t.Fatalf("want 1 clone + 1 reject, got %v", out)
	}
}

// TestEvaluateTraceConvergence replays a multi-round telemetry trace of a
// skewed shuffle through the full policy chain: round after round the
// edge's map is refined (as the master would apply it), and the policies
// go quiet once the imbalance is resolved — the control loop converges
// instead of splitting forever.
func TestEvaluateTraceConvergence(t *testing.T) {
	cfg := testConfig()
	policies := []Policy{
		&SplitPartitionPolicy{Cfg: cfg},
		&IsolateKeyPolicy{Cfg: cfg},
	}
	pmap := shuffle.BaseMap("shuf", 4)
	names := zipfKeyNames(4, 64, 24, 1)
	unsplittable := map[string]bool{}

	refinements := 0
	for round := 0; round < 12; round++ {
		// Fresh stats each round, routed through the *current* map, as
		// producers adopting the refined map would report them.
		stats := zipfEdgeStats(pmap, names, 1.2, 20000, int64(round))
		snap := baseSnapshot()
		snap.Version = uint64(round + 1)
		snap.Edges["shuf"] = &EdgeTel{
			Name: "shuf", PMap: pmap, Spread: true, Active: true, Stats: stats,
			Unsplittable: unsplittable,
		}
		actions := Evaluate(snap, policies)
		if len(actions) == 0 {
			t.Logf("converged after %d refinements (%d rounds)", refinements, round)
			if refinements == 0 {
				t.Fatal("trace never refined the hot edge")
			}
			return
		}
		for _, a := range actions {
			next := pmap.Clone()
			switch act := a.(type) {
			case SplitPartition:
				if next.Splits == nil {
					next.Splits = map[int]int{}
				}
				next.Splits[act.Partition] = act.Fan
				refinements++
			case IsolateKey:
				next.Isolated = append(next.Isolated, shuffle.Isolation{
					Hash: shuffle.KeyHash(act.Key), Fan: act.Fan,
				})
				refinements++
			case MarkUnsplittable:
				unsplittable[act.Leaf] = true
			default:
				t.Fatalf("unexpected action %+v in refinement trace", a)
			}
			next.Version++
			pmap = next
		}
	}
	t.Fatalf("policies never went quiet over the trace (%d refinements, map %+v)", refinements, pmap)
}

// TestArbitrateLeaseBudget: in a multi-job cluster the clone budget is
// the minimum of physical free slots and the job's fair-share lease, so
// a skewed job's mitigations cannot starve a neighboring job even when
// idle slots exist (they are the neighbor's share).
func TestArbitrateLeaseBudget(t *testing.T) {
	snap := baseSnapshot()
	snap.Job = "skewed"
	snap.FreeSlots = 3
	snap.LeaseCapped = true
	snap.LeaseSlots = 1
	for _, n := range []string{"a", "b"} {
		snap.Tasks[n] = runningTask(n)
	}
	out := Arbitrate(snap, []Action{CloneTask{Task: "a"}, CloneTask{Task: "b"}})
	var clones, rejects int
	for _, a := range out {
		switch a.(type) {
		case CloneTask:
			clones++
		case RejectClone:
			rejects++
		}
	}
	if clones != 1 || rejects != 1 {
		t.Fatalf("lease-capped arbitration: want 1 clone + 1 reject, got %v", out)
	}

	// Without the lease cap the same proposals both fit the free slots.
	snap.LeaseCapped = false
	out = Arbitrate(snap, []Action{CloneTask{Task: "a"}, CloneTask{Task: "b"}})
	clones = 0
	for _, a := range out {
		if _, ok := a.(CloneTask); ok {
			clones++
		}
	}
	if clones != 2 {
		t.Fatalf("uncapped arbitration: want 2 clones, got %v", out)
	}
}
