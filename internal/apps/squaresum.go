package apps

import "repro/hurricane"

// SquareSum bag names.
const (
	SquareSumIn  = "nums"
	SquareSumMid = "squares"
	SquareSumOut = "total"
)

// SquareSumApp is the quickstart graph — square a stream of integers,
// then sum the squares — shared by the served `sqsum` job kind and the
// public-API tests. The sum stage declares a merge procedure, so the
// engine may clone it under load and reconcile the clones' partial
// sums. (examples/quickstart inlines the same graph on purpose: the
// example's job is to show how an application is written.)
func SquareSumApp() *hurricane.App {
	app := hurricane.NewApp("sqsum")
	app.SourceBag(SquareSumIn).Bag(SquareSumMid).Bag(SquareSumOut)
	app.AddTask(hurricane.TaskSpec{
		Name:    "square",
		Inputs:  []string{SquareSumIn},
		Outputs: []string{SquareSumMid},
		Run: func(tc *hurricane.TaskCtx) error {
			w := hurricane.NewWriter(tc, 0, hurricane.Int64Of)
			return hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				return w.Write(v * v)
			})
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{SquareSumMid},
		Outputs: []string{SquareSumOut},
		Merge:   hurricane.MergeSum(),
		Run: func(tc *hurricane.TaskCtx) error {
			var total int64
			if err := hurricane.ForEach(tc, 0, hurricane.Int64Of, func(v int64) error {
				total += v
				return nil
			}); err != nil {
				return err
			}
			return hurricane.NewWriter(tc, 0, hurricane.Int64Of).Write(total)
		},
	})
	return app
}
