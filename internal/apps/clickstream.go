package apps

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/hurricane"
	"repro/internal/workload"
)

// ClickStream bag names — the per-window DAG of the continuous-ingestion
// benchmark and the hurricane-run -stream mode.
const (
	ClickStreamIn   = "clicks"  // source: raw click IPs (uint64 records)
	ClickStreamShuf = "cs.shuf" // partitioned shuffle edge keyed by region
	ClickStreamOut  = "cs.out"  // per-region partial aggregates
)

// csOutCodec encodes (region, (count, encoded-HLL)) partial aggregates.
var csOutCodec = hurricane.PairOf(hurricane.Uint64Of,
	hurricane.PairOf(hurricane.Int64Of, hurricane.BytesOf))

// ClickStreamApp builds the window DAG the streaming subsystem executes
// once per tumbling window: geolocate raw click IPs and route them onto a
// region-keyed partitioned shuffle edge, then aggregate per-region click
// counts and distinct-IP HLL sketches per physical partition. With a
// zipf click distribution one region dominates, so the window's hot
// partition is exactly what cross-window skew memory should pre-split or
// pre-isolate in the next window.
//
// recordCostNS simulates per-record aggregation cost (see GroupByApp); it
// makes window latency track how evenly records spread across consumer
// slots, which is what warm-started partition maps improve.
func ClickStreamApp(parts int, spread bool, recordCostNS int) *hurricane.App {
	app := hurricane.NewApp("clickstream")
	app.SourceBag(ClickStreamIn)
	app.AddBag(hurricane.BagSpec{Name: ClickStreamShuf, Partitions: parts, Spread: spread})
	app.Bag(ClickStreamOut)

	app.AddTask(hurricane.TaskSpec{
		Name:    "route",
		Inputs:  []string{ClickStreamIn},
		Outputs: []string{ClickStreamShuf},
		Run: func(tc *hurricane.TaskCtx) error {
			pw := hurricane.NewPartitionedWriter(tc, 0, tupleCodec,
				hurricane.Uint64Key(func(t joinPair) uint64 { return t.First }))
			return hurricane.ForEach(tc, 0, hurricane.Uint64Of, func(ip uint64) error {
				region := uint64(workload.Geolocate(uint32(ip)))
				return pw.Write(joinPair{First: region, Second: ip})
			})
		},
	})

	app.AddTask(hurricane.TaskSpec{
		Name:    "aggregate",
		Inputs:  []string{ClickStreamShuf},
		Outputs: []string{ClickStreamOut},
		Run: func(tc *hurricane.TaskCtx) error {
			type agg struct {
				n   int64
				hll *hurricane.HLL
			}
			groups := make(map[uint64]*agg)
			var pbuf [8]byte
			var owedNS int64
			if err := hurricane.ForEach(tc, 0, tupleCodec, func(t joinPair) error {
				a := groups[t.First]
				if a == nil {
					a = &agg{hll: hurricane.NewHLL(10)}
					groups[t.First] = a
				}
				a.n++
				for i := 0; i < 8; i++ {
					pbuf[i] = byte(t.Second >> (8 * i))
				}
				a.hll.Add(pbuf[:])
				if recordCostNS > 0 {
					owedNS += int64(recordCostNS)
					if owedNS >= 500_000 {
						time.Sleep(time.Duration(owedNS))
						owedNS = 0
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if owedNS > 0 {
				time.Sleep(time.Duration(owedNS))
			}
			w := hurricane.NewWriter(tc, 0, csOutCodec)
			for region, a := range groups {
				rec := hurricane.Pair[uint64, hurricane.Pair[int64, []byte]]{
					First:  region,
					Second: hurricane.Pair[int64, []byte]{First: a.n, Second: a.hll.Encode()},
				}
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			return nil
		},
	})
	return app
}

// ClickStreamSource adapts a workload.ClickLogGen into a StreamSource:
// encoded click IPs whose synthetic event times advance exactly one
// window of width time.Second per PerWindow records from Origin, so
// window w of the stream sees records [w*PerWindow, (w+1)*PerWindow) of
// the generated log. Shared by the stream benchmark, hurricane-run
// -stream, and the streaming example, which must agree on the event-time
// formula to share ClickStreamTruth as their oracle.
type ClickStreamSource struct {
	// Gen configures the click log (skew, regions, drift).
	Gen workload.ClickLogGen
	// Origin is the stream's event-time origin.
	Origin int64
	// PerWindow is how many records share one event-time window.
	PerWindow int
	// Total caps the stream; Poll returns io.EOF afterwards.
	Total int
	// Batch is records per poll (default 1024).
	Batch int

	it *workload.ClickIter
	i  int
}

// Poll implements the stream Source interface.
func (s *ClickStreamSource) Poll(ctx context.Context) ([]hurricane.StreamRecord, error) {
	if s.i >= s.Total {
		return nil, io.EOF
	}
	if s.it == nil {
		s.it = s.Gen.Iter()
	}
	n := s.Batch
	if n <= 0 {
		n = 1024
	}
	if rem := s.Total - s.i; rem < n {
		n = rem
	}
	recs := make([]hurricane.StreamRecord, n)
	for k := range recs {
		w, off := s.i/s.PerWindow, s.i%s.PerWindow
		recs[k] = hurricane.StreamRecord{
			Time: s.Origin + int64(w)*int64(time.Second) +
				int64(off)*int64(time.Second)/int64(s.PerWindow+1),
			Data: hurricane.Uint64Of.Encode(nil, uint64(s.it.Next())),
		}
		s.i++
	}
	return recs, nil
}

// ClickStreamTruth regenerates the same click log a ClickStreamSource
// streams and returns the ground-truth per-region click counts of each
// window — the oracle every driver verifies window results against.
func ClickStreamTruth(gen workload.ClickLogGen, windows, perWindow int) []map[uint64]int64 {
	ips := gen.Generate(windows * perWindow)
	truth := make([]map[uint64]int64, windows)
	for w := range truth {
		truth[w] = make(map[uint64]int64)
		for _, ip := range ips[w*perWindow : (w+1)*perWindow] {
			truth[w][uint64(workload.Geolocate(ip))]++
		}
	}
	return truth
}

// ClickStreamResult is the final per-region aggregate of one window.
type ClickStreamResult struct {
	Count    int64
	Distinct float64
}

// CollectClickStream reads one window's partial aggregates from an
// explicit (window-namespaced) output bag and merges them per region.
func CollectClickStream(ctx context.Context, store *hurricane.Store, bagName string) (map[uint64]ClickStreamResult, error) {
	recs, err := hurricane.Collect(ctx, store, bagName, csOutCodec)
	if err != nil {
		return nil, err
	}
	counts := make(map[uint64]int64)
	hlls := make(map[uint64]*hurricane.HLL)
	for _, r := range recs {
		counts[r.First] += r.Second.First
		h, err := hurricane.DecodeHLL(r.Second.Second)
		if err != nil {
			return nil, fmt.Errorf("apps: clickstream partial for region %d: %w", r.First, err)
		}
		if prev := hlls[r.First]; prev == nil {
			hlls[r.First] = h
		} else if err := prev.Merge(h); err != nil {
			return nil, err
		}
	}
	out := make(map[uint64]ClickStreamResult, len(counts))
	for region, n := range counts {
		out[region] = ClickStreamResult{Count: n, Distinct: hlls[region].Estimate()}
	}
	return out, nil
}
