package apps

import (
	"strings"
	"testing"

	"repro/hurricane"
	"repro/internal/workload"
)

func runGroupBy(t *testing.T, app *hurricane.App, tuples []workload.Tuple,
	mutate func(*hurricane.ClusterConfig)) (map[uint64]GroupByResult, *hurricane.Cluster) {
	t.Helper()
	ctx := testCtx(t)
	cluster := shuffleTestCluster(t, mutate)
	if err := LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
		t.Fatal(err)
	}
	spec := app.BagSpecFor(GroupByShuf)
	spec.SketchEvery, spec.PollEvery = 256, 128
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := CollectGroupBy(ctx, cluster.Store())
	if err != nil {
		t.Fatal(err)
	}
	return got, cluster
}

// checkGroupByEquiv asserts two groupby results are identical — counts
// exactly, and HLL distinct estimates exactly too, because the batch
// path's AddUint64 produces bit-identical registers to the row path's Add
// and register-wise merging is order-independent.
func checkGroupByEquiv(t *testing.T, batch, row map[uint64]GroupByResult) {
	t.Helper()
	if len(batch) != len(row) {
		t.Errorf("batch has %d keys, row oracle has %d", len(batch), len(row))
	}
	for k, want := range row {
		got, ok := batch[k]
		if !ok {
			t.Errorf("key %d missing from batch output", k)
			continue
		}
		if got.Count != want.Count {
			t.Errorf("key %d: batch count %d, row count %d", k, got.Count, want.Count)
		}
		if got.Distinct != want.Distinct {
			t.Errorf("key %d: batch distinct %v, row distinct %v", k, got.Distinct, want.Distinct)
		}
	}
}

// TestGroupByBatchEquivalenceStatic: on static partitioning, the batched
// groupby (heavy slots on and off) is bit-identical to the row-path
// oracle, and the data actually moved as batch chunks.
func TestGroupByBatchEquivalenceStatic(t *testing.T) {
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 11}
	tuples := gen.Generate(30000)
	static := func(cfg *hurricane.ClusterConfig) {
		cfg.Master.DisableSplitting = true
		cfg.Master.DisableHeuristic = true
	}
	row, _ := runGroupBy(t, GroupByApp(4, false, true, 0), tuples, static)
	checkGroupByCounts(t, row, groundTruthCounts(tuples))

	for _, heavy := range []bool{false, true} {
		batch, cluster := runGroupBy(t, GroupByBatchApp(4, false, true, 0, heavy), tuples, static)
		checkGroupByEquiv(t, batch, row)
		var batches float64
		for series, v := range cluster.Observer().Registry().Snapshot() {
			if strings.HasPrefix(series, "hurricane_chunk_batches_total") {
				batches += v
			}
		}
		if batches == 0 {
			t.Fatalf("heavy=%v: no batch chunks recorded — shuffle fell back to rows", heavy)
		}
	}
}

// TestGroupByBatchEquivalenceMitigated is the required equivalence on
// Zipf(1.3) *including mid-run splits/isolations*: the batch data plane
// under live partition-map refinement must still match the row-path
// oracle exactly. Mitigation decisions race producer completion, so the
// run retries until a split or isolation demonstrably happened; every
// attempt must be correct regardless.
func TestGroupByBatchEquivalenceMitigated(t *testing.T) {
	gen := workload.RelationGen{Keys: 64, S: 1.3, Seed: 12}
	tuples := gen.Generate(60000)
	row, _ := runGroupBy(t, GroupByApp(4, true, true, 0), tuples,
		func(cfg *hurricane.ClusterConfig) {
			cfg.Master.DisableSplitting = true
			cfg.Master.DisableHeuristic = true
		})
	checkGroupByCounts(t, row, groundTruthCounts(tuples))

	for attempt := 0; attempt < 5; attempt++ {
		batch, cluster := runGroupBy(t, GroupByBatchApp(4, true, true, 0, true), tuples, nil)
		checkGroupByEquiv(t, batch, row)
		st := cluster.Master().Stats()
		if st.Splits+st.Isolations >= 1 {
			t.Logf("attempt %d: batch plane under mitigation, stats %+v", attempt, st)
			return
		}
		t.Logf("attempt %d: no mitigation triggered (stats %+v), retrying", attempt, st)
	}
	t.Fatal("no split/isolation ever triggered against the batch producer")
}
