package apps

import (
	"time"

	"repro/hurricane"
)

// GroupByBatchApp is GroupByApp on the vectorized data plane: the shuffle
// stage partitions whole column batches (one routing pass and one bulk
// sketch feed per batch) and the aggregate stage consumes batches, with
// the heavy-hitter keys of the edge's warm sketch promoted to dense
// accumulator slots à la Zhang & Ross — the skew the mitigation policies
// act on is the same skew the aggregation exploits. Partial outputs are
// bit-compatible with GroupByApp's, so CollectGroupBy merges results from
// either (or both) and serves as the cross-implementation oracle.
//
// heavySlots selects the skew-exploiting fast path; with it off every key
// takes the hash-map path, which is the heavy-slot ablation's baseline.
func GroupByBatchApp(parts int, spread, noClone bool, recordCostNS int, heavySlots bool) *hurricane.App {
	app := hurricane.NewApp("groupby")
	app.SourceBag(GroupByIn)
	app.AddBag(hurricane.BagSpec{Name: GroupByShuf, Partitions: parts, Spread: spread})
	app.Bag(GroupByOut)

	app.AddTask(hurricane.TaskSpec{
		Name:    "shuffle",
		Inputs:  []string{GroupByIn},
		Outputs: []string{GroupByShuf},
		Run: func(tc *hurricane.TaskCtx) error {
			pw := hurricane.NewPartitionedWriterUint64(tc, 0, tupleCodec,
				func(t joinPair) uint64 { return t.First })
			return hurricane.ForEachBatch(tc, 0, tupleCodec, pw.WriteBatch)
		},
	})

	app.AddTask(hurricane.TaskSpec{
		Name:    "aggregate",
		Inputs:  []string{GroupByShuf},
		Outputs: []string{GroupByOut},
		NoClone: noClone,
		Run: func(tc *hurricane.TaskCtx) error {
			type agg struct {
				n   int64
				hll *hurricane.HLL
			}
			var hs *hurricane.HeavySlots[agg]
			if heavySlots {
				// Warm TopKeys from the edge's merged sketch: consumers
				// are scheduled after the edge seals, at which point the
				// master has republished the final merged producer sketch
				// (or, on a warm-started streaming window, the previous
				// window's memory) — so the heavy hitters are known before
				// the first batch arrives.
				hs = hurricane.NewHeavySlots[agg](
					hurricane.WarmTopKeys64(tc, 0, 16, 0.02))
			}
			groups := make(map[uint64]*agg)
			var owedNS int64
			// Last-key memo: on a skewed stream consecutive records repeat
			// keys often (the repeat probability is the distribution's
			// collision probability, concentrated further by partitioning),
			// so remembering the previous record's accumulator skips the
			// slot probe and map lookup for those runs.
			var lastKey uint64
			var lastAgg *agg
			if err := hurricane.ForEachBatch(tc, 0, tupleCodec, func(ts []joinPair) error {
				for i := range ts {
					t := &ts[i]
					var a *agg
					if s, ok := hs.Slot(t.First); ok {
						a = s
					} else if lastAgg != nil && t.First == lastKey {
						a = lastAgg
					} else if a = groups[t.First]; a == nil {
						a = &agg{}
						groups[t.First] = a
					}
					lastKey, lastAgg = t.First, a
					if a.hll == nil {
						a.hll = hurricane.NewHLL(10)
					}
					a.n++
					a.hll.AddUint64(t.Second)
				}
				if recordCostNS > 0 {
					owedNS += int64(recordCostNS) * int64(len(ts))
					if owedNS >= 500_000 {
						time.Sleep(time.Duration(owedNS))
						owedNS = 0
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if owedNS > 0 {
				time.Sleep(time.Duration(owedNS))
			}
			hs.FlushMetrics(tc, hurricane.EdgeOf(tc.InputName(0)))
			w := hurricane.NewWriter(tc, 0, groupByOutCodec)
			emit := func(k uint64, a *agg) error {
				return w.Write(hurricane.Pair[uint64, hurricane.Pair[int64, []byte]]{
					First:  k,
					Second: hurricane.Pair[int64, []byte]{First: a.n, Second: a.hll.Encode()},
				})
			}
			var emitErr error
			hs.Each(func(k uint64, a *agg) {
				if a.n == 0 || emitErr != nil {
					return // slot seeded but no records reached this worker
				}
				if _, dup := groups[k]; dup {
					return // defensive: map path never holds heavy keys
				}
				emitErr = emit(k, a)
			})
			if emitErr != nil {
				return emitErr
			}
			for k, a := range groups {
				if err := emit(k, a); err != nil {
					return err
				}
			}
			return nil
		},
	})
	return app
}
