package apps

import (
	"context"
	"fmt"

	"repro/hurricane"
	"repro/internal/workload"
)

// HashJoin source and output bag names.
const (
	JoinBagR = "relR" // smaller (build) relation
	JoinBagS = "relS" // larger (probe) relation
)

// JoinPartR names partition p of the build relation.
func JoinPartR(p int) string { return fmt.Sprintf("r.p%d", p) }

// JoinPartS names partition p of the probe relation.
func JoinPartS(p int) string { return fmt.Sprintf("s.p%d", p) }

// JoinOut names the join output bag for partition p.
func JoinOut(p int) string { return fmt.Sprintf("join.p%d", p) }

// TupleCodec encodes relation tuples as (key, payload) pairs — the wire
// form of workload.Tuple, shared by the CLIs and examples. Keys are
// small and varint-friendly; payloads are high-entropy words, where the
// fixed 8-byte layout beats a ~10-byte varint on both size and decode
// cost.
var TupleCodec = hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64FixedOf)

// MatchCodec encodes join matches as (key, (payloadR, payloadS)).
var MatchCodec = hurricane.PairOf(hurricane.Uint64Of,
	hurricane.PairOf(hurricane.Uint64FixedOf, hurricane.Uint64FixedOf))

// Unexported aliases keep the package-internal call sites short.
var (
	tupleCodec = TupleCodec
	matchCodec = MatchCodec
)

// Tuple mirrors workload.Tuple on the wire.
type joinPair = hurricane.Pair[uint64, uint64]

// HashJoinApp builds the paper's hash join (§5.3): the smaller relation R
// is hash-partitioned into parts partitions and loaded in memory by each
// join task (via a scan input, so clones share the full build side); the
// larger relation S is partitioned correspondingly and streamed, with
// matches emitted as output. Skewed keys inflate some partitions' hit
// rates; Hurricane handles them by cloning the affected join tasks —
// clones split the streaming side chunk-by-chunk.
func HashJoinApp(parts int, noClone bool) *hurricane.App {
	app := hurricane.NewApp("hashjoin")
	app.SourceBag(JoinBagR).SourceBag(JoinBagS)
	rParts := make([]string, parts)
	sParts := make([]string, parts)
	for p := 0; p < parts; p++ {
		app.Bag(JoinPartR(p)).Bag(JoinPartS(p)).Bag(JoinOut(p))
		rParts[p] = JoinPartR(p)
		sParts[p] = JoinPartS(p)
	}

	partitionBody := func(outs []*hurricane.Writer[joinPair]) func(joinPair) error {
		return func(t joinPair) error {
			return outs[int(t.First%uint64(parts))].Write(t)
		}
	}
	app.AddTask(hurricane.TaskSpec{
		Name:    "partitionR",
		Inputs:  []string{JoinBagR},
		Outputs: rParts,
		NoClone: noClone,
		Run: func(tc *hurricane.TaskCtx) error {
			ws := make([]*hurricane.Writer[joinPair], parts)
			for p := range ws {
				ws[p] = hurricane.NewWriter(tc, p, tupleCodec)
			}
			return hurricane.ForEach(tc, 0, tupleCodec, partitionBody(ws))
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:    "partitionS",
		Inputs:  []string{JoinBagS},
		Outputs: sParts,
		NoClone: noClone,
		Run: func(tc *hurricane.TaskCtx) error {
			ws := make([]*hurricane.Writer[joinPair], parts)
			for p := range ws {
				ws[p] = hurricane.NewWriter(tc, p, tupleCodec)
			}
			return hurricane.ForEach(tc, 0, tupleCodec, partitionBody(ws))
		},
	})

	for p := 0; p < parts; p++ {
		p := p
		app.AddTask(hurricane.TaskSpec{
			Name:       fmt.Sprintf("join.p%d", p),
			Inputs:     []string{JoinPartS(p)}, // probe side: consumed, split across clones
			ScanInputs: []string{JoinPartR(p)}, // build side: scanned in full by every clone
			Outputs:    []string{JoinOut(p)},
			NoClone:    noClone,
			Run: func(tc *hurricane.TaskCtx) error {
				// Build phase: hash the (partition of the) smaller
				// relation.
				build := make(map[uint64][]uint64)
				if err := hurricane.ForEachScan(tc, 0, tupleCodec, func(t joinPair) error {
					build[t.First] = append(build[t.First], t.Second)
					return nil
				}); err != nil {
					return err
				}
				// Probe phase: stream the larger relation's partition.
				w := hurricane.NewWriter(tc, 0, matchCodec)
				return hurricane.ForEach(tc, 0, tupleCodec, func(t joinPair) error {
					for _, rp := range build[t.First] {
						m := hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]{
							First:  t.First,
							Second: hurricane.Pair[uint64, uint64]{First: rp, Second: t.Second},
						}
						if err := w.Write(m); err != nil {
							return err
						}
					}
					return nil
				})
			},
		})
	}
	return app
}

// Shuffle-path hash join bag names.
const (
	JoinShufBag = "s.shuf"       // partitioned probe-side shuffle edge
	JoinShufOut = "joinshuf.out" // join output (concatenated)
)

// HashJoinShuffleApp is the hash join ported to the skew-aware shuffle
// subsystem. Instead of the static per-partition task fan of HashJoinApp,
// the probe relation S is routed by join key through a partitioned bag:
// one shuffle task feeds P physical partitions (split further at runtime
// when keys are skewed), and each join worker owns one partition, probing
// against the full build relation R scanned as shared state. Join output
// is record-parallel — each probe tuple matches independently — so the
// edge declares Spread and heavy-hitter keys may be fanned across
// workers.
func HashJoinShuffleApp(parts int) *hurricane.App {
	app := hurricane.NewApp("hashjoin-shuffle")
	app.SourceBag(JoinBagR).SourceBag(JoinBagS)
	app.AddBag(hurricane.BagSpec{Name: JoinShufBag, Partitions: parts, Spread: true})
	app.Bag(JoinShufOut)

	app.AddTask(hurricane.TaskSpec{
		Name:    "partitionS",
		Inputs:  []string{JoinBagS},
		Outputs: []string{JoinShufBag},
		Run: func(tc *hurricane.TaskCtx) error {
			pw := hurricane.NewPartitionedWriterUint64(tc, 0, tupleCodec,
				func(t joinPair) uint64 { return t.First })
			return hurricane.ForEach(tc, 0, tupleCodec, pw.Write)
		},
	})
	app.AddTask(hurricane.TaskSpec{
		Name:       "join",
		Inputs:     []string{JoinShufBag}, // one worker per physical partition
		ScanInputs: []string{JoinBagR},    // build side: scanned in full by every worker
		Outputs:    []string{JoinShufOut},
		Run: func(tc *hurricane.TaskCtx) error {
			build := make(map[uint64][]uint64)
			if err := hurricane.ForEachScan(tc, 0, tupleCodec, func(t joinPair) error {
				build[t.First] = append(build[t.First], t.Second)
				return nil
			}); err != nil {
				return err
			}
			w := hurricane.NewWriter(tc, 0, matchCodec)
			return hurricane.ForEach(tc, 0, tupleCodec, func(t joinPair) error {
				for _, rp := range build[t.First] {
					m := hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]{
						First:  t.First,
						Second: hurricane.Pair[uint64, uint64]{First: rp, Second: t.Second},
					}
					if err := w.Write(m); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
	return app
}

// JoinShuffleResultCount totals the emitted matches of the shuffle-path
// join.
func JoinShuffleResultCount(ctx context.Context, store *hurricane.Store) (int64, error) {
	vals, err := hurricane.Collect(ctx, store, JoinShufOut, matchCodec)
	if err != nil {
		return 0, err
	}
	return int64(len(vals)), nil
}

// LoadRelations loads and seals both join relations.
func LoadRelations(ctx context.Context, store *hurricane.Store, r, s []workload.Tuple) error {
	toPairs := func(ts []workload.Tuple) []joinPair {
		out := make([]joinPair, len(ts))
		for i, t := range ts {
			out[i] = joinPair{First: t.Key, Second: t.Payload}
		}
		return out
	}
	if err := hurricane.Load(ctx, store, JoinBagR, tupleCodec, toPairs(r)); err != nil {
		return err
	}
	if err := hurricane.Seal(ctx, store, JoinBagR); err != nil {
		return err
	}
	if err := hurricane.Load(ctx, store, JoinBagS, tupleCodec, toPairs(s)); err != nil {
		return err
	}
	return hurricane.Seal(ctx, store, JoinBagS)
}

// JoinResultCount totals the number of emitted matches across partitions.
func JoinResultCount(ctx context.Context, store *hurricane.Store, parts int) (int64, error) {
	var total int64
	for p := 0; p < parts; p++ {
		vals, err := hurricane.Collect(ctx, store, JoinOut(p), matchCodec)
		if err != nil {
			return 0, err
		}
		total += int64(len(vals))
	}
	return total, nil
}
