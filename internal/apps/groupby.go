package apps

import (
	"context"
	"fmt"
	"time"

	"repro/hurricane"
	"repro/internal/workload"
)

// GroupBy bag names.
const (
	GroupByIn   = "gb.in"   // source tuples (key, payload)
	GroupByShuf = "gb.shuf" // partitioned shuffle edge
	GroupByOut  = "gb.out"  // per-key partial aggregates
)

// groupByOutCodec encodes (key, (count, encoded-HLL)) partial aggregates.
var groupByOutCodec = hurricane.PairOf(hurricane.Uint64Of,
	hurricane.PairOf(hurricane.Int64Of, hurricane.BytesOf))

// GroupByApp builds a skewed keyed aggregation (the clicklog-sessionization
// shape) on the skew-aware shuffle: a shuffle task routes tuples by key
// onto a partitioned bag, and per-partition aggregate workers count
// records and estimate distinct payloads per key. All per-key results are
// *mergeable partials* (counts add, HLL registers max), so the engine is
// free to spread a heavy-hitter key's records across several consumers
// (BagSpec.Spread) — the paper's §2.3 requirement that concurrent workers'
// partial results support merging, applied to partitions instead of
// clones.
// noClone disables cloning of the aggregate stage only: that is the
// classic static-partitioning configuration (one reducer per partition),
// the baseline skew-aware splitting is measured against.
//
// recordCostNS simulates per-record aggregation cost: the worker sleeps
// the accumulated cost in coarse batches. This models aggregations
// dominated by per-record latency (external lookups, remote state,
// parsing pipelines) and makes end-to-end wall clock scale with how
// evenly records spread across consumer slots — exactly what partitioning
// controls — rather than with the host's core count. 0 disables it; the
// skewed-shuffle benchmark uses it so consumer load dominates runtime.
func GroupByApp(parts int, spread, noClone bool, recordCostNS int) *hurricane.App {
	return GroupByAppCosts(parts, spread, noClone, 0, recordCostNS)
}

// GroupByAppCosts is GroupByApp with separate simulated per-record costs
// for the shuffle (producer) and aggregate (consumer) stages. A non-zero
// shuffle cost makes the producers CPU-bound, so they trip overload
// detection and clone — which is what the multi-job co-run benchmark
// needs from its badly behaved neighbor.
func GroupByAppCosts(parts int, spread, noClone bool, shuffleCostNS, recordCostNS int) *hurricane.App {
	app := hurricane.NewApp("groupby")
	app.SourceBag(GroupByIn)
	app.AddBag(hurricane.BagSpec{Name: GroupByShuf, Partitions: parts, Spread: spread})
	app.Bag(GroupByOut)

	app.AddTask(hurricane.TaskSpec{
		Name:    "shuffle",
		Inputs:  []string{GroupByIn},
		Outputs: []string{GroupByShuf},
		Run: func(tc *hurricane.TaskCtx) error {
			pw := hurricane.NewPartitionedWriter(tc, 0, tupleCodec,
				hurricane.Uint64Key(func(t joinPair) uint64 { return t.First }))
			var owedNS int64
			return hurricane.ForEach(tc, 0, tupleCodec, func(t joinPair) error {
				if shuffleCostNS > 0 {
					owedNS += int64(shuffleCostNS)
					if owedNS >= 500_000 {
						time.Sleep(time.Duration(owedNS))
						owedNS = 0
					}
				}
				return pw.Write(t)
			})
		},
	})

	app.AddTask(hurricane.TaskSpec{
		Name:    "aggregate",
		Inputs:  []string{GroupByShuf},
		Outputs: []string{GroupByOut},
		NoClone: noClone,
		Run: func(tc *hurricane.TaskCtx) error {
			type agg struct {
				n   int64
				hll *hurricane.HLL
			}
			groups := make(map[uint64]*agg)
			var pbuf [8]byte
			var owedNS int64
			if err := hurricane.ForEach(tc, 0, tupleCodec, func(t joinPair) error {
				a := groups[t.First]
				if a == nil {
					a = &agg{hll: hurricane.NewHLL(10)}
					groups[t.First] = a
				}
				a.n++
				for i := 0; i < 8; i++ {
					pbuf[i] = byte(t.Second >> (8 * i))
				}
				a.hll.Add(pbuf[:])
				if recordCostNS > 0 {
					// Pay the simulated per-record cost in ≥0.5ms batches
					// (fine-grained sleeps undershoot on coarse timers).
					owedNS += int64(recordCostNS)
					if owedNS >= 500_000 {
						time.Sleep(time.Duration(owedNS))
						owedNS = 0
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if owedNS > 0 {
				time.Sleep(time.Duration(owedNS))
			}
			w := hurricane.NewWriter(tc, 0, groupByOutCodec)
			for k, a := range groups {
				rec := hurricane.Pair[uint64, hurricane.Pair[int64, []byte]]{
					First:  k,
					Second: hurricane.Pair[int64, []byte]{First: a.n, Second: a.hll.Encode()},
				}
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			return nil
		},
	})
	return app
}

// LoadGroupBy loads and seals the groupby source relation.
func LoadGroupBy(ctx context.Context, store *hurricane.Store, tuples []workload.Tuple) error {
	return LoadGroupByInto(ctx, store, GroupByIn, tuples)
}

// LoadGroupByInto loads and seals the groupby source relation under an
// explicit (e.g. job-namespaced) bag name.
func LoadGroupByInto(ctx context.Context, store *hurricane.Store, bagName string, tuples []workload.Tuple) error {
	pairs := make([]joinPair, len(tuples))
	for i, t := range tuples {
		pairs[i] = joinPair{First: t.Key, Second: t.Payload}
	}
	if err := hurricane.Load(ctx, store, bagName, tupleCodec, pairs); err != nil {
		return err
	}
	return hurricane.Seal(ctx, store, bagName)
}

// LoadGroupByBatch is LoadGroupBy on the vectorized data plane: the
// source relation lands as batch-encoded columnar chunks, so the shuffle
// stage's ForEachBatch decodes whole column vectors instead of re-framing
// row records.
func LoadGroupByBatch(ctx context.Context, store *hurricane.Store, tuples []workload.Tuple) error {
	pairs := make([]joinPair, len(tuples))
	for i, t := range tuples {
		pairs[i] = joinPair{First: t.Key, Second: t.Payload}
	}
	if err := hurricane.LoadBatch(ctx, store, GroupByIn, tupleCodec, pairs); err != nil {
		return err
	}
	return hurricane.Seal(ctx, store, GroupByIn)
}

// GroupByResult is the final aggregate for one key.
type GroupByResult struct {
	Count    int64
	Distinct float64 // HLL estimate of distinct payloads
}

// CollectGroupBy reads the per-worker partial aggregates and merges them
// into final per-key results: counts add exactly, HLL partials merge
// register-wise. This is where records of a spread heavy-hitter key (or a
// key whose partition was re-hash split mid-stream) reconverge.
func CollectGroupBy(ctx context.Context, store *hurricane.Store) (map[uint64]GroupByResult, error) {
	return CollectGroupByFrom(ctx, store, GroupByOut)
}

// CollectGroupByFrom reads and merges the partial aggregates from an
// explicit (e.g. job-namespaced) output bag name.
func CollectGroupByFrom(ctx context.Context, store *hurricane.Store, bagName string) (map[uint64]GroupByResult, error) {
	recs, err := hurricane.Collect(ctx, store, bagName, groupByOutCodec)
	if err != nil {
		return nil, err
	}
	counts := make(map[uint64]int64)
	hlls := make(map[uint64]*hurricane.HLL)
	for _, r := range recs {
		counts[r.First] += r.Second.First
		h, err := hurricane.DecodeHLL(r.Second.Second)
		if err != nil {
			return nil, fmt.Errorf("apps: groupby partial for key %d: %w", r.First, err)
		}
		if prev := hlls[r.First]; prev == nil {
			hlls[r.First] = h
		} else if err := prev.Merge(h); err != nil {
			return nil, err
		}
	}
	out := make(map[uint64]GroupByResult, len(counts))
	for k, n := range counts {
		out[k] = GroupByResult{Count: n, Distinct: hlls[k].Estimate()}
	}
	return out, nil
}
