package apps

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

// keysInPartition finds `count` distinct uint64 keys that the default hash
// partitioner routes to base partition `target` of `parts` — the
// deterministic way to pile many medium keys onto one partition.
func keysInPartition(parts, target, count int) []uint64 {
	part := shuffle.HashPartitioner{}
	var out []uint64
	var b [8]byte
	for k := uint64(1); len(out) < count; k++ {
		binary.LittleEndian.PutUint64(b[:], k)
		if part.Partition(b[:], parts) == target {
			out = append(out, k)
		}
	}
	return out
}

// groundTruthCounts computes per-key record counts directly.
func groundTruthCounts(tuples []workload.Tuple) map[uint64]int64 {
	want := make(map[uint64]int64)
	for _, t := range tuples {
		want[t.Key]++
	}
	return want
}

func checkGroupByCounts(t *testing.T, got map[uint64]GroupByResult, want map[uint64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d keys, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k].Count != n {
			t.Errorf("key %d: count %d, want %d", k, got[k].Count, n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("spurious key %d in output", k)
		}
	}
}

// shuffleTestCluster tunes the embedded cluster for fast, deterministic
// split decisions: tight master ticks, low split thresholds, and a little
// transport latency so producers are still running when the master reacts.
func shuffleTestCluster(t *testing.T, mutate func(*hurricane.ClusterConfig)) *hurricane.Cluster {
	t.Helper()
	return testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.TransportLatency = 100 * time.Microsecond
		cfg.Master.SplitInterval = time.Millisecond
		cfg.Master.SplitMinRecords = 500
		cfg.Master.SplitImbalance = 1.5
		cfg.Master.SplitFan = 4
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// TestGroupByCorrectnessStatic: with splitting disabled, the partitioned
// groupby equals the directly computed baseline for uniform and skewed
// inputs.
func TestGroupByCorrectnessStatic(t *testing.T) {
	for _, s := range []float64{0, 1.2} {
		t.Run(skewName(s), func(t *testing.T) {
			ctx := testCtx(t)
			cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
				cfg.Master.DisableSplitting = true
			})
			gen := workload.RelationGen{Keys: 64, S: s, Seed: 3}
			tuples := gen.Generate(20000)
			if err := LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
				t.Fatal(err)
			}
			if err := cluster.Run(ctx, GroupByApp(4, false, false, 0)); err != nil {
				t.Fatal(err)
			}
			got, err := CollectGroupBy(ctx, cluster.Store())
			if err != nil {
				t.Fatal(err)
			}
			checkGroupByCounts(t, got, groundTruthCounts(tuples))
			if st := cluster.Master().Stats(); st.Splits != 0 || st.Isolations != 0 {
				t.Fatalf("splitting disabled but stats show %+v", st)
			}
		})
	}
}

// TestGroupByRuntimeSplit is the subsystem's core guarantee: many medium
// keys are piled onto one base partition, the master re-hash splits the
// hot partition at runtime, and the final output still equals the
// unpartitioned baseline — no record lost or duplicated by the mid-stream
// routing change.
func TestGroupByRuntimeSplit(t *testing.T) {
	const parts = 4
	// 32 distinct keys, all hashing to partition 1, plus a thin uniform
	// background over the other partitions. No single key dominates, so
	// isolation cannot trigger; only a re-hash split can fix partition 1.
	hotKeys := keysInPartition(parts, 1, 32)
	var tuples []workload.Tuple
	for i := 0; i < 60000; i++ {
		tuples = append(tuples, workload.Tuple{
			Key: hotKeys[i%len(hotKeys)], Payload: uint64(i),
		})
	}
	bg := keysInPartition(parts, 0, 4)
	for i := 0; i < 2000; i++ {
		tuples = append(tuples, workload.Tuple{Key: bg[i%len(bg)], Payload: uint64(i)})
	}
	want := groundTruthCounts(tuples)

	// The split decision races against producer completion, so allow a
	// few attempts; each run must be *correct*, and at least one must
	// demonstrate the runtime split.
	for attempt := 0; attempt < 5; attempt++ {
		ctx := testCtx(t)
		cluster := shuffleTestCluster(t, nil)
		if err := LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
			t.Fatal(err)
		}
		app := GroupByApp(parts, false, false, 0)
		spec := app.BagSpecFor(GroupByShuf)
		spec.SketchEvery, spec.PollEvery = 256, 128
		if err := cluster.Run(ctx, app); err != nil {
			t.Fatal(err)
		}
		got, err := CollectGroupBy(ctx, cluster.Store())
		if err != nil {
			t.Fatal(err)
		}
		checkGroupByCounts(t, got, want)
		st := cluster.Master().Stats()
		if st.Splits >= 1 {
			t.Logf("attempt %d: runtime split demonstrated, stats %+v", attempt, st)
			return
		}
		t.Logf("attempt %d: no split (stats %+v), retrying", attempt, st)
	}
	t.Fatal("hot partition was never split at runtime")
}

// TestGroupByHeavyKeyIsolation: one key dominates the stream; on a Spread
// edge the master isolates it into dedicated spread bags, several
// consumers aggregate its records concurrently, and the merged partials
// still give the exact count.
func TestGroupByHeavyKeyIsolation(t *testing.T) {
	const parts = 4
	var tuples []workload.Tuple
	for i := 0; i < 50000; i++ {
		tuples = append(tuples, workload.Tuple{Key: 7, Payload: uint64(i % 1000)})
	}
	for i := 0; i < 20000; i++ {
		tuples = append(tuples, workload.Tuple{Key: uint64(100 + i%60), Payload: uint64(i)})
	}
	want := groundTruthCounts(tuples)

	for attempt := 0; attempt < 5; attempt++ {
		ctx := testCtx(t)
		cluster := shuffleTestCluster(t, nil)
		if err := LoadGroupBy(ctx, cluster.Store(), tuples); err != nil {
			t.Fatal(err)
		}
		app := GroupByApp(parts, true, false, 0) // Spread: per-key partials merge downstream
		spec := app.BagSpecFor(GroupByShuf)
		spec.SketchEvery, spec.PollEvery = 256, 128
		if err := cluster.Run(ctx, app); err != nil {
			t.Fatal(err)
		}
		got, err := CollectGroupBy(ctx, cluster.Store())
		if err != nil {
			t.Fatal(err)
		}
		checkGroupByCounts(t, got, want)
		// The heavy key's distinct-payload estimate must also survive the
		// spread (HLL partials merge register-wise).
		if d := got[7].Distinct; d < 800 || d > 1200 {
			t.Errorf("heavy key distinct estimate %.0f, want ≈1000", d)
		}
		st := cluster.Master().Stats()
		if st.Isolations >= 1 {
			t.Logf("attempt %d: heavy key isolated, stats %+v", attempt, st)
			return
		}
		t.Logf("attempt %d: no isolation (stats %+v), retrying", attempt, st)
	}
	t.Fatal("heavy-hitter key was never isolated")
}

// TestHashJoinShuffleCorrectness: the shuffle-path hash join matches the
// ground-truth join cardinality under key skew, with splitting active.
func TestHashJoinShuffleCorrectness(t *testing.T) {
	ctx := testCtx(t)
	cluster := shuffleTestCluster(t, nil)
	rg := workload.RelationGen{Keys: 200, S: 0, Seed: 1}
	sg := workload.RelationGen{Keys: 200, S: 1.2, Seed: 2}
	r := rg.Generate(2000)
	s := sg.Generate(30000)
	if err := LoadRelations(ctx, cluster.Store(), r, s); err != nil {
		t.Fatal(err)
	}
	app := HashJoinShuffleApp(4)
	spec := app.BagSpecFor(JoinShufBag)
	spec.SketchEvery, spec.PollEvery = 256, 128
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := JoinShuffleResultCount(ctx, cluster.Store())
	if err != nil {
		t.Fatal(err)
	}
	if want := workload.JoinCount(r, s); got != want {
		t.Fatalf("join produced %d matches, want %d (stats %+v)",
			got, want, cluster.Master().Stats())
	}
	t.Logf("stats %+v", cluster.Master().Stats())
}
