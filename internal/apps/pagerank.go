package apps

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/hurricane"
	"repro/internal/workload"
)

// PageRank bag names.
const (
	PRBagEdges = "edges" // source edge list
	PRDamping  = 0.85
)

func prEdgesBag(iter int) string { return fmt.Sprintf("edges.%d", iter) }
func prRanksBag(iter int) string { return fmt.Sprintf("ranks.%d", iter) }
func prContribBag(i int) string  { return fmt.Sprintf("contrib.%d", i) }
func prSumsBag(iter int) string  { return fmt.Sprintf("sums.%d", iter) }

// PRResultBag names the final rank vector after iters iterations.
func PRResultBag(iters int) string { return prRanksBag(iters + 1) }

var edgeCodec = hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of)

// rank records: (vertex, (rank, outDegree))
var rankCodec = hurricane.PairOf(hurricane.Uint64Of,
	hurricane.PairOf(hurricane.Float64Of, hurricane.Int64Of))

// contribution / sum records: (vertex, partialSum)
var contribCodec = hurricane.PairOf(hurricane.Uint64Of, hurricane.Float64Of)

type rankRec = hurricane.Pair[uint64, hurricane.Pair[float64, int64]]
type contribRec = hurricane.Pair[uint64, float64]
type edgeRec = hurricane.Pair[uint64, uint64]

// mergeVertexSum reconciles clone partials of the gather stage: partial
// per-vertex sums are added together.
func mergeVertexSum() hurricane.TaskFunc {
	return func(tc *hurricane.TaskCtx) error {
		acc := make(map[uint64]float64)
		for i := 0; i < tc.NumInputs(); i++ {
			if err := hurricane.ForEach(tc, i, contribCodec, func(c contribRec) error {
				acc[c.First] += c.Second
				return nil
			}); err != nil {
				return err
			}
		}
		keys := make([]uint64, 0, len(acc))
		for k := range acc {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w := hurricane.NewWriter(tc, 0, contribCodec)
		for _, k := range keys {
			if err := w.Write(contribRec{First: k, Second: acc[k]}); err != nil {
				return err
			}
		}
		return nil
	}
}

// PageRankApp builds the paper's multi-stage PageRank (§5.3): an init
// stage computes out-degrees and uniform initial ranks, then each of iters
// iterations scatters rank/degree along edges and gathers contributions
// per destination vertex. The scatter stage consumes the edge list
// (cloneable chunk-by-chunk — this is where high-degree-vertex skew bites)
// while scanning the compact rank vector; it re-emits the edges for the
// next iteration. The gather stage is cloneable with a per-vertex-sum
// merge. numVertices is the known vertex universe (2^scale for R-MAT).
func PageRankApp(numVertices int64, iters int, noClone bool) *hurricane.App {
	app := hurricane.NewApp("pagerank")
	app.SourceBag(PRBagEdges)
	app.Bag(prEdgesBag(1)).Bag(prRanksBag(1))
	for i := 1; i <= iters; i++ {
		app.Bag(prContribBag(i)).Bag(prSumsBag(i))
		app.Bag(prRanksBag(i + 1))
		if i < iters {
			app.Bag(prEdgesBag(i + 1))
		}
	}

	// Init: single pass over the edges to compute out-degrees; emits the
	// initial uniform rank vector and the iteration-1 edge copy. Degree
	// aggregation is global state, so this task is not cloneable.
	app.AddTask(hurricane.TaskSpec{
		Name:    "init",
		Inputs:  []string{PRBagEdges},
		Outputs: []string{prEdgesBag(1), prRanksBag(1)},
		NoClone: true,
		Run: func(tc *hurricane.TaskCtx) error {
			deg := make(map[uint64]int64)
			ew := hurricane.NewWriter(tc, 0, edgeCodec)
			if err := hurricane.ForEach(tc, 0, edgeCodec, func(e edgeRec) error {
				deg[e.First]++
				return ew.Write(e)
			}); err != nil {
				return err
			}
			rw := hurricane.NewWriter(tc, 1, rankCodec)
			r0 := 1.0 / float64(numVertices)
			for v := int64(0); v < numVertices; v++ {
				rec := rankRec{First: uint64(v)}
				rec.Second.First = r0
				rec.Second.Second = deg[uint64(v)]
				if err := rw.Write(rec); err != nil {
					return err
				}
			}
			return nil
		},
	})

	for i := 1; i <= iters; i++ {
		i := i
		// Scatter: stream edges (consumed; clones split the edge list),
		// looking up src rank/degree in the scanned rank vector.
		outputs := []string{prContribBag(i)}
		if i < iters {
			outputs = append(outputs, prEdgesBag(i+1))
		}
		app.AddTask(hurricane.TaskSpec{
			Name:       fmt.Sprintf("scatter.%d", i),
			Inputs:     []string{prEdgesBag(i)},
			ScanInputs: []string{prRanksBag(i)},
			Outputs:    outputs,
			NoClone:    noClone,
			Run: func(tc *hurricane.TaskCtx) error {
				ranks := make(map[uint64]float64)
				if err := hurricane.ForEachScan(tc, 0, rankCodec, func(r rankRec) error {
					if r.Second.Second > 0 {
						ranks[r.First] = r.Second.First / float64(r.Second.Second)
					}
					return nil
				}); err != nil {
					return err
				}
				cw := hurricane.NewWriter(tc, 0, contribCodec)
				var ew *hurricane.Writer[edgeRec]
				if i < iters {
					ew = hurricane.NewWriter(tc, 1, edgeCodec)
				}
				return hurricane.ForEach(tc, 0, edgeCodec, func(e edgeRec) error {
					if c, ok := ranks[e.First]; ok {
						if err := cw.Write(contribRec{First: e.Second, Second: c}); err != nil {
							return err
						}
					}
					if ew != nil {
						return ew.Write(e)
					}
					return nil
				})
			},
		})
		// Gather: sum contributions per destination vertex. Cloneable
		// with a per-vertex-sum merge.
		app.AddTask(hurricane.TaskSpec{
			Name:    fmt.Sprintf("gather.%d", i),
			Inputs:  []string{prContribBag(i)},
			Outputs: []string{prSumsBag(i)},
			Merge:   mergeVertexSum(),
			NoClone: noClone,
			Run: func(tc *hurricane.TaskCtx) error {
				acc := make(map[uint64]float64)
				if err := hurricane.ForEach(tc, 0, contribCodec, func(c contribRec) error {
					acc[c.First] += c.Second
					return nil
				}); err != nil {
					return err
				}
				keys := make([]uint64, 0, len(acc))
				for k := range acc {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				w := hurricane.NewWriter(tc, 0, contribCodec)
				for _, k := range keys {
					if err := w.Write(contribRec{First: k, Second: acc[k]}); err != nil {
						return err
					}
				}
				return nil
			},
		})
		// Apply: compute the new rank vector with damping; carries the
		// degree column forward. Needs the full vertex universe (to emit
		// ranks for vertices with no in-edges), so it scans the previous
		// rank vector and is not cloneable.
		app.AddTask(hurricane.TaskSpec{
			Name:       fmt.Sprintf("apply.%d", i),
			Inputs:     []string{prSumsBag(i)},
			ScanInputs: []string{prRanksBag(i)},
			Outputs:    []string{prRanksBag(i + 1)},
			NoClone:    true,
			Run: func(tc *hurricane.TaskCtx) error {
				sums := make(map[uint64]float64)
				if err := hurricane.ForEach(tc, 0, contribCodec, func(c contribRec) error {
					sums[c.First] += c.Second
					return nil
				}); err != nil {
					return err
				}
				base := (1.0 - PRDamping) / float64(numVertices)
				w := hurricane.NewWriter(tc, 0, rankCodec)
				return hurricane.ForEachScan(tc, 0, rankCodec, func(r rankRec) error {
					rec := rankRec{First: r.First}
					rec.Second.First = base + PRDamping*sums[r.First]
					rec.Second.Second = r.Second.Second
					return w.Write(rec)
				})
			},
		})
	}
	return app
}

// LoadEdges loads and seals the PageRank edge list.
func LoadEdges(ctx context.Context, store *hurricane.Store, edges []workload.Edge) error {
	recs := make([]edgeRec, len(edges))
	for i, e := range edges {
		recs[i] = edgeRec{First: uint64(e.Src), Second: uint64(e.Dst)}
	}
	if err := hurricane.Load(ctx, store, PRBagEdges, edgeCodec, recs); err != nil {
		return err
	}
	return hurricane.Seal(ctx, store, PRBagEdges)
}

// PageRanks reads back the final rank vector as a dense slice.
func PageRanks(ctx context.Context, store *hurricane.Store, numVertices int64, iters int) ([]float64, error) {
	recs, err := hurricane.Collect(ctx, store, PRResultBag(iters), rankCodec)
	if err != nil {
		return nil, err
	}
	out := make([]float64, numVertices)
	for _, r := range recs {
		if int64(r.First) < numVertices {
			out[r.First] = r.Second.First
		}
	}
	return out, nil
}

// SerialPageRank computes the oracle rank vector for verification.
func SerialPageRank(edges []workload.Edge, numVertices int64, iters int) []float64 {
	deg := make([]int64, numVertices)
	for _, e := range edges {
		deg[e.Src]++
	}
	ranks := make([]float64, numVertices)
	for i := range ranks {
		ranks[i] = 1.0 / float64(numVertices)
	}
	base := (1.0 - PRDamping) / float64(numVertices)
	for it := 0; it < iters; it++ {
		sums := make([]float64, numVertices)
		for _, e := range edges {
			if deg[e.Src] > 0 {
				sums[e.Dst] += ranks[e.Src] / float64(deg[e.Src])
			}
		}
		for v := range ranks {
			ranks[v] = base + PRDamping*sums[v]
		}
	}
	return ranks
}

// MaxAbsDiff returns the L∞ distance between two rank vectors.
func MaxAbsDiff(a, b []float64) float64 {
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
