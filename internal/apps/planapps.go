package apps

import (
	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/workload"
)

// The query-planner reimplementations of the hand-wired workloads. The
// hand-wired apps (GroupByApp, HashJoinShuffleApp) stay as the oracles:
// tests run both forms on identical input and assert identical results,
// so the planner is continuously verified against the low-level wiring
// it replaces. New scenarios should start here, not at the stage API —
// see the README's query-planner section.

// gbAgg is the groupby accumulator: a record count and an HLL
// distinct-payload estimator.
type gbAgg struct {
	N   int64
	HLL *hurricane.HLL
}

// gbAggCodec encodes a *gbAgg accumulator byte-compatibly with the
// hand-wired groupby's (count, encoded-HLL) pair, so the plan's sink bag
// is readable by the same CollectGroupByFrom oracle collector.
type gbAggCodec struct{}

func (gbAggCodec) Encode(buf []byte, v *gbAgg) []byte {
	buf = hurricane.Int64Of.Encode(buf, v.N)
	return hurricane.BytesOf.Encode(buf, v.HLL.Encode())
}

func (gbAggCodec) Decode(record []byte) (*gbAgg, int, error) {
	n, used, err := hurricane.Int64Of.Decode(record)
	if err != nil {
		return nil, 0, err
	}
	raw, m, err := hurricane.BytesOf.Decode(record[used:])
	if err != nil {
		return nil, 0, err
	}
	hll, err := hurricane.DecodeHLL(raw)
	if err != nil {
		return nil, 0, err
	}
	return &gbAgg{N: n, HLL: hll}, used + m, nil
}

// payloadBytes encodes a tuple payload for HLL observation, matching the
// hand-wired aggregate's byte layout.
func payloadBytes(p uint64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(p >> (8 * i))
	}
	return b[:]
}

// GroupByPlan is GroupByApp as a declarative query: scan the tuples,
// aggregate per key (count + HLL distinct payloads) behind a planner-
// inserted shuffle edge, sink the mergeable partials into GroupByOut.
// Compare the user-facing surface with groupby.go: the bag wiring,
// PartitionedWriter glue, and partial-emission loop are all planner
// output now.
func GroupByPlan() *q.Plan {
	p := q.New("groupbyq")
	src := q.Scan(p, GroupByIn, tupleCodec)
	q.AggregateByKey(src,
		func(t joinPair) uint64 { return t.First },
		gbAggCodec{},
		func() *gbAgg { return &gbAgg{HLL: hurricane.NewHLL(10)} },
		func(a *gbAgg, t joinPair) *gbAgg {
			a.N++
			a.HLL.Add(payloadBytes(t.Second))
			return a
		},
		func(a, b *gbAgg) *gbAgg {
			a.N += b.N
			if err := a.HLL.Merge(b.HLL); err != nil {
				// Precisions are fixed at construction; a mismatch is a
				// programming error, not a data condition.
				panic(err)
			}
			return a
		},
	).Sink(GroupByOut)
	return p
}

// JoinWarmStats builds the compile-time statistics for a join of the
// standard relations: the build side's size (broadcast decision) and an
// exact key sketch of the probe side (skewed-join decision and seed
// isolations) — what a previous run's merged edge sketch would have
// recorded. Shared by the plan benchmark, the hurricane-run query job,
// and the examples.
func JoinWarmStats(r, s []workload.Tuple) *q.Stats {
	sb := hurricane.NewStatsBuilder()
	for _, t := range s {
		sb.Add(q.KeyBytes(t.Key), 1)
	}
	stats := q.NewStats()
	stats.Records[JoinBagR] = int64(len(r))
	stats.Edges[JoinBagS] = sb.Stats()
	return stats
}

// HashJoinPlan is HashJoinShuffleApp as a declarative query: join the
// probe relation S against the build relation R on the tuple key,
// emitting the same (key, (payloadR, payloadS)) matches into JoinShufOut.
// The physical strategy — repartition, broadcast, or skewed — is the
// planner's call (or the caller's, via q.WithStrategy); the hand-wired
// app pins what the planner would call a repartition join with Spread.
func HashJoinPlan(opts ...q.JoinOption) *q.Plan {
	p := q.New("hashjoinq")
	build := q.Scan(p, JoinBagR, tupleCodec)
	probe := q.Scan(p, JoinBagS, tupleCodec)
	q.Join(build, probe,
		func(t joinPair) uint64 { return t.First },
		func(t joinPair) uint64 { return t.First },
		matchCodec,
		func(b, s joinPair, emit func(hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]) error) error {
			return emit(hurricane.Pair[uint64, hurricane.Pair[uint64, uint64]]{
				First:  s.First,
				Second: hurricane.Pair[uint64, uint64]{First: b.Second, Second: s.Second},
			})
		},
		opts...,
	).Sink(JoinShufOut)
	return p
}
