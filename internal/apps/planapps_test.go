package apps

import (
	"testing"

	"repro/hurricane"
	"repro/hurricane/q"
	"repro/internal/workload"
)

// TestGroupByPlanMatchesHandWiredOracle runs the planner-built groupby
// and the hand-wired GroupByApp on identical Zipf input and asserts
// identical results — exact counts and identical HLL distinct estimates
// (HLL merging is order-independent, so both forms must land on the same
// registers).
func TestGroupByPlanMatchesHandWiredOracle(t *testing.T) {
	ctx := testCtx(t)
	gen := workload.RelationGen{Keys: 48, S: 1.1, Seed: 17}
	tuples := gen.Generate(15000)
	want := groundTruthCounts(tuples)

	// Hand-wired oracle run.
	oracleCluster := testCluster(t, nil)
	if err := LoadGroupBy(ctx, oracleCluster.Store(), tuples); err != nil {
		t.Fatal(err)
	}
	if err := oracleCluster.Run(ctx, GroupByApp(4, true, false, 0)); err != nil {
		t.Fatal(err)
	}
	oracle, err := CollectGroupBy(ctx, oracleCluster.Store())
	if err != nil {
		t.Fatal(err)
	}
	checkGroupByCounts(t, oracle, want)

	// Planner run on a fresh cluster, same input.
	planCluster := testCluster(t, nil)
	c, err := GroupByPlan().Compile(q.Options{Parts: 4, SketchEvery: 256, PollEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadGroupBy(ctx, planCluster.Store(), tuples); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(ctx, planCluster); err != nil {
		t.Fatal(err)
	}
	got, err := CollectGroupByFrom(ctx, planCluster.Store(), c.SinkBag(GroupByOut))
	if err != nil {
		t.Fatal(err)
	}
	checkGroupByCounts(t, got, want)
	for k, o := range oracle {
		if got[k].Distinct != o.Distinct {
			t.Errorf("key %d: plan distinct %f, oracle %f", k, got[k].Distinct, o.Distinct)
		}
	}
}

// TestHashJoinPlanMatchesHandWiredOracle runs the planner-built join and
// the hand-wired shuffle join on identical skewed relations and asserts
// both produce exactly the ground-truth number of matches.
func TestHashJoinPlanMatchesHandWiredOracle(t *testing.T) {
	ctx := testCtx(t)
	rGen := workload.RelationGen{Keys: 512, S: 0, Seed: 23}
	sGen := workload.RelationGen{Keys: 512, S: 1.2, Seed: 29}
	r := rGen.Generate(3000)
	s := sGen.Generate(20000)
	want := workload.JoinCount(r, s)

	oracleCluster := testCluster(t, nil)
	if err := LoadRelations(ctx, oracleCluster.Store(), r, s); err != nil {
		t.Fatal(err)
	}
	if err := oracleCluster.Run(ctx, HashJoinShuffleApp(4)); err != nil {
		t.Fatal(err)
	}
	oracle, err := JoinShuffleResultCount(ctx, oracleCluster.Store())
	if err != nil {
		t.Fatal(err)
	}
	if oracle != want {
		t.Fatalf("hand-wired join produced %d matches, want %d", oracle, want)
	}

	planCluster := testCluster(t, nil)
	// Warm statistics from the probe relation put the planner on the
	// skewed path — the adaptive counterpart of the hand-wired app.
	sb := hurricane.NewStatsBuilder()
	for _, tup := range s {
		sb.Add(q.KeyBytes(tup.Key), 1)
	}
	stats := q.NewStats()
	stats.Records[JoinBagR] = int64(len(r) + 10000) // known, too large to broadcast
	stats.Edges[JoinBagS] = sb.Stats()
	c, err := HashJoinPlan().Compile(q.Options{
		Parts: 4, SketchEvery: 256, PollEvery: 128,
		BroadcastMaxRecords: 1000,
		Stats:               stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Joins[0].Strategy; got != q.JoinSkewed {
		t.Fatalf("planner chose %v, want skewed:\n%s", got, c.Explain())
	}
	if err := LoadRelations(ctx, planCluster.Store(), r, s); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(ctx, planCluster); err != nil {
		t.Fatal(err)
	}
	got, err := JoinShuffleResultCount(ctx, planCluster.Store())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("plan join produced %d matches, want %d (oracle %d)", got, want, oracle)
	}
}
