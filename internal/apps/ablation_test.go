package apps

import (
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/workload"
)

// TestClickLogNoCloneCorrectness: the HurricaneNC configuration (Fig. 6)
// still computes exact results — disabling cloning affects performance,
// never correctness.
func TestClickLogNoCloneCorrectness(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.Master.DisableCloning = true
	})
	const regions, hostBits = 8, 10
	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 21}
	ips := gen.Generate(30000)
	want := workload.DistinctPerRegion(ips, regions)

	if err := LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, ClickLogApp(regions, hostBits, true)); err != nil {
		t.Fatal(err)
	}
	got, err := ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("region %d: %d != %d", r, got[r], want[r])
		}
	}
	if c := cluster.Master().Stats().Clones; c != 0 {
		t.Errorf("HurricaneNC cloned %d times", c)
	}
}

// TestClickLogWithReplication: the full application over replicated
// storage produces exact results (every insert is mirrored; removes sync
// read pointers).
func TestClickLogWithReplication(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.Replication = 2
	})
	const regions, hostBits = 8, 10
	gen := workload.ClickLogGen{S: 0.8, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 33}
	ips := gen.Generate(30000)
	want := workload.DistinctPerRegion(ips, regions)

	if err := LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, ClickLogApp(regions, hostBits, false)); err != nil {
		t.Fatal(err)
	}
	got, err := ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("region %d: %d != %d", r, got[r], want[r])
		}
	}
}

// TestPageRankMoreIterations: longer multi-stage graphs (5 iterations =
// 16 sequential stages) stay oracle-exact.
func TestPageRankMoreIterations(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, nil)
	const scale, iters = 6, 5
	gen := workload.RMATGen{Scale: scale, EdgeFactor: 8, Seed: 17}
	edges := gen.Generate()
	n := gen.NumVertices()
	want := SerialPageRank(edges, n, iters)

	if err := LoadEdges(ctx, cluster.Store(), edges); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, PageRankApp(n, iters, false)); err != nil {
		t.Fatal(err)
	}
	got, err := PageRanks(ctx, cluster.Store(), n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("max deviation %g after %d iterations", d, iters)
	}
}

// TestClickLogDiskBackend runs ClickLog with disk-backed bags: same
// results, data on real files.
func TestClickLogDiskBackend(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.DiskDir = dir
	})
	const regions, hostBits = 4, 10
	gen := workload.ClickLogGen{S: 0.5, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 5}
	ips := gen.Generate(20000)
	want := workload.DistinctPerRegion(ips, regions)

	if err := LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, ClickLogApp(regions, hostBits, false)); err != nil {
		t.Fatal(err)
	}
	got, err := ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("region %d: %d != %d", r, got[r], want[r])
		}
	}
}

// TestHashJoinEmptyPartition: partitions with no matching tuples produce
// empty outputs without wedging the join.
func TestHashJoinEmptyPartition(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, nil)
	const parts = 8
	// Keys confined to a range that hashes into few partitions.
	rg := workload.RelationGen{Keys: 2, S: 0, Seed: 8}
	r := rg.Generate(100)
	s := rg.Generate(1000)
	want := workload.JoinCount(r, s)

	if err := LoadRelations(ctx, cluster.Store(), r, s); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cluster.Run(ctx, HashJoinApp(parts, false)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("join wedged on empty partitions")
	}
	got, err := JoinResultCount(ctx, cluster.Store(), parts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("matches %d, want %d", got, want)
	}
}
