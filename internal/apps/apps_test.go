package apps

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/workload"
)

func testCluster(t *testing.T, mutate func(*hurricane.ClusterConfig)) *hurricane.Cluster {
	t.Helper()
	cfg := hurricane.ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    2 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Master: hurricane.MasterConfig{
			PollInterval:  time.Millisecond,
			CloneInterval: 5 * time.Millisecond,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := hurricane.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClickLogCorrectness(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1.0} {
		s := s
		t.Run(skewName(s), func(t *testing.T) {
			ctx := testCtx(t)
			cluster := testCluster(t, nil)
			const regions, hostBits = 8, 10

			gen := workload.ClickLogGen{S: s, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 42}
			ips := gen.Generate(20000)
			want := workload.DistinctPerRegion(ips, regions)

			if err := LoadClickLog(ctx, cluster.Store(), ips); err != nil {
				t.Fatal(err)
			}
			app := ClickLogApp(regions, hostBits, false)
			if err := cluster.Run(ctx, app); err != nil {
				t.Fatal(err)
			}
			got, err := ClickLogCounts(ctx, cluster.Store(), regions)
			if err != nil {
				t.Fatal(err)
			}
			for r := range want {
				if got[r] != want[r] {
					t.Errorf("region %d (%s): distinct = %d, want %d",
						r, workload.RegionName(r), got[r], want[r])
				}
			}
		})
	}
}

func TestClickLogWithForcedCloning(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.Master.DisableHeuristic = true
		cfg.Master.CloneInterval = time.Millisecond
		cfg.Node.MonitorInterval = time.Millisecond
		cfg.Node.HeartbeatInterval = time.Millisecond
		cfg.Node.OverloadThreshold = 0.01 // everything looks overloaded
	})
	const regions, hostBits = 4, 10
	gen := workload.ClickLogGen{S: 1.0, Regions: regions, UniquePerRegion: 1 << hostBits, Seed: 7}
	ips := gen.Generate(300000)
	want := workload.DistinctPerRegion(ips, regions)

	if err := LoadClickLog(ctx, cluster.Store(), ips); err != nil {
		t.Fatal(err)
	}
	app := ClickLogApp(regions, hostBits, false)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := ClickLogCounts(ctx, cluster.Store(), regions)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("region %d: distinct = %d, want %d", r, got[r], want[r])
		}
	}
	stats := cluster.Master().Stats()
	if stats.Clones == 0 {
		t.Error("expected at least one clone under forced overload")
	}
	if stats.MergeTasks == 0 && stats.RenameAdopts == 0 {
		t.Error("expected merges or rename adoptions")
	}
	t.Logf("master stats: %+v", stats)
}

func TestHashJoinCorrectness(t *testing.T) {
	for _, s := range []float64{0, 1.0} {
		s := s
		t.Run(skewName(s), func(t *testing.T) {
			ctx := testCtx(t)
			cluster := testCluster(t, nil)
			const parts = 4

			rg := workload.RelationGen{Keys: 100, S: 0, Seed: 1}
			sg := workload.RelationGen{Keys: 100, S: s, Seed: 2}
			r := rg.Generate(500)
			probe := sg.Generate(5000)
			want := workload.JoinCount(r, probe)

			if err := LoadRelations(ctx, cluster.Store(), r, probe); err != nil {
				t.Fatal(err)
			}
			app := HashJoinApp(parts, false)
			if err := cluster.Run(ctx, app); err != nil {
				t.Fatal(err)
			}
			got, err := JoinResultCount(ctx, cluster.Store(), parts)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("join output = %d matches, want %d", got, want)
			}
		})
	}
}

func TestHashJoinWithForcedCloning(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.Master.DisableHeuristic = true
		cfg.Node.OverloadThreshold = 0.01
	})
	const parts = 2
	rg := workload.RelationGen{Keys: 50, S: 0, Seed: 3}
	sg := workload.RelationGen{Keys: 50, S: 1.0, Seed: 4}
	r := rg.Generate(300)
	probe := sg.Generate(8000)
	want := workload.JoinCount(r, probe)

	if err := LoadRelations(ctx, cluster.Store(), r, probe); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, HashJoinApp(parts, false)); err != nil {
		t.Fatal(err)
	}
	got, err := JoinResultCount(ctx, cluster.Store(), parts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("join output = %d matches, want %d", got, want)
	}
	t.Logf("master stats: %+v", cluster.Master().Stats())
}

func TestPageRankCorrectness(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, nil)
	const scale, iters = 7, 3

	gen := workload.RMATGen{Scale: scale, EdgeFactor: 8, Seed: 11}
	edges := gen.Generate()
	n := gen.NumVertices()
	want := SerialPageRank(edges, n, iters)

	if err := LoadEdges(ctx, cluster.Store(), edges); err != nil {
		t.Fatal(err)
	}
	app := PageRankApp(n, iters, false)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	got, err := PageRanks(ctx, cluster.Store(), n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("max rank deviation %g from serial oracle", d)
	}
	var sum float64
	for _, r := range got {
		sum += r
	}
	// With damping, total mass stays ≤ 1 (dangling vertices leak mass).
	if sum <= 0 || sum > 1.0001 {
		t.Errorf("total rank mass %g out of range", sum)
	}
}

func TestPageRankWithForcedCloning(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t, func(cfg *hurricane.ClusterConfig) {
		cfg.Master.DisableHeuristic = true
		cfg.Node.OverloadThreshold = 0.01
	})
	const scale, iters = 6, 2
	gen := workload.RMATGen{Scale: scale, EdgeFactor: 8, Seed: 13}
	edges := gen.Generate()
	n := gen.NumVertices()
	want := SerialPageRank(edges, n, iters)

	if err := LoadEdges(ctx, cluster.Store(), edges); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(ctx, PageRankApp(n, iters, false)); err != nil {
		t.Fatal(err)
	}
	got, err := PageRanks(ctx, cluster.Store(), n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("max rank deviation %g from serial oracle", d)
	}
	t.Logf("master stats: %+v", cluster.Master().Stats())
}

func skewName(s float64) string {
	switch s {
	case 0:
		return "uniform"
	case 0.2:
		return "s0.2"
	case 0.5:
		return "s0.5"
	case 0.8:
		return "s0.8"
	default:
		return fmt.Sprintf("s%.1f", s)
	}
}
