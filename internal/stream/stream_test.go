// Tests for the continuous-ingestion subsystem. They live in an external
// test package so they can drive the stream through the public hurricane
// API (hurricane imports internal/stream, so an internal test package
// could not).
package stream_test

import (
	"context"
	"errors"

	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/hurricane"
	"repro/internal/stream"
)

// sliceSource is a scripted Source: batches are pushed by the test and
// handed to the pump one per poll; end() makes it return io.EOF once
// drained.
type sliceSource struct {
	mu      sync.Mutex
	batches [][]stream.Record
	done    bool
}

func (s *sliceSource) push(recs ...stream.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, recs)
}

func (s *sliceSource) end() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
}

func (s *sliceSource) Poll(ctx context.Context) ([]stream.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		if s.done {
			return nil, io.EOF
		}
		return nil, nil
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, nil
}

// at builds a record carrying value v at event time t (seconds scaled to
// nanos from a fixed origin).
const testOrigin = int64(1_000_000_000_000)

func at(sec float64, v uint64) stream.Record {
	return stream.Record{
		Time: testOrigin + int64(sec*float64(time.Second)),
		Data: hurricane.Uint64Of.Encode(nil, v),
	}
}

// sumApp is the window DAG used by most tests: consume uint64 records
// from "in" and emit one (count, sum) pair per worker into "out".
// Concatenated partials are reconciled by the collector, so the app
// tolerates cloning.
func sumApp() *hurricane.App {
	app := hurricane.NewApp("sum")
	app.SourceBag("in").Bag("out")
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Run: func(tc *hurricane.TaskCtx) error {
			var n, sum uint64
			if err := hurricane.ForEach(tc, 0, hurricane.Uint64Of, func(v uint64) error {
				n++
				sum += v
				return nil
			}); err != nil {
				return err
			}
			w := hurricane.NewWriter(tc, 0, hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of))
			return w.Write(hurricane.Pair[uint64, uint64]{First: n, Second: sum})
		},
	})
	return app
}

// collectSum merges a window's (count, sum) partials.
func collectSum(ctx context.Context, t *testing.T, store *hurricane.Store, bagName string) (n, sum uint64) {
	t.Helper()
	recs, err := hurricane.Collect(ctx, store, bagName, hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of))
	if err != nil {
		t.Fatalf("collect %s: %v", bagName, err)
	}
	for _, r := range recs {
		n += r.First
		sum += r.Second
	}
	return
}

func testCluster(t *testing.T) *hurricane.Cluster {
	t.Helper()
	cluster, err := hurricane.NewCluster(hurricane.ClusterConfig{
		StorageNodes: 2,
		ComputeNodes: 2,
		SlotsPerNode: 2,
		ChunkSize:    4 << 10,
		Node: hurricane.NodeConfig{
			PollInterval:      time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
		},
		Sched: hurricane.SchedConfig{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestStreamWindows runs several consecutive windows through the
// scheduler and verifies exactly-once per-window results in order.
func TestStreamWindows(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "s",
		App:     sumApp(),
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Second,
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}

	const windows = 5
	wantN := make([]uint64, windows)
	wantSum := make([]uint64, windows)
	for w := 0; w < windows; w++ {
		var recs []stream.Record
		for i := 0; i < 200; i++ {
			v := uint64(w*1000 + i)
			recs = append(recs, at(float64(w)+float64(i)/250.0, v))
			wantN[w]++
			wantSum[w] += v
		}
		src.push(recs...)
	}
	src.end()

	store := cluster.Store()
	for w := 0; w < windows; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Index != w {
			t.Fatalf("results out of order: got window %d, want %d", res.Index, w)
		}
		if res.Err != nil {
			t.Fatalf("window %d failed: %v", w, res.Err)
		}
		if res.Records != int64(wantN[w]) {
			t.Fatalf("window %d sealed %d records, want %d", w, res.Records, wantN[w])
		}
		n, sum := collectSum(ctx, t, store, res.Bag("out"))
		if n != wantN[w] || sum != wantSum[w] {
			t.Fatalf("window %d: got n=%d sum=%d, want n=%d sum=%d", w, n, sum, wantN[w], wantSum[w])
		}
	}
	if _, err := h.Next(ctx); err != io.EOF {
		t.Fatalf("after last window: err=%v, want io.EOF", err)
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := h.Stats()
	if st.Completed != windows || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStreamLateSurface checks that records arriving after their window
// sealed land in the late side channel, not the sealed window.
func TestStreamLateSurface(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:        "late",
		App:         sumApp(),
		Sources:     map[string]hurricane.StreamSource{"in": src},
		Window:      time.Second,
		Origin:      testOrigin,
		SurfaceLate: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Window 0 records, then a window-1 record that seals window 0, then
	// an out-of-order straggler whose event time is back inside window 0.
	src.push(at(0.1, 1), at(0.2, 2), at(0.3, 3))
	src.push(at(1.1, 10))
	src.push(at(0.5, 99)) // late for window 0
	src.end()

	store := cluster.Store()
	w0, err := h.Next(ctx)
	if err != nil || w0.Err != nil {
		t.Fatalf("window 0: %v / %v", err, w0.Err)
	}
	n, sum := collectSum(ctx, t, store, w0.Bag("out"))
	if n != 3 || sum != 6 {
		t.Fatalf("window 0: n=%d sum=%d, want 3/6 (late record must not leak into the sealed window)", n, sum)
	}
	w1, err := h.Next(ctx)
	if err != nil || w1.Err != nil {
		t.Fatalf("window 1: %v / %v", err, w1.Err)
	}
	n, sum = collectSum(ctx, t, store, w1.Bag("out"))
	if n != 1 || sum != 10 {
		t.Fatalf("window 1: n=%d sum=%d, want 1/10", n, sum)
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := w0.LateCount(); got != 1 {
		t.Fatalf("window 0 late count = %d, want 1", got)
	}
	lb := w0.LateBag()
	if lb == "" {
		t.Fatal("window 0 has no late bag")
	}
	lateVals, err := hurricane.Collect(ctx, store, lb, hurricane.Uint64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(lateVals) != 1 || lateVals[0] != 99 {
		t.Fatalf("late bag = %v, want [99]", lateVals)
	}
	if st := h.Stats(); st.Late != 1 {
		t.Fatalf("stats.Late = %d, want 1", st.Late)
	}
}

// TestStreamLateFold checks the default late mode: stragglers fold into
// the next open window instead of being surfaced.
func TestStreamLateFold(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "fold",
		App:     sumApp(),
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Second,
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.push(at(0.1, 1), at(0.2, 2))
	src.push(at(1.1, 10))
	src.push(at(0.5, 99)) // late for window 0: folds into window 1
	src.end()

	store := cluster.Store()
	w0, err := h.Next(ctx)
	if err != nil || w0.Err != nil {
		t.Fatalf("window 0: %v / %v", err, w0.Err)
	}
	if n, sum := collectSum(ctx, t, store, w0.Bag("out")); n != 2 || sum != 3 {
		t.Fatalf("window 0: n=%d sum=%d, want 2/3", n, sum)
	}
	w1, err := h.Next(ctx)
	if err != nil || w1.Err != nil {
		t.Fatalf("window 1: %v / %v", err, w1.Err)
	}
	if n, sum := collectSum(ctx, t, store, w1.Bag("out")); n != 2 || sum != 109 {
		t.Fatalf("window 1: n=%d sum=%d, want 2/109 (late record folds forward)", n, sum)
	}
	if got := w0.LateCount(); got != 1 {
		t.Fatalf("window 0 late count = %d, want 1", got)
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStreamIdleSourceTimeout checks that an idle source is excluded from
// the low watermark after IdleTimeout instead of stalling every window
// behind it.
func TestStreamIdleSourceTimeout(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	// The window app consumes two independent source bags.
	app := hurricane.NewApp("two")
	app.SourceBag("a").SourceBag("b").Bag("out")
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"a", "b"},
		Outputs: []string{"out"},
		Run: func(tc *hurricane.TaskCtx) error {
			var n uint64
			for i := 0; i < 2; i++ {
				if err := hurricane.ForEach(tc, i, hurricane.Uint64Of, func(uint64) error {
					n++
					return nil
				}); err != nil {
					return err
				}
			}
			return hurricane.NewWriter(tc, 0, hurricane.Uint64Of).Write(n)
		},
	})

	active, idle := &sliceSource{}, &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:        "idle",
		App:         app,
		Sources:     map[string]hurricane.StreamSource{"a": active, "b": idle},
		Window:      time.Second,
		Origin:      testOrigin,
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The idle source delivers one early record and then goes silent; the
	// active source keeps streaming past the window end. Without the idle
	// timeout the watermark would stall at the idle source's last record
	// and window 0 would never seal.
	idle.push(at(0.05, 1))
	active.push(at(0.1, 1), at(0.4, 2))
	active.push(at(1.2, 3)) // past window 0's end

	res, err := h.Next(ctx)
	if err != nil {
		t.Fatalf("window 0 never sealed despite idle timeout: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("window 0: %v", res.Err)
	}
	recs, err := hurricane.Collect(ctx, cluster.Store(), res.Bag("out"), hurricane.Uint64Of)
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	for _, r := range recs {
		n += r
	}
	if n != 3 { // 2 active + 1 idle record in window 0
		t.Fatalf("window 0 saw %d records, want 3", n)
	}
	active.end()
	idle.end()
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEventTimeGap checks that a watermark jump over several empty
// windows completes them immediately without running a DAG job apiece —
// a quiet source must not flood the scheduler with no-op window jobs.
func TestStreamEventTimeGap(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "gap",
		App:     sumApp(),
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Second,
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.push(at(0.2, 1), at(0.4, 2))
	src.push(at(5.5, 30)) // watermark jumps past windows 1–4
	src.end()

	store := cluster.Store()
	for w := 0; w < 6; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Index != w || res.Err != nil {
			t.Fatalf("window %d: index %d err %v", w, res.Index, res.Err)
		}
		switch {
		case w == 0:
			if n, sum := collectSum(ctx, t, store, res.Bag("out")); n != 2 || sum != 3 {
				t.Fatalf("window 0: n=%d sum=%d, want 2/3", n, sum)
			}
		case w == 5:
			if n, sum := collectSum(ctx, t, store, res.Bag("out")); n != 1 || sum != 30 {
				t.Fatalf("window 5: n=%d sum=%d, want 1/30", n, sum)
			}
		default: // gap windows
			if res.Records != 0 {
				t.Fatalf("gap window %d sealed %d records", w, res.Records)
			}
			if res.Job() != nil {
				t.Fatalf("gap window %d ran a job; empty windows must not", w)
			}
		}
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Completed != 6 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStreamWindowRetry injects a one-shot failure into a window job and
// checks the window is reset and retried — exactly-once preserved — while
// successor windows keep completing.
func TestStreamWindowRetry(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	var failOnce atomic.Bool
	failOnce.Store(true)
	app := hurricane.NewApp("flaky")
	app.SourceBag("in").Bag("out")
	app.AddTask(hurricane.TaskSpec{
		Name:    "sum",
		Inputs:  []string{"in"},
		Outputs: []string{"out"},
		Run: func(tc *hurricane.TaskCtx) error {
			var n, sum uint64
			sawMarker := false
			if err := hurricane.ForEach(tc, 0, hurricane.Uint64Of, func(v uint64) error {
				if v == 424242 {
					sawMarker = true
				}
				n++
				sum += v
				return nil
			}); err != nil {
				return err
			}
			// Fail the first attempt that consumed the marker record —
			// after it has already consumed part of its input, so the
			// retry must rewind to see every record again.
			if sawMarker && failOnce.CompareAndSwap(true, false) {
				return errors.New("injected window failure")
			}
			w := hurricane.NewWriter(tc, 0, hurricane.PairOf(hurricane.Uint64Of, hurricane.Uint64Of))
			return w.Write(hurricane.Pair[uint64, uint64]{First: n, Second: sum})
		},
	})

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "retry",
		App:     app,
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Second,
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}

	const windows = 4
	wantN := make([]uint64, windows)
	wantSum := make([]uint64, windows)
	for w := 0; w < windows; w++ {
		var recs []stream.Record
		for i := 0; i < 100; i++ {
			v := uint64(w*100 + i)
			if w == 1 && i == 50 {
				v = 424242 // marker: window 1's first attempt fails
			}
			recs = append(recs, at(float64(w)+float64(i)/120.0, v))
			wantN[w]++
			wantSum[w] += v
		}
		src.push(recs...)
	}
	src.end()

	store := cluster.Store()
	for w := 0; w < windows; w++ {
		res, err := h.Next(ctx)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if res.Err != nil {
			t.Fatalf("window %d failed despite retry: %v", w, res.Err)
		}
		wantAttempts := 1
		if w == 1 {
			wantAttempts = 2
		}
		if res.Attempts != wantAttempts {
			t.Fatalf("window %d attempts = %d, want %d", w, res.Attempts, wantAttempts)
		}
		n, sum := collectSum(ctx, t, store, res.Bag("out"))
		if n != wantN[w] || sum != wantSum[w] {
			t.Fatalf("window %d: got n=%d sum=%d, want n=%d sum=%d (retry must replay exactly the sealed records)",
				w, n, sum, wantN[w], wantSum[w])
		}
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDrainSealsPartialWindow checks the Drain/Shutdown ordering
// contract: draining mid-window seals the partial window, runs its job,
// and only then returns — no ingested record is stranded unsealed.
func TestStreamDrainSealsPartialWindow(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)
	defer cluster.Shutdown()

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "drain",
		App:     sumApp(),
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Hour, // the window would never seal by watermark
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.push(at(0.1, 7), at(0.2, 8))
	// Wait until the records are ingested, then drain mid-window.
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Ingested < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res, err := h.Next(ctx)
	if err != nil {
		t.Fatalf("no window after drain: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("partial window failed: %v", res.Err)
	}
	if res.Records != 2 {
		t.Fatalf("partial window sealed %d records, want 2", res.Records)
	}
	n, sum := collectSum(ctx, t, cluster.Store(), res.Bag("out"))
	if n != 2 || sum != 15 {
		t.Fatalf("partial window: n=%d sum=%d, want 2/15", n, sum)
	}
	if _, err := h.Next(ctx); err != io.EOF {
		t.Fatalf("after drain: err=%v, want io.EOF", err)
	}
}

// TestStreamShutdownMidWindow checks the regression the ordering fix
// targets: a Cluster.Shutdown issued mid-window (without Drain) must not
// deadlock the stream, and records sealed into completed windows stay
// readable.
func TestStreamShutdownMidWindow(t *testing.T) {
	ctx := testCtx(t)
	cluster := testCluster(t)

	src := &sliceSource{}
	h, err := hurricane.RunStream(ctx, cluster, hurricane.StreamSpec{
		Name:    "shut",
		App:     sumApp(),
		Sources: map[string]hurricane.StreamSource{"in": src},
		Window:  time.Second,
		Origin:  testOrigin,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Complete window 0, then leave window 1 open and shut the cluster down.
	src.push(at(0.1, 1), at(0.2, 2), at(0.3, 3))
	src.push(at(1.1, 50))
	w0, err := h.Next(ctx)
	if err != nil || w0.Err != nil {
		t.Fatalf("window 0: %v / %v", err, w0.Err)
	}
	store := cluster.Store()
	n, sum := collectSum(ctx, t, store, w0.Bag("out"))
	if n != 3 || sum != 6 {
		t.Fatalf("window 0: n=%d sum=%d, want 3/6", n, sum)
	}

	cluster.Shutdown()

	// Neither Drain nor Next may deadlock after an uncoordinated Shutdown.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_ = h.Drain(dctx)
	if dctx.Err() != nil {
		t.Fatal("Drain deadlocked after Shutdown")
	}
	for {
		res, err := h.Next(dctx)
		if err != nil {
			break // io.EOF or the stream's shutdown error — but never a hang
		}
		_ = res
	}
	if dctx.Err() != nil {
		t.Fatal("Next deadlocked after Shutdown")
	}
	// Window 0 completed before the shutdown; its sealed records and
	// outputs must still be readable from the in-process storage tier.
	n, sum = collectSum(ctx, t, store, w0.Bag("out"))
	if n != 3 || sum != 6 {
		t.Fatalf("window 0 results lost after shutdown: n=%d sum=%d", n, sum)
	}
	vals, err := hurricane.Collect(ctx, store, w0.Bag("in"), hurricane.Uint64Of)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("window 0's sealed source records lost after shutdown: %d, want 3", len(vals))
	}
}
