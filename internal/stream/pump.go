package stream

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// srcState is the pump's bookkeeping for one source: the high-water event
// time it has delivered, when it last delivered anything (for the idle
// timeout), and whether it ended.
type srcState struct {
	bag        string
	src        Source
	wm         int64 // max event time seen; 0 until the first record
	seen       bool
	lastActive time.Time
	eof        bool
}

// bagOut is the append pipeline into one physical bag: a chunk framer
// flushing into a pipelined inserter.
type bagOut struct {
	name string
	w    *chunk.Writer
	ins  *bag.Inserter
}

func (h *Handle) newBagOut(name string) *bagOut {
	ins := h.store.Bag(name).Inserter(h.ctx)
	return &bagOut{
		name: name,
		ins:  ins,
		w: chunk.NewWriter(h.store.ChunkSize(), func(c chunk.Chunk) error {
			return ins.Insert(c)
		}),
	}
}

func (o *bagOut) close() error {
	if err := o.w.Flush(); err != nil {
		return fmt.Errorf("stream: flushing %s: %w", o.name, err)
	}
	if err := o.ins.Close(); err != nil {
		return fmt.Errorf("stream: closing %s: %w", o.name, err)
	}
	return nil
}

// window is one live or in-flight tumbling window.
type window struct {
	res  *WindowResult
	job  string             // job name == bag namespace prefix
	outs map[string]*bagOut // source bag name -> live append pipeline
	late *bagOut            // surfaced late bag, created on demand after seal
}

// ---- ingestion pump (single goroutine) ----

func (h *Handle) pump(srcs []*srcState) {
	defer close(h.submitQ)
	defer close(h.pumpDone)
	for {
		if h.ctx.Err() != nil {
			h.failPump(fmt.Errorf("stream: ingestion stopped: %w", context.Cause(h.ctx)))
			break
		}
		h.mu.Lock()
		draining := h.draining
		h.mu.Unlock()
		if draining {
			break
		}
		progress := false
		live := 0
		for _, s := range srcs {
			if s.eof {
				continue
			}
			live++
			recs, err := s.src.Poll(h.ctx)
			if err == io.EOF {
				s.eof = true
				continue
			}
			if err != nil {
				if h.ctx.Err() != nil {
					err = fmt.Errorf("stream: ingestion stopped: %w", context.Cause(h.ctx))
				} else {
					err = fmt.Errorf("stream: source %q: %w", s.bag, err)
				}
				h.failPump(err)
				h.drainSeal()
				return
			}
			if len(recs) == 0 {
				continue
			}
			progress = true
			s.lastActive = time.Now()
			for _, r := range recs {
				if err := h.ingest(s, r); err != nil {
					h.failPump(err)
					h.drainSeal()
					return
				}
				if !s.seen || r.Time > s.wm {
					s.wm, s.seen = r.Time, true
				}
			}
		}
		if err := h.advance(srcs); err != nil {
			h.failPump(err)
			h.drainSeal()
			return
		}
		if h.reachedMaxWindows() || live == 0 {
			break
		}
		if !progress {
			select {
			case <-time.After(h.spec.PollInterval):
			case <-h.ctx.Done():
			}
		}
	}
	h.drainSeal()
}

// flushCounters mirrors the pump-owned ingestion counters into the
// mu-guarded fields Stats reads (and the registry gauges) — once per
// sweep, not per record, so the per-record ingestion path stays free of
// locks and registry traffic.
func (h *Handle) flushCounters() {
	h.mu.Lock()
	h.ingested, h.lateTotal, h.dropped = h.pIngested, h.pLate, h.pDropped
	open := len(h.open)
	h.mu.Unlock()
	h.mIngested.Set(h.pIngested)
	h.mLate.Set(h.pLate)
	h.mDropped.Set(h.pDropped)
	h.mOpen.Set(int64(open))
}

func (h *Handle) failPump(err error) {
	h.mu.Lock()
	if h.pumpErr == nil {
		h.pumpErr = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *Handle) reachedMaxWindows() bool {
	if h.spec.MaxWindows <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nextSeal >= h.spec.MaxWindows
}

// windowIndex maps an event time to its tumbling window. Records earlier
// than the origin clamp to window 0 (they are late by construction).
func (h *Handle) windowIndex(t int64) int {
	if t <= h.origin {
		return 0
	}
	return int((t - h.origin) / int64(h.spec.Window))
}

// liveWindow returns the open window with the given index, creating it
// (and its result skeleton) if needed. Pump goroutine only.
func (h *Handle) liveWindow(idx int) *window {
	if lw := h.open[idx]; lw != nil {
		return lw
	}
	w := int64(h.spec.Window)
	lw := &window{
		job:  windowJobName(h.spec.Name, idx),
		outs: make(map[string]*bagOut),
		res: &WindowResult{
			Index: idx,
			Start: h.origin + int64(idx)*w,
			End:   h.origin + int64(idx+1)*w,
			h:     h,
		},
	}
	h.mu.Lock()
	h.open[idx] = lw
	h.mu.Unlock()
	return lw
}

// ingest routes one record into its window's live bag, or into the late
// side channel when the window already sealed.
func (h *Handle) ingest(s *srcState, r Record) error {
	if !h.originSet {
		h.mu.Lock()
		h.originSet = true
		if h.spec.Origin != 0 {
			h.origin = h.spec.Origin
		} else {
			h.origin = r.Time
		}
		h.mu.Unlock()
	}
	idx := h.windowIndex(r.Time)
	if h.spec.MaxWindows > 0 && idx >= h.spec.MaxWindows {
		h.pDropped++
		return nil // beyond the stream's final window; its time still advances the watermark
	}
	// nextSeal is written only by this goroutine (under mu, for Stats'
	// benefit); reading our own writes needs no lock.
	if idx < h.nextSeal {
		return h.ingestLate(s, r, idx, h.nextSeal)
	}
	return h.appendToWindow(idx, s.bag, r.Data)
}

// appendToWindow appends one record to open window idx's live bag for
// srcBag (creating window and pipeline as needed) and does the ingestion
// accounting. Shared by the normal path and the late fold-forward path.
func (h *Handle) appendToWindow(idx int, srcBag string, data []byte) error {
	lw := h.liveWindow(idx)
	out := lw.outs[srcBag]
	if out == nil {
		out = h.newBagOut(lw.job + "/" + srcBag)
		lw.outs[srcBag] = out
	}
	if err := out.w.Append(data); err != nil {
		return err
	}
	lw.res.Records++
	h.pIngested++
	return nil
}

// ingestLate handles a record whose window sealed before it arrived: fold
// it into the lowest open window (default) or surface it in the sealed
// window's late bag, within one window of grace.
func (h *Handle) ingestLate(s *srcState, r Record, idx, sealedBoundary int) error {
	res := h.sealedResult(idx)
	if res != nil {
		res.late.Add(1)
	}
	h.pLate++
	if !h.spec.SurfaceLate {
		// Fold forward: the record joins the next window still accepting.
		if h.spec.MaxWindows > 0 && sealedBoundary >= h.spec.MaxWindows {
			h.pDropped++
			return nil
		}
		return h.appendToWindow(sealedBoundary, s.bag, r.Data)
	}
	// Surfaced: the late bag accepts stragglers for the most recently
	// sealed window only — once the next window seals, the bag is sealed
	// too and later arrivals are dropped.
	if idx != sealedBoundary-1 {
		h.pDropped++
		return nil
	}
	lw := h.sealedWindow(idx)
	if lw == nil {
		h.pDropped++
		return nil
	}
	if lw.late == nil {
		lw.late = h.newBagOut(lateBagName(h.spec.Name, idx))
		if res != nil {
			h.mu.Lock()
			res.lateBag = lw.late.name
			h.mu.Unlock()
		}
	}
	return lw.late.w.Append(r.Data)
}

// sealedWindow returns the most recently sealed window if it has the
// given index (the only window still accepting surfaced late records).
// Pump goroutine only.
func (h *Handle) sealedWindow(idx int) *window {
	if h.lastSealed != nil && h.lastSealed.res.Index == idx {
		return h.lastSealed
	}
	return nil
}

// sealedResult returns the result of a sealed window (for late-record
// attribution), whether its job is still in flight or done.
func (h *Handle) sealedResult(idx int) *WindowResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sealedRes[idx]
}

// advance recomputes the low watermark over the sources and seals every
// window it has passed. A source that has been idle past IdleTimeout (or
// reached EOF) is excluded from the minimum, so a stalled source delays
// nothing; if every remaining source is excluded, the watermark advances
// to the highest time seen — all delivered records are accounted for.
func (h *Handle) advance(srcs []*srcState) error {
	h.flushCounters()
	now := time.Now()
	low := int64(math.MaxInt64)
	high := int64(math.MinInt64)
	anySeen, anyIncluded := false, false
	for _, s := range srcs {
		if s.seen && s.wm > high {
			high, anySeen = s.wm, true
		}
		if s.eof || now.Sub(s.lastActive) > h.spec.IdleTimeout {
			continue
		}
		anyIncluded = true
		if !s.seen {
			return nil // a live source has not spoken yet: no watermark at all
		}
		if s.wm < low {
			low = s.wm
		}
	}
	if !anySeen {
		return nil
	}
	wm := low
	if !anyIncluded {
		wm = high
	}
	h.mu.Lock()
	if wm > h.watermark {
		h.watermark = wm
	}
	wm = h.watermark
	h.mu.Unlock()
	if wm > 0 {
		// Meaningful when event times track wall-clock time (negative
		// synthetic-time lags clamp to zero inside the histogram).
		h.mLag.Observe((time.Now().UnixNano() - wm) / 1000)
	}
	if !h.originSet {
		return nil
	}
	for {
		h.mu.Lock()
		idx := h.nextSeal
		h.mu.Unlock()
		if h.spec.MaxWindows > 0 && idx >= h.spec.MaxWindows {
			return nil
		}
		end := h.origin + int64(idx+1)*int64(h.spec.Window)
		if wm < end {
			return nil
		}
		if err := h.seal(idx); err != nil {
			return err
		}
	}
}

// seal closes window idx's live bags, seals every source bag of the
// window job, and hands the window to the submitter. It also seals the
// previous window's surfaced late bag — its grace period ends here. A
// window no record was routed to completes immediately without a job:
// one event-time gap (a source quiet overnight, a clock-skewed
// far-future timestamp) may pass the watermark over thousands of empty
// windows, and submitting a full DAG job apiece would stall live data
// behind a flood of no-ops.
func (h *Handle) seal(idx int) error {
	lw := h.liveWindow(idx) // creates an empty window if no record arrived
	if prev := h.lastSealed; prev != nil && prev.late != nil {
		if err := prev.late.close(); err != nil {
			return err
		}
		if err := h.store.Seal(h.ctx, prev.late.name); err != nil {
			return err
		}
		prev.late = nil
	}
	empty := lw.res.Records == 0
	if !empty {
		for _, out := range lw.outs {
			if err := out.close(); err != nil {
				return err
			}
		}
		for _, b := range h.spec.App.Bags() {
			if !h.spec.App.BagSpecFor(b).Source {
				continue
			}
			if err := h.store.Seal(h.ctx, lw.job+"/"+b); err != nil {
				return fmt.Errorf("stream: sealing window %d source %s: %w", idx, b, err)
			}
		}
	}
	lw.res.SealedAt = time.Now()
	h.lastSealed = lw
	h.mSealed.Inc()
	h.obsv.Emit(obs.EvWindowSealed, lw.job, lw.job,
		fmt.Sprintf("records=%d empty=%t", lw.res.Records, empty))
	h.mu.Lock()
	delete(h.open, idx)
	h.nextSeal = idx + 1
	h.sealedCount++
	h.sealedRes[idx] = lw.res
	// Late records can only still be attributed within the grace horizon;
	// older entries would pin every window's result forever.
	delete(h.sealedRes, idx-2)
	h.mu.Unlock()
	if empty {
		lw.res.SubmittedAt = lw.res.SealedAt
		h.finishWindow(lw, nil)
		return nil
	}
	h.submitQ <- lw
	return nil
}

// drainSeal seals every still-open window up to the highest one holding
// records — the current partial window included — so Drain never strands
// ingested records in an unsealed bag. Gap windows in between (created
// empty) are sealed too, keeping window indices contiguous. Best-effort
// under an aborted context: a failed seal fails the stream, not silently.
func (h *Handle) drainSeal() {
	h.flushCounters()
	h.mu.Lock()
	if !h.originSet {
		h.mu.Unlock()
		return
	}
	maxIdx := h.nextSeal - 1
	for idx, lw := range h.open {
		if lw.res.Records > 0 && idx > maxIdx {
			maxIdx = idx
		}
	}
	start := h.nextSeal
	h.mu.Unlock()
	for idx := start; idx <= maxIdx; idx++ {
		if err := h.seal(idx); err != nil {
			h.failPump(err)
			return
		}
	}
	if h.lastSealed != nil && h.lastSealed.late != nil {
		late := h.lastSealed.late
		h.lastSealed.late = nil
		if err := late.close(); err != nil {
			h.failPump(err)
			return
		}
		if err := h.store.Seal(h.ctx, late.name); err != nil {
			h.failPump(fmt.Errorf("stream: sealing late bag %s: %w", late.name, err))
		}
	}
}

// ---- submission and supervision ----

func (h *Handle) submitter() {
	defer h.wg.Done()
	for lw := range h.submitQ {
		select {
		case h.sem <- struct{}{}:
		case <-h.ctx.Done():
			h.finishWindow(lw, fmt.Errorf("stream: window %d not submitted: %w", lw.res.Index, context.Cause(h.ctx)))
			continue
		}
		if err := h.submitWindow(lw); err != nil {
			<-h.sem
			h.finishWindow(lw, err)
			continue
		}
		h.wg.Add(1)
		go h.watch(lw)
	}
}

// submitWindow seeds the window's shuffle edges from cross-window skew
// memory and submits the window job. Submissions are serialized because
// they all validate the one shared App template.
func (h *Handle) submitWindow(lw *window) error {
	lw.res.Attempts++
	if lw.res.SubmittedAt.IsZero() {
		lw.res.SubmittedAt = time.Now()
	}
	h.seedEdges(lw)
	h.submitLock.Lock()
	job, err := h.c.SubmitJob(h.ctx, h.spec.App, core.JobConfig{
		Name:   lw.job,
		Prefix: lw.job,
		Retain: true, // the stream GCs through WindowResult.Discard, not the scheduler
		Weight: h.spec.Weight,
		Master: h.spec.Master,
	})
	h.submitLock.Unlock()
	if err != nil {
		return fmt.Errorf("stream: submitting window %d: %w", lw.res.Index, err)
	}
	lw.res.job = job
	return nil
}

// watch waits for the window job, retrying failures in place (the reset
// rewinds the sealed sources, so a retry reprocesses exactly the window's
// records). It owns the window's in-flight slot until the terminal
// outcome.
func (h *Handle) watch(lw *window) {
	defer h.wg.Done()
	for {
		select {
		case <-lw.res.job.Done():
		case <-h.c.PoolDone():
			// A Shutdown-stopped master never closes Done; fail the window
			// instead of deadlocking. Its sealed records stay in storage.
			// But a job that completed at the same moment has a real
			// outcome — prefer it over the shutdown error.
			select {
			case <-lw.res.job.Done():
			default:
				<-h.sem
				h.finishWindow(lw, fmt.Errorf("stream: cluster shut down with window %d in flight", lw.res.Index))
				return
			}
		}
		err := lw.res.job.Err()
		if err == nil {
			h.captureMemory(lw)
			<-h.sem
			h.finishWindow(lw, nil)
			return
		}
		if lw.res.Attempts > h.spec.MaxRetries || h.ctx.Err() != nil {
			<-h.sem
			h.finishWindow(lw, err)
			return
		}
		h.mRetried.Inc()
		h.obsv.Emit(obs.EvWindowRetried, lw.job, lw.job,
			fmt.Sprintf("attempt=%d err=%v", lw.res.Attempts, err))
		if rerr := lw.res.job.Reset(h.ctx); rerr != nil {
			<-h.sem
			h.finishWindow(lw, fmt.Errorf("stream: window %d retry reset: %v (job error: %w)", lw.res.Index, rerr, err))
			return
		}
		if serr := h.submitWindow(lw); serr != nil {
			<-h.sem
			h.finishWindow(lw, serr)
			return
		}
	}
}

func (h *Handle) finishWindow(lw *window, err error) {
	lw.res.DoneAt = time.Now()
	lw.res.Err = err
	// Put the window on the cluster's telemetry timeline at the moment
	// it finished, not wherever the next sampler tick lands: seal-to-done
	// latency and record volume per window are the stream's two drift
	// signals. Nil-safe when the sampler is off.
	if err == nil && !lw.res.SealedAt.IsZero() {
		rec := h.c.Recorder()
		lbl := fmt.Sprintf("{stream=%q}", h.spec.Name)
		rec.Append("hurricane_stream_window_ms"+lbl,
			float64(lw.res.DoneAt.Sub(lw.res.SealedAt).Microseconds())/1e3)
		rec.Append("hurricane_stream_window_records"+lbl, float64(lw.res.Records))
	}
	h.mu.Lock()
	h.results[lw.res.Index] = lw.res
	if err == nil {
		h.completed++
	} else {
		h.failedCount++
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

// ---- cross-window skew memory ----

// captureMemory lifts the finished window's per-edge partition maps and
// merged sketches into the stream's skew memory, keyed by the template
// bag name (the job prefix stripped).
func (h *Handle) captureMemory(lw *window) {
	m := lw.res.job.Master()
	if m == nil {
		return
	}
	st := m.Stats()
	lw.res.Splits, lw.res.Isolations = st.Splits, st.Isolations
	mem := m.EdgeMemory()
	if len(mem) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if lw.res.Index < h.memoryWin {
		return // an earlier window finishing late must not regress memory
	}
	h.memoryWin = lw.res.Index
	for name, em := range mem {
		h.memory[strings.TrimPrefix(name, lw.job+"/")] = normalizeMemory(em, lw.job+"/")
	}
}

// normalizeMemory rewrites a captured edge's per-partition Counts keys
// from the window's physical leaf names to template-relative ones. The
// memory is re-pushed into successive windows' sketch slots (seedEdges),
// so without the rewrite each window would add a fresh set of prefixed
// keys and the map would grow without bound; with it, counts from any
// number of windows collapse onto the same template leaves. The stats
// struct is copied — the master's own memory must not be mutated.
func normalizeMemory(em core.EdgeMemory, prefix string) core.EdgeMemory {
	if em.Stats == nil || len(em.Stats.Counts) == 0 {
		return em
	}
	counts := make(map[string]uint64, len(em.Stats.Counts))
	for leaf, n := range em.Stats.Counts {
		counts[strings.TrimPrefix(leaf, prefix)] += n
	}
	st := *em.Stats
	st.Counts = counts
	em.Stats = &st
	return em
}

// reprefixStats maps template-relative Counts keys onto a window's
// physical leaf names — the inverse of normalizeMemory, applied when the
// remembered stats are pushed into that window's sketch slot.
func reprefixStats(st *sketch.EdgeStats, prefix string) *sketch.EdgeStats {
	if len(st.Counts) == 0 {
		return st
	}
	counts := make(map[string]uint64, len(st.Counts))
	for leaf, n := range st.Counts {
		counts[prefix+leaf] = n
	}
	out := *st
	out.Counts = counts
	return &out
}

// seedEdges warm-starts the window's partitioned shuffle edges from the
// stream's skew memory by publishing seed partition maps into the
// window's edge control bags before the job is submitted — the new
// master and its producers adopt any published version over the locally
// derived base map. Best-effort: a failed seed merely costs the window a
// cold start.
func (h *Handle) seedEdges(lw *window) {
	if h.spec.ColdStart {
		return
	}
	h.mu.Lock()
	if h.memoryWin < 0 {
		h.mu.Unlock()
		return
	}
	mem := make(map[string]core.EdgeMemory, len(h.memory))
	for k, v := range h.memory {
		mem[k] = v
	}
	h.mu.Unlock()
	fan, iso := 2, 0.5
	if h.spec.Master != nil {
		if h.spec.Master.SplitFan > 1 {
			fan = h.spec.Master.SplitFan
		}
		if h.spec.Master.IsolateFraction > 0 {
			iso = h.spec.Master.IsolateFraction
		}
	}
	for _, b := range h.spec.App.Bags() {
		spec := h.spec.App.BagSpecFor(b)
		if spec.Partitions <= 0 {
			continue
		}
		em, ok := mem[b]
		if !ok {
			continue
		}
		phys := lw.job + "/" + b
		// Push the remembered sketch into the new window's edge slot under
		// a control writer ID before any of the window's own producers
		// exist. Consumers that pull warm heavy-hitter keys at task start
		// (hurricane.WarmTopKeys64 seeding dense aggregation slots) then
		// see the previous window's distribution immediately instead of
		// racing the first producer pushes — and as the key mix drifts,
		// each window re-seeds the next from what it actually observed.
		// Counts keys are re-prefixed to this window's leaves so merged
		// per-partition counts stay name-consistent. Best-effort, like the
		// map seed below.
		if em.Stats != nil && em.Stats.Total() > 0 {
			_ = h.store.PushSketch(h.ctx, phys, "!warm", reprefixStats(em.Stats, lw.job+"/"))
		}
		seed := shuffle.WarmStart(em.PMap, em.Stats, phys, spec.Partitions, iso, fan, spec.Spread)
		if seed == nil {
			continue
		}
		if err := h.store.Bag(shuffle.PMapBag(phys)).Insert(h.ctx, seed.Encode()); err != nil {
			continue
		}
		lw.res.Seeded = true
	}
	if lw.res.Seeded {
		h.mWarm.Inc()
	}
}
